// Package vcabench is a controlled, reproducible benchmarking harness for
// videoconferencing systems, reproducing "Can You See Me Now? A
// Measurement Study of Zoom, Webex, and Meet" (IMC 2021).
//
// The public API is a facade over the internal packages:
//
//   - NewTestbed provisions the simulated vantage-point fleet and the
//     three platform models (Zoom, Webex, Meet).
//   - Run executes any of the paper's tables/figures by ID and renders
//     the result; List enumerates them.
//   - RunLagStudy and RunQoEStudy expose the two underlying experiment
//     engines for custom scenarios.
//
// A minimal session:
//
//	tb := vcabench.NewTestbed(1)
//	res := vcabench.RunLagStudy(tb, vcabench.Zoom, vcabench.USEast,
//	    vcabench.USLagFleet(vcabench.USEast), vcabench.QuickScale)
//	fmt.Println(res.Lags["US-West"].Median())
//
// Campaign experiments (the lag figures, the Figs 12-18 sweeps, the
// ablations) shard their independent units across a worker pool of
// Parallelism() workers — default runtime.GOMAXPROCS(0). Each unit runs
// on a testbed fork whose seed derives from the unit's canonical key,
// so rendered output is byte-identical at any worker count; only
// wall-clock time changes. Use NewTestbedParallel, RunParallel or
// Testbed.SetParallelism to pin the pool size (1 means serial).
//
// Everything is deterministic for a given seed, uses only the standard
// library, and runs in virtual time.
package vcabench

import (
	"errors"
	"fmt"
	"io"
	"net/http"

	"github.com/vcabench/vcabench/internal/cluster"
	"github.com/vcabench/vcabench/internal/core"
	"github.com/vcabench/vcabench/internal/diag"
	"github.com/vcabench/vcabench/internal/geo"
	"github.com/vcabench/vcabench/internal/media"
	"github.com/vcabench/vcabench/internal/obs"
	"github.com/vcabench/vcabench/internal/platform"
	"github.com/vcabench/vcabench/internal/report"
	"github.com/vcabench/vcabench/internal/store"
	"github.com/vcabench/vcabench/internal/trace"
)

// Re-exported platform identities.
const (
	Zoom  = platform.Zoom
	Webex = platform.Webex
	Meet  = platform.Meet
)

// Kinds lists the platforms under test in the paper's order.
var Kinds = platform.Kinds

// Re-exported core types.
type (
	// Testbed is the simulated measurement infrastructure.
	Testbed = core.Testbed
	// Scale selects experiment cost (paper / quick / tiny).
	Scale = core.Scale
	// LagStudyResult carries Figs 2-11 data for one scenario.
	LagStudyResult = core.LagStudyResult
	// QoEStudyResult carries Figs 12-18 data for one cell.
	QoEStudyResult = core.QoEStudyResult
	// QoEOpts tunes QoE studies (bandwidth caps, audio).
	QoEOpts = core.QoEOpts
	// Experiment is one reproducible paper artifact.
	Experiment = core.Experiment
	// Region is a geographic vantage point or PoP.
	Region = geo.Region
	// Scheduler fans independent campaign units across a worker pool.
	Scheduler = core.Scheduler
	// Unit is one independent campaign shard for the Scheduler.
	Unit = core.Unit
	// Campaign declares a QoE sweep as a grid of axis values.
	Campaign = core.Campaign
	// Geometry places a campaign cell's host and receiver pool.
	Geometry = core.Geometry
	// Netem is a receiver-side last-mile impairment condition.
	Netem = core.Netem
	// Trace is a time-varying downlink impairment schedule: named
	// (at, cap, loss, extra delay) steps replayed over session time.
	Trace = trace.Trace
	// TraceStep is one schedule point of a Trace.
	TraceStep = trace.Step
	// TraceSpec declares a trace on a campaign's Traces axis: explicit
	// steps or one of the square/sawtooth/step-down generators.
	TraceSpec = trace.Spec
	// SquareTrace parameterizes a square-wave (or, with Once, a single
	// drop/recover pulse) trace generator.
	SquareTrace = trace.SquareSpec
	// SawtoothTrace parameterizes a repeating descending-ramp generator.
	SawtoothTrace = trace.SawtoothSpec
	// StepDownTrace parameterizes a play-once descending-ladder generator.
	StepDownTrace = trace.StepDownSpec
	// RatePoint is one bin of a trace-driven cell's rate-over-time series.
	RatePoint = core.RatePoint
	// CampaignResult aggregates a campaign run (JSON-encodable).
	CampaignResult = core.CampaignResult
	// CellResult is one campaign grid point's outcome.
	CellResult = core.CellResult
	// CellReplica is one replica's metric summaries within a
	// replicated cell (Campaign.Repeats > 1).
	CellReplica = core.CellReplica
	// Metric summarizes one sample of a cell result; on replicated
	// cells it carries reps/stderr/ci95 aggregation fields.
	Metric = core.Metric
	// CellStore persists encoded campaign-unit results across
	// processes (see Testbed.WithStore and OpenStore).
	CellStore = core.CellStore
	// Store is the on-disk CellStore implementation: content-addressed
	// entries, atomic writes, corruption-tolerant reads, LRU front.
	Store = store.Store
	// StoreStats counts store hits, misses, puts and corrupt entries.
	StoreStats = store.Stats
	// Dispatcher executes campaign cells out of process (see NewPool
	// and Testbed.WithDispatcher).
	Dispatcher = core.Dispatcher
	// UnitRequest identifies one campaign cell for remote execution.
	UnitRequest = core.UnitRequest
	// Pool is a fleet of vcabenchd workers acting as one Dispatcher:
	// key-affine sharding, bounded in-flight requests per worker,
	// health probing, retry with backoff, failover to local execution.
	Pool = cluster.Pool
	// PoolOptions tunes a Pool; the zero value selects the defaults.
	PoolOptions = cluster.Options
	// PoolStats counts pool traffic (remote units, errors, fallbacks).
	PoolStats = cluster.Stats
	// Telemetry bundles the observability seams — metrics registry,
	// span tracer, clock — that a Testbed, Store or Pool reports
	// through (see Testbed.WithTelemetry). Telemetry never changes
	// results, only records how they were produced.
	Telemetry = obs.Telemetry
	// MetricsRegistry collects counters, gauges and histograms and
	// renders them in Prometheus text exposition format (WriteText).
	MetricsRegistry = obs.Registry
	// Tracer records campaign execution spans (campaign → cell →
	// replica → unit → memo/store/dispatch/local-run); export with
	// WriteJSONL, summarize per tier with Summary.
	Tracer = obs.Tracer
	// Clock is the monotonic time source telemetry reads through.
	Clock = obs.Clock
	// StoreOptions tunes OpenStoreOptions (LRU bound, telemetry).
	StoreOptions = store.Options
	// CellDiag is one campaign cell's flight-recorder document:
	// sim-time-binned per-pipe series (throughput, queuing delay,
	// queue occupancy, drops by cause), event-queue depth, and a
	// discrete event log (rate-ladder switches, trace steps, FEC
	// recoveries, freezes). Unlike Telemetry, which records walltime
	// facts about how a run was produced, CellDiag records sim-time
	// facts about what the simulation did — it is byte-identical
	// across worker counts and cache temperatures for a given cell.
	// See Testbed.WithDiagnostics, RunOpts.Diagnostics and
	// EncodeDiag/DecodeDiag.
	CellDiag = diag.CellDiag
)

// Scales.
var (
	PaperScale = core.PaperScale
	QuickScale = core.QuickScale
	TinyScale  = core.TinyScale
)

// Common vantage points (see the geo package for the full Table-3 fleet).
var (
	USEast = geo.USEast
	USWest = geo.USWest
	UKWest = geo.UKWest
	CH     = geo.CH
)

// Motion classes for QoE studies.
const (
	LowMotion  = media.LowMotion
	HighMotion = media.HighMotion
)

// NewTestbed provisions a deterministic testbed with the default
// campaign parallelism, runtime.GOMAXPROCS(0).
func NewTestbed(seed int64) *Testbed { return core.NewTestbed(seed) }

// NewTestbedParallel provisions a testbed with an explicit campaign
// worker count; workers == 0 selects the default and negative counts
// panic. Worker count never changes results, only wall-clock time.
func NewTestbedParallel(seed int64, workers int) *Testbed {
	return core.NewTestbed(seed).SetParallelism(workers)
}

// USLagFleet and EULagFleet build the Table-3 participant sets for a host.
func USLagFleet(host Region) []Region { return core.USLagFleet(host) }
func EULagFleet(host Region) []Region { return core.EULagFleet(host) }

// RunLagStudy measures streaming lag, endpoint RTTs and endpoint churn
// (the §4.2 methodology) for one platform and host placement.
func RunLagStudy(tb *Testbed, kind platform.Kind, host Region, fleet []Region, sc Scale) *LagStudyResult {
	return core.RunLagStudy(tb, kind, host, fleet, sc)
}

// RunQoEStudy measures video/audio QoE and data rates (the §4.3-4.4
// methodology) for one platform, host placement and receiver set.
func RunQoEStudy(tb *Testbed, kind platform.Kind, host Region, recvs []Region,
	motion media.MotionClass, sc Scale, opts QoEOpts) *QoEStudyResult {
	return core.RunQoEStudy(tb, kind, host, recvs, motion, sc, opts)
}

// RunCampaign expands a declarative campaign grid and executes every
// cell through the memo-aware scheduler. Results depend only on
// (tb seed, cell key): for a given spec, scale and seed the result —
// including its JSON encoding — is byte-identical at any worker count.
// A replicated campaign (spec.Repeats > 1) runs every cell Repeats
// times on independent key-derived seeds and reports aggregated
// statistics (mean, stderr, 95% CI) per metric.
func RunCampaign(tb *Testbed, spec Campaign, sc Scale) (*CampaignResult, error) {
	return core.RunCampaign(tb, spec, sc)
}

// ParseCampaign decodes and validates a JSON campaign spec (the
// -campaign file format of cmd/vcabench; see README).
func ParseCampaign(data []byte) (Campaign, error) {
	return core.ParseCampaign(data)
}

// NewPool builds a worker-fleet dispatcher over vcabenchd base URLs
// (e.g. "http://host:8547") with default options; see NewPoolOptions
// to tune in-flight bounds, retries and timeouts. The pool shards
// campaign cells across the fleet by unit key, probes worker health,
// retries failures with backoff, and hands unserved cells back for
// local execution — so results are byte-identical to a purely local
// run for any fleet size, worker mix or failure pattern.
func NewPool(workers []string) (*Pool, error) {
	return cluster.New(workers, cluster.Options{})
}

// NewPoolOptions is NewPool with explicit tuning.
func NewPoolOptions(workers []string, o PoolOptions) (*Pool, error) {
	return cluster.New(workers, o)
}

// RunDistributed is RunCampaign with the campaign's cells sharded
// across a worker fleet (see NewPool). The merged result — including
// its JSON encoding — is byte-identical to RunCampaign on the same
// testbed seed, scale and spec; distribution only changes wall-clock
// time. Cells already held by tb's memo or store are never dispatched,
// and cells the fleet cannot serve compute locally.
func RunDistributed(tb *Testbed, spec Campaign, sc Scale, p *Pool) (*CampaignResult, error) {
	if p == nil {
		return nil, errors.New("vcabench: RunDistributed needs a pool (use RunCampaign for local execution)")
	}
	tb.WithDispatcher(p)
	return core.RunCampaign(tb, spec, sc)
}

// WriteJSON renders any result value (e.g. a *CampaignResult) as
// indented JSON followed by a newline.
func WriteJSON(w io.Writer, v any) error { return report.WriteJSON(w, v) }

// List returns every reproducible artifact (tables, figures, ablations).
func List() []Experiment { return core.Experiments() }

// Run executes one artifact by ID at the given scale, writing its
// rendered tables/plots to w. Campaign units run on the default worker
// pool; see RunParallel to pin the pool size.
func Run(id string, seed int64, sc Scale, w io.Writer) error {
	return RunParallel(id, seed, sc, 0, w)
}

// RunParallel is Run with an explicit campaign worker count
// (workers == 0 means runtime.GOMAXPROCS(0), 1 means serial; negative
// counts are rejected). Output is byte-identical at any worker count
// for the same seed and scale.
func RunParallel(id string, seed int64, sc Scale, workers int, w io.Writer) error {
	return RunWithOpts(id, seed, sc, RunOpts{Workers: workers}, w)
}

// RunOpts tunes Run-by-ID execution beyond seed and scale.
type RunOpts struct {
	// Workers bounds the campaign worker pool (0 = one per CPU,
	// 1 = serial; negative counts are rejected).
	Workers int
	// Store, when non-nil, persists campaign-unit results across
	// processes: units found in the store are decoded instead of
	// computed, and fresh units are written back. Cache temperature
	// never changes rendered bytes, only wall-clock time.
	Store CellStore
	// Dispatcher, when non-nil, shards campaign cells across a worker
	// fleet (see NewPool). Cells the fleet cannot serve run locally;
	// rendered bytes are identical to a purely local run either way.
	// Experiments that are not campaign-backed (the lag figures)
	// ignore it.
	Dispatcher Dispatcher
	// Telemetry, when non-nil, records engine metrics and (with a
	// Tracer attached) execution spans for the run. Telemetry never
	// changes rendered bytes, only observes how they were produced.
	Telemetry *Telemetry
	// Diagnostics, when non-nil, arms the sim-time flight recorder and
	// receives one CellDiag document per campaign cell after the run,
	// in sorted key order. Arming diagnostics keys cached cells
	// separately (a bare-mode cache is never consulted) but does not
	// change the experiment's rendered tables; campaign JSON gains
	// drop-cause fields. Experiments that are not campaign-backed (the
	// lag figures) produce no documents.
	Diagnostics func(*CellDiag)
}

// ErrStore marks cell-persistence failures returned by RunWithOpts:
// the experiment completed and its output was fully written, only
// caching suffered. Callers may treat errors.Is(err, ErrStore) as a
// warning rather than a failed run.
var ErrStore = errors.New("vcabench: result store")

// RunWithOpts executes one artifact by ID with explicit options.
func RunWithOpts(id string, seed int64, sc Scale, opts RunOpts, w io.Writer) error {
	if opts.Workers < 0 {
		return fmt.Errorf("vcabench: worker count %d must be >= 1 (or 0 for the default)", opts.Workers)
	}
	e, ok := core.Lookup(id)
	if !ok {
		return fmt.Errorf("vcabench: unknown experiment %q (use List)", id)
	}
	tb := core.NewTestbed(seed).SetParallelism(opts.Workers)
	if opts.Store != nil {
		tb.WithStore(opts.Store)
	}
	if opts.Dispatcher != nil {
		tb.WithDispatcher(opts.Dispatcher)
	}
	if opts.Telemetry != nil {
		tb.WithTelemetry(opts.Telemetry)
	}
	if opts.Diagnostics != nil {
		tb.WithDiagnostics()
	}
	e.Run(tb, sc, w)
	if opts.Diagnostics != nil {
		for _, d := range tb.DiagResults() {
			opts.Diagnostics(d)
		}
	}
	if err := tb.StoreErr(); err != nil {
		return fmt.Errorf("%w: %v", ErrStore, err)
	}
	return nil
}

// EncodeDiag renders a flight-recorder document as its canonical
// versioned JSON artifact: indented, trailing newline, byte-identical
// for a given cell at any worker count or cache temperature.
func EncodeDiag(d *CellDiag) ([]byte, error) { return diag.Encode(d) }

// DecodeDiag parses a diagnostics artifact produced by EncodeDiag (or
// by vcabench -diag-out / vcabenchd's /cells/{key}/diag endpoint),
// rejecting unknown schema versions and trailing garbage.
func DecodeDiag(data []byte) (*CellDiag, error) { return diag.Decode(data) }

// OpenStore creates (or reopens) a persistent result store rooted at
// dir, shareable between the CLI, the vcabenchd daemon and library
// callers — across processes and concurrently.
func OpenStore(dir string) (*Store, error) { return store.Open(dir) }

// OpenStoreOptions is OpenStore with explicit tuning (LRU bound,
// telemetry).
func OpenStoreOptions(dir string, o StoreOptions) (*Store, error) {
	return store.OpenOptions(dir, o)
}

// NewTelemetry builds the standard production telemetry bundle: a
// fresh metrics registry and the host's monotonic clock, with span
// tracing off until a Tracer is attached (see NewTracer).
func NewTelemetry() *Telemetry { return obs.NewTelemetry() }

// NewTracer builds a span tracer on the host's monotonic clock.
// Attach it to a Telemetry bundle (tel.Tracer = NewTracer()) before
// the run it should record.
func NewTracer() *Tracer { return obs.NewTracer(obs.RealClock{}) }

// MetricsHandler serves a registry in Prometheus text exposition
// format, for embedding a /metrics endpoint in a custom server.
func MetricsHandler(r *MetricsRegistry) http.Handler { return obs.Handler(r) }

// ScaleByName maps "tiny", "quick" or "paper" to its Scale.
func ScaleByName(name string) (Scale, bool) { return core.ScaleByName(name) }
