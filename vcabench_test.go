package vcabench_test

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/vcabench/vcabench"
	"github.com/vcabench/vcabench/internal/serve"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	tb := vcabench.NewTestbed(1)
	res := vcabench.RunLagStudy(tb, vcabench.Zoom, vcabench.USEast,
		vcabench.USLagFleet(vcabench.USEast), vcabench.TinyScale)
	if res.Lags["US-West"].Len() == 0 {
		t.Fatal("no lag samples through the public API")
	}
	if res.Lags["US-West"].Median() <= res.Lags["US-East2"].Median() {
		t.Error("geographic lag ordering broken")
	}
}

func TestListAndRun(t *testing.T) {
	exps := vcabench.List()
	if len(exps) < 25 {
		t.Errorf("only %d experiments registered", len(exps))
	}
	var sb strings.Builder
	if err := vcabench.Run("table3", 1, vcabench.TinyScale, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"US-East", "UK-West", "Virginia", "Cardiff"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 output missing %q", want)
		}
	}
	if err := vcabench.Run("no-such-figure", 1, vcabench.TinyScale, &sb); err == nil {
		t.Error("unknown experiment should error")
	}
}

// RunParallel's contract through the public facade: worker count never
// changes the rendered bytes.
func TestRunParallelDeterminism(t *testing.T) {
	render := func(workers int) string {
		var sb strings.Builder
		if err := vcabench.RunParallel("fig3", 7, vcabench.TinyScale, workers, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if a, b := render(1), render(4); a != b {
		t.Errorf("fig3 differs between 1 and 4 workers:\n%s\nvs\n%s", a, b)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() string {
		var sb strings.Builder
		if err := vcabench.Run("fig3", 7, vcabench.TinyScale, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed produced different output:\n%s\nvs\n%s", a, b)
	}
}

// Distributed execution through the public facade: a campaign sharded
// across two loopback vcabenchd workers merges to the bytes of a local
// run, and the experiment-by-ID path accepts the same pool.
func TestRunDistributedFacade(t *testing.T) {
	w1 := httptest.NewServer(serve.New(serve.Config{}).Handler())
	t.Cleanup(w1.Close)
	w2 := httptest.NewServer(serve.New(serve.Config{}).Handler())
	t.Cleanup(w2.Close)
	pool, err := vcabench.NewPool([]string{w1.URL, w2.URL})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pool.Healthy()); got != 2 {
		t.Fatalf("Healthy() found %d of 2 workers", got)
	}

	spec := vcabench.Campaign{Name: "facade-grid", Sizes: []int{2, 3}}
	local, err := vcabench.RunCampaign(vcabench.NewTestbed(3), spec, vcabench.TinyScale)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := vcabench.RunDistributed(vcabench.NewTestbed(3), spec, vcabench.TinyScale, pool)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := vcabench.WriteJSON(&a, local); err != nil {
		t.Fatal(err)
	}
	if err := vcabench.WriteJSON(&b, dist); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("RunDistributed differs from RunCampaign:\n--- local ---\n%s\n--- distributed ---\n%s", a.Bytes(), b.Bytes())
	}
	if st := pool.Stats(); st.Remote == 0 {
		t.Error("no cells actually crossed the fleet")
	}

	if _, err := vcabench.RunDistributed(vcabench.NewTestbed(3), spec, vcabench.TinyScale, nil); err == nil {
		t.Error("nil pool accepted")
	}

	// Run-by-ID with a dispatcher: campaign-backed artifacts render the
	// same bytes as a plain run.
	var plain, dispatched strings.Builder
	if err := vcabench.Run("fig17", 7, vcabench.TinyScale, &plain); err != nil {
		t.Fatal(err)
	}
	err = vcabench.RunWithOpts("fig17", 7, vcabench.TinyScale,
		vcabench.RunOpts{Dispatcher: pool}, &dispatched)
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != dispatched.String() {
		t.Error("fig17 differs between plain and dispatched runs")
	}
}

// A trace-bearing campaign crosses a vcabenchd worker byte-identically:
// the Traces axis survives the HTTP spec round trip, the rate-over-time
// series survives the gob round trip, and the merged JSON matches a
// purely local run.
func TestRunDistributedTraceCampaign(t *testing.T) {
	w := httptest.NewServer(serve.New(serve.Config{}).Handler())
	t.Cleanup(w.Close)
	pool, err := vcabench.NewPool([]string{w.URL})
	if err != nil {
		t.Fatal(err)
	}
	spec := vcabench.Campaign{
		Name:       "facade-traces",
		Platforms:  []string{"zoom", "webex"},
		Geometries: []vcabench.Geometry{{Host: "US-East", Receivers: []string{"US-East2"}}},
		Traces: []vcabench.TraceSpec{
			{Name: "clean"},
			{Name: "dip", Square: &vcabench.SquareTrace{
				HighBps: 0, LowBps: 500_000, HighSec: 2, LowSec: 2, Once: true,
			}},
		},
	}
	local, err := vcabench.RunCampaign(vcabench.NewTestbed(9), spec, vcabench.TinyScale)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := vcabench.RunDistributed(vcabench.NewTestbed(9), spec, vcabench.TinyScale, pool)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := vcabench.WriteJSON(&a, local); err != nil {
		t.Fatal(err)
	}
	if err := vcabench.WriteJSON(&b, dist); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("distributed trace campaign differs from local:\n--- local ---\n%s\n--- distributed ---\n%s", a.Bytes(), b.Bytes())
	}
	if st := pool.Stats(); st.Remote != 4 {
		t.Errorf("fleet served %d of 4 cells", st.Remote)
	}
	cell := dist.Cell("facade-traces/zoom/dip")
	if cell == nil || len(cell.RateOverTime) == 0 {
		t.Fatal("rate-over-time series lost across the fleet")
	}
}

// The persistent store through the public facade: a warm rerun from a
// "fresh process" (new store handle, new testbed) renders identical
// bytes while recomputing nothing.
func TestRunWithStoreWarmRerun(t *testing.T) {
	dir := t.TempDir()
	render := func() (string, vcabench.StoreStats) {
		st, err := vcabench.OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := vcabench.RunWithOpts("fig3", 7, vcabench.TinyScale,
			vcabench.RunOpts{Store: st}, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String(), st.Stats()
	}
	cold, coldStats := render()
	warm, warmStats := render()
	if cold != warm {
		t.Errorf("warm rerun differs:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
	if coldStats.Puts == 0 {
		t.Error("cold run persisted nothing")
	}
	if warmStats.Misses != 0 || warmStats.Puts != 0 {
		t.Errorf("warm run recomputed cells: %+v", warmStats)
	}
}
