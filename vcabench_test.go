package vcabench_test

import (
	"strings"
	"testing"

	"github.com/vcabench/vcabench"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	tb := vcabench.NewTestbed(1)
	res := vcabench.RunLagStudy(tb, vcabench.Zoom, vcabench.USEast,
		vcabench.USLagFleet(vcabench.USEast), vcabench.TinyScale)
	if res.Lags["US-West"].Len() == 0 {
		t.Fatal("no lag samples through the public API")
	}
	if res.Lags["US-West"].Median() <= res.Lags["US-East2"].Median() {
		t.Error("geographic lag ordering broken")
	}
}

func TestListAndRun(t *testing.T) {
	exps := vcabench.List()
	if len(exps) < 25 {
		t.Errorf("only %d experiments registered", len(exps))
	}
	var sb strings.Builder
	if err := vcabench.Run("table3", 1, vcabench.TinyScale, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"US-East", "UK-West", "Virginia", "Cardiff"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 output missing %q", want)
		}
	}
	if err := vcabench.Run("no-such-figure", 1, vcabench.TinyScale, &sb); err == nil {
		t.Error("unknown experiment should error")
	}
}

// RunParallel's contract through the public facade: worker count never
// changes the rendered bytes.
func TestRunParallelDeterminism(t *testing.T) {
	render := func(workers int) string {
		var sb strings.Builder
		if err := vcabench.RunParallel("fig3", 7, vcabench.TinyScale, workers, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if a, b := render(1), render(4); a != b {
		t.Errorf("fig3 differs between 1 and 4 workers:\n%s\nvs\n%s", a, b)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() string {
		var sb strings.Builder
		if err := vcabench.Run("fig3", 7, vcabench.TinyScale, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed produced different output:\n%s\nvs\n%s", a, b)
	}
}

// The persistent store through the public facade: a warm rerun from a
// "fresh process" (new store handle, new testbed) renders identical
// bytes while recomputing nothing.
func TestRunWithStoreWarmRerun(t *testing.T) {
	dir := t.TempDir()
	render := func() (string, vcabench.StoreStats) {
		st, err := vcabench.OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := vcabench.RunWithOpts("fig3", 7, vcabench.TinyScale,
			vcabench.RunOpts{Store: st}, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String(), st.Stats()
	}
	cold, coldStats := render()
	warm, warmStats := render()
	if cold != warm {
		t.Errorf("warm rerun differs:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
	if coldStats.Puts == 0 {
		t.Error("cold run persisted nothing")
	}
	if warmStats.Misses != 0 || warmStats.Puts != 0 {
		t.Errorf("warm run recomputed cells: %+v", warmStats)
	}
}
