module github.com/vcabench/vcabench

go 1.24
