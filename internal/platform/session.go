package platform

import (
	"fmt"
	"time"

	"github.com/vcabench/vcabench/internal/simnet"
)

// envelope carries media between two Meet endpoints, addressed to its
// final client. Envelopes are pooled on the Platform: one is allocated
// per relayed packet on the Meet fan-out path, consumed exactly once at
// the second hop, and recycled there.
type envelope struct {
	final simnet.Addr
	inner any
}

// JoinOpts configures one participant's attachment.
type JoinOpts struct {
	// Port is the client's local media port (where relayed media is
	// delivered). Required.
	Port int
	// OnPacket receives media delivered to this participant.
	OnPacket func(*simnet.Packet)
}

// Attachment is one participant's handle on a session.
type Attachment struct {
	sess     *Session
	node     *simnet.Node
	port     int
	sendTo   simnet.Addr
	ep       *Endpoint // per-client endpoint (Meet) or session relay
	onPacket func(*simnet.Packet)
	onTarget []func(float64)
	lastLoss float64
	lastGood float64
	reported bool
	isHost   bool
}

// Node returns the participant's node.
func (a *Attachment) Node() *simnet.Node { return a.node }

// Session returns the session this attachment belongs to.
func (a *Attachment) Session() *Session { return a.sess }

// Target returns the session's current video bitrate target.
func (a *Attachment) Target() float64 { return a.sess.targetBps }

// Endpoint returns the service endpoint this participant talks to
// (nil until Start, or for the remote peer in P2P mode).
func (a *Attachment) Endpoint() *Endpoint { return a.ep }

// SendAddr returns where this participant transmits media (for probing
// and trace classification).
func (a *Attachment) SendAddr() simnet.Addr { return a.sendTo }

// Send transmits one media datagram of the given L7 size into the
// session. payload is opaque application metadata (an *rtp.Packet).
func (a *Attachment) Send(l7 int, payload any) {
	if a.sendTo.Node == "" {
		panic("platform: Send before Session.Start")
	}
	pkt := a.sess.p.net.NewPacket()
	pkt.From = simnet.Addr{Port: a.port}
	pkt.To = a.sendTo
	pkt.Size = l7
	pkt.Payload = payload
	a.node.Send(pkt)
}

// OnTarget registers a callback fired when the platform changes the
// session's video bitrate target. It fires immediately with the current
// target once the session has started.
func (a *Attachment) OnTarget(f func(bps float64)) {
	a.onTarget = append(a.onTarget, f)
	if a.sess.started {
		f(a.sess.targetBps)
	}
}

// ReportReceiverStats feeds one feedback interval's measurements from
// this participant back to the platform: loss is the fraction of media
// lost, goodput the received media rate in bits/s.
func (a *Attachment) ReportReceiverStats(loss, goodput float64) {
	a.lastLoss = loss
	a.lastGood = goodput
	a.reported = true
}

// Session is one meeting.
type Session struct {
	p          *Platform
	id         int
	host       *Attachment
	parts      []*Attachment
	endpoints  []*Endpoint
	p2p        bool
	started    bool
	targetBps  float64
	targetCeil float64
	rateEv     *simnet.Event
	// fwdClock enforces FIFO forwarding per destination: processing
	// jitter delays packets but never reorders a flow (as in a real
	// SFU's per-connection send queue).
	fwdClock map[*Attachment]time.Time
}

// CreateSession opens a meeting hosted by hostNode. The host must Join
// like any other participant before Start.
func (p *Platform) CreateSession() *Session {
	p.sessions++
	return &Session{p: p, id: p.sessions, fwdClock: make(map[*Attachment]time.Time)}
}

// ID returns the session's ordinal (1-based) on its platform.
func (s *Session) ID() int { return s.id }

// Join attaches a participant. The first participant to join is the
// meeting host. Join binds opts.Port on the node.
func (s *Session) Join(node *simnet.Node, opts JoinOpts) *Attachment {
	if s.started {
		panic("platform: Join after Start")
	}
	if opts.Port == 0 {
		panic("platform: JoinOpts.Port required")
	}
	a := &Attachment{
		sess: s, node: node, port: opts.Port,
		onPacket: opts.OnPacket,
		isHost:   len(s.parts) == 0,
	}
	if a.isHost {
		s.host = a
	}
	node.Bind(opts.Port, func(pkt *simnet.Packet) {
		if a.onPacket != nil {
			a.onPacket(pkt)
		}
	})
	s.parts = append(s.parts, a)
	return a
}

// N returns the participant count.
func (s *Session) N() int { return len(s.parts) }

// P2P reports whether the session runs peer-to-peer.
func (s *Session) P2P() bool { return s.p2p }

// Endpoints returns the service endpoints provisioned for this session.
func (s *Session) Endpoints() []*Endpoint { return s.endpoints }

// TargetBps returns the current video bitrate target.
func (s *Session) TargetBps() float64 { return s.targetBps }

// AudioBps returns the platform's audio rate.
func (s *Session) AudioBps() float64 { return s.p.cfg.AudioBps }

// Start wires the media topology and begins rate control. All
// participants must have joined.
func (s *Session) Start() {
	if s.started {
		panic("platform: double Start")
	}
	if len(s.parts) < 2 {
		panic("platform: session needs at least two participants")
	}
	s.started = true
	cfg := s.p.cfg
	s.p2p = cfg.P2PWhenPair && len(s.parts) == 2

	switch {
	case s.p2p:
		// Direct streaming on ephemeral ports: no service endpoint.
		a, b := s.parts[0], s.parts[1]
		a.sendTo = simnet.Addr{Node: b.node.Name(), Port: b.port}
		b.sendTo = simnet.Addr{Node: a.node.Name(), Port: a.port}

	case cfg.PerClientEndpoints:
		// Meet: one endpoint per client; endpoints relay between each
		// other.
		for _, a := range s.parts {
			ep := s.p.clientEndpoint(a.node)
			a.ep = ep
			a.sendTo = ep.Addr(cfg.MediaPort)
			s.addEndpoint(ep)
		}
		for _, ep := range s.endpoints {
			s.wireEndpoint(ep)
		}

	default:
		// Zoom/Webex: a single relay for the whole session.
		ep := s.p.sessionEndpoint(s.host.node.Region())
		for _, a := range s.parts {
			a.ep = ep
			a.sendTo = ep.Addr(cfg.MediaPort)
		}
		s.addEndpoint(ep)
		s.wireEndpoint(ep)
	}

	s.targetBps = cfg.Policy.InitialTarget(len(s.parts), s.p2p, s.p.rng)
	// Recovery probing never exceeds the session type's own target.
	s.targetCeil = s.targetBps * 1.05
	if s.p.rateProbe != nil {
		s.p.rateProbe(s.id, s.targetBps)
	}
	for _, a := range s.parts {
		for _, f := range a.onTarget {
			f(s.targetBps)
		}
	}
	// Rate-control feedback loop at 1 Hz.
	s.rateEv = s.p.sim.Every(time.Second, s.rateTick)
}

func (s *Session) addEndpoint(ep *Endpoint) {
	for _, e := range s.endpoints {
		if e == ep {
			return
		}
	}
	s.endpoints = append(s.endpoints, ep)
}

// wireEndpoint installs the forwarding handler (idempotent per session;
// rebinding replaces any previous session's handler, matching how a media
// server reassigns capacity).
func (s *Session) wireEndpoint(ep *Endpoint) {
	port := s.p.cfg.MediaPort
	net := s.p.net
	s.p.respondToProbes(ep, func(pkt *simnet.Packet) {
		// Outbound packets are built here, synchronously — the inbound
		// pkt may be recycled the moment this handler returns — and
		// handed to the simulator as deferred sends. SendAt schedules
		// exactly one event per forward at the same (time, seq) a
		// closure-based sim.At would have, so event and RNG order are
		// unchanged; only the per-packet closure and Packet-literal
		// allocations are gone.
		if env, ok := pkt.Payload.(*envelope); ok {
			// Second hop (Meet): deliver to the final client.
			dst := s.attachmentFor(env.final.Node)
			out := net.NewPacket()
			out.From = simnet.Addr{Port: port}
			out.To = env.final
			out.Size = pkt.Size
			out.Payload = env.inner
			s.p.releaseEnvelope(env)
			ep.Node.SendAt(s.forwardAt(dst), out)
			return
		}
		// Media from one of this endpoint's clients: fan out.
		src := pkt.From
		for _, dst := range s.parts {
			if dst.node.Name() == src.Node {
				continue
			}
			final := simnet.Addr{Node: dst.node.Name(), Port: dst.port}
			out := net.NewPacket()
			out.From = simnet.Addr{Port: port}
			out.Size = pkt.Size
			if dst.ep != nil && dst.ep != ep {
				// Relay across PoPs to the receiver's endpoint.
				out.To = dst.ep.Addr(port)
				out.Payload = s.p.newEnvelope(final, pkt.Payload)
			} else {
				out.To = final
				out.Payload = pkt.Payload
			}
			ep.Node.SendAt(s.forwardAt(dst), out)
		}
	})
}

// forwardAt samples this hop's processing delay and clamps it so that
// forwarding toward one destination never reorders.
func (s *Session) forwardAt(dst *Attachment) time.Time {
	at := s.p.sim.Now().Add(s.p.procDelay())
	if dst != nil {
		if last, ok := s.fwdClock[dst]; ok && !at.After(last) {
			at = last.Add(time.Microsecond)
		}
		s.fwdClock[dst] = at
	}
	return at
}

// attachmentFor finds the participant on the given node, or nil.
func (s *Session) attachmentFor(node string) *Attachment {
	for _, a := range s.parts {
		if a.node.Name() == node {
			return a
		}
	}
	return nil
}

// rateTick aggregates receiver feedback and lets the policy adjust the
// sender target.
func (s *Session) rateTick() {
	var worstLoss, minGood float64
	seen := false
	for _, a := range s.parts {
		if !a.reported {
			continue
		}
		if !seen || a.lastLoss > worstLoss {
			worstLoss = a.lastLoss
		}
		if !seen || a.lastGood < minGood {
			minGood = a.lastGood
		}
		seen = true
	}
	if !seen {
		return
	}
	next := s.p.cfg.Policy.Adjust(s.targetBps, worstLoss, minGood)
	if next > s.targetCeil {
		next = s.targetCeil
	}
	if next == s.targetBps {
		return
	}
	s.targetBps = next
	if s.p.rateProbe != nil {
		s.p.rateProbe(s.id, next)
	}
	for _, a := range s.parts {
		for _, f := range a.onTarget {
			f(next)
		}
	}
}

// End stops rate control and releases the session's endpoint handlers.
// Participant ports remain bound (clients own them).
func (s *Session) End() {
	if s.rateEv != nil {
		s.rateEv.Cancel()
	}
	for _, ep := range s.endpoints {
		ep.Node.Unbind(s.p.cfg.MediaPort)
	}
}

func (s *Session) String() string {
	return fmt.Sprintf("%s session %d (n=%d, p2p=%v)", s.p.cfg.Kind, s.id, len(s.parts), s.p2p)
}
