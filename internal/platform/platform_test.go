package platform

import (
	"testing"
	"time"

	"github.com/vcabench/vcabench/internal/geo"
	"github.com/vcabench/vcabench/internal/probe"
	"github.com/vcabench/vcabench/internal/simnet"
)

func newTestbed(seed int64) (*simnet.Sim, *simnet.Network) {
	s := simnet.NewSim(seed)
	return s, simnet.NewNetwork(s, simnet.NetworkConfig{})
}

func addClient(n *simnet.Network, name string, r geo.Region) *simnet.Node {
	return n.AddNode(simnet.NodeConfig{Name: name, Region: r})
}

func TestDefaultConfigs(t *testing.T) {
	ports := map[Kind]int{Zoom: 8801, Webex: 9000, Meet: 19305}
	audio := map[Kind]float64{Zoom: 90_000, Webex: 45_000, Meet: 40_000}
	for _, k := range Kinds {
		cfg := DefaultConfig(k)
		if cfg.MediaPort != ports[k] {
			t.Errorf("%s port = %d, want %d", k, cfg.MediaPort, ports[k])
		}
		if cfg.AudioBps != audio[k] {
			t.Errorf("%s audio = %v", k, cfg.AudioBps)
		}
		if cfg.Policy == nil {
			t.Errorf("%s has no policy", k)
		}
	}
}

func TestUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	DefaultConfig(Kind("teams"))
}

// startSession builds an n-party session with a host in hostRegion and
// receivers in the given regions; returns received packet counters.
func startSession(t *testing.T, p *Platform, net *simnet.Network, hostRegion geo.Region, recvRegions []geo.Region, prefix string) (*Session, []*Attachment, []*int) {
	t.Helper()
	s := p.CreateSession()
	host := addClient(net, prefix+"-host", hostRegion)
	counts := []*int{new(int)}
	atts := []*Attachment{nil}
	atts[0] = s.Join(host, JoinOpts{Port: 5004, OnPacket: func(pkt *simnet.Packet) { *counts[0]++ }})
	for i, r := range recvRegions {
		c := new(int)
		node := addClient(net, prefix+"-r"+string(rune('a'+i)), r)
		atts = append(atts, s.Join(node, JoinOpts{Port: 5004, OnPacket: func(pkt *simnet.Packet) { *c++ }}))
		counts = append(counts, c)
	}
	s.Start()
	return s, atts, counts
}

func TestRelayFanOut(t *testing.T) {
	sim, net := newTestbed(1)
	p := New(Webex, net)
	s, atts, counts := startSession(t, p, net, geo.USEast,
		[]geo.Region{geo.USWest, geo.USCentral}, "w")
	// Host sends 10 packets; both receivers (not the host) get them.
	for i := 0; i < 10; i++ {
		atts[0].Send(1000, i)
	}
	sim.RunFor(10 * time.Second)
	if *counts[0] != 0 {
		t.Errorf("host received its own media: %d", *counts[0])
	}
	if *counts[1] != 10 || *counts[2] != 10 {
		t.Errorf("receivers got %d/%d, want 10/10", *counts[1], *counts[2])
	}
	if len(s.Endpoints()) != 1 {
		t.Errorf("webex session endpoints = %d, want 1", len(s.Endpoints()))
	}
	if s.P2P() {
		t.Error("relay session marked P2P")
	}
}

func TestWebexAlwaysUSEast(t *testing.T) {
	_, net := newTestbed(2)
	p := New(Webex, net)
	for i, host := range []geo.Region{geo.USWest, geo.CH, geo.UKWest} {
		s, _, _ := startSession(t, p, net, host, []geo.Region{geo.USEast}, "w"+string(rune('0'+i)))
		// Webex free tier: all sessions relayed via US-East regardless of
		// host location... except two-party sessions have no P2P on
		// Webex either, so an endpoint always exists.
		ep := s.Endpoints()[0]
		if ep.Region.Name != geo.PoPUSEast.Name {
			t.Errorf("host %s: endpoint at %s, want %s", host.Name, ep.Region.Name, geo.PoPUSEast.Name)
		}
		s.End()
	}
}

func TestWebexPaidTierGoesLocal(t *testing.T) {
	_, net := newTestbed(3)
	cfg := DefaultConfig(Webex)
	cfg.PaidTier = true
	cfg.USPoPs = []geo.Region{geo.PoPUSEast, geo.PoPUSWest}
	cfg.EUPoPs = []geo.Region{geo.PoPEUWest, geo.PoPEUCentral}
	p := NewWithConfig(cfg, net)
	s, _, _ := startSession(t, p, net, geo.CH, []geo.Region{geo.FR}, "wp")
	if z := s.Endpoints()[0].Region.Zone; z != geo.ZoneEU {
		t.Errorf("paid-tier EU session relayed via %s", s.Endpoints()[0].Region.Name)
	}
}

func TestZoomP2PForPairs(t *testing.T) {
	sim, net := newTestbed(4)
	p := New(Zoom, net)
	s, atts, counts := startSession(t, p, net, geo.USEast, []geo.Region{geo.USWest}, "z")
	if !s.P2P() {
		t.Fatal("2-party Zoom session should be P2P")
	}
	if len(s.Endpoints()) != 0 {
		t.Errorf("P2P session has %d endpoints", len(s.Endpoints()))
	}
	atts[0].Send(500, "hi")
	atts[1].Send(500, "yo")
	sim.RunFor(10 * time.Second)
	if *counts[0] != 1 || *counts[1] != 1 {
		t.Errorf("p2p delivery %d/%d", *counts[0], *counts[1])
	}
}

func TestZoomRelayForThree(t *testing.T) {
	_, net := newTestbed(5)
	p := New(Zoom, net)
	s, _, _ := startSession(t, p, net, geo.USEast, []geo.Region{geo.USWest, geo.USCentral}, "z3")
	if s.P2P() {
		t.Error("3-party session must use a relay")
	}
	if len(s.Endpoints()) != 1 {
		t.Fatalf("endpoints = %d", len(s.Endpoints()))
	}
	// US host => endpoint near the host (US-East PoP).
	if got := s.Endpoints()[0].Region.Name; got != geo.PoPUSEast.Name {
		t.Errorf("endpoint at %s", got)
	}
}

func TestZoomRegionalLoadBalancing(t *testing.T) {
	_, net := newTestbed(6)
	p := New(Zoom, net)
	seen := map[string]bool{}
	for i := 0; i < 30; i++ {
		s := p.CreateSession()
		h := addClient(net, "eu-h"+string(rune('a'+i%26))+string(rune('a'+i/26)), geo.CH)
		r := addClient(net, "eu-r"+string(rune('a'+i%26))+string(rune('a'+i/26)), geo.FR)
		s.Join(h, JoinOpts{Port: 5004})
		s.Join(r, JoinOpts{Port: 5004})
		x := addClient(net, "eu-x"+string(rune('a'+i%26))+string(rune('a'+i/26)), geo.DE)
		s.Join(x, JoinOpts{Port: 5004}) // 3 parties => relay
		s.Start()
		seen[s.Endpoints()[0].Region.Name] = true
		s.End()
	}
	if len(seen) != 3 {
		t.Errorf("EU Zoom sessions used %d distinct US PoPs, want 3 (LB bands): %v", len(seen), seen)
	}
	for name := range seen {
		r, _ := geo.Lookup(name)
		if r.Zone != geo.ZoneUS {
			t.Errorf("Zoom free tier relayed in %s", name)
		}
	}
}

func TestMeetPerClientEndpointsAndStickiness(t *testing.T) {
	sim, net := newTestbed(7)
	p := New(Meet, net)
	hostNode := addClient(net, "m-host", geo.USEast)
	recvNode := addClient(net, "m-recv", geo.UKSouth)

	distinct := map[string]bool{}
	for i := 0; i < 20; i++ {
		s := p.CreateSession()
		got := 0
		s.Join(hostNode, JoinOpts{Port: 5004})
		ra := s.Join(recvNode, JoinOpts{Port: 5004, OnPacket: func(*simnet.Packet) { got++ }})
		s.Start()
		if ra.Endpoint().Region.Zone != geo.ZoneEU {
			t.Errorf("UK client served from %s", ra.Endpoint().Region.Name)
		}
		distinct[ra.Endpoint().Name] = true
		s.End()
	}
	if len(distinct) > 2 {
		t.Errorf("Meet client saw %d endpoints over 20 sessions, want <= 2", len(distinct))
	}
	// Media path crosses both endpoints.
	s := p.CreateSession()
	got := 0
	ha := s.Join(hostNode, JoinOpts{Port: 5004})
	s.Join(recvNode, JoinOpts{Port: 5004, OnPacket: func(*simnet.Packet) { got++ }})
	s.Start()
	if len(s.Endpoints()) != 2 {
		t.Fatalf("meet 2-party endpoints = %d, want 2 (no P2P on Meet)", len(s.Endpoints()))
	}
	ha.Send(900, "x")
	sim.RunFor(10 * time.Second)
	if got != 1 {
		t.Errorf("cross-endpoint delivery failed: %d", got)
	}
}

func TestEndpointChurnZoomVsMeet(t *testing.T) {
	_, net := newTestbed(8)
	pz := New(Zoom, net)
	host := addClient(net, "c-host", geo.USEast)
	peers := []*simnet.Node{
		addClient(net, "c-p1", geo.USWest),
		addClient(net, "c-p2", geo.USCentral),
	}
	distinct := map[string]bool{}
	for i := 0; i < 20; i++ {
		s := pz.CreateSession()
		s.Join(host, JoinOpts{Port: 5004})
		for _, pn := range peers {
			s.Join(pn, JoinOpts{Port: 5004})
		}
		s.Start()
		distinct[s.Endpoints()[0].Name] = true
		s.End()
	}
	if len(distinct) != 20 {
		t.Errorf("Zoom distinct endpoints over 20 sessions = %d, want 20", len(distinct))
	}
}

func TestRateFeedbackLoop(t *testing.T) {
	sim, net := newTestbed(9)
	p := New(Meet, net)
	s := p.CreateSession()
	h := addClient(net, "f-h", geo.USEast)
	r1 := addClient(net, "f-r1", geo.USWest)
	r2 := addClient(net, "f-r2", geo.USCentral)
	s.Join(h, JoinOpts{Port: 5004})
	a1 := s.Join(r1, JoinOpts{Port: 5004})
	s.Join(r2, JoinOpts{Port: 5004})
	s.Start()
	var targets []float64
	// The host's encoder follows target changes.
	s.parts[0].OnTarget(func(bps float64) { targets = append(targets, bps) })
	if len(targets) != 1 {
		t.Fatalf("OnTarget after Start should fire immediately, got %d", len(targets))
	}
	initial := targets[0]
	// Receiver 1 reports heavy loss at a goodput of 200 kbps.
	sim.After(500*time.Millisecond, func() {
		a1.ReportReceiverStats(0.10, 200_000)
	})
	sim.RunFor(3 * time.Second)
	final := s.TargetBps()
	if final >= initial {
		t.Errorf("target did not adapt down: %v -> %v", initial, final)
	}
	if final < 100_000 {
		t.Errorf("target collapsed below floor: %v", final)
	}
	s.End()
}

func TestSessionLifecyclePanics(t *testing.T) {
	_, net := newTestbed(10)
	p := New(Zoom, net)
	s := p.CreateSession()
	h := addClient(net, "l-h", geo.USEast)
	s.Join(h, JoinOpts{Port: 5004})
	assertPanic(t, "single participant Start", func() { s.Start() })
	assertPanic(t, "zero port join", func() { s.Join(h, JoinOpts{}) })
	r := addClient(net, "l-r", geo.USWest)
	a := s.Join(r, JoinOpts{Port: 5004})
	_ = a
	s.Start()
	assertPanic(t, "double start", func() { s.Start() })
	assertPanic(t, "join after start", func() { s.Join(h, JoinOpts{Port: 5004}) })
}

func assertPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestProbeEndpointRTT(t *testing.T) {
	sim, net := newTestbed(11)
	p := New(Webex, net)
	s, atts, _ := startSession(t, p, net, geo.USWest, []geo.Region{geo.USWest2}, "pr")
	ep := s.Endpoints()[0]
	// tcpping from the US-West host to the (US-East) endpoint.
	pr := probe.NewProber(sim, atts[0].Node())
	var rtts []time.Duration
	pr.Run(ep.Addr(p.MediaPort()), 20, 50*time.Millisecond, func(r []time.Duration) { rtts = r })
	sim.RunFor(10 * time.Second)
	if len(rtts) != 20 {
		t.Fatalf("got %d RTTs", len(rtts))
	}
	model := net.PathModel().RTT(geo.USWest, geo.PoPUSEast)
	for _, r := range rtts {
		if r < model || r > model+20*time.Millisecond {
			t.Errorf("RTT %v vs model %v", r, model)
		}
	}
}

func TestResolve(t *testing.T) {
	_, net := newTestbed(12)
	p := New(Zoom, net)
	s, _, _ := startSession(t, p, net, geo.USEast, []geo.Region{geo.USWest, geo.CH}, "rv")
	ep := s.Endpoints()[0]
	ip, ok := p.Resolve(ep.Name)
	if !ok {
		t.Fatal("endpoint not resolvable")
	}
	if ip[0] != 170 || ip[1] != 114 {
		t.Errorf("zoom endpoint IP = %v", ip)
	}
	if _, ok := p.Resolve("nonexistent"); ok {
		t.Error("resolved unknown node")
	}
}

func TestPolicyShapes(t *testing.T) {
	sim, _ := newTestbed(13)
	rng := sim.Fork("t")
	zp, wp, mp := NewZoomPolicy(), NewWebexPolicy(), NewMeetPolicy()
	// Initial targets follow the paper's rate table.
	z3 := zp.InitialTarget(3, false, rng)
	if z3 < 600_000 || z3 > 800_000 {
		t.Errorf("zoom relay target = %v", z3)
	}
	z2 := zp.InitialTarget(2, true, rng)
	if z2 < 900_000 || z2 > 1_100_000 {
		t.Errorf("zoom p2p target = %v", z2)
	}
	w := wp.InitialTarget(5, false, rng)
	if w < 2_400_000 || w > 2_600_000 {
		t.Errorf("webex target = %v", w)
	}
	m2 := mp.InitialTarget(2, false, rng)
	if m2 < 1_600_000 || m2 > 2_000_000 {
		t.Errorf("meet 2-party target = %v", m2)
	}
	m5 := mp.InitialTarget(5, false, rng)
	if m5 < 350_000 || m5 > 650_000 {
		t.Errorf("meet multi target = %v", m5)
	}
	// Meet variance exceeds Webex variance across sessions.
	spread := func(pol RatePolicy, n int) float64 {
		lo, hi := 1e18, 0.0
		for i := 0; i < 200; i++ {
			v := pol.InitialTarget(n, false, rng)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return (hi - lo) / lo
	}
	if spread(mp, 5) < spread(wp, 5)*3 {
		t.Error("Meet session variance should dwarf Webex's")
	}
	// Adjustment direction under loss.
	for name, pol := range map[string]RatePolicy{"zoom": zp, "webex": wp, "meet": mp} {
		cur := pol.InitialTarget(3, false, rng)
		down := pol.Adjust(cur, 0.5, cur/4)
		if down >= cur {
			t.Errorf("%s did not reduce under 50%% loss", name)
		}
		if down < pol.Floor() {
			t.Errorf("%s went below floor", name)
		}
	}
	// Webex tolerates 10% loss without flinching; Meet does not.
	if wp.Adjust(2_500_000, 0.10, 1_000_000) < 2_500_000 {
		t.Error("webex should shrug off 10% loss (sluggish control)")
	}
	if mp.Adjust(500_000, 0.10, 300_000) >= 500_000 {
		t.Error("meet should react to 10% loss")
	}
}
