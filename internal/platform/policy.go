package platform

import "math/rand"

// RatePolicy computes a session's video bitrate target for the sender.
// The paper could only observe the *effects* of each platform's rate
// control (Figs 15, 17, 19, Table 4); these policies reproduce those
// observed behaviors:
//
//   - Zoom: modest targets (~0.7 Mbps relay, ~1.0 Mbps P2P), a stepwise
//     ladder downward under loss, quick recovery — best rate-for-QoE in
//     the US, with a cliff below ~250 kbps.
//   - Webex: a high, nearly constant target (~2.5 Mbps) that barely
//     reacts to loss — "virtually no fluctuation across sessions", and
//     the worst collapse under tight bandwidth caps.
//   - Meet: high two-party target (~1.8 Mbps), low multi-party target
//     (~0.5 Mbps) with large session-to-session variance, and prompt
//     goodput-tracking adaptation — the most graceful degradation.
type RatePolicy interface {
	// InitialTarget returns the starting bitrate for a session with n
	// participants, relayed or P2P. rng adds the platform's
	// session-to-session variance deterministically.
	InitialTarget(n int, p2p bool, rng *rand.Rand) float64
	// Adjust returns the new target given one feedback interval's loss
	// fraction and measured goodput (bps).
	Adjust(current, loss, goodput float64) float64
	// Floor is the lowest target the platform will use.
	Floor() float64
}

// --- Zoom ---

type zoomPolicy struct{}

// NewZoomPolicy returns Zoom's rate policy.
func NewZoomPolicy() RatePolicy { return zoomPolicy{} }

func (zoomPolicy) InitialTarget(n int, p2p bool, rng *rand.Rand) float64 {
	if p2p {
		return 1_000_000 * (1 + 0.05*(rng.Float64()-0.5))
	}
	return 700_000 * (1 + 0.05*(rng.Float64()-0.5))
}

func (zoomPolicy) Adjust(cur, loss, goodput float64) float64 {
	switch {
	case loss > 0.05:
		// Step down the ladder, harder the worse the loss: Zoom
		// converges within seconds and descends far enough that audio
		// plus residual video fit under even a 250 kbps cap (the
		// mechanism behind its flat audio MOS in Fig 18).
		f := 1 - 2*loss
		if f < 0.4 {
			f = 0.4
		}
		cur *= f
	case loss < 0.01:
		cur *= 1.08 // probe back up
	}
	if cur > 1_000_000 {
		cur = 1_000_000
	}
	if cur < 60_000 {
		cur = 60_000
	}
	return cur
}

func (zoomPolicy) Floor() float64 { return 60_000 }

// --- Webex ---

type webexPolicy struct{}

// NewWebexPolicy returns Webex's rate policy.
func NewWebexPolicy() RatePolicy { return webexPolicy{} }

func (webexPolicy) InitialTarget(n int, p2p bool, rng *rand.Rand) float64 {
	// Virtually constant across sessions and participant counts.
	return 2_500_000 * (1 + 0.01*(rng.Float64()-0.5))
}

func (webexPolicy) Adjust(cur, loss, goodput float64) float64 {
	// Sluggish: only a catastrophic interval moves the target, and the
	// platform races right back up — sustained overload under caps.
	switch {
	case loss > 0.15:
		cur *= 0.5
	case loss < 0.02:
		cur *= 1.3
	}
	if cur > 2_500_000 {
		cur = 2_500_000
	}
	if cur < 400_000 {
		cur = 400_000
	}
	return cur
}

func (webexPolicy) Floor() float64 { return 400_000 }

// --- Meet ---

type meetPolicy struct{}

// NewMeetPolicy returns Meet's rate policy.
func NewMeetPolicy() RatePolicy { return meetPolicy{} }

func (meetPolicy) InitialTarget(n int, p2p bool, rng *rand.Rand) float64 {
	if n <= 2 {
		// 1.6-2.0 Mbps two-party sessions (§4.3.1).
		return 1_800_000 * (1 + 0.12*(rng.Float64()-0.5))
	}
	// 0.4-0.6 Mbps multi-party, with the most dynamic variance.
	return 500_000 * (1 + 0.4*(rng.Float64()-0.5))
}

func (meetPolicy) Adjust(cur, loss, goodput float64) float64 {
	switch {
	case loss > 0.02 && goodput > 0:
		// Track measured goodput with headroom: graceful degradation.
		cur = goodput * 0.85
	case loss < 0.005:
		cur *= 1.05
	}
	if cur > 2_000_000 {
		cur = 2_000_000
	}
	if cur < 120_000 {
		cur = 120_000
	}
	return cur
}

func (meetPolicy) Floor() float64 { return 120_000 }
