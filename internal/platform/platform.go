// Package platform models the three videoconferencing services the paper
// measured — Zoom, Webex and Google Meet — as media infrastructures on
// top of the simulated network. The models encode the *topology and
// policies the paper inferred from black-box measurement* (Fig 3, §4.2),
// not its measured outputs: lag, RTT, rate and QoE numbers emerge from
// running sessions through these infrastructures.
//
// Architecture per platform:
//
//   - Zoom: one service endpoint per session (UDP/8801), provisioned in
//     the US near the meeting host; non-US sessions are load-balanced
//     across three US PoPs (the stepwise RTT bands of Figs 10a/11a);
//     endpoints change every session; exactly two participants stream
//     peer-to-peer on ephemeral ports.
//   - Webex: one service endpoint per session (UDP/9000), always in
//     US-East on the free tier (the artificial detour of Fig 5b/9b);
//     endpoints almost always change per session. The paid tier
//     (PaidTier option) provisions geographically close endpoints.
//   - Meet: one endpoint per *client* (UDP/19305), chosen from a global
//     footprint including Europe; clients stick to the same endpoint
//     across sessions; media crosses sender-endpoint → receiver-endpoint.
package platform

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/vcabench/vcabench/internal/capture"
	"github.com/vcabench/vcabench/internal/geo"
	"github.com/vcabench/vcabench/internal/probe"
	"github.com/vcabench/vcabench/internal/simnet"
)

// Kind names a platform under test.
type Kind string

const (
	Zoom  Kind = "zoom"
	Webex Kind = "webex"
	Meet  Kind = "meet"
)

// Kinds lists all platforms in the paper's presentation order.
var Kinds = []Kind{Zoom, Webex, Meet}

// Config is a platform's behavioral profile. The defaults for each Kind
// are derived from the paper's findings; see DESIGN.md §1.
type Config struct {
	Kind      Kind
	MediaPort int
	// AudioBps is the platform's audio stream rate (paper §4.4: Zoom
	// 90 kbps, Webex 45 kbps, Meet 40 kbps).
	AudioBps float64
	// PerClientEndpoints selects the Meet-style topology.
	PerClientEndpoints bool
	// P2PWhenPair enables Zoom's two-party peer-to-peer mode.
	P2PWhenPair bool
	// RegionalLB load-balances non-US sessions across all US PoPs
	// (Zoom's stepwise RTT bands).
	RegionalLB bool
	// EndpointReuseProb is the chance a new session reuses the previous
	// endpoint (Webex's 19.5-of-20 distinct endpoints).
	EndpointReuseProb float64
	// StickyFlipProb is the chance a Meet client is served by its
	// secondary endpoint in a given session (1.8 endpoints/20 sessions).
	StickyFlipProb float64
	// USPoPs / EUPoPs is the media footprint.
	USPoPs []geo.Region
	EUPoPs []geo.Region
	// ProcBase/ProcJitterMean model per-packet forwarding delay at an
	// endpoint (jitter is exponential). Meet's larger values reproduce
	// its load-variation lag penalty (§4.2.1).
	ProcBase       time.Duration
	ProcJitterMean time.Duration
	// IPBase is the first two octets of the platform's endpoint range.
	IPBase [2]byte
	// Policy computes video bitrate targets; see policy.go.
	Policy RatePolicy
	// PaidTier provisions geographically-nearest endpoints (paper §6:
	// Webex paid subscriptions stream from close-by servers).
	PaidTier bool
}

// DefaultConfig returns the calibrated profile for a platform.
func DefaultConfig(k Kind) Config {
	usPoPs := []geo.Region{geo.PoPUSEast, geo.PoPUSCentral, geo.PoPUSWest}
	euPoPs := []geo.Region{geo.PoPEUWest, geo.PoPEUCentral, geo.PoPEUNorth}
	switch k {
	case Zoom:
		return Config{
			Kind: Zoom, MediaPort: 8801, AudioBps: 90_000,
			P2PWhenPair: true, RegionalLB: true,
			USPoPs:   usPoPs, // US-only media footprint on the free tier
			ProcBase: 800 * time.Microsecond, ProcJitterMean: 1200 * time.Microsecond,
			IPBase: [2]byte{170, 114},
			Policy: NewZoomPolicy(),
		}
	case Webex:
		return Config{
			Kind: Webex, MediaPort: 9000, AudioBps: 45_000,
			EndpointReuseProb: 0.025,
			USPoPs:            []geo.Region{geo.PoPUSEast}, // free tier: US-East only
			ProcBase:          700 * time.Microsecond, ProcJitterMean: 900 * time.Microsecond,
			IPBase: [2]byte{66, 114},
			Policy: NewWebexPolicy(),
		}
	case Meet:
		return Config{
			Kind: Meet, MediaPort: 19305, AudioBps: 40_000,
			PerClientEndpoints: true,
			StickyFlipProb:     0.1,
			USPoPs:             usPoPs, EUPoPs: euPoPs,
			ProcBase: 4 * time.Millisecond, ProcJitterMean: 11 * time.Millisecond,
			IPBase: [2]byte{142, 250},
			Policy: NewMeetPolicy(),
		}
	}
	panic(fmt.Sprintf("platform: unknown kind %q", k))
}

// Endpoint is one provisioned media server instance.
type Endpoint struct {
	Name   string
	Node   *simnet.Node
	IP     capture.IPv4
	Region geo.Region
}

// Addr returns the endpoint's media address.
func (e *Endpoint) Addr(port int) simnet.Addr { return simnet.Addr{Node: e.Name, Port: port} }

// Platform instantiates one service on a network.
type Platform struct {
	cfg      Config
	net      *simnet.Network
	sim      *simnet.Sim
	rng      *rand.Rand
	epSeq    int
	sessions int
	lastEP   *Endpoint
	// Meet stickiness: primary/secondary endpoint per client node.
	sticky map[string][2]*Endpoint
	ips    map[string]capture.IPv4
	// rateProbe, when set, observes every rate-control target change —
	// the flight-recorder seam (see internal/diag). It fires in sim
	// time, after the target is set but before OnTarget callbacks.
	rateProbe func(session int, bps float64)
	// freeEnvs recycles Meet relay envelopes: each is consumed exactly
	// once at the second forwarding hop, so the free-list stays small
	// (bounded by envelopes in flight) and reuse is single-goroutine.
	freeEnvs []*envelope
}

// newEnvelope takes a relay envelope from the free-list.
func (p *Platform) newEnvelope(final simnet.Addr, inner any) *envelope {
	if k := len(p.freeEnvs); k > 0 {
		env := p.freeEnvs[k-1]
		p.freeEnvs = p.freeEnvs[:k-1]
		env.final, env.inner = final, inner
		return env
	}
	return &envelope{final: final, inner: inner}
}

// releaseEnvelope recycles a consumed envelope, dropping its payload
// reference.
func (p *Platform) releaseEnvelope(env *envelope) {
	env.inner = nil
	p.freeEnvs = append(p.freeEnvs, env)
}

// SetRateProbe installs (or removes, with nil) the rate-target
// observer, covering every session the platform runs.
func (p *Platform) SetRateProbe(f func(session int, bps float64)) { p.rateProbe = f }

// New instantiates a platform with its default configuration.
func New(k Kind, net *simnet.Network) *Platform {
	return NewWithConfig(DefaultConfig(k), net)
}

// NewWithConfig instantiates a platform with a custom profile (used by
// the paid-tier and ablation experiments).
func NewWithConfig(cfg Config, net *simnet.Network) *Platform {
	if cfg.Policy == nil {
		cfg.Policy = DefaultConfig(cfg.Kind).Policy
	}
	return &Platform{
		cfg:    cfg,
		net:    net,
		sim:    net.Sim(),
		rng:    net.Sim().Fork("platform." + string(cfg.Kind)),
		sticky: make(map[string][2]*Endpoint),
		ips:    make(map[string]capture.IPv4),
	}
}

// Kind returns the platform's identity.
func (p *Platform) Kind() Kind { return p.cfg.Kind }

// Config returns the active profile.
func (p *Platform) Config() Config { return p.cfg }

// MediaPort returns the platform's well-known media port.
func (p *Platform) MediaPort() int { return p.cfg.MediaPort }

// Resolve maps a node name this platform created to its service IP.
func (p *Platform) Resolve(node string) (capture.IPv4, bool) {
	ip, ok := p.ips[node]
	return ip, ok
}

// footprint returns the PoPs available given the config.
func (p *Platform) footprint() []geo.Region {
	out := append([]geo.Region{}, p.cfg.USPoPs...)
	out = append(out, p.cfg.EUPoPs...)
	return out
}

// newEndpoint provisions a fresh media server node at the given PoP.
func (p *Platform) newEndpoint(at geo.Region) *Endpoint {
	p.epSeq++
	name := fmt.Sprintf("%s-ep-%d", p.cfg.Kind, p.epSeq)
	node := p.net.AddNode(simnet.NodeConfig{Name: name, Region: at})
	ip := capture.IPv4{p.cfg.IPBase[0], p.cfg.IPBase[1], byte(p.epSeq >> 8), byte(p.epSeq)}
	ep := &Endpoint{Name: name, Node: node, IP: ip, Region: at}
	p.ips[name] = ip
	return ep
}

// sessionEndpoint picks the single relay for a Zoom/Webex-style session.
func (p *Platform) sessionEndpoint(host geo.Region) *Endpoint {
	// Occasional endpoint reuse (Webex sees ~19.5 distinct over 20).
	if p.lastEP != nil && p.rng.Float64() < p.cfg.EndpointReuseProb {
		return p.lastEP
	}
	var at geo.Region
	path := p.net.PathModel()
	switch {
	case p.cfg.PaidTier:
		at = path.Nearest(host, p.footprint())
	case host.Zone == geo.ZoneUS || len(p.cfg.USPoPs) == 1:
		// US sessions (or a single-PoP footprint like free-tier Webex):
		// nearest US PoP to the host.
		at = path.Nearest(host, p.cfg.USPoPs)
	case p.cfg.RegionalLB:
		// Non-US sessions on a US-only footprint: regional load
		// balancing across the US PoPs (Zoom's three RTT bands).
		at = p.cfg.USPoPs[p.rng.Intn(len(p.cfg.USPoPs))]
	default:
		at = path.Nearest(host, p.cfg.USPoPs)
	}
	ep := p.newEndpoint(at)
	p.lastEP = ep
	return ep
}

// clientEndpoint returns the Meet-style per-client endpoint, sticky
// across sessions.
func (p *Platform) clientEndpoint(clientNode *simnet.Node) *Endpoint {
	name := clientNode.Name()
	pair, ok := p.sticky[name]
	if !ok {
		at := p.net.PathModel().Nearest(clientNode.Region(), p.footprint())
		primary := p.newEndpoint(at)
		// The secondary is provisioned lazily on first flip.
		pair = [2]*Endpoint{primary, nil}
		p.sticky[name] = pair
	}
	if p.rng.Float64() < p.cfg.StickyFlipProb {
		if pair[1] == nil {
			at := p.net.PathModel().Nearest(clientNode.Region(), p.footprint())
			pair[1] = p.newEndpoint(at)
			p.sticky[name] = pair
		}
		return pair[1]
	}
	return pair[0]
}

// procDelay samples the endpoint's forwarding latency.
func (p *Platform) procDelay() time.Duration {
	j := p.rng.ExpFloat64() * float64(p.cfg.ProcJitterMean)
	return p.cfg.ProcBase + time.Duration(j)
}

// respondToProbes installs the tcpping responder on an endpoint.
func (p *Platform) respondToProbes(ep *Endpoint, next simnet.Handler) {
	probe.Respond(ep.Node, p.cfg.MediaPort, next)
}
