// Package realnet is a real-socket counterpart to the simulated
// transport: a UDP fan-out relay (one Zoom/Webex-style service endpoint)
// plus a minimal client, both on net.UDPConn. It exists to demonstrate
// that the harness's measurement pipeline — packet capture, burst
// detection, lag matching — runs unchanged against genuine network I/O;
// examples/realudp drives a session over the loopback interface with
// configurable artificial forwarding delay standing in for propagation.
package realnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Wire format: 1-byte message type followed by payload.
const (
	msgJoin = 'J'
	msgData = 'D'
)

// MaxDatagram bounds relayed packet sizes.
const MaxDatagram = 2048

// Relay is a single-session fan-out media server on a real UDP socket.
type Relay struct {
	conn  *net.UDPConn
	delay time.Duration

	mu      sync.Mutex
	members map[string]*net.UDPAddr
	closed  bool

	wg sync.WaitGroup
	// Forwarded counts datagrams fanned out (for tests/metrics).
	forwarded int64
}

// ListenRelay starts a relay on addr (e.g. "127.0.0.1:0"). Each forwarded
// datagram is artificially delayed by delay, standing in for one-way
// propagation to the receiver.
func ListenRelay(addr string, delay time.Duration) (*Relay, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("realnet: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("realnet: listen: %w", err)
	}
	r := &Relay{
		conn:    conn,
		delay:   delay,
		members: make(map[string]*net.UDPAddr),
	}
	r.wg.Add(1)
	go r.serve()
	return r, nil
}

// Addr returns the relay's bound address.
func (r *Relay) Addr() *net.UDPAddr { return r.conn.LocalAddr().(*net.UDPAddr) }

// Forwarded returns the number of datagrams fanned out so far.
func (r *Relay) Forwarded() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.forwarded
}

func (r *Relay) serve() {
	defer r.wg.Done()
	buf := make([]byte, MaxDatagram)
	for {
		n, from, err := r.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		if n == 0 {
			continue
		}
		switch buf[0] {
		case msgJoin:
			r.mu.Lock()
			r.members[from.String()] = from
			r.mu.Unlock()
		case msgData:
			pkt := make([]byte, n)
			copy(pkt, buf[:n])
			r.mu.Lock()
			var dests []*net.UDPAddr
			//vcalint:ignore maprange fan-out over a real UDP socket; delivery order is up to the network, not an output contract
			for k, m := range r.members {
				if k != from.String() {
					dests = append(dests, m)
				}
			}
			r.forwarded += int64(len(dests))
			closed := r.closed
			r.mu.Unlock()
			if closed {
				return
			}
			for _, d := range dests {
				d := d
				if r.delay > 0 {
					time.AfterFunc(r.delay, func() { r.conn.WriteToUDP(pkt, d) })
				} else {
					r.conn.WriteToUDP(pkt, d)
				}
			}
		}
	}
}

// Close shuts the relay down.
func (r *Relay) Close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.conn.Close()
	r.wg.Wait()
}

// Client is a minimal relay participant.
type Client struct {
	conn  *net.UDPConn
	relay *net.UDPAddr
}

// Dial creates a client socket bound to an ephemeral local port.
func Dial(relay *net.UDPAddr) (*Client, error) {
	conn, err := net.DialUDP("udp", nil, relay)
	if err != nil {
		return nil, fmt.Errorf("realnet: dial: %w", err)
	}
	return &Client{conn: conn, relay: relay}, nil
}

// Join registers the client with the relay.
func (c *Client) Join() error {
	_, err := c.conn.Write([]byte{msgJoin})
	return err
}

// Send transmits one data packet: an 8-byte big-endian send timestamp
// (UnixNano) followed by the payload, so receivers can compute streaming
// lag exactly as the paper does with synchronized clocks.
func (c *Client) Send(payload []byte) error {
	buf := make([]byte, 1+8+len(payload))
	buf[0] = msgData
	binary.BigEndian.PutUint64(buf[1:9], uint64(time.Now().UnixNano()))
	copy(buf[9:], payload)
	_, err := c.conn.Write(buf)
	return err
}

// ErrTimeout marks a Recv deadline expiry.
var ErrTimeout = errors.New("realnet: receive timeout")

// Recv blocks for one data packet, returning its payload and the
// sender-stamped one-way lag.
func (c *Client) Recv(timeout time.Duration) (payload []byte, lag time.Duration, err error) {
	if err := c.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return nil, 0, err
	}
	buf := make([]byte, MaxDatagram)
	for {
		n, err := c.conn.Read(buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return nil, 0, ErrTimeout
			}
			return nil, 0, err
		}
		if n < 9 || buf[0] != msgData {
			continue
		}
		sentAt := time.Unix(0, int64(binary.BigEndian.Uint64(buf[1:9])))
		out := make([]byte, n-9)
		copy(out, buf[9:n])
		return out, time.Since(sentAt), nil
	}
}

// LocalAddr returns the client's bound address.
func (c *Client) LocalAddr() *net.UDPAddr { return c.conn.LocalAddr().(*net.UDPAddr) }

// Close releases the socket.
func (c *Client) Close() { c.conn.Close() }
