package realnet

import (
	"testing"
	"time"
)

func TestRelayFanOut(t *testing.T) {
	r, err := ListenRelay("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	a, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Join(); err != nil {
		t.Fatal(err)
	}
	if err := b.Join(); err != nil {
		t.Fatal(err)
	}
	// Give the relay a moment to register both members.
	time.Sleep(50 * time.Millisecond)

	if err := a.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	payload, lag, err := b.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "hello" {
		t.Errorf("payload = %q", payload)
	}
	if lag < 0 || lag > time.Second {
		t.Errorf("lag = %v", lag)
	}
	if r.Forwarded() != 1 {
		t.Errorf("forwarded = %d", r.Forwarded())
	}
}

func TestRelayDoesNotEcho(t *testing.T) {
	r, err := ListenRelay("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	a, _ := Dial(r.Addr())
	defer a.Close()
	a.Join()
	time.Sleep(20 * time.Millisecond)
	a.Send([]byte("self"))
	if _, _, err := a.Recv(200 * time.Millisecond); err != ErrTimeout {
		t.Errorf("sender heard its own packet: err=%v", err)
	}
}

func TestArtificialDelay(t *testing.T) {
	const delay = 60 * time.Millisecond
	r, err := ListenRelay("127.0.0.1:0", delay)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	a, _ := Dial(r.Addr())
	defer a.Close()
	b, _ := Dial(r.Addr())
	defer b.Close()
	a.Join()
	b.Join()
	time.Sleep(30 * time.Millisecond)

	a.Send([]byte("x"))
	_, lag, err := b.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if lag < delay {
		t.Errorf("lag %v < configured delay %v", lag, delay)
	}
}

func TestMultipleReceivers(t *testing.T) {
	r, err := ListenRelay("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	sender, _ := Dial(r.Addr())
	defer sender.Close()
	sender.Join()
	var recvs []*Client
	for i := 0; i < 3; i++ {
		c, err := Dial(r.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.Join()
		recvs = append(recvs, c)
	}
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < 5; i++ {
		if err := sender.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for ci, c := range recvs {
		for i := 0; i < 5; i++ {
			payload, _, err := c.Recv(2 * time.Second)
			if err != nil {
				t.Fatalf("receiver %d packet %d: %v", ci, i, err)
			}
			if payload[0] != byte(i) {
				t.Errorf("receiver %d got %d, want %d", ci, payload[0], i)
			}
		}
	}
}

func TestCloseUnblocks(t *testing.T) {
	r, err := ListenRelay("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		r.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Close did not return")
	}
}
