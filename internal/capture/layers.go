package capture

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// LayerType identifies a protocol layer within a decoded packet.
type LayerType int

const (
	LayerTypeEthernet LayerType = iota + 1
	LayerTypeIPv4
	LayerTypeUDP
	LayerTypeRTP
	LayerTypePayload
)

func (lt LayerType) String() string {
	switch lt {
	case LayerTypeEthernet:
		return "Ethernet"
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeUDP:
		return "UDP"
	case LayerTypeRTP:
		return "RTP"
	case LayerTypePayload:
		return "Payload"
	}
	return fmt.Sprintf("LayerType(%d)", int(lt))
}

// Layer is one decoded protocol layer, following the gopacket shape:
// contents are the layer's own header bytes, payload is everything after.
type Layer interface {
	LayerType() LayerType
	LayerContents() []byte
	LayerPayload() []byte
}

// EthernetLayer is a minimal Ethernet II header.
type EthernetLayer struct {
	SrcMAC, DstMAC [6]byte
	EtherType      uint16
	contents       []byte
	payload        []byte
}

func (l *EthernetLayer) LayerType() LayerType  { return LayerTypeEthernet }
func (l *EthernetLayer) LayerContents() []byte { return l.contents }
func (l *EthernetLayer) LayerPayload() []byte  { return l.payload }

// IPv4Layer is an IPv4 header without options.
type IPv4Layer struct {
	Src, Dst IPv4
	Protocol uint8
	TTL      uint8
	Length   uint16 // total length
	ID       uint16
	Checksum uint16
	contents []byte
	payload  []byte
}

func (l *IPv4Layer) LayerType() LayerType  { return LayerTypeIPv4 }
func (l *IPv4Layer) LayerContents() []byte { return l.contents }
func (l *IPv4Layer) LayerPayload() []byte  { return l.payload }

// Flow returns the network-layer flow (ports zero).
func (l *IPv4Layer) Flow() Flow {
	return Flow{Src: Endpoint{IP: l.Src}, Dst: Endpoint{IP: l.Dst}}
}

// UDPLayer is a UDP header.
type UDPLayer struct {
	SrcPort, DstPort uint16
	Length           uint16 // header + payload
	contents         []byte
	payload          []byte
}

func (l *UDPLayer) LayerType() LayerType  { return LayerTypeUDP }
func (l *UDPLayer) LayerContents() []byte { return l.contents }
func (l *UDPLayer) LayerPayload() []byte  { return l.payload }

// RTPLayer is a fixed RTP header (RFC 3550, no CSRC, no extension).
type RTPLayer struct {
	Version  uint8
	Padding  bool
	Marker   bool
	PT       uint8
	Seq      uint16
	TS       uint32
	SSRC     uint32
	contents []byte
	payload  []byte
}

func (l *RTPLayer) LayerType() LayerType  { return LayerTypeRTP }
func (l *RTPLayer) LayerContents() []byte { return l.contents }
func (l *RTPLayer) LayerPayload() []byte  { return l.payload }

// Info converts the layer to trace metadata.
func (l *RTPLayer) Info() RTPInfo {
	return RTPInfo{SSRC: l.SSRC, Seq: l.Seq, TS: l.TS, Marker: l.Marker, PT: l.PT}
}

// PayloadLayer holds undecoded application bytes.
type PayloadLayer struct{ Data []byte }

func (l *PayloadLayer) LayerType() LayerType  { return LayerTypePayload }
func (l *PayloadLayer) LayerContents() []byte { return l.Data }
func (l *PayloadLayer) LayerPayload() []byte  { return nil }

// Packet is a decoded packet: raw bytes plus its layer stack.
type Packet struct {
	Timestamp time.Time
	data      []byte
	layers    []Layer
}

// Data returns the raw packet bytes.
func (p *Packet) Data() []byte { return p.data }

// Layers returns the decoded layer stack, outermost first.
func (p *Packet) Layers() []Layer { return p.layers }

// Layer returns the first layer of the given type, or nil.
func (p *Packet) Layer(t LayerType) Layer {
	for _, l := range p.layers {
		if l.LayerType() == t {
			return l
		}
	}
	return nil
}

// Decoding errors.
var (
	ErrTruncated = errors.New("capture: truncated packet")
	ErrNotIPv4   = errors.New("capture: not an IPv4 packet")
	ErrNotUDP    = errors.New("capture: not a UDP packet")
	errBadRTP    = errors.New("capture: not an RTP packet")
)

const (
	etherTypeIPv4 = 0x0800
	protoUDP      = 17
	ethHeaderLen  = 14
	ipHeaderLen   = 20
	udpHeaderLen  = 8
	rtpHeaderLen  = 12
)

// DecodePacket decodes Ethernet/IPv4/UDP and, if the UDP payload looks
// like RTP (version 2, at least 12 bytes), an RTP layer; any remaining
// bytes become a PayloadLayer. Like gopacket, decoding stops gracefully
// at the first layer it cannot parse, returning what it has plus an error.
func DecodePacket(ts time.Time, data []byte) (*Packet, error) {
	p := &Packet{Timestamp: ts, data: data}
	// Ethernet.
	if len(data) < ethHeaderLen {
		return p, ErrTruncated
	}
	eth := &EthernetLayer{
		EtherType: binary.BigEndian.Uint16(data[12:14]),
		contents:  data[:ethHeaderLen],
		payload:   data[ethHeaderLen:],
	}
	copy(eth.DstMAC[:], data[0:6])
	copy(eth.SrcMAC[:], data[6:12])
	p.layers = append(p.layers, eth)
	if eth.EtherType != etherTypeIPv4 {
		return p, ErrNotIPv4
	}
	// IPv4 (no options in our synthesized traffic, but honor IHL).
	b := eth.payload
	if len(b) < ipHeaderLen {
		return p, ErrTruncated
	}
	ihl := int(b[0]&0x0f) * 4
	if b[0]>>4 != 4 || ihl < ipHeaderLen || len(b) < ihl {
		return p, ErrNotIPv4
	}
	ip := &IPv4Layer{
		Protocol: b[9],
		TTL:      b[8],
		Length:   binary.BigEndian.Uint16(b[2:4]),
		ID:       binary.BigEndian.Uint16(b[4:6]),
		Checksum: binary.BigEndian.Uint16(b[10:12]),
		contents: b[:ihl],
		payload:  b[ihl:],
	}
	copy(ip.Src[:], b[12:16])
	copy(ip.Dst[:], b[16:20])
	p.layers = append(p.layers, ip)
	if ip.Protocol != protoUDP {
		return p, ErrNotUDP
	}
	// UDP.
	b = ip.payload
	if len(b) < udpHeaderLen {
		return p, ErrTruncated
	}
	udp := &UDPLayer{
		SrcPort:  binary.BigEndian.Uint16(b[0:2]),
		DstPort:  binary.BigEndian.Uint16(b[2:4]),
		Length:   binary.BigEndian.Uint16(b[4:6]),
		contents: b[:udpHeaderLen],
		payload:  b[udpHeaderLen:],
	}
	p.layers = append(p.layers, udp)
	// RTP heuristic.
	b = udp.payload
	if rtp, err := decodeRTP(b); err == nil {
		p.layers = append(p.layers, rtp)
		if len(rtp.payload) > 0 {
			p.layers = append(p.layers, &PayloadLayer{Data: rtp.payload})
		}
		return p, nil
	}
	if len(b) > 0 {
		p.layers = append(p.layers, &PayloadLayer{Data: b})
	}
	return p, nil
}

func decodeRTP(b []byte) (*RTPLayer, error) {
	if len(b) < rtpHeaderLen || b[0]>>6 != 2 {
		return nil, errBadRTP
	}
	return &RTPLayer{
		Version:  b[0] >> 6,
		Padding:  b[0]&0x20 != 0,
		Marker:   b[1]&0x80 != 0,
		PT:       b[1] & 0x7f,
		Seq:      binary.BigEndian.Uint16(b[2:4]),
		TS:       binary.BigEndian.Uint32(b[4:8]),
		SSRC:     binary.BigEndian.Uint32(b[8:12]),
		contents: b[:rtpHeaderLen],
		payload:  b[rtpHeaderLen:],
	}, nil
}

// EncodeRecord synthesizes full Ethernet/IPv4/UDP(/RTP) wire bytes for a
// trace record, suitable for writing to a pcap file. The UDP payload is
// Len bytes: an RTP header (when metadata is present) followed by zero
// padding standing in for the encrypted media the paper could not inspect
// either.
func EncodeRecord(r Record) []byte {
	l7 := r.Len
	if r.RTP != nil && l7 < rtpHeaderLen {
		l7 = rtpHeaderLen
	}
	total := ethHeaderLen + ipHeaderLen + udpHeaderLen + l7
	buf := make([]byte, total)
	// Ethernet: derive stable MACs from the IPs.
	copy(buf[0:6], macFor(r.Dst.IP))
	copy(buf[6:12], macFor(r.Src.IP))
	binary.BigEndian.PutUint16(buf[12:14], etherTypeIPv4)
	// IPv4.
	ip := buf[ethHeaderLen:]
	ip[0] = 0x45
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipHeaderLen+udpHeaderLen+l7))
	ip[8] = 64
	ip[9] = protoUDP
	copy(ip[12:16], r.Src.IP[:])
	copy(ip[16:20], r.Dst.IP[:])
	binary.BigEndian.PutUint16(ip[10:12], ipChecksum(ip[:ipHeaderLen]))
	// UDP.
	udp := ip[ipHeaderLen:]
	binary.BigEndian.PutUint16(udp[0:2], r.Src.Port)
	binary.BigEndian.PutUint16(udp[2:4], r.Dst.Port)
	binary.BigEndian.PutUint16(udp[4:6], uint16(udpHeaderLen+l7))
	// RTP.
	if r.RTP != nil {
		rtp := udp[udpHeaderLen:]
		rtp[0] = 2 << 6
		rtp[1] = r.RTP.PT & 0x7f
		if r.RTP.Marker {
			rtp[1] |= 0x80
		}
		binary.BigEndian.PutUint16(rtp[2:4], r.RTP.Seq)
		binary.BigEndian.PutUint32(rtp[4:8], r.RTP.TS)
		binary.BigEndian.PutUint32(rtp[8:12], r.RTP.SSRC)
	}
	return buf
}

func macFor(ip IPv4) []byte {
	return []byte{0x02, 0x00, ip[0], ip[1], ip[2], ip[3]}
}

func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // checksum field itself
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// RecordFromPacket converts a decoded packet back into a trace record.
// Direction is supplied by the caller (pcap files do not store it; the
// reader infers it from the capturing node's address when known).
func RecordFromPacket(p *Packet, dir Dir) (Record, error) {
	ipl, _ := p.Layer(LayerTypeIPv4).(*IPv4Layer)
	udpl, _ := p.Layer(LayerTypeUDP).(*UDPLayer)
	if ipl == nil || udpl == nil {
		return Record{}, ErrNotUDP
	}
	r := Record{
		Time: p.Timestamp,
		Dir:  dir,
		Src:  Endpoint{IP: ipl.Src, Port: udpl.SrcPort},
		Dst:  Endpoint{IP: ipl.Dst, Port: udpl.DstPort},
		Len:  int(udpl.Length) - udpHeaderLen,
	}
	if rtpl, ok := p.Layer(LayerTypeRTP).(*RTPLayer); ok {
		info := rtpl.Info()
		r.RTP = &info
	}
	return r, nil
}
