package capture

import "testing"

// FuzzParseIPv4 feeds arbitrary strings to the strict dotted-quad
// parser: it must never panic, and every address it accepts must
// round-trip through its String form to the same four bytes.
func FuzzParseIPv4(f *testing.F) {
	for _, seed := range []string{
		"1.2.3.4", "0.0.0.0", "255.255.255.255", "10.0.0.1",
		"999.0.0.1", "1.2.3.4.5", "01.2.3.4", " 1.2.3.4", "1.2.3.4 ",
		"-1.2.3.4", "1.2.3", "::ffff:1.2.3.4", "1.2.3.0x4", "", "....",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ip, err := ParseIPv4(s)
		if err != nil {
			return
		}
		back, err := ParseIPv4(ip.String())
		if err != nil {
			t.Fatalf("ParseIPv4(%q) accepted as %v, whose String %q does not re-parse: %v",
				s, ip, ip.String(), err)
		}
		if back != ip {
			t.Fatalf("round trip drifted: %q -> %v -> %v", s, ip, back)
		}
	})
}
