package capture

import (
	"time"
)

// The Fig-2 lag-measurement method: the meeting host streams a blank
// screen with a short image flash every two seconds, so its traffic is a
// train of "big" packets separated by quiescent periods of small keepalive
// packets. The first big packet after a quiescent period longer than
// MinQuiet marks the flash; matching the k-th flash on the sender with the
// k-th on the receiver yields the streaming lag.

// BurstConfig parameterizes flash detection.
type BurstConfig struct {
	// BigBytes is the L7 size above which a packet is "big" (paper: >200).
	BigBytes int
	// MinQuiet is the minimum big-packet silence preceding a burst
	// (paper: more than a second).
	MinQuiet time.Duration
}

// DefaultBurstConfig matches the paper's parameters.
var DefaultBurstConfig = BurstConfig{BigBytes: 200, MinQuiet: time.Second}

// Bursts returns the timestamps of the first big packet of each burst in
// the given direction.
func Bursts(t *Trace, d Dir, cfg BurstConfig) []time.Time {
	if cfg.BigBytes == 0 {
		cfg = DefaultBurstConfig
	}
	var out []time.Time
	var lastBig time.Time
	haveBig := false
	for _, r := range t.Records {
		if r.Dir != d || r.Len <= cfg.BigBytes {
			continue
		}
		if !haveBig || r.Time.Sub(lastBig) > cfg.MinQuiet {
			out = append(out, r.Time)
		}
		lastBig = r.Time
		haveBig = true
	}
	return out
}

// MatchBursts pairs sender-side burst times with receiver-side burst times
// and returns one lag per matched pair. Alignment is by order, with
// resynchronization: a receiver burst earlier than the current sender
// burst is discarded (it belongs to a missed earlier flash), and a
// receiver burst more than maxLag after it means the flash was lost and
// the sender burst is skipped.
func MatchBursts(sent, recv []time.Time, maxLag time.Duration) []time.Duration {
	if maxLag <= 0 {
		maxLag = time.Second
	}
	var lags []time.Duration
	i, j := 0, 0
	for i < len(sent) && j < len(recv) {
		d := recv[j].Sub(sent[i])
		switch {
		case d < 0:
			j++ // receiver burst predates this flash: stale, discard
		case d > maxLag:
			i++ // flash never arrived: skip it
		default:
			lags = append(lags, d)
			i++
			j++
		}
	}
	return lags
}

// Lags runs the full Fig-2 pipeline: detect bursts on the sender trace
// (direction Out) and the receiver trace (direction In), then match them.
func Lags(sender, receiver *Trace, cfg BurstConfig, maxLag time.Duration) []time.Duration {
	s := Bursts(sender, Out, cfg)
	r := Bursts(receiver, In, cfg)
	return MatchBursts(s, r, maxLag)
}

// EndpointStats summarizes service-endpoint discovery across sessions
// (the Fig-3 analysis): how many distinct remote media endpoints a client
// saw in total and per session.
type EndpointStats struct {
	Total      int     // distinct endpoints across all sessions
	PerSession float64 // average distinct endpoints per session
	Sessions   int
}

// DiscoverEndpoints analyzes one trace per session. Only inbound media
// (records with RTP metadata, or all inbound records when none carry RTP)
// counts; the remote endpoint of each is a service endpoint.
func DiscoverEndpoints(sessions []*Trace) EndpointStats {
	all := make(map[Endpoint]bool)
	perSession := 0
	for _, t := range sessions {
		media := t.Filter(func(r Record) bool { return r.Dir == In && r.RTP != nil })
		if media.Len() == 0 {
			media = t.Filter(func(r Record) bool { return r.Dir == In })
		}
		eps := media.RemoteEndpoints(In)
		perSession += len(eps)
		for _, e := range eps {
			all[e] = true
		}
	}
	st := EndpointStats{Total: len(all), Sessions: len(sessions)}
	if len(sessions) > 0 {
		st.PerSession = float64(perSession) / float64(len(sessions))
	}
	return st
}

// SizeSeries returns (t, size) points for plotting a Fig-2 style packet
// scatter in the given direction, with times relative to the trace start.
func SizeSeries(t *Trace, d Dir) (times []time.Duration, sizes []int) {
	from, _ := t.Span()
	for _, r := range t.Records {
		if r.Dir != d {
			continue
		}
		times = append(times, r.Time.Sub(from))
		sizes = append(sizes, r.Len)
	}
	return times, sizes
}
