package capture

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC)

func mkRecord(at time.Duration, dir Dir, srcPort, dstPort uint16, size int) Record {
	return Record{
		Time: t0.Add(at),
		Dir:  dir,
		Src:  Endpoint{IP: IPForName("src"), Port: srcPort},
		Dst:  Endpoint{IP: IPForName("dst"), Port: dstPort},
		Len:  size,
	}
}

func TestIPForName(t *testing.T) {
	a, b := IPForName("vm-1"), IPForName("vm-2")
	if a == b {
		t.Error("distinct names map to same IP")
	}
	if a != IPForName("vm-1") {
		t.Error("IPForName not deterministic")
	}
	if a[0] != 10 {
		t.Errorf("not in 10/8: %v", a)
	}
	for _, o := range a[1:] {
		if o == 0 || o == 255 {
			t.Errorf("degenerate octet in %v", a)
		}
	}
}

func TestFlowHashSymmetric(t *testing.T) {
	f := Flow{
		Src: Endpoint{IP: IPv4{10, 1, 1, 1}, Port: 5004},
		Dst: Endpoint{IP: IPv4{10, 2, 2, 2}, Port: 8801},
	}
	if f.FastHash() != f.Reverse().FastHash() {
		t.Error("FastHash not symmetric")
	}
	other := Flow{
		Src: Endpoint{IP: IPv4{10, 1, 1, 1}, Port: 5005},
		Dst: Endpoint{IP: IPv4{10, 2, 2, 2}, Port: 8801},
	}
	if f.FastHash() == other.FastHash() {
		t.Error("distinct flows hash equal (collision in trivial case)")
	}
}

func TestTraceRates(t *testing.T) {
	tr := NewTrace("n")
	// 10 inbound packets of 1250 bytes over 1 second => 100 kbit/s.
	for i := 0; i < 10; i++ {
		tr.Add(mkRecord(time.Duration(i)*111*time.Millisecond, In, 8801, 5004, 1250))
	}
	rate := tr.Rate(In)
	want := float64(10*1250*8) / tr.Records[9].Time.Sub(tr.Records[0].Time).Seconds()
	if rate != want {
		t.Errorf("Rate = %v, want %v", rate, want)
	}
	if tr.Rate(Out) != 0 {
		t.Error("no outbound records but nonzero rate")
	}
	if tr.Bytes(In) != 12500 || tr.Packets(In) != 10 {
		t.Error("byte/packet accounting wrong")
	}
}

func TestTraceBetweenAndFilter(t *testing.T) {
	tr := NewTrace("n")
	for i := 0; i < 10; i++ {
		tr.Add(mkRecord(time.Duration(i)*time.Second, In, 1, 2, 100+i))
	}
	sub := tr.Between(t0.Add(3*time.Second), t0.Add(6*time.Second))
	if sub.Len() != 3 {
		t.Errorf("Between len = %d, want 3", sub.Len())
	}
	big := tr.Filter(func(r Record) bool { return r.Len >= 105 })
	if big.Len() != 5 {
		t.Errorf("Filter len = %d, want 5", big.Len())
	}
}

func TestRemoteEndpoints(t *testing.T) {
	tr := NewTrace("n")
	ep1 := Endpoint{IP: IPv4{1, 2, 3, 4}, Port: 8801}
	ep2 := Endpoint{IP: IPv4{5, 6, 7, 8}, Port: 8801}
	local := Endpoint{IP: IPForName("n"), Port: 5004}
	tr.Add(Record{Time: t0, Dir: In, Src: ep1, Dst: local, Len: 10})
	tr.Add(Record{Time: t0.Add(time.Millisecond), Dir: In, Src: ep2, Dst: local, Len: 10})
	tr.Add(Record{Time: t0.Add(2 * time.Millisecond), Dir: In, Src: ep1, Dst: local, Len: 10})
	tr.Add(Record{Time: t0.Add(3 * time.Millisecond), Dir: Out, Src: local, Dst: ep1, Len: 10})
	eps := tr.RemoteEndpoints(In)
	if len(eps) != 2 || eps[0] != ep1 || eps[1] != ep2 {
		t.Errorf("RemoteEndpoints = %v", eps)
	}
}

func TestRateSeries(t *testing.T) {
	tr := NewTrace("n")
	// Second 0: 1000B, second 1: nothing, second 2: 2000B.
	tr.Add(mkRecord(0, In, 1, 2, 1000))
	tr.Add(mkRecord(2*time.Second, In, 1, 2, 2000))
	s := tr.RateSeries(In, time.Second)
	if len(s) != 3 {
		t.Fatalf("series len = %d", len(s))
	}
	if s[0] != 8000 || s[1] != 0 || s[2] != 16000 {
		t.Errorf("series = %v", s)
	}
}

func TestMerge(t *testing.T) {
	a, b := NewTrace("a"), NewTrace("b")
	a.Add(mkRecord(0, In, 1, 2, 10))
	a.Add(mkRecord(2*time.Second, In, 1, 2, 10))
	b.Add(mkRecord(time.Second, Out, 3, 4, 20))
	m := a.Merge(b)
	if m.Len() != 3 {
		t.Fatalf("merged len = %d", m.Len())
	}
	if !m.Records[1].Time.Equal(t0.Add(time.Second)) {
		t.Error("merge not time-ordered")
	}
}

func TestBurstDetection(t *testing.T) {
	tr := NewTrace("host")
	// Keepalives every 100ms (60B), flashes at 2s, 4s, 6s (5 big packets each).
	for i := 0; i < 80; i++ {
		tr.Add(mkRecord(time.Duration(i)*100*time.Millisecond, Out, 5004, 8801, 60))
	}
	for _, flashAt := range []time.Duration{2 * time.Second, 4 * time.Second, 6 * time.Second} {
		for k := 0; k < 5; k++ {
			tr.Add(mkRecord(flashAt+time.Duration(k)*5*time.Millisecond, Out, 5004, 8801, 900))
		}
	}
	// Re-sort by merging with empty (records were appended out of order).
	tr = tr.Merge(NewTrace("x"))
	bursts := Bursts(tr, Out, DefaultBurstConfig)
	if len(bursts) != 3 {
		t.Fatalf("bursts = %d, want 3 (%v)", len(bursts), bursts)
	}
	for i, want := range []time.Duration{2 * time.Second, 4 * time.Second, 6 * time.Second} {
		if got := bursts[i].Sub(t0); got != want {
			t.Errorf("burst %d at %v, want %v", i, got, want)
		}
	}
}

func TestMatchBursts(t *testing.T) {
	s := []time.Time{t0, t0.Add(2 * time.Second), t0.Add(4 * time.Second)}
	r := []time.Time{t0.Add(30 * time.Millisecond), t0.Add(2*time.Second + 40*time.Millisecond), t0.Add(4*time.Second + 50*time.Millisecond)}
	lags := MatchBursts(s, r, time.Second)
	if len(lags) != 3 {
		t.Fatalf("lags = %v", lags)
	}
	if lags[0] != 30*time.Millisecond || lags[2] != 50*time.Millisecond {
		t.Errorf("lags = %v", lags)
	}
}

func TestMatchBurstsResync(t *testing.T) {
	// Second flash lost in transit; a spurious early receiver burst too.
	s := []time.Time{t0, t0.Add(2 * time.Second), t0.Add(4 * time.Second)}
	r := []time.Time{
		t0.Add(-500 * time.Millisecond), // spurious
		t0.Add(25 * time.Millisecond),
		// flash at 2s lost
		t0.Add(4*time.Second + 35*time.Millisecond),
	}
	lags := MatchBursts(s, r, time.Second)
	if len(lags) != 2 {
		t.Fatalf("lags = %v, want 2 entries", lags)
	}
	if lags[0] != 25*time.Millisecond || lags[1] != 35*time.Millisecond {
		t.Errorf("lags = %v", lags)
	}
}

func TestLagsEndToEnd(t *testing.T) {
	sender, recv := NewTrace("h"), NewTrace("c")
	lag := 42 * time.Millisecond
	for i := 0; i < 5; i++ {
		at := time.Duration(i) * 2 * time.Second
		sender.Add(mkRecord(at, Out, 5004, 8801, 900))
		recv.Add(mkRecord(at+lag, In, 8801, 5004, 880))
	}
	lags := Lags(sender, recv, DefaultBurstConfig, time.Second)
	if len(lags) != 5 {
		t.Fatalf("got %d lags", len(lags))
	}
	for _, l := range lags {
		if l != lag {
			t.Errorf("lag = %v, want %v", l, lag)
		}
	}
}

func TestDiscoverEndpoints(t *testing.T) {
	mk := func(ep Endpoint) *Trace {
		tr := NewTrace("c")
		info := RTPInfo{SSRC: 7}
		tr.Add(Record{Time: t0, Dir: In, Src: ep, Dst: Endpoint{IPForName("c"), 5004}, Len: 500, RTP: &info})
		return tr
	}
	// Zoom-like: new endpoint every session.
	var zoomSessions []*Trace
	for i := 0; i < 20; i++ {
		zoomSessions = append(zoomSessions, mk(Endpoint{IPv4{170, 114, 1, byte(i + 1)}, 8801}))
	}
	st := DiscoverEndpoints(zoomSessions)
	if st.Total != 20 || st.PerSession != 1 || st.Sessions != 20 {
		t.Errorf("zoom-like stats = %+v", st)
	}
	// Meet-like: same endpoint every session.
	var meetSessions []*Trace
	for i := 0; i < 20; i++ {
		meetSessions = append(meetSessions, mk(Endpoint{IPv4{142, 250, 1, 1}, 19305}))
	}
	st = DiscoverEndpoints(meetSessions)
	if st.Total != 1 {
		t.Errorf("meet-like total = %d", st.Total)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	info := &RTPInfo{SSRC: 0xdeadbeef, Seq: 4242, TS: 90000, Marker: true, PT: 96}
	rec := Record{
		Time: t0.Add(1234567 * time.Microsecond),
		Dir:  Out,
		Src:  Endpoint{IP: IPv4{10, 1, 2, 3}, Port: 5004},
		Dst:  Endpoint{IP: IPv4{170, 114, 9, 9}, Port: 8801},
		Len:  777,
		RTP:  info,
	}
	data := EncodeRecord(rec)
	pkt, err := DecodePacket(rec.Time, data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	back, err := RecordFromPacket(pkt, Out)
	if err != nil {
		t.Fatal(err)
	}
	if back.Src != rec.Src || back.Dst != rec.Dst || back.Len != rec.Len {
		t.Errorf("round trip mismatch: %+v vs %+v", back, rec)
	}
	if back.RTP == nil || back.RTP.SSRC != info.SSRC || back.RTP.Seq != info.Seq ||
		back.RTP.TS != info.TS || !back.RTP.Marker || back.RTP.PT != info.PT {
		t.Errorf("RTP round trip: %+v", back.RTP)
	}
	// Layer stack sanity.
	wantLayers := []LayerType{LayerTypeEthernet, LayerTypeIPv4, LayerTypeUDP, LayerTypeRTP, LayerTypePayload}
	got := pkt.Layers()
	if len(got) != len(wantLayers) {
		t.Fatalf("layers = %d, want %d", len(got), len(wantLayers))
	}
	for i, l := range got {
		if l.LayerType() != wantLayers[i] {
			t.Errorf("layer %d = %v, want %v", i, l.LayerType(), wantLayers[i])
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	if _, err := DecodePacket(t0, []byte{1, 2, 3}); err != ErrTruncated {
		t.Errorf("err = %v", err)
	}
	// Valid ethernet but ARP ethertype.
	data := make([]byte, 20)
	data[12], data[13] = 0x08, 0x06
	if _, err := DecodePacket(t0, data); err != ErrNotIPv4 {
		t.Errorf("err = %v", err)
	}
}

func TestIPChecksum(t *testing.T) {
	rec := mkRecord(0, Out, 1, 2, 64)
	data := EncodeRecord(rec)
	ip := data[14:34]
	// Recomputing over the header including the stored checksum must give
	// 0xffff-complement consistency: sum of all 16-bit words == 0xffff.
	var sum uint32
	for i := 0; i < 20; i += 2 {
		sum += uint32(ip[i])<<8 | uint32(ip[i+1])
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	if sum != 0xffff {
		t.Errorf("IP checksum does not verify: %#x", sum)
	}
}

func TestPcapRoundTrip(t *testing.T) {
	tr := NewTrace("vm")
	local := IPForName("vm")
	remote := IPv4{66, 114, 1, 1}
	for i := 0; i < 50; i++ {
		dir := In
		src := Endpoint{remote, 9000}
		dst := Endpoint{local, 5004}
		if i%2 == 1 {
			dir = Out
			src, dst = dst, src
		}
		info := &RTPInfo{SSRC: 1, Seq: uint16(i), TS: uint32(i * 3000), PT: 96}
		tr.Add(Record{
			Time: t0.Add(time.Duration(i) * 20 * time.Millisecond),
			Dir:  dir, Src: src, Dst: dst, Len: 800 + i, RTP: info,
		})
	}
	var buf bytes.Buffer
	if err := WritePcap(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, skipped, err := ReadPcap(&buf, "vm", local)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped = %d", skipped)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("len %d vs %d", back.Len(), tr.Len())
	}
	for i := range tr.Records {
		a, b := tr.Records[i], back.Records[i]
		if !a.Time.Equal(b.Time) || a.Dir != b.Dir || a.Src != b.Src || a.Dst != b.Dst || a.Len != b.Len {
			t.Fatalf("record %d mismatch:\n%+v\n%+v", i, a, b)
		}
		if b.RTP == nil || b.RTP.Seq != a.RTP.Seq {
			t.Fatalf("record %d RTP mismatch", i)
		}
	}
}

func TestReadPcapBadMagic(t *testing.T) {
	if _, _, err := ReadPcap(bytes.NewReader(make([]byte, 24)), "n", IPv4{}); err != ErrBadMagic {
		t.Errorf("err = %v", err)
	}
}

// Property: encode/decode round-trips arbitrary record shapes.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(srcIP, dstIP [4]byte, srcPort, dstPort uint16, size uint16, seq uint16, ssrc uint32, marker bool) bool {
		rec := Record{
			Time: t0,
			Src:  Endpoint{IPv4(srcIP), srcPort},
			Dst:  Endpoint{IPv4(dstIP), dstPort},
			Len:  int(size % 1500),
			RTP:  &RTPInfo{SSRC: ssrc, Seq: seq, Marker: marker, PT: 96},
		}
		data := EncodeRecord(rec)
		pkt, err := DecodePacket(t0, data)
		if err != nil {
			return false
		}
		back, err := RecordFromPacket(pkt, In)
		if err != nil {
			return false
		}
		wantLen := rec.Len
		if wantLen < 12 {
			wantLen = 12 // RTP header floor
		}
		return back.Src == rec.Src && back.Dst == rec.Dst && back.Len == wantLen &&
			back.RTP != nil && back.RTP.Seq == seq && back.RTP.SSRC == ssrc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSizeSeries(t *testing.T) {
	tr := NewTrace("n")
	tr.Add(mkRecord(0, Out, 1, 2, 100))
	tr.Add(mkRecord(time.Second, Out, 1, 2, 900))
	tr.Add(mkRecord(2*time.Second, In, 2, 1, 50))
	times, sizes := SizeSeries(tr, Out)
	if len(times) != 2 || sizes[1] != 900 || times[1] != time.Second {
		t.Errorf("series: %v %v", times, sizes)
	}
}

// ParseIPv4 is the strict replacement for Sscanf-based parsing in
// cmd/vcatrace: trailing garbage and out-of-range octets must fail.
func TestParseIPv4(t *testing.T) {
	good := map[string]IPv4{
		"0.0.0.0":         {0, 0, 0, 0},
		"1.2.3.4":         {1, 2, 3, 4},
		"10.200.30.255":   {10, 200, 30, 255},
		"255.255.255.255": {255, 255, 255, 255},
	}
	for in, want := range good {
		got, err := ParseIPv4(in)
		if err != nil || got != want {
			t.Errorf("ParseIPv4(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	bad := []string{
		"",
		"1.2.3",
		"1.2.3.4.5", // trailing extra octet (Sscanf accepted this)
		"999.0.0.1", // out-of-range octet (Sscanf truncated this)
		"256.1.1.1",
		"1.2.3.4 ",
		" 1.2.3.4",
		"1..3.4",
		"1.2.3.04", // leading zero
		"01.2.3.4",
		"+1.2.3.4",
		"-1.2.3.4",
		"1.2.3.4x",
		"a.b.c.d",
		"1.2.3.1234",
	}
	for _, in := range bad {
		if got, err := ParseIPv4(in); err == nil {
			t.Errorf("ParseIPv4(%q) = %v, want error", in, got)
		}
	}
}
