package capture

import (
	"sort"
	"time"
)

// Dir is the packet direction relative to the capturing node.
type Dir int8

const (
	In  Dir = iota // received by the node
	Out            // sent by the node
)

func (d Dir) String() string {
	if d == In {
		return "in"
	}
	return "out"
}

// RTPInfo is optional RTP metadata attached to a record, either supplied
// directly by the simulated transport or recovered by decoding pcap bytes.
type RTPInfo struct {
	SSRC    uint32
	Seq     uint16
	TS      uint32
	Marker  bool
	PT      uint8
	KeyUnit bool // out-of-band hint: packet belongs to an intra frame
}

// Record is one captured packet.
type Record struct {
	Time time.Time
	Dir  Dir
	Src  Endpoint
	Dst  Endpoint
	Len  int // UDP payload (L7) length in bytes
	RTP  *RTPInfo
}

// Flow returns the record's directed flow.
func (r Record) Flow() Flow { return Flow{Src: r.Src, Dst: r.Dst} }

// Remote returns the non-local endpoint given the record's direction.
func (r Record) Remote() Endpoint {
	if r.Dir == In {
		return r.Src
	}
	return r.Dst
}

// Trace is an append-only packet capture for one node.
type Trace struct {
	Node    string
	Records []Record
}

// NewTrace creates an empty capture for the named node.
func NewTrace(node string) *Trace { return &Trace{Node: node} }

// Add appends a record. Records are expected in nondecreasing time order
// (the capture point is a single choke point); Add preserves whatever
// order the caller provides.
func (t *Trace) Add(r Record) { t.Records = append(t.Records, r) }

// Len reports the number of captured packets.
func (t *Trace) Len() int { return len(t.Records) }

// Between returns a sub-trace view of records with from <= Time < to.
// The view shares storage with the parent.
func (t *Trace) Between(from, to time.Time) *Trace {
	lo := sort.Search(len(t.Records), func(i int) bool { return !t.Records[i].Time.Before(from) })
	hi := sort.Search(len(t.Records), func(i int) bool { return !t.Records[i].Time.Before(to) })
	return &Trace{Node: t.Node, Records: t.Records[lo:hi]}
}

// Filter returns a new trace containing records for which keep is true.
func (t *Trace) Filter(keep func(Record) bool) *Trace {
	out := NewTrace(t.Node)
	for _, r := range t.Records {
		if keep(r) {
			out.Add(r)
		}
	}
	return out
}

// Span returns the time range covered by the trace.
func (t *Trace) Span() (from, to time.Time) {
	if len(t.Records) == 0 {
		return time.Time{}, time.Time{}
	}
	return t.Records[0].Time, t.Records[len(t.Records)-1].Time
}

// Bytes sums L7 payload lengths in the given direction.
func (t *Trace) Bytes(d Dir) int64 {
	var n int64
	for _, r := range t.Records {
		if r.Dir == d {
			n += int64(r.Len)
		}
	}
	return n
}

// Packets counts records in the given direction.
func (t *Trace) Packets(d Dir) int {
	n := 0
	for _, r := range t.Records {
		if r.Dir == d {
			n++
		}
	}
	return n
}

// Rate returns the average L7 data rate in bits/s in the given direction
// over the trace's span, or 0 for traces shorter than a millisecond.
func (t *Trace) Rate(d Dir) float64 {
	from, to := t.Span()
	dur := to.Sub(from).Seconds()
	if dur < 1e-3 {
		return 0
	}
	return float64(t.Bytes(d)) * 8 / dur
}

// RemoteEndpoints returns the distinct remote endpoints observed in the
// given direction, in first-seen order.
func (t *Trace) RemoteEndpoints(d Dir) []Endpoint {
	seen := make(map[Endpoint]bool)
	var out []Endpoint
	for _, r := range t.Records {
		if r.Dir != d {
			continue
		}
		e := r.Remote()
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}

// RateSeries buckets the trace into windows of the given width and returns
// the per-window L7 rate in bits/s for direction d. Windows are aligned to
// the trace start.
func (t *Trace) RateSeries(d Dir, window time.Duration) []float64 {
	if window <= 0 || len(t.Records) == 0 {
		return nil
	}
	from, to := t.Span()
	n := int(to.Sub(from)/window) + 1
	bytes := make([]int64, n)
	for _, r := range t.Records {
		if r.Dir != d {
			continue
		}
		i := int(r.Time.Sub(from) / window)
		if i >= 0 && i < n {
			bytes[i] += int64(r.Len)
		}
	}
	rates := make([]float64, n)
	for i, b := range bytes {
		rates[i] = float64(b) * 8 / window.Seconds()
	}
	return rates
}

// Merge returns a new trace containing the records of both traces in time
// order. Node is taken from t.
func (t *Trace) Merge(other *Trace) *Trace {
	out := NewTrace(t.Node)
	out.Records = make([]Record, 0, len(t.Records)+len(other.Records))
	out.Records = append(out.Records, t.Records...)
	out.Records = append(out.Records, other.Records...)
	sort.SliceStable(out.Records, func(i, j int) bool {
		return out.Records[i].Time.Before(out.Records[j].Time)
	})
	return out
}
