package capture

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// libpcap classic file format (microsecond timestamps, little endian).
const (
	pcapMagic     = 0xa1b2c3d4
	pcapVerMajor  = 2
	pcapVerMinor  = 4
	pcapSnapLen   = 65535
	linkTypeEth   = 1
	pcapHdrLen    = 24
	pcapRecHdrLen = 16
)

// ErrBadMagic indicates the input is not a little-endian microsecond pcap.
var ErrBadMagic = errors.New("capture: bad pcap magic")

// WritePcap serializes the trace as a classic libpcap file. Each record is
// synthesized into full Ethernet/IPv4/UDP(/RTP) bytes via EncodeRecord,
// so the output opens in any standard pcap tool.
func WritePcap(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	var hdr [pcapHdrLen]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:4], pcapMagic)
	le.PutUint16(hdr[4:6], pcapVerMajor)
	le.PutUint16(hdr[6:8], pcapVerMinor)
	// thiszone, sigfigs = 0
	le.PutUint32(hdr[16:20], pcapSnapLen)
	le.PutUint32(hdr[20:24], linkTypeEth)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [pcapRecHdrLen]byte
	for i := range t.Records {
		data := EncodeRecord(t.Records[i])
		ts := t.Records[i].Time
		le.PutUint32(rec[0:4], uint32(ts.Unix()))
		le.PutUint32(rec[4:8], uint32(ts.Nanosecond()/1000))
		le.PutUint32(rec[8:12], uint32(len(data)))
		le.PutUint32(rec[12:16], uint32(len(data)))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
		if _, err := bw.Write(data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPcap parses a classic libpcap file into a trace. localIP classifies
// direction: packets sourced from localIP are Out, others In. Packets that
// do not decode to UDP are skipped (counted in the returned skip count).
func ReadPcap(r io.Reader, node string, localIP IPv4) (*Trace, int, error) {
	br := bufio.NewReader(r)
	var hdr [pcapHdrLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("capture: reading pcap header: %w", err)
	}
	le := binary.LittleEndian
	if le.Uint32(hdr[0:4]) != pcapMagic {
		return nil, 0, ErrBadMagic
	}
	if lt := le.Uint32(hdr[20:24]); lt != linkTypeEth {
		return nil, 0, fmt.Errorf("capture: unsupported link type %d", lt)
	}
	t := NewTrace(node)
	skipped := 0
	var rec [pcapRecHdrLen]byte
	for {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			if err == io.EOF {
				return t, skipped, nil
			}
			return t, skipped, fmt.Errorf("capture: reading record header: %w", err)
		}
		sec := le.Uint32(rec[0:4])
		usec := le.Uint32(rec[4:8])
		incl := le.Uint32(rec[8:12])
		if incl > pcapSnapLen {
			return t, skipped, fmt.Errorf("capture: record length %d exceeds snaplen", incl)
		}
		data := make([]byte, incl)
		if _, err := io.ReadFull(br, data); err != nil {
			return t, skipped, fmt.Errorf("capture: reading record body: %w", err)
		}
		ts := time.Unix(int64(sec), int64(usec)*1000).UTC()
		pkt, err := DecodePacket(ts, data)
		if err != nil {
			skipped++
			continue
		}
		dir := In
		if ipl, ok := pkt.Layer(LayerTypeIPv4).(*IPv4Layer); ok && ipl.Src == localIP {
			dir = Out
		}
		record, err := RecordFromPacket(pkt, dir)
		if err != nil {
			skipped++
			continue
		}
		t.Add(record)
	}
}
