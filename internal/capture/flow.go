// Package capture is the traffic-monitoring substrate: in-memory packet
// traces (what tcpdump gave the paper), a gopacket-inspired layer decoding
// model, libpcap-format file I/O with fully synthesized Ethernet/IPv4/UDP/
// RTP bytes, and the trace analytics the paper's measurements are built on
// (L7 data rates, endpoint discovery, and the Fig-2 "first big packet
// after a quiescent period" lag extractor).
package capture

import (
	"fmt"
	"hash/fnv"
	"net/netip"
)

// IPv4 is a four-byte address. Simulated nodes get deterministic addresses
// from IPForName; platform models may assign their own ranges.
type IPv4 [4]byte

func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// ParseIPv4 parses a dotted-quad address strictly: exactly four decimal
// octets in [0, 255], no leading zeros (octal ambiguity), no signs, no
// whitespace, no trailing garbage. This is deliberately stricter than
// fmt.Sscanf("%d.%d.%d.%d"), which accepts "1.2.3.4.5" (trailing data
// ignored) and "999.0.0.1" (out-of-range octets truncated to a byte).
func ParseIPv4(s string) (IPv4, error) {
	a, err := netip.ParseAddr(s)
	if err != nil || !a.Is4() { // Is4 also excludes 4-in-6 forms
		return IPv4{}, fmt.Errorf("capture: %q is not a dotted-quad IPv4 address", s)
	}
	return IPv4(a.As4()), nil
}

// IPForName deterministically maps a node name into the 10.0.0.0/8 range,
// avoiding .0 and .255 host bytes.
func IPForName(name string) IPv4 {
	h := fnv.New32a()
	h.Write([]byte(name))
	v := h.Sum32()
	b := func(x uint32) byte { return byte(x%253 + 1) }
	return IPv4{10, b(v), b(v >> 8), b(v >> 16)}
}

// Endpoint is one side of a UDP conversation.
type Endpoint struct {
	IP   IPv4
	Port uint16
}

func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.IP, e.Port) }

// Flow is a directed (src, dst) endpoint pair.
type Flow struct {
	Src, Dst Endpoint
}

func (f Flow) String() string { return f.Src.String() + "->" + f.Dst.String() }

// Reverse returns the opposite direction of the flow.
func (f Flow) Reverse() Flow { return Flow{Src: f.Dst, Dst: f.Src} }

// FastHash returns a symmetric non-cryptographic hash: a flow and its
// reverse hash identically, so bidirectional conversations can be grouped
// (the property gopacket documents for load-balancing across workers).
func (f Flow) FastHash() uint64 {
	a := endpointHash(f.Src)
	b := endpointHash(f.Dst)
	if a > b {
		a, b = b, a
	}
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(a >> (8 * i))
		buf[8+i] = byte(b >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}

func endpointHash(e Endpoint) uint64 {
	h := fnv.New64a()
	h.Write(e.IP[:])
	h.Write([]byte{byte(e.Port >> 8), byte(e.Port)})
	return h.Sum64()
}
