// Package obs is the operational telemetry layer: a concurrent metrics
// registry with Prometheus text exposition, a span tracer for the
// campaign lifecycle, and the monotonic Clock seam instrumented
// packages read time through. It is stdlib-only and strictly inert:
// nothing in this package feeds back into experiment results, so every
// byte-identity guarantee in the engine holds with telemetry enabled.
//
// Two recording styles coexist in one Registry:
//
//   - Instruments (Counter, Gauge, Histogram and their labeled *Vec
//     forms) are lock-free atomics for hot paths, created get-or-create
//     by name so independent components (or many Testbeds) can share a
//     series without coordinating.
//   - Group collectors (RegisterGroup) snapshot a component's related
//     series under that component's own lock at scrape time, so a
//     /metrics read never shows a torn view of counters that are
//     updated together (the cluster pool's per-worker stats, the
//     store's hit/miss/put counters, the daemon's job states).
//
// Exposition (WriteText, Handler) renders the merged families in
// Prometheus text format with fully deterministic ordering: families
// sort by name, series by label values — no map-iteration order ever
// reaches the wire.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType classifies a family for the TYPE exposition line.
type MetricType string

// The exposition types this registry produces.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// DefBuckets are the default histogram bounds in seconds: campaign
// units run hundreds of milliseconds to minutes, store IO runs
// microseconds to milliseconds, and this ladder spans both.
var DefBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// Label is one name/value pair on a series.
type Label struct {
	Name  string
	Value string
}

// Sample is one series reading emitted by a group collector.
type Sample struct {
	Labels []Label
	Value  float64
}

// GroupFunc emits one component's related metric families in a single
// call, typically under the component's own lock, so a scrape sees a
// consistent snapshot across all of them.
type GroupFunc func(g *Group)

// Registry holds metric families and group collectors. The zero value
// is not usable; call NewRegistry. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	groups   []GroupFunc
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with a fixed type, help text and label
// schema, holding one series per distinct label-value tuple.
type family struct {
	name    string
	help    string
	typ     MetricType
	labels  []string
	buckets []float64 // histograms only

	mu     sync.Mutex
	series map[string]*series
}

// series is one labeled time series. Counters and gauges use val
// (gauges as float bits, counters as integer counts); histograms use
// the bucket/sum/count trio.
type series struct {
	labelValues []string

	val atomic.Uint64

	bucketCounts []atomic.Uint64 // one per finite bucket bound
	sum          atomic.Uint64   // float bits
	count        atomic.Uint64
}

// seriesKey joins label values unambiguously (values may contain any
// byte; \x00 cannot appear in both sides of a collision because each
// value's length changes the escaping).
func seriesKey(values []string) string {
	return strings.Join(values, "\x00")
}

// validName matches Prometheus metric and label name syntax.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && !(i > 0 && r >= '0' && r <= '9') {
			return false
		}
	}
	return true
}

// lookup returns (creating if needed) the family, panicking on a
// schema mismatch: two call sites disagreeing about a metric's type,
// help or labels is a programming error no scrape should paper over.
func (r *Registry) lookup(name, help string, typ MetricType, labels []string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) || l == "le" {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name: name, help: help, typ: typ,
			labels:  append([]string(nil), labels...),
			buckets: append([]float64(nil), buckets...),
			series:  make(map[string]*series),
		}
		r.families[name] = f
		return f
	}
	if f.typ != typ || f.help != help || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different type, help, labels or buckets", name))
	}
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// with returns (creating if needed) the series for the label values.
func (f *family) with(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labelValues: append([]string(nil), values...)}
		if f.typ == TypeHistogram {
			s.bucketCounts = make([]atomic.Uint64, len(f.buckets))
		}
		f.series[key] = s
	}
	return s
}

// Counter is a monotonically increasing count of events.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.s.val.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.s.val.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.s.val.Load() }

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating the
// series on first use.
func (v *CounterVec) With(values ...string) *Counter {
	return &Counter{s: v.f.with(values)}
}

// Gauge is a value that goes up and down.
type Gauge struct{ s *series }

// Set stores an absolute value.
func (g *Gauge) Set(v float64) { g.s.val.Store(math.Float64bits(v)) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.s.val.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.s.val.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.val.Load()) }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return &Gauge{s: v.f.with(values)}
}

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records one value. The +Inf bucket is implicit (every
// observation lands in it via the series count).
func (h *Histogram) Observe(v float64) {
	// Buckets are cumulative: an observation increments every bucket
	// whose upper bound admits it. Walking from the first admitting
	// bound keeps the invariant with one pass.
	i := sort.SearchFloat64s(h.buckets, v)
	for ; i < len(h.buckets); i++ {
		h.s.bucketCounts[i].Add(1)
	}
	for {
		old := h.s.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.s.sum.CompareAndSwap(old, next) {
			break
		}
	}
	// Count is bumped last and scrapes read it first, so a concurrent
	// scrape never sees count ahead of the buckets (the +Inf sample is
	// synthesized from count, keeping +Inf == count exact).
	h.s.count.Add(1)
}

// Count reads the number of observations.
func (h *Histogram) Count() uint64 { return h.s.count.Load() }

// Counter returns (creating if needed) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return &Counter{s: r.lookup(name, help, TypeCounter, nil, nil).with(nil)}
}

// CounterVec returns (creating if needed) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, TypeCounter, labels, nil)}
}

// Gauge returns (creating if needed) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return &Gauge{s: r.lookup(name, help, TypeGauge, nil, nil).with(nil)}
}

// GaugeVec returns (creating if needed) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, TypeGauge, labels, nil)}
}

// Histogram returns (creating if needed) an unlabeled histogram with
// the given finite bucket bounds (ascending; +Inf is implicit). Nil
// buckets select DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("obs: histogram %q buckets must be sorted ascending", name))
	}
	f := r.lookup(name, help, TypeHistogram, nil, buckets)
	return &Histogram{s: f.with(nil), buckets: f.buckets}
}

// RegisterGroup adds a consistent-snapshot collector: f is called on
// every scrape and emits whole families through the Group. Families
// emitted by groups must not collide with instrument families or with
// other groups — WriteText reports the collision as an error.
func (r *Registry) RegisterGroup(f GroupFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.groups = append(r.groups, f)
}

// Group receives one collector's families during a scrape.
type Group struct {
	fams []*familySnapshot
}

// Emit contributes one family snapshot. Samples are rendered in sorted
// label order regardless of emission order.
func (g *Group) Emit(name, help string, typ MetricType, samples ...Sample) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	snap := &familySnapshot{name: name, help: help, typ: typ}
	for _, s := range samples {
		snap.samples = append(snap.samples, sampleSnapshot{
			suffix: "", labels: append([]Label(nil), s.Labels...), value: s.Value,
		})
	}
	sort.Slice(snap.samples, func(i, j int) bool {
		return snap.samples[i].labelSignature() < snap.samples[j].labelSignature()
	})
	g.fams = append(g.fams, snap)
}
