package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// SpanID identifies one span within a Tracer. Zero means "no parent".
type SpanID int64

// The span tiers of the campaign lifecycle, outermost first. A unit
// span always ends with exactly one terminal child: the tier that
// actually produced its result.
const (
	TierCampaign = "campaign"
	TierCell     = "cell"
	TierReplica  = "replica"
	TierUnit     = "unit"
	TierMemo     = "memo"
	TierStore    = "store"
	TierDispatch = "dispatch"
	TierLocalRun = "local-run"
)

// tierOrder fixes the Summary rendering order to the lifecycle
// hierarchy rather than alphabetical.
var tierOrder = []string{TierCampaign, TierCell, TierReplica, TierUnit,
	TierMemo, TierStore, TierDispatch, TierLocalRun}

// span is one recorded interval. Envelope spans (cells, replicas)
// don't own an interval of their own — their extent is computed at
// export time from the min start / max end of their children, because
// a cell's replicas run interleaved across the worker pool and no
// single goroutine brackets them.
type span struct {
	id       SpanID
	parent   SpanID
	tier     string
	name     string
	start    int64
	end      int64
	envelope bool
	attrs    []Label
}

// Tracer records spans against an injected Clock. All methods are safe
// for concurrent use; a nil *Tracer is a no-op recorder, so call sites
// can be unconditional. Spans are held in memory until exported —
// intended for bounded CLI runs, not long-lived daemons.
type Tracer struct {
	clock Clock

	mu    sync.Mutex
	spans []*span
}

// NewTracer creates a tracer reading time from clock.
func NewTracer(clock Clock) *Tracer {
	return &Tracer{clock: clock}
}

// Start opens a span under parent (0 for a root) and returns its ID.
func (t *Tracer) Start(parent SpanID, tier, name string, attrs ...Label) SpanID {
	if t == nil {
		return 0
	}
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, &span{
		id: id, parent: parent, tier: tier, name: name,
		start: now, end: now, attrs: attrs,
	})
	return id
}

// End closes a span, stamping its end time and appending any
// result attributes.
func (t *Tracer) End(id SpanID, attrs ...Label) {
	if t == nil || id == 0 {
		return
	}
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.spans[id-1]
	s.end = now
	s.attrs = append(s.attrs, attrs...)
}

// Open creates an envelope span: a grouping node (cell, replica) whose
// extent is derived from its children at export time. It needs no End.
func (t *Tracer) Open(parent SpanID, tier, name string, attrs ...Label) SpanID {
	if t == nil {
		return 0
	}
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, &span{
		id: id, parent: parent, tier: tier, name: name,
		start: now, end: now, envelope: true, attrs: attrs,
	})
	return id
}

// Len reports the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// CountTier reports how many spans were recorded at the given tier.
func (t *Tracer) CountTier(tier string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, s := range t.spans {
		if s.tier == tier {
			n++
		}
	}
	return n
}

// finalized returns a snapshot with envelope extents resolved.
// Children always carry higher IDs than their parent (a span is
// created before anything it contains), so walking IDs in descending
// order resolves inner envelopes before the ones that contain them.
func (t *Tracer) finalized() []*span {
	t.mu.Lock()
	out := make([]*span, len(t.spans))
	for i, s := range t.spans {
		cp := *s
		out[i] = &cp
	}
	t.mu.Unlock()

	children := make(map[SpanID][]*span, len(out))
	for _, s := range out {
		if s.parent != 0 {
			children[s.parent] = append(children[s.parent], s)
		}
	}
	for i := len(out) - 1; i >= 0; i-- {
		s := out[i]
		if !s.envelope {
			continue
		}
		for _, c := range children[s.id] {
			if c.start < s.start {
				s.start = c.start
			}
			if c.end > s.end {
				s.end = c.end
			}
		}
	}
	return out
}

// spanJSON is the JSONL export schema: one object per line, parent 0
// for roots, durations in nanoseconds of the tracer's clock.
type spanJSON struct {
	ID      int64             `json:"id"`
	Parent  int64             `json:"parent"`
	Tier    string            `json:"tier"`
	Name    string            `json:"name"`
	StartNS int64             `json:"start_ns"`
	DurNS   int64             `json:"dur_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// WriteJSONL exports every span as one JSON object per line, in span
// creation order.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, s := range t.finalized() {
		j := spanJSON{
			ID: int64(s.id), Parent: int64(s.parent),
			Tier: s.tier, Name: s.name,
			StartNS: s.start, DurNS: s.end - s.start,
		}
		if len(s.attrs) > 0 {
			j.Attrs = make(map[string]string, len(s.attrs))
			for _, a := range s.attrs {
				j.Attrs[a.Name] = a.Value
			}
		}
		if err := enc.Encode(j); err != nil {
			return err
		}
	}
	return nil
}

// Summary writes a per-tier digest — span count and summed duration —
// in lifecycle order, one line per tier that recorded spans.
func (t *Tracer) Summary(w io.Writer) error {
	if t == nil {
		return nil
	}
	type agg struct {
		n   int
		dur int64
	}
	byTier := make(map[string]*agg)
	for _, s := range t.finalized() {
		a := byTier[s.tier]
		if a == nil {
			a = &agg{}
			byTier[s.tier] = a
		}
		a.n++
		a.dur += s.end - s.start
	}
	// Known tiers first in lifecycle order, then any custom tiers
	// sorted by name — never map order.
	known := make(map[string]bool, len(tierOrder))
	order := append([]string(nil), tierOrder...)
	for _, tier := range tierOrder {
		known[tier] = true
	}
	var extra []string
	for tier := range byTier {
		if !known[tier] {
			extra = append(extra, tier)
		}
	}
	sort.Strings(extra)
	order = append(order, extra...)
	for _, tier := range order {
		a := byTier[tier]
		if a == nil {
			continue
		}
		if _, err := fmt.Fprintf(w, "trace: %-9s %5d spans, %12.6fs total\n",
			tier, a.n, float64(a.dur)/1e9); err != nil {
			return err
		}
	}
	return nil
}
