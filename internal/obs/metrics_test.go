package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func mustText(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return b.String()
}

func TestCounterGaugeRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("vcabench_events_total", "Events.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("vcabench_depth", "Depth.")
	g.Set(3)
	g.Inc()
	g.Add(-2)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %g, want 2", got)
	}
	text := mustText(t, r)
	for _, want := range []string{
		"# HELP vcabench_events_total Events.\n",
		"# TYPE vcabench_events_total counter\n",
		"vcabench_events_total 5\n",
		"# TYPE vcabench_depth gauge\n",
		"vcabench_depth 2\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
}

func TestGetOrCreateReturnsSameSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("vcabench_shared_total", "Shared.")
	b := r.Counter("vcabench_shared_total", "Shared.")
	a.Inc()
	b.Inc()
	if got := a.Value(); got != 2 {
		t.Fatalf("shared counter = %d, want 2 (get-or-create must return the same series)", got)
	}
}

func TestSchemaMismatchPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(r *Registry)
	}{
		{"type", func(r *Registry) {
			r.Counter("vcabench_x_total", "X.")
			r.Gauge("vcabench_x_total", "X.")
		}},
		{"help", func(r *Registry) {
			r.Counter("vcabench_x_total", "X.")
			r.Counter("vcabench_x_total", "Y.")
		}},
		{"labels", func(r *Registry) {
			r.CounterVec("vcabench_x_total", "X.", "a")
			r.CounterVec("vcabench_x_total", "X.", "b")
		}},
		{"badname", func(r *Registry) { r.Counter("9starts_with_digit", "X.") }},
		{"badlabel", func(r *Registry) { r.CounterVec("vcabench_x_total", "X.", "le") }},
		{"arity", func(r *Registry) { r.CounterVec("vcabench_x_total", "X.", "a").With("v", "w") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("want panic")
				}
			}()
			tc.f(NewRegistry())
		})
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("vcabench_esc_total", "Escaping.", "path")
	v.With(`a\b"c` + "\nd").Inc()
	text := mustText(t, r)
	want := `vcabench_esc_total{path="a\\b\"c\nd"} 1` + "\n"
	if !strings.Contains(text, want) {
		t.Fatalf("escaped series %q missing in:\n%s", want, text)
	}
	if probs := LintText([]byte(text)); len(probs) != 0 {
		t.Fatalf("lint problems: %v", probs)
	}
}

func TestSeriesOrderingDeterministic(t *testing.T) {
	// Two registries populated in opposite orders must render
	// byte-identically: families sorted by name, series by labels.
	build := func(order []string) string {
		r := NewRegistry()
		v := r.CounterVec("vcabench_b_total", "B.", "w")
		for _, w := range order {
			v.With(w).Inc()
		}
		if order[0] == "z" {
			r.Gauge("vcabench_a", "A.").Set(1)
		} else {
			r.Gauge("vcabench_a", "A.").Set(1)
		}
		return mustText(t, r)
	}
	t1 := build([]string{"a", "m", "z"})
	t2 := build([]string{"z", "m", "a"})
	if t1 != t2 {
		t.Fatalf("exposition depends on creation order:\n%s\nvs\n%s", t1, t2)
	}
	ia := strings.Index(t1, "vcabench_a")
	ib := strings.Index(t1, "vcabench_b_total")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("families not sorted by name:\n%s", t1)
	}
}

func TestHistogramInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("vcabench_lat_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	text := mustText(t, r)
	for _, want := range []string{
		`vcabench_lat_seconds_bucket{le="0.1"} 1`,
		`vcabench_lat_seconds_bucket{le="1"} 2`,
		`vcabench_lat_seconds_bucket{le="10"} 3`,
		`vcabench_lat_seconds_bucket{le="+Inf"} 4`,
		`vcabench_lat_seconds_sum 55.55`,
		`vcabench_lat_seconds_count 4`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	if probs := LintText([]byte(text)); len(probs) != 0 {
		t.Fatalf("lint problems: %v", probs)
	}
}

func TestHistogramBoundaryIsInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("vcabench_edge_seconds", "Edge.", []float64{1})
	h.Observe(1) // le is <=, so an observation exactly at the bound counts
	text := mustText(t, r)
	if !strings.Contains(text, `vcabench_edge_seconds_bucket{le="1"} 1`+"\n") {
		t.Fatalf("bound not inclusive:\n%s", text)
	}
}

func TestGroupCollectorAndCollision(t *testing.T) {
	r := NewRegistry()
	r.RegisterGroup(func(g *Group) {
		g.Emit("vcabench_jobs", "Jobs by status.", TypeGauge,
			Sample{Labels: []Label{{Name: "status", Value: "running"}}, Value: 2},
			Sample{Labels: []Label{{Name: "status", Value: "done"}}, Value: 7},
		)
	})
	text := mustText(t, r)
	iDone := strings.Index(text, `vcabench_jobs{status="done"} 7`)
	iRun := strings.Index(text, `vcabench_jobs{status="running"} 2`)
	if iDone < 0 || iRun < 0 || iDone > iRun {
		t.Fatalf("group samples missing or unsorted:\n%s", text)
	}
	if probs := LintText([]byte(text)); len(probs) != 0 {
		t.Fatalf("lint problems: %v", probs)
	}

	// A group family colliding with an instrument family is an
	// exposition error, not a silent merge.
	r.Gauge("vcabench_jobs", "Jobs by status.")
	var b strings.Builder
	if err := r.WriteText(&b); err == nil {
		t.Fatalf("want collision error, got output:\n%s", b.String())
	}
}

func TestHandlerServesText(t *testing.T) {
	r := NewRegistry()
	r.Counter("vcabench_hits_total", "Hits.").Inc()
	rr := httptest.NewRecorder()
	Handler(r).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "vcabench_hits_total 1\n") {
		t.Fatalf("body:\n%s", rr.Body.String())
	}
}

func TestConcurrentInstrumentsAndScrapes(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("vcabench_par_total", "Parallel.", "w")
	h := r.Histogram("vcabench_par_seconds", "Parallel.", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w))
			for i := 0; i < 500; i++ {
				v.With(name).Inc()
				h.Observe(float64(i) / 1000)
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			text := mustText(t, r)
			if probs := LintText([]byte(text)); len(probs) != 0 {
				t.Errorf("lint under concurrency: %v", probs)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
	total := uint64(0)
	for w := 0; w < 8; w++ {
		total += v.With(string(rune('a' + w))).Value()
	}
	if total != 8*500 {
		t.Fatalf("counter total = %d, want %d", total, 8*500)
	}
}

func TestLintCatchesBadPayloads(t *testing.T) {
	cases := []struct {
		name    string
		payload string
		wantSub string
	}{
		{"no metadata", "orphan_total 1\n", "no preceding HELP/TYPE"},
		{"counter suffix",
			"# HELP x_hits Hits.\n# TYPE x_hits counter\nx_hits 1\n",
			"should end in _total"},
		{"unknown type",
			"# HELP x X.\n# TYPE x widget\nx 1\n",
			"unknown TYPE"},
		{"duplicate series",
			"# HELP x_total X.\n# TYPE x_total counter\nx_total{a=\"1\"} 1\nx_total{a=\"1\"} 2\n",
			"duplicate series"},
		{"non-cumulative histogram",
			"# HELP h H.\n# TYPE h histogram\n" +
				"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"not cumulative"},
		{"missing inf",
			"# HELP h H.\n# TYPE h histogram\n" +
				"h_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
			"missing le=\"+Inf\""},
		{"inf count mismatch",
			"# HELP h H.\n# TYPE h histogram\n" +
				"h_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n",
			"!= _count"},
		{"unterminated label",
			"# HELP x_total X.\n# TYPE x_total counter\nx_total{a=\"1} 1\n",
			"unterminated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			probs := LintText([]byte(tc.payload))
			found := false
			for _, p := range probs {
				if strings.Contains(p, tc.wantSub) {
					found = true
				}
			}
			if !found {
				t.Fatalf("want problem containing %q, got %v", tc.wantSub, probs)
			}
		})
	}
}

func TestLintAcceptsCleanPayload(t *testing.T) {
	r := NewRegistry()
	r.Counter("vcabench_a_total", "A.").Inc()
	r.GaugeVec("vcabench_b", "B.", "x", "y").With("1", "2").Set(3)
	r.Histogram("vcabench_c_seconds", "C.", nil).Observe(0.02)
	text := mustText(t, r)
	if probs := LintText([]byte(text)); len(probs) != 0 {
		t.Fatalf("clean payload flagged: %v\n%s", probs, text)
	}
}
