package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerSpansAndJSONL(t *testing.T) {
	clk := &ManualClock{}
	tr := NewTracer(clk)

	camp := tr.Start(0, TierCampaign, "fig12", Label{Name: "cells", Value: "2"})
	cell := tr.Open(camp, TierCell, "v3/seed7/p=zoom")
	unit := tr.Start(cell, TierUnit, "v3/seed7/p=zoom/rep=0")
	clk.Advance(10 * time.Millisecond)
	run := tr.Start(unit, TierLocalRun, "v3/seed7/p=zoom/rep=0")
	clk.Advance(90 * time.Millisecond)
	tr.End(run)
	tr.End(unit, Label{Name: "tier", Value: "local"})
	clk.Advance(5 * time.Millisecond)
	tr.End(camp)

	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.CountTier(TierUnit) != 1 || tr.CountTier(TierCell) != 1 {
		t.Fatalf("tier counts wrong")
	}

	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	var spans []spanJSON
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		var s spanJSON
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		spans = append(spans, s)
	}
	if len(spans) != 4 {
		t.Fatalf("got %d JSONL lines, want 4", len(spans))
	}

	byTier := map[string]spanJSON{}
	for _, s := range spans {
		byTier[s.Tier] = s
	}
	if got := byTier[TierCampaign].DurNS; got != int64(105*time.Millisecond) {
		t.Errorf("campaign dur = %d, want 105ms", got)
	}
	if got := byTier[TierUnit].DurNS; got != int64(100*time.Millisecond) {
		t.Errorf("unit dur = %d, want 100ms", got)
	}
	if got := byTier[TierLocalRun].DurNS; got != int64(90*time.Millisecond) {
		t.Errorf("local-run dur = %d, want 90ms", got)
	}
	// The envelope cell span inherits its extent from the unit child.
	if got := byTier[TierCell]; got.DurNS != int64(100*time.Millisecond) || got.StartNS != 0 {
		t.Errorf("cell envelope = start %d dur %d, want start 0 dur 100ms", got.StartNS, got.DurNS)
	}
	if byTier[TierUnit].Parent != byTier[TierCell].ID {
		t.Errorf("unit parent = %d, want cell id %d", byTier[TierUnit].Parent, byTier[TierCell].ID)
	}
	if byTier[TierCampaign].Attrs["cells"] != "2" {
		t.Errorf("campaign attrs = %v", byTier[TierCampaign].Attrs)
	}
	if byTier[TierUnit].Attrs["tier"] != "local" {
		t.Errorf("End attrs not recorded: %v", byTier[TierUnit].Attrs)
	}
}

func TestTracerEnvelopeNesting(t *testing.T) {
	// cell -> replica -> unit: the replica envelope resolves first
	// (higher ID), then the cell envelope sees the resolved extent.
	clk := &ManualClock{}
	tr := NewTracer(clk)
	cell := tr.Open(0, TierCell, "c")
	rep := tr.Open(cell, TierReplica, "c/rep=0")
	clk.Advance(time.Second)
	u := tr.Start(rep, TierUnit, "c/rep=0")
	clk.Advance(2 * time.Second)
	tr.End(u)

	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		var s spanJSON
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatal(err)
		}
		switch s.Tier {
		case TierCell, TierReplica:
			// Both envelopes span the unit's [1s, 3s] interval; the
			// envelopes were opened at t=0 but take their children's
			// extent, except start which keeps the earlier open time
			// only via children min — here the unit started at 1s but
			// the envelope opened at 0s, so start stays 0.
			if s.DurNS != int64(3*time.Second) {
				t.Errorf("%s dur = %d, want 3s", s.Tier, s.DurNS)
			}
		case TierUnit:
			if s.StartNS != int64(time.Second) || s.DurNS != int64(2*time.Second) {
				t.Errorf("unit = start %d dur %d", s.StartNS, s.DurNS)
			}
		}
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	id := tr.Start(0, TierUnit, "x")
	tr.End(id)
	if tr.Open(0, TierCell, "y") != 0 || tr.Len() != 0 || tr.CountTier(TierUnit) != 0 {
		t.Fatal("nil tracer recorded something")
	}
	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil WriteJSONL: %v %q", err, b.String())
	}
	if err := tr.Summary(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil Summary: %v %q", err, b.String())
	}
}

func TestTracerSummaryOrder(t *testing.T) {
	clk := &ManualClock{}
	tr := NewTracer(clk)
	u := tr.Start(0, TierUnit, "u")
	clk.Advance(time.Second)
	tr.End(u)
	s := tr.Start(0, TierStore, "s")
	clk.Advance(time.Millisecond)
	tr.End(s)
	c := tr.Start(0, TierCampaign, "c")
	tr.End(c)

	var b strings.Builder
	if err := tr.Summary(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	ic := strings.Index(out, "trace: campaign")
	iu := strings.Index(out, "trace: unit")
	is := strings.Index(out, "trace: store")
	if ic < 0 || iu < 0 || is < 0 || !(ic < iu && iu < is) {
		t.Fatalf("summary not in lifecycle order:\n%s", out)
	}
	if !strings.Contains(out, "1 spans,     1.000000s total") {
		t.Fatalf("unit duration missing:\n%s", out)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(RealClock{})
	root := tr.Start(0, TierCampaign, "c")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				id := tr.Start(root, TierUnit, "u")
				tr.End(id)
			}
		}()
	}
	wg.Wait()
	tr.End(root)
	if got := tr.CountTier(TierUnit); got != 1600 {
		t.Fatalf("unit spans = %d, want 1600", got)
	}
}

func TestManualClock(t *testing.T) {
	clk := &ManualClock{}
	if clk.Now() != 0 {
		t.Fatal("fresh clock not at zero")
	}
	clk.Advance(3 * time.Second)
	clk.Set(int64(time.Second))
	if clk.Now() != int64(time.Second) {
		t.Fatalf("Now = %d", clk.Now())
	}
}

func TestRealClockMonotonic(t *testing.T) {
	c := RealClock{}
	a := c.Now()
	b := c.Now()
	if b < a {
		t.Fatalf("real clock went backwards: %d then %d", a, b)
	}
}

func TestTelemetryNowNilSafe(t *testing.T) {
	var tel *Telemetry
	if tel.Now() != 0 {
		t.Fatal("nil telemetry Now != 0")
	}
	tel = &Telemetry{}
	if tel.Now() != 0 {
		t.Fatal("clockless telemetry Now != 0")
	}
	tel = NewTelemetry()
	if tel.Metrics == nil || tel.Clock == nil || tel.Tracer != nil {
		t.Fatal("NewTelemetry shape wrong")
	}
}
