package obs

// Telemetry bundles the three seams a component needs to be observed:
// a metrics registry, an optional span tracer, and the clock both read
// time through. Components receive a *Telemetry as plain data — never
// construct clocks or read wall time themselves — which is what keeps
// the deterministic packages walltime-free under vcalint while still
// measuring real latencies in production.
//
// A nil *Telemetry (and a nil Tracer inside a non-nil one) is valid
// everywhere and records nothing.
type Telemetry struct {
	Metrics *Registry
	Tracer  *Tracer
	Clock   Clock
}

// NewTelemetry builds the standard production bundle: a fresh registry
// and the real monotonic clock, with tracing off until a Tracer is
// attached.
func NewTelemetry() *Telemetry {
	return &Telemetry{Metrics: NewRegistry(), Clock: RealClock{}}
}

// Now reads the bundle's clock; zero when the bundle or clock is nil,
// so duration math degrades to zero rather than panicking.
func (t *Telemetry) Now() int64 {
	if t == nil || t.Clock == nil {
		return 0
	}
	return t.Clock.Now()
}
