package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// familySnapshot is one family frozen at scrape time: instrument
// families are copied out under their lock, group families arrive
// pre-frozen from the collector.
type familySnapshot struct {
	name    string
	help    string
	typ     MetricType
	samples []sampleSnapshot
}

// sampleSnapshot is one rendered line: name+suffix{labels} value.
// Histograms expand to _bucket/_sum/_count suffixes; everything else
// has an empty suffix.
type sampleSnapshot struct {
	suffix string
	labels []Label
	value  float64
}

// labelSignature orders samples deterministically within a family:
// suffix first (so _bucket series group together, ascending le), then
// label values. Rendering order must never depend on map iteration.
func (s sampleSnapshot) labelSignature() string {
	var b strings.Builder
	b.WriteString(s.suffix)
	for _, l := range s.labels {
		b.WriteByte(0)
		b.WriteString(l.Name)
		b.WriteByte(1)
		b.WriteString(l.Value)
	}
	return b.String()
}

// snapshot freezes every family — instruments and group collectors —
// into a sorted, render-ready list. Group collectors run outside the
// registry lock (they take their component's lock and may be slow).
func (r *Registry) snapshot() ([]*familySnapshot, error) {
	r.mu.Lock()
	instr := make([]*family, 0, len(r.families))
	//vcalint:ignore maprange the families collected here are sorted by name below, after group families join them
	for _, f := range r.families {
		instr = append(instr, f)
	}
	groups := append([]GroupFunc(nil), r.groups...)
	r.mu.Unlock()

	var snaps []*familySnapshot
	for _, f := range instr {
		snaps = append(snaps, f.snapshot())
	}
	for _, gf := range groups {
		g := &Group{}
		gf(g)
		snaps = append(snaps, g.fams...)
	}

	// Families sort by name; samples within a family are already in
	// deterministic order (instrument snapshots iterate sorted series
	// keys and keep buckets in ascending le order, which a global
	// lexical re-sort would destroy; group samples are sorted by Emit).
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].name < snaps[j].name })
	for i := 1; i < len(snaps); i++ {
		if snaps[i].name == snaps[i-1].name {
			return nil, fmt.Errorf("obs: metric family %q emitted by more than one source", snaps[i].name)
		}
	}
	return snaps, nil
}

// snapshot freezes one instrument family. Series order is fixed by
// sorting the collected keys — the map is never ranged for output.
func (f *family) snapshot() *familySnapshot {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	list := make([]*series, len(keys))
	for i, k := range keys {
		list[i] = f.series[k]
	}
	f.mu.Unlock()

	snap := &familySnapshot{name: f.name, help: f.help, typ: f.typ}
	for _, s := range list {
		labels := make([]Label, len(f.labels))
		for i, ln := range f.labels {
			labels[i] = Label{Name: ln, Value: s.labelValues[i]}
		}
		switch f.typ {
		case TypeHistogram:
			// Count first, then buckets and sum: Observe bumps count
			// last, so this read order can undercount a racing
			// observation but never yields +Inf (synthesized from
			// count) below a finite bucket.
			count := s.count.Load()
			for i, ub := range f.buckets {
				bl := append(append([]Label(nil), labels...),
					Label{Name: "le", Value: formatBound(ub)})
				c := s.bucketCounts[i].Load()
				if c > count {
					c = count
				}
				snap.samples = append(snap.samples, sampleSnapshot{
					suffix: "_bucket", labels: bl, value: float64(c),
				})
			}
			inf := append(append([]Label(nil), labels...), Label{Name: "le", Value: "+Inf"})
			snap.samples = append(snap.samples,
				sampleSnapshot{suffix: "_bucket", labels: inf, value: float64(count)},
				sampleSnapshot{suffix: "_sum", labels: labels, value: floatFromBits(s.sum.Load())},
				sampleSnapshot{suffix: "_count", labels: labels, value: float64(count)},
			)
		case TypeGauge:
			snap.samples = append(snap.samples, sampleSnapshot{
				labels: labels, value: floatFromBits(s.val.Load()),
			})
		default: // counter: val holds an integer count, not float bits
			snap.samples = append(snap.samples, sampleSnapshot{
				labels: labels, value: float64(s.val.Load()),
			})
		}
	}
	return snap
}

// formatBound renders a histogram upper bound the way Prometheus does:
// shortest round-trip representation.
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes HELP text per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteText renders every family in Prometheus text exposition format
// (version 0.0.4): families sorted by name, series sorted by suffix
// and label values, one HELP and TYPE line per family.
func (r *Registry) WriteText(w io.Writer) error {
	snaps, err := r.snapshot()
	if err != nil {
		return err
	}
	var b strings.Builder
	for _, f := range snaps {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.samples {
			b.WriteString(f.name)
			b.WriteString(s.suffix)
			if len(s.labels) > 0 {
				b.WriteByte('{')
				for i, l := range s.labels {
					if i > 0 {
						b.WriteByte(',')
					}
					b.WriteString(l.Name)
					b.WriteString(`="`)
					b.WriteString(escapeLabelValue(l.Value))
					b.WriteByte('"')
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(strconv.FormatFloat(s.value, 'g', -1, 64))
			b.WriteByte('\n')
		}
	}
	_, err = io.WriteString(w, b.String())
	return err
}

// Handler serves the registry in text exposition format; mount it at
// GET /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

func floatFromBits(b uint64) float64 {
	return math.Float64frombits(b)
}
