package obs

import (
	"sync/atomic"
	"time"
)

// Clock is the monotonic time source every instrumented package reads
// through. Telemetry measures the host — wall time is its subject
// matter — but the deterministic engine packages must never call
// time.Now themselves (the vcalint walltime invariant), so they take a
// Clock as data and the real clock lives here, in the one internal
// package allowlisted for wall-clock reads. Nanosecond readings are
// offsets from an arbitrary epoch; only differences are meaningful.
type Clock interface {
	// Now returns a monotonic reading in nanoseconds.
	Now() int64
}

// processStart anchors RealClock readings: offsets from process start
// keep values small and strictly monotonic (time.Since uses the
// monotonic clock, immune to wall-time jumps).
var processStart = time.Now()

// RealClock reads the host's monotonic clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() int64 { return int64(time.Since(processStart)) }

// ManualClock is a hand-advanced Clock for deterministic tests: spans
// and latency histograms driven by a ManualClock are byte-reproducible.
// Safe for concurrent use.
type ManualClock struct {
	ns atomic.Int64
}

// Now implements Clock.
func (c *ManualClock) Now() int64 { return c.ns.Load() }

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) { c.ns.Add(int64(d)) }

// Set positions the clock at an absolute nanosecond reading.
func (c *ManualClock) Set(ns int64) { c.ns.Store(ns) }
