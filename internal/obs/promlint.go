package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// LintText checks a Prometheus text exposition payload the way
// `promtool check metrics` would, returning one message per problem
// (nil means clean). It enforces the format rules plus the conventions
// this registry promises:
//
//   - every sample belongs to a family announced by HELP and TYPE
//   - TYPE is counter, gauge or histogram; counters end in _total
//   - label names are valid and label values properly quoted
//   - no duplicate series within a family
//   - histogram buckets are cumulative and non-decreasing, the +Inf
//     bucket exists and equals _count, and _sum/_count are present
func LintText(data []byte) []string {
	var probs []string
	addf := func(line int, format string, args ...any) {
		probs = append(probs, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	type histSeries struct {
		bounds []float64 // le values in file order
		counts []float64
		hasInf bool
		inf    float64
		sum    bool
		count  bool
		countV float64
	}
	type famState struct {
		name    string
		typ     string
		help    bool
		samples int
		seen    map[string]bool        // full series signature → dup detection
		hists   map[string]*histSeries // base label signature → histogram state
		line    int
	}

	var fams []*famState
	var cur *famState
	byName := make(map[string]*famState)

	getFam := func(name string) *famState {
		return byName[name]
	}
	finishHist := func(f *famState) {
		if f == nil || f.typ != "histogram" {
			return
		}
		keys := make([]string, 0, len(f.hists))
		for k := range f.hists {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			h := f.hists[k]
			where := f.name
			if k != "" {
				where = f.name + "{" + k + "}"
			}
			for i := 1; i < len(h.counts); i++ {
				if h.bounds[i] < h.bounds[i-1] {
					addf(f.line, "histogram %s buckets not in ascending le order", where)
				}
				if h.counts[i] < h.counts[i-1] {
					addf(f.line, "histogram %s bucket counts not cumulative", where)
				}
			}
			if !h.hasInf {
				addf(f.line, "histogram %s missing le=\"+Inf\" bucket", where)
			}
			if !h.sum {
				addf(f.line, "histogram %s missing _sum", where)
			}
			if !h.count {
				addf(f.line, "histogram %s missing _count", where)
			} else if h.hasInf && h.inf != h.countV {
				addf(f.line, "histogram %s +Inf bucket (%g) != _count (%g)", where, h.inf, h.countV)
			}
		}
	}

	lines := strings.Split(string(data), "\n")
	for i, raw := range lines {
		lineNo := i + 1
		line := strings.TrimRight(raw, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !validName(name) {
				addf(lineNo, "invalid metric name %q in %s line", name, fields[1])
				continue
			}
			f := getFam(name)
			if f == nil {
				f = &famState{name: name, seen: make(map[string]bool),
					hists: make(map[string]*histSeries), line: lineNo}
				byName[name] = f
				fams = append(fams, f)
			} else if f.samples > 0 && f != cur {
				addf(lineNo, "metadata for %q appears after its samples ended", name)
			}
			if fields[1] == "HELP" {
				if f.help {
					addf(lineNo, "duplicate HELP for %q", name)
				}
				f.help = true
			} else {
				if f.typ != "" {
					addf(lineNo, "duplicate TYPE for %q", name)
				}
				if len(fields) < 4 {
					addf(lineNo, "TYPE line for %q missing a type", name)
					continue
				}
				typ := fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					addf(lineNo, "unknown TYPE %q for %q", typ, name)
				}
				if typ == "counter" && !strings.HasSuffix(name, "_total") {
					addf(lineNo, "counter %q should end in _total", name)
				}
				f.typ = typ
			}
			if cur != f {
				finishHist(cur)
				cur = f
			}
			continue
		}

		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			addf(lineNo, "%v", err)
			continue
		}
		base, suffix := name, ""
		if cur != nil && cur.typ == "histogram" {
			for _, sfx := range []string{"_bucket", "_sum", "_count"} {
				if name == cur.name+sfx {
					base, suffix = cur.name, sfx
					break
				}
			}
		}
		f := getFam(base)
		if f == nil || f != cur {
			addf(lineNo, "sample %q has no preceding HELP/TYPE for its family", name)
			continue
		}
		if f.typ == "histogram" && suffix == "" {
			addf(lineNo, "histogram family %q has bare sample %q", f.name, name)
			continue
		}
		if !f.help {
			addf(lineNo, "family %q has samples but no HELP", f.name)
			f.help = true // report once
		}
		f.samples++

		var sigParts, baseParts []string
		var le string
		for _, l := range labels {
			if !validName(l.Name) {
				addf(lineNo, "invalid label name %q on %q", l.Name, name)
			}
			part := l.Name + "=" + strconv.Quote(l.Value)
			sigParts = append(sigParts, part)
			if l.Name == "le" && suffix == "_bucket" {
				le = l.Value
			} else {
				baseParts = append(baseParts, part)
			}
		}
		sig := suffix + "|" + strings.Join(sigParts, ",")
		if f.seen[sig] {
			addf(lineNo, "duplicate series %s%s{%s}", base, suffix, strings.Join(sigParts, ","))
		}
		f.seen[sig] = true

		if f.typ == "histogram" {
			baseSig := strings.Join(baseParts, ",")
			h := f.hists[baseSig]
			if h == nil {
				h = &histSeries{}
				f.hists[baseSig] = h
			}
			switch suffix {
			case "_bucket":
				if le == "" {
					addf(lineNo, "histogram bucket %q missing le label", name)
				} else if le == "+Inf" {
					h.hasInf = true
					h.inf = value
				} else {
					b, err := strconv.ParseFloat(le, 64)
					if err != nil || math.IsNaN(b) {
						addf(lineNo, "histogram bucket %q has unparsable le=%q", name, le)
					} else {
						h.bounds = append(h.bounds, b)
						h.counts = append(h.counts, value)
					}
				}
			case "_sum":
				h.sum = true
			case "_count":
				h.count = true
				h.countV = value
			}
		}
	}
	finishHist(cur)

	for _, f := range fams {
		if f.samples == 0 && f.typ != "histogram" {
			continue // metadata without samples is legal
		}
		if f.typ == "" {
			probs = append(probs, fmt.Sprintf("family %q has no TYPE line", f.name))
		}
	}
	return probs
}

// parseSampleLine splits `name{labels} value [timestamp]` handling
// escaped quotes inside label values.
func parseSampleLine(line string) (name string, labels []Label, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample line %q", line)
	}
	name = rest[:i]
	if !validName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	if rest[i] == '{' {
		rest = rest[i+1:]
		for {
			rest = strings.TrimLeft(rest, " \t")
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			eq := strings.Index(rest, "=")
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed labels in %q", line)
			}
			ln := strings.TrimSpace(rest[:eq])
			rest = rest[eq+1:]
			if !strings.HasPrefix(rest, `"`) {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
			}
			rest = rest[1:]
			var val strings.Builder
			closed := false
			for j := 0; j < len(rest); j++ {
				c := rest[j]
				if c == '\\' && j+1 < len(rest) {
					j++
					switch rest[j] {
					case 'n':
						val.WriteByte('\n')
					case '\\', '"':
						val.WriteByte(rest[j])
					default:
						val.WriteByte('\\')
						val.WriteByte(rest[j])
					}
					continue
				}
				if c == '"' {
					rest = rest[j+1:]
					closed = true
					break
				}
				val.WriteByte(c)
			}
			if !closed {
				return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
			}
			labels = append(labels, Label{Name: ln, Value: val.String()})
			rest = strings.TrimLeft(rest, " \t")
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
			}
		}
	} else {
		rest = rest[i:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("malformed value in %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparsable value %q in %q", fields[0], line)
	}
	return name, labels, value, nil
}
