package client

import (
	"fmt"
	"time"

	"github.com/vcabench/vcabench/internal/simnet"
)

// State is the client workflow position, mirroring the UI states the
// paper's controller scripts navigate with xdotool/adb.
type State int

const (
	StateIdle State = iota
	StateLaunching
	StateLaunched
	StateLoggingIn
	StateLoggedIn
	StateJoining
	StateInMeeting
	StateLeaving
	StateLeft
)

func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateLaunching:
		return "launching"
	case StateLaunched:
		return "launched"
	case StateLoggingIn:
		return "logging-in"
	case StateLoggedIn:
		return "logged-in"
	case StateJoining:
		return "joining"
	case StateInMeeting:
		return "in-meeting"
	case StateLeaving:
		return "leaving"
	case StateLeft:
		return "left"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// View is the client's layout setting.
type View int

const (
	ViewFullScreen View = iota // one remote stream fills the screen
	ViewGallery                // up to four equal tiles
	ViewScreenOff              // screen off, audio only
)

func (v View) String() string {
	switch v {
	case ViewFullScreen:
		return "fullscreen"
	case ViewGallery:
		return "gallery"
	case ViewScreenOff:
		return "screen-off"
	}
	return fmt.Sprintf("View(%d)", int(v))
}

// MaxVisibleTiles is how many participant videos any of the three clients
// renders at once (§5: "show videos for up to four concurrent
// participants" — the reason resource usage plateaus beyond N=5).
const MaxVisibleTiles = 4

// Transition is one logged workflow step.
type Transition struct {
	At    time.Time
	State State
}

// Controller replays the scripted client workflow in virtual time.
type Controller struct {
	sim   *simnet.Sim
	state State
	view  View
	log   []Transition
	// Step durations, tunable per platform script.
	LaunchDur time.Duration
	LoginDur  time.Duration
	JoinDur   time.Duration
	LeaveDur  time.Duration
}

// NewController creates a controller with typical UI-automation delays.
func NewController(sim *simnet.Sim) *Controller {
	return &Controller{
		sim:       sim,
		LaunchDur: 2 * time.Second,
		LoginDur:  1500 * time.Millisecond,
		JoinDur:   1 * time.Second,
		LeaveDur:  500 * time.Millisecond,
	}
}

// State returns the current workflow state.
func (c *Controller) State() State { return c.state }

// View returns the current layout.
func (c *Controller) View() View { return c.view }

// SetView changes the layout (a scripted UI click).
func (c *Controller) SetView(v View) { c.view = v }

// Log returns the transition history.
func (c *Controller) Log() []Transition { return c.log }

func (c *Controller) to(s State) {
	c.state = s
	c.log = append(c.log, Transition{At: c.sim.Now(), State: s})
}

// ScriptJoin drives Idle -> ... -> InMeeting, invoking ready when the
// client is in the meeting (when media may start flowing).
func (c *Controller) ScriptJoin(ready func()) {
	if c.state != StateIdle && c.state != StateLeft {
		panic("client: ScriptJoin from state " + c.state.String())
	}
	c.to(StateLaunching)
	c.sim.After(c.LaunchDur, func() {
		c.to(StateLaunched)
		c.to(StateLoggingIn)
		c.sim.After(c.LoginDur, func() {
			c.to(StateLoggedIn)
			c.to(StateJoining)
			c.sim.After(c.JoinDur, func() {
				c.to(StateInMeeting)
				if ready != nil {
					ready()
				}
			})
		})
	})
}

// ScriptLeave drives InMeeting -> Left, invoking done afterwards.
func (c *Controller) ScriptLeave(done func()) {
	if c.state != StateInMeeting {
		panic("client: ScriptLeave from state " + c.state.String())
	}
	c.to(StateLeaving)
	c.sim.After(c.LeaveDur, func() {
		c.to(StateLeft)
		if done != nil {
			done()
		}
	})
}
