package client

import (
	"time"

	"github.com/vcabench/vcabench/internal/capture"
	"github.com/vcabench/vcabench/internal/codec"
	"github.com/vcabench/vcabench/internal/geo"
	"github.com/vcabench/vcabench/internal/media"
	"github.com/vcabench/vcabench/internal/platform"
	"github.com/vcabench/vcabench/internal/rtp"
	"github.com/vcabench/vcabench/internal/simnet"
)

// MediaPort is the client's local media port.
const MediaPort = 5004

// Config describes one emulated client.
type Config struct {
	Name   string
	Region geo.Region
	// Access link; zero values mean an unconstrained cloud VM.
	UplinkBps, DownlinkBps int64
	QueueBytes             int
	LossProb               float64
	// Media generation (senders).
	SendVideo   bool
	VideoSource media.Source // explicit source; wins over VideoClass
	VideoClass  media.MotionClass
	Profile     media.Profile // zero => media.QuickProfile
	SendAudio   bool
	AudioClip   *media.AudioClip // required when SendAudio
	Seed        int64
	// Resolve maps remote node names to IPs for the traffic monitor.
	Resolve Resolver
	// Probe, when set, observes media-pipeline events in sim time — the
	// flight-recorder seam (see internal/diag): kind "fec-recovery" when
	// frames complete despite fresh packet gaps (the reassembler
	// recovered them), "frame-drop" when incomplete frames are
	// abandoned. Value is the frame count. Nil costs one branch per
	// delivered media packet.
	Probe func(at time.Time, kind string, value float64)
}

// Client is one emulated participant: node + feeder + monitor +
// controller + recorder.
type Client struct {
	cfg  Config
	sim  *simnet.Sim
	node *simnet.Node

	Monitor    *Monitor
	Controller *Controller

	att    *platform.Attachment
	enc    *codec.VideoEncoder
	pktzr  *rtp.Packetizer
	src    media.Source
	reasm  *rtp.Reassembler
	sent   []codec.EncodedFrame
	sentAu []codec.AudioFrame
	gotVid map[int]*codec.EncodedFrame
	gotAu  map[int]*codec.AudioFrame

	feedEv, audEv, kaEv, repEv *simnet.Event

	// Feedback accounting (per reporting interval).
	recvBytes   int64
	prevPackets int
	prevGaps    int
	running     bool

	// Probe watermarks: reassembler counter levels already reported.
	probeGaps  int
	probeDrops int
}

// New creates a client and its network node.
func New(net *simnet.Network, cfg Config) *Client {
	if cfg.Profile.W == 0 {
		cfg.Profile = media.QuickProfile
	}
	node := net.AddNode(simnet.NodeConfig{
		Name: cfg.Name, Region: cfg.Region,
		UplinkBps: cfg.UplinkBps, DownlinkBps: cfg.DownlinkBps,
		QueueBytes: cfg.QueueBytes, LossProb: cfg.LossProb,
	})
	c := &Client{
		cfg:    cfg,
		sim:    net.Sim(),
		node:   node,
		reasm:  rtp.NewReassembler(5),
		gotVid: make(map[int]*codec.EncodedFrame),
		gotAu:  make(map[int]*codec.AudioFrame),
	}
	c.Monitor = NewMonitor(node, cfg.Resolve)
	c.Controller = NewController(net.Sim())
	return c
}

// Node returns the client's network node.
func (c *Client) Node() *simnet.Node { return c.node }

// Name returns the client's node name.
func (c *Client) Name() string { return c.cfg.Name }

// Join attaches the client to a session (the meeting-join UI step's
// network effect). Must be called before the session starts.
func (c *Client) Join(s *platform.Session) *platform.Attachment {
	c.att = s.Join(c.node, platform.JoinOpts{Port: MediaPort, OnPacket: c.onPacket})
	return c.att
}

// Attachment returns the session handle (nil before Join).
func (c *Client) Attachment() *platform.Attachment { return c.att }

// Start begins media flow and periodic reporting. Call after the session
// has started.
func (c *Client) Start() {
	if c.att == nil {
		panic("client: Start before Join")
	}
	if c.running {
		panic("client: double Start")
	}
	c.running = true

	if c.cfg.SendVideo {
		c.src = c.cfg.VideoSource
		if c.src == nil {
			c.src = media.NewSource(c.cfg.VideoClass, c.cfg.Profile, c.cfg.Seed)
		}
		c.enc = codec.NewVideoEncoder(codec.VideoEncoderConfig{
			FPS:       c.src.FPS(),
			TargetBps: c.att.Target(),
			BitScale:  codec.BitScaleFor(c.cfg.Profile),
			Seed:      c.cfg.Seed + 1,
		})
		c.att.OnTarget(func(bps float64) { c.enc.SetTargetBps(bps) })
		c.pktzr = rtp.NewPacketizer(uint32(c.cfg.Seed)+1000, rtp.DefaultMTU, c.src.FPS())
		interval := time.Second / time.Duration(c.src.FPS())
		c.feedEv = c.sim.Every(interval, c.feedVideoFrame)
	}
	if c.cfg.SendAudio {
		if c.cfg.AudioClip == nil {
			panic("client: SendAudio without AudioClip")
		}
		aenc := codec.NewAudioEncoder(c.att.Session().AudioBps())
		c.sentAu = aenc.Encode(c.cfg.AudioClip)
		if c.pktzr == nil {
			c.pktzr = rtp.NewPacketizer(uint32(c.cfg.Seed)+1000, rtp.DefaultMTU, 30)
		}
		i := 0
		c.audEv = c.sim.Every(time.Duration(codec.AudioFrameDur*float64(time.Second)), func() {
			if i >= len(c.sentAu) {
				c.audEv.Cancel()
				return
			}
			pkt := c.pktzr.Audio(&c.sentAu[i])
			c.att.Send(pkt.Bytes, pkt)
			i++
		})
	}
	// Control-plane keepalives: small packets that keep the session's
	// traffic pattern realistic (and give lag probes their quiescent
	// background, as in paper Fig 2).
	c.kaEv = c.sim.Every(500*time.Millisecond, func() {
		c.att.Send(60, "keepalive")
	})
	// Receiver feedback at 1 Hz.
	c.repEv = c.sim.Every(time.Second, c.reportStats)
}

// feedVideoFrame encodes and transmits one frame tick.
func (c *Client) feedVideoFrame() {
	f := c.src.Next()
	ef := c.enc.Encode(f)
	c.sent = append(c.sent, ef)
	for _, pkt := range c.pktzr.Video(&c.sent[len(c.sent)-1]) {
		c.att.Send(pkt.Bytes, pkt)
	}
}

// onPacket handles media delivered by the platform.
func (c *Client) onPacket(pkt *simnet.Packet) {
	rp, ok := pkt.Payload.(*rtp.Packet)
	if !ok {
		return // keepalives and other control traffic
	}
	c.recvBytes += int64(pkt.Size)
	vids, au := c.reasm.Push(rp)
	for _, ef := range vids {
		c.gotVid[ef.Seq] = ef
	}
	if au != nil {
		c.gotAu[au.Seq] = au
	}
	if c.cfg.Probe != nil {
		st := c.reasm.StatsSnapshot()
		// Frames completing while new sequence gaps are outstanding were
		// recovered out of order — the loss-concealment event the paper
		// observes in webrtc-internals.
		if len(vids) > 0 && st.PacketGaps > c.probeGaps {
			c.cfg.Probe(c.sim.Now(), "fec-recovery", float64(len(vids)))
			c.probeGaps = st.PacketGaps
		}
		if st.FramesDropped > c.probeDrops {
			c.cfg.Probe(c.sim.Now(), "frame-drop", float64(st.FramesDropped-c.probeDrops))
			c.probeDrops = st.FramesDropped
		}
	}
}

// reportStats sends one feedback interval to the platform.
func (c *Client) reportStats() {
	st := c.reasm.StatsSnapshot()
	dPkts := st.Packets - c.prevPackets
	dGaps := st.PacketGaps - c.prevGaps
	c.prevPackets = st.Packets
	c.prevGaps = st.PacketGaps
	goodput := float64(c.recvBytes) * 8
	c.recvBytes = 0
	if dPkts+dGaps == 0 {
		return // nothing received; nothing to report
	}
	loss := float64(dGaps) / float64(dPkts+dGaps)
	c.att.ReportReceiverStats(loss, goodput)
}

// Stop halts media flow and reporting and closes the media socket, so
// packets still in flight when the client leaves are dropped at the node
// instead of leaking into a later session's receive path.
func (c *Client) Stop() {
	for _, ev := range []*simnet.Event{c.feedEv, c.audEv, c.kaEv, c.repEv} {
		if ev != nil {
			ev.Cancel()
		}
	}
	c.node.Unbind(MediaPort)
	c.running = false
}

// Reset clears per-session media state so the client (and its node, with
// the accumulated capture) can join the next session, as the paper's VMs
// do across their 20-session campaigns. The traffic trace is preserved.
func (c *Client) Reset() {
	if c.running {
		panic("client: Reset while running")
	}
	c.reasm = rtp.NewReassembler(5)
	c.gotVid = make(map[int]*codec.EncodedFrame)
	c.gotAu = make(map[int]*codec.AudioFrame)
	c.sent = nil
	c.sentAu = nil
	c.recvBytes = 0
	c.prevPackets = 0
	c.prevGaps = 0
	c.probeGaps = 0
	c.probeDrops = 0
	c.att = nil
}

// SentVideo returns the sender-side encoded-frame log.
func (c *Client) SentVideo() []codec.EncodedFrame { return c.sent }

// SentAudio returns the sender-side audio-frame log.
func (c *Client) SentAudio() []codec.AudioFrame { return c.sentAu }

// ReceivedVideo returns frames that arrived complete, by sender frame seq.
func (c *Client) ReceivedVideo() map[int]*codec.EncodedFrame { return c.gotVid }

// ReceiveStats returns the reassembler's counters.
func (c *Client) ReceiveStats() rtp.Stats { return c.reasm.StatsSnapshot() }

// Trace returns the client's packet capture.
func (c *Client) Trace() *capture.Trace { return c.Monitor.Trace() }

// Recording is the desktop-recorder output for one received stream.
type Recording struct {
	Ref       []*media.Frame // injected source frames (per display slot)
	Displayed []*media.Frame // what the viewer saw (nil = nothing yet)
	Audio     *media.AudioClip
	RefAudio  *media.AudioClip
}

// Record builds the recording against the sender's ground-truth logs:
// per display slot, the viewer sees the decoded frame if it arrived
// complete, a freeze if the encoder skipped, or a loss-freeze otherwise.
func (c *Client) Record(sender *Client) Recording {
	var rec Recording
	dec := codec.NewVideoDecoder()
	sent := sender.SentVideo()
	for i := range sent {
		ef := &sent[i]
		rec.Ref = append(rec.Ref, ef.Source)
		var out *media.Frame
		switch {
		case ef.Skipped:
			out = dec.Decode(ef) // sender stalled: freeze, chain intact
		case c.gotVid[ef.Seq] != nil:
			out = dec.Decode(c.gotVid[ef.Seq])
		default:
			out = dec.Decode(nil) // network loss
		}
		rec.Displayed = append(rec.Displayed, out)
	}
	if len(sender.sentAu) > 0 {
		ptrs := make([]*codec.AudioFrame, len(sender.sentAu))
		for i := range sender.sentAu {
			if af := c.gotAu[sender.sentAu[i].Seq]; af != nil {
				ptrs[i] = af
			}
		}
		adec := codec.NewAudioDecoder(c.cfg.Seed + 7)
		rate := sender.cfg.AudioClip.Rate
		bps := sender.att.Session().AudioBps()
		rec.Audio = adec.Decode(ptrs, rate, bps)
		rec.RefAudio = sender.cfg.AudioClip
	}
	return rec
}
