// Package client implements the fully emulated videoconferencing client
// of the paper's Fig 1: a media feeder replaying deterministic audiovisual
// content through the codec (the loopback-device substitute), a client
// monitor capturing all traffic tcpdump-style and driving active probing,
// a client controller replaying the scripted UI workflow, and a desktop
// recorder capturing what the viewer sees for offline QoE scoring.
package client

import (
	"time"

	"github.com/vcabench/vcabench/internal/capture"
	"github.com/vcabench/vcabench/internal/rtp"
	"github.com/vcabench/vcabench/internal/simnet"
)

// Resolver maps node names to trace IPs. Platform endpoints resolve to
// their service ranges; everything else defaults to capture.IPForName.
type Resolver func(node string) (capture.IPv4, bool)

// rtpSlabChunk is how many RTPInfo records one slab chunk holds. The
// capture keeps a pointer per RTP record, so slab entries are never
// reused — chunking just turns one heap allocation per packet into one
// per 1024 packets on the capture hot path.
const rtpSlabChunk = 1024

// Monitor is the client's traffic-capture component.
type Monitor struct {
	trace   *capture.Trace
	local   capture.IPv4
	resolve Resolver
	// ips memoizes name → IP resolution. Safe to cache on first use: a
	// name reaches the tap only via a packet, which can only exist after
	// the named node (and, for platform endpoints, its service-range
	// registration) was provisioned — so the answer for a given name
	// never changes afterwards.
	ips map[string]capture.IPv4
	// rtpSlab is the current chunk RTP header copies are appended to.
	rtpSlab []capture.RTPInfo
}

// NewMonitor attaches a capture tap to the node. resolve may be nil.
func NewMonitor(node *simnet.Node, resolve Resolver) *Monitor {
	m := &Monitor{
		trace:   capture.NewTrace(node.Name()),
		local:   capture.IPForName(node.Name()),
		resolve: resolve,
		ips:     make(map[string]capture.IPv4),
	}
	node.Tap(func(dir simnet.Direction, pkt *simnet.Packet, at time.Time) {
		m.record(dir, pkt, at)
	})
	return m
}

func (m *Monitor) ipOf(node string) capture.IPv4 {
	if ip, ok := m.ips[node]; ok {
		return ip
	}
	ip := capture.IPForName(node)
	if m.resolve != nil {
		if rip, ok := m.resolve(node); ok {
			ip = rip
		}
	}
	m.ips[node] = ip
	return ip
}

func (m *Monitor) record(dir simnet.Direction, pkt *simnet.Packet, at time.Time) {
	rec := capture.Record{
		Time: at,
		Src:  capture.Endpoint{IP: m.ipOf(pkt.From.Node), Port: uint16(pkt.From.Port)},
		Dst:  capture.Endpoint{IP: m.ipOf(pkt.To.Node), Port: uint16(pkt.To.Port)},
		Len:  pkt.Size,
	}
	if dir == simnet.DirOut {
		rec.Dir = capture.Out
	} else {
		rec.Dir = capture.In
	}
	if rp, ok := pkt.Payload.(*rtp.Packet); ok {
		if len(m.rtpSlab) == cap(m.rtpSlab) {
			m.rtpSlab = make([]capture.RTPInfo, 0, rtpSlabChunk)
		}
		m.rtpSlab = append(m.rtpSlab, rp.Info)
		rec.RTP = &m.rtpSlab[len(m.rtpSlab)-1]
	}
	m.trace.Add(rec)
}

// Trace returns the capture so far.
func (m *Monitor) Trace() *capture.Trace { return m.trace }
