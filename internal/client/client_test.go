package client

import (
	"bytes"
	"testing"
	"time"

	"github.com/vcabench/vcabench/internal/capture"
	"github.com/vcabench/vcabench/internal/geo"
	"github.com/vcabench/vcabench/internal/media"
	"github.com/vcabench/vcabench/internal/platform"
	"github.com/vcabench/vcabench/internal/qoe"
	"github.com/vcabench/vcabench/internal/simnet"
)

func testbed(seed int64) (*simnet.Sim, *simnet.Network) {
	s := simnet.NewSim(seed)
	return s, simnet.NewNetwork(s, simnet.NetworkConfig{})
}

// runSession wires a host sender and receivers through a platform and
// runs the session for dur, returning the participants.
func runSession(t *testing.T, kind platform.Kind, seed int64, dur time.Duration,
	hostCfg Config, recvCfgs []Config) (*simnet.Sim, *Client, []*Client) {
	t.Helper()
	sim, net := testbed(seed)
	p := platform.New(kind, net)
	resolve := func(n string) (capture.IPv4, bool) { return p.Resolve(n) }
	hostCfg.Resolve = resolve
	host := New(net, hostCfg)
	var recvs []*Client
	s := p.CreateSession()
	host.Join(s)
	for _, rc := range recvCfgs {
		rc.Resolve = resolve
		r := New(net, rc)
		r.Join(s)
		recvs = append(recvs, r)
	}
	s.Start()
	host.Start()
	for _, r := range recvs {
		r.Start()
	}
	sim.RunFor(dur)
	host.Stop()
	for _, r := range recvs {
		r.Stop()
	}
	s.End()
	return sim, host, recvs
}

func TestEndToEndVideoSession(t *testing.T) {
	host := Config{
		Name: "e2e-host", Region: geo.USEast,
		SendVideo: true, VideoClass: media.LowMotion, Seed: 1,
	}
	recv := Config{Name: "e2e-recv", Region: geo.USWest, Seed: 2}
	_, h, rs := runSession(t, platform.Webex, 1, 10*time.Second, host, []Config{recv})
	r := rs[0]

	sent := h.SentVideo()
	if len(sent) < 90 {
		t.Fatalf("sent %d frames in 10s at 10fps, want ~100", len(sent))
	}
	if got := len(r.ReceivedVideo()); got < len(sent)*8/10 {
		t.Errorf("received only %d/%d frames", got, len(sent))
	}
	// Traces: host uploads, receiver downloads, at a plausible rate.
	up := h.Trace().Rate(capture.Out)
	down := r.Trace().Rate(capture.In)
	if up < 500_000 || up > 4_000_000 {
		t.Errorf("host upload rate = %.0f", up)
	}
	if down < 500_000 || down > 4_000_000 {
		t.Errorf("receiver download rate = %.0f", down)
	}
	// QoE of the recording is sane.
	rec := r.Record(h)
	res := qoe.CompareVideo(rec.Ref, rec.Displayed, 5)
	if res.PSNR < 20 || res.PSNR > 50 {
		t.Errorf("PSNR = %v", res.PSNR)
	}
	if res.SSIM < 0.5 {
		t.Errorf("SSIM = %v", res.SSIM)
	}
}

func TestEndToEndAudio(t *testing.T) {
	clip := media.NewSpeech(8, 3)
	host := Config{
		Name: "au-host", Region: geo.USEast,
		SendAudio: true, AudioClip: clip, Seed: 3,
	}
	recv := Config{Name: "au-recv", Region: geo.USCentral, Seed: 4}
	_, h, rs := runSession(t, platform.Zoom, 2, 10*time.Second, host, []Config{recv})
	rec := rs[0].Record(h)
	if rec.Audio == nil {
		t.Fatal("no audio recording")
	}
	mos := qoe.MOSLQO(rec.RefAudio, rec.Audio)
	if mos < 3.5 {
		t.Errorf("clean-network audio MOS = %v", mos)
	}
}

func TestZoomP2PTwoParty(t *testing.T) {
	host := Config{
		Name: "p2p-a", Region: geo.USEast,
		SendVideo: true, VideoClass: media.LowMotion, Seed: 5,
	}
	recv := Config{Name: "p2p-b", Region: geo.USEast2, Seed: 6}
	_, h, rs := runSession(t, platform.Zoom, 3, 8*time.Second, host, []Config{recv})
	// P2P target is ~1 Mbps vs ~0.7 relay.
	if tgt := h.Attachment().Target(); tgt < 900_000 {
		t.Errorf("p2p target = %v", tgt)
	}
	// The receiver's remote endpoint is the peer itself, not a relay.
	eps := rs[0].Trace().RemoteEndpoints(capture.In)
	if len(eps) != 1 {
		t.Fatalf("remote endpoints = %v", eps)
	}
	if eps[0].IP != capture.IPForName("p2p-a") {
		t.Errorf("p2p remote = %v, want peer's IP", eps[0])
	}
}

func TestReceiverFeedbackDrivesAdaptation(t *testing.T) {
	// Cap the receiver's downlink at 250 kbps; Meet must adapt its
	// ~500 kbps multi-party target downward.
	host := Config{
		Name: "ad-host", Region: geo.USEast,
		SendVideo: true, VideoClass: media.HighMotion, Seed: 7,
	}
	recvs := []Config{
		{Name: "ad-r1", Region: geo.USWest, DownlinkBps: 250_000, QueueBytes: 32 * 1024, Seed: 8},
		{Name: "ad-r2", Region: geo.USCentral, Seed: 9},
	}
	_, h, _ := runSession(t, platform.Meet, 4, 15*time.Second, host, recvs)
	final := h.Attachment().Target()
	if final > 400_000 {
		t.Errorf("Meet did not adapt under a 250k cap: target %v", final)
	}
}

func TestRecordingUnderLoss(t *testing.T) {
	host := Config{
		Name: "ls-host", Region: geo.USEast,
		SendVideo: true, VideoClass: media.HighMotion, Seed: 10,
	}
	recv := Config{Name: "ls-recv", Region: geo.USWest, LossProb: 0.08, Seed: 11}
	_, h, rs := runSession(t, platform.Webex, 5, 10*time.Second, host, []Config{recv})
	rec := rs[0].Record(h)
	res := qoe.CompareVideo(rec.Ref, rec.Displayed, 5)
	if res.FreezeRatio == 0 {
		t.Error("8% loss should cause freezes")
	}
	// Compare with the clean receiver path of the same content.
	host2 := Config{
		Name: "ls-host2", Region: geo.USEast,
		SendVideo: true, VideoClass: media.HighMotion, Seed: 10,
	}
	recv2 := Config{Name: "ls-recv2", Region: geo.USWest, Seed: 11}
	_, h2, rs2 := runSession(t, platform.Webex, 5, 10*time.Second, host2, []Config{recv2})
	clean := qoe.CompareVideo(rs2[0].Record(h2).Ref, rs2[0].Record(h2).Displayed, 5)
	if res.SSIM >= clean.SSIM {
		t.Errorf("lossy SSIM %v >= clean SSIM %v", res.SSIM, clean.SSIM)
	}
}

func TestControllerWorkflow(t *testing.T) {
	sim, _ := testbed(1)
	ctl := NewController(sim)
	if ctl.State() != StateIdle {
		t.Fatal("initial state")
	}
	joined := false
	ctl.ScriptJoin(func() { joined = true })
	sim.RunFor(10 * time.Second)
	if !joined || ctl.State() != StateInMeeting {
		t.Fatalf("after join: %v joined=%v", ctl.State(), joined)
	}
	left := false
	ctl.ScriptLeave(func() { left = true })
	sim.RunFor(5 * time.Second)
	if !left || ctl.State() != StateLeft {
		t.Fatalf("after leave: %v", ctl.State())
	}
	// Full transition log recorded.
	if len(ctl.Log()) < 6 {
		t.Errorf("transition log has %d entries", len(ctl.Log()))
	}
	// Rejoin from Left is allowed.
	ctl.ScriptJoin(nil)
	sim.RunFor(10 * time.Second)
	if ctl.State() != StateInMeeting {
		t.Errorf("rejoin: %v", ctl.State())
	}
}

func TestControllerBadTransitionPanics(t *testing.T) {
	sim, _ := testbed(1)
	ctl := NewController(sim)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ctl.ScriptLeave(nil) // not in meeting
}

func TestViewAndStateStrings(t *testing.T) {
	for _, v := range []View{ViewFullScreen, ViewGallery, ViewScreenOff} {
		if v.String() == "" {
			t.Error("empty view string")
		}
	}
	for s := StateIdle; s <= StateLeft; s++ {
		if s.String() == "" {
			t.Error("empty state string")
		}
	}
	sim, _ := testbed(1)
	ctl := NewController(sim)
	ctl.SetView(ViewGallery)
	if ctl.View() != ViewGallery {
		t.Error("SetView")
	}
}

func TestMonitorRecordsRTPMetadata(t *testing.T) {
	host := Config{
		Name: "mon-host", Region: geo.USEast,
		SendVideo: true, VideoClass: media.LowMotion, Seed: 12,
	}
	recv := Config{Name: "mon-recv", Region: geo.USEast2, Seed: 13}
	_, _, rs := runSession(t, platform.Webex, 7, 5*time.Second, host, []Config{recv})
	tr := rs[0].Trace()
	withRTP := tr.Filter(func(r capture.Record) bool { return r.RTP != nil && r.Dir == capture.In })
	if withRTP.Len() == 0 {
		t.Fatal("no RTP metadata captured")
	}
	// Endpoint IP is from the Webex range.
	eps := withRTP.RemoteEndpoints(capture.In)
	if len(eps) != 1 || eps[0].IP[0] != 66 {
		t.Errorf("webex endpoints = %v", eps)
	}
	if eps[0].Port != 9000 {
		t.Errorf("webex media port = %d", eps[0].Port)
	}
}

func TestStartBeforeJoinPanics(t *testing.T) {
	_, net := testbed(1)
	c := New(net, Config{Name: "x", Region: geo.USEast})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c.Start()
}

func TestPcapExportOfSessionTrace(t *testing.T) {
	host := Config{
		Name: "pcap-host", Region: geo.USEast,
		SendVideo: true, VideoClass: media.LowMotion, Seed: 14,
	}
	recv := Config{Name: "pcap-recv", Region: geo.USWest, Seed: 15}
	_, _, rs := runSession(t, platform.Meet, 8, 5*time.Second, host, []Config{recv})
	tr := rs[0].Trace()
	var buf bytes.Buffer
	if err := capture.WritePcap(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, skipped, err := capture.ReadPcap(&buf, tr.Node, capture.IPForName("pcap-recv"))
	if err != nil || skipped != 0 {
		t.Fatalf("read back: %v (skipped %d)", err, skipped)
	}
	if back.Len() != tr.Len() {
		t.Errorf("pcap round trip %d != %d", back.Len(), tr.Len())
	}
}
