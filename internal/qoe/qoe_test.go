package qoe

import (
	"math"
	"math/rand"
	"testing"

	"github.com/vcabench/vcabench/internal/codec"
	"github.com/vcabench/vcabench/internal/media"
)

func noisy(f *media.Frame, std float64, seed int64) *media.Frame {
	rng := rand.New(rand.NewSource(seed))
	g := f.Clone()
	for i := range g.Pix {
		v := float64(g.Pix[i]) + rng.NormFloat64()*std
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		g.Pix[i] = uint8(v)
	}
	return g
}

func testFrame(seed int64) *media.Frame {
	src := media.NewLowMotion(media.QuickProfile, seed)
	return src.Next()
}

func TestPSNRIdentity(t *testing.T) {
	f := testFrame(1)
	if got := PSNR(f, f); got != PSNRCap {
		t.Errorf("PSNR(f,f) = %v, want cap %v", got, PSNRCap)
	}
}

func TestPSNRKnownNoise(t *testing.T) {
	f := testFrame(1)
	g := noisy(f, 5, 2)
	got := PSNR(f, g)
	// sigma=5 => MSE ~25 => PSNR ~34.2 dB (clipping pulls it up slightly).
	if got < 32 || got > 37 {
		t.Errorf("PSNR at sigma=5 = %v, want ~34", got)
	}
	worse := PSNR(f, noisy(f, 15, 3))
	if worse >= got {
		t.Errorf("more noise should lower PSNR: %v vs %v", worse, got)
	}
}

func TestSSIMBounds(t *testing.T) {
	f := testFrame(3)
	if s := SSIM(f, f); math.Abs(s-1) > 1e-9 {
		t.Errorf("SSIM(f,f) = %v", s)
	}
	g := noisy(f, 20, 4)
	s := SSIM(f, g)
	if s <= 0 || s >= 1 {
		t.Errorf("SSIM noisy = %v, want in (0,1)", s)
	}
	// Monotone in noise.
	if s2 := SSIM(f, noisy(f, 40, 5)); s2 >= s {
		t.Errorf("SSIM not monotone: %v then %v", s, s2)
	}
}

func TestSSIMTinyFrameFallback(t *testing.T) {
	a := media.NewFrame(4, 4)
	b := media.NewFrame(4, 4)
	for i := range a.Pix {
		a.Pix[i] = uint8(10 * i)
		b.Pix[i] = uint8(10 * i)
	}
	if s := SSIM(a, b); math.Abs(s-1) > 1e-9 {
		t.Errorf("tiny SSIM identity = %v", s)
	}
}

func TestVIFPBoundsAndMonotone(t *testing.T) {
	f := testFrame(6)
	if v := VIFP(f, f); math.Abs(v-1) > 0.02 {
		t.Errorf("VIFp(f,f) = %v, want ~1", v)
	}
	v1 := VIFP(f, noisy(f, 8, 7))
	v2 := VIFP(f, noisy(f, 25, 8))
	if !(1 > v1 && v1 > v2 && v2 > 0) {
		t.Errorf("VIFp ordering broken: 1 > %v > %v > 0", v1, v2)
	}
}

func TestVIFPBlurPenalized(t *testing.T) {
	f := testFrame(9)
	blurred := f.Resize(f.W/4, f.H/4).Resize(f.W, f.H)
	v := VIFP(f, blurred)
	if v >= 0.9 {
		t.Errorf("VIFp of blurred = %v, want well below 1", v)
	}
}

func TestGeometryMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	PSNR(media.NewFrame(2, 2), media.NewFrame(3, 3))
}

func TestCompareVideo(t *testing.T) {
	p := media.QuickProfile
	src := media.NewSource(media.LowMotion, p, 11)
	var ref, disp []*media.Frame
	for i := 0; i < 20; i++ {
		f := src.Next()
		ref = append(ref, f)
		disp = append(disp, noisy(f, 6, int64(i)))
	}
	res := CompareVideo(ref, disp, 2)
	if res.Frames != 10 {
		t.Errorf("scored frames = %d", res.Frames)
	}
	if res.PSNR < 28 || res.PSNR > 40 {
		t.Errorf("PSNR = %v", res.PSNR)
	}
	if res.FreezeRatio != 0 {
		t.Errorf("freeze ratio = %v", res.FreezeRatio)
	}
	if res.String() == "" {
		t.Error("empty String")
	}
}

func TestCompareVideoFreezesAndNil(t *testing.T) {
	p := media.QuickProfile
	src := media.NewSource(media.LowMotion, p, 12)
	var ref, disp []*media.Frame
	frozen := src.Next()
	for i := 0; i < 10; i++ {
		ref = append(ref, src.Next())
		if i < 3 {
			disp = append(disp, nil) // nothing shown yet
		} else {
			disp = append(disp, frozen) // stale repeat
		}
	}
	res := CompareVideo(ref, disp, 1)
	// 3 nil slots + 6 repeats; the first stale frame at slot 3 is not
	// observable as a freeze => 9/10.
	if res.FreezeRatio != 0.9 {
		t.Errorf("freeze ratio = %v, want 0.9", res.FreezeRatio)
	}
	// Frozen/black output must score clearly worse than a live stream.
	if res.SSIM > 0.9 {
		t.Errorf("frozen SSIM = %v suspiciously high", res.SSIM)
	}
}

func TestCompareVideoLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	CompareVideo(make([]*media.Frame, 3), make([]*media.Frame, 4), 1)
}

func TestAlignFramesRecoversShift(t *testing.T) {
	p := media.QuickProfile
	src := media.NewSource(media.HighMotion, p, 13)
	frames := media.Record(src, 40)
	for _, shift := range []int{0, 3, 7} {
		rec := frames[shift:]
		got := AlignFrames(frames, rec, 10)
		if got != -shift {
			t.Errorf("shift %d: AlignFrames = %d, want %d", shift, got, -shift)
		}
	}
}

func TestAlignFramesEmpty(t *testing.T) {
	if got := AlignFrames(nil, nil, 5); got != 0 {
		t.Errorf("empty align = %d", got)
	}
}

func TestAlignAudioRecoversLag(t *testing.T) {
	ref := media.NewSpeech(3.0, 21)
	lag := 800 // samples = 50 ms
	rec := &media.AudioClip{Rate: ref.Rate}
	rec.Samples = append(make([]float64, lag), ref.Samples...)
	got := AlignAudio(ref, rec, 3200)
	if got < lag-160 || got > lag+160 {
		t.Errorf("AlignAudio = %d, want ~%d", got, lag)
	}
}

func TestMOSIdentity(t *testing.T) {
	c := media.NewSpeech(2.0, 31)
	mos := MOSLQO(c, c)
	if mos < 4.5 {
		t.Errorf("identity MOS = %v, want >= 4.5", mos)
	}
}

func TestMOSCleanCodecHigh(t *testing.T) {
	clip := media.NewSpeech(2.0, 32)
	enc := codec.NewAudioEncoder(90_000)
	frames := enc.Encode(clip)
	ptrs := make([]*codec.AudioFrame, len(frames))
	for i := range frames {
		ptrs[i] = &frames[i]
	}
	out := codec.NewAudioDecoder(1).Decode(ptrs, clip.Rate, 90_000)
	mos := MOSLQO(clip, out)
	if mos < 3.8 {
		t.Errorf("clean 90kbps MOS = %v, want high", mos)
	}
}

func TestMOSDegradesWithLoss(t *testing.T) {
	clip := media.NewSpeech(3.0, 33)
	enc := codec.NewAudioEncoder(45_000)
	frames := enc.Encode(clip)
	mosAt := func(lossEvery int) float64 {
		ptrs := make([]*codec.AudioFrame, len(frames))
		for i := range frames {
			if lossEvery > 0 && i%lossEvery == 0 {
				continue
			}
			ptrs[i] = &frames[i]
		}
		out := codec.NewAudioDecoder(2).Decode(ptrs, clip.Rate, 45_000)
		return MOSLQO(clip, out)
	}
	clean := mosAt(0)
	light := mosAt(10) // 10% loss
	heavy := mosAt(3)  // 33% loss
	if !(clean > light && light > heavy) {
		t.Errorf("MOS not monotone in loss: clean=%v light=%v heavy=%v", clean, light, heavy)
	}
	if heavy > 3.6 {
		t.Errorf("33%% loss MOS = %v, want clearly degraded", heavy)
	}
}

func TestMOSSilenceVsSpeech(t *testing.T) {
	c := media.NewSpeech(2.0, 34)
	dead := media.NewSilence(2.0, c.Rate)
	if mos := MOSLQO(c, dead); mos > 2.5 {
		t.Errorf("speech vs silence MOS = %v, want low", mos)
	}
}

func TestMOSShortClip(t *testing.T) {
	tiny := &media.AudioClip{Rate: 16000, Samples: make([]float64, 10)}
	if mos := MOSLQO(tiny, tiny); mos != 1 {
		t.Errorf("short-clip MOS = %v, want 1 (unmeasurable)", mos)
	}
}

func TestFFTKnownSpectrum(t *testing.T) {
	// A 1 kHz tone at 16 kHz in a 512 FFT lands in bin 32.
	c := media.NewTone(0.1, 1000, 16000)
	buf := make([]complex128, 512)
	for i := 0; i < 512; i++ {
		buf[i] = complex(c.Samples[i], 0)
	}
	fft(buf)
	peak, peakBin := 0.0, 0
	for k := 1; k < 256; k++ {
		m := cabs2(buf[k])
		if m > peak {
			peak, peakBin = m, k
		}
	}
	if peakBin != 32 {
		t.Errorf("peak bin = %d, want 32", peakBin)
	}
}

func cabs2(z complex128) float64 { return real(z)*real(z) + imag(z)*imag(z) }
