//go:build amd64

package qoe

// The separable-convolution inner loops are elementwise: every output
// element is computed independently as round(src*k) followed by one
// rounded add. That makes SIMD forms bit-identical to the scalar loops
// as long as multiply and add stay separate instructions — so the
// kernels below use VMULPD/VADDPD (and MULPD/ADDPD), never FMA, whose
// single rounding would change low-order bits.
//
// useAVX2 gates the 4-wide kernels. The SSE2 forms are the floor:
// SSE2 is part of the amd64 baseline, so no further fallback is needed
// on this architecture (see vec_generic.go for others).
var useAVX2 = cpuSupportsAVX2()

// scaleVec writes dst[i] = src[i] * k for every i in dst.
// len(src) must be >= len(dst).
func scaleVec(dst, src []float64, k float64) {
	if useAVX2 {
		scaleAVX2(dst, src, k)
		return
	}
	scaleSSE2(dst, src, k)
}

// axpyVec accumulates dst[i] += src[i] * k for every i in dst.
// len(src) must be >= len(dst).
func axpyVec(dst, src []float64, k float64) {
	if useAVX2 {
		axpyAVX2(dst, src, k)
		return
	}
	axpySSE2(dst, src, k)
}

// mulVec writes dst[i] = a[i] * b[i] for every i in dst.
// len(a) and len(b) must be >= len(dst).
func mulVec(dst, a, b []float64) {
	if useAVX2 {
		mulVecAVX2(dst, a, b)
		return
	}
	mulVecSSE2(dst, a, b)
}

// convTaps writes dst[j] = sum over i of src[j+i*stride]*k[i], with the
// products added in ascending tap order — the exact rounding sequence of
// running scaleVec for tap 0 then axpyVec for taps 1..n-1, except the
// accumulator lives in a register instead of round-tripping through
// dst once per tap. len(src) must be >= len(dst)+(len(k)-1)*stride.
func convTaps(dst, src, k []float64, stride int) {
	if len(k) == 0 {
		return
	}
	if useAVX2 {
		convTapsAVX2(dst, src, k, stride)
		return
	}
	convTapsSSE2(dst, src, k, stride)
}

//go:noescape
func convTapsAVX2(dst, src, k []float64, stride int)

//go:noescape
func convTapsSSE2(dst, src, k []float64, stride int)

//go:noescape
func mulVecAVX2(dst, a, b []float64)

//go:noescape
func mulVecSSE2(dst, a, b []float64)

//go:noescape
func scaleAVX2(dst, src []float64, k float64)

//go:noescape
func axpyAVX2(dst, src []float64, k float64)

//go:noescape
func scaleSSE2(dst, src []float64, k float64)

//go:noescape
func axpySSE2(dst, src []float64, k float64)

func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbv() (eax, edx uint32)

// cpuSupportsAVX2 checks CPU support for AVX2 and, via XGETBV, that the
// OS saves/restores the YMM state.
func cpuSupportsAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c&osxsave == 0 || c&avx == 0 {
		return false
	}
	if lo, _ := xgetbv(); lo&0x6 != 0x6 { // XMM and YMM state enabled
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	return b&(1<<5) != 0 // AVX2
}
