package qoe

import (
	"fmt"
	"math"

	"github.com/vcabench/vcabench/internal/media"
)

// PSNRCap bounds PSNR for identical images so that averaging over frames
// stays finite (the common convention in quality tooling).
const PSNRCap = 60.0

// PSNR returns the peak signal-to-noise ratio in dB between two frames of
// identical geometry.
func PSNR(ref, dist *media.Frame) float64 {
	mustMatch(ref, dist)
	var se float64
	for i := range ref.Pix {
		d := float64(ref.Pix[i]) - float64(dist.Pix[i])
		se += d * d
	}
	mse := se / float64(len(ref.Pix))
	if mse == 0 {
		return PSNRCap
	}
	v := 10 * math.Log10(255*255/mse)
	if v > PSNRCap {
		v = PSNRCap
	}
	return v
}

// SSIM constants (Wang et al. 2004): 11x11 Gaussian window, sigma 1.5.
const (
	ssimWindow = 11
	ssimSigma  = 1.5
	ssimK1     = 0.01
	ssimK2     = 0.03
	ssimL      = 255
)

// SSIM returns the mean structural similarity index between two frames.
// The result is in [-1, 1]; 1 means identical.
func SSIM(ref, dist *media.Frame) float64 {
	return NewScorer().ssimPair(ref, dist)
}

// ssimPair is SSIM against the scorer's per-image stat cache. Only the
// cross term (the Gaussian-windowed product image) is pair-specific.
func (sc *Scorer) ssimPair(ref, dist *media.Frame) float64 {
	mustMatch(ref, dist)
	if ref.W < ssimWindow || ref.H < ssimWindow {
		// Degenerate tiny frames: fall back to a global SSIM.
		return globalSSIM(ref, dist)
	}
	sx := sc.ssimStats(ref)
	sy := sc.ssimStats(dist)
	xy := mul(sc.pool, sx.base, sy.base)
	sxy := convValid(sc.pool, xy, sc.kssim)
	sc.pool.put(xy)

	c1 := (ssimK1 * ssimL) * (ssimK1 * ssimL)
	c2 := (ssimK2 * ssimL) * (ssimK2 * ssimL)
	mux, muy := sx.ssimMu.v, sy.ssimMu.v
	sxxv, syyv := sx.ssimSxx.v, sy.ssimSxx.v
	var sum float64
	for i := range mux {
		mx, my := mux[i], muy[i]
		vx := sxxv[i] - mx*mx
		vy := syyv[i] - my*my
		cxy := sxy.v[i] - mx*my
		sum += ((2*mx*my + c1) * (2*cxy + c2)) /
			((mx*mx + my*my + c1) * (vx + vy + c2))
	}
	sc.pool.put(sxy)
	return sum / float64(len(mux))
}

func globalSSIM(ref, dist *media.Frame) float64 {
	var mx, my float64
	n := float64(len(ref.Pix))
	for i := range ref.Pix {
		mx += float64(ref.Pix[i])
		my += float64(dist.Pix[i])
	}
	mx /= n
	my /= n
	var vx, vy, cxy float64
	for i := range ref.Pix {
		dx := float64(ref.Pix[i]) - mx
		dy := float64(dist.Pix[i]) - my
		vx += dx * dx
		vy += dy * dy
		cxy += dx * dy
	}
	vx /= n
	vy /= n
	cxy /= n
	c1 := (ssimK1 * ssimL) * (ssimK1 * ssimL)
	c2 := (ssimK2 * ssimL) * (ssimK2 * ssimL)
	return ((2*mx*my + c1) * (2*cxy + c2)) / ((mx*mx + my*my + c1) * (vx + vy + c2))
}

// vifSigmaNsq is the visual noise variance of the VIF model.
const vifSigmaNsq = 2.0

// VIFP returns the pixel-domain Visual Information Fidelity between two
// frames, following the published four-scale pixel-domain approximation.
// 1 means identical; heavier distortion drives it toward 0.
func VIFP(ref, dist *media.Frame) float64 {
	return NewScorer().vifPair(ref, dist)
}

// vifPair is VIFp against the scorer's cached pyramids. Per pair only
// the cross term and the information-sum loop remain.
func (sc *Scorer) vifPair(ref, dist *media.Frame) float64 {
	mustMatch(ref, dist)
	sx := sc.vifStats(ref)
	sy := sc.vifStats(dist)
	scales := sx.vifScales
	if sy.vifScales < scales {
		// Pyramid depth depends only on geometry, which mustMatch pinned
		// equal — but stay defensive.
		scales = sy.vifScales
	}
	var num, den float64
	for s := 0; s < scales; s++ {
		vx0, vy0 := &sx.vif[s], &sy.vif[s]
		xy := mul(sc.pool, vx0.x, vy0.x)
		sxy := convValid(sc.pool, xy, sc.kvif[s])
		sc.pool.put(xy)
		mux, muy := vx0.mu.v, vy0.mu.v
		sxxv, syyv := vx0.sxx.v, vy0.sxx.v
		// The denominator term is a pure function of the reference side,
		// so its per-element logs are cached on sx and summed here in the
		// same element order the inline computation used — identical
		// values added in identical order, hence identical bits.
		dlv := sc.denLogFor(sx, s).v
		const eps = 1e-10
		for i := range mux {
			mx, my := mux[i], muy[i]
			vx := sxxv[i] - mx*mx
			vy := syyv[i] - my*my
			cxy := sxy.v[i] - mx*my
			if vx < 0 {
				vx = 0
			}
			if vy < 0 {
				vy = 0
			}
			g := cxy / (vx + eps)
			svsq := vy - g*cxy
			if vx < eps {
				g = 0
				svsq = vy
			}
			if vy < eps {
				g = 0
				svsq = 0
			}
			if g < 0 {
				svsq = vy
				g = 0
			}
			if svsq < eps {
				svsq = eps
			}
			num += math.Log10(1 + g*g*vx/(svsq+vifSigmaNsq))
			den += dlv[i]
		}
		sc.pool.put(sxy)
	}
	if den == 0 {
		return 1
	}
	v := num / den
	if v > 1 {
		v = 1
	}
	if v < 0 {
		v = 0
	}
	return v
}

// VideoResult aggregates the three metrics over a frame sequence.
type VideoResult struct {
	PSNR, SSIM, VIFP float64
	Frames           int
	// FreezeRatio is the fraction of display slots that repeated the
	// previous slot's frame or showed nothing. (The first appearance of a
	// stale frame is indistinguishable from fresh content without ground
	// truth, so a permanent freeze over n slots scores (n-1)/n.)
	FreezeRatio float64
}

func (r VideoResult) String() string {
	return fmt.Sprintf("PSNR=%.2fdB SSIM=%.4f VIFp=%.4f (n=%d, freeze=%.1f%%)",
		r.PSNR, r.SSIM, r.VIFP, r.Frames, r.FreezeRatio*100)
}

// CompareVideo scores a displayed sequence against its reference. Both
// slices index display slots; displayed[i] == nil means nothing was ever
// shown for that slot (scored as a black frame, matching how recordings
// of a dead stream score). stride samples every stride-th slot for speed
// (1 = every frame).
//
// One-shot convenience over a fresh Scorer; studies that score many
// recordings of the same session should reuse one Scorer so repeated
// (reference, shown) pairs — frozen slots, receivers sharing a decoded
// frame — hit its caches.
func CompareVideo(ref, displayed []*media.Frame, stride int) VideoResult {
	return NewScorer().CompareVideo(ref, displayed, stride)
}

// CompareVideo scores a displayed sequence against its reference through
// the scorer's caches. See the package-level CompareVideo for the slot
// conventions.
func (sc *Scorer) CompareVideo(ref, displayed []*media.Frame, stride int) VideoResult {
	if len(ref) != len(displayed) {
		panic(fmt.Sprintf("qoe: sequence lengths differ: %d vs %d", len(ref), len(displayed)))
	}
	if stride < 1 {
		stride = 1
	}
	var res VideoResult
	freezes := 0
	scored := 0
	var prevShown *media.Frame
	for i := 0; i < len(ref); i++ {
		shown := displayed[i]
		if shown == prevShown || shown == nil {
			freezes++
		}
		prevShown = shown
		if i%stride != 0 {
			continue
		}
		if shown == nil {
			shown = sc.blackFor(ref[i].W, ref[i].H)
		}
		ps := sc.scorePair(ref[i], shown)
		res.PSNR += ps.psnr
		res.SSIM += ps.ssim
		res.VIFP += ps.vifp
		scored++
	}
	if scored > 0 {
		res.PSNR /= float64(scored)
		res.SSIM /= float64(scored)
		res.VIFP /= float64(scored)
	}
	res.Frames = scored
	if len(ref) > 0 {
		res.FreezeRatio = float64(freezes) / float64(len(ref))
	}
	return res
}

func mustMatch(a, b *media.Frame) {
	if a.W != b.W || a.H != b.H {
		panic(fmt.Sprintf("qoe: frame geometry mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H))
	}
}
