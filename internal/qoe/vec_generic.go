//go:build !amd64

package qoe

// Portable forms of the convolution inner loops. The amd64 SIMD kernels
// (vec_amd64.s) compute exactly these recurrences with separate multiply
// and add roundings, so every architecture produces identical bytes.

// scaleVec writes dst[i] = src[i] * k for every i in dst.
// len(src) must be >= len(dst).
func scaleVec(dst, src []float64, k float64) {
	src = src[:len(dst)]
	for i := range dst {
		dst[i] = src[i] * k
	}
}

// axpyVec accumulates dst[i] += src[i] * k for every i in dst.
// len(src) must be >= len(dst).
func axpyVec(dst, src []float64, k float64) {
	src = src[:len(dst)]
	for i := range dst {
		dst[i] += src[i] * k
	}
}

// convTaps writes dst[j] = sum over i of src[j+i*stride]*k[i], with the
// products added in ascending tap order — exactly scaleVec for tap 0
// followed by axpyVec for the remaining taps.
// len(src) must be >= len(dst)+(len(k)-1)*stride.
func convTaps(dst, src, k []float64, stride int) {
	if len(k) == 0 {
		return
	}
	scaleVec(dst, src, k[0])
	for i := 1; i < len(k); i++ {
		axpyVec(dst, src[i*stride:], k[i])
	}
}

// mulVec writes dst[i] = a[i] * b[i] for every i in dst.
// len(a) and len(b) must be >= len(dst).
func mulVec(dst, a, b []float64) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}
