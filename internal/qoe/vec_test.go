package qoe

import (
	"math"
	"math/rand"
	"testing"
)

// refScale/refAxpy are the scalar recurrences the SIMD kernels must
// reproduce bit for bit.
func refScale(dst, src []float64, k float64) {
	for i := range dst {
		dst[i] = src[i] * k
	}
}

func refAxpy(dst, src []float64, k float64) {
	for i := range dst {
		dst[i] += src[i] * k
	}
}

// TestVecKernelsBitIdentical drives scaleVec/axpyVec across every
// length that exercises the wide blocks, the narrow blocks and the
// scalar tails, and demands exact bit equality with the scalar loops —
// including for values whose products round: bit identity, not
// tolerance, is the simulator's contract.
func TestVecKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 0; n <= 67; n++ {
		src := make([]float64, n+3) // longer than dst, as convValid passes it
		for i := range src {
			src[i] = (rng.Float64() - 0.5) * 513.7
		}
		base := make([]float64, n)
		for i := range base {
			base[i] = (rng.Float64() - 0.5) * 100003.1
		}
		for _, k := range []float64{0, 1, -1, 0.1234567891234, math.Pi, -1e-17, 3e15} {
			want := append([]float64(nil), base...)
			refScale(want, src, k)
			got := append([]float64(nil), base...)
			scaleVec(got, src, k)
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("scaleVec n=%d k=%g i=%d: got %x want %x", n, k, i,
						math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}

			want = append(want[:0:0], base...)
			refAxpy(want, src, k)
			got = append(got[:0:0], base...)
			axpyVec(got, src, k)
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("axpyVec n=%d k=%g i=%d: got %x want %x", n, k, i,
						math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		}

		bv := make([]float64, n+1)
		for i := range bv {
			bv[i] = (rng.Float64() - 0.5) * 77.3
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = src[i] * bv[i]
		}
		got := make([]float64, n)
		mulVec(got, src, bv)
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("mulVec n=%d i=%d: got %x want %x", n, i,
					math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	}
	testConvTaps(t)
}

// testConvTaps checks the fused multi-tap kernel against the pass-based
// scale-then-axpy reference, which is itself pinned to the scalar loops
// above — covering every kernel length convValid uses (3..17), strided
// vertical-pass access, and dst lengths spanning all block widths.
func testConvTaps(t *testing.T) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	lengths := []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 33, 64, 69}
	for _, taps := range []int{1, 2, 3, 5, 9, 11, 17} {
		k := make([]float64, taps)
		for i := range k {
			k[i] = (rng.Float64() - 0.5) * 2.3
		}
		for _, stride := range []int{1, 7, 33} {
			for _, n := range lengths {
				src := make([]float64, n+(taps-1)*stride+2)
				for i := range src {
					src[i] = (rng.Float64() - 0.5) * 513.7
				}
				want := make([]float64, n)
				refScale(want, src, k[0])
				for i := 1; i < taps; i++ {
					refAxpy(want, src[i*stride:], k[i])
				}
				got := make([]float64, n)
				convTaps(got, src, k, stride)
				for i := range want {
					if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
						t.Fatalf("convTaps taps=%d stride=%d n=%d i=%d: got %x want %x",
							taps, stride, n, i,
							math.Float64bits(got[i]), math.Float64bits(want[i]))
					}
				}
			}
		}
	}
}
