//go:build amd64

#include "textflag.h"

// Elementwise kernels for the separable convolution. Multiply and add
// are always separate instructions (no FMA): each dst element sees
// round(src*k) then one rounded add, exactly as the scalar Go loops
// compute it, so results are bit-identical at any vector width.

// func scaleAVX2(dst, src []float64, k float64)
TEXT ·scaleAVX2(SB), NOSPLIT, $0-56
	MOVQ         dst_base+0(FP), DI
	MOVQ         dst_len+8(FP), CX
	MOVQ         src_base+24(FP), SI
	VBROADCASTSD k+48(FP), Y0
	XORQ         AX, AX

scale_avx2_blk16:
	LEAQ    16(AX), DX
	CMPQ    DX, CX
	JGT     scale_avx2_blk4
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y2
	VMOVUPD 64(SI)(AX*8), Y3
	VMOVUPD 96(SI)(AX*8), Y4
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VMULPD  Y0, Y3, Y3
	VMULPD  Y0, Y4, Y4
	VMOVUPD Y1, (DI)(AX*8)
	VMOVUPD Y2, 32(DI)(AX*8)
	VMOVUPD Y3, 64(DI)(AX*8)
	VMOVUPD Y4, 96(DI)(AX*8)
	MOVQ    DX, AX
	JMP     scale_avx2_blk16

scale_avx2_blk4:
	LEAQ    4(AX), DX
	CMPQ    DX, CX
	JGT     scale_avx2_tail
	VMOVUPD (SI)(AX*8), Y1
	VMULPD  Y0, Y1, Y1
	VMOVUPD Y1, (DI)(AX*8)
	MOVQ    DX, AX
	JMP     scale_avx2_blk4

scale_avx2_tail:
	CMPQ   AX, CX
	JGE    scale_avx2_done
	VMOVSD (SI)(AX*8), X1
	VMULSD X0, X1, X1
	VMOVSD X1, (DI)(AX*8)
	INCQ   AX
	JMP    scale_avx2_tail

scale_avx2_done:
	VZEROUPPER
	RET

// func axpyAVX2(dst, src []float64, k float64)
TEXT ·axpyAVX2(SB), NOSPLIT, $0-56
	MOVQ         dst_base+0(FP), DI
	MOVQ         dst_len+8(FP), CX
	MOVQ         src_base+24(FP), SI
	VBROADCASTSD k+48(FP), Y0
	XORQ         AX, AX

axpy_avx2_blk16:
	LEAQ    16(AX), DX
	CMPQ    DX, CX
	JGT     axpy_avx2_blk4
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y2
	VMOVUPD 64(SI)(AX*8), Y3
	VMOVUPD 96(SI)(AX*8), Y4
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VMULPD  Y0, Y3, Y3
	VMULPD  Y0, Y4, Y4
	VADDPD  (DI)(AX*8), Y1, Y1
	VADDPD  32(DI)(AX*8), Y2, Y2
	VADDPD  64(DI)(AX*8), Y3, Y3
	VADDPD  96(DI)(AX*8), Y4, Y4
	VMOVUPD Y1, (DI)(AX*8)
	VMOVUPD Y2, 32(DI)(AX*8)
	VMOVUPD Y3, 64(DI)(AX*8)
	VMOVUPD Y4, 96(DI)(AX*8)
	MOVQ    DX, AX
	JMP     axpy_avx2_blk16

axpy_avx2_blk4:
	LEAQ    4(AX), DX
	CMPQ    DX, CX
	JGT     axpy_avx2_tail
	VMOVUPD (SI)(AX*8), Y1
	VMULPD  Y0, Y1, Y1
	VADDPD  (DI)(AX*8), Y1, Y1
	VMOVUPD Y1, (DI)(AX*8)
	MOVQ    DX, AX
	JMP     axpy_avx2_blk4

axpy_avx2_tail:
	CMPQ   AX, CX
	JGE    axpy_avx2_done
	VMOVSD (SI)(AX*8), X1
	VMULSD X0, X1, X1
	VADDSD (DI)(AX*8), X1, X1
	VMOVSD X1, (DI)(AX*8)
	INCQ   AX
	JMP    axpy_avx2_tail

axpy_avx2_done:
	VZEROUPPER
	RET

// func scaleSSE2(dst, src []float64, k float64)
TEXT ·scaleSSE2(SB), NOSPLIT, $0-56
	MOVQ     dst_base+0(FP), DI
	MOVQ     dst_len+8(FP), CX
	MOVQ     src_base+24(FP), SI
	MOVSD    k+48(FP), X0
	UNPCKLPD X0, X0
	XORQ     AX, AX

scale_sse2_blk8:
	LEAQ   8(AX), DX
	CMPQ   DX, CX
	JGT    scale_sse2_tail
	MOVUPD (SI)(AX*8), X1
	MOVUPD 16(SI)(AX*8), X2
	MOVUPD 32(SI)(AX*8), X3
	MOVUPD 48(SI)(AX*8), X4
	MULPD  X0, X1
	MULPD  X0, X2
	MULPD  X0, X3
	MULPD  X0, X4
	MOVUPD X1, (DI)(AX*8)
	MOVUPD X2, 16(DI)(AX*8)
	MOVUPD X3, 32(DI)(AX*8)
	MOVUPD X4, 48(DI)(AX*8)
	MOVQ   DX, AX
	JMP    scale_sse2_blk8

scale_sse2_tail:
	CMPQ  AX, CX
	JGE   scale_sse2_done
	MOVSD (SI)(AX*8), X1
	MULSD X0, X1
	MOVSD X1, (DI)(AX*8)
	INCQ  AX
	JMP   scale_sse2_tail

scale_sse2_done:
	RET

// func axpySSE2(dst, src []float64, k float64)
TEXT ·axpySSE2(SB), NOSPLIT, $0-56
	MOVQ     dst_base+0(FP), DI
	MOVQ     dst_len+8(FP), CX
	MOVQ     src_base+24(FP), SI
	MOVSD    k+48(FP), X0
	UNPCKLPD X0, X0
	XORQ     AX, AX

axpy_sse2_blk8:
	LEAQ   8(AX), DX
	CMPQ   DX, CX
	JGT    axpy_sse2_tail
	MOVUPD (SI)(AX*8), X1
	MOVUPD 16(SI)(AX*8), X2
	MOVUPD 32(SI)(AX*8), X3
	MOVUPD 48(SI)(AX*8), X4
	MULPD  X0, X1
	MULPD  X0, X2
	MULPD  X0, X3
	MULPD  X0, X4
	MOVUPD (DI)(AX*8), X5
	ADDPD  X5, X1
	MOVUPD 16(DI)(AX*8), X5
	ADDPD  X5, X2
	MOVUPD 32(DI)(AX*8), X5
	ADDPD  X5, X3
	MOVUPD 48(DI)(AX*8), X5
	ADDPD  X5, X4
	MOVUPD X1, (DI)(AX*8)
	MOVUPD X2, 16(DI)(AX*8)
	MOVUPD X3, 32(DI)(AX*8)
	MOVUPD X4, 48(DI)(AX*8)
	MOVQ   DX, AX
	JMP    axpy_sse2_blk8

axpy_sse2_tail:
	CMPQ  AX, CX
	JGE   axpy_sse2_done
	MOVSD (SI)(AX*8), X1
	MULSD X0, X1
	MOVSD (DI)(AX*8), X5
	ADDSD X5, X1
	MOVSD X1, (DI)(AX*8)
	INCQ  AX
	JMP   axpy_sse2_tail

axpy_sse2_done:
	RET

// func convTapsAVX2(dst, src, k []float64, stride int)
//
// dst[j] = sum_i src[j+i*stride]*k[i], accumulated in ascending tap
// order in registers: per element the rounding sequence is identical to
// a scaleVec pass for tap 0 plus one axpyVec pass per later tap, but
// dst is written exactly once.
TEXT ·convTapsAVX2(SB), NOSPLIT, $0-80
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	MOVQ k_base+48(FP), R8
	MOVQ k_len+56(FP), R12
	MOVQ stride+72(FP), R10
	SHLQ $3, R10
	XORQ AX, AX

ct_avx2_blk16:
	LEAQ         16(AX), DX
	CMPQ         DX, CX
	JGT          ct_avx2_blk4
	LEAQ         (SI)(AX*8), R11
	VBROADCASTSD (R8), Y0
	VMOVUPD      (R11), Y1
	VMOVUPD      32(R11), Y2
	VMOVUPD      64(R11), Y3
	VMOVUPD      96(R11), Y4
	VMULPD       Y0, Y1, Y1
	VMULPD       Y0, Y2, Y2
	VMULPD       Y0, Y3, Y3
	VMULPD       Y0, Y4, Y4
	MOVQ         $1, R9

ct_avx2_blk16_tap:
	CMPQ         R9, R12
	JGE          ct_avx2_blk16_store
	ADDQ         R10, R11
	VBROADCASTSD (R8)(R9*8), Y0
	VMOVUPD      (R11), Y5
	VMULPD       Y0, Y5, Y5
	VADDPD       Y5, Y1, Y1
	VMOVUPD      32(R11), Y5
	VMULPD       Y0, Y5, Y5
	VADDPD       Y5, Y2, Y2
	VMOVUPD      64(R11), Y5
	VMULPD       Y0, Y5, Y5
	VADDPD       Y5, Y3, Y3
	VMOVUPD      96(R11), Y5
	VMULPD       Y0, Y5, Y5
	VADDPD       Y5, Y4, Y4
	INCQ         R9
	JMP          ct_avx2_blk16_tap

ct_avx2_blk16_store:
	VMOVUPD Y1, (DI)(AX*8)
	VMOVUPD Y2, 32(DI)(AX*8)
	VMOVUPD Y3, 64(DI)(AX*8)
	VMOVUPD Y4, 96(DI)(AX*8)
	MOVQ    DX, AX
	JMP     ct_avx2_blk16

ct_avx2_blk4:
	LEAQ         4(AX), DX
	CMPQ         DX, CX
	JGT          ct_avx2_tail
	LEAQ         (SI)(AX*8), R11
	VBROADCASTSD (R8), Y0
	VMOVUPD      (R11), Y1
	VMULPD       Y0, Y1, Y1
	MOVQ         $1, R9

ct_avx2_blk4_tap:
	CMPQ         R9, R12
	JGE          ct_avx2_blk4_store
	ADDQ         R10, R11
	VBROADCASTSD (R8)(R9*8), Y0
	VMOVUPD      (R11), Y5
	VMULPD       Y0, Y5, Y5
	VADDPD       Y5, Y1, Y1
	INCQ         R9
	JMP          ct_avx2_blk4_tap

ct_avx2_blk4_store:
	VMOVUPD Y1, (DI)(AX*8)
	MOVQ    DX, AX
	JMP     ct_avx2_blk4

ct_avx2_tail:
	CMPQ   AX, CX
	JGE    ct_avx2_done
	LEAQ   (SI)(AX*8), R11
	VMOVSD (R8), X0
	VMOVSD (R11), X1
	VMULSD X0, X1, X1
	MOVQ   $1, R9

ct_avx2_tail_tap:
	CMPQ   R9, R12
	JGE    ct_avx2_tail_store
	ADDQ   R10, R11
	VMOVSD (R8)(R9*8), X0
	VMOVSD (R11), X5
	VMULSD X0, X5, X5
	VADDSD X5, X1, X1
	INCQ   R9
	JMP    ct_avx2_tail_tap

ct_avx2_tail_store:
	VMOVSD X1, (DI)(AX*8)
	INCQ   AX
	JMP    ct_avx2_tail

ct_avx2_done:
	VZEROUPPER
	RET

// func convTapsSSE2(dst, src, k []float64, stride int)
TEXT ·convTapsSSE2(SB), NOSPLIT, $0-80
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	MOVQ k_base+48(FP), R8
	MOVQ k_len+56(FP), R12
	MOVQ stride+72(FP), R10
	SHLQ $3, R10
	XORQ AX, AX

ct_sse2_blk8:
	LEAQ     8(AX), DX
	CMPQ     DX, CX
	JGT      ct_sse2_tail
	LEAQ     (SI)(AX*8), R11
	MOVSD    (R8), X0
	UNPCKLPD X0, X0
	MOVUPD   (R11), X1
	MOVUPD   16(R11), X2
	MOVUPD   32(R11), X3
	MOVUPD   48(R11), X4
	MULPD    X0, X1
	MULPD    X0, X2
	MULPD    X0, X3
	MULPD    X0, X4
	MOVQ     $1, R9

ct_sse2_blk8_tap:
	CMPQ     R9, R12
	JGE      ct_sse2_blk8_store
	ADDQ     R10, R11
	MOVSD    (R8)(R9*8), X0
	UNPCKLPD X0, X0
	MOVUPD   (R11), X5
	MULPD    X0, X5
	ADDPD    X5, X1
	MOVUPD   16(R11), X5
	MULPD    X0, X5
	ADDPD    X5, X2
	MOVUPD   32(R11), X5
	MULPD    X0, X5
	ADDPD    X5, X3
	MOVUPD   48(R11), X5
	MULPD    X0, X5
	ADDPD    X5, X4
	INCQ     R9
	JMP      ct_sse2_blk8_tap

ct_sse2_blk8_store:
	MOVUPD X1, (DI)(AX*8)
	MOVUPD X2, 16(DI)(AX*8)
	MOVUPD X3, 32(DI)(AX*8)
	MOVUPD X4, 48(DI)(AX*8)
	MOVQ   DX, AX
	JMP    ct_sse2_blk8

ct_sse2_tail:
	CMPQ  AX, CX
	JGE   ct_sse2_done
	LEAQ  (SI)(AX*8), R11
	MOVSD (R8), X0
	MOVSD (R11), X1
	MULSD X0, X1
	MOVQ  $1, R9

ct_sse2_tail_tap:
	CMPQ  R9, R12
	JGE   ct_sse2_tail_store
	ADDQ  R10, R11
	MOVSD (R8)(R9*8), X0
	MOVSD (R11), X5
	MULSD X0, X5
	ADDSD X5, X1
	INCQ  R9
	JMP   ct_sse2_tail_tap

ct_sse2_tail_store:
	MOVSD X1, (DI)(AX*8)
	INCQ  AX
	JMP   ct_sse2_tail

ct_sse2_done:
	RET

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL  eaxIn+0(FP), AX
	MOVL  ecxIn+4(FP), CX
	CPUID
	MOVL  AX, eax+8(FP)
	MOVL  BX, ebx+12(FP)
	MOVL  CX, ecx+16(FP)
	MOVL  DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL    CX, CX
	XGETBV
	MOVL    AX, eax+0(FP)
	MOVL    DX, edx+4(FP)
	RET

// func mulVecAVX2(dst, a, b []float64)
TEXT ·mulVecAVX2(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), BX
	XORQ AX, AX

mul_avx2_blk16:
	LEAQ    16(AX), DX
	CMPQ    DX, CX
	JGT     mul_avx2_blk4
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y2
	VMOVUPD 64(SI)(AX*8), Y3
	VMOVUPD 96(SI)(AX*8), Y4
	VMULPD  (BX)(AX*8), Y1, Y1
	VMULPD  32(BX)(AX*8), Y2, Y2
	VMULPD  64(BX)(AX*8), Y3, Y3
	VMULPD  96(BX)(AX*8), Y4, Y4
	VMOVUPD Y1, (DI)(AX*8)
	VMOVUPD Y2, 32(DI)(AX*8)
	VMOVUPD Y3, 64(DI)(AX*8)
	VMOVUPD Y4, 96(DI)(AX*8)
	MOVQ    DX, AX
	JMP     mul_avx2_blk16

mul_avx2_blk4:
	LEAQ    4(AX), DX
	CMPQ    DX, CX
	JGT     mul_avx2_tail
	VMOVUPD (SI)(AX*8), Y1
	VMULPD  (BX)(AX*8), Y1, Y1
	VMOVUPD Y1, (DI)(AX*8)
	MOVQ    DX, AX
	JMP     mul_avx2_blk4

mul_avx2_tail:
	CMPQ   AX, CX
	JGE    mul_avx2_done
	VMOVSD (SI)(AX*8), X1
	VMULSD (BX)(AX*8), X1, X1
	VMOVSD X1, (DI)(AX*8)
	INCQ   AX
	JMP    mul_avx2_tail

mul_avx2_done:
	VZEROUPPER
	RET

// func mulVecSSE2(dst, a, b []float64)
TEXT ·mulVecSSE2(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), BX
	XORQ AX, AX

mul_sse2_blk8:
	LEAQ   8(AX), DX
	CMPQ   DX, CX
	JGT    mul_sse2_tail
	MOVUPD (SI)(AX*8), X1
	MOVUPD 16(SI)(AX*8), X2
	MOVUPD 32(SI)(AX*8), X3
	MOVUPD 48(SI)(AX*8), X4
	MOVUPD (BX)(AX*8), X5
	MULPD  X5, X1
	MOVUPD 16(BX)(AX*8), X5
	MULPD  X5, X2
	MOVUPD 32(BX)(AX*8), X5
	MULPD  X5, X3
	MOVUPD 48(BX)(AX*8), X5
	MULPD  X5, X4
	MOVUPD X1, (DI)(AX*8)
	MOVUPD X2, 16(DI)(AX*8)
	MOVUPD X3, 32(DI)(AX*8)
	MOVUPD X4, 48(DI)(AX*8)
	MOVQ   DX, AX
	JMP    mul_sse2_blk8

mul_sse2_tail:
	CMPQ  AX, CX
	JGE   mul_sse2_done
	MOVSD (SI)(AX*8), X1
	MOVSD (BX)(AX*8), X5
	MULSD X5, X1
	MOVSD X1, (DI)(AX*8)
	INCQ  AX
	JMP   mul_sse2_tail

mul_sse2_done:
	RET
