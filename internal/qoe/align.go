package qoe

import (
	"math"

	"github.com/vcabench/vcabench/internal/media"
)

// AlignFrames finds the shift (in frames) of rec relative to ref that
// maximizes mean SSIM, searching shifts in [-maxShift, maxShift]. A
// positive result means rec starts later than ref by that many frames.
// This is the paper's recording-trim step ("synchronize the start/end
// time ... in a way that per-frame SSIM similarity is maximized").
func AlignFrames(ref, rec []*media.Frame, maxShift int) int {
	if len(ref) == 0 || len(rec) == 0 {
		return 0
	}
	if maxShift < 0 {
		maxShift = -maxShift
	}
	best := 0
	bestScore := math.Inf(-1)
	for shift := -maxShift; shift <= maxShift; shift++ {
		score := alignScore(ref, rec, shift)
		if score > bestScore {
			bestScore = score
			best = shift
		}
	}
	return best
}

// alignScore samples up to 12 overlapping frame pairs at the given shift.
func alignScore(ref, rec []*media.Frame, shift int) float64 {
	lo := 0
	if shift < 0 {
		lo = -shift
	}
	hi := len(ref)
	if n := len(rec) - shift; n < hi {
		hi = n
	}
	if hi-lo <= 0 {
		return math.Inf(-1)
	}
	step := (hi - lo + 11) / 12
	if step < 1 {
		step = 1
	}
	var sum float64
	n := 0
	for i := lo; i < hi; i += step {
		a, b := ref[i], rec[i+shift]
		if a == nil || b == nil {
			continue
		}
		sum += SSIM(a, b)
		n++
	}
	if n == 0 {
		return math.Inf(-1)
	}
	return sum / float64(n)
}

// AlignAudio returns the lag (in samples) of rec relative to ref that
// maximizes normalized cross-correlation of their energy envelopes — the
// audio-offset-finder step of the paper's audio pipeline. Positive lag
// means rec is delayed.
func AlignAudio(ref, rec *media.AudioClip, maxLagSamples int) int {
	if len(ref.Samples) == 0 || len(rec.Samples) == 0 {
		return 0
	}
	// Envelope at 100 Hz: mean |x| per hop.
	hop := ref.Rate / 100
	if hop < 1 {
		hop = 1
	}
	er := envelope(ref.Samples, hop)
	ed := envelope(rec.Samples, hop)
	maxLagHops := maxLagSamples / hop
	if maxLagHops < 1 {
		maxLagHops = 1
	}
	best, bestScore := 0, math.Inf(-1)
	for lag := -maxLagHops; lag <= maxLagHops; lag++ {
		s := xcorr(er, ed, lag)
		if s > bestScore {
			bestScore = s
			best = lag
		}
	}
	return best * hop
}

func envelope(x []float64, hop int) []float64 {
	n := len(x) / hop
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := i * hop; j < (i+1)*hop; j++ {
			s += math.Abs(x[j])
		}
		out[i] = s / float64(hop)
	}
	return out
}

// xcorr computes the normalized correlation of a and b at the given lag
// of b relative to a.
func xcorr(a, b []float64, lag int) float64 {
	lo := 0
	if lag < 0 {
		lo = -lag
	}
	hi := len(a)
	if n := len(b) - lag; n < hi {
		hi = n
	}
	if hi-lo < 4 {
		return math.Inf(-1)
	}
	var sa, sb, saa, sbb, sab float64
	n := float64(hi - lo)
	for i := lo; i < hi; i++ {
		x, y := a[i], b[i+lag]
		sa += x
		sb += y
		saa += x * x
		sbb += y * y
		sab += x * y
	}
	cov := sab/n - sa/n*sb/n
	va := saa/n - sa/n*sa/n
	vb := sbb/n - sb/n*sb/n
	if va <= 0 || vb <= 0 {
		return math.Inf(-1)
	}
	return cov / math.Sqrt(va*vb)
}
