package qoe

import (
	"math"

	"github.com/vcabench/vcabench/internal/media"
)

// statsBudgetFloats bounds the float64s a Scorer may retain in its
// per-image stat cache (~48 MB). Past the budget the oldest entries are
// evicted FIFO — eviction order is insertion order, never map order, so
// a Scorer's behaviour is deterministic.
const statsBudgetFloats = 6 << 20

// Scorer computes the per-frame video metrics with memoization across a
// study. Two layers make repeated scoring cheap without changing a
// single output bit:
//
//   - a pair cache keyed by frame identity: decoders hand every receiver
//     the same reconstructed-frame pointer and repeat it across frozen
//     display slots, so one (ref, shown) pair is typically scored many
//     times per cell — and metric evaluation is a pure function of the
//     two frames;
//   - a per-image stat cache (float image, Gaussian means, raw second
//     moments, the VIF pyramid): the one-image half of SSIM/VIFp, reused
//     when the same frame participates in several distinct pairs.
//
// Frames must not be mutated after being scored (sources and codecs
// never do). A Scorer is single-goroutine, like the testbed that owns
// it; independent forks get independent Scorers.
type Scorer struct {
	pool   *fimgPool
	pairs  map[pairKey]pairScores
	stats  map[*media.Frame]*imgStats
	order  []*media.Frame // FIFO insertion order for eviction
	head   int            // first live index in order
	floats int            // retained floats across stats
	blacks map[[2]int]*media.Frame
	kssim  []float64
	kvif   [4][]float64
}

type pairKey struct{ ref, dist *media.Frame }

type pairScores struct{ psnr, ssim, vifp float64 }

// vifScale holds one VIF pyramid level: the scaled image and its
// Gaussian mean / raw second moment under that scale's kernel.
type vifScale struct{ x, mu, sxx *fimg }

type imgStats struct {
	base      *fimg // full-res float image; also the VIF scale-1 input
	ssimMu    *fimg
	ssimSxx   *fimg
	vif       [4]vifScale
	vifScales int
	vifDone   bool
	// denLog caches, per scale, the elementwise reference-side VIF
	// denominator log10(1 + vx/sigma^2) — a pure function of this
	// image's (mu, sxx), built lazily the first time the image is the
	// reference of a pair and reused for every later pair sharing it.
	denLog [4]*fimg
	floats int
}

// NewScorer creates an empty scorer. Kernels are fixed by the metric
// definitions, so they are built once here.
func NewScorer() *Scorer {
	sc := &Scorer{
		pool:   newFimgPool(),
		pairs:  make(map[pairKey]pairScores),
		stats:  make(map[*media.Frame]*imgStats),
		blacks: make(map[[2]int]*media.Frame),
		kssim:  gaussianKernel(ssimWindow, ssimSigma),
	}
	for scale := 1; scale <= 4; scale++ {
		n := 1<<(5-scale) + 1 // 17, 9, 5, 3
		sc.kvif[scale-1] = gaussianKernel(n, float64(n)/5)
	}
	return sc
}

// scorePair returns the three metrics for one (ref, shown) pair, from
// the cache when the pair was scored before.
func (sc *Scorer) scorePair(ref, shown *media.Frame) pairScores {
	key := pairKey{ref, shown}
	if ps, ok := sc.pairs[key]; ok {
		return ps
	}
	ps := pairScores{
		psnr: PSNR(ref, shown),
		ssim: sc.ssimPair(ref, shown),
		vifp: sc.vifPair(ref, shown),
	}
	sc.pairs[key] = ps
	// Trim only between pairs: an eviction mid-pair could recycle stat
	// buffers the pair is still reading.
	sc.trim()
	return ps
}

// blackFor returns the all-black stand-in frame for never-shown slots.
func (sc *Scorer) blackFor(w, h int) *media.Frame {
	key := [2]int{w, h}
	if f, ok := sc.blacks[key]; ok {
		return f
	}
	f := media.NewFrame(w, h)
	sc.blacks[key] = f
	return f
}

func (sc *Scorer) statsEntry(f *media.Frame) *imgStats {
	if st, ok := sc.stats[f]; ok {
		return st
	}
	st := &imgStats{}
	sc.stats[f] = st
	sc.order = append(sc.order, f)
	return st
}

// retain accounts a cached buffer against the scorer's budget.
func (sc *Scorer) retain(st *imgStats, im *fimg) *fimg {
	st.floats += len(im.v)
	sc.floats += len(im.v)
	return im
}

// baseOf returns (building if needed) the frame's full-res float image.
func (sc *Scorer) baseOf(st *imgStats, f *media.Frame) *fimg {
	if st.base == nil {
		st.base = sc.retain(st, fromFrame(sc.pool, f))
	}
	return st.base
}

// ssimStats builds the one-image half of SSIM: Gaussian mean and raw
// second moment under the 11x11 window.
func (sc *Scorer) ssimStats(f *media.Frame) *imgStats {
	st := sc.statsEntry(f)
	if st.ssimMu == nil {
		x := sc.baseOf(st, f)
		st.ssimMu = sc.retain(st, convValid(sc.pool, x, sc.kssim))
		xx := mul(sc.pool, x, x)
		st.ssimSxx = sc.retain(st, convValid(sc.pool, xx, sc.kssim))
		sc.pool.put(xx)
	}
	return st
}

// vifStats builds the one-image half of VIFp: the four-scale pyramid
// with each level's mean and raw second moment.
func (sc *Scorer) vifStats(f *media.Frame) *imgStats {
	st := sc.statsEntry(f)
	if st.vifDone {
		return st
	}
	st.vifDone = true
	cur := sc.baseOf(st, f)
	for scale := 1; scale <= 4; scale++ {
		n := 1<<(5-scale) + 1
		k := sc.kvif[scale-1]
		if scale > 1 {
			c := convValid(sc.pool, cur, k)
			next := downsample2(sc.pool, c)
			sc.pool.put(c)
			cur = next
			if cur.w < n || cur.h < n {
				sc.pool.put(cur)
				break
			}
			sc.retain(st, cur)
		}
		xx := mul(sc.pool, cur, cur)
		st.vif[scale-1] = vifScale{
			x:   cur,
			mu:  sc.retain(st, convValid(sc.pool, cur, k)),
			sxx: sc.retain(st, convValid(sc.pool, xx, k)),
		}
		sc.pool.put(xx)
		st.vifScales = scale
	}
	return st
}

// denLogFor returns (building on first use) the cached reference-side
// VIF denominator logs for one pyramid scale of st:
// log10(1 + max(0, sxx-mu^2)/sigma^2), elementwise. The inputs are the
// already-cached scale stats, so the cached values are bit-identical to
// what vifPair's loop computed inline before.
func (sc *Scorer) denLogFor(st *imgStats, s int) *fimg {
	if st.denLog[s] == nil {
		v := &st.vif[s]
		dl := sc.pool.get(v.mu.w, v.mu.h)
		mu, sxx := v.mu.v, v.sxx.v
		for i := range dl.v {
			mx := mu[i]
			vx := sxx[i] - mx*mx
			if vx < 0 {
				vx = 0
			}
			dl.v[i] = math.Log10(1 + vx/vifSigmaNsq)
		}
		st.denLog[s] = sc.retain(st, dl)
	}
	return st.denLog[s]
}

// trim evicts the oldest per-image stats until the retained-float budget
// holds again. Called only between pair computations.
func (sc *Scorer) trim() {
	for sc.floats > statsBudgetFloats && sc.head < len(sc.order) {
		f := sc.order[sc.head]
		sc.order[sc.head] = nil
		sc.head++
		st := sc.stats[f]
		delete(sc.stats, f)
		sc.floats -= st.floats
		sc.releaseStats(st)
	}
	// Compact the FIFO once the dead prefix dominates.
	if sc.head > 64 && sc.head*2 > len(sc.order) {
		sc.order = append(sc.order[:0], sc.order[sc.head:]...)
		sc.head = 0
	}
}

func (sc *Scorer) releaseStats(st *imgStats) {
	sc.pool.put(st.base)
	sc.pool.put(st.ssimMu)
	sc.pool.put(st.ssimSxx)
	for s := 0; s < st.vifScales; s++ {
		if s > 0 { // vif[0].x is base, already released
			sc.pool.put(st.vif[s].x)
		}
		sc.pool.put(st.vif[s].mu)
		sc.pool.put(st.vif[s].sxx)
		sc.pool.put(st.denLog[s]) // put ignores nil
	}
}
