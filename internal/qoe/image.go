// Package qoe implements the objective quality metrics the paper computes
// with VQMT and ViSQOL: PSNR, SSIM (Wang et al. 2004) and pixel-domain
// VIF (Sheikh & Bovik 2006) for video, and a spectrogram-similarity
// MOS-LQO estimator for audio, plus the temporal alignment used to
// synchronize recordings with the injected originals.
package qoe

import (
	"math"

	"github.com/vcabench/vcabench/internal/media"
)

// fimg is a float64 grayscale image used by the metric pipelines.
type fimg struct {
	w, h int
	v    []float64
}

func newFimg(w, h int) *fimg { return &fimg{w: w, h: h, v: make([]float64, w*h)} }

func fromFrame(f *media.Frame) *fimg {
	im := newFimg(f.W, f.H)
	for i, p := range f.Pix {
		im.v[i] = float64(p)
	}
	return im
}

func (im *fimg) at(x, y int) float64 { return im.v[y*im.w+x] }

// gaussianKernel returns a normalized 1-D Gaussian of the given length.
func gaussianKernel(n int, sigma float64) []float64 {
	k := make([]float64, n)
	mid := float64(n-1) / 2
	var sum float64
	for i := range k {
		d := float64(i) - mid
		k[i] = math.Exp(-d * d / (2 * sigma * sigma))
		sum += k[i]
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// convValid applies a separable kernel and returns only the fully-covered
// region, shrinking the image by len(k)-1 in each dimension.
func (im *fimg) convValid(k []float64) *fimg {
	n := len(k)
	outW := im.w - n + 1
	outH := im.h - n + 1
	if outW <= 0 || outH <= 0 {
		return newFimg(0, 0)
	}
	// Horizontal pass.
	tmp := newFimg(outW, im.h)
	for y := 0; y < im.h; y++ {
		row := im.v[y*im.w : (y+1)*im.w]
		out := tmp.v[y*outW : (y+1)*outW]
		for x := 0; x < outW; x++ {
			var s float64
			for i := 0; i < n; i++ {
				s += row[x+i] * k[i]
			}
			out[x] = s
		}
	}
	// Vertical pass.
	out := newFimg(outW, outH)
	for y := 0; y < outH; y++ {
		dst := out.v[y*outW : (y+1)*outW]
		for x := 0; x < outW; x++ {
			var s float64
			for i := 0; i < n; i++ {
				s += tmp.v[(y+i)*outW+x] * k[i]
			}
			dst[x] = s
		}
	}
	return out
}

// mul returns the element-wise product of two same-sized images.
func mul(a, b *fimg) *fimg {
	out := newFimg(a.w, a.h)
	for i := range out.v {
		out.v[i] = a.v[i] * b.v[i]
	}
	return out
}

// downsample2 halves the image by 2x2 averaging.
func (im *fimg) downsample2() *fimg {
	w, h := im.w/2, im.h/2
	if w == 0 || h == 0 {
		return newFimg(0, 0)
	}
	out := newFimg(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s := im.at(2*x, 2*y) + im.at(2*x+1, 2*y) +
				im.at(2*x, 2*y+1) + im.at(2*x+1, 2*y+1)
			out.v[y*w+x] = s / 4
		}
	}
	return out
}
