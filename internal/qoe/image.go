// Package qoe implements the objective quality metrics the paper computes
// with VQMT and ViSQOL: PSNR, SSIM (Wang et al. 2004) and pixel-domain
// VIF (Sheikh & Bovik 2006) for video, and a spectrogram-similarity
// MOS-LQO estimator for audio, plus the temporal alignment used to
// synchronize recordings with the injected originals.
package qoe

import (
	"math"

	"github.com/vcabench/vcabench/internal/media"
)

// fimg is a float64 grayscale image used by the metric pipelines.
type fimg struct {
	w, h int
	v    []float64
}

func newFimg(w, h int) *fimg { return &fimg{w: w, h: h, v: make([]float64, w*h)} }

// fimgPool recycles float-image buffers by exact pixel count. The metric
// pipelines churn through large intermediates (the dominant allocation
// source of a cold campaign cell); pooling them per Scorer keeps reuse
// single-goroutine and deterministic. Buffers come back dirty — every
// producer below writes each output element before it is read, so no
// zeroing pass is needed.
type fimgPool struct {
	free map[int][]*fimg
}

func newFimgPool() *fimgPool { return &fimgPool{free: make(map[int][]*fimg)} }

func (p *fimgPool) get(w, h int) *fimg {
	n := w * h
	if bucket := p.free[n]; len(bucket) > 0 {
		im := bucket[len(bucket)-1]
		p.free[n] = bucket[:len(bucket)-1]
		im.w, im.h = w, h
		return im
	}
	return &fimg{w: w, h: h, v: make([]float64, n)}
}

func (p *fimgPool) put(im *fimg) {
	if im == nil || len(im.v) == 0 {
		return
	}
	n := len(im.v)
	p.free[n] = append(p.free[n], im)
}

func fromFrame(p *fimgPool, f *media.Frame) *fimg {
	im := p.get(f.W, f.H)
	for i, px := range f.Pix {
		im.v[i] = float64(px)
	}
	return im
}

func (im *fimg) at(x, y int) float64 { return im.v[y*im.w+x] }

// gaussianKernel returns a normalized 1-D Gaussian of the given length.
func gaussianKernel(n int, sigma float64) []float64 {
	k := make([]float64, n)
	mid := float64(n-1) / 2
	var sum float64
	for i := range k {
		d := float64(i) - mid
		k[i] = math.Exp(-d * d / (2 * sigma * sigma))
		sum += k[i]
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// convValid applies a separable kernel and returns only the fully-covered
// region, shrinking the image by len(k)-1 in each dimension.
//
// Both passes run through convTaps: per output element the tap products
// are added in ascending tap order — exactly the order of the classic
// tap-inner loop — and float64 partials round identically whether they
// live in a register or a slice slot, so the result is bit-identical to
// the naive form. The horizontal pass reads taps at stride 1, the
// vertical pass at stride outW (consecutive rows of the intermediate),
// both streaming memory sequentially and writing each output exactly
// once. The kernels are elementwise with separate multiply and add
// (never FMA), preserving bit identity at any SIMD width.
func convValid(p *fimgPool, im *fimg, k []float64) *fimg {
	n := len(k)
	outW := im.w - n + 1
	outH := im.h - n + 1
	if outW <= 0 || outH <= 0 {
		return newFimg(0, 0)
	}
	// Horizontal pass.
	tmp := p.get(outW, im.h)
	for y := 0; y < im.h; y++ {
		convTaps(tmp.v[y*outW:(y+1)*outW], im.v[y*im.w:], k, 1)
	}
	// Vertical pass.
	out := p.get(outW, outH)
	for y := 0; y < outH; y++ {
		convTaps(out.v[y*outW:(y+1)*outW], tmp.v[y*outW:], k, outW)
	}
	p.put(tmp)
	return out
}

// mul returns the element-wise product of two same-sized images.
func mul(p *fimgPool, a, b *fimg) *fimg {
	out := p.get(a.w, a.h)
	mulVec(out.v, a.v, b.v)
	return out
}

// downsample2 halves the image by 2x2 averaging.
func downsample2(p *fimgPool, im *fimg) *fimg {
	w, h := im.w/2, im.h/2
	if w == 0 || h == 0 {
		return newFimg(0, 0)
	}
	out := p.get(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s := im.at(2*x, 2*y) + im.at(2*x+1, 2*y) +
				im.at(2*x, 2*y+1) + im.at(2*x+1, 2*y+1)
			out.v[y*w+x] = s / 4
		}
	}
	return out
}
