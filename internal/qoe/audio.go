package qoe

import (
	"math"
	"math/cmplx"

	"github.com/vcabench/vcabench/internal/media"
)

// The audio quality estimator follows the structure of ViSQOL: both clips
// are turned into band-energy spectrograms, a neurogram similarity (NSIM)
// is computed between aligned spectrogram frames, and the mean similarity
// is mapped onto the MOS-LQO scale (1 worst .. 5 best). It is not a
// bit-exact ViSQOL, but it is monotone under the same degradations the
// paper induced: packet loss, concealment artifacts and coding noise.

const (
	specWindow = 512 // 32 ms at 16 kHz
	specHop    = 256
	specBands  = 16
	specFloor  = -60 // dB floor
)

// fft computes an in-place radix-2 FFT. len(x) must be a power of two.
func fft(x []complex128) {
	n := len(x)
	if n <= 1 {
		return
	}
	// Bit reversal.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
}

// spectrogram returns band-energy frames in dB, clamped to specFloor.
// Bands are log-spaced between 100 Hz and 7 kHz.
func spectrogram(c *media.AudioClip) [][]float64 {
	if len(c.Samples) < specWindow {
		return nil
	}
	// Precompute band bin ranges.
	fLo, fHi := 100.0, 7000.0
	if max := float64(c.Rate) / 2; fHi > max {
		fHi = max * 0.95
	}
	edges := make([]float64, specBands+1)
	for i := range edges {
		edges[i] = fLo * math.Pow(fHi/fLo, float64(i)/float64(specBands))
	}
	binHz := float64(c.Rate) / specWindow
	hann := make([]float64, specWindow)
	for i := range hann {
		hann[i] = 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(specWindow-1))
	}
	var out [][]float64
	buf := make([]complex128, specWindow)
	for off := 0; off+specWindow <= len(c.Samples); off += specHop {
		for i := 0; i < specWindow; i++ {
			buf[i] = complex(c.Samples[off+i]*hann[i], 0)
		}
		fft(buf)
		bands := make([]float64, specBands)
		for b := 0; b < specBands; b++ {
			lo := int(edges[b] / binHz)
			hi := int(edges[b+1] / binHz)
			if hi <= lo {
				hi = lo + 1
			}
			var e float64
			for k := lo; k < hi && k < specWindow/2; k++ {
				e += real(buf[k])*real(buf[k]) + imag(buf[k])*imag(buf[k])
			}
			db := float64(specFloor)
			if e > 0 {
				db = 10 * math.Log10(e)
				if db < specFloor {
					db = specFloor
				}
			}
			bands[b] = db
		}
		out = append(out, bands)
	}
	return out
}

// dynamicRange is the scored dynamic range below the reference's peak
// band energy. Content below it — including inaudible coding noise — is
// clamped to the floor, mirroring how ViSQOL's perceptual front end
// ignores sub-threshold energy.
const dynamicRange = 50.0

// nsim computes the mean neurogram similarity between two spectrograms,
// in [0, 1]. Both are clamped to a floor dynamicRange dB below the
// reference peak, and only reference-active frames are scored (ViSQOL
// likewise scores only active patches).
func nsim(ref, deg [][]float64) float64 {
	n := len(ref)
	if len(deg) < n {
		n = len(deg)
	}
	if n == 0 {
		return 0
	}
	peak := math.Inf(-1)
	for t := 0; t < n; t++ {
		for b := 0; b < specBands; b++ {
			if ref[t][b] > peak {
				peak = ref[t][b]
			}
		}
	}
	floor := peak - dynamicRange
	clamp := func(v float64) float64 {
		if v < floor {
			return floor
		}
		return v
	}
	activity := floor + 0.3*dynamicRange
	const c1 = 1.0
	const c2 = 5.0
	var sum float64
	var cnt int
	for t := 0; t < n; t++ {
		var level float64
		for b := 0; b < specBands; b++ {
			level += clamp(ref[t][b])
		}
		if level/specBands < activity {
			continue // reference is (near-)silent here
		}
		for b := 0; b < specBands; b++ {
			r := clamp(ref[t][b]) - floor // in [0, dynamicRange]
			d := clamp(deg[t][b]) - floor
			// Luminance-style similarity on band energies plus a local
			// structure term across the band axis.
			lum := (2*r*d + c1) / (r*r + d*d + c1)
			var sr, sd float64
			if b > 0 {
				sr = clamp(ref[t][b]) - clamp(ref[t][b-1])
				sd = clamp(deg[t][b]) - clamp(deg[t][b-1])
			}
			str := (2*sr*sd + c2) / (sr*sr + sd*sd + c2)
			sum += lum * str
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	v := sum / float64(cnt)
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return v
}

// MOSLQO estimates the listening-quality MOS (1..5) of a degraded clip
// against its reference. Clips should be loudness-normalized and aligned
// first (see media.AudioClip.Normalize and AlignAudio).
func MOSLQO(ref, deg *media.AudioClip) float64 {
	sr := spectrogram(ref)
	sd := spectrogram(deg)
	if len(sr) == 0 || len(sd) == 0 {
		return 1
	}
	s := nsim(sr, sd)
	// Map similarity to the MOS scale. The exponent sharpens the top of
	// the scale so that transparent coding lands near 4.2-4.8 and heavy
	// degradation falls quickly below 3.
	mos := 1 + 4*math.Pow(s, 4)
	if mos > 5 {
		mos = 5
	}
	if mos < 1 {
		mos = 1
	}
	return mos
}
