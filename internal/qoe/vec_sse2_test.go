//go:build amd64

package qoe

import "testing"

// TestVecKernelsSSE2Path forces the SSE2 kernels on an AVX2 machine so
// both amd64 paths are exercised by the same bit-identity sweep.
func TestVecKernelsSSE2Path(t *testing.T) {
	if !useAVX2 {
		t.Skip("already on the SSE2 path")
	}
	useAVX2 = false
	defer func() { useAVX2 = true }()
	TestVecKernelsBitIdentical(t)
}
