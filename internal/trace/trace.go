// Package trace models deterministic, JSON-able impairment schedules:
// a Trace is a named sequence of (at, downlink_cap_bps, loss_pct,
// extra_delay) steps applied to a receiver node's downlink over
// simulated session time. The paper's headline dynamics results (Figs
// 13-15: how Zoom, Webex and Meet recover from time-varying bandwidth
// disturbances) are square waves of exactly this shape; real backhauls
// (LTE buses, congested DSL) are bursty schedules rather than constant
// caps. Traces make those conditions first-class campaign-axis values:
// declarative, canonically named, and replayed byte-identically on any
// worker by a Player driving the simnet scheduled-reconfiguration hook
// (Node.SetDownlinkState / Node.DownlinkAt).
package trace

import (
	"fmt"
	"math"
	"time"

	"github.com/vcabench/vcabench/internal/simnet"
)

// Step is one schedule point: the complete downlink state to apply at
// AtSec, expressed in absolute terms, never deltas — replaying a
// prefix of a trace always leaves the link in a well-defined state.
//
//vcalint:ignore floatfmt input-side schedule; JSON cannot encode NaN and Validate rejects non-finite values
type Step struct {
	// AtSec is the offset from trace start in seconds.
	AtSec float64 `json:"at_sec"`
	// DownCapBps caps the downlink from this step on; 0 = uncapped.
	DownCapBps int64 `json:"down_cap_bps,omitempty"`
	// LossPct is random downlink loss in [0, 100).
	LossPct float64 `json:"loss_pct,omitempty"`
	// ExtraDelayMs adds a fixed per-packet delivery delay after the
	// rate stage, in milliseconds.
	ExtraDelayMs float64 `json:"extra_delay_ms,omitempty"`
}

// state converts the step into the simnet reconfiguration it applies.
func (st Step) state(burst int) simnet.LinkState {
	return simnet.LinkState{
		CapBps:     st.DownCapBps,
		Burst:      burst,
		LossProb:   st.LossPct / 100,
		ExtraDelay: time.Duration(st.ExtraDelayMs * float64(time.Millisecond)),
	}
}

// Trace is a named, validated impairment schedule. Steps are strictly
// ordered by AtSec; with RepeatSec > 0 the schedule replays with that
// period (every AtSec must then fall inside [0, RepeatSec)), otherwise
// it plays once and the last step's state persists.
//
//vcalint:ignore floatfmt input-side schedule; JSON cannot encode NaN and Validate rejects non-finite values
type Trace struct {
	Name      string  `json:"name"`
	Steps     []Step  `json:"steps"`
	RepeatSec float64 `json:"repeat_sec,omitempty"`
}

// finite rejects the float values JSON cannot carry but Go callers
// could still construct.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// maxTraceSec bounds every schedule time: a million seconds (~11.5
// days) dwarfs any session yet keeps second-to-Duration conversions —
// including whole repeat cycles — far from int64-nanosecond overflow,
// which would wrap a scheduled instant into the past and panic the
// simulator mid-replay.
const maxTraceSec = 1e6

// span reports whether v is a usable schedule time.
func span(v float64) bool { return finite(v) && v >= 0 && v <= maxTraceSec }

// Validate checks the schedule's structure. The name is free-form here;
// campaign-level constraints (uniqueness, no "/") live with the axis.
func (t Trace) Validate() error {
	if len(t.Steps) == 0 {
		return fmt.Errorf("trace %q: no steps", t.Name)
	}
	if !span(t.RepeatSec) {
		return fmt.Errorf("trace %q: repeat_sec %.6g invalid (want [0, %.6g])", t.Name, t.RepeatSec, float64(maxTraceSec))
	}
	prev := math.Inf(-1)
	for i, st := range t.Steps {
		if !span(st.AtSec) {
			return fmt.Errorf("trace %q: step %d at_sec %.6g invalid (want [0, %.6g])", t.Name, i, st.AtSec, float64(maxTraceSec))
		}
		if st.AtSec <= prev {
			return fmt.Errorf("trace %q: step %d at_sec %.6g not strictly increasing", t.Name, i, st.AtSec)
		}
		prev = st.AtSec
		if st.DownCapBps < 0 {
			return fmt.Errorf("trace %q: step %d negative down_cap_bps", t.Name, i)
		}
		if !finite(st.LossPct) || st.LossPct < 0 || st.LossPct >= 100 {
			return fmt.Errorf("trace %q: step %d loss_pct %.6g outside [0, 100)", t.Name, i, st.LossPct)
		}
		if !finite(st.ExtraDelayMs) || st.ExtraDelayMs < 0 || st.ExtraDelayMs > maxTraceSec*1000 {
			return fmt.Errorf("trace %q: step %d extra_delay_ms %.6g invalid", t.Name, i, st.ExtraDelayMs)
		}
		if t.RepeatSec > 0 && st.AtSec >= t.RepeatSec {
			return fmt.Errorf("trace %q: step %d at_sec %.6g outside the repeat period [0, %.6g)",
				t.Name, i, st.AtSec, t.RepeatSec)
		}
	}
	return nil
}

// Square returns a repeating square wave: highBps from cycle start,
// dropping to lowBps after highDur, recovering at the next cycle.
// A cap of 0 means uncapped.
func Square(name string, highBps, lowBps int64, highDur, lowDur time.Duration) Trace {
	return Trace{
		Name:      name,
		RepeatSec: highDur.Seconds() + lowDur.Seconds(),
		Steps: []Step{
			{AtSec: 0, DownCapBps: highBps},
			{AtSec: highDur.Seconds(), DownCapBps: lowBps},
		},
	}
}

// DropRecover is the single drop/recover pulse of the paper's Fig 13:
// the link runs at baseBps, drops to dropBps at dropAt, and recovers
// to baseBps after dropFor — then stays recovered, which is what makes
// per-platform recovery dynamics visible in the rate-over-time series.
func DropRecover(name string, baseBps, dropBps int64, dropAt, dropFor time.Duration) Trace {
	return Trace{
		Name: name,
		Steps: []Step{
			{AtSec: 0, DownCapBps: baseBps},
			{AtSec: dropAt.Seconds(), DownCapBps: dropBps},
			{AtSec: (dropAt + dropFor).Seconds(), DownCapBps: baseBps},
		},
	}
}

// Sawtooth ramps the cap from topBps down to bottomBps in n equal
// treads spread over period, then snaps back to the top and repeats.
// n must be >= 2 (top and bottom included).
func Sawtooth(name string, topBps, bottomBps int64, n int, period time.Duration) Trace {
	tr := Trace{Name: name, RepeatSec: period.Seconds()}
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n-1)
		cap := topBps - int64(math.Round(frac*float64(topBps-bottomBps)))
		tr.Steps = append(tr.Steps, Step{
			AtSec:      float64(i) * period.Seconds() / float64(n),
			DownCapBps: cap,
		})
	}
	return tr
}

// StepDown descends through the given cap levels, dwelling at each,
// and stays at the last level — a step-down ladder for probing where a
// platform's quality cliff sits within one session.
func StepDown(name string, levelsBps []int64, dwell time.Duration) Trace {
	tr := Trace{Name: name}
	for i, cap := range levelsBps {
		tr.Steps = append(tr.Steps, Step{
			AtSec:      float64(i) * dwell.Seconds(),
			DownCapBps: cap,
		})
	}
	return tr
}

// Spec declares a trace in a campaign JSON file: either explicit Steps
// (with optional RepeatSec) or exactly one generator. The zero Spec is
// inactive — the "no trace" default value of a campaign's Traces axis.
//
//vcalint:ignore floatfmt input-side spec; JSON cannot encode NaN and Resolve validates every value
type Spec struct {
	// Name labels the trace in unit keys and results.
	Name string `json:"name,omitempty"`
	// Steps lists an explicit schedule.
	Steps []Step `json:"steps,omitempty"`
	// RepeatSec replays explicit Steps with this period. It cannot
	// combine with a generator (each defines its own repetition); a
	// spec setting both is rejected rather than silently ignored.
	RepeatSec float64 `json:"repeat_sec,omitempty"`
	// Square generates a repeating high/low square wave.
	Square *SquareSpec `json:"square,omitempty"`
	// Sawtooth generates a repeating descending ramp.
	Sawtooth *SawtoothSpec `json:"sawtooth,omitempty"`
	// StepDown generates a play-once descending ladder.
	StepDown *StepDownSpec `json:"step_down,omitempty"`
}

// SquareSpec parameterizes Square, or — with Once — a single
// DropRecover pulse (high for HighSec, low for LowSec, high again).
//
//vcalint:ignore floatfmt input-side spec; JSON cannot encode NaN and Resolve validates every value
type SquareSpec struct {
	HighBps int64   `json:"high_bps"`
	LowBps  int64   `json:"low_bps"`
	HighSec float64 `json:"high_sec"`
	LowSec  float64 `json:"low_sec"`
	Once    bool    `json:"once,omitempty"`
}

// SawtoothSpec parameterizes Sawtooth.
//
//vcalint:ignore floatfmt input-side spec; JSON cannot encode NaN and Resolve validates every value
type SawtoothSpec struct {
	TopBps    int64   `json:"top_bps"`
	BottomBps int64   `json:"bottom_bps"`
	Steps     int     `json:"steps"`
	PeriodSec float64 `json:"period_sec"`
}

// StepDownSpec parameterizes StepDown.
//
//vcalint:ignore floatfmt input-side spec; JSON cannot encode NaN and Resolve validates every value
type StepDownSpec struct {
	LevelsBps []int64 `json:"levels_bps"`
	DwellSec  float64 `json:"dwell_sec"`
}

// Active reports whether the spec declares any schedule at all.
func (s Spec) Active() bool {
	return len(s.Steps) > 0 || s.Square != nil || s.Sawtooth != nil || s.StepDown != nil
}

func secs(v float64) time.Duration { return time.Duration(v * float64(time.Second)) }

// Resolve expands the spec into a validated Trace. An inactive spec
// resolves to the zero Trace with no error.
func (s Spec) Resolve() (Trace, error) {
	sources := 0
	if len(s.Steps) > 0 {
		sources++
	}
	if s.Square != nil {
		sources++
	}
	if s.Sawtooth != nil {
		sources++
	}
	if s.StepDown != nil {
		sources++
	}
	if sources == 0 {
		return Trace{}, nil
	}
	if sources > 1 {
		return Trace{}, fmt.Errorf("trace %q: steps, square, sawtooth and step_down are mutually exclusive", s.Name)
	}
	if s.RepeatSec != 0 && len(s.Steps) == 0 {
		return Trace{}, fmt.Errorf("trace %q: repeat_sec applies only to explicit steps (generators define their own period)", s.Name)
	}
	var tr Trace
	switch {
	case len(s.Steps) > 0:
		tr = Trace{Name: s.Name, Steps: s.Steps, RepeatSec: s.RepeatSec}
	case s.Square != nil:
		q := *s.Square
		if !finite(q.HighSec) || !finite(q.LowSec) || q.HighSec <= 0 || q.LowSec <= 0 {
			return Trace{}, fmt.Errorf("trace %q: square needs positive high_sec and low_sec", s.Name)
		}
		if q.Once {
			tr = DropRecover(s.Name, q.HighBps, q.LowBps, secs(q.HighSec), secs(q.LowSec))
		} else {
			tr = Square(s.Name, q.HighBps, q.LowBps, secs(q.HighSec), secs(q.LowSec))
		}
	case s.Sawtooth != nil:
		w := *s.Sawtooth
		if w.Steps < 2 {
			return Trace{}, fmt.Errorf("trace %q: sawtooth needs >= 2 steps", s.Name)
		}
		if !finite(w.PeriodSec) || w.PeriodSec <= 0 {
			return Trace{}, fmt.Errorf("trace %q: sawtooth needs a positive period_sec", s.Name)
		}
		if w.BottomBps > w.TopBps {
			return Trace{}, fmt.Errorf("trace %q: sawtooth bottom_bps > top_bps", s.Name)
		}
		tr = Sawtooth(s.Name, w.TopBps, w.BottomBps, w.Steps, secs(w.PeriodSec))
	case s.StepDown != nil:
		d := *s.StepDown
		if len(d.LevelsBps) == 0 {
			return Trace{}, fmt.Errorf("trace %q: step_down needs levels_bps", s.Name)
		}
		if !finite(d.DwellSec) || d.DwellSec <= 0 {
			return Trace{}, fmt.Errorf("trace %q: step_down needs a positive dwell_sec", s.Name)
		}
		tr = StepDown(s.Name, d.LevelsBps, secs(d.DwellSec))
	}
	if err := tr.Validate(); err != nil {
		return Trace{}, err
	}
	return tr, nil
}

// Player replays one trace against one node's downlink in virtual
// time. Scheduling is incremental — each step schedules its successor
// when it fires — so the simulator's event stream is identical to a
// hand-coded Sim.Every toggle loop with the same instants, which is
// what keeps ported experiments byte-identical.
type Player struct {
	sim   *simnet.Sim
	node  *simnet.Node
	tr    Trace
	burst int
	start time.Time
	cycle int
	idx   int
	ev    *simnet.Event
	probe StepProbe
}

// StepProbe observes every step application in sim time — the
// flight-recorder seam (see internal/diag). It fires synchronously
// right after the downlink state is applied, so an installed probe
// cannot change when or what the player applies.
type StepProbe func(at time.Time, name string, step Step)

// Play starts replaying tr against node at sim.Now(). A step with
// AtSec == 0 applies synchronously (no event); later steps schedule
// through the simnet reconfiguration hook. burst sets the token-bucket
// depth installed by capped steps (<= 0 selects the simnet default).
// The trace must be valid (see Validate); playing an invalid trace
// panics rather than replaying a half-checked schedule.
func Play(sim *simnet.Sim, node *simnet.Node, tr Trace, burst int) *Player {
	return PlayWithProbe(sim, node, tr, burst, nil)
}

// PlayWithProbe is Play with a step observer; a nil probe makes it
// identical to Play (same events, same instants, same applications).
func PlayWithProbe(sim *simnet.Sim, node *simnet.Node, tr Trace, burst int, probe StepProbe) *Player {
	if err := tr.Validate(); err != nil {
		panic("trace: Play: " + err.Error())
	}
	p := &Player{sim: sim, node: node, tr: tr, burst: burst, start: sim.Now(), probe: probe}
	if tr.Steps[0].AtSec == 0 {
		p.node.SetDownlinkState(tr.Steps[0].state(burst))
		if p.probe != nil {
			p.probe(sim.Now(), tr.Name, tr.Steps[0])
		}
		p.idx = 1
	}
	p.scheduleNext()
	return p
}

// scheduleNext arms the event for the upcoming step, wrapping into the
// next cycle for repeating traces. One-shot traces go quiescent after
// the last step.
func (p *Player) scheduleNext() {
	if p.idx >= len(p.tr.Steps) {
		if p.tr.RepeatSec <= 0 {
			p.ev = nil
			return
		}
		p.cycle++
		p.idx = 0
	}
	step := p.tr.Steps[p.idx]
	// Integer Duration math: cycle k fires at start + k*repeat + offset
	// exactly, so repeating schedules accumulate no float drift across
	// cycles (matching a hand-rolled Every toggle's repeated adds).
	at := p.start.Add(time.Duration(p.cycle)*secs(p.tr.RepeatSec) + secs(step.AtSec))
	p.ev = p.sim.At(at, func() {
		p.node.SetDownlinkState(step.state(p.burst))
		if p.probe != nil {
			p.probe(p.sim.Now(), p.tr.Name, step)
		}
		p.idx++
		p.scheduleNext()
	})
}

// Stop cancels the pending reconfiguration, freezing the link in its
// current state; the caller restores whatever baseline it needs.
func (p *Player) Stop() {
	if p.ev != nil {
		p.ev.Cancel()
		p.ev = nil
	}
}
