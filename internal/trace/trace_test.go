package trace

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/vcabench/vcabench/internal/geo"
	"github.com/vcabench/vcabench/internal/simnet"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		tr   Trace
		want string // error substring, "" = valid
	}{
		{"empty", Trace{Name: "x"}, "no steps"},
		{"ok one step", Trace{Name: "x", Steps: []Step{{AtSec: 0, DownCapBps: 1000}}}, ""},
		{"ok increasing", Trace{Name: "x", Steps: []Step{{AtSec: 0}, {AtSec: 1.5}}}, ""},
		{"negative at", Trace{Name: "x", Steps: []Step{{AtSec: -1}}}, "at_sec"},
		{"nan at", Trace{Name: "x", Steps: []Step{{AtSec: math.NaN()}}}, "at_sec"},
		{"not increasing", Trace{Name: "x", Steps: []Step{{AtSec: 1}, {AtSec: 1}}}, "strictly increasing"},
		{"negative cap", Trace{Name: "x", Steps: []Step{{DownCapBps: -1}}}, "down_cap_bps"},
		{"loss range", Trace{Name: "x", Steps: []Step{{LossPct: 100}}}, "loss_pct"},
		{"nan loss", Trace{Name: "x", Steps: []Step{{LossPct: math.NaN()}}}, "loss_pct"},
		{"negative delay", Trace{Name: "x", Steps: []Step{{ExtraDelayMs: -1}}}, "extra_delay_ms"},
		{"negative repeat", Trace{Name: "x", RepeatSec: -1, Steps: []Step{{}}}, "repeat_sec"},
		{"inf repeat", Trace{Name: "x", RepeatSec: math.Inf(1), Steps: []Step{{}}}, "repeat_sec"},
		{"step outside period", Trace{Name: "x", RepeatSec: 2, Steps: []Step{{AtSec: 0}, {AtSec: 2}}}, "repeat period"},
		{"ok repeating", Trace{Name: "x", RepeatSec: 2, Steps: []Step{{AtSec: 0}, {AtSec: 1}}}, ""},
		// Times past the bound would overflow the nanosecond Duration
		// conversion and wrap scheduled instants into the past.
		{"huge at", Trace{Name: "x", Steps: []Step{{AtSec: 1e10}}}, "at_sec"},
		{"huge repeat", Trace{Name: "x", RepeatSec: 1e10, Steps: []Step{{AtSec: 0}}}, "repeat_sec"},
		{"huge delay", Trace{Name: "x", Steps: []Step{{ExtraDelayMs: 1e12}}}, "extra_delay_ms"},
		{"max at ok", Trace{Name: "x", Steps: []Step{{AtSec: 1e6}}}, ""},
	}
	for _, c := range cases {
		err := c.tr.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v does not mention %q", c.name, err, c.want)
		}
	}
}

func TestGenerators(t *testing.T) {
	sq := Square("sq", 2_000_000, 500_000, 3*time.Second, time.Second)
	if err := sq.Validate(); err != nil {
		t.Fatal(err)
	}
	if sq.RepeatSec != 4 || len(sq.Steps) != 2 || sq.Steps[1].AtSec != 3 || sq.Steps[1].DownCapBps != 500_000 {
		t.Errorf("Square = %+v", sq)
	}

	dr := DropRecover("dr", 0, 250_000, 2*time.Second, 4*time.Second)
	if err := dr.Validate(); err != nil {
		t.Fatal(err)
	}
	if dr.RepeatSec != 0 || len(dr.Steps) != 3 || dr.Steps[2].AtSec != 6 || dr.Steps[2].DownCapBps != 0 {
		t.Errorf("DropRecover = %+v", dr)
	}

	sw := Sawtooth("sw", 1_000_000, 200_000, 5, 10*time.Second)
	if err := sw.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sw.Steps) != 5 || sw.Steps[0].DownCapBps != 1_000_000 || sw.Steps[4].DownCapBps != 200_000 {
		t.Errorf("Sawtooth = %+v", sw)
	}

	sd := StepDown("sd", []int64{1_000_000, 500_000, 250_000}, 2*time.Second)
	if err := sd.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sd.Steps) != 3 || sd.Steps[2].AtSec != 4 || sd.Steps[2].DownCapBps != 250_000 {
		t.Errorf("StepDown = %+v", sd)
	}
}

func TestSpecResolve(t *testing.T) {
	if (Spec{}).Active() {
		t.Error("zero spec must be inactive")
	}
	if tr, err := (Spec{}).Resolve(); err != nil || len(tr.Steps) != 0 {
		t.Errorf("inactive spec resolved to %+v, %v", tr, err)
	}

	bad := []struct {
		spec Spec
		want string
	}{
		{Spec{Name: "x", Steps: []Step{{}}, Square: &SquareSpec{HighSec: 1, LowSec: 1}}, "mutually exclusive"},
		{Spec{Name: "x", Square: &SquareSpec{HighSec: 0, LowSec: 1}}, "positive high_sec"},
		{Spec{Name: "x", Square: &SquareSpec{HighSec: math.NaN(), LowSec: 1}}, "positive high_sec"},
		{Spec{Name: "x", Sawtooth: &SawtoothSpec{Steps: 1, PeriodSec: 4}}, ">= 2 steps"},
		{Spec{Name: "x", Sawtooth: &SawtoothSpec{Steps: 3, PeriodSec: 0}}, "period_sec"},
		{Spec{Name: "x", Sawtooth: &SawtoothSpec{TopBps: 1, BottomBps: 2, Steps: 3, PeriodSec: 4}}, "bottom_bps > top_bps"},
		{Spec{Name: "x", StepDown: &StepDownSpec{DwellSec: 1}}, "levels_bps"},
		{Spec{Name: "x", StepDown: &StepDownSpec{LevelsBps: []int64{1000}, DwellSec: 0}}, "dwell_sec"},
		{Spec{Name: "x", Steps: []Step{{AtSec: -1}}}, "at_sec"},
		{Spec{Name: "x", RepeatSec: 5, Square: &SquareSpec{HighSec: 4, LowSec: 4}}, "repeat_sec applies only"},
	}
	for _, c := range bad {
		if _, err := c.spec.Resolve(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Resolve(%+v): error %v does not mention %q", c.spec, err, c.want)
		}
	}

	// A generator spec round-trips through JSON to the same trace.
	spec := Spec{Name: "p", Square: &SquareSpec{HighBps: 0, LowBps: 250_000, HighSec: 2, LowSec: 4, Once: true}}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	a, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Steps) != 3 || a.Steps[1].DownCapBps != 250_000 {
		t.Errorf("square-once resolved to %+v", a)
	}
	for i := range a.Steps {
		if a.Steps[i] != b.Steps[i] {
			t.Errorf("step %d drifted across JSON: %+v vs %+v", i, a.Steps[i], b.Steps[i])
		}
	}
}

// testNode builds a sim and a node with an unconstrained downlink.
func testNode(t *testing.T) (*simnet.Sim, *simnet.Network, *simnet.Node) {
	t.Helper()
	sim := simnet.NewSim(1)
	net := simnet.NewNetwork(sim, simnet.NetworkConfig{})
	n := net.AddNode(simnet.NodeConfig{Name: "recv", Region: geo.USEast})
	return sim, net, n
}

// The player drives the node's downlink through the schedule: packets
// sent during a capped window arrive throttled, packets after recovery
// arrive promptly.
func TestPlayerAppliesSchedule(t *testing.T) {
	sim, net, recv := testNode(t)
	send := net.AddNode(simnet.NodeConfig{Name: "send", Region: geo.USEast})

	var arrivals []time.Time
	recv.Bind(9, func(pkt *simnet.Packet) { arrivals = append(arrivals, sim.Now()) })

	// 1 KB packets every 100 ms for 6 s ≈ 80 kbps offered load.
	for i := 0; i < 60; i++ {
		at := simnet.Epoch.Add(time.Duration(i) * 100 * time.Millisecond)
		sim.At(at, func() {
			send.Send(&simnet.Packet{To: simnet.Addr{Node: "recv", Port: 9}, Size: 1000})
		})
	}

	// Cap hard (8 kbps, ~2 packets of burst) during [2s, 4s): ~1 s of
	// serialization per packet once the initial bucket drains.
	p := Play(sim, recv, DropRecover("dip", 0, 8_000, 2*time.Second, 2*time.Second), 2048)
	sim.Run()
	p.Stop()

	if len(arrivals) == 0 {
		t.Fatal("no packets delivered")
	}
	var before, during, late int
	for _, at := range arrivals {
		switch d := at.Sub(simnet.Epoch); {
		case d < 2*time.Second:
			before++
		case d < 4*time.Second:
			during++
		default:
			late++
		}
	}
	// ~20 packets are offered before the dip and pass untouched; the
	// 8 kbps window admits only a couple of the ~20 offered during it,
	// with the backlog (and the post-recovery traffic) draining after.
	if before != 20 {
		t.Errorf("pre-dip deliveries = %d, want 20", before)
	}
	if during >= 10 {
		t.Errorf("dip window delivered %d packets, want far fewer than offered", during)
	}
	if late == 0 {
		t.Error("nothing delivered after recovery")
	}
}

// A repeating trace keeps an event armed forever; Stop freezes the
// schedule so the event queue can drain.
func TestPlayerRepeatAndStop(t *testing.T) {
	sim, _, recv := testNode(t)
	p := Play(sim, recv, Square("sq", 1_000_000, 100_000, time.Second, time.Second), 0)
	// Far beyond several periods, the player still has its next step
	// armed (a one-shot schedule would have gone quiescent long ago).
	sim.RunUntil(simnet.Epoch.Add(25 * time.Second))
	if sim.Pending() == 0 {
		t.Fatal("repeating player went quiescent")
	}
	steps := sim.Steps()
	if steps < 20 {
		t.Errorf("only %d reconfigurations over 25 s of a 2 s period", steps)
	}
	p.Stop()
	// With the pending step cancelled nothing reschedules: Run drains.
	sim.Run()
	if got := sim.Pending(); got != 0 {
		t.Errorf("pending after drain = %d", got)
	}
	if sim.Steps() != steps {
		t.Errorf("cancelled step still fired: %d -> %d", steps, sim.Steps())
	}
}

// Replaying the same trace twice from the same state yields identical
// delivery times — the determinism the campaign layer builds on.
func TestPlayerDeterministic(t *testing.T) {
	run := func() []time.Duration {
		sim, net, recv := testNode(t)
		send := net.AddNode(simnet.NodeConfig{Name: "send", Region: geo.USEast})
		var at []time.Duration
		recv.Bind(9, func(pkt *simnet.Packet) { at = append(at, sim.Since()) })
		for i := 0; i < 40; i++ {
			t := simnet.Epoch.Add(time.Duration(i) * 150 * time.Millisecond)
			sim.At(t, func() {
				send.Send(&simnet.Packet{To: simnet.Addr{Node: "recv", Port: 9}, Size: 1200})
			})
		}
		p := Play(sim, recv, Sawtooth("sw", 200_000, 20_000, 4, 2*time.Second), 0)
		// A repeating player always keeps an event armed; run to a
		// horizon past the last send plus drain time, then stop it.
		sim.RunUntil(simnet.Epoch.Add(30 * time.Second))
		p.Stop()
		sim.Run()
		return at
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// Playing an invalid trace is a programming error and panics.
func TestPlayInvalidPanics(t *testing.T) {
	sim, _, recv := testNode(t)
	defer func() {
		if recover() == nil {
			t.Error("Play of an invalid trace should panic")
		}
	}()
	Play(sim, recv, Trace{Name: "bad"}, 0)
}

// An extra-delay step shifts deliveries without throttling them.
func TestExtraDelayStep(t *testing.T) {
	sim, net, recv := testNode(t)
	send := net.AddNode(simnet.NodeConfig{Name: "send", Region: geo.USEast})
	var arrivals []time.Duration
	recv.Bind(9, func(pkt *simnet.Packet) { arrivals = append(arrivals, sim.Since()) })
	sim.At(simnet.Epoch.Add(100*time.Millisecond), func() {
		send.Send(&simnet.Packet{To: simnet.Addr{Node: "recv", Port: 9}, Size: 100})
	})
	sim.At(simnet.Epoch.Add(1100*time.Millisecond), func() {
		send.Send(&simnet.Packet{To: simnet.Addr{Node: "recv", Port: 9}, Size: 100})
	})
	Play(sim, recv, Trace{Name: "lag", Steps: []Step{
		{AtSec: 0},
		{AtSec: 1, ExtraDelayMs: 500},
	}}, 0)
	sim.Run()
	if len(arrivals) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(arrivals))
	}
	if arrivals[0] >= 600*time.Millisecond {
		t.Errorf("pre-step packet delayed: %v", arrivals[0])
	}
	if arrivals[1] < 1600*time.Millisecond {
		t.Errorf("post-step packet not delayed: %v", arrivals[1])
	}
}
