package core

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/vcabench/vcabench/internal/platform"
	"github.com/vcabench/vcabench/internal/report"
)

// dispatchGrid is a small multi-cell campaign for seam tests.
var dispatchGrid = Campaign{
	Name:      "seam",
	Platforms: []string{"zoom", "webex"},
	Sizes:     []int{2, 3},
}

// workerDispatcher simulates a remote worker in-process: every unit
// runs through RunCampaignUnit on a fresh testbed, exactly like
// vcabenchd's POST /units handler.
type workerDispatcher struct {
	calls atomic.Int64
	fail  func(key string) bool // nil = never
}

func (d *workerDispatcher) DispatchUnit(req UnitRequest) ([]byte, error) {
	d.calls.Add(1)
	if d.fail != nil && d.fail(req.Key) {
		return nil, errors.New("injected worker failure")
	}
	sc, ok := ScaleByName(req.Scale)
	if !ok {
		return nil, errors.New("unknown scale " + req.Scale)
	}
	return RunCampaignUnit(NewTestbed(req.Seed), req.Spec, sc, req.Key)
}

func campaignJSON(t *testing.T, tb *Testbed, spec Campaign) []byte {
	t.Helper()
	res, err := RunCampaign(tb, spec, TinyScale)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Dispatched campaigns must merge to the bytes of a local run, with
// every cell actually crossing the seam.
func TestDispatchByteIdentical(t *testing.T) {
	local := campaignJSON(t, NewTestbed(42), dispatchGrid)
	d := &workerDispatcher{}
	dist := campaignJSON(t, NewTestbed(42).WithDispatcher(d), dispatchGrid)
	if !bytes.Equal(local, dist) {
		t.Errorf("dispatched run differs:\n--- local ---\n%s\n--- dispatched ---\n%s", local, dist)
	}
	if got := d.calls.Load(); got != 4 {
		t.Errorf("dispatcher saw %d units, want 4", got)
	}
}

// Units the dispatcher fails on compute locally without changing the
// merged bytes — the failover invariant at the seam level.
func TestDispatchPartialFailureFallsBackLocally(t *testing.T) {
	local := campaignJSON(t, NewTestbed(7), dispatchGrid)
	d := &workerDispatcher{fail: func(key string) bool {
		return key == "seam/zoom/2" || key == "seam/webex/3"
	}}
	dist := campaignJSON(t, NewTestbed(7).WithDispatcher(d), dispatchGrid)
	if !bytes.Equal(local, dist) {
		t.Errorf("partial failover changed bytes:\n--- local ---\n%s\n--- dispatched ---\n%s", local, dist)
	}
}

// Garbage from a worker is a fallback, never a corrupted result.
type garbageDispatcher struct{}

func (garbageDispatcher) DispatchUnit(UnitRequest) ([]byte, error) {
	return []byte("not a gob cell"), nil
}

func TestDispatchGarbageResponseFallsBackLocally(t *testing.T) {
	local := campaignJSON(t, NewTestbed(3), dispatchGrid)
	dist := campaignJSON(t, NewTestbed(3).WithDispatcher(garbageDispatcher{}), dispatchGrid)
	if !bytes.Equal(local, dist) {
		t.Error("garbage worker bytes leaked into the merged result")
	}
}

// A tweaked scale that reuses a preset name must never ship to workers:
// the request carries scales by name, so dispatching would silently
// change the workload.
func TestDispatchSkipsTweakedScale(t *testing.T) {
	d := &workerDispatcher{}
	tb := NewTestbed(5).WithDispatcher(d)
	sc := TinyScale
	sc.QoESessions++ // same name, different workload
	if _, err := RunCampaign(tb, dispatchGrid, sc); err != nil {
		t.Fatal(err)
	}
	if got := d.calls.Load(); got != 0 {
		t.Errorf("tweaked scale was dispatched %d times", got)
	}
}

// Platform overrides exist only in this process (the ablation
// mechanism); campaigns run under them must stay local — a remote
// worker would compute stock platforms under the same unit keys.
func TestDispatchSkipsOverriddenPlatforms(t *testing.T) {
	d := &workerDispatcher{}
	tb := NewTestbed(5).WithDispatcher(d)
	cfg := platform.DefaultConfig(platform.Zoom)
	cfg.P2PWhenPair = false
	tb.OverridePlatform(cfg)
	if _, err := RunCampaign(tb, dispatchGrid, TinyScale); err != nil {
		t.Fatal(err)
	}
	if got := d.calls.Load(); got != 0 {
		t.Errorf("overridden-platform campaign was dispatched %d times", got)
	}
}

// Memo and store tiers sit in front of the dispatcher: a rerun on the
// same testbed dispatches nothing.
func TestDispatchMemoShortCircuits(t *testing.T) {
	d := &workerDispatcher{}
	tb := NewTestbed(11).WithDispatcher(d)
	campaignJSON(t, tb, dispatchGrid)
	first := d.calls.Load()
	campaignJSON(t, tb, dispatchGrid)
	if got := d.calls.Load(); got != first {
		t.Errorf("memoized rerun dispatched %d more units", got-first)
	}
}

// RunCampaignUnit: the worker half must produce exactly the bytes the
// coordinator's store tier would persist for the same cell.
func TestRunCampaignUnitMatchesLocalStoreBytes(t *testing.T) {
	st := &mapStore{m: make(map[string][]byte)}
	tb := NewTestbed(42).WithStore(st).SetParallelism(1)
	if _, err := RunCampaign(tb, dispatchGrid, TinyScale); err != nil {
		t.Fatal(err)
	}
	rc, err := dispatchGrid.resolve()
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range rc.cells() {
		want, ok := st.m[tb.cellKey(TinyScale, rc.salt(), cell.key)]
		if !ok {
			t.Fatalf("local run did not persist %q", cell.key)
		}
		got, err := RunCampaignUnit(NewTestbed(42), dispatchGrid, TinyScale, cell.key)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("unit %q: worker bytes differ from the local store encoding", cell.key)
		}
	}
}

// RunCampaignUnit consults and fills the worker's store.
func TestRunCampaignUnitUsesStore(t *testing.T) {
	st := &mapStore{m: make(map[string][]byte)}
	key := "seam/zoom/2"
	first, err := RunCampaignUnit(NewTestbed(42).WithStore(st), dispatchGrid, TinyScale, key)
	if err != nil {
		t.Fatal(err)
	}
	if st.puts.Load() == 0 {
		t.Fatal("unit run persisted nothing")
	}
	puts := st.puts.Load()
	again, err := RunCampaignUnit(NewTestbed(42).WithStore(st), dispatchGrid, TinyScale, key)
	if err != nil {
		t.Fatal(err)
	}
	if st.puts.Load() != puts {
		t.Error("warm unit run recomputed and re-persisted")
	}
	if !bytes.Equal(first, again) {
		t.Error("warm unit bytes differ from cold")
	}
}

func TestRunCampaignUnitUnknownKey(t *testing.T) {
	if _, err := RunCampaignUnit(NewTestbed(1), dispatchGrid, TinyScale, "seam/nope/9"); err == nil {
		t.Error("unknown cell key accepted")
	}
	bad := Campaign{} // no name: resolve fails
	if _, err := RunCampaignUnit(NewTestbed(1), bad, TinyScale, "x"); err == nil {
		t.Error("invalid spec accepted")
	}
}

// mapStore is an in-memory CellStore for seam tests.
type mapStore struct {
	mu   sync.Mutex
	m    map[string][]byte
	puts atomic.Int64
}

func (s *mapStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	return v, ok
}

func (s *mapStore) Put(key string, data []byte) error {
	s.puts.Add(1)
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = cp
	return nil
}

// replicaBase accepts exactly the canonical replica spellings: any
// alias ("rep=007", "rep=+1", out-of-range K) would give one unit two
// store keys and two shard seeds.
func TestReplicaBase(t *testing.T) {
	cases := []struct {
		key     string
		repeats int
		base    string
		ok      bool
	}{
		{"seam/zoom/rep=0", 3, "seam/zoom", true},
		{"seam/zoom/rep=2", 3, "seam/zoom", true},
		{"seam/zoom/rep=3", 3, "", false},  // out of range
		{"seam/zoom/rep=-1", 3, "", false}, // negative
		{"seam/zoom/rep=007", 8, "", false},
		{"seam/zoom/rep=+1", 8, "", false},
		{"seam/zoom/rep=1x", 8, "", false},
		{"seam/zoom/rep=", 8, "", false},
		{"seam/zoom", 3, "", false},                 // no replica segment
		{"seam/rep=1/rep=1", 2, "seam/rep=1", true}, // only the last segment splits
	}
	for _, c := range cases {
		base, ok := replicaBase(c.key, c.repeats)
		if ok != c.ok || base != c.base {
			t.Errorf("replicaBase(%q, %d) = (%q, %v), want (%q, %v)",
				c.key, c.repeats, base, ok, c.base, c.ok)
		}
	}
}

// The worker half runs replica units: distinct replicas of one cell
// produce distinct bytes (independent seeds), bare cell keys are
// rejected for replicated specs, and replica keys are rejected for
// single-run specs.
func TestRunCampaignUnitReplicas(t *testing.T) {
	spec := dispatchGrid
	spec.Repeats = 2
	rep0, err := RunCampaignUnit(NewTestbed(42), spec, TinyScale, "seam/zoom/2/rep=0")
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := RunCampaignUnit(NewTestbed(42), spec, TinyScale, "seam/zoom/2/rep=1")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(rep0, rep1) {
		t.Error("two replicas of one cell computed identical bytes")
	}
	if _, err := RunCampaignUnit(NewTestbed(42), spec, TinyScale, "seam/zoom/2"); err == nil {
		t.Error("bare cell key accepted for a replicated spec")
	}
	if _, err := RunCampaignUnit(NewTestbed(42), spec, TinyScale, "seam/zoom/2/rep=2"); err == nil {
		t.Error("out-of-range replica accepted")
	}
	if _, err := RunCampaignUnit(NewTestbed(42), dispatchGrid, TinyScale, "seam/zoom/2/rep=0"); err == nil {
		t.Error("replica key accepted for a single-run spec")
	}
}
