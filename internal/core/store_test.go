package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/vcabench/vcabench/internal/platform"
	"github.com/vcabench/vcabench/internal/report"
	"github.com/vcabench/vcabench/internal/store"
)

// The tentpole acceptance criterion: a campaign run against a cold
// store, rerun from a fresh testbed ("fresh process") over the same
// directory, renders byte-identical table and JSON output while
// recomputing zero cells.
func TestStoreWarmCampaignByteIdentical(t *testing.T) {
	dir := t.TempDir()
	render := func(workers int) ([]byte, []byte, store.Stats) {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		tb := NewTestbed(42).SetParallelism(workers).WithStore(st)
		res, err := RunCampaign(tb, detCampaign(), TinyScale)
		if err != nil {
			t.Fatal(err)
		}
		var tbl, js bytes.Buffer
		res.RenderTable().Render(&tbl)
		if err := report.WriteJSON(&js, res); err != nil {
			t.Fatal(err)
		}
		if err := tb.StoreErr(); err != nil {
			t.Fatal(err)
		}
		return tbl.Bytes(), js.Bytes(), st.Stats()
	}

	coldTbl, coldJS, cold := render(1)
	warmTbl, warmJS, warm := render(4) // different worker count on purpose

	cells := uint64(len(mustKeys(t, detCampaign())))
	if cold.Hits() != 0 || cold.Puts != cells {
		t.Errorf("cold stats = %+v, want 0 hits and %d puts", cold, cells)
	}
	if warm.Misses != 0 || warm.Puts != 0 || warm.Hits() != cells {
		t.Errorf("warm stats = %+v, want %d hits, 0 misses, 0 puts (zero recompute)", warm, cells)
	}
	if !bytes.Equal(coldTbl, warmTbl) {
		t.Errorf("warm table differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", coldTbl, warmTbl)
	}
	if !bytes.Equal(coldJS, warmJS) {
		t.Errorf("warm JSON differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", coldJS, warmJS)
	}
}

// Lag studies persist too: a full figure render (CDF plots drawn from
// LagStudyResult maps of samples) survives the gob round trip.
func TestStoreWarmLagFigureByteIdentical(t *testing.T) {
	dir := t.TempDir()
	render := func() (string, store.Stats) {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		tb := NewTestbed(9).WithStore(st)
		e, ok := Lookup("fig4")
		if !ok {
			t.Fatal("fig4 missing")
		}
		var sb strings.Builder
		e.Run(tb, TinyScale, &sb)
		if err := tb.StoreErr(); err != nil {
			t.Fatal(err)
		}
		return sb.String(), st.Stats()
	}
	cold, coldStats := render()
	warm, warmStats := render()
	if coldStats.Puts != 3 { // one unit per platform
		t.Errorf("cold puts = %d, want 3", coldStats.Puts)
	}
	if warmStats.Misses != 0 || warmStats.Puts != 0 {
		t.Errorf("warm run recomputed units: %+v", warmStats)
	}
	if cold != warm {
		t.Errorf("fig4 warm render differs:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
}

func mustKeys(t *testing.T, c Campaign) []string {
	t.Helper()
	keys, err := c.UnitKeys()
	if err != nil {
		t.Fatal(err)
	}
	return keys
}

// Store keys must separate everything results depend on beyond the unit
// key: schema version aside — seed, scale (including tweaked scales
// reusing a preset name), platform overrides, and campaign context that
// single-valued axes leave out of unit keys.
func TestCellKeyScoping(t *testing.T) {
	base := NewTestbed(42)
	if a, b := base.cellKey(TinyScale, "", "k"), NewTestbed(43).cellKey(TinyScale, "", "k"); a == b {
		t.Error("different seeds share a cell key")
	}
	if a, b := base.cellKey(TinyScale, "", "k"), base.cellKey(QuickScale, "", "k"); a == b {
		t.Error("different scales share a cell key")
	}
	tweaked := TinyScale
	tweaked.QoEDur *= 2
	if a, b := base.cellKey(TinyScale, "", "k"), base.cellKey(tweaked, "", "k"); a == b {
		t.Error("a tweaked scale reusing the preset name shares a cell key")
	}
	if a, b := base.cellKey(TinyScale, "ctx1", "k"), base.cellKey(TinyScale, "ctx2", "k"); a == b {
		t.Error("different campaign salts share a cell key")
	}
	over := NewTestbed(42)
	cfg := platform.DefaultConfig(platform.Zoom)
	cfg.P2PWhenPair = false
	over.OverridePlatform(cfg)
	if a, b := base.cellKey(TinyScale, "", "k"), over.cellKey(TinyScale, "", "k"); a == b {
		t.Error("platform overrides share a cell key with stock config")
	}
	// And two same-named campaigns differing only in a single-valued
	// axis resolve to different salts (their unit keys collide).
	a := Campaign{Name: "s", Platforms: []string{"zoom"}}
	b := Campaign{Name: "s", Platforms: []string{"zoom"}, Audio: []bool{true}}
	ra, err := a.resolve()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if saltOf(ra) == saltOf(rb) {
		t.Error("campaigns differing in a single-valued axis share a salt")
	}
}

// saltOf mirrors RunCampaign's store-salt derivation.
func saltOf(rc *resolvedCampaign) string {
	return fingerprint(fmt.Sprintf("%+v", rc))
}

// A store serving undecodable bytes is a miss, not a failure: the run
// recomputes and overwrites.
type garbageStore struct{ gets, puts int }

func (g *garbageStore) Get(string) ([]byte, bool) { g.gets++; return []byte("junk"), true }
func (g *garbageStore) Put(string, []byte) error  { g.puts++; return nil }

func TestStoreGarbageToleratedAndOverwritten(t *testing.T) {
	g := &garbageStore{}
	tb := NewTestbed(3).WithStore(g)
	res, err := RunCampaign(tb, Campaign{Name: "g", Platforms: []string{"zoom"}}, TinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 || res.Cells[0].PSNR == nil {
		t.Fatalf("run with garbage store produced no result: %+v", res)
	}
	if g.gets == 0 || g.puts == 0 {
		t.Errorf("store consulted %d times, rewritten %d times; want both > 0", g.gets, g.puts)
	}
	if err := tb.StoreErr(); err != nil {
		t.Errorf("garbage reads must not surface as store errors: %v", err)
	}
}

// A failing Put never fails the run, but is reported via StoreErr.
type readOnlyStore struct{}

func (readOnlyStore) Get(string) ([]byte, bool) { return nil, false }
func (readOnlyStore) Put(string, []byte) error  { return errors.New("disk full") }

func TestStorePutFailureSurfacedNotFatal(t *testing.T) {
	tb := NewTestbed(4).WithStore(readOnlyStore{})
	if _, err := RunCampaign(tb, Campaign{Name: "ro", Platforms: []string{"zoom"}}, TinyScale); err != nil {
		t.Fatalf("read-only store failed the run: %v", err)
	}
	if err := tb.StoreErr(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Errorf("StoreErr = %v, want the Put failure", err)
	}
}
