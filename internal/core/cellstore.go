package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"github.com/vcabench/vcabench/internal/platform"
)

// This file is the persistence seam of the memoized scheduler: a
// CellStore (implemented by internal/store, or anything else that can
// hold bytes under a key) lets campaign-unit results outlive the
// process. Every unit result is deterministic in (schema version, seed,
// scale, overrides, campaign context, unit key), so that tuple IS the
// storage key: runMemoized consults the store before dispatching a unit
// and persists right after computing one, which makes warm reruns of
// whole campaigns near-instant and byte-identical to cold runs.

// CellStore persists encoded campaign-unit results across processes.
// Implementations must be safe for concurrent use; the harness treats
// Get misses and failed Puts as cache misses, never as run failures.
type CellStore interface {
	// Get returns the bytes stored under key. The returned slice is
	// treated as read-only by the caller.
	Get(key string) ([]byte, bool)
	// Put stores data under key, replacing any prior entry.
	Put(key string, data []byte) error
}

// cellSchemaVersion names the gob encoding of persisted unit results.
// Bump it whenever QoEStudyResult, LagStudyResult or any type they
// embed changes shape: old entries then miss instead of mis-decoding.
// v2: QoEStudyResult gained the RateOverTime/RateBin series.
// v3: the replication refactor — campaign salts cover the Repeats
// axis and replicated campaigns store per-replica "<cellKey>/rep=K"
// units alongside bare cell keys.
// v4: diagnostics — QoEStudyResult gained the Diag flight-recorder
// document and keys gained a bare/diag mode segment (see cellKey).
const cellSchemaVersion = 4

func init() {
	// Unit results are persisted as a gob interface value so one codec
	// covers both study types.
	gob.Register(&QoEStudyResult{})
	gob.Register(&LagStudyResult{})
}

// WithStore attaches a persistent cell store and returns tb for
// chaining. With a store attached, memoized campaign units are looked
// up before dispatch and persisted after computation; worker count and
// cache temperature never change rendered bytes, only wall-clock time.
func (tb *Testbed) WithStore(cs CellStore) *Testbed {
	tb.store = cs
	return tb
}

// StoreErr reports the first cell-persistence failure, if any.
// Persistence is an optimization — a failed Put never fails the run —
// but a silently read-only cache directory would surprise users, so
// the CLI surfaces this as a warning.
func (tb *Testbed) StoreErr() error {
	tb.memoMu.Lock()
	defer tb.memoMu.Unlock()
	return tb.storeErr
}

// fingerprint digests an arbitrary context string into a short stable
// token for store keys.
func fingerprint(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:8])
}

// scaleFingerprint names a scale in store keys. The name alone is not
// enough: a caller may run a tweaked Scale that reuses a preset's name
// (benchmarks do), and those cells must not be shared.
func scaleFingerprint(sc Scale) string {
	return sc.Name + "-" + fingerprint(fmt.Sprintf("%+v", sc))
}

// overridesFingerprint captures the platform overrides that Fork copies
// into every unit's testbed. Overrides change results under unchanged
// unit keys (the ablation mechanism), so they must key the store too.
func (tb *Testbed) overridesFingerprint() string {
	if len(tb.overrides) == 0 {
		return "stock"
	}
	kinds := make([]string, 0, len(tb.overrides))
	for k := range tb.overrides {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	var sb strings.Builder
	for _, k := range kinds {
		fmt.Fprintf(&sb, "%s=%+v;", k, tb.overrides[platform.Kind(k)])
	}
	return fingerprint(sb.String())
}

// cellKey composes the full persisted-cell key. salt carries campaign
// context the unit key omits (single-valued axes never make it into
// keys — see Campaign); "" means the key is already self-contained,
// as lag-study keys are. The mode segment splits diagnostics-armed
// cells from bare ones: their stored values differ (Diag document
// attached or not), so a cache warmed one way must never satisfy the
// other.
func (tb *Testbed) cellKey(sc Scale, salt, unitKey string) string {
	if salt == "" {
		salt = "-"
	}
	mode := "bare"
	if tb.diag {
		mode = "diag"
	}
	return fmt.Sprintf("v%d/%s/seed%d/%s/%s/%s/%s",
		cellSchemaVersion, mode, tb.seed, scaleFingerprint(sc), tb.overridesFingerprint(), salt, unitKey)
}

// encodeCell serializes one unit result. Encoding happens immediately
// after the unit computes, before any renderer sorts the result's
// samples in place: the stored observation order must match what a
// cold run's renderer sees, or warm reruns drift in the last ulp.
func encodeCell(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeCell(data []byte) (any, error) {
	var v any
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v); err != nil {
		return nil, err
	}
	return v, nil
}

// storeGet fetches and decodes one unit result; any failure is a miss.
func (tb *Testbed) storeGet(sc Scale, salt, unitKey string) (any, bool) {
	if tb.store == nil {
		return nil, false
	}
	data, ok := tb.store.Get(tb.cellKey(sc, salt, unitKey))
	if !ok {
		return nil, false
	}
	v, err := decodeCell(data)
	if err != nil {
		// Undecodable bytes (foreign content, or corruption that got
		// past the store's own checks) mean recompute-and-overwrite,
		// never a failed run.
		return nil, false
	}
	return v, true
}

// storePut persists one freshly computed unit result, recording (not
// raising) the first failure.
func (tb *Testbed) storePut(sc Scale, salt, unitKey string, v any) {
	if tb.store == nil {
		return
	}
	data, err := encodeCell(v)
	if err == nil {
		err = tb.store.Put(tb.cellKey(sc, salt, unitKey), data)
	}
	if err != nil {
		tb.memoMu.Lock()
		if tb.storeErr == nil {
			tb.storeErr = err
		}
		tb.memoMu.Unlock()
	}
}
