package core

import (
	"fmt"
	"strconv"
	"strings"
)

// This file is the dispatch seam of the campaign engine — the
// coordinator half of distributed execution. The paper's campaigns are
// embarrassingly parallel (the authors fanned real measurements across
// many client machines), and every cell's seed derives from its
// canonical unit key, so a cell computes to the same bytes on any
// machine. A Dispatcher (implemented by internal/cluster.Pool over
// vcabenchd's POST /units endpoint) exploits that: runMemoized hands it
// the units that neither the memo table nor the cell store holds, and
// any unit the fleet cannot serve — a dead worker, a timeout, an
// undecodable response — transparently falls back to local execution.
// Placement can never leak into results: the merged CampaignResult is
// byte-identical to a single-machine run for any fleet size, worker
// mix or failure pattern.

// UnitRequest identifies one campaign cell for out-of-process
// execution: the declarative spec it belongs to, a preset scale name,
// the campaign's base seed and the cell's canonical unit key. The
// executing side derives everything else (the cell's coordinates, its
// shard seed, its store key) exactly as a local run would.
type UnitRequest struct {
	Spec  Campaign `json:"spec"`
	Scale string   `json:"scale"`
	Seed  int64    `json:"seed"`
	Key   string   `json:"key"`
	// Diag asks the worker to arm the flight recorder for this unit, so
	// the returned cell carries the same Diag document a local
	// diagnostics-armed run would compute.
	Diag bool `json:"diag,omitempty"`
}

// Dispatcher executes campaign units out of process. DispatchUnit
// returns the cell's canonical encoding — the same bytes
// RunCampaignUnit produces and the cell store persists. Any error is
// treated as "compute locally", never as a failed campaign, so
// implementations should exhaust their own retries first.
// Implementations must be safe for concurrent use: the scheduler
// dispatches every missing unit of a campaign at once.
type Dispatcher interface {
	DispatchUnit(req UnitRequest) ([]byte, error)
}

// WithDispatcher attaches a unit dispatcher and returns tb for
// chaining. Dispatch applies only to campaign cells (RunCampaign and
// the campaign-backed experiments); lag studies and ablation runs with
// platform overrides always compute in-process. Fleet topology and
// failures never change rendered bytes, only wall-clock time.
func (tb *Testbed) WithDispatcher(d Dispatcher) *Testbed {
	tb.dispatcher = d
	return tb
}

// remoteRunner builds the remote-execution closure runMemoized fans
// missing units through, or nil when this run must stay local: no
// dispatcher attached; platform overrides in effect (ablations exist
// only in this process, a remote worker would compute stock platforms);
// or a tweaked scale that merely reuses a preset's name (a UnitRequest
// carries scales by name, so shipping it would silently change the
// workload).
func (tb *Testbed) remoteRunner(spec Campaign, sc Scale) func(key string) (any, bool) {
	if tb.dispatcher == nil || len(tb.overrides) > 0 {
		return nil
	}
	if preset, ok := ScaleByName(sc.Name); !ok || preset != sc {
		return nil
	}
	d := tb.dispatcher
	seed := tb.seed
	return func(key string) (any, bool) {
		data, err := d.DispatchUnit(UnitRequest{Spec: spec, Scale: sc.Name, Seed: seed, Key: key, Diag: tb.diag})
		if err != nil {
			return nil, false
		}
		v, err := decodeCell(data)
		if err != nil {
			// A worker that returns undecodable bytes is as good as a
			// dead one: recompute locally, never fail the campaign.
			return nil, false
		}
		return v, true
	}
}

// replicaBase splits a replica unit key into its cell key, requiring
// the canonical form "<cellKey>/rep=K" with K in [0, repeats) and no
// leading zeros or signs — a non-canonical spelling ("rep=007",
// "rep=+1") must not alias a canonical unit, because the key derives
// the shard seed and names the store entry. ok is false when the key
// carries no well-formed replica segment for the given factor.
func replicaBase(key string, repeats int) (base string, ok bool) {
	i := strings.LastIndex(key, "/rep=")
	if i < 0 {
		return "", false
	}
	num := key[i+len("/rep="):]
	k, err := strconv.Atoi(num)
	if err != nil || strconv.Itoa(k) != num || k < 0 || k >= repeats {
		return "", false
	}
	return key[:i], true
}

// RunCampaignUnit executes exactly one unit of a campaign spec — a
// cell, or one "<cellKey>/rep=K" replica of a replicated campaign —
// and returns its canonical encoding: the worker half of distributed
// execution, behind vcabenchd's POST /units endpoint. The unit runs on
// a fork seeded from (tb seed, key) exactly as a local campaign run
// would, so the returned bytes decode to the same value a
// single-machine run computes. When tb carries a store, the unit is
// looked up before computing and persisted after, sharing the worker's
// cache with its own campaigns and with repeated unit requests.
//
// Pass a fresh Testbed per call: the memo table is deliberately not
// consulted, because renderers sort memoized samples in place and a
// post-render encoding would drift from what a cold run persists.
func RunCampaignUnit(tb *Testbed, spec Campaign, sc Scale, key string) ([]byte, error) {
	rc, err := spec.resolve()
	if err != nil {
		return nil, err
	}
	// A replicated campaign schedules only replica keys, a single-run
	// campaign only bare cell keys; the two key shapes never mix for
	// one spec, so the replica segment is required exactly when
	// repeats > 1.
	cellKey := key
	if rc.repeats > 1 {
		base, ok := replicaBase(key, rc.repeats)
		if !ok {
			return nil, fmt.Errorf("core: campaign %q (repeats=%d) has no unit %q", rc.name, rc.repeats, key)
		}
		cellKey = base
	}
	cells := rc.cells()
	var cell *campaignCell
	for i := range cells {
		if cells[i].key == cellKey {
			cell = &cells[i]
			break
		}
	}
	if cell == nil {
		return nil, fmt.Errorf("core: campaign %q has no cell %q", rc.name, key)
	}
	salt := rc.salt()
	if v, ok := tb.storeGet(sc, salt, key); ok {
		// Gob encoding is deterministic, so re-encoding the decoded
		// value reproduces the stored bytes exactly.
		return encodeCell(v)
	}
	var v any = runCell(tb.Fork(key), *cell, sc)
	data, err := encodeCell(v)
	if err != nil {
		return nil, fmt.Errorf("core: encode cell %q: %w", key, err)
	}
	tb.storePut(sc, salt, key, v)
	return data, nil
}
