package core

import "fmt"

// serveCellSchemaVersion versions the daemon's rendered cell-JSON
// framing, independent of cellSchemaVersion (the gob framing of
// core's own cells). Bump it whenever the rendered cell shape
// changes.
// v2: CellResult gained the trace label and rate_over_time series.
// v3: replicated campaigns — CellResult gained the replicas block and
// metrics gained reps/stderr/ci95 fields; campaign results gained the
// repeats count.
const serveCellSchemaVersion = 3

// ServeCellKey names a rendered cell-JSON document in the persistent
// store, so a daemon's /cells lookups survive restarts and MaxJobs
// eviction. The "servecell" prefix keeps these documents disjoint
// from core's gob-encoded cells ("v<N>/seed..."). This is the one
// canonical constructor for that namespace; assembling "servecell/"
// keys anywhere else is a vcalint storekey violation.
func ServeCellKey(scaleName string, seed int64, unitKey string) string {
	return fmt.Sprintf("servecell/v%d/%s/%d/%s", serveCellSchemaVersion, scaleName, seed, unitKey)
}
