package core

import "fmt"

// serveCellSchemaVersion versions the daemon's rendered cell-JSON
// framing, independent of cellSchemaVersion (the gob framing of
// core's own cells). Bump it whenever the rendered cell shape
// changes.
// v2: CellResult gained the trace label and rate_over_time series.
// v3: replicated campaigns — CellResult gained the replicas block and
// metrics gained reps/stderr/ci95 fields; campaign results gained the
// repeats count.
// v4: diagnostics — diagnostics-armed daemons surface drop causes
// (drops_queue/drops_random) in cell JSON.
const serveCellSchemaVersion = 4

// ServeCellKey names a rendered cell-JSON document in the persistent
// store, so a daemon's /cells lookups survive restarts and MaxJobs
// eviction. The "servecell" prefix keeps these documents disjoint
// from core's gob-encoded cells ("v<N>/seed..."). This is the one
// canonical constructor for that namespace; assembling "servecell/"
// keys anywhere else is a vcalint storekey violation.
func ServeCellKey(scaleName string, seed int64, unitKey string) string {
	return fmt.Sprintf("servecell/v%d/%s/%d/%s", serveCellSchemaVersion, scaleName, seed, unitKey)
}

// serveDiagSchemaVersion versions the daemon's persisted diagnostics
// artifacts independently: the document carries its own schema version
// (diag.Version), so this only needs to move when the key framing
// itself changes.
const serveDiagSchemaVersion = 1

// ServeDiagKey names a cell's rendered diagnostics artifact in the
// persistent store — the document behind GET /cells/{key}/diag. Like
// ServeCellKey, this is the one canonical constructor for the
// "servediag/" namespace; assembling such keys anywhere else is a
// vcalint storekey violation.
func ServeDiagKey(scaleName string, seed int64, unitKey string) string {
	return fmt.Sprintf("servediag/v%d/%s/%d/%s", serveDiagSchemaVersion, scaleName, seed, unitKey)
}
