package core

import (
	"encoding/json"
	"testing"
)

// FuzzParseCampaign feeds arbitrary bytes to the campaign-spec parser:
// it must never panic, and every spec it accepts must expand to keys
// that are stable under re-parse — the canonical-key contract the memo
// table, store keys and distributed merge all build on.
func FuzzParseCampaign(f *testing.F) {
	f.Add([]byte(`{"name": "x"}`))
	f.Add([]byte(`{"name": "p", "platforms": ["zoom"], "sizes": [2, 4], "caps_bps": [0, 750000]}`))
	f.Add([]byte(`{"name": "g", "geometries": [{"host": "US-East", "receivers": ["FR", "DE"]}], "audio": [true, false]}`))
	f.Add([]byte(`{"name": "n", "netem": [{"name": "a"}, {"name": "b", "loss_pct": 1.5}]}`))
	f.Add([]byte(`{"name": "f", "netem": [{"name": "w", "fluct_hi_bps": 1500000, "fluct_lo_bps": 300000, "fluct_period_sec": 4}]}`))
	f.Add([]byte(`{"name": "t", "traces": [{"name": "dip", "square": {"high_bps": 0, "low_bps": 250000, "high_sec": 2, "low_sec": 4, "once": true}}]}`))
	f.Add([]byte(`{"name": "t2", "traces": [{"name": "st", "steps": [{"at_sec": 0, "down_cap_bps": 1000000}, {"at_sec": 3, "loss_pct": 5}], "repeat_sec": 6}]}`))
	f.Add([]byte(`{"name": "t3", "traces": [{"name": "sw", "sawtooth": {"top_bps": 1000000, "bottom_bps": 100000, "steps": 4, "period_sec": 8}}, {"name": "sd", "step_down": {"levels_bps": [1000000, 500000], "dwell_sec": 2}}]}`))
	f.Add([]byte(`{"name": "o", "traces": [{"name": "t", "steps": [{"at_sec": 1e10, "down_cap_bps": 1000}]}]}`))
	f.Add([]byte(`{"name": "a/b"}`))
	f.Add([]byte(`{"name": "x", "sizes": [1]}`))
	f.Add([]byte(`{"name": ""}`))
	f.Add([]byte(`{"name": "x"}{"name": "y"}`))
	f.Add([]byte(`{"name": "r", "platforms": ["zoom", "meet"], "repeats": 3}`))
	f.Add([]byte(`{"name": "r1", "repeats": 1}`))
	f.Add([]byte(`{"name": "r-", "repeats": -1}`))
	f.Add([]byte(`{"name": "rbig", "repeats": 999999999}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseCampaign(data)
		if err != nil {
			return
		}
		keys, err := spec.UnitKeys()
		if err != nil {
			t.Fatalf("accepted spec fails to expand: %v\nspec: %+v", err, spec)
		}
		seen := make(map[string]bool, len(keys))
		for _, k := range keys {
			if seen[k] {
				t.Fatalf("accepted spec expands duplicate key %q", k)
			}
			seen[k] = true
		}
		// Canonical keys must survive a marshal/re-parse round trip.
		enc, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		back, err := ParseCampaign(enc)
		if err != nil {
			t.Fatalf("re-parse of accepted spec rejected: %v\n%s", err, enc)
		}
		keys2, err := back.UnitKeys()
		if err != nil {
			t.Fatalf("re-parsed spec fails to expand: %v", err)
		}
		if len(keys) != len(keys2) {
			t.Fatalf("key count drifted across re-parse: %d vs %d", len(keys), len(keys2))
		}
		for i := range keys {
			if keys[i] != keys2[i] {
				t.Fatalf("key %d drifted across re-parse: %q vs %q", i, keys[i], keys2[i])
			}
		}
	})
}
