// Package core is the paper's primary contribution rebuilt as a library:
// the controlled, reproducible benchmarking harness of §3. It provisions
// the vantage-point fleet (Table 3), coordinates sessions across the
// platform models, and implements one experiment runner per table and
// figure of the evaluation (§4-§5). The QoE sweeps (Figs 12-18, Table 1
// and the §6 extensions) are declared as Campaign grids and executed by
// the campaign-matrix engine in campaign.go; Experiments() in
// experiments.go remains the index of every rendered artifact (see also
// DESIGN.md).
package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/vcabench/vcabench/internal/capture"
	"github.com/vcabench/vcabench/internal/client"
	"github.com/vcabench/vcabench/internal/diag"
	"github.com/vcabench/vcabench/internal/geo"
	"github.com/vcabench/vcabench/internal/media"
	"github.com/vcabench/vcabench/internal/obs"
	"github.com/vcabench/vcabench/internal/platform"
	"github.com/vcabench/vcabench/internal/simnet"
)

// Testbed couples the simulated network with the platforms under test —
// the stand-in for the paper's Azure subscription.
type Testbed struct {
	Sim  *simnet.Sim
	Net  *simnet.Network
	seed int64

	platforms map[platform.Kind]*platform.Platform
	overrides map[platform.Kind]platform.Config
	nameSeq   int

	// parallelism is the campaign worker count (see scheduler.go).
	parallelism int

	// memo caches campaign-unit results shared between experiments.
	// Today runMemoized only touches it from the caller's goroutine
	// (before dispatch and after the pool drains); the lock keeps the
	// table safe if experiment drivers ever run concurrently.
	memoMu sync.Mutex
	memo   map[string]any
	// campaigns pins each campaign name run on this testbed to one
	// resolved-spec fingerprint (see RunCampaign). Guarded by memoMu.
	campaigns map[string]string

	// store, when set via WithStore, persists memoized unit results
	// across processes; storeErr records the first failed persist
	// (guarded by memoMu). See cellstore.go.
	store    CellStore
	storeErr error

	// dispatcher, when set via WithDispatcher, offloads campaign cells
	// to a worker fleet; nil means every unit computes in-process. See
	// dispatch.go.
	dispatcher Dispatcher

	// tel, when set via WithTelemetry, receives metrics and spans from
	// the scheduler; em caches its engine instruments. Both nil means
	// unobserved — every hook is a no-op. See telemetry.go.
	tel *obs.Telemetry
	em  *engineMetrics

	// diag arms the sim-time flight recorder (see diagnostics.go):
	// diagRec is this testbed's own recorder (per campaign unit on
	// forks), diagDocs the root testbed's harvest of finalized
	// documents, keyed by unit key and guarded by memoMu.
	diag     bool
	diagRec  *diag.Recorder
	diagDocs map[string]*diag.CellDiag
}

// registerCampaign records (or re-checks) the fingerprint of a named
// campaign, rejecting a rerun under the same name with a different
// resolved spec — such a rerun would share unit keys, and therefore
// memo entries and shard seeds, with semantically different cells.
func (tb *Testbed) registerCampaign(name, fingerprint string) error {
	tb.memoMu.Lock()
	defer tb.memoMu.Unlock()
	if tb.campaigns == nil {
		tb.campaigns = make(map[string]string)
	}
	if prev, ok := tb.campaigns[name]; ok && prev != fingerprint {
		return fmt.Errorf("core: campaign %q already ran on this testbed with a different spec or scale; reuse the spec or pick a new name", name)
	}
	tb.campaigns[name] = fingerprint
	return nil
}

// NewTestbed creates a testbed seeded for reproducibility. The core
// network carries mild distance-dependent loss (~0.2% per 100 ms of
// one-way propagation), which is what makes cross-continental relay
// detours cost quality and not just latency (the mechanism behind
// Meet's European QoE edge in Fig 16).
func NewTestbed(seed int64) *Testbed {
	sim := simnet.NewSim(seed)
	return &Testbed{
		Sim:         sim,
		Net:         simnet.NewNetwork(sim, simnet.NetworkConfig{DistLossPer100ms: 0.002}),
		seed:        seed,
		platforms:   make(map[platform.Kind]*platform.Platform),
		overrides:   make(map[platform.Kind]platform.Config),
		parallelism: runtime.GOMAXPROCS(0),
	}
}

// Seed returns the base seed the testbed (and every fork's shard seed)
// derives from.
func (tb *Testbed) Seed() int64 { return tb.seed }

// OverridePlatform replaces a platform's configuration before first use
// (paid-tier and ablation experiments).
func (tb *Testbed) OverridePlatform(cfg platform.Config) {
	if _, used := tb.platforms[cfg.Kind]; used {
		panic("core: OverridePlatform after the platform was instantiated")
	}
	tb.overrides[cfg.Kind] = cfg
}

// Platform returns (instantiating on first use) the given service.
func (tb *Testbed) Platform(k platform.Kind) *platform.Platform {
	if p, ok := tb.platforms[k]; ok {
		return p
	}
	var p *platform.Platform
	if cfg, ok := tb.overrides[k]; ok {
		p = platform.NewWithConfig(cfg, tb.Net)
	} else {
		p = platform.New(k, tb.Net)
	}
	if tb.diagRec != nil {
		p.SetRateProbe(tb.rateProbe(string(k)))
	}
	tb.platforms[k] = p
	return p
}

// Resolver maps any platform endpoint to its service IP and everything
// else to the default hash addressing.
func (tb *Testbed) Resolver() client.Resolver {
	return func(node string) (capture.IPv4, bool) {
		for _, p := range tb.platforms {
			if ip, ok := p.Resolve(node); ok {
				return ip, true
			}
		}
		return capture.IPv4{}, false
	}
}

// uniqueName produces a collision-free node name.
func (tb *Testbed) uniqueName(prefix string) string {
	tb.nameSeq++
	return fmt.Sprintf("%s-%d", prefix, tb.nameSeq)
}

// Scale sets experiment cost. Paper scale reproduces the full campaign;
// Quick preserves every relative result at a fraction of the compute;
// Tiny is for unit tests.
type Scale struct {
	Name string
	// Lag studies (Figs 2-11).
	LagSessions      int
	LagDur           time.Duration
	ProbesPerSession int
	// QoE studies (Figs 12-18).
	QoESessions int
	QoEDur      time.Duration
	QoEStride   int // score every k-th frame
	// Media profile for generated feeds.
	Profile media.Profile
}

// Predefined scales.
var (
	PaperScale = Scale{
		Name:        "paper",
		LagSessions: 20, LagDur: 2 * time.Minute, ProbesPerSession: 100,
		QoESessions: 5, QoEDur: 5 * time.Minute, QoEStride: 10,
		Profile: media.PaperProfile,
	}
	QuickScale = Scale{
		Name:        "quick",
		LagSessions: 4, LagDur: 25 * time.Second, ProbesPerSession: 12,
		QoESessions: 2, QoEDur: 12 * time.Second, QoEStride: 4,
		Profile: media.QuickProfile,
	}
	TinyScale = Scale{
		Name:        "tiny",
		LagSessions: 2, LagDur: 12 * time.Second, ProbesPerSession: 5,
		QoESessions: 1, QoEDur: 8 * time.Second, QoEStride: 5,
		Profile: media.QuickProfile,
	}
)

// ScaleByName maps a predefined scale's name ("tiny", "quick",
// "paper") to the scale, for CLI flags and service requests.
func ScaleByName(name string) (Scale, bool) {
	for _, sc := range []Scale{TinyScale, QuickScale, PaperScale} {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scale{}, false
}

// USLagFleet returns the six non-host US vantage points for a given host
// (Table 3: seven VMs, the host plus six participants).
func USLagFleet(host geo.Region) []geo.Region {
	var out []geo.Region
	for _, r := range geo.USRegions {
		if r.Name != host.Name {
			out = append(out, r)
		}
	}
	return out
}

// EULagFleet is the European counterpart.
func EULagFleet(host geo.Region) []geo.Region {
	var out []geo.Region
	for _, r := range geo.EURegions {
		if r.Name != host.Name {
			out = append(out, r)
		}
	}
	return out
}

// QoEReceiverRegions returns the paper's §4.3 receiver mix: for the US
// study, VMs in US-East and US-West; for Europe, the §4.3.2 set.
func QoEReceiverRegions(zone geo.Zone, n int) []geo.Region {
	var pool []geo.Region
	if zone == geo.ZoneUS {
		pool = []geo.Region{geo.USWest, geo.USEast2, geo.USWest2, geo.USEast, geo.USCentral}
	} else {
		pool = []geo.Region{geo.FR, geo.DE, geo.IE, geo.UKSouth, geo.UKWest}
	}
	out := make([]geo.Region, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, pool[i%len(pool)])
	}
	return out
}
