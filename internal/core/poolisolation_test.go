package core

import (
	"fmt"
	"sync"
	"testing"

	"github.com/vcabench/vcabench/internal/geo"
	"github.com/vcabench/vcabench/internal/simnet"
)

// TestForkedTestbedPoolIsolation proves pooled objects never cross
// forked testbeds. Four forks churn their packet/event pools
// concurrently while every pooled packet observed at delivery is
// recorded in a shared ownership map: a pool leak between forks would
// surface the same pointer under two fork keys (and, independently, as
// a data race under -race, since each fork's pool is unsynchronized by
// design — single-owner determinism is the whole point of not using
// sync.Pool). The encoder-side media.FramePool needs no cross-fork
// check beyond this: it is owned by one encoder, which is owned by one
// client, which lives inside exactly one fork.
func TestForkedTestbedPoolIsolation(t *testing.T) {
	tb := NewTestbed(42)
	var (
		mu    sync.Mutex
		owner = make(map[*simnet.Packet]string)
	)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		key := fmt.Sprintf("pool-iso/%d", w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			stb := tb.Fork(key)
			a := stb.Net.AddNode(simnet.NodeConfig{Name: "a", Region: geo.USEast})
			b := stb.Net.AddNode(simnet.NodeConfig{Name: "b", Region: geo.USEast2})
			b.Bind(5, func(p *simnet.Packet) {
				mu.Lock()
				if prev, ok := owner[p]; ok && prev != key {
					t.Errorf("pooled packet %p seen in fork %s and fork %s", p, prev, key)
				}
				owner[p] = key
				mu.Unlock()
			})
			for i := 0; i < 500; i++ {
				pkt := stb.Net.NewPacket()
				pkt.To = simnet.Addr{Node: "b", Port: 5}
				pkt.Size = 100 + i%700
				if err := a.Send(pkt); err != nil {
					t.Error(err)
					return
				}
				stb.Sim.Run()
			}
		}()
	}
	wg.Wait()
	if len(owner) == 0 {
		t.Fatal("no pooled packets observed")
	}
}
