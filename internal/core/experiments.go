package core

import (
	"fmt"
	"io"
	"time"

	"github.com/vcabench/vcabench/internal/client"
	"github.com/vcabench/vcabench/internal/geo"
	"github.com/vcabench/vcabench/internal/media"
	"github.com/vcabench/vcabench/internal/mobile"
	"github.com/vcabench/vcabench/internal/platform"
	"github.com/vcabench/vcabench/internal/report"
	"github.com/vcabench/vcabench/internal/trace"
)

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Paper string // the shape the paper reports, for EXPERIMENTS.md
	Run   func(tb *Testbed, sc Scale, w io.Writer)
}

// memo caches sweep results when several experiments share one campaign
// (fig12/fig14/fig15 all come from the §4.3 US sweep).
func (tb *Testbed) memoGet(key string) (any, bool) {
	tb.memoMu.Lock()
	defer tb.memoMu.Unlock()
	if tb.memo == nil {
		return nil, false
	}
	v, ok := tb.memo[key]
	return v, ok
}

func (tb *Testbed) memoPut(key string, v any) {
	tb.memoMu.Lock()
	defer tb.memoMu.Unlock()
	if tb.memo == nil {
		tb.memo = make(map[string]any)
	}
	tb.memo[key] = v
}

// lagKey canonically names one (scenario, platform) lag campaign unit.
func lagKey(sce LagScenario, kind platform.Kind) string {
	return "lag/" + sce.ID + "/" + string(kind)
}

// lagStudy memoizes RunLagStudy per (scenario, platform), each unit on
// its own fork so the result depends only on (seed, scenario, platform)
// and never on what ran before it.
func lagStudy(tb *Testbed, sc Scale, sce LagScenario, kind platform.Kind) *LagStudyResult {
	res := tb.runMemoized(sc, "", []string{lagKey(sce, kind)}, nil, func(stb *Testbed, _ int) any {
		return RunLagStudy(stb, kind, sce.Host, sce.Fleet, sc)
	}, nil)
	return res[0].(*LagStudyResult)
}

// lagStudyAll runs one scenario's full platform sweep — the campaign
// behind each of Figs 4-11 — with the three platform units in parallel.
func lagStudyAll(tb *Testbed, sc Scale, sce LagScenario) map[platform.Kind]*LagStudyResult {
	keys := make([]string, len(platform.Kinds))
	for i, k := range platform.Kinds {
		keys[i] = lagKey(sce, k)
	}
	res := tb.runMemoized(sc, "", keys, nil, func(stb *Testbed, i int) any {
		return RunLagStudy(stb, platform.Kinds[i], sce.Host, sce.Fleet, sc)
	}, nil)
	out := make(map[platform.Kind]*LagStudyResult, len(res))
	for i, k := range platform.Kinds {
		out[k] = res[i].(*LagStudyResult)
	}
	return out
}

// lagFigure renders one of Figs 4-7.
func lagFigure(sce LagScenario) func(tb *Testbed, sc Scale, w io.Writer) {
	return func(tb *Testbed, sc Scale, w io.Writer) {
		studies := lagStudyAll(tb, sc, sce)
		for _, kind := range platform.Kinds {
			r := studies[kind]
			plot := report.CDFPlot{
				Title:  fmt.Sprintf("%s: streaming lag CDF, host %s, %s", sce.ID, sce.Host.Name, kind),
				XLabel: "video lag (ms)",
			}
			for _, reg := range sce.Fleet {
				plot.Add(reg.Name, r.Lags[reg.Name].Values())
			}
			plot.Render(w)
			fmt.Fprintln(w)
		}
	}
}

// rttFigure renders one of Figs 8-11 (service proximity).
func rttFigure(sce LagScenario, figID string) func(tb *Testbed, sc Scale, w io.Writer) {
	return func(tb *Testbed, sc Scale, w io.Writer) {
		studies := lagStudyAll(tb, sc, sce)
		for _, kind := range platform.Kinds {
			r := studies[kind]
			t := report.Table{
				Title:  fmt.Sprintf("%s: RTT to service endpoints, host %s, %s", figID, sce.Host.Name, kind),
				Header: []string{"client", "sessions", "min ms", "median ms", "max ms"},
			}
			regions := append([]geo.Region{sce.Host}, sce.Fleet...)
			for _, reg := range regions {
				s := r.RTTs[reg.Name]
				if s == nil || s.Len() == 0 {
					t.AddRow(reg.Name, 0, "-", "-", "-")
					continue
				}
				t.AddRow(reg.Name, s.Len(), s.Min(), s.Median(), s.Max())
			}
			t.Render(w)
			fmt.Fprintln(w)
		}
	}
}

// usSweepCampaign declares the §4.3.1 US sweep behind figs 12/14/15:
// 3 platforms × 2 motion classes × 5 sizes = 30 cells whose keys keep
// the historical "fig12/<platform>/<motion>/<n>" form, so the three
// figures share every memoized unit.
func usSweepCampaign() Campaign {
	return Campaign{
		Name:       "fig12",
		Geometries: []Geometry{{Host: geo.USEast.Name, Zone: string(geo.ZoneUS)}},
		Motions:    []string{media.LowMotion.String(), media.HighMotion.String()},
		Sizes:      sessionSizes(),
	}
}

// pairCampaign is the one-receiver geometry shared by Table 1 and the
// cap sweeps: a US-East host streaming to US-East2.
func pairCampaign(name string) Campaign {
	return Campaign{
		Name:       name,
		Geometries: []Geometry{{Host: geo.USEast.Name, Receivers: []string{geo.USEast2.Name}}},
		Motions:    []string{media.HighMotion.String()},
	}
}

// fig13Campaign declares the paper's §4.4 disturbance scenario as a
// trace-driven campaign: each session's downlink starts uncapped,
// drops to 0.5 Mbps for the middle half of the session, then recovers
// — scaled to the session length so every Scale sees the same shape.
// The cell's rate-over-time series is the figure.
func fig13Campaign(sc Scale) Campaign {
	spec := pairCampaign("fig13")
	quarter := sc.QoEDur.Seconds() / 4
	spec.Traces = []trace.Spec{{
		Name: "dip500k",
		Square: &trace.SquareSpec{
			HighBps: 0, LowBps: 500_000,
			HighSec: quarter, LowSec: 2 * quarter,
			Once: true,
		},
	}}
	return spec
}

// capsList copies the Fig 17/18 cap axis for a campaign spec.
func capsList() []int64 { return append([]int64(nil), BandwidthCaps...) }

// sessionSizes is the paper's Figs 12-16 session-size axis.
func sessionSizes() []int { return []int{2, 3, 4, 5, 6} }

func qoeTable(w io.Writer, title string, res *CampaignResult, motion media.MotionClass, metric func(*CellResult) float64) {
	t := report.Table{
		Title:  title,
		Header: []string{"N"},
	}
	for _, k := range platform.Kinds {
		t.Header = append(t.Header, string(k))
	}
	for _, n := range sessionSizes() {
		row := []any{n}
		for _, k := range platform.Kinds {
			row = append(row, metric(res.mustCell(fmt.Sprintf("fig12/%s/%s/%d", k, motion, n))))
		}
		t.AddRow(row...)
	}
	t.Render(w)
	fmt.Fprintln(w)
}

// Experiments returns every paper artifact in presentation order.
func Experiments() []Experiment {
	sces := LagScenarios()
	exps := []Experiment{
		{
			ID:    "table1",
			Title: "Minimum bandwidth requirements vs measured one-on-one rates",
			Paper: "Zoom 600k; Webex 0.5-2.5M; Meet 1-2.6M",
			Run: func(tb *Testbed, sc Scale, w io.Writer) {
				vendorMin := map[platform.Kind][2]string{
					platform.Zoom:  {"600 Kbps", "-"},
					platform.Webex: {"500 Kbps", "2.5 Mbps"},
					platform.Meet:  {"1 Mbps", "2.6 Mbps"},
				}
				t := report.Table{
					Title:  "Table 1: one-on-one calls",
					Header: []string{"platform", "vendor low", "vendor high", "measured down Mbps", "measured up Mbps"},
				}
				res := mustRunCampaign(tb, pairCampaign("table1"), sc)
				for _, kind := range platform.Kinds {
					c := res.mustCell("table1/" + string(kind))
					t.AddRow(string(kind), vendorMin[kind][0], vendorMin[kind][1],
						c.DownMbps.Mean, c.UpMbps.Mean)
				}
				t.Render(w)
			},
		},
		{
			ID:    "table2",
			Title: "Android device characteristics",
			Paper: "J3: Android 8, quad-core, 2GB, 720x1280; S10: Android 11, octa-core, 8GB, 1440x3040",
			Run: func(tb *Testbed, sc Scale, w io.Writer) {
				t := report.Table{
					Title:  "Table 2: devices",
					Header: []string{"name", "android", "cores", "memory GB", "screen", "battery mAh"},
				}
				for _, d := range mobile.Devices {
					t.AddRow(d.Name, d.AndroidVersion, d.Cores, d.MemoryGB,
						fmt.Sprintf("%dx%d", d.ScreenW, d.ScreenH), d.BatterymAh)
				}
				t.Render(w)
			},
		},
		{
			ID:    "table3",
			Title: "VM locations and counts for streaming lag testing",
			Paper: "7 US VMs (5 regions) + 7 EU VMs (7 regions)",
			Run: func(tb *Testbed, sc Scale, w io.Writer) {
				t := report.Table{
					Title:  "Table 3: vantage points",
					Header: []string{"zone", "name", "location"},
				}
				for _, r := range geo.USRegions {
					t.AddRow("US", r.Name, r.Location)
				}
				for _, r := range geo.EURegions {
					t.AddRow("Europe", r.Name, r.Location)
				}
				t.Render(w)
			},
		},
		{
			ID:    "fig2",
			Title: "Video lag measurement: packet-size scatter",
			Paper: "periodic spikes of >200B packets every 2s; receiver copy shifted by the lag",
			Run: func(tb *Testbed, sc Scale, w io.Writer) {
				r := lagStudy(tb, sc, sces[0], platform.Zoom)
				t := report.Table{
					Title:  "fig2: first flashes (zoom, host US-East)",
					Header: []string{"side", "t (ms)", "bytes"},
				}
				emit := func(side string, ts []time.Duration, ss []int) {
					big := 0
					for i := range ts {
						if ss[i] > 200 {
							t.AddRow(side, float64(ts[i])/float64(time.Millisecond), ss[i])
							big++
							if big >= 8 {
								return
							}
						}
					}
				}
				emit("sent", r.Fig2.SentT, r.Fig2.SentS)
				emit("received", r.Fig2.RecvT, r.Fig2.RecvS)
				t.Render(w)
			},
		},
		{
			ID:    "fig3",
			Title: "Service endpoint architecture and churn",
			Paper: "endpoints per client over 20 sessions: Zoom 20, Webex 19.5, Meet 1.8",
			Run: func(tb *Testbed, sc Scale, w io.Writer) {
				t := report.Table{
					Title:  "fig3: endpoint discovery (host US-East)",
					Header: []string{"platform", "sessions", "distinct endpoints", "per session", "topology"},
				}
				topo := map[platform.Kind]string{
					platform.Zoom:  "single endpoint per session (P2P when N=2)",
					platform.Webex: "single endpoint per session",
					platform.Meet:  "per-client endpoints, cross-relay",
				}
				studies := lagStudyAll(tb, sc, sces[0])
				for _, kind := range platform.Kinds {
					r := studies[kind]
					t.AddRow(string(kind), r.Endpoints.Sessions, r.Endpoints.Total,
						r.Endpoints.PerSession, topo[kind])
				}
				t.Render(w)
			},
		},
		{ID: "fig4", Title: "Streaming lag CDF: host US-East", Paper: "US lag 20-50ms Zoom / 10-70 Webex / 40-70 Meet; farther from US-East = worse", Run: lagFigure(sces[0])},
		{ID: "fig5", Title: "Streaming lag CDF: host US-West", Paper: "Webex detours via US-East: distributions shift ~30ms; worst lag for the other US-West client", Run: lagFigure(sces[1])},
		{ID: "fig6", Title: "Streaming lag CDF: host UK-West", Paper: "EU on Zoom 90-150ms / Webex 75-90ms; Meet 30-40ms", Run: lagFigure(sces[2])},
		{ID: "fig7", Title: "Streaming lag CDF: host Switzerland", Paper: "same shape as fig6", Run: lagFigure(sces[3])},
		{ID: "fig8", Title: "Service proximity: host US-East", Paper: "Zoom/Webex: RTT grows with distance from US-East; Meet: uniform low RTTs", Run: rttFigure(sces[0], "fig8")},
		{ID: "fig9", Title: "Service proximity: host US-West", Paper: "Webex endpoints stay east: US-West RTTs ~60ms", Run: rttFigure(sces[1], "fig9")},
		{ID: "fig10", Title: "Service proximity: host UK-West", Paper: "Zoom shows 3 RTT bands 20/40ms apart (US regional LB); Webex pinned at trans-Atlantic RTT; Meet local", Run: rttFigure(sces[2], "fig10")},
		{ID: "fig11", Title: "Service proximity: host Switzerland", Paper: "same shape as fig10", Run: rttFigure(sces[3], "fig11")},
		{
			ID:    "fig12",
			Title: "Video QoE vs session size (US)",
			Paper: "LM > HM everywhere; Meet N=2 QoE boost; Webex most stable",
			Run: func(tb *Testbed, sc Scale, w io.Writer) {
				sweep := mustRunCampaign(tb, usSweepCampaign(), sc)
				for _, m := range []media.MotionClass{media.LowMotion, media.HighMotion} {
					qoeTable(w, fmt.Sprintf("fig12 %s: PSNR (dB)", m), sweep, m, func(c *CellResult) float64 { return c.PSNR.Mean })
					qoeTable(w, fmt.Sprintf("fig12 %s: SSIM", m), sweep, m, func(c *CellResult) float64 { return c.SSIM.Mean })
					qoeTable(w, fmt.Sprintf("fig12 %s: VIFp", m), sweep, m, func(c *CellResult) float64 { return c.VIFP.Mean })
				}
			},
		},
		{
			ID:    "fig13",
			Title: "Rate recovery after a mid-call bandwidth drop (trace-driven)",
			Paper: "downlink capped to 0.5Mbps mid-call: rates collapse toward the cap, then climb back once it lifts; recovery speed differs per platform",
			Run: func(tb *Testbed, sc Scale, w io.Writer) {
				res := mustRunCampaign(tb, fig13Campaign(sc), sc)
				cells := make(map[platform.Kind]*CellResult, len(platform.Kinds))
				for _, k := range platform.Kinds {
					cells[k] = res.mustCell("fig13/" + string(k))
				}
				quarter := sc.QoEDur.Seconds() / 4
				t := report.Table{
					Title: fmt.Sprintf("fig13: receiver download rate (Mbps); 0.5Mbps cap over [%.0fs, %.0fs)",
						quarter, 3*quarter),
					Header: []string{"t (s)"},
				}
				for _, k := range platform.Kinds {
					t.Header = append(t.Header, string(k))
				}
				for i, pt := range cells[platform.Zoom].RateOverTime {
					row := []any{pt.AtSec}
					for _, k := range platform.Kinds {
						row = append(row, cells[k].RateOverTime[i].DownMbps)
					}
					t.AddRow(row...)
				}
				t.Render(w)
			},
		},
		{
			ID:    "fig14",
			Title: "QoE reduction from low-motion to high-motion (US)",
			Paper: "drop is significant (one MOS level); Webex's worsens with N",
			Run: func(tb *Testbed, sc Scale, w io.Writer) {
				sweep := mustRunCampaign(tb, usSweepCampaign(), sc)
				// Fixed slice, not a map: render order must be deterministic.
				for _, m := range []struct {
					name   string
					metric func(*CellResult) float64
				}{
					{"PSNR degradation (dB)", func(c *CellResult) float64 { return c.PSNR.Mean }},
					{"SSIM degradation", func(c *CellResult) float64 { return c.SSIM.Mean }},
					{"VIFp degradation", func(c *CellResult) float64 { return c.VIFP.Mean }},
				} {
					name, metric := m.name, m.metric
					t := report.Table{Title: "fig14: " + name, Header: []string{"N"}}
					for _, k := range platform.Kinds {
						t.Header = append(t.Header, string(k))
					}
					for _, n := range sessionSizes() {
						row := []any{n}
						for _, k := range platform.Kinds {
							lm := sweep.mustCell(fmt.Sprintf("fig12/%s/%s/%d", k, media.LowMotion, n))
							hm := sweep.mustCell(fmt.Sprintf("fig12/%s/%s/%d", k, media.HighMotion, n))
							row = append(row, metric(lm)-metric(hm))
						}
						t.AddRow(row...)
					}
					t.Render(w)
					fmt.Fprintln(w)
				}
			},
		},
		{
			ID:    "fig15",
			Title: "Upload/download data rates (US)",
			Paper: "Webex highest multi-user, halves on LM; Meet most variable, N=2 at 1.6-2.0M; Zoom flattest, P2P ~1M vs relay ~0.7M",
			Run: func(tb *Testbed, sc Scale, w io.Writer) {
				sweep := mustRunCampaign(tb, usSweepCampaign(), sc)
				for _, m := range []media.MotionClass{media.LowMotion, media.HighMotion} {
					t := report.Table{
						Title:  fmt.Sprintf("fig15 %s: data rates (Mbps)", m),
						Header: []string{"N"},
					}
					for _, k := range platform.Kinds {
						t.Header = append(t.Header, string(k)+"-up", string(k)+"-down")
					}
					for _, n := range sessionSizes() {
						row := []any{n}
						for _, k := range platform.Kinds {
							c := sweep.mustCell(fmt.Sprintf("fig12/%s/%s/%d", k, m, n))
							row = append(row, c.UpMbps.Mean, c.DownMbps.Mean)
						}
						t.AddRow(row...)
					}
					t.Render(w)
					fmt.Fprintln(w)
				}
			},
		},
		{
			ID:    "fig16",
			Title: "Video QoE (Europe, high motion)",
			Paper: "Meet keeps a slight QoE edge in Europe; Zoom varies more at high N",
			Run: func(tb *Testbed, sc Scale, w io.Writer) {
				t := report.Table{Title: "fig16: QoE, host CH, HM", Header: []string{"N"}}
				for _, k := range platform.Kinds {
					t.Header = append(t.Header, string(k)+"-PSNR", string(k)+"-SSIM", string(k)+"-VIFp")
				}
				res := mustRunCampaign(tb, Campaign{
					Name:       "fig16",
					Geometries: []Geometry{{Host: geo.CH.Name, Zone: string(geo.ZoneEU)}},
					Motions:    []string{media.HighMotion.String()},
					Sizes:      sessionSizes(),
				}, sc)
				for _, n := range sessionSizes() {
					row := []any{n}
					for _, k := range platform.Kinds {
						c := res.mustCell(fmt.Sprintf("fig16/%s/%d", k, n))
						row = append(row, c.PSNR.Mean, c.SSIM.Mean, c.VIFP.Mean)
					}
					t.AddRow(row...)
				}
				t.Render(w)
			},
		},
		{
			ID:    "fig17",
			Title: "Video QoE under bandwidth caps",
			Paper: "Zoom best >=500k with a 250k cliff; Meet most graceful; Webex collapses <=1M (stalls)",
			Run: func(tb *Testbed, sc Scale, w io.Writer) {
				motions := []media.MotionClass{media.LowMotion, media.HighMotion}
				tables := make([]*report.Table, len(motions))
				for i, m := range motions {
					tables[i] = &report.Table{
						Title:  fmt.Sprintf("fig17 %s: QoE vs downlink cap", m),
						Header: []string{"cap"},
					}
					for _, k := range platform.Kinds {
						tables[i].Header = append(tables[i].Header, string(k)+"-PSNR", string(k)+"-SSIM", string(k)+"-VIFp", string(k)+"-freeze")
					}
				}
				spec := pairCampaign("fig17")
				spec.Motions = []string{media.LowMotion.String(), media.HighMotion.String()}
				spec.CapsBps = capsList()
				res := mustRunCampaign(tb, spec, sc)
				for mi, m := range motions {
					for _, cap := range BandwidthCaps {
						row := []any{CapLabel(cap)}
						for _, k := range platform.Kinds {
							c := res.mustCell(fmt.Sprintf("fig17/%s/%s/%d", k, m, cap))
							row = append(row, c.PSNR.Mean, c.SSIM.Mean, c.VIFP.Mean, c.Freeze.Mean)
						}
						tables[mi].AddRow(row...)
					}
				}
				for _, t := range tables {
					t.Render(w)
					fmt.Fprintln(w)
				}
			},
		},
		{
			ID:    "fig18",
			Title: "Audio quality under bandwidth caps (MOS-LQO)",
			Paper: "Zoom/Meet audio flat at all caps; Webex audio degrades at <=500k",
			Run: func(tb *Testbed, sc Scale, w io.Writer) {
				t := report.Table{
					Title:  "fig18: MOS-LQO vs downlink cap (LM sessions with speech)",
					Header: []string{"cap"},
				}
				for _, k := range platform.Kinds {
					t.Header = append(t.Header, string(k))
				}
				spec := pairCampaign("fig18")
				spec.Motions = []string{media.LowMotion.String()}
				spec.CapsBps = capsList()
				spec.Audio = []bool{true}
				res := mustRunCampaign(tb, spec, sc)
				for _, cap := range BandwidthCaps {
					row := []any{CapLabel(cap)}
					for _, k := range platform.Kinds {
						row = append(row, res.mustCell(fmt.Sprintf("fig18/%s/%d", k, cap)).MOS.Mean)
					}
					t.AddRow(row...)
				}
				t.Render(w)
			},
		},
		{
			ID:    "fig19",
			Title: "Mobile resource consumption (CPU, data rate, battery)",
			Paper: "2-3 cores; Meet most bandwidth-hungry; gallery helps only Zoom; screen-off halves battery",
			Run: func(tb *Testbed, sc Scale, w io.Writer) {
				rng := tb.Sim.Fork("fig19")
				cpu := report.Table{Title: "fig19a: CPU usage (%) median [p25-p75]", Header: []string{"scenario"}}
				rate := report.Table{Title: "fig19b: download data rate (Mbps)", Header: []string{"scenario"}}
				bat := report.Table{Title: "fig19c: battery discharge (mAh per 5-min call, J3)", Header: []string{"scenario"}}
				for _, k := range platform.Kinds {
					for _, d := range []string{"S10", "J3"} {
						cpu.Header = append(cpu.Header, string(k)+"-"+d)
						rate.Header = append(rate.Header, string(k)+"-"+d)
					}
					bat.Header = append(bat.Header, string(k))
				}
				for _, scn := range mobile.StandardScenarios {
					cpuRow := []any{scn.Label}
					rateRow := []any{scn.Label}
					batRow := []any{scn.Label}
					for _, k := range platform.Kinds {
						for _, d := range mobile.Devices {
							s := mobile.CPUSamples(k, d, scn, 100, rng)
							sum := s.Summarize()
							cpuRow = append(cpuRow, fmt.Sprintf("%.0f [%.0f-%.0f]", sum.P50, sum.P25, sum.P75))
							rateRow = append(rateRow, mobile.DataRateMbps(k, d, scn))
						}
						batRow = append(batRow, mobile.DischargemAh(k, mobile.GalaxyJ3, scn, 5))
					}
					cpu.AddRow(cpuRow...)
					rate.AddRow(rateRow...)
					bat.AddRow(batRow...)
				}
				cpu.Render(w)
				fmt.Fprintln(w)
				rate.Render(w)
				fmt.Fprintln(w)
				bat.Render(w)
			},
		},
		{
			ID:    "table4",
			Title: "Data rate and CPU vs conference size",
			Paper: "gallery doubles Zoom's rate at N=6; Webex gallery rate drops; plateau beyond 4 visible tiles",
			Run: func(tb *Testbed, sc Scale, w io.Writer) {
				t := report.Table{
					Title:  "Table 4: per-device data rate (Mbps) and CPU (%) S10/J3",
					Header: []string{"N", "client", "full rate", "full CPU", "gallery rate", "gallery CPU"},
				}
				for _, n := range []int{3, 6, 11} {
					for _, k := range platform.Kinds {
						full := mobile.Scenario{Label: "full", Feed: media.HighMotion, View: client.ViewFullScreen, N: n}
						gal := mobile.Scenario{Label: "gal", Feed: media.HighMotion, View: client.ViewGallery, N: n}
						t.AddRow(n, string(k),
							fmt.Sprintf("%.2f/%.2f",
								mobile.DataRateMbps(k, mobile.GalaxyS10, full),
								mobile.DataRateMbps(k, mobile.GalaxyJ3, full)),
							fmt.Sprintf("%.0f/%.0f",
								mobile.CPUPercent(k, mobile.GalaxyS10, full),
								mobile.CPUPercent(k, mobile.GalaxyJ3, full)),
							fmt.Sprintf("%.2f/%.2f",
								mobile.DataRateMbps(k, mobile.GalaxyS10, gal),
								mobile.DataRateMbps(k, mobile.GalaxyJ3, gal)),
							fmt.Sprintf("%.0f/%.0f",
								mobile.CPUPercent(k, mobile.GalaxyS10, gal),
								mobile.CPUPercent(k, mobile.GalaxyJ3, gal)))
					}
				}
				t.Render(w)
			},
		},
	}
	exps = append(exps, ablations()...)
	exps = append(exps, extraExperiments...)
	return exps
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	var out []string
	for _, e := range Experiments() {
		out = append(out, e.ID)
	}
	return out
}
