package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/vcabench/vcabench/internal/report"
	"github.com/vcabench/vcabench/internal/trace"
)

// The golden files under testdata/golden lock in the determinism
// contract everything above the scheduler depends on: the same seed,
// scale and spec must keep producing the same bytes across refactors,
// or memoized, stored and remotely computed cells silently diverge
// from fresh ones. Regenerate deliberately with:
//
//	go test ./internal/core -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files instead of comparing")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from its golden copy.\nIf the change is intended, rerun with -update and commit.\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// goldenCampaign is a small grid covering the trace axis next to a
// clean reference arm — the newest key segments and the rate-over-time
// series are exactly what must not drift.
func goldenCampaign() Campaign {
	return Campaign{
		Name:      "golden",
		Platforms: []string{"zoom", "webex"},
		Geometries: []Geometry{
			{Host: "US-East", Receivers: []string{"US-East2"}},
		},
		Motions: []string{"high-motion"},
		Traces: []trace.Spec{
			{Name: "clean"},
			{Name: "dip", Square: &trace.SquareSpec{
				HighBps: 0, LowBps: 500_000, HighSec: 2, LowSec: 4, Once: true,
			}},
		},
	}
}

func TestGoldenTraceCampaign(t *testing.T) {
	tb := NewTestbed(42).SetParallelism(2)
	res, err := RunCampaign(tb, goldenCampaign(), TinyScale)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace_campaign_table.txt", []byte(res.RenderTable().String()))
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace_campaign.json", buf.Bytes())
}

// goldenReplicatedCampaign exercises the replication axis: a two-cell
// grid at Repeats 3, locking in the "rep=K" aggregation — pooled
// metric summaries, stderr/ci95 fields, the replicas JSON block and
// the ±CI table rendering.
func goldenReplicatedCampaign() Campaign {
	return Campaign{
		Name:      "golden-rep",
		Platforms: []string{"zoom", "webex"},
		Geometries: []Geometry{
			{Host: "US-East", Receivers: []string{"US-East2"}},
		},
		Motions: []string{"high-motion"},
		Repeats: 3,
	}
}

func TestGoldenReplicatedCampaign(t *testing.T) {
	tb := NewTestbed(42).SetParallelism(2)
	res, err := RunCampaign(tb, goldenReplicatedCampaign(), TinyScale)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "replicated_campaign_table.txt", []byte(res.RenderTable().String()))
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "replicated_campaign.json", buf.Bytes())
}

// table1 ties the golden layer to a real paper artifact rendered
// through the experiment registry (campaign engine, memo table,
// metric summaries and table renderer in one pass).
func TestGoldenTable1(t *testing.T) {
	e, ok := Lookup("table1")
	if !ok {
		t.Fatal("table1 not registered")
	}
	var buf bytes.Buffer
	e.Run(NewTestbed(42).SetParallelism(2), TinyScale, &buf)
	checkGolden(t, "table1.txt", buf.Bytes())
}
