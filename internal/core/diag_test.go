package core

import (
	"bytes"
	"testing"

	"github.com/vcabench/vcabench/internal/diag"
)

// These tests pin the flight recorder's two contracts: armed runs
// produce byte-identical artifacts regardless of how the work was
// scheduled or cached, and the documents themselves stay stable across
// refactors (the golden artifact).

// runDiagFig13 executes the paper's §4.4 disturbance campaign with the
// recorder armed and returns every cell's encoded artifact by key.
func runDiagFig13(t *testing.T, workers int, st CellStore) map[string][]byte {
	t.Helper()
	tb := NewTestbed(42).SetParallelism(workers).WithDiagnostics()
	if st != nil {
		tb.WithStore(st)
	}
	if _, err := RunCampaign(tb, fig13Campaign(TinyScale), TinyScale); err != nil {
		t.Fatal(err)
	}
	docs := make(map[string][]byte)
	for _, d := range tb.DiagResults() {
		data, err := diag.Encode(d)
		if err != nil {
			t.Fatalf("encode %s: %v", d.Key, err)
		}
		docs[d.Key] = data
	}
	return docs
}

// TestGoldenFig13Diag locks one fig13 trace cell's artifact to its
// golden copy: the time-binned pipe series, queue-depth series and
// event log (rate switches, trace steps, recoveries, freezes) must not
// drift. Regenerate deliberately with -update.
func TestGoldenFig13Diag(t *testing.T) {
	docs := runDiagFig13(t, 2, nil)
	data, ok := docs["fig13/zoom"]
	if !ok {
		t.Fatalf("no diag document for fig13/zoom; have %d documents", len(docs))
	}
	checkGolden(t, "diag_fig13_zoom.json", data)
}

// TestDiagIdenticalAcrossParallelism is the determinism half of the
// recorder contract: each campaign unit records on its own fork, so
// worker count must not leak into any artifact byte. Under -race this
// also exercises the probe seams beneath the 8-worker scheduler.
func TestDiagIdenticalAcrossParallelism(t *testing.T) {
	serial := runDiagFig13(t, 1, nil)
	wide := runDiagFig13(t, 8, nil)
	if len(serial) == 0 || len(serial) != len(wide) {
		t.Fatalf("document sets differ: %d serial vs %d wide", len(serial), len(wide))
	}
	//vcalint:ignore maprange order-independent comparison; each key is checked against its counterpart
	for k, a := range serial {
		if b, ok := wide[k]; !ok {
			t.Errorf("document %s missing at parallelism 8", k)
		} else if !bytes.Equal(a, b) {
			t.Errorf("document %s differs between parallelism 1 and 8", k)
		}
	}
}

// TestDiagIdenticalAcrossCacheTemperature runs cold then warm against
// one store: warm cells decode their Diag document from gob instead of
// recording anew, and the artifact bytes must not change.
func TestDiagIdenticalAcrossCacheTemperature(t *testing.T) {
	st := &mapStore{m: make(map[string][]byte)}
	cold := runDiagFig13(t, 4, st)
	puts := st.puts.Load()
	if puts == 0 {
		t.Fatal("cold run stored no cells")
	}
	warm := runDiagFig13(t, 2, st)
	if st.puts.Load() != puts {
		t.Errorf("warm run stored %d new cells, want 0", st.puts.Load()-puts)
	}
	if len(cold) == 0 || len(cold) != len(warm) {
		t.Fatalf("document sets differ: %d cold vs %d warm", len(cold), len(warm))
	}
	//vcalint:ignore maprange order-independent comparison; each key is checked against its counterpart
	for k, a := range cold {
		if !bytes.Equal(a, warm[k]) {
			t.Errorf("document %s differs between cold and warm runs", k)
		}
	}
}

// TestDiagCacheModeSeparation pins the key-space split: a store warmed
// by a bare run must never satisfy a diagnostics-armed run (its cells
// lack the Diag document), and vice versa.
func TestDiagCacheModeSeparation(t *testing.T) {
	st := &mapStore{m: make(map[string][]byte)}
	bare := NewTestbed(42).SetParallelism(2).WithStore(st)
	if _, err := RunCampaign(bare, fig13Campaign(TinyScale), TinyScale); err != nil {
		t.Fatal(err)
	}
	barePuts := st.puts.Load()
	if barePuts == 0 {
		t.Fatal("bare run stored no cells")
	}
	docs := runDiagFig13(t, 2, st)
	if st.puts.Load() == barePuts {
		t.Error("diag-armed run reused the bare cache: stored no new cells")
	}
	for k, data := range docs {
		d, err := diag.Decode(data)
		if err != nil {
			t.Fatalf("decode %s: %v", k, err)
		}
		if len(d.Pipes) == 0 || len(d.Events) == 0 {
			t.Errorf("document %s is empty (pipes=%d events=%d); bare cache leaked into diag run",
				k, len(d.Pipes), len(d.Events))
		}
	}
}

// TestDiagOffRecordsNothing is the inertness half: an unarmed testbed
// must produce no documents and no Diag field on its results (the
// golden campaign tests pin the byte-level consequence).
func TestDiagOffRecordsNothing(t *testing.T) {
	tb := NewTestbed(42).SetParallelism(2)
	res, err := RunCampaign(tb, fig13Campaign(TinyScale), TinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if docs := tb.DiagResults(); len(docs) != 0 {
		t.Errorf("unarmed testbed produced %d diag documents", len(docs))
	}
	for i := range res.Cells {
		c := &res.Cells[i]
		if c.DropsQueue != 0 || c.DropsRandom != 0 {
			t.Errorf("cell %s carries drop causes without diagnostics", c.Key)
		}
		if q := c.Raw; q != nil && q.Diag != nil {
			t.Errorf("cell %s carries a Diag document without diagnostics", c.Key)
		}
	}
}
