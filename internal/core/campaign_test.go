package core

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"github.com/vcabench/vcabench/internal/report"
	"github.com/vcabench/vcabench/internal/stats"
	"github.com/vcabench/vcabench/internal/store"
	"github.com/vcabench/vcabench/internal/trace"
)

// detCampaign is a small grid exercising caps, audio and netem axes —
// cheap enough for the 1-vs-8-worker determinism test.
func detCampaign() Campaign {
	return Campaign{
		Name:      "det",
		Platforms: []string{"zoom", "meet"},
		Geometries: []Geometry{
			{Name: "mix", Host: "US-East", Receivers: []string{"US-West", "FR"}},
		},
		Motions: []string{"high-motion"},
		Sizes:   []int{3},
		CapsBps: []int64{0, 500_000},
		Audio:   []bool{true, false},
		Netem:   []Netem{{Name: "clean"}, {Name: "lossy", LossPct: 20}},
	}
}

// The tentpole invariant: a campaign's JSON result is byte-identical
// at any worker count, because every cell's values depend only on
// (seed, canonical key).
func TestCampaignJSONDeterminism(t *testing.T) {
	render := func(workers int) []byte {
		tb := NewTestbed(42).SetParallelism(workers)
		res, err := RunCampaign(tb, detCampaign(), TinyScale)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := report.WriteJSON(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("campaign JSON differs between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if len(serial) < 200 {
		t.Errorf("campaign JSON suspiciously short:\n%s", serial)
	}
}

func TestCampaignResultShape(t *testing.T) {
	tb := NewTestbed(7)
	res, err := RunCampaign(tb, detCampaign(), TinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Cells), 2*1*1*1*2*2*2; got != want {
		t.Fatalf("cell count = %d, want %d", got, want)
	}
	if res.Seed != 7 || res.Scale != TinyScale.Name || res.Name != "det" {
		t.Errorf("result header wrong: %+v", res)
	}
	for i := range res.Cells {
		c := &res.Cells[i]
		if c.PSNR == nil || c.SSIM == nil || c.DownMbps == nil {
			t.Errorf("cell %s missing video metrics", c.Key)
		}
		if c.Audio && c.MOS == nil {
			t.Errorf("cell %s has audio but no MOS", c.Key)
		}
		if !c.Audio && c.MOS != nil {
			t.Errorf("cell %s has MOS without audio", c.Key)
		}
		if c.Raw == nil {
			t.Errorf("cell %s lost its raw study result", c.Key)
		}
		if res.Cell(c.Key) != c {
			t.Errorf("Cell(%q) lookup failed", c.Key)
		}
	}
	// Loss must actually bite: lossy cells see worse SSIM than clean
	// ones for the same coordinates.
	clean := res.Cell("det/zoom/0/noaudio/clean")
	lossy := res.Cell("det/zoom/0/noaudio/lossy")
	if clean == nil || lossy == nil {
		t.Fatal("expected cells missing")
	}
	if lossy.SSIM.Mean >= clean.SSIM.Mean {
		t.Errorf("20%% loss did not hurt SSIM: clean %.3f, lossy %.3f", clean.SSIM.Mean, lossy.SSIM.Mean)
	}
}

// Ported figures must keep their historical unit keys: shard seeds
// derive from keys, so key drift would silently change every number.
func TestCampaignLegacyKeys(t *testing.T) {
	cases := []struct {
		spec Campaign
		want []string
	}{
		{usSweepCampaign(), []string{
			"fig12/zoom/low-motion/2", "fig12/webex/high-motion/6", "fig12/meet/low-motion/4"}},
		{pairCampaign("table1"), []string{"table1/zoom", "table1/webex", "table1/meet"}},
		{lastMileCampaign(), []string{
			"ext-lastmile/zoom/fluct", "ext-lastmile/webex/steady-300k", "ext-lastmile/meet/steady-1.5M"}},
	}
	fig17 := pairCampaign("fig17")
	fig17.Motions = []string{"low-motion", "high-motion"}
	fig17.CapsBps = capsList()
	cases = append(cases, struct {
		spec Campaign
		want []string
	}{fig17, []string{"fig17/zoom/low-motion/250000", "fig17/meet/high-motion/0"}})

	fig18 := pairCampaign("fig18")
	fig18.Motions = []string{"low-motion"}
	fig18.CapsBps = capsList()
	fig18.Audio = []bool{true}
	cases = append(cases, struct {
		spec Campaign
		want []string
	}{fig18, []string{"fig18/zoom/250000", "fig18/webex/1000000"}})

	for _, c := range cases {
		keys, err := c.spec.UnitKeys()
		if err != nil {
			t.Fatalf("%s: %v", c.spec.Name, err)
		}
		have := make(map[string]bool, len(keys))
		for _, k := range keys {
			if have[k] {
				t.Errorf("%s: duplicate key %q", c.spec.Name, k)
			}
			have[k] = true
		}
		for _, want := range c.want {
			if !have[want] {
				t.Errorf("%s: legacy key %q missing from %v", c.spec.Name, want, keys)
			}
		}
	}
}

// A minimal spec normalizes to one cell per platform.
func TestCampaignDefaults(t *testing.T) {
	keys, err := Campaign{Name: "min"}.UnitKeys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 {
		t.Fatalf("default expansion = %v, want one cell per platform", keys)
	}
	if keys[0] != "min/zoom" || keys[1] != "min/webex" || keys[2] != "min/meet" {
		t.Errorf("default keys = %v", keys)
	}
}

func TestCampaignValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Campaign
		want string // substring of the error
	}{
		{"no name", Campaign{}, "name is required"},
		{"slash in name", Campaign{Name: "a/b"}, "must not contain"},
		{"slash in geometry", Campaign{Name: "x",
			Geometries: []Geometry{{Name: "a/b", Host: "US-East", Zone: "US"}}}, "must not contain"},
		{"slash in netem", Campaign{Name: "x", Netem: []Netem{{Name: "a/b"}}}, "must not contain"},
		{"bad platform", Campaign{Name: "x", Platforms: []string{"teams"}}, "unknown platform"},
		{"dup platform", Campaign{Name: "x", Platforms: []string{"zoom", "zoom"}}, "duplicate platform"},
		{"bad motion", Campaign{Name: "x", Motions: []string{"fast"}}, "unknown motion"},
		{"small size", Campaign{Name: "x", Sizes: []int{1}}, "size 1 < 2"},
		{"dup size", Campaign{Name: "x", Sizes: []int{3, 3}}, "duplicate size"},
		{"negative cap", Campaign{Name: "x", CapsBps: []int64{-1}}, "negative cap"},
		{"bad region", Campaign{Name: "x", Geometries: []Geometry{{Host: "Mars", Zone: "US"}}}, "unknown region"},
		{"bad zone", Campaign{Name: "x", Geometries: []Geometry{{Host: "US-East", Zone: "Asia"}}}, "unknown zone"},
		{"no pool", Campaign{Name: "x", Geometries: []Geometry{{Host: "US-East"}}}, "needs a zone or a receiver list"},
		{"zone and receivers", Campaign{Name: "x",
			Geometries: []Geometry{{Host: "US-East", Zone: "US", Receivers: []string{"FR"}}}}, "both zone and receivers"},
		{"unnamed geometries", Campaign{Name: "x", Geometries: []Geometry{
			{Host: "US-East", Zone: "US"}, {Host: "CH", Zone: "EU"}}}, "needs a name"},
		{"unnamed netem", Campaign{Name: "x", Netem: []Netem{{}, {LossPct: 1}}}, "needs a name"},
		{"unnamed active netem", Campaign{Name: "x", Netem: []Netem{{LossPct: 1}}}, "sets impairments"},
		{"loss range", Campaign{Name: "x", Netem: []Netem{{LossPct: 100}}}, "loss_pct"},
		{"partial fluct", Campaign{Name: "x", Netem: []Netem{{FluctHiBps: 1000}}}, "together"},
		{"two caps", Campaign{Name: "x", Netem: []Netem{
			{Name: "n", DownCapBps: 1000, FluctHiBps: 2000, FluctLoBps: 1000, FluctPeriodSec: 1}}}, "both a steady and a fluctuating"},
		{"inverted fluct", Campaign{Name: "x", Netem: []Netem{
			{Name: "n", FluctHiBps: 1000, FluctLoBps: 2000, FluctPeriodSec: 1}}}, "fluct_lo_bps > fluct_hi_bps"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestParseCampaign(t *testing.T) {
	spec, err := ParseCampaign([]byte(`{
		"name": "p",
		"platforms": ["zoom"],
		"geometries": [{"host": "US-East", "receivers": ["FR", "DE"]}],
		"sizes": [2, 4],
		"caps_bps": [0, 750000],
		"netem": [{"name": "a"}, {"name": "b", "loss_pct": 1.5}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	keys, err := spec.UnitKeys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2*2*2 {
		t.Errorf("keys = %v", keys)
	}
	if keys[0] != "p/2/0/a" {
		t.Errorf("first key = %q", keys[0])
	}
	if _, err := ParseCampaign([]byte(`{"name": "x", "sizzes": [2]}`)); err == nil {
		t.Error("unknown field should be rejected")
	}
	if _, err := ParseCampaign([]byte(`{"name": "a"}{"name": "b"}`)); err == nil {
		t.Error("trailing data should be rejected")
	}
	if _, err := ParseCampaign([]byte(`{"name": ""}`)); err == nil {
		t.Error("invalid spec should be rejected at parse time")
	}
}

// The receiver pool cycles to fill any session size.
func TestGeometryReceiverCycling(t *testing.T) {
	g, err := resolveGeometry(Geometry{Host: "US-East", Receivers: []string{"FR", "DE"}}, false)
	if err != nil {
		t.Fatal(err)
	}
	got := g.receivers(5)
	want := []string{"FR", "DE", "FR", "DE", "FR"}
	for i, r := range got {
		if r.Name != want[i] {
			t.Errorf("receiver %d = %s, want %s", i, r.Name, want[i])
		}
	}
	if g.name != "US-East" {
		t.Errorf("default geometry name = %q, want host name", g.name)
	}
}

// RenderTable flattens a campaign without NaN leakage: the MOS column
// of audio-off cells renders "-".
func TestCampaignRenderTable(t *testing.T) {
	tb := NewTestbed(3)
	res, err := RunCampaign(tb, Campaign{Name: "flat", Platforms: []string{"zoom"}}, TinyScale)
	if err != nil {
		t.Fatal(err)
	}
	out := res.RenderTable().String()
	if !strings.Contains(out, "campaign flat") || !strings.Contains(out, "zoom") {
		t.Errorf("table chrome missing:\n%s", out)
	}
	if strings.Contains(out, "NaN") {
		t.Errorf("NaN leaked into rendered table:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("missing MOS should render '-':\n%s", out)
	}
}

// Rerunning a campaign name with a different spec on one testbed
// would share unit keys (and memo entries) between semantically
// different cells; the engine must refuse.
func TestCampaignNameSpecPinning(t *testing.T) {
	tb := NewTestbed(11)
	a := Campaign{Name: "pin", Platforms: []string{"zoom"}}
	if _, err := RunCampaign(tb, a, TinyScale); err != nil {
		t.Fatal(err)
	}
	// Same spec again: fine (memo hit).
	if _, err := RunCampaign(tb, a, TinyScale); err != nil {
		t.Errorf("identical rerun rejected: %v", err)
	}
	// Same name, different single-valued axis: must be rejected.
	b := Campaign{Name: "pin", Platforms: []string{"zoom"}, Audio: []bool{true}}
	if _, err := RunCampaign(tb, b, TinyScale); err == nil {
		t.Error("conflicting spec under the same name not rejected")
	}
	// A fresh testbed is unconstrained.
	if _, err := RunCampaign(NewTestbed(11), b, TinyScale); err != nil {
		t.Errorf("fresh testbed rejected spec: %v", err)
	}
}

func TestSetParallelismRejectsNegative(t *testing.T) {
	tb := NewTestbed(1)
	defer func() {
		if recover() == nil {
			t.Error("SetParallelism(-1) should panic")
		}
	}()
	tb.SetParallelism(-1)
}

// trim/ratePretty/CapLabel formatting edge cases (the rounding and
// negative-value bugfixes).
func TestRateFormatting(t *testing.T) {
	trims := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{2.97, "3"},     // rounds up (was truncated to "2.9")
		{2.94, "2.9"},   // rounds down
		{1.25, "1.3"},   // half rounds away from zero
		{1.5, "1.5"},    // exact tenth kept
		{2.0, "2"},      // zero fraction dropped
		{0.96, "1"},     // carry into the integer part
		{-0.25, "-0.3"}, // negative magnitude rounding
		{-2.97, "-3"},   // negative carry
		{-0.04, "0"},    // rounds to zero: no "-0"
		{12345.6, "12345.6"},
	}
	for _, c := range trims {
		if got := trim(c.in); got != c.want {
			t.Errorf("trim(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	rates := []struct {
		in   float64
		want string
	}{
		{250_000, "250Kbps"},
		{999_999, "1000Kbps"}, // rounds within the K band
		{1_000_000, "1Mbps"},
		{1_250_000, "1.3Mbps"},
		{2_970_000, "3Mbps"},
		{999, "999bps"},
		{-500_000, "-500Kbps"},
	}
	for _, c := range rates {
		if got := ratePretty(c.in); got != c.want {
			t.Errorf("ratePretty(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	labels := []struct {
		in   int64
		want string
	}{
		{0, "Infinite"},
		{250_000, "250Kbps"},
		{500_000, "500Kbps"},
		{1_000_000, "1Mbps"},
		{750_000, "750Kbps"},
		{1_500_000, "1.5Mbps"},
		{2_970_000, "3Mbps"}, // rounded by the trim fix
	}
	for _, c := range labels {
		if got := CapLabel(c.in); got != c.want {
			t.Errorf("CapLabel(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

// The ported fig17 renderer and the campaign engine agree on keys: a
// smoke check that mustCell cannot panic for any rendered figure cell.
func TestPortedFigureKeysResolve(t *testing.T) {
	for _, spec := range []Campaign{usSweepCampaign(), pairCampaign("table1"), lastMileCampaign(), fig13Campaign(TinyScale)} {
		if _, err := spec.UnitKeys(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
}

// traceGrid is a small campaign with a multi-valued trace axis — one
// clean reference arm next to two schedules.
func traceGrid() Campaign {
	return Campaign{
		Name:       "trgrid",
		Platforms:  []string{"zoom", "meet"},
		Geometries: []Geometry{{Host: "US-East", Receivers: []string{"US-East2"}}},
		Motions:    []string{"high-motion"},
		Traces: []trace.Spec{
			{Name: "clean"},
			{Name: "dip", Square: &trace.SquareSpec{HighBps: 0, LowBps: 500_000, HighSec: 2, LowSec: 2, Once: true}},
			{Name: "ladder", StepDown: &trace.StepDownSpec{LevelsBps: []int64{1_000_000, 500_000, 250_000}, DwellSec: 2}},
		},
	}
}

// The trace axis keys like every other axis: appended as the last
// segment when multi-valued, omitted when single-valued.
func TestCampaignTraceKeys(t *testing.T) {
	keys, err := traceGrid().UnitKeys()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"trgrid/zoom/clean", "trgrid/zoom/dip", "trgrid/zoom/ladder",
		"trgrid/meet/clean", "trgrid/meet/dip", "trgrid/meet/ladder",
	}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("key %d = %q, want %q", i, keys[i], want[i])
		}
	}
	// A single-valued trace axis stays out of the keys (fig13 keeps
	// plain "fig13/<platform>" cells).
	keys, err = fig13Campaign(TinyScale).UnitKeys()
	if err != nil {
		t.Fatal(err)
	}
	if keys[0] != "fig13/zoom" {
		t.Errorf("single-trace key = %q", keys[0])
	}
}

func TestCampaignTraceValidation(t *testing.T) {
	dip := func() *trace.SquareSpec {
		return &trace.SquareSpec{HighBps: 0, LowBps: 500_000, HighSec: 1, LowSec: 1, Once: true}
	}
	cases := []struct {
		name string
		spec Campaign
		want string
	}{
		{"unnamed active trace", Campaign{Name: "x",
			Traces: []trace.Spec{{Square: dip()}}}, "needs a name"},
		{"unnamed among several", Campaign{Name: "x",
			Traces: []trace.Spec{{}, {Name: "a", Square: dip()}}}, "needs a name"},
		{"slash in trace name", Campaign{Name: "x",
			Traces: []trace.Spec{{Name: "a/b", Square: dip()}}}, "must not contain"},
		{"dup trace name", Campaign{Name: "x",
			Traces: []trace.Spec{{Name: "a", Square: dip()}, {Name: "a", Square: dip()}}}, "duplicate trace"},
		{"bad generator", Campaign{Name: "x",
			Traces: []trace.Spec{{Name: "a", Square: &trace.SquareSpec{HighSec: 0, LowSec: 1}}}}, "high_sec"},
		{"bad steps", Campaign{Name: "x",
			Traces: []trace.Spec{{Name: "a", Steps: []trace.Step{{AtSec: 2}, {AtSec: 1}}}}}, "strictly increasing"},
		{"two sources", Campaign{Name: "x",
			Traces: []trace.Spec{{Name: "a", Square: dip(), Steps: []trace.Step{{AtSec: 0}}}}}, "mutually exclusive"},
		{"netem loss conflict", Campaign{Name: "x",
			Netem:  []Netem{{Name: "lossy", LossPct: 5}},
			Traces: []trace.Spec{{Name: "a", Square: dip()}}}, "cannot combine"},
		{"netem fluct conflict", Campaign{Name: "x",
			Netem:  []Netem{{Name: "w", FluctHiBps: 1_000_000, FluctLoBps: 100_000, FluctPeriodSec: 2}},
			Traces: []trace.Spec{{Name: "a", Square: dip()}}}, "cannot combine"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v does not mention %q", c.name, err, c.want)
		}
	}
	// A named no-op netem arm next to a trace axis is fine.
	ok := Campaign{Name: "x",
		Netem:  []Netem{{Name: "n1"}, {Name: "n2"}},
		Traces: []trace.Spec{{Name: "a", Square: dip()}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("inactive netem rejected next to traces: %v", err)
	}
}

// Trace cells carry their schedule's effects and series; clean cells
// stay series-free so legacy JSON shapes are untouched.
func TestCampaignTraceCells(t *testing.T) {
	tb := NewTestbed(5)
	res, err := RunCampaign(tb, traceGrid(), TinyScale)
	if err != nil {
		t.Fatal(err)
	}
	clean := res.Cell("trgrid/zoom/clean")
	dip := res.Cell("trgrid/zoom/dip")
	if clean == nil || dip == nil {
		t.Fatal("expected cells missing")
	}
	if clean.RateOverTime != nil {
		t.Errorf("clean cell grew a rate series: %v", clean.RateOverTime)
	}
	bins := int(TinyScale.QoEDur / rateBinWidth)
	if len(dip.RateOverTime) != bins {
		t.Fatalf("dip series has %d bins, want %d", len(dip.RateOverTime), bins)
	}
	if dip.Trace != "dip" || clean.Trace != "clean" {
		t.Errorf("trace labels: %q, %q", dip.Trace, clean.Trace)
	}
	// The dip must bite: the capped middle bins run well below the
	// pre-dip rate, and the post-recovery tail climbs back above the
	// capped floor.
	pre, mid := dip.RateOverTime[1].DownMbps, dip.RateOverTime[3].DownMbps
	if mid >= pre {
		t.Errorf("dip did not bite: pre %.3f, mid %.3f", pre, mid)
	}
	if mid > 0.75 {
		t.Errorf("capped bin runs at %.3f Mbps under a 0.5 Mbps cap", mid)
	}
	for _, pt := range dip.RateOverTime {
		if pt.DownMbps < 0 {
			t.Errorf("negative rate bin: %+v", pt)
		}
	}
}

// The acceptance matrix for trace-bearing campaigns: byte-identical
// JSON across worker counts, cold vs warm store, and local vs
// dispatched execution.
func TestCampaignTraceDeterminism(t *testing.T) {
	dir := t.TempDir()
	render := func(workers int, withStore bool, d Dispatcher) ([]byte, store.Stats) {
		tb := NewTestbed(42).SetParallelism(workers)
		var st *store.Store
		if withStore {
			var err error
			if st, err = store.Open(dir); err != nil {
				t.Fatal(err)
			}
			tb.WithStore(st)
		}
		if d != nil {
			tb.WithDispatcher(d)
		}
		res, err := RunCampaign(tb, traceGrid(), TinyScale)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := report.WriteJSON(&buf, res); err != nil {
			t.Fatal(err)
		}
		if err := tb.StoreErr(); err != nil {
			t.Fatal(err)
		}
		var stats store.Stats
		if st != nil {
			stats = st.Stats()
		}
		return buf.Bytes(), stats
	}

	serial, _ := render(1, false, nil)
	parallel, _ := render(8, false, nil)
	if !bytes.Equal(serial, parallel) {
		t.Error("trace campaign differs between 1 and 8 workers")
	}

	cold, coldStats := render(4, true, nil)
	warm, warmStats := render(2, true, nil)
	if !bytes.Equal(serial, cold) {
		t.Error("stored run differs from plain run")
	}
	if !bytes.Equal(cold, warm) {
		t.Error("warm rerun differs from cold")
	}
	if coldStats.Hits() != 0 || coldStats.Puts != 6 {
		t.Errorf("cold stats = %+v", coldStats)
	}
	if warmStats.Misses != 0 || warmStats.Puts != 0 || warmStats.Hits() != 6 {
		t.Errorf("warm stats = %+v (cells recomputed)", warmStats)
	}

	d := &workerDispatcher{}
	dist, _ := render(4, false, d)
	if !bytes.Equal(serial, dist) {
		t.Error("dispatched trace campaign differs from local run")
	}
	if d.calls.Load() != 6 {
		t.Errorf("dispatcher saw %d units, want 6", d.calls.Load())
	}
}

// repGrid is a small replicated campaign: two cells × three replicas.
func repGrid() Campaign {
	return Campaign{
		Name:       "repgrid",
		Platforms:  []string{"zoom", "meet"},
		Geometries: []Geometry{{Host: "US-East", Receivers: []string{"US-East2"}}},
		Motions:    []string{"high-motion"},
		Repeats:    3,
	}
}

// Replica units key cell-major with a trailing canonical rep segment;
// Repeats 0 and 1 keep the bare historical cell keys.
func TestCampaignRepeatsKeys(t *testing.T) {
	keys, err := repGrid().UnitKeys()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"repgrid/zoom/rep=0", "repgrid/zoom/rep=1", "repgrid/zoom/rep=2",
		"repgrid/meet/rep=0", "repgrid/meet/rep=1", "repgrid/meet/rep=2",
	}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("key %d = %q, want %q", i, keys[i], want[i])
		}
	}
	for _, repeats := range []int{0, 1} {
		spec := repGrid()
		spec.Repeats = repeats
		keys, err := spec.UnitKeys()
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != 2 || keys[0] != "repgrid/zoom" || keys[1] != "repgrid/meet" {
			t.Errorf("repeats=%d keys = %v, want bare cell keys", repeats, keys)
		}
	}
}

func TestCampaignRepeatsValidation(t *testing.T) {
	for _, c := range []struct {
		repeats int
		want    string // error substring; "" means valid
	}{
		{0, ""},
		{1, ""},
		{MaxRepeats, ""},
		{-1, "repeats -1 < 0"},
		{MaxRepeats + 1, "exceeds the limit"},
	} {
		spec := Campaign{Name: "x", Repeats: c.repeats}
		err := spec.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("repeats=%d rejected: %v", c.repeats, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("repeats=%d: error %v does not mention %q", c.repeats, err, c.want)
		}
	}
	// The same bounds hold for parsed specs.
	if _, err := ParseCampaign([]byte(`{"name": "x", "repeats": -2}`)); err == nil {
		t.Error("negative repeats accepted at parse time")
	}
	if _, err := ParseCampaign([]byte(`{"name": "x", "repeats": 1000000}`)); err == nil {
		t.Error("oversized repeats accepted at parse time")
	}
}

// A spec with Repeats 1 (or unset) must not change output at all: same
// JSON bytes, no repeats header, no replicas blocks.
func TestCampaignRepeatsOneByteIdentical(t *testing.T) {
	render := func(repeats int) []byte {
		spec := detCampaign()
		spec.Repeats = repeats
		res, err := RunCampaign(NewTestbed(42), spec, TinyScale)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := report.WriteJSON(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	unset := render(0)
	one := render(1)
	if !bytes.Equal(unset, one) {
		t.Error("Repeats: 1 output differs from an unset spec")
	}
	if bytes.Contains(unset, []byte(`"repeats"`)) || bytes.Contains(unset, []byte(`"replicas"`)) {
		t.Error("single-run JSON grew replication fields")
	}
	if bytes.Contains(unset, []byte(`"rep=`)) {
		t.Error("single-run JSON carries replica key segments")
	}
}

// The aggregation contract of a replicated cell: pooled summaries over
// all replica observations, replication fields over replica means, and
// per-replica summaries exposed in order.
func TestCampaignReplicatedAggregation(t *testing.T) {
	res, err := RunCampaign(NewTestbed(7), repGrid(), TinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if res.Repeats != 3 {
		t.Fatalf("result repeats = %d, want 3", res.Repeats)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d, want 2 (replicas must not become cells)", len(res.Cells))
	}
	for i := range res.Cells {
		c := &res.Cells[i]
		if len(c.Replicas) != 3 {
			t.Fatalf("cell %s has %d replicas", c.Key, len(c.Replicas))
		}
		for k, rep := range c.Replicas {
			if want := c.Key + "/rep=" + strconv.Itoa(k); rep.Key != want {
				t.Errorf("replica key = %q, want %q", rep.Key, want)
			}
			if rep.PSNR == nil {
				t.Fatalf("replica %s missing PSNR", rep.Key)
			}
			if rep.PSNR.Reps != 0 || rep.PSNR.StdErr != nil || rep.PSNR.CI95 != nil {
				t.Errorf("replica %s metric carries aggregation fields", rep.Key)
			}
		}
		// Replicas run on independent key-derived seeds: equal means
		// across all three would mean the rep segment is not reaching
		// the fork seed.
		if c.Replicas[0].PSNR.Mean == c.Replicas[1].PSNR.Mean &&
			c.Replicas[1].PSNR.Mean == c.Replicas[2].PSNR.Mean {
			t.Errorf("cell %s replicas are identical", c.Key)
		}
		m := c.PSNR
		if m == nil {
			t.Fatalf("cell %s missing aggregated PSNR", c.Key)
		}
		pooled, lo, hi := 0, c.Replicas[0].PSNR.Mean, c.Replicas[0].PSNR.Mean
		for _, rep := range c.Replicas {
			pooled += rep.PSNR.N
			if rep.PSNR.Mean < lo {
				lo = rep.PSNR.Mean
			}
			if rep.PSNR.Mean > hi {
				hi = rep.PSNR.Mean
			}
		}
		if m.N != pooled {
			t.Errorf("cell %s pooled N = %d, want %d", c.Key, m.N, pooled)
		}
		if m.Reps != 3 {
			t.Errorf("cell %s reps = %d, want 3", c.Key, m.Reps)
		}
		if m.StdErr == nil || m.CI95 == nil {
			t.Fatalf("cell %s missing stderr/ci95", c.Key)
		}
		if got, want := *m.CI95, 1.96*(*m.StdErr); got != want {
			t.Errorf("cell %s ci95 = %v, want 1.96*stderr = %v", c.Key, got, want)
		}
		if m.Mean < lo || m.Mean > hi {
			t.Errorf("cell %s pooled mean %v outside replica-mean range [%v, %v]", c.Key, m.Mean, lo, hi)
		}
		// Audio is off: no replica has MOS, so the aggregate must stay
		// nil rather than becoming a zero-filled metric.
		if c.MOS != nil {
			t.Errorf("cell %s grew a MOS aggregate without audio", c.Key)
		}
		if c.Raw == nil {
			t.Errorf("cell %s lost its raw study result", c.Key)
		}
	}
	// The rendered table reports ±CI and the replication factor.
	out := res.RenderTable().String()
	if !strings.Contains(out, "repeats=3") || !strings.Contains(out, "±") {
		t.Errorf("replicated table missing ±CI chrome:\n%s", out)
	}
	if strings.Contains(out, "NaN") {
		t.Errorf("NaN leaked into replicated table:\n%s", out)
	}
}

// replicatedMetric's edge cases: replicas without data — nil, empty or
// all-NaN samples — are skipped; a single surviving replica keeps its
// summary but has undefined spread.
func TestReplicatedMetricEdgeCases(t *testing.T) {
	sample := func(xs ...float64) *stats.Sample {
		s := &stats.Sample{}
		s.AddAll(xs)
		return s
	}
	if m := replicatedMetric(nil); m != nil {
		t.Errorf("no replicas aggregated to %+v", m)
	}
	if m := replicatedMetric([]*stats.Sample{nil, {}, sample(math.NaN(), math.NaN())}); m != nil {
		t.Errorf("dataless replicas aggregated to %+v", m)
	}
	m := replicatedMetric([]*stats.Sample{nil, sample(1, 2, 3)})
	if m == nil || m.Reps != 1 || m.N != 3 {
		t.Fatalf("single-replica aggregate = %+v", m)
	}
	if m.StdErr != nil || m.CI95 != nil {
		t.Errorf("single replica has defined spread: %+v", m)
	}
	// NaN observations inside an otherwise healthy replica are dropped,
	// not pooled.
	m = replicatedMetric([]*stats.Sample{sample(1, math.NaN()), sample(3)})
	if m == nil || m.N != 2 || m.Reps != 2 {
		t.Fatalf("NaN-bearing aggregate = %+v", m)
	}
	if m.Mean != 2 {
		t.Errorf("pooled mean = %v, want 2", m.Mean)
	}
	if m.StdErr == nil || math.IsNaN(*m.StdErr) {
		t.Errorf("two replicas should define stderr: %+v", m)
	}
}

// The acceptance matrix for replicated campaigns: byte-identical JSON
// across worker counts, cold vs warm store (each replica an
// independent store unit), and local vs dispatched execution.
func TestCampaignReplicatedDeterminism(t *testing.T) {
	dir := t.TempDir()
	render := func(workers int, withStore bool, d Dispatcher) ([]byte, store.Stats) {
		tb := NewTestbed(42).SetParallelism(workers)
		var st *store.Store
		if withStore {
			var err error
			if st, err = store.Open(dir); err != nil {
				t.Fatal(err)
			}
			tb.WithStore(st)
		}
		if d != nil {
			tb.WithDispatcher(d)
		}
		res, err := RunCampaign(tb, repGrid(), TinyScale)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := report.WriteJSON(&buf, res); err != nil {
			t.Fatal(err)
		}
		if err := tb.StoreErr(); err != nil {
			t.Fatal(err)
		}
		var stats store.Stats
		if st != nil {
			stats = st.Stats()
		}
		return buf.Bytes(), stats
	}

	serial, _ := render(1, false, nil)
	parallel, _ := render(8, false, nil)
	if !bytes.Equal(serial, parallel) {
		t.Error("replicated campaign differs between 1 and 8 workers")
	}

	cold, coldStats := render(4, true, nil)
	warm, warmStats := render(2, true, nil)
	if !bytes.Equal(serial, cold) {
		t.Error("stored replicated run differs from plain run")
	}
	if !bytes.Equal(cold, warm) {
		t.Error("warm replicated rerun differs from cold")
	}
	if coldStats.Hits() != 0 || coldStats.Puts != 6 {
		t.Errorf("cold stats = %+v (want one put per replica unit)", coldStats)
	}
	if warmStats.Misses != 0 || warmStats.Puts != 0 || warmStats.Hits() != 6 {
		t.Errorf("warm stats = %+v (want one hit per replica unit)", warmStats)
	}

	d := &workerDispatcher{}
	dist, _ := render(4, false, d)
	if !bytes.Equal(serial, dist) {
		t.Error("dispatched replicated campaign differs from local run")
	}
	if d.calls.Load() != 6 {
		t.Errorf("dispatcher saw %d units, want one per replica (6)", d.calls.Load())
	}
}
