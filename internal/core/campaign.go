package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"github.com/vcabench/vcabench/internal/geo"
	"github.com/vcabench/vcabench/internal/media"
	"github.com/vcabench/vcabench/internal/obs"
	"github.com/vcabench/vcabench/internal/platform"
	"github.com/vcabench/vcabench/internal/report"
	"github.com/vcabench/vcabench/internal/simnet"
	"github.com/vcabench/vcabench/internal/stats"
	"github.com/vcabench/vcabench/internal/trace"
)

// This file is the campaign-matrix engine: the paper's evaluation is a
// systematic sweep over platforms × geometries × motion classes ×
// session sizes × network conditions, and this engine makes those
// sweeps *data* instead of code. A Campaign declares one value list per
// axis; the engine expands the cross product into canonical-keyed
// units, shards them through the scheduler (scheduler.go), and
// aggregates typed, JSON-encodable results. The Figs 12-18 sweeps, the
// §6 extensions and Table 1's measured columns all run on it, as do
// arbitrary grids the paper never measured (see examples/campaign).

// Campaign declares a QoE sweep as a grid of axis values. Every axis
// left empty is normalized to a single-value default, so the smallest
// valid spec is just a name. The cross product of all axes is the
// campaign's cell set.
//
// Cell unit keys are canonical: "<name>/" followed by one segment per
// axis that has more than one value, in the fixed order platform,
// geometry, motion, size, cap, audio, netem, trace. Single-valued axes
// are omitted so that, e.g., the Fig 17 campaign's cells keep their
// historical "fig17/<platform>/<motion>/<cap>" keys. Because shard
// seeds derive from unit keys, adding a second value to an axis changes
// every cell's key and therefore its sampled values — append new
// campaigns rather than widening old ones when stability matters.
type Campaign struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Platforms lists platform kinds ("zoom", "webex", "meet").
	// Default: all three.
	Platforms []string `json:"platforms,omitempty"`
	// Geometries lists host/receiver placements. Default: a US-East
	// host with receivers drawn from the paper's US pool.
	Geometries []Geometry `json:"geometries,omitempty"`
	// Motions lists feed classes ("low-motion", "high-motion").
	// Default: high-motion.
	Motions []string `json:"motions,omitempty"`
	// Sizes lists session sizes, host included (N >= 2). Default: 2.
	Sizes []int `json:"sizes,omitempty"`
	// CapsBps lists downlink caps in bits/s; 0 means uncapped.
	// Default: 0.
	CapsBps []int64 `json:"caps_bps,omitempty"`
	// Audio toggles speech + MOS-LQO scoring. Default: false.
	Audio []bool `json:"audio,omitempty"`
	// Netem lists receiver last-mile impairments. Default: none.
	Netem []Netem `json:"netem,omitempty"`
	// Traces lists time-varying downlink impairment schedules replayed
	// over each session (see internal/trace): explicit step lists or
	// square/sawtooth/step-down generators. Default: no trace. Cells
	// with an active trace also record a rate-over-time series. Traces
	// cannot combine with active netem conditions — encode loss and
	// caps in the trace steps instead.
	Traces []trace.Spec `json:"traces,omitempty"`
	// Repeats is the seed-replication factor: every cell runs Repeats
	// times, each replica an independent "<cellKey>/rep=K" unit with its
	// own key-derived seed, and the cell's metrics aggregate across
	// replicas (mean, stderr, 95% CI over replica means; see Metric).
	// 0 means unset and normalizes to 1 — a single-run campaign whose
	// keys and output are identical to a spec without the field.
	// Negative values and values above MaxRepeats are rejected.
	Repeats int `json:"repeats,omitempty"`
}

// MaxRepeats bounds the Repeats axis. The limit keeps a typo'd spec
// from expanding a campaign into millions of units; genuinely larger
// studies should shard across campaigns instead.
const MaxRepeats = 1000

// Geometry places one campaign cell's session: a host region plus a
// receiver pool. Exactly one of Zone or Receivers must be set; the
// pool is cycled to fill N-1 receiver slots, so one geometry serves
// every session size on the Sizes axis.
type Geometry struct {
	// Name labels the geometry in unit keys and results. Defaults to
	// Host when the axis has a single entry.
	Name string `json:"name,omitempty"`
	// Host is the sender's region name (geo.Lookup).
	Host string `json:"host"`
	// Zone draws receivers from the paper's §4.3 pool for "US" or "EU".
	Zone string `json:"zone,omitempty"`
	// Receivers is an explicit region-name pool, cycled in order.
	// Mixing zones here builds geometries the paper never measured.
	Receivers []string `json:"receivers,omitempty"`
}

// Netem is one receiver-side last-mile condition: random downlink
// loss, a steady downlink cap overriding the CapsBps axis, or a cap
// fluctuating between two rates (the §6 last-mile extension). Loss
// composes with either cap mode; the two cap modes are exclusive.
//
//vcalint:ignore floatfmt input-side spec decoded from JSON, which cannot encode NaN or infinities
type Netem struct {
	// Name labels the condition in unit keys and results.
	Name string `json:"name,omitempty"`
	// LossPct is a random downlink drop percentage in [0, 100).
	LossPct float64 `json:"loss_pct,omitempty"`
	// DownCapBps, when > 0, replaces the cell's CapsBps value.
	DownCapBps int64 `json:"down_cap_bps,omitempty"`
	// FluctHiBps/FluctLoBps/FluctPeriodSec alternate the downlink cap
	// between two rates every period (all three required together).
	FluctHiBps     int64   `json:"fluct_hi_bps,omitempty"`
	FluctLoBps     int64   `json:"fluct_lo_bps,omitempty"`
	FluctPeriodSec float64 `json:"fluct_period_sec,omitempty"`
}

// fluctuating reports whether the condition toggles the downlink cap.
func (ne Netem) fluctuating() bool { return ne.FluctHiBps > 0 }

// ParseCampaign decodes and validates a JSON campaign spec.
func ParseCampaign(data []byte) (Campaign, error) {
	var c Campaign
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Campaign{}, fmt.Errorf("campaign: parse: %w", err)
	}
	// A spec file is exactly one JSON object; trailing data means a
	// corrupted or concatenated file, not a campaign to silently drop.
	if dec.More() {
		return Campaign{}, fmt.Errorf("campaign: parse: trailing data after the spec object")
	}
	if _, err := c.resolve(); err != nil {
		return Campaign{}, err
	}
	return c, nil
}

// Validate checks the spec without running it.
func (c Campaign) Validate() error {
	_, err := c.resolve()
	return err
}

// UnitKeys returns the canonical key of every schedulable unit in
// expansion order: one key per cell for a single-run campaign, and
// Repeats consecutive "<cellKey>/rep=K" keys per cell for a replicated
// one (cell-major, replicas innermost).
func (c Campaign) UnitKeys() ([]string, error) {
	rc, err := c.resolve()
	if err != nil {
		return nil, err
	}
	cells := rc.cells()
	keys := make([]string, 0, len(cells)*rc.repeats)
	for _, cl := range cells {
		keys = append(keys, rc.unitKeys(cl)...)
	}
	return keys, nil
}

// replicaKey appends the replica segment to a cell's canonical key.
// Replicas are ordinary units: the key derives the shard seed, names
// the memo/store entry and routes the unit across the worker fleet, so
// each replica is computed once and distributed like any other cell.
func replicaKey(cellKey string, k int) string {
	return fmt.Sprintf("%s/rep=%d", cellKey, k)
}

// unitKeys expands one cell into its schedulable unit keys. A
// single-run campaign keeps the bare cell key — no "rep=0" segment —
// so Repeats: 1 campaigns share stored units with historical runs.
func (rc *resolvedCampaign) unitKeys(c campaignCell) []string {
	if rc.repeats <= 1 {
		return []string{c.key}
	}
	out := make([]string, rc.repeats)
	for k := range out {
		out[k] = replicaKey(c.key, k)
	}
	return out
}

// resolvedGeometry is a Geometry with regions looked up.
type resolvedGeometry struct {
	name     string
	host     geo.Region
	zone     geo.Zone     // valid when explicit is nil
	explicit []geo.Region // non-nil: cycled receiver pool
}

// receivers returns n receiver placements from the geometry's pool.
func (g resolvedGeometry) receivers(n int) []geo.Region {
	if g.explicit == nil {
		return QoEReceiverRegions(g.zone, n)
	}
	out := make([]geo.Region, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.explicit[i%len(g.explicit)])
	}
	return out
}

// resolvedTrace is one Traces-axis value with its schedule expanded:
// the zero entry (no schedule) is the axis default. The expanded Trace
// participates in the campaign salt, so two same-named schedules with
// different steps never share persisted cells.
type resolvedTrace struct {
	name   string
	active bool
	tr     trace.Trace
}

// resolvedCampaign is a Campaign with defaults applied and every name
// resolved; its axis value lists are all non-empty.
type resolvedCampaign struct {
	name      string
	platforms []platform.Kind
	geoms     []resolvedGeometry
	motions   []media.MotionClass
	sizes     []int
	caps      []int64
	audio     []bool
	netem     []Netem
	traces    []resolvedTrace
	repeats   int
}

// campaignCell is one fully-specified grid point.
type campaignCell struct {
	kind   platform.Kind
	geom   resolvedGeometry
	motion media.MotionClass
	n      int
	capBps int64
	audio  bool
	netem  Netem
	trace  resolvedTrace
	key    string
}

func parseMotion(s string) (media.MotionClass, error) {
	switch s {
	case media.LowMotion.String():
		return media.LowMotion, nil
	case media.HighMotion.String():
		return media.HighMotion, nil
	}
	return 0, fmt.Errorf("campaign: unknown motion class %q (want %q or %q)",
		s, media.LowMotion, media.HighMotion)
}

func parseKind(s string) (platform.Kind, error) {
	for _, k := range platform.Kinds {
		if s == string(k) {
			return k, nil
		}
	}
	return "", fmt.Errorf("campaign: unknown platform %q", s)
}

// resolve normalizes the spec: defaults fill empty axes, names resolve
// to regions, and every axis is checked for valid, duplicate-free
// values (duplicates would collide in the memo table).
func (c Campaign) resolve() (*resolvedCampaign, error) {
	if c.Name == "" {
		return nil, fmt.Errorf("campaign: name is required")
	}
	// "/" separates key segments; a name containing it could make two
	// distinct cells (or campaigns) share one canonical key, breaking
	// the key-injectivity the shard seeds and memo table rely on.
	if strings.Contains(c.Name, "/") {
		return nil, fmt.Errorf("campaign: name %q must not contain %q", c.Name, "/")
	}
	rc := &resolvedCampaign{name: c.Name}

	if len(c.Platforms) == 0 {
		rc.platforms = append(rc.platforms, platform.Kinds...)
	}
	for _, s := range c.Platforms {
		k, err := parseKind(s)
		if err != nil {
			return nil, err
		}
		rc.platforms = append(rc.platforms, k)
	}

	geoms := c.Geometries
	if len(geoms) == 0 {
		geoms = []Geometry{{Name: "us-east", Host: geo.USEast.Name, Zone: string(geo.ZoneUS)}}
	}
	for _, g := range geoms {
		res, err := resolveGeometry(g, len(geoms) > 1)
		if err != nil {
			return nil, err
		}
		rc.geoms = append(rc.geoms, res)
	}

	if len(c.Motions) == 0 {
		rc.motions = []media.MotionClass{media.HighMotion}
	}
	for _, s := range c.Motions {
		m, err := parseMotion(s)
		if err != nil {
			return nil, err
		}
		rc.motions = append(rc.motions, m)
	}

	rc.sizes = c.Sizes
	if len(rc.sizes) == 0 {
		rc.sizes = []int{2}
	}
	for _, n := range rc.sizes {
		if n < 2 {
			return nil, fmt.Errorf("campaign: size %d < 2 (sessions need a host and a receiver)", n)
		}
	}

	rc.caps = c.CapsBps
	if len(rc.caps) == 0 {
		rc.caps = []int64{0}
	}
	for _, cap := range rc.caps {
		if cap < 0 {
			return nil, fmt.Errorf("campaign: negative cap %d bps", cap)
		}
	}

	rc.audio = c.Audio
	if len(rc.audio) == 0 {
		rc.audio = []bool{false}
	}

	rc.netem = c.Netem
	if len(rc.netem) == 0 {
		rc.netem = []Netem{{}}
	}
	for i, ne := range rc.netem {
		if ne.Name == "" && len(rc.netem) > 1 {
			return nil, fmt.Errorf("campaign: netem entry %d needs a name (the axis has %d entries)", i, len(rc.netem))
		}
		if strings.Contains(ne.Name, "/") {
			return nil, fmt.Errorf("campaign: netem name %q must not contain %q", ne.Name, "/")
		}
		if ne.LossPct < 0 || ne.LossPct >= 100 {
			return nil, fmt.Errorf("campaign: netem %q loss_pct %.3g outside [0, 100)", ne.Name, ne.LossPct)
		}
		if ne.DownCapBps < 0 {
			return nil, fmt.Errorf("campaign: netem %q negative down_cap_bps", ne.Name)
		}
		fluctFields := 0
		if ne.FluctHiBps > 0 {
			fluctFields++
		}
		if ne.FluctLoBps > 0 {
			fluctFields++
		}
		if ne.FluctPeriodSec > 0 {
			fluctFields++
		}
		if fluctFields != 0 && fluctFields != 3 {
			return nil, fmt.Errorf("campaign: netem %q needs fluct_hi_bps, fluct_lo_bps and fluct_period_sec together", ne.Name)
		}
		if ne.fluctuating() && ne.DownCapBps > 0 {
			return nil, fmt.Errorf("campaign: netem %q sets both a steady and a fluctuating cap", ne.Name)
		}
		if ne.fluctuating() && ne.FluctLoBps > ne.FluctHiBps {
			return nil, fmt.Errorf("campaign: netem %q fluct_lo_bps > fluct_hi_bps", ne.Name)
		}
		// An active condition must be visible in results: CellResult
		// only records the condition's name, so an unnamed impairment
		// would make impaired cells look like clean runs.
		if ne.Name == "" && ne != (Netem{}) {
			return nil, fmt.Errorf("campaign: netem entry %d sets impairments and needs a name", i)
		}
	}

	specs := c.Traces
	if len(specs) == 0 {
		specs = []trace.Spec{{}}
	}
	for i, ts := range specs {
		rt := resolvedTrace{name: ts.Name, active: ts.Active()}
		if ts.Name == "" && len(specs) > 1 {
			return nil, fmt.Errorf("campaign: trace entry %d needs a name (the axis has %d entries)", i, len(specs))
		}
		// Like netem: an active schedule must be visible in results.
		if ts.Name == "" && rt.active {
			return nil, fmt.Errorf("campaign: trace entry %d sets a schedule and needs a name", i)
		}
		if strings.Contains(ts.Name, "/") {
			return nil, fmt.Errorf("campaign: trace name %q must not contain %q", ts.Name, "/")
		}
		if rt.active {
			tr, err := ts.Resolve()
			if err != nil {
				return nil, fmt.Errorf("campaign: %w", err)
			}
			rt.tr = tr
		}
		rc.traces = append(rc.traces, rt)
	}
	// A trace owns the receiver downlink while it plays; crossing it
	// with a netem cap or loss would leave two owners of the same
	// shaper state. Reject the grid rather than silently letting steps
	// stomp netem conditions.
	if anyActiveTrace(rc.traces) {
		for _, ne := range rc.netem {
			if ne.LossPct > 0 || ne.DownCapBps > 0 || ne.fluctuating() {
				return nil, fmt.Errorf("campaign: netem %q cannot combine with a trace axis; encode loss and caps in the trace steps", ne.Name)
			}
		}
	}

	rc.repeats = c.Repeats
	if rc.repeats == 0 {
		rc.repeats = 1
	}
	if rc.repeats < 0 {
		return nil, fmt.Errorf("campaign: repeats %d < 0", c.Repeats)
	}
	if rc.repeats > MaxRepeats {
		return nil, fmt.Errorf("campaign: repeats %d exceeds the limit of %d", c.Repeats, MaxRepeats)
	}

	// Duplicate axis values collide in the memo table: reject them.
	if err := uniqueSegments(rc); err != nil {
		return nil, err
	}
	return rc, nil
}

func anyActiveTrace(ts []resolvedTrace) bool {
	for _, t := range ts {
		if t.active {
			return true
		}
	}
	return false
}

func resolveGeometry(g Geometry, named bool) (resolvedGeometry, error) {
	var res resolvedGeometry
	if g.Host == "" {
		return res, fmt.Errorf("campaign: geometry %q has no host", g.Name)
	}
	host, err := geo.Lookup(g.Host)
	if err != nil {
		return res, fmt.Errorf("campaign: geometry %q: %w", g.Name, err)
	}
	res.host = host
	res.name = g.Name
	if res.name == "" {
		if named {
			return res, fmt.Errorf("campaign: every geometry needs a name when the axis has several")
		}
		res.name = g.Host
	}
	if strings.Contains(res.name, "/") {
		return res, fmt.Errorf("campaign: geometry name %q must not contain %q", res.name, "/")
	}
	switch {
	case g.Zone != "" && len(g.Receivers) > 0:
		return res, fmt.Errorf("campaign: geometry %q sets both zone and receivers", res.name)
	case g.Zone != "":
		if z := geo.Zone(g.Zone); z != geo.ZoneUS && z != geo.ZoneEU {
			return res, fmt.Errorf("campaign: geometry %q: unknown zone %q (want %q or %q)",
				res.name, g.Zone, geo.ZoneUS, geo.ZoneEU)
		}
		res.zone = geo.Zone(g.Zone)
	case len(g.Receivers) > 0:
		for _, name := range g.Receivers {
			r, err := geo.Lookup(name)
			if err != nil {
				return res, fmt.Errorf("campaign: geometry %q: %w", res.name, err)
			}
			res.explicit = append(res.explicit, r)
		}
	default:
		return res, fmt.Errorf("campaign: geometry %q needs a zone or a receiver list", res.name)
	}
	return res, nil
}

// uniqueSegments rejects axis values whose key segments repeat.
func uniqueSegments(rc *resolvedCampaign) error {
	check := func(axis string, segs []string) error {
		seen := make(map[string]bool, len(segs))
		for _, s := range segs {
			if seen[s] {
				return fmt.Errorf("campaign: duplicate %s %q", axis, s)
			}
			seen[s] = true
		}
		return nil
	}
	segs := func(n int, f func(i int) string) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = f(i)
		}
		return out
	}
	if err := check("platform", segs(len(rc.platforms), func(i int) string { return string(rc.platforms[i]) })); err != nil {
		return err
	}
	if err := check("geometry name", segs(len(rc.geoms), func(i int) string { return rc.geoms[i].name })); err != nil {
		return err
	}
	if err := check("motion", segs(len(rc.motions), func(i int) string { return rc.motions[i].String() })); err != nil {
		return err
	}
	if err := check("size", segs(len(rc.sizes), func(i int) string { return strconv.Itoa(rc.sizes[i]) })); err != nil {
		return err
	}
	if err := check("cap", segs(len(rc.caps), func(i int) string { return strconv.FormatInt(rc.caps[i], 10) })); err != nil {
		return err
	}
	if err := check("audio value", segs(len(rc.audio), func(i int) string { return audioSegment(rc.audio[i]) })); err != nil {
		return err
	}
	if err := check("netem name", segs(len(rc.netem), func(i int) string { return rc.netem[i].Name })); err != nil {
		return err
	}
	return check("trace name", segs(len(rc.traces), func(i int) string { return rc.traces[i].name }))
}

func audioSegment(on bool) string {
	if on {
		return "audio"
	}
	return "noaudio"
}

// salt scopes persisted cells to the full resolved spec: single-valued
// axes never become key segments, so two same-named campaigns differing
// only there share unit keys but must not share stored cells. Equal
// resolved specs (fig12/fig14/fig15) produce equal salts and keep
// sharing across processes — and across machines, since the worker
// side of distributed execution (RunCampaignUnit) derives the same
// salt from the shipped spec.
func (rc *resolvedCampaign) salt() string {
	return fingerprint(fmt.Sprintf("%+v", rc))
}

// cells expands the grid in canonical axis order. Expansion order only
// affects scheduling and result ordering — never values, which depend
// solely on each cell's key-derived seed.
func (rc *resolvedCampaign) cells() []campaignCell {
	var out []campaignCell
	for _, kind := range rc.platforms {
		for _, g := range rc.geoms {
			for _, m := range rc.motions {
				for _, n := range rc.sizes {
					for _, cap := range rc.caps {
						for _, audio := range rc.audio {
							for _, ne := range rc.netem {
								for _, rt := range rc.traces {
									cell := campaignCell{
										kind: kind, geom: g, motion: m, n: n,
										capBps: cap, audio: audio, netem: ne, trace: rt,
									}
									cell.key = rc.key(cell)
									out = append(out, cell)
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// key builds a cell's canonical unit key: the campaign name plus one
// segment per multi-valued axis, in fixed axis order.
func (rc *resolvedCampaign) key(c campaignCell) string {
	segs := []string{rc.name}
	if len(rc.platforms) > 1 {
		segs = append(segs, string(c.kind))
	}
	if len(rc.geoms) > 1 {
		segs = append(segs, c.geom.name)
	}
	if len(rc.motions) > 1 {
		segs = append(segs, c.motion.String())
	}
	if len(rc.sizes) > 1 {
		segs = append(segs, strconv.Itoa(c.n))
	}
	if len(rc.caps) > 1 {
		segs = append(segs, strconv.FormatInt(c.capBps, 10))
	}
	if len(rc.audio) > 1 {
		segs = append(segs, audioSegment(c.audio))
	}
	if len(rc.netem) > 1 {
		segs = append(segs, c.netem.Name)
	}
	if len(rc.traces) > 1 {
		segs = append(segs, c.trace.name)
	}
	return strings.Join(segs, "/")
}

// fluctTrace lowers a fluctuating netem condition onto the trace
// subsystem: a repeating square wave that starts high and toggles
// every period, carrying the condition's loss in every step (steps are
// absolute state, so an unmentioned loss would be cleared). Replayed
// whole-run from the setup hook, its event schedule is instant-for-
// instant identical to the Sim.Every toggle loop it replaced.
func fluctTrace(ne Netem) trace.Trace {
	period := time.Duration(ne.FluctPeriodSec * float64(time.Second))
	return trace.Trace{
		Name:      ne.Name,
		RepeatSec: (2 * period).Seconds(),
		Steps: []trace.Step{
			{AtSec: 0, DownCapBps: ne.FluctHiBps, LossPct: ne.LossPct},
			{AtSec: period.Seconds(), DownCapBps: ne.FluctLoBps, LossPct: ne.LossPct},
		},
	}
}

// runCell executes one grid point on its forked testbed, translating
// the cell's axes into the QoE study's options and last-mile setup.
func runCell(stb *Testbed, c campaignCell, sc Scale) *QoEStudyResult {
	opts := QoEOpts{DownlinkCapBps: c.capBps, WithAudio: c.audio}
	ne := c.netem
	if ne.DownCapBps > 0 {
		opts.DownlinkCapBps = ne.DownCapBps
	}
	if ne.fluctuating() {
		opts.DownlinkCapBps = ne.FluctHiBps
	}
	if c.trace.active {
		tr := c.trace.tr
		opts.Trace = &tr
	}
	var setup func([]*simnet.Node)
	if ne.LossPct > 0 || ne.fluctuating() {
		setup = func(recvNodes []*simnet.Node) {
			for _, n := range recvNodes {
				if ne.LossPct > 0 {
					n.SetDownlinkLoss(ne.LossPct / 100)
				}
				if ne.fluctuating() {
					trace.PlayWithProbe(stb.Sim, n, fluctTrace(ne), shaperBurst, stb.traceProbe())
				}
			}
		}
	}
	return RunQoEStudyWithSetup(stb, c.kind, c.geom.host, c.geom.receivers(c.n-1),
		c.motion, sc, opts, setup)
}

// Metric summarizes one sample of a cell result. A nil Metric (absent
// in JSON) means the cell collected no observations for that signal —
// e.g. MOS with audio off — never a zero-filled summary.
//
// On the aggregated metrics of a replicated cell (Campaign.Repeats > 1)
// the summary pools every replica's observations (N counts the pooled
// total) and the replication fields are set: Reps is the number of
// replicas that contributed data, and StdErr/CI95 are the standard
// error and 95% confidence half-width of the mean computed over the
// per-replica means (stats.Sample.StdErr/CI95 — a z-interval, see
// there for the formula). Both pointers are nil when the spread is
// undefined (fewer than two contributing replicas), mirroring the nil-
// Metric contract: absent, never NaN, rendered "-".
//
//vcalint:ignore floatfmt summaries of a non-empty stats.Sample are finite by construction; absence is the nil *Metric, NaN spreads are the nil pointers
type Metric struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	P25  float64 `json:"p25"`
	P50  float64 `json:"p50"`
	P75  float64 `json:"p75"`
	Max  float64 `json:"max"`

	Reps   int      `json:"reps,omitempty"`
	StdErr *float64 `json:"stderr,omitempty"`
	CI95   *float64 `json:"ci95,omitempty"`
}

func metricOf(s *stats.Sample) *Metric {
	if s == nil || s.Len() == 0 {
		return nil
	}
	return &Metric{
		N:    s.Len(),
		Mean: s.Mean(),
		Min:  s.Min(),
		P25:  s.Quantile(0.25),
		P50:  s.Median(),
		P75:  s.Quantile(0.75),
		Max:  s.Max(),
	}
}

// replicatedMetric aggregates one signal across a cell's replicas:
// observations pool into the headline summary, and the replication
// fields come from the per-replica means. Replicas with no data for
// the signal — nil, empty, or all-NaN samples — are skipped rather
// than poisoning the aggregate; nil when no replica contributed.
func replicatedMetric(samples []*stats.Sample) *Metric {
	pooled := &stats.Sample{}
	means := &stats.Sample{}
	for _, s := range samples {
		if s == nil || s.Len() == 0 {
			continue
		}
		rep := stats.NewSample(s.Len())
		for _, x := range s.Values() {
			if !math.IsNaN(x) {
				rep.Add(x)
			}
		}
		if rep.Len() == 0 {
			continue
		}
		pooled.AddAll(rep.Values())
		means.Add(rep.Mean())
	}
	m := metricOf(pooled)
	if m == nil {
		return nil
	}
	m.Reps = means.Len()
	if se := means.StdErr(); !math.IsNaN(se) {
		ci := means.CI95()
		m.StdErr = &se
		m.CI95 = &ci
	}
	return m
}

// metricSlots pairs each QoE signal's sample with its Metric field on
// CellResult and CellReplica, so replication aggregates every signal
// through one loop instead of seven hand-written blocks.
var metricSlots = []struct {
	sample func(*QoEStudyResult) *stats.Sample
	cell   func(*CellResult) **Metric
	rep    func(*CellReplica) **Metric
}{
	{func(q *QoEStudyResult) *stats.Sample { return q.PSNR }, func(c *CellResult) **Metric { return &c.PSNR }, func(r *CellReplica) **Metric { return &r.PSNR }},
	{func(q *QoEStudyResult) *stats.Sample { return q.SSIM }, func(c *CellResult) **Metric { return &c.SSIM }, func(r *CellReplica) **Metric { return &r.SSIM }},
	{func(q *QoEStudyResult) *stats.Sample { return q.VIFP }, func(c *CellResult) **Metric { return &c.VIFP }, func(r *CellReplica) **Metric { return &r.VIFP }},
	{func(q *QoEStudyResult) *stats.Sample { return q.Freeze }, func(c *CellResult) **Metric { return &c.Freeze }, func(r *CellReplica) **Metric { return &r.Freeze }},
	{func(q *QoEStudyResult) *stats.Sample { return q.UpMbps }, func(c *CellResult) **Metric { return &c.UpMbps }, func(r *CellReplica) **Metric { return &r.UpMbps }},
	{func(q *QoEStudyResult) *stats.Sample { return q.DownMbps }, func(c *CellResult) **Metric { return &c.DownMbps }, func(r *CellReplica) **Metric { return &r.DownMbps }},
	{func(q *QoEStudyResult) *stats.Sample { return q.MOS }, func(c *CellResult) **Metric { return &c.MOS }, func(r *CellReplica) **Metric { return &r.MOS }},
}

// CellResult is one grid point's outcome: its axis coordinates, the
// canonical unit key (which names the memo entry and derives the shard
// seed), and summarized QoE metrics. Raw retains the full study result
// for library callers; it is not serialized.
type CellResult struct {
	Key      string `json:"key"`
	Platform string `json:"platform"`
	Geometry string `json:"geometry"`
	Motion   string `json:"motion"`
	N        int    `json:"n"`
	CapBps   int64  `json:"cap_bps"`
	Audio    bool   `json:"audio"`
	Netem    string `json:"netem,omitempty"`
	Trace    string `json:"trace,omitempty"`

	PSNR     *Metric `json:"psnr,omitempty"`
	SSIM     *Metric `json:"ssim,omitempty"`
	VIFP     *Metric `json:"vifp,omitempty"`
	Freeze   *Metric `json:"freeze,omitempty"`
	UpMbps   *Metric `json:"up_mbps,omitempty"`
	DownMbps *Metric `json:"down_mbps,omitempty"`
	MOS      *Metric `json:"mos,omitempty"`

	// DropsQueue / DropsRandom total the cell's access-pipe drops by
	// cause (simnet.PipeStats split) — present only when the campaign
	// ran with diagnostics armed, so bare runs stay byte-identical to
	// pre-diagnostics output. For a replicated cell they report the
	// first replica's totals (the same replica Raw retains).
	DropsQueue  int64 `json:"drops_queue,omitempty"`
	DropsRandom int64 `json:"drops_random,omitempty"`

	// RateOverTime is the mean per-receiver downlink rate over session
	// time — present only for trace-driven cells, where it makes each
	// platform's disturbance response and recovery inspectable. For a
	// replicated cell the series is the bin-wise mean across replicas.
	RateOverTime []RatePoint `json:"rate_over_time,omitempty"`

	// Replicas holds each replica's own metric summaries, in replica
	// order — present only for replicated cells (Campaign.Repeats > 1),
	// where it exposes the per-run values behind the aggregated ±CI.
	Replicas []CellReplica `json:"replicas,omitempty"`

	// Raw retains the full study result (the first replica's, for
	// replicated cells); it is not serialized.
	Raw *QoEStudyResult `json:"-"`
}

// CellReplica is one replica's view of a replicated cell: its unit key
// ("<cellKey>/rep=K") and per-signal summaries. Replica metrics never
// carry replication fields — there is nothing to aggregate within one
// run.
type CellReplica struct {
	Key      string  `json:"key"`
	PSNR     *Metric `json:"psnr,omitempty"`
	SSIM     *Metric `json:"ssim,omitempty"`
	VIFP     *Metric `json:"vifp,omitempty"`
	Freeze   *Metric `json:"freeze,omitempty"`
	UpMbps   *Metric `json:"up_mbps,omitempty"`
	DownMbps *Metric `json:"down_mbps,omitempty"`
	MOS      *Metric `json:"mos,omitempty"`
}

// RatePoint is one bin of a cell's rate-over-time series.
//
//vcalint:ignore floatfmt bin offsets and mean rates are finite by construction (finite bin width, finite byte counts)
type RatePoint struct {
	// AtSec is the bin's start offset from session start, in seconds.
	AtSec float64 `json:"at_sec"`
	// DownMbps is the mean per-receiver downlink rate in the bin.
	DownMbps float64 `json:"down_mbps"`
}

// ratePoints converts a study's binned series into JSON-able points.
func ratePoints(q *QoEStudyResult) []RatePoint {
	if len(q.RateOverTime) == 0 {
		return nil
	}
	out := make([]RatePoint, len(q.RateOverTime))
	for i, v := range q.RateOverTime {
		out[i] = RatePoint{AtSec: float64(i) * q.RateBin.Seconds(), DownMbps: v}
	}
	return out
}

// meanRatePoints averages the replicas' rate-over-time series bin by
// bin. All replicas of a cell share the bin width; should their series
// lengths differ (sessions ending mid-bin), each bin averages only the
// replicas that recorded it.
func meanRatePoints(qs []*QoEStudyResult) []RatePoint {
	maxLen := 0
	for _, q := range qs {
		if len(q.RateOverTime) > maxLen {
			maxLen = len(q.RateOverTime)
		}
	}
	if maxLen == 0 {
		return nil
	}
	bin := qs[0].RateBin.Seconds()
	out := make([]RatePoint, maxLen)
	for i := range out {
		sum, n := 0.0, 0
		for _, q := range qs {
			if i < len(q.RateOverTime) {
				sum += q.RateOverTime[i]
				n++
			}
		}
		out[i] = RatePoint{AtSec: float64(i) * bin, DownMbps: sum / float64(n)}
	}
	return out
}

// CampaignResult aggregates a campaign run. Cells appear in expansion
// order; for a given spec, scale and seed the JSON encoding is
// byte-identical at any worker count.
type CampaignResult struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Scale       string `json:"scale"`
	Seed        int64  `json:"seed"`
	// Repeats is the replication factor, recorded only when it exceeds
	// 1 so that single-run results stay byte-identical to pre-
	// replication output.
	Repeats int          `json:"repeats,omitempty"`
	Cells   []CellResult `json:"cells"`
}

// Cell returns the cell with the given canonical unit key, or nil.
func (r *CampaignResult) Cell(key string) *CellResult {
	for i := range r.Cells {
		if r.Cells[i].Key == key {
			return &r.Cells[i]
		}
	}
	return nil
}

// mustCell is Cell for renderers whose keys come from their own spec.
func (r *CampaignResult) mustCell(key string) *CellResult {
	c := r.Cell(key)
	if c == nil {
		panic("core: campaign " + r.Name + " has no cell " + key)
	}
	return c
}

// RunCampaign expands the spec and executes every unit through the
// memo-aware scheduler: each unit runs on a testbed forked from its
// canonical key, so results depend only on (seed, key) and campaigns
// sharing cell keys (fig12/fig14/fig15) share computed units. A
// replicated campaign (Repeats > 1) schedules Repeats independent
// replica units per cell — fanned across workers and persisted in the
// store exactly like cells — and aggregates them into each CellResult.
func RunCampaign(tb *Testbed, spec Campaign, sc Scale) (*CampaignResult, error) {
	rc, err := spec.resolve()
	if err != nil {
		return nil, err
	}
	// Keys omit single-valued axes, so two same-named campaigns whose
	// specs differ only there would expand to identical keys and
	// silently read each other's memoized cells. Pin each campaign
	// name to one resolved spec per testbed.
	if err := tb.registerCampaign(rc.name, fmt.Sprintf("%+v/%s", rc, sc.Name)); err != nil {
		return nil, err
	}
	cells := rc.cells()
	reps := rc.repeats
	keys := make([]string, 0, len(cells)*reps)
	for _, c := range cells {
		keys = append(keys, rc.unitKeys(c)...)
	}
	// Trace the lifecycle: one campaign span, an envelope span per cell
	// (and per replica when replicated) whose extent derives from its
	// unit children, and the per-unit parent map runMemoized hangs unit
	// spans off. All observational — res never depends on tr.
	tr := tb.tracer()
	var campSpan obs.SpanID
	var parents map[string]obs.SpanID
	if tr != nil {
		campSpan = tr.Start(0, obs.TierCampaign, rc.name,
			obs.Label{Name: "scale", Value: sc.Name},
			obs.Label{Name: "cells", Value: strconv.Itoa(len(cells))},
			obs.Label{Name: "repeats", Value: strconv.Itoa(reps)})
		parents = make(map[string]obs.SpanID, len(keys))
		for _, c := range cells {
			cellSpan := tr.Open(campSpan, obs.TierCell, c.key)
			if reps == 1 {
				parents[c.key] = cellSpan
			} else {
				for k := 0; k < reps; k++ {
					rk := replicaKey(c.key, k)
					parents[rk] = tr.Open(cellSpan, obs.TierReplica, rk)
				}
			}
		}
	}
	// The remote tier (nil without a dispatcher) offers units the memo
	// and store don't hold to the worker fleet; unserved units fall
	// back to the local scheduler below, so fleet topology and failures
	// never reach the merged result. Unit i belongs to cell i/reps
	// (cell-major key layout); the cell's axes are shared by all its
	// replicas while the per-unit key alone differentiates their seeds.
	res := tb.runMemoized(sc, rc.salt(), keys, parents, func(stb *Testbed, i int) any {
		return runCell(stb, cells[i/reps], sc)
	}, tb.remoteRunner(spec, sc))
	tr.End(campSpan)
	out := &CampaignResult{
		Name:        spec.Name,
		Description: spec.Description,
		Scale:       sc.Name,
		Seed:        tb.Seed(),
		Cells:       make([]CellResult, len(cells)),
	}
	if reps > 1 {
		out.Repeats = reps
	}
	for i, c := range cells {
		cr := CellResult{
			Key:      c.key,
			Platform: string(c.kind),
			Geometry: c.geom.name,
			Motion:   c.motion.String(),
			N:        c.n,
			CapBps:   c.capBps,
			Audio:    c.audio,
			Netem:    c.netem.Name,
			Trace:    c.trace.name,
		}
		if reps == 1 {
			q := res[i].(*QoEStudyResult)
			cr.PSNR = metricOf(q.PSNR)
			cr.SSIM = metricOf(q.SSIM)
			cr.VIFP = metricOf(q.VIFP)
			cr.Freeze = metricOf(q.Freeze)
			cr.UpMbps = metricOf(q.UpMbps)
			cr.DownMbps = metricOf(q.DownMbps)
			cr.MOS = metricOf(q.MOS)
			cr.RateOverTime = ratePoints(q)
			cr.Raw = q
			if q.Diag != nil {
				cr.DropsQueue = q.Diag.DropsQueue
				cr.DropsRandom = q.Diag.DropsRandom
				tb.diagAdd(q.Diag)
			}
		} else {
			qs := make([]*QoEStudyResult, reps)
			for k := range qs {
				qs[k] = res[i*reps+k].(*QoEStudyResult)
			}
			cr.Replicas = make([]CellReplica, reps)
			for k := range cr.Replicas {
				cr.Replicas[k].Key = replicaKey(c.key, k)
			}
			samples := make([]*stats.Sample, reps)
			for _, slot := range metricSlots {
				for k, q := range qs {
					samples[k] = slot.sample(q)
					*slot.rep(&cr.Replicas[k]) = metricOf(samples[k])
				}
				*slot.cell(&cr) = replicatedMetric(samples)
			}
			cr.RateOverTime = meanRatePoints(qs)
			cr.Raw = qs[0]
			// Each replica recorded under its own "<cellKey>/rep=K" key;
			// the cell-level drop totals mirror Raw's replica choice.
			for _, q := range qs {
				tb.diagAdd(q.Diag)
			}
			if qs[0].Diag != nil {
				cr.DropsQueue = qs[0].Diag.DropsQueue
				cr.DropsRandom = qs[0].Diag.DropsRandom
			}
		}
		out.Cells[i] = cr
	}
	return out, nil
}

// mustRunCampaign backs the built-in figure renderers, whose specs are
// compile-time constants and cannot fail to resolve.
func mustRunCampaign(tb *Testbed, spec Campaign, sc Scale) *CampaignResult {
	r, err := RunCampaign(tb, spec, sc)
	if err != nil {
		panic("core: " + err.Error())
	}
	return r
}

// RenderTable flattens the campaign into one row per cell with mean
// metric values — the generic text view for grids that have no bespoke
// figure renderer. Cells without a signal render "-". Replicated
// campaigns render every metric as "mean ±ci" (the 95% confidence
// half-width over replica means; "±-" when undefined) and note the
// replication factor in the title.
func (r *CampaignResult) RenderTable() *report.Table {
	title := fmt.Sprintf("campaign %s (scale=%s, seed=%d)", r.Name, r.Scale, r.Seed)
	if r.Repeats > 1 {
		title = fmt.Sprintf("campaign %s (scale=%s, seed=%d, repeats=%d)", r.Name, r.Scale, r.Seed, r.Repeats)
	}
	t := &report.Table{
		Title: title,
		Header: []string{"platform", "geometry", "motion", "N", "cap", "audio", "netem", "trace",
			"PSNR", "SSIM", "VIFp", "freeze", "up Mbps", "down Mbps", "MOS"},
	}
	mean := func(m *Metric) any {
		if m == nil {
			return "-"
		}
		if r.Repeats > 1 {
			ci := math.NaN()
			if m.CI95 != nil {
				ci = *m.CI95
			}
			return report.PlusMinus(m.Mean, ci)
		}
		return m.Mean
	}
	dash := func(s string) string {
		if s == "" {
			return "-"
		}
		return s
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		t.AddRow(c.Platform, c.Geometry, c.Motion, c.N, CapLabel(c.CapBps),
			audioSegment(c.Audio), dash(c.Netem), dash(c.Trace),
			mean(c.PSNR), mean(c.SSIM), mean(c.VIFP), mean(c.Freeze),
			mean(c.UpMbps), mean(c.DownMbps), mean(c.MOS))
	}
	return t
}
