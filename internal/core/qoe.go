package core

import (
	"math"
	"time"

	"github.com/vcabench/vcabench/internal/capture"
	"github.com/vcabench/vcabench/internal/client"
	"github.com/vcabench/vcabench/internal/diag"
	"github.com/vcabench/vcabench/internal/geo"
	"github.com/vcabench/vcabench/internal/media"
	"github.com/vcabench/vcabench/internal/platform"
	"github.com/vcabench/vcabench/internal/qoe"
	"github.com/vcabench/vcabench/internal/simnet"
	"github.com/vcabench/vcabench/internal/stats"
	"github.com/vcabench/vcabench/internal/trace"
)

// shaperBurst is the token-bucket depth of every receiver-side cap:
// the tc-tbf burst the paper's last-mile setup used.
const shaperBurst = 24 * 1024

// rateBinWidth is the RateOverTime bin width. One second resolves the
// recovery dynamics the paper plots while keeping paper-scale series
// to a few hundred points.
const rateBinWidth = time.Second

// QoEOpts tunes a QoE study beyond its geometry.
type QoEOpts struct {
	// DownlinkCapBps applies a tc-style token-bucket cap on every
	// receiver's ingress (Figs 17/18); 0 means unlimited.
	DownlinkCapBps int64
	// WithAudio streams speech alongside video and scores MOS-LQO.
	WithAudio bool
	// Trace, when non-nil, replays a time-varying impairment schedule
	// on every receiver's downlink over each session (restarting at
	// every session start), and collects the RateOverTime series. The
	// trace owns the downlink while it plays: DownlinkCapBps is only
	// the pre-trace baseline, restored between sessions.
	Trace *trace.Trace
}

// QoEStudyResult aggregates one (platform, motion, N) cell of Figs 12-18.
type QoEStudyResult struct {
	Kind   platform.Kind
	Motion media.MotionClass
	N      int // users in the session, host included

	PSNR, SSIM, VIFP *stats.Sample // across sessions × receivers
	Freeze           *stats.Sample
	UpMbps, DownMbps *stats.Sample // host upload / receiver download (L7)
	MOS              *stats.Sample // audio, when WithAudio

	// RateOverTime is the mean per-receiver downlink rate (Mbps) in
	// consecutive RateBin-wide bins of session time, averaged across
	// sessions and receivers — how recovery dynamics under a
	// time-varying trace become inspectable. nil for trace-free cells.
	RateOverTime []float64
	RateBin      time.Duration

	// Diag is the cell's flight-recorder document; nil unless the
	// testbed was armed with WithDiagnostics. It rides the result
	// through the memo, the CellStore gob and the Dispatcher, so every
	// resolution tier yields the same bytes.
	Diag *diag.CellDiag
}

func newQoEResult(kind platform.Kind, motion media.MotionClass, n int) *QoEStudyResult {
	return &QoEStudyResult{
		Kind: kind, Motion: motion, N: n,
		PSNR: stats.NewSample(0), SSIM: stats.NewSample(0), VIFP: stats.NewSample(0),
		Freeze: stats.NewSample(0),
		UpMbps: stats.NewSample(0), DownMbps: stats.NewSample(0),
		MOS: stats.NewSample(0),
	}
}

// RunQoEStudy reproduces one §4.3 cell: a host VM injecting a motion-
// class feed into sc.QoESessions sessions, with every receiver's desktop
// recording scored by PSNR/SSIM/VIFp against the injected original, and
// data rates computed from L7 trace payloads.
func RunQoEStudy(tb *Testbed, kind platform.Kind, host geo.Region, recvRegions []geo.Region,
	motion media.MotionClass, sc Scale, opts QoEOpts) *QoEStudyResult {
	return RunQoEStudyWithSetup(tb, kind, host, recvRegions, motion, sc, opts, nil)
}

// RunQoEStudyWithSetup is RunQoEStudy with a hook invoked once after the
// receiver nodes exist and before any session starts — the seam used by
// the last-mile extension to install time-varying shapers.
func RunQoEStudyWithSetup(tb *Testbed, kind platform.Kind, host geo.Region, recvRegions []geo.Region,
	motion media.MotionClass, sc Scale, opts QoEOpts, setup func(recvNodes []*simnet.Node)) *QoEStudyResult {

	pf := tb.Platform(kind)
	resolve := tb.Resolver()
	res := newQoEResult(kind, motion, len(recvRegions)+1)

	var clip *media.AudioClip
	if opts.WithAudio {
		clip = media.NewSpeech(sc.QoEDur.Seconds(), tb.seed+11)
	}
	hostClient := client.New(tb.Net, client.Config{
		Name:       tb.uniqueName("qoe-" + string(kind) + "-host"),
		Region:     host,
		SendVideo:  true,
		VideoClass: motion,
		Profile:    sc.Profile,
		SendAudio:  opts.WithAudio,
		AudioClip:  clip,
		Seed:       tb.seed + 300,
		Resolve:    resolve,
	})
	recvs := make([]*client.Client, len(recvRegions))
	for i, r := range recvRegions {
		name := tb.uniqueName("qoe-" + string(kind) + "-r" + r.Name)
		cfg := client.Config{
			Name:    name,
			Region:  r,
			Profile: sc.Profile,
			Seed:    tb.seed + 400 + int64(i),
			Resolve: resolve,
			Probe:   tb.clientProbe(name),
		}
		if opts.DownlinkCapBps > 0 || opts.Trace != nil {
			// tc-tbf style: a short buffer, so overload surfaces as loss
			// within ~1 s instead of an unbounded standing queue.
			cfg.QueueBytes = 32 * 1024
		}
		recvs[i] = client.New(tb.Net, cfg)
		if opts.DownlinkCapBps > 0 {
			recvs[i].Node().SetDownlinkShaper(simnet.NewTokenBucket(opts.DownlinkCapBps, shaperBurst))
		}
	}

	if setup != nil {
		nodes := make([]*simnet.Node, len(recvs))
		for i, r := range recvs {
			nodes[i] = r.Node()
		}
		setup(nodes)
	}

	// One scorer per study: receivers of a session score against the
	// same injected frames and share decoded-frame pointers, so the
	// scorer's identity-keyed caches collapse that repeated work without
	// changing any output bit. The scorer lives and dies with this call,
	// on this goroutine — fork-safe by construction.
	scorer := qoe.NewScorer()

	// A trace-driven cell bins every receiver's downlink bytes over
	// session time; bins average across sessions × receivers at the end.
	var binBytes []int64
	if opts.Trace != nil {
		binBytes = make([]int64, int((sc.QoEDur+rateBinWidth-1)/rateBinWidth))
	}

	all := append([]*client.Client{hostClient}, recvs...)
	for sess := 0; sess < sc.QoESessions; sess++ {
		s := pf.CreateSession()
		for _, c := range all {
			c.Join(s)
		}
		s.Start()
		from := tb.Sim.Now()
		for _, c := range all {
			c.Start()
		}
		// The trace restarts at every session start, so each session
		// sees the same disturbance schedule in session time.
		var players []*trace.Player
		if opts.Trace != nil {
			for _, r := range recvs {
				players = append(players, trace.PlayWithProbe(tb.Sim, r.Node(), *opts.Trace, shaperBurst, tb.traceProbe()))
			}
		}
		tb.Sim.RunFor(sc.QoEDur)
		for _, c := range all {
			c.Stop()
		}
		s.End()
		to := tb.Sim.Now()
		// Freeze the schedule and restore the pre-trace baseline before
		// the inter-session gap.
		for i, p := range players {
			p.Stop()
			recvs[i].Node().SetDownlinkState(simnet.LinkState{CapBps: opts.DownlinkCapBps, Burst: shaperBurst})
		}

		// Score this session.
		hostWin := hostClient.Trace().Between(from, to)
		res.UpMbps.Add(hostWin.Rate(capture.Out) / 1e6)
		for _, r := range recvs {
			rec := r.Record(hostClient)
			tb.recordFreezes(rec, r.Name(), from, sc.Profile.FPS)
			v := scorer.CompareVideo(rec.Ref, rec.Displayed, sc.QoEStride)
			res.PSNR.Add(v.PSNR)
			res.SSIM.Add(v.SSIM)
			res.VIFP.Add(v.VIFP)
			res.Freeze.Add(v.FreezeRatio)
			win := r.Trace().Between(from, to)
			res.DownMbps.Add(win.Rate(capture.In) / 1e6)
			if opts.WithAudio && rec.Audio != nil {
				res.MOS.Add(qoe.MOSLQO(rec.RefAudio, rec.Audio))
			}
			for b := range binBytes {
				bs := from.Add(time.Duration(b) * rateBinWidth)
				be := bs.Add(rateBinWidth)
				if be.After(to) {
					be = to
				}
				binBytes[b] += win.Between(bs, be).Bytes(capture.In)
			}
		}
		for _, c := range all {
			c.Reset()
		}
		tb.Sim.RunFor(2 * time.Second)
	}
	if binBytes != nil {
		res.RateBin = rateBinWidth
		res.RateOverTime = make([]float64, len(binBytes))
		for b, n := range binBytes {
			// The final bin is clamped to the session end, so its rate
			// normalizes over its actual span, not the nominal width
			// (QoEDur need not be a whole multiple of the bin width).
			span := sc.QoEDur - time.Duration(b)*rateBinWidth
			if span > rateBinWidth {
				span = rateBinWidth
			}
			norm := float64(sc.QoESessions*len(recvs)) * span.Seconds()
			res.RateOverTime[b] = float64(n) * 8 / norm / 1e6
		}
	}
	if tb.diagRec != nil {
		res.Diag = tb.diagRec.Finalize()
	}
	return res
}

// BandwidthCaps is the Fig-17/18 sweep, 0 meaning "Infinite".
var BandwidthCaps = []int64{250_000, 500_000, 1_000_000, 0}

// CapLabel names a cap value as the paper's x-axis does: 0 is
// "Infinite", everything else renders through ratePretty (which
// produces the paper's "250Kbps"/"1Mbps" spellings for the standard
// sweep values).
func CapLabel(cap int64) string {
	if cap == 0 {
		return "Infinite"
	}
	return ratePretty(float64(cap))
}

func ratePretty(bps float64) string {
	abs := math.Abs(bps)
	switch {
	case abs >= 1e6:
		return trim(bps/1e6) + "Mbps"
	case abs >= 1e3:
		return trim(bps/1e3) + "Kbps"
	}
	return trim(bps) + "bps"
}

// trim renders v with at most one decimal place, rounding half away
// from zero, and drops a zero fraction: 2.97 -> "3", 1.5 -> "1.5",
// -0.25 -> "-0.3".
func trim(v float64) string {
	tenths := int64(math.Round(math.Abs(v) * 10))
	s := make([]byte, 0, 8)
	if v < 0 && tenths > 0 {
		s = append(s, '-')
	}
	s = appendInt(s, tenths/10)
	if frac := tenths % 10; frac > 0 {
		s = append(s, '.')
		s = appendInt(s, frac)
	}
	return string(s)
}

// appendInt appends the decimal form of a non-negative integer.
func appendInt(b []byte, v int64) []byte {
	if v >= 10 {
		b = appendInt(b, v/10)
	}
	return append(b, byte('0'+v%10))
}
