package core

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/vcabench/vcabench/internal/platform"
)

func TestShardSeedDerivation(t *testing.T) {
	if shardSeed(42, "lag/fig4/zoom") != shardSeed(42, "lag/fig4/zoom") {
		t.Error("shard seed not stable for the same (base, key)")
	}
	if shardSeed(42, "lag/fig4/zoom") == shardSeed(42, "lag/fig4/webex") {
		t.Error("different keys should derive different seeds")
	}
	if shardSeed(42, "lag/fig4/zoom") == shardSeed(43, "lag/fig4/zoom") {
		t.Error("different base seeds should derive different shard seeds")
	}
}

func TestForkIndependence(t *testing.T) {
	tb := NewTestbed(42)
	a, b := tb.Fork("unit-a"), tb.Fork("unit-a")
	if a.seed != b.seed {
		t.Error("same key should fork the same seed")
	}
	if a.seed == tb.Fork("unit-b").seed {
		t.Error("different keys should fork different seeds")
	}
	if a.Sim == tb.Sim || a.Net == tb.Net {
		t.Error("fork must not share the parent's simulator or network")
	}
	if a.Parallelism() != 1 {
		t.Errorf("fork parallelism = %d, want 1 (no nested fan-out)", a.Parallelism())
	}
	// Overrides registered on the parent carry into forks.
	cfg := platform.DefaultConfig(platform.Zoom)
	cfg.P2PWhenPair = false
	tb.OverridePlatform(cfg)
	f := tb.Fork("unit-c")
	if got, ok := f.overrides[platform.Zoom]; !ok || got.P2PWhenPair {
		t.Error("platform override did not carry into the fork")
	}
}

func TestSetParallelism(t *testing.T) {
	tb := NewTestbed(1)
	if tb.Parallelism() < 1 {
		t.Errorf("default parallelism = %d, want >= 1", tb.Parallelism())
	}
	if got := tb.SetParallelism(4).Parallelism(); got != 4 {
		t.Errorf("SetParallelism(4) = %d", got)
	}
	if got := tb.SetParallelism(0).Parallelism(); got < 1 {
		t.Errorf("SetParallelism(0) should restore the default, got %d", got)
	}
}

// The scheduler must run every unit exactly once, on a fork seeded by
// the unit key, regardless of worker count.
func TestSchedulerRunsEveryUnitOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		tb := NewTestbed(7).SetParallelism(workers)
		var mu sync.Mutex
		seen := map[string]int64{}
		var units []Unit
		for _, key := range []string{"u1", "u2", "u3", "u4", "u5", "u6", "u7"} {
			key := key
			units = append(units, Unit{Key: key, Run: func(stb *Testbed) {
				mu.Lock()
				defer mu.Unlock()
				if _, dup := seen[key]; dup {
					t.Errorf("workers=%d: unit %s ran twice", workers, key)
				}
				seen[key] = stb.seed
			}})
		}
		(&Scheduler{TB: tb}).Run(units)
		if len(seen) != len(units) {
			t.Fatalf("workers=%d: ran %d units, want %d", workers, len(seen), len(units))
		}
		for key, seed := range seen {
			if want := shardSeed(7, key); seed != want {
				t.Errorf("workers=%d: unit %s got seed %d, want shardSeed %d", workers, key, seed, want)
			}
		}
	}
}

func TestSchedulerPropagatesPanic(t *testing.T) {
	tb := NewTestbed(8).SetParallelism(4)
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want \"boom\"", r)
		}
	}()
	(&Scheduler{TB: tb}).Run([]Unit{
		{Key: "ok", Run: func(*Testbed) {}},
		{Key: "bad", Run: func(*Testbed) { panic("boom") }},
		{Key: "ok2", Run: func(*Testbed) {}},
		{Key: "ok3", Run: func(*Testbed) {}},
		{Key: "ok4", Run: func(*Testbed) {}},
	})
}

// runMemoized must compute each key once and serve repeats from the
// memo — including under concurrent access to the memo table.
func TestRunMemoized(t *testing.T) {
	tb := NewTestbed(9).SetParallelism(4)
	var calls atomic.Int64
	run := func(stb *Testbed, i int) any {
		calls.Add(1)
		return stb.seed
	}
	keys := []string{"a", "b", "c"}
	first := tb.runMemoized(TinyScale, "", keys, nil, run, nil)
	again := tb.runMemoized(TinyScale, "", keys, nil, run, nil)
	if calls.Load() != int64(len(keys)) {
		t.Errorf("ran %d units, want %d (memo miss on repeat?)", calls.Load(), len(keys))
	}
	for i := range keys {
		if first[i] != again[i] {
			t.Errorf("memoized result for %q changed between calls", keys[i])
		}
		if first[i].(int64) != shardSeed(9, keys[i]) {
			t.Errorf("unit %q did not run on its keyed fork", keys[i])
		}
	}
	// Partial overlap: only the new key runs.
	tb.runMemoized(TinyScale, "", []string{"b", "d"}, nil, run, nil)
	if calls.Load() != int64(len(keys))+1 {
		t.Errorf("partial-overlap call ran %d total units, want %d", calls.Load(), len(keys)+1)
	}
}

// renderParallel renders one experiment at an explicit worker count.
func renderParallel(t *testing.T, id string, workers int) string {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("missing experiment %s", id)
	}
	var sb strings.Builder
	e.Run(NewTestbed(42).SetParallelism(workers), TinyScale, &sb)
	return sb.String()
}

// The campaign scheduler's core contract: same seed => same artifact
// bytes, whether the campaign runs serially or on four workers.
func TestLagFigureParallelDeterminism(t *testing.T) {
	serial := renderParallel(t, "fig4", 1)
	parallel := renderParallel(t, "fig4", 4)
	if serial != parallel {
		t.Errorf("fig4 output differs between 1 and 4 workers:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if len(serial) < 100 {
		t.Errorf("fig4 output suspiciously short:\n%s", serial)
	}
}

func TestFig12SweepParallelDeterminism(t *testing.T) {
	serial := renderParallel(t, "fig12", 1)
	parallel := renderParallel(t, "fig12", 4)
	if serial != parallel {
		t.Errorf("fig12 output differs between 1 and 4 workers:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if len(serial) < 100 {
		t.Errorf("fig12 output suspiciously short:\n%s", serial)
	}
}

// The ablation arms run through the scheduler too; make sure the
// counterfactual override lands on the right shard at any worker count.
func TestAblationParallelDeterminism(t *testing.T) {
	serial := renderParallel(t, "ablate-p2p", 1)
	parallel := renderParallel(t, "ablate-p2p", 4)
	if serial != parallel {
		t.Errorf("ablate-p2p output differs between 1 and 4 workers:\n%s\nvs\n%s", serial, parallel)
	}
}

// Campaign sharing: figures drawn from the same campaign (fig4 lag CDFs
// and fig8 RTT tables both read the fig4 scenario's lag studies) must
// reuse memoized units instead of re-running them.
func TestCampaignMemoSharing(t *testing.T) {
	tb := NewTestbed(42).SetParallelism(2)
	sce := LagScenarios()[0]
	first := lagStudyAll(tb, TinyScale, sce)
	if again := lagStudy(tb, TinyScale, sce, platform.Zoom); again != first[platform.Zoom] {
		t.Error("lagStudy did not reuse the memoized campaign unit")
	}
}
