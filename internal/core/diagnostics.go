package core

import (
	"sort"
	"time"

	"github.com/vcabench/vcabench/internal/client"
	"github.com/vcabench/vcabench/internal/diag"
	"github.com/vcabench/vcabench/internal/simnet"
	"github.com/vcabench/vcabench/internal/trace"
)

// diagBinWidth is the flight recorder's series bin width. One second
// matches rateBinWidth, so diag series and RateOverTime line up
// bin-for-bin.
const diagBinWidth = time.Second

// WithDiagnostics arms the sim-time flight recorder (internal/diag) on
// this testbed and every fork it spawns: pipes, the event queue, trace
// players, rate control and client media pipelines feed a per-unit
// recorder, and each unit's finalized document rides its QoEStudyResult
// through the memo, the CellStore and the Dispatcher. Diagnostics are
// part of a unit's identity — armed and bare runs use disjoint cell
// keys (see cellKey) — so a cache warmed bare can never satisfy an
// armed run with diag-less cells. Arm before running anything; the
// method returns the testbed for chaining.
func (tb *Testbed) WithDiagnostics() *Testbed {
	tb.diag = true
	if tb.diagRec == nil {
		tb.armDiag("")
	}
	return tb
}

// DiagArmed reports whether the flight recorder is on.
func (tb *Testbed) DiagArmed() bool { return tb.diag }

// armDiag installs a fresh recorder keyed by unitKey ("" outside
// campaign units) and points every probe seam at it. Platforms
// instantiated later are wired by Platform.
func (tb *Testbed) armDiag(unitKey string) {
	r := diag.NewRecorder(unitKey, tb.Sim.Now(), diagBinWidth)
	tb.diagRec = r
	tb.Sim.SetStepProbe(r.StepExecuted)
	tb.Net.SetPipeProbe(pipeProbe{r})
	for k, p := range tb.platforms {
		p.SetRateProbe(tb.rateProbe(string(k)))
	}
}

// pipeProbe adapts the recorder to simnet's probe interface.
type pipeProbe struct{ r *diag.Recorder }

func (p pipeProbe) PipeForwarded(pipe string, at time.Time, l7, wire, queuedBytes int, wait time.Duration) {
	p.r.PipeForwarded(pipe, at, l7, wire, queuedBytes, wait)
}

func (p pipeProbe) PipeDropped(pipe string, at time.Time, wire int, cause simnet.DropCause) {
	c := diag.CauseQueue
	if cause == simnet.DropRandom {
		c = diag.CauseRandom
	}
	p.r.PipeDropped(pipe, at, wire, c)
}

// rateProbe returns the platform rate-target observer for one platform
// kind, labelling events "<kind>-session-<id>".
func (tb *Testbed) rateProbe(kind string) func(session int, bps float64) {
	r := tb.diagRec
	return func(session int, bps float64) {
		r.Event(tb.Sim.Now(), diag.KindRateTarget, kind+"-session-"+itoa(session), bps)
	}
}

// itoa is a minimal non-negative integer formatter (avoids fmt on the
// per-event path).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// traceProbe returns the step observer trace players feed, or nil when
// diagnostics are off (so PlayWithProbe degrades to Play exactly).
func (tb *Testbed) traceProbe() trace.StepProbe {
	if tb.diagRec == nil {
		return nil
	}
	r := tb.diagRec
	return func(at time.Time, name string, step trace.Step) {
		r.Event(at, diag.KindTraceStep, name, float64(step.DownCapBps))
	}
}

// clientProbe returns the media-pipeline observer for one client, or
// nil when diagnostics are off.
func (tb *Testbed) clientProbe(name string) func(at time.Time, kind string, value float64) {
	if tb.diagRec == nil {
		return nil
	}
	r := tb.diagRec
	return func(at time.Time, kind string, value float64) {
		r.Event(at, kind, name, value)
	}
}

// recordFreezes derives freeze runs from one scored recording and logs
// one KindFreeze event per contiguous run, back-dated to the run's
// first display slot. A slot is frozen when nothing has decoded yet or
// when the decoder re-displayed the previous frame (the decoder returns
// the identical *media.Frame on every freeze path, so pointer equality
// is exact, not heuristic).
func (tb *Testbed) recordFreezes(rec client.Recording, subject string, from time.Time, fps int) {
	r := tb.diagRec
	if r == nil || fps <= 0 {
		return
	}
	interval := time.Second / time.Duration(fps)
	runStart, runLen := 0, 0
	flush := func() {
		if runLen > 0 {
			r.Event(from.Add(time.Duration(runStart)*interval), diag.KindFreeze, subject, float64(runLen))
			runLen = 0
		}
	}
	for i, f := range rec.Displayed {
		frozen := f == nil || (i > 0 && f == rec.Displayed[i-1])
		if frozen {
			if runLen == 0 {
				runStart = i
			}
			runLen++
			continue
		}
		flush()
	}
	flush()
}

// diagAdd collects one unit's finalized document into the root
// testbed's export set, whichever tier produced it (local run, memo,
// store hit or remote dispatch). Guarded by memoMu: campaign harvest
// runs on the caller's goroutine, but the lock keeps the table safe if
// experiment drivers ever run concurrently (same stance as memo).
func (tb *Testbed) diagAdd(d *diag.CellDiag) {
	if d == nil {
		return
	}
	tb.memoMu.Lock()
	defer tb.memoMu.Unlock()
	if tb.diagDocs == nil {
		tb.diagDocs = make(map[string]*diag.CellDiag)
	}
	tb.diagDocs[d.Key] = d
}

// DiagResults returns every collected diagnostics document sorted by
// unit key — the export surface behind `vcabench -diag-out`,
// vcabenchd's /cells/{key}/diag and RunOpts.Diagnostics. Empty until a
// diagnostics-armed campaign has run.
func (tb *Testbed) DiagResults() []*diag.CellDiag {
	tb.memoMu.Lock()
	defer tb.memoMu.Unlock()
	out := make([]*diag.CellDiag, 0, len(tb.diagDocs))
	//vcalint:ignore maprange the result slice is sorted by key immediately below, erasing iteration order
	for _, d := range tb.diagDocs {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
