package core

import (
	"time"

	"github.com/vcabench/vcabench/internal/capture"
	"github.com/vcabench/vcabench/internal/client"
	"github.com/vcabench/vcabench/internal/geo"
	"github.com/vcabench/vcabench/internal/media"
	"github.com/vcabench/vcabench/internal/platform"
	"github.com/vcabench/vcabench/internal/probe"
	"github.com/vcabench/vcabench/internal/stats"
)

// LagStudyResult holds everything Figs 2-11 are drawn from for one
// (platform, host region) scenario.
type LagStudyResult struct {
	Kind       platform.Kind
	HostRegion geo.Region
	// Lags maps each participant region name to its streaming-lag
	// samples in milliseconds (Figs 4-7).
	Lags map[string]*stats.Sample
	// RTTs maps each participant region name to per-session average
	// RTTs to its service endpoint, in milliseconds (Figs 8-11).
	RTTs map[string]*stats.Sample
	// Endpoints is the Fig-3 discovery summary for one tracked client.
	Endpoints capture.EndpointStats
	// Fig2 is one session's packet-size scatter (sender and receiver).
	Fig2 Fig2Series
}

// Fig2Series is the packet scatter of Fig 2.
type Fig2Series struct {
	SentT, RecvT []time.Duration
	SentS, RecvS []int
}

// RunLagStudy reproduces one lag scenario: a host VM injecting the
// two-second flash feed (Fig 2) into sessionCount sessions joined by the
// participant fleet, with lag extracted from traces and RTTs measured by
// tcpping — the §4.2 methodology end to end.
func RunLagStudy(tb *Testbed, kind platform.Kind, host geo.Region, others []geo.Region, sc Scale) *LagStudyResult {
	pf := tb.Platform(kind)
	resolve := tb.Resolver()

	hostClient := client.New(tb.Net, client.Config{
		Name:        tb.uniqueName("lag-" + string(kind) + "-host"),
		Region:      host,
		SendVideo:   true,
		VideoSource: media.NewFlash(sc.Profile, 2.0),
		Profile:     sc.Profile,
		Seed:        tb.seed + 100,
		Resolve:     resolve,
	})
	recvs := make([]*client.Client, len(others))
	for i, r := range others {
		recvs[i] = client.New(tb.Net, client.Config{
			Name:    tb.uniqueName("lag-" + string(kind) + "-" + r.Name),
			Region:  r,
			Profile: sc.Profile,
			Seed:    tb.seed + 200 + int64(i),
			Resolve: resolve,
		})
	}

	res := &LagStudyResult{
		Kind: kind, HostRegion: host,
		Lags: make(map[string]*stats.Sample),
		RTTs: make(map[string]*stats.Sample),
	}
	for _, r := range others {
		res.Lags[r.Name] = stats.NewSample(0)
		res.RTTs[r.Name] = stats.NewSample(0)
	}
	res.RTTs[host.Name] = stats.NewSample(0)

	type window struct{ from, to time.Time }
	var windows []window

	all := append([]*client.Client{hostClient}, recvs...)
	for sess := 0; sess < sc.LagSessions; sess++ {
		s := pf.CreateSession()
		for _, c := range all {
			c.Join(s)
		}
		s.Start()
		from := tb.Sim.Now()
		for _, c := range all {
			c.Start()
		}
		// Active probing from every participant toward its endpoint.
		interval := sc.LagDur / time.Duration(sc.ProbesPerSession+2)
		for ci, c := range all {
			var region geo.Region
			if ci == 0 {
				region = host
			} else {
				region = others[ci-1]
			}
			att := c.Attachment()
			if att.Endpoint() == nil {
				continue // P2P: no service endpoint to probe
			}
			target := att.Endpoint().Addr(pf.MediaPort())
			pr := probe.NewProber(tb.Sim, c.Node())
			sample := res.RTTs[region.Name]
			pr.Run(target, sc.ProbesPerSession, interval, func(rtts []time.Duration) {
				if len(rtts) == 0 {
					return
				}
				var sum time.Duration
				for _, r := range rtts {
					sum += r
				}
				avg := sum / time.Duration(len(rtts))
				sample.Add(float64(avg) / float64(time.Millisecond))
			})
		}
		tb.Sim.RunFor(sc.LagDur)
		for _, c := range all {
			c.Stop()
		}
		s.End()
		windows = append(windows, window{from: from, to: tb.Sim.Now()})
		for _, c := range all {
			c.Reset()
		}
		// Idle gap between sessions.
		tb.Sim.RunFor(2 * time.Second)
	}

	// Lag extraction (Fig 2 method) over the full campaign per receiver.
	for i, r := range others {
		lags := capture.Lags(hostClient.Trace(), recvs[i].Trace(), capture.DefaultBurstConfig, time.Second)
		for _, l := range lags {
			res.Lags[r.Name].Add(float64(l) / float64(time.Millisecond))
		}
	}

	// Endpoint discovery (Fig 3): the first receiver's per-session traces.
	var perSession []*capture.Trace
	for _, w := range windows {
		perSession = append(perSession, recvs[0].Trace().Between(w.from, w.to))
	}
	res.Endpoints = capture.DiscoverEndpoints(perSession)

	// Fig 2 scatter from the first session's first 10 seconds.
	if len(windows) > 0 {
		w := windows[0]
		to := w.from.Add(10 * time.Second)
		if to.After(w.to) {
			to = w.to
		}
		hostT := hostClient.Trace().Between(w.from, to)
		recvT := recvs[0].Trace().Between(w.from, to)
		res.Fig2.SentT, res.Fig2.SentS = capture.SizeSeries(hostT, capture.Out)
		res.Fig2.RecvT, res.Fig2.RecvS = capture.SizeSeries(recvT, capture.In)
	}
	return res
}

// LagScenario names the four host placements of Figs 4-7.
type LagScenario struct {
	ID    string
	Host  geo.Region
	Fleet []geo.Region
}

// LagScenarios returns the paper's four scenarios in figure order.
func LagScenarios() []LagScenario {
	return []LagScenario{
		{ID: "fig4", Host: geo.USEast, Fleet: USLagFleet(geo.USEast)},
		{ID: "fig5", Host: geo.USWest, Fleet: USLagFleet(geo.USWest)},
		{ID: "fig6", Host: geo.UKWest, Fleet: EULagFleet(geo.UKWest)},
		{ID: "fig7", Host: geo.CH, Fleet: EULagFleet(geo.CH)},
	}
}
