package core

import (
	"strings"
	"testing"
	"time"

	"github.com/vcabench/vcabench/internal/geo"
	"github.com/vcabench/vcabench/internal/media"
	"github.com/vcabench/vcabench/internal/platform"
)

// Finding-1 shape: with the host (and relay) in US-East, lag grows with
// distance from US-East; US-West suffers ~30 ms more than US-East.
func TestLagGeographicOrdering(t *testing.T) {
	tb := NewTestbed(42)
	r := RunLagStudy(tb, platform.Zoom, geo.USEast, USLagFleet(geo.USEast), TinyScale)
	east := r.Lags[geo.USEast2.Name].Median()
	central := r.Lags[geo.USCentral.Name].Median()
	west := r.Lags[geo.USWest.Name].Median()
	if !(east < central && central < west) {
		t.Errorf("lag ordering: east2=%.1f central=%.1f west=%.1f", east, central, west)
	}
	if d := west - east; d < 15 || d > 50 {
		t.Errorf("west-east lag delta = %.1f ms, want ~30", d)
	}
	// Absolute band: US Zoom lag 5-60 ms.
	if east < 2 || west > 80 {
		t.Errorf("lag band off: east %.1f, west %.1f", east, west)
	}
	// Each receiver collected samples.
	for name, s := range r.Lags {
		if s.Len() == 0 {
			t.Errorf("no lag samples for %s", name)
		}
	}
}

// Finding-1/Fig 5b shape: Webex pins sessions to US-East even when the
// host is in US-West, so the *other* US-West client suffers the worst lag
// and RTTs from US-West are ~60 ms.
func TestWebexDetourFromUSWest(t *testing.T) {
	tb := NewTestbed(43)
	r := RunLagStudy(tb, platform.Webex, geo.USWest, USLagFleet(geo.USWest), TinyScale)
	west2 := r.Lags[geo.USWest2.Name].Median()
	east := r.Lags[geo.USEast.Name].Median()
	if west2 <= east {
		t.Errorf("detour shape missing: west2 lag %.1f <= east lag %.1f", west2, east)
	}
	rttWest := r.RTTs[geo.USWest.Name].Median()
	if rttWest < 40 || rttWest > 90 {
		t.Errorf("US-West RTT to Webex endpoint = %.1f ms, want ~60", rttWest)
	}
	rttEast := r.RTTs[geo.USEast.Name].Median()
	if rttEast > 15 {
		t.Errorf("US-East RTT = %.1f ms, want small (endpoint is east)", rttEast)
	}
}

// Finding-2 shape: EU sessions on Zoom/Webex pay a trans-Atlantic
// penalty; Meet stays local and low.
func TestEULagPlatformGap(t *testing.T) {
	tb := NewTestbed(44)
	med := func(k platform.Kind) float64 {
		r := RunLagStudy(tb, k, geo.CH, EULagFleet(geo.CH), TinyScale)
		all := 0.0
		n := 0
		for _, s := range r.Lags {
			if s.Len() > 0 {
				all += s.Median()
				n++
			}
		}
		return all / float64(n)
	}
	zoom, webex, meet := med(platform.Zoom), med(platform.Webex), med(platform.Meet)
	if meet >= zoom || meet >= webex {
		t.Errorf("Meet EU lag %.1f should beat Zoom %.1f and Webex %.1f", meet, zoom, webex)
	}
	if zoom < 60 || webex < 60 {
		t.Errorf("EU Zoom/Webex lag should be trans-Atlantic: %.1f / %.1f", zoom, webex)
	}
	if meet > 60 {
		t.Errorf("Meet EU lag %.1f should stay local (<60ms)", meet)
	}
}

// Fig 3 shape: endpoint churn per platform.
func TestEndpointChurn(t *testing.T) {
	tb := NewTestbed(45)
	sce := LagScenarios()[0]
	zoom := lagStudy(tb, TinyScale, sce, platform.Zoom)
	if zoom.Endpoints.PerSession != 1 || zoom.Endpoints.Total != TinyScale.LagSessions {
		t.Errorf("zoom endpoints: %+v", zoom.Endpoints)
	}
	meet := lagStudy(tb, TinyScale, sce, platform.Meet)
	if meet.Endpoints.Total > 2 {
		t.Errorf("meet endpoints: %+v, want sticky (<=2)", meet.Endpoints)
	}
	// Memoization returns the identical result.
	again := lagStudy(tb, TinyScale, sce, platform.Zoom)
	if again != zoom {
		t.Error("lagStudy not memoized")
	}
}

// Fig 2 shape: the flash feed produces matching big-packet bursts on both
// sides.
func TestFig2Series(t *testing.T) {
	tb := NewTestbed(46)
	r := lagStudy(tb, TinyScale, LagScenarios()[0], platform.Webex)
	big := func(ss []int) int {
		n := 0
		for _, s := range ss {
			if s > 200 {
				n++
			}
		}
		return n
	}
	if big(r.Fig2.SentS) == 0 || big(r.Fig2.RecvS) == 0 {
		t.Errorf("no big packets in fig2 series: sent %d recv %d", big(r.Fig2.SentS), big(r.Fig2.RecvS))
	}
	if len(r.Fig2.SentT) != len(r.Fig2.SentS) {
		t.Error("series length mismatch")
	}
}

// Fig 12/15 shapes: LM beats HM in QoE; Meet's 2-party sessions run much
// hotter than its multi-party ones.
func TestQoEMotionAndMeetBoost(t *testing.T) {
	tb := NewTestbed(47)
	lm := RunQoEStudy(tb, platform.Zoom, geo.USEast, QoEReceiverRegions(geo.ZoneUS, 2), media.LowMotion, TinyScale, QoEOpts{})
	hm := RunQoEStudy(tb, platform.Zoom, geo.USEast, QoEReceiverRegions(geo.ZoneUS, 2), media.HighMotion, TinyScale, QoEOpts{})
	if lm.PSNR.Mean() <= hm.PSNR.Mean() {
		t.Errorf("LM PSNR %.1f <= HM PSNR %.1f", lm.PSNR.Mean(), hm.PSNR.Mean())
	}
	if lm.SSIM.Mean() <= hm.SSIM.Mean() {
		t.Errorf("LM SSIM %.3f <= HM SSIM %.3f", lm.SSIM.Mean(), hm.SSIM.Mean())
	}
	m2 := RunQoEStudy(tb, platform.Meet, geo.USEast, QoEReceiverRegions(geo.ZoneUS, 1), media.HighMotion, TinyScale, QoEOpts{})
	m4 := RunQoEStudy(tb, platform.Meet, geo.USEast, QoEReceiverRegions(geo.ZoneUS, 3), media.HighMotion, TinyScale, QoEOpts{})
	if m2.DownMbps.Mean() < m4.DownMbps.Mean()*2 {
		t.Errorf("Meet N=2 rate %.2f not >> N=4 rate %.2f", m2.DownMbps.Mean(), m4.DownMbps.Mean())
	}
}

// Fig 15 shape: Webex multi-user download rate is the highest of the
// three; Zoom's P2P (N=2) runs ~1 Mbps vs ~0.7 relay.
func TestRateShapes(t *testing.T) {
	tb := NewTestbed(48)
	down := func(k platform.Kind, n int) float64 {
		r := RunQoEStudy(tb, k, geo.USEast, QoEReceiverRegions(geo.ZoneUS, n-1), media.HighMotion, TinyScale, QoEOpts{})
		return r.DownMbps.Mean()
	}
	wx, zm, mt := down(platform.Webex, 4), down(platform.Zoom, 4), down(platform.Meet, 4)
	if !(wx > zm && wx > mt) {
		t.Errorf("Webex multi-user rate %.2f should top Zoom %.2f and Meet %.2f", wx, zm, mt)
	}
	zp2p := down(platform.Zoom, 2)
	if zp2p < zm*1.15 {
		t.Errorf("Zoom P2P rate %.2f not above relay rate %.2f", zp2p, zm)
	}
}

// Fig 17 shape: at a 500 kbps cap Webex (still pushing 2.5 Mbps) freezes
// far more than Zoom/Meet, and everyone's QoE at 250 kbps is worse than
// uncapped.
func TestBandwidthCapShapes(t *testing.T) {
	tb := NewTestbed(49)
	run := func(k platform.Kind, cap int64) *QoEStudyResult {
		return RunQoEStudy(tb, k, geo.USEast, []geo.Region{geo.USEast2},
			media.HighMotion, TinyScale, QoEOpts{DownlinkCapBps: cap})
	}
	wx := run(platform.Webex, 500_000)
	zm := run(platform.Zoom, 500_000)
	mt := run(platform.Meet, 500_000)
	if wx.Freeze.Mean() < zm.Freeze.Mean() || wx.Freeze.Mean() < mt.Freeze.Mean() {
		t.Errorf("Webex freeze %.2f should exceed Zoom %.2f and Meet %.2f at 500k",
			wx.Freeze.Mean(), zm.Freeze.Mean(), mt.Freeze.Mean())
	}
	for _, k := range platform.Kinds {
		capped := run(k, 250_000)
		free := run(k, 0)
		if capped.SSIM.Mean() >= free.SSIM.Mean() {
			t.Errorf("%s: SSIM at 250k (%.3f) >= uncapped (%.3f)", k, capped.SSIM.Mean(), free.SSIM.Mean())
		}
	}
}

// Fig 18 shape: Zoom audio survives a 250 kbps cap; Webex audio at 250k
// is clearly worse than uncapped. Sessions must be long enough to
// amortize rate-control convergence (the paper's ran five minutes).
func TestAudioCapShapes(t *testing.T) {
	tb := NewTestbed(50)
	sc := TinyScale
	sc.QoEDur = 25 * time.Second
	run := func(k platform.Kind, cap int64) float64 {
		r := RunQoEStudy(tb, k, geo.USEast, []geo.Region{geo.USEast2},
			media.LowMotion, sc, QoEOpts{DownlinkCapBps: cap, WithAudio: true})
		return r.MOS.Mean()
	}
	zoomFree, zoomCap := run(platform.Zoom, 0), run(platform.Zoom, 250_000)
	if zoomCap < zoomFree-0.8 {
		t.Errorf("Zoom audio collapsed under cap: %.2f -> %.2f", zoomFree, zoomCap)
	}
	wxFree, wxCap := run(platform.Webex, 0), run(platform.Webex, 250_000)
	if wxCap > wxFree-0.3 {
		t.Errorf("Webex audio should degrade under cap: %.2f -> %.2f", wxFree, wxCap)
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := IDs()
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate experiment id %q", id)
		}
		seen[id] = true
	}
	for _, want := range []string{"table1", "table2", "table3", "table4",
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig14", "fig15", "fig16", "fig17",
		"fig18", "fig19", "ablate-webex-geo", "ablate-meet-single",
		"ablate-zoom-nolb", "ablate-p2p"} {
		if !seen[want] {
			t.Errorf("experiment %q missing", want)
		}
	}
	if _, ok := Lookup("fig4"); !ok {
		t.Error("Lookup(fig4) failed")
	}
	if _, ok := Lookup("fig99"); ok {
		t.Error("Lookup(fig99) should fail")
	}
}

// The cheap experiments render without errors and produce content.
func TestStaticExperimentsRender(t *testing.T) {
	for _, id := range []string{"table2", "table3", "fig19", "table4"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		tb := NewTestbed(51)
		var sb strings.Builder
		e.Run(tb, TinyScale, &sb)
		if len(sb.String()) < 100 {
			t.Errorf("%s output suspiciously short:\n%s", id, sb.String())
		}
	}
}

// OverridePlatform must reject changes after instantiation.
func TestOverrideAfterUse(t *testing.T) {
	tb := NewTestbed(52)
	tb.Platform(platform.Zoom)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tb.OverridePlatform(platform.DefaultConfig(platform.Zoom))
}

func TestFleetHelpers(t *testing.T) {
	us := USLagFleet(geo.USEast)
	if len(us) != 6 {
		t.Errorf("US fleet = %d, want 6", len(us))
	}
	for _, r := range us {
		if r.Name == geo.USEast.Name {
			t.Error("host included in fleet")
		}
	}
	eu := EULagFleet(geo.CH)
	if len(eu) != 6 {
		t.Errorf("EU fleet = %d", len(eu))
	}
	if got := QoEReceiverRegions(geo.ZoneUS, 7); len(got) != 7 {
		t.Errorf("receiver regions = %d", len(got))
	}
}

func TestCapLabel(t *testing.T) {
	cases := map[int64]string{
		0: "Infinite", 250_000: "250Kbps", 500_000: "500Kbps", 1_000_000: "1Mbps",
		750_000: "750Kbps", 1_500_000: "1.5Mbps",
	}
	for in, want := range cases {
		if got := CapLabel(in); got != want {
			t.Errorf("CapLabel(%d) = %q, want %q", in, got, want)
		}
	}
}
