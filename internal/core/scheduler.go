package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/vcabench/vcabench/internal/obs"
)

// This file is the campaign scheduler: the paper's evaluation is a set
// of campaigns made of many independent units — one (platform, scenario)
// lag study per Figs 4-11 column, one (platform, size, motion) cell per
// Figs 12-15 sweep point, one arm per ablation — and real measurement
// fans these across client machines. Here each unit runs on its own
// forked Testbed whose seed is derived from the unit's canonical key,
// so results depend only on (base seed, unit key): the same bytes come
// out whether the campaign runs on one worker or sixteen, and whether a
// unit runs first or last.

// shardSeed derives a unit's seed from the campaign's base seed and the
// unit's canonical key. Hashing the key (rather than, say, a worker or
// loop index) is what makes results independent of scheduling order.
func shardSeed(base int64, key string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(base))
	h.Write(b[:])
	h.Write([]byte(key))
	return int64(h.Sum64())
}

// Fork creates an independent testbed for one campaign unit: fresh
// simulator, fresh network, fresh platform instances, seeded by
// shardSeed(tb.seed, unitKey). Platform overrides registered on the
// parent (the ablation mechanism) carry over; instantiated platforms do
// not — a fork always provisions its own. Forks default to serial
// scheduling so nested campaigns don't multiply workers.
func (tb *Testbed) Fork(unitKey string) *Testbed {
	ntb := NewTestbed(shardSeed(tb.seed, unitKey))
	ntb.parallelism = 1
	for k, cfg := range tb.overrides {
		ntb.overrides[k] = cfg
	}
	// Telemetry rides along so nested campaign work on the fork reports
	// into the same registry and tracer; it never influences results.
	ntb.tel = tb.tel
	ntb.em = tb.em
	// Diagnostics arm per unit: the fork gets its own recorder keyed by
	// the unit, so each cell's flight-recorder document is independent
	// of scheduling order and worker count.
	if tb.diag {
		ntb.diag = true
		ntb.armDiag(unitKey)
	}
	return ntb
}

// SetParallelism sets the campaign worker count (0 restores the
// default, runtime.GOMAXPROCS(0)) and returns tb for chaining.
// Negative counts are a programming error and panic; worker count
// never changes results, only wall-clock time.
func (tb *Testbed) SetParallelism(n int) *Testbed {
	if n < 0 {
		panic(fmt.Sprintf("core: SetParallelism(%d): worker count must be >= 1 (or 0 for the default)", n))
	}
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	tb.parallelism = n
	return tb
}

// Parallelism reports the campaign worker count.
func (tb *Testbed) Parallelism() int { return tb.parallelism }

// Unit is one independent campaign shard: a canonical key (which names
// it in the memo table and derives its seed) and the work itself,
// executed against a testbed forked for that key.
type Unit struct {
	Key string
	Run func(stb *Testbed)
}

// Scheduler fans campaign units across a bounded worker pool. Each unit
// runs on TB.Fork(unit.Key); the pool size only changes wall-clock
// time, never results. Run returns once every unit has finished, so
// callers may merge unit outputs without further synchronization.
type Scheduler struct {
	TB *Testbed
	// Workers bounds the pool; <=0 means TB.Parallelism().
	Workers int
}

// Run executes every unit and waits for completion. A panicking unit is
// re-panicked on the caller's goroutine after the pool drains.
func (s *Scheduler) Run(units []Unit) {
	workers := s.Workers
	if workers <= 0 {
		workers = s.TB.Parallelism()
	}
	if workers > len(units) {
		workers = len(units)
	}
	if workers <= 1 {
		for _, u := range units {
			u.Run(s.TB.Fork(u.Key))
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(units) {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicked == nil {
								panicked = r
							}
							panicMu.Unlock()
							// Stop dispatching further units; in-flight
							// ones drain, then the caller re-panics.
							next.Store(int64(len(units)))
						}
					}()
					units[i].Run(s.TB.Fork(units[i].Key))
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// runMemoized is the memo-aware front of the scheduler: it returns the
// results for keys in the given (canonical) order, running only the
// units missing from the memo table — in parallel, each on its own
// fork. Experiments that share a campaign (fig12/fig14/fig15 all read
// the §4.3.1 US sweep; Figs 4-11 share four lag campaigns) hit the memo
// on every call after the first.
//
// When a CellStore is attached (WithStore), a second tier sits behind
// the memo: units found in the store are decoded instead of computed,
// and freshly computed units are persisted — so the sharing extends
// across processes. sc and salt scope the persisted keys (see cellKey);
// they never influence in-memory behaviour.
//
// remote, when non-nil, is a third tier between the store and local
// compute (see dispatch.go): every still-missing unit is offered to the
// worker fleet concurrently, and only the units the fleet cannot serve
// reach the local scheduler — so a dead or shrinking fleet degrades to
// plain local execution, never to a failed or divergent campaign.
//
// parents, when non-nil, maps unit keys to their enclosing trace span
// (the cell or replica envelope RunCampaign opened); every unit then
// records a span tree — unit → {memo, store, dispatch, local-run} —
// ending at whichever tier served it. Telemetry is observational only:
// out never depends on whether it is attached.
func (tb *Testbed) runMemoized(sc Scale, salt string, keys []string, parents map[string]obs.SpanID, run func(stb *Testbed, i int) any, remote func(key string) (any, bool)) []any {
	tr := tb.tracer()
	out := make([]any, len(keys))
	var uspans []obs.SpanID
	starts := make([]int64, len(keys))
	if tr != nil {
		uspans = make([]obs.SpanID, len(keys))
	}
	var missing []int
	for i, k := range keys {
		starts[i] = tb.now()
		us := tr.Start(parents[k], obs.TierUnit, k)
		if uspans != nil {
			uspans[i] = us
		}
		ms := tr.Start(us, obs.TierMemo, k)
		v, ok := tb.memoGet(k)
		tr.End(ms)
		if ok {
			out[i] = v
			tb.finishUnit(us, "memo", starts[i])
			continue
		}
		ss := tr.Start(us, obs.TierStore, k)
		v, ok = tb.storeGet(sc, salt, k)
		tr.End(ss)
		if ok {
			out[i] = v
			tb.memoPut(k, v)
			tb.finishUnit(us, "store", starts[i])
			continue
		}
		missing = append(missing, i)
	}
	if remote != nil && len(missing) > 0 {
		missing = tb.dispatchRemote(sc, salt, keys, out, missing, remote, uspans, starts)
	}
	if len(missing) == 0 {
		return out
	}
	units := make([]Unit, len(missing))
	for j, i := range missing {
		i := i
		units[j] = Unit{Key: keys[i], Run: func(stb *Testbed) {
			ls := tr.Start(spanAt(uspans, i), obs.TierLocalRun, keys[i])
			if tb.em != nil {
				tb.em.inflight.Inc()
			}
			out[i] = run(stb, i)
			if tb.em != nil {
				tb.em.inflight.Dec()
			}
			tr.End(ls)
			tb.finishUnit(spanAt(uspans, i), "local", starts[i])
		}}
	}
	(&Scheduler{TB: tb}).Run(units)
	for _, i := range missing {
		tb.memoPut(keys[i], out[i])
		// Persist before returning: renderers sort samples in place,
		// and the stored observation order must be the pre-render one
		// a cold run would also see.
		tb.storePut(sc, salt, keys[i], out[i])
	}
	return out
}

// dispatchRemote fans the missing units across the dispatcher, all at
// once — the fleet bounds its own per-worker concurrency — filling
// out[i] for each unit a worker served. Served units are memoized and
// persisted exactly like locally computed ones (re-encoding a decoded
// gob value reproduces the worker's bytes, so the coordinator's store
// matches a single-machine run's). It returns the indices the caller
// must compute locally, in input order.
func (tb *Testbed) dispatchRemote(sc Scale, salt string, keys []string, out []any, missing []int, remote func(key string) (any, bool), uspans []obs.SpanID, starts []int64) []int {
	tr := tb.tracer()
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		local []int
	)
	for _, i := range missing {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ds := tr.Start(spanAt(uspans, i), obs.TierDispatch, keys[i])
			if tb.em != nil {
				tb.em.inflight.Inc()
			}
			v, ok := remote(keys[i])
			if tb.em != nil {
				tb.em.inflight.Dec()
			}
			tr.End(ds)
			if ok {
				out[i] = v
				tb.finishUnit(spanAt(uspans, i), "dispatch", starts[i])
				return
			}
			mu.Lock()
			local = append(local, i)
			mu.Unlock()
		}()
	}
	wg.Wait()
	sort.Ints(local)
	fellBack := make(map[int]bool, len(local))
	for _, i := range local {
		fellBack[i] = true
	}
	for _, i := range missing {
		if !fellBack[i] {
			tb.memoPut(keys[i], out[i])
			tb.storePut(sc, salt, keys[i], out[i])
		}
	}
	return local
}
