package core

import (
	"fmt"
	"io"

	"github.com/vcabench/vcabench/internal/geo"
	"github.com/vcabench/vcabench/internal/platform"
	"github.com/vcabench/vcabench/internal/report"
)

// ablations are design-choice benches beyond the paper: each flips one
// inferred infrastructure property and re-measures, confirming that the
// paper's observations are consequences of that property.
func ablations() []Experiment {
	return []Experiment{
		{
			ID:    "ablate-webex-geo",
			Title: "Webex with geo-local (paid-tier) relays",
			Paper: "§6: paid Webex streams from close-by servers (RTT < 20ms)",
			Run: func(tb *Testbed, sc Scale, w io.Writer) {
				// Free tier baseline.
				free := RunLagStudy(tb, platform.Webex, geo.CH, EULagFleet(geo.CH), sc)
				// Paid tier: full geographic footprint.
				paidTB := NewTestbed(tb.seed + 1)
				cfg := platform.DefaultConfig(platform.Webex)
				cfg.PaidTier = true
				cfg.USPoPs = []geo.Region{geo.PoPUSEast, geo.PoPUSCentral, geo.PoPUSWest}
				cfg.EUPoPs = []geo.Region{geo.PoPEUWest, geo.PoPEUCentral, geo.PoPEUNorth}
				paidTB.OverridePlatform(cfg)
				paid := RunLagStudy(paidTB, platform.Webex, geo.CH, EULagFleet(geo.CH), sc)

				t := report.Table{
					Title:  "ablation: Webex free vs paid tier, host CH",
					Header: []string{"client", "free median lag ms", "paid median lag ms", "free median RTT ms", "paid median RTT ms"},
				}
				for _, r := range EULagFleet(geo.CH) {
					t.AddRow(r.Name,
						free.Lags[r.Name].Median(), paid.Lags[r.Name].Median(),
						free.RTTs[r.Name].Median(), paid.RTTs[r.Name].Median())
				}
				t.Render(w)
			},
		},
		{
			ID:    "ablate-meet-single",
			Title: "Meet forced onto a single-relay topology",
			Paper: "tests whether Meet's EU advantage comes from per-client endpoints",
			Run: func(tb *Testbed, sc Scale, w io.Writer) {
				normal := RunLagStudy(tb, platform.Meet, geo.CH, EULagFleet(geo.CH), sc)
				singleTB := NewTestbed(tb.seed + 2)
				cfg := platform.DefaultConfig(platform.Meet)
				cfg.PerClientEndpoints = false
				cfg.EUPoPs = nil // US-only footprint, single session relay
				singleTB.OverridePlatform(cfg)
				single := RunLagStudy(singleTB, platform.Meet, geo.CH, EULagFleet(geo.CH), sc)

				t := report.Table{
					Title:  "ablation: Meet per-client endpoints vs single US relay, host CH",
					Header: []string{"client", "per-client median lag ms", "single-relay median lag ms"},
				}
				for _, r := range EULagFleet(geo.CH) {
					t.AddRow(r.Name, normal.Lags[r.Name].Median(), single.Lags[r.Name].Median())
				}
				t.Render(w)
			},
		},
		{
			ID:    "ablate-zoom-nolb",
			Title: "Zoom without regional load balancing",
			Paper: "tests whether the 3 RTT bands of Figs 10a/11a come from the US-PoP lottery",
			Run: func(tb *Testbed, sc Scale, w io.Writer) {
				normal := RunLagStudy(tb, platform.Zoom, geo.CH, EULagFleet(geo.CH), sc)
				noTB := NewTestbed(tb.seed + 3)
				cfg := platform.DefaultConfig(platform.Zoom)
				cfg.RegionalLB = false // always the nearest US PoP
				noTB.OverridePlatform(cfg)
				nolb := RunLagStudy(noTB, platform.Zoom, geo.CH, EULagFleet(geo.CH), sc)

				t := report.Table{
					Title:  "ablation: Zoom RTT spread with/without regional LB, host CH",
					Header: []string{"client", "LB RTT min..max ms", "no-LB RTT min..max ms"},
				}
				for _, r := range EULagFleet(geo.CH) {
					a, b := normal.RTTs[r.Name], nolb.RTTs[r.Name]
					t.AddRow(r.Name,
						fmt.Sprintf("%.0f..%.0f", a.Min(), a.Max()),
						fmt.Sprintf("%.0f..%.0f", b.Min(), b.Max()))
				}
				t.Render(w)
			},
		},
		{
			ID:    "ablate-p2p",
			Title: "Zoom with P2P disabled for two-party calls",
			Paper: "§4.2 footnote: N=2 streams peer-to-peer on ephemeral ports",
			Run: func(tb *Testbed, sc Scale, w io.Writer) {
				normal := RunLagStudy(tb, platform.Zoom, geo.USEast, []geo.Region{geo.USWest}, sc)
				noTB := NewTestbed(tb.seed + 4)
				cfg := platform.DefaultConfig(platform.Zoom)
				cfg.P2PWhenPair = false
				noTB.OverridePlatform(cfg)
				relay := RunLagStudy(noTB, platform.Zoom, geo.USEast, []geo.Region{geo.USWest}, sc)

				t := report.Table{
					Title:  "ablation: Zoom two-party P2P vs forced relay (host US-East, peer US-West)",
					Header: []string{"mode", "median lag ms", "endpoints seen"},
				}
				t.AddRow("p2p", normal.Lags[geo.USWest.Name].Median(), normal.Endpoints.Total)
				t.AddRow("relay", relay.Lags[geo.USWest.Name].Median(), relay.Endpoints.Total)
				t.Render(w)
			},
		},
	}
}
