package core

import (
	"fmt"
	"io"

	"github.com/vcabench/vcabench/internal/geo"
	"github.com/vcabench/vcabench/internal/platform"
	"github.com/vcabench/vcabench/internal/report"
)

// lagPair runs an ablation's two arms — baseline and counterfactual —
// as a scheduled unit pair with the same study geometry. Each arm runs
// on its own fork (keyed keyA/keyB, so shard seeds are stable) and the
// counterfactual applies cfg to its shard before measuring.
func lagPair(tb *Testbed, sc Scale, keyA, keyB string, kind platform.Kind,
	host geo.Region, fleet []geo.Region, cfg platform.Config) (baseline, counter *LagStudyResult) {
	(&Scheduler{TB: tb}).Run([]Unit{
		{Key: keyA, Run: func(stb *Testbed) {
			baseline = RunLagStudy(stb, kind, host, fleet, sc)
		}},
		{Key: keyB, Run: func(stb *Testbed) {
			stb.OverridePlatform(cfg)
			counter = RunLagStudy(stb, kind, host, fleet, sc)
		}},
	})
	return baseline, counter
}

// ablations are design-choice benches beyond the paper: each flips one
// inferred infrastructure property and re-measures, confirming that the
// paper's observations are consequences of that property. The baseline
// and counterfactual arms are independent campaign units scheduled in
// parallel via lagPair.
func ablations() []Experiment {
	return []Experiment{
		{
			ID:    "ablate-webex-geo",
			Title: "Webex with geo-local (paid-tier) relays",
			Paper: "§6: paid Webex streams from close-by servers (RTT < 20ms)",
			Run: func(tb *Testbed, sc Scale, w io.Writer) {
				cfg := platform.DefaultConfig(platform.Webex)
				cfg.PaidTier = true
				cfg.USPoPs = []geo.Region{geo.PoPUSEast, geo.PoPUSCentral, geo.PoPUSWest}
				cfg.EUPoPs = []geo.Region{geo.PoPEUWest, geo.PoPEUCentral, geo.PoPEUNorth}
				free, paid := lagPair(tb, sc, "ablate-webex-geo/free", "ablate-webex-geo/paid",
					platform.Webex, geo.CH, EULagFleet(geo.CH), cfg)

				t := report.Table{
					Title:  "ablation: Webex free vs paid tier, host CH",
					Header: []string{"client", "free median lag ms", "paid median lag ms", "free median RTT ms", "paid median RTT ms"},
				}
				for _, r := range EULagFleet(geo.CH) {
					t.AddRow(r.Name,
						free.Lags[r.Name].Median(), paid.Lags[r.Name].Median(),
						free.RTTs[r.Name].Median(), paid.RTTs[r.Name].Median())
				}
				t.Render(w)
			},
		},
		{
			ID:    "ablate-meet-single",
			Title: "Meet forced onto a single-relay topology",
			Paper: "tests whether Meet's EU advantage comes from per-client endpoints",
			Run: func(tb *Testbed, sc Scale, w io.Writer) {
				cfg := platform.DefaultConfig(platform.Meet)
				cfg.PerClientEndpoints = false
				cfg.EUPoPs = nil // US-only footprint, single session relay
				normal, single := lagPair(tb, sc, "ablate-meet-single/per-client", "ablate-meet-single/single-relay",
					platform.Meet, geo.CH, EULagFleet(geo.CH), cfg)

				t := report.Table{
					Title:  "ablation: Meet per-client endpoints vs single US relay, host CH",
					Header: []string{"client", "per-client median lag ms", "single-relay median lag ms"},
				}
				for _, r := range EULagFleet(geo.CH) {
					t.AddRow(r.Name, normal.Lags[r.Name].Median(), single.Lags[r.Name].Median())
				}
				t.Render(w)
			},
		},
		{
			ID:    "ablate-zoom-nolb",
			Title: "Zoom without regional load balancing",
			Paper: "tests whether the 3 RTT bands of Figs 10a/11a come from the US-PoP lottery",
			Run: func(tb *Testbed, sc Scale, w io.Writer) {
				cfg := platform.DefaultConfig(platform.Zoom)
				cfg.RegionalLB = false // always the nearest US PoP
				normal, nolb := lagPair(tb, sc, "ablate-zoom-nolb/lb", "ablate-zoom-nolb/nolb",
					platform.Zoom, geo.CH, EULagFleet(geo.CH), cfg)

				t := report.Table{
					Title:  "ablation: Zoom RTT spread with/without regional LB, host CH",
					Header: []string{"client", "LB RTT min..max ms", "no-LB RTT min..max ms"},
				}
				for _, r := range EULagFleet(geo.CH) {
					a, b := normal.RTTs[r.Name], nolb.RTTs[r.Name]
					t.AddRow(r.Name,
						fmt.Sprintf("%.0f..%.0f", a.Min(), a.Max()),
						fmt.Sprintf("%.0f..%.0f", b.Min(), b.Max()))
				}
				t.Render(w)
			},
		},
		{
			ID:    "ablate-p2p",
			Title: "Zoom with P2P disabled for two-party calls",
			Paper: "§4.2 footnote: N=2 streams peer-to-peer on ephemeral ports",
			Run: func(tb *Testbed, sc Scale, w io.Writer) {
				cfg := platform.DefaultConfig(platform.Zoom)
				cfg.P2PWhenPair = false
				normal, relay := lagPair(tb, sc, "ablate-p2p/p2p", "ablate-p2p/relay",
					platform.Zoom, geo.USEast, []geo.Region{geo.USWest}, cfg)

				t := report.Table{
					Title:  "ablation: Zoom two-party P2P vs forced relay (host US-East, peer US-West)",
					Header: []string{"mode", "median lag ms", "endpoints seen"},
				}
				t.AddRow("p2p", normal.Lags[geo.USWest.Name].Median(), normal.Endpoints.Total)
				t.AddRow("relay", relay.Lags[geo.USWest.Name].Median(), relay.Endpoints.Total)
				t.Render(w)
			},
		},
	}
}
