package core

import (
	"bytes"
	"strings"
	"testing"

	"github.com/vcabench/vcabench/internal/obs"
	"github.com/vcabench/vcabench/internal/report"
	"github.com/vcabench/vcabench/internal/store"
)

// obsCampaign is a small two-cell grid for telemetry tests.
func obsCampaign() Campaign {
	return Campaign{Name: "obs", Platforms: []string{"zoom", "meet"}}
}

// manualTelemetry builds a fully armed bundle — registry, tracer and a
// hand-advanced clock — that records everything deterministically.
func manualTelemetry() *obs.Telemetry {
	clk := &obs.ManualClock{}
	return &obs.Telemetry{
		Metrics: obs.NewRegistry(),
		Tracer:  obs.NewTracer(clk),
		Clock:   clk,
	}
}

// The tentpole's hard constraint: telemetry is inert. The same
// campaign renders byte-identical JSON with metrics and tracing fully
// enabled, with a store attached, and with none of it.
func TestTelemetryInert(t *testing.T) {
	render := func(tel *obs.Telemetry, withStore bool) []byte {
		tb := NewTestbed(42).SetParallelism(4).WithTelemetry(tel)
		if withStore {
			st, err := store.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			tb.WithStore(st)
		}
		res, err := RunCampaign(tb, detCampaign(), TinyScale)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := report.WriteJSON(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	bare := render(nil, false)
	observed := render(manualTelemetry(), false)
	if !bytes.Equal(bare, observed) {
		t.Errorf("telemetry changed campaign bytes:\n--- bare ---\n%s\n--- observed ---\n%s", bare, observed)
	}
	stored := render(manualTelemetry(), true)
	if !bytes.Equal(bare, stored) {
		t.Errorf("telemetry+store changed campaign bytes")
	}
}

// A traced campaign records the full lifecycle: one campaign span, one
// cell envelope per cell, one unit span per unit, and one terminal
// tier child per unit — "local" cold, "memo" on the rerun.
func TestCampaignSpanTree(t *testing.T) {
	tel := manualTelemetry()
	tb := NewTestbed(7).WithTelemetry(tel)
	if _, err := RunCampaign(tb, obsCampaign(), TinyScale); err != nil {
		t.Fatal(err)
	}
	tr := tel.Tracer
	if got := tr.CountTier(obs.TierCampaign); got != 1 {
		t.Errorf("campaign spans = %d, want 1", got)
	}
	if got := tr.CountTier(obs.TierCell); got != 2 {
		t.Errorf("cell spans = %d, want 2", got)
	}
	if got := tr.CountTier(obs.TierUnit); got != 2 {
		t.Errorf("unit spans = %d, want 2", got)
	}
	if got := tr.CountTier(obs.TierLocalRun); got != 2 {
		t.Errorf("local-run spans = %d, want 2", got)
	}
	if got := tr.CountTier(obs.TierMemo); got != 2 {
		t.Errorf("memo probe spans = %d, want 2", got)
	}

	// Warm rerun: same campaign, two more unit spans served by memo,
	// no new local runs.
	if _, err := RunCampaign(tb, obsCampaign(), TinyScale); err != nil {
		t.Fatal(err)
	}
	if got := tr.CountTier(obs.TierUnit); got != 4 {
		t.Errorf("unit spans after rerun = %d, want 4", got)
	}
	if got := tr.CountTier(obs.TierLocalRun); got != 2 {
		t.Errorf("local-run spans after rerun = %d, want 2 (memo should have served)", got)
	}

	units := tel.Metrics.CounterVec("vcabench_units_total",
		"Campaign units resolved, by serving tier.", "tier")
	if got := units.With("local").Value(); got != 2 {
		t.Errorf("units_total{local} = %d, want 2", got)
	}
	if got := units.With("memo").Value(); got != 2 {
		t.Errorf("units_total{memo} = %d, want 2", got)
	}
	inflight := tel.Metrics.Gauge("vcabench_units_inflight",
		"Campaign units currently executing, locally or on a remote worker.")
	if got := inflight.Value(); got != 0 {
		t.Errorf("units_inflight after campaign = %g, want 0", got)
	}
}

// A replicated campaign traces replica envelopes between cells and
// units, and a store-backed rerun serves from the store tier.
func TestReplicatedAndStoreTierSpans(t *testing.T) {
	spec := obsCampaign()
	spec.Name = "obs-reps"
	spec.Repeats = 3
	dir := t.TempDir()

	runOnce := func() *obs.Telemetry {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		tel := manualTelemetry()
		tb := NewTestbed(7).WithTelemetry(tel).WithStore(st)
		if _, err := RunCampaign(tb, spec, TinyScale); err != nil {
			t.Fatal(err)
		}
		return tel
	}

	cold := runOnce()
	if got := cold.Tracer.CountTier(obs.TierReplica); got != 6 {
		t.Errorf("replica spans = %d, want 6 (2 cells x 3 reps)", got)
	}
	if got := cold.Tracer.CountTier(obs.TierUnit); got != 6 {
		t.Errorf("unit spans = %d, want 6", got)
	}

	warm := runOnce() // fresh process-equivalent: memo empty, store warm
	units := warm.Metrics.CounterVec("vcabench_units_total",
		"Campaign units resolved, by serving tier.", "tier")
	if got := units.With("store").Value(); got != 6 {
		t.Errorf("units_total{store} = %d, want 6", got)
	}
	if got := units.With("local").Value(); got != 0 {
		t.Errorf("units_total{local} = %d, want 0 on warm run", got)
	}
}

// The engine exposes its series on a scrape even before any unit runs,
// and the exposition passes the promtool-style lint.
func TestEngineMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	RegisterEngineMetrics(reg)
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"vcabench_units_inflight 0\n",
		`vcabench_units_total{tier="local"} 0` + "\n",
		`vcabench_units_total{tier="memo"} 0` + "\n",
		"vcabench_unit_seconds_count 0\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	if probs := obs.LintText([]byte(text)); len(probs) != 0 {
		t.Errorf("lint problems: %v", probs)
	}
}

// Fork carries telemetry to unit testbeds without copying state that
// must stay per-fork.
func TestForkPropagatesTelemetry(t *testing.T) {
	tel := manualTelemetry()
	tb := NewTestbed(1).WithTelemetry(tel)
	f := tb.Fork("x")
	if f.Telemetry() != tel {
		t.Error("fork dropped telemetry")
	}
	if NewTestbed(1).Telemetry() != nil {
		t.Error("fresh testbed has telemetry")
	}
}
