package core

import (
	"github.com/vcabench/vcabench/internal/obs"
)

// This file is the engine's telemetry seam. The scheduler records what
// happened (which tier served each unit, how long it took, how many
// are in flight) through an injected obs.Telemetry — metrics into the
// bundle's registry, spans into its tracer, and every timestamp read
// through the bundle's Clock, never the wall clock directly: that is
// the contract that keeps internal/core walltime-free under vcalint
// while still measuring real latencies in production. Telemetry is
// strictly observational — no result byte depends on whether it is
// attached — and every hook degrades to a no-op when it is not.

// unitTiers are the vcabench_units_total label values, one per tier of
// runMemoized: memo table, cell store, remote fleet, local compute.
var unitTiers = []string{"memo", "store", "dispatch", "local"}

// engineMetrics caches the scheduler's instruments so hot paths don't
// re-resolve families by name per unit.
type engineMetrics struct {
	inflight    *obs.Gauge
	unitSeconds *obs.Histogram
	units       *obs.CounterVec
}

func newEngineMetrics(reg *obs.Registry) *engineMetrics {
	em := &engineMetrics{
		inflight: reg.Gauge("vcabench_units_inflight",
			"Campaign units currently executing, locally or on a remote worker."),
		unitSeconds: reg.Histogram("vcabench_unit_seconds",
			"Wall time to resolve one campaign unit, whatever tier served it.", nil),
		units: reg.CounterVec("vcabench_units_total",
			"Campaign units resolved, by serving tier.", "tier"),
	}
	for _, tier := range unitTiers {
		em.units.With(tier)
	}
	return em
}

// RegisterEngineMetrics pre-creates the engine's metric families (with
// every tier series at zero) so a scrape taken before the first unit
// runs already shows the full catalog. Safe to call more than once —
// the registry's get-or-create semantics return the same series.
func RegisterEngineMetrics(reg *obs.Registry) {
	newEngineMetrics(reg)
}

// WithTelemetry attaches an observability bundle and returns tb for
// chaining. Fork propagates the bundle, so every unit testbed of a
// campaign reports into the same registry and tracer. Telemetry never
// changes results: the byte-identity matrix holds with it attached.
func (tb *Testbed) WithTelemetry(tel *obs.Telemetry) *Testbed {
	tb.tel = tel
	tb.em = nil
	if tel != nil && tel.Metrics != nil {
		tb.em = newEngineMetrics(tel.Metrics)
	}
	return tb
}

// Telemetry returns the attached bundle (nil when unobserved).
func (tb *Testbed) Telemetry() *obs.Telemetry { return tb.tel }

// tracer returns the attached tracer; nil (a valid no-op recorder)
// when telemetry or tracing is off.
func (tb *Testbed) tracer() *obs.Tracer {
	if tb.tel == nil {
		return nil
	}
	return tb.tel.Tracer
}

// now reads the telemetry clock; zero when unobserved.
func (tb *Testbed) now() int64 { return tb.tel.Now() }

// finishUnit closes a unit's span with its terminal tier and records
// the tier counter and wall-time histogram.
func (tb *Testbed) finishUnit(span obs.SpanID, tier string, start int64) {
	tb.tracer().End(span, obs.Label{Name: "tier", Value: tier})
	if tb.em != nil {
		tb.em.units.With(tier).Inc()
		tb.em.unitSeconds.Observe(float64(tb.now()-start) / 1e9)
	}
}

// spanAt indexes an optional span slice (nil when tracing is off).
func spanAt(spans []obs.SpanID, i int) obs.SpanID {
	if spans == nil {
		return 0
	}
	return spans[i]
}
