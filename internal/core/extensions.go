package core

import (
	"fmt"
	"io"

	"github.com/vcabench/vcabench/internal/geo"
	"github.com/vcabench/vcabench/internal/media"
	"github.com/vcabench/vcabench/internal/platform"
	"github.com/vcabench/vcabench/internal/report"
)

// Extensions implement the future work the paper sketches in §6:
// dynamic last-mile variation ("a more realistic QoE analysis would
// consider dynamic bandwidth variation and jitter as well") and
// conference scalability beyond the 11 participants the paper reached.
// Both are declared as campaign grids (campaign.go): the last-mile
// study is a netem axis with fluctuating and steady conditions, the
// scale study a session-size axis.
func init() {
	extraExperiments = append(extraExperiments,
		Experiment{
			ID:    "ext-lastmile",
			Title: "QoE under a fluctuating last mile (paper §6 future work)",
			Paper: "not in the paper; extends Fig 17 with time-varying capacity",
			Run:   runLastMile,
		},
		Experiment{
			ID:    "ext-scale",
			Title: "QoE as sessions grow to 11 participants (paper §6 future work)",
			Paper: "not in the paper; extends Fig 12 beyond N=6",
			Run:   runScaleStudy,
		},
	)
}

// extraExperiments is appended to the registry by Experiments.
var extraExperiments []Experiment

// lastMileCampaign alternates a receiver's downlink between a
// comfortable and a congested capacity every few seconds, with the two
// steady extremes as reference arms — one netem condition per arm.
func lastMileCampaign() Campaign {
	spec := pairCampaign("ext-lastmile")
	spec.Netem = []Netem{
		{Name: "fluct", FluctHiBps: 1_500_000, FluctLoBps: 300_000, FluctPeriodSec: 4},
		{Name: "steady-300k", DownCapBps: 300_000},
		{Name: "steady-1.5M", DownCapBps: 1_500_000},
	}
	return spec
}

// runLastMile compares each platform's QoE under the fluctuating
// downlink against its steady-state behaviour at both extremes.
func runLastMile(tb *Testbed, sc Scale, w io.Writer) {
	t := report.Table{
		Title:  "ext-lastmile: fluctuating 1.5Mbps <-> 300kbps downlink (HM feed)",
		Header: []string{"platform", "fluct PSNR", "fluct SSIM", "fluct freeze", "steady-300k SSIM", "steady-1.5M SSIM"},
	}
	res := mustRunCampaign(tb, lastMileCampaign(), sc)
	for _, kind := range platform.Kinds {
		fl := res.mustCell(fmt.Sprintf("ext-lastmile/%s/fluct", kind))
		lo := res.mustCell(fmt.Sprintf("ext-lastmile/%s/steady-300k", kind))
		hi := res.mustCell(fmt.Sprintf("ext-lastmile/%s/steady-1.5M", kind))
		t.AddRow(string(kind), fl.PSNR.Mean, fl.SSIM.Mean, fl.Freeze.Mean,
			lo.SSIM.Mean, hi.SSIM.Mean)
	}
	t.Render(w)
	fmt.Fprintln(w, "\nA platform that adapts quickly should land near its steady-state")
	fmt.Fprintln(w, "mean; one that oscillates (Webex) lands well below the worse extreme.")
}

// runScaleStudy pushes sessions to 11 participants (the paper's §6
// question) and reports how QoE and the host's upload rate hold up.
func runScaleStudy(tb *Testbed, sc Scale, w io.Writer) {
	t := report.Table{
		Title:  "ext-scale: QoE and rates up to N=11 (HM feed, US)",
		Header: []string{"N"},
	}
	for _, k := range platform.Kinds {
		t.Header = append(t.Header, string(k)+"-SSIM", string(k)+"-up Mbps", string(k)+"-down Mbps")
	}
	sizes := []int{2, 6, 11}
	res := mustRunCampaign(tb, Campaign{
		Name:       "ext-scale",
		Geometries: []Geometry{{Host: geo.USEast.Name, Zone: string(geo.ZoneUS)}},
		Motions:    []string{media.HighMotion.String()},
		Sizes:      sizes,
	}, sc)
	for _, n := range sizes {
		row := []any{n}
		for _, k := range platform.Kinds {
			c := res.mustCell(fmt.Sprintf("ext-scale/%s/%d", k, n))
			row = append(row, c.SSIM.Mean, c.UpMbps.Mean, c.DownMbps.Mean)
		}
		t.AddRow(row...)
	}
	t.Render(w)
}
