package core

import (
	"fmt"
	"io"
	"time"

	"github.com/vcabench/vcabench/internal/geo"
	"github.com/vcabench/vcabench/internal/media"
	"github.com/vcabench/vcabench/internal/platform"
	"github.com/vcabench/vcabench/internal/report"
	"github.com/vcabench/vcabench/internal/simnet"
)

// Extensions implement the future work the paper sketches in §6:
// dynamic last-mile variation ("a more realistic QoE analysis would
// consider dynamic bandwidth variation and jitter as well") and
// conference scalability beyond the 11 participants the paper reached.
func init() {
	extraExperiments = append(extraExperiments,
		Experiment{
			ID:    "ext-lastmile",
			Title: "QoE under a fluctuating last mile (paper §6 future work)",
			Paper: "not in the paper; extends Fig 17 with time-varying capacity",
			Run:   runLastMile,
		},
		Experiment{
			ID:    "ext-scale",
			Title: "QoE as sessions grow to 11 participants (paper §6 future work)",
			Paper: "not in the paper; extends Fig 12 beyond N=6",
			Run:   runScaleStudy,
		},
	)
}

// extraExperiments is appended to the registry by Experiments.
var extraExperiments []Experiment

// runLastMile alternates a receiver's downlink between a comfortable and
// a congested capacity every few seconds and compares each platform's
// QoE against its steady-state behaviour at both extremes.
func runLastMile(tb *Testbed, sc Scale, w io.Writer) {
	t := report.Table{
		Title:  "ext-lastmile: fluctuating 1.5Mbps <-> 300kbps downlink (HM feed)",
		Header: []string{"platform", "fluct PSNR", "fluct SSIM", "fluct freeze", "steady-300k SSIM", "steady-1.5M SSIM"},
	}
	// One unit per (platform, condition): fluctuating, steady-low,
	// steady-high — nine shards scheduled together.
	type arm struct{ fl, lo, hi *QoEStudyResult }
	arms := make([]arm, len(platform.Kinds))
	var units []Unit
	for i, kind := range platform.Kinds {
		i, kind := i, kind
		units = append(units,
			Unit{Key: "ext-lastmile/" + string(kind) + "/fluct", Run: func(stb *Testbed) {
				arms[i].fl = runFluctuating(stb, kind, sc, 1_500_000, 300_000, 4*time.Second)
			}},
			Unit{Key: "ext-lastmile/" + string(kind) + "/steady-300k", Run: func(stb *Testbed) {
				arms[i].lo = RunQoEStudy(stb, kind, geo.USEast, []geo.Region{geo.USEast2},
					media.HighMotion, sc, QoEOpts{DownlinkCapBps: 300_000})
			}},
			Unit{Key: "ext-lastmile/" + string(kind) + "/steady-1.5M", Run: func(stb *Testbed) {
				arms[i].hi = RunQoEStudy(stb, kind, geo.USEast, []geo.Region{geo.USEast2},
					media.HighMotion, sc, QoEOpts{DownlinkCapBps: 1_500_000})
			}},
		)
	}
	(&Scheduler{TB: tb}).Run(units)
	for i, kind := range platform.Kinds {
		a := arms[i]
		t.AddRow(string(kind), a.fl.PSNR.Mean(), a.fl.SSIM.Mean(), a.fl.Freeze.Mean(),
			a.lo.SSIM.Mean(), a.hi.SSIM.Mean())
	}
	t.Render(w)
	fmt.Fprintln(w, "\nA platform that adapts quickly should land near its steady-state")
	fmt.Fprintln(w, "mean; one that oscillates (Webex) lands well below the worse extreme.")
}

// runFluctuating is RunQoEStudy with the cap toggled mid-session.
func runFluctuating(tb *Testbed, kind platform.Kind, sc Scale, hiBps, loBps int64, period time.Duration) *QoEStudyResult {
	res := RunQoEStudyWithSetup(tb, kind, geo.USEast, []geo.Region{geo.USEast2},
		media.HighMotion, sc, QoEOpts{DownlinkCapBps: hiBps},
		func(recvNodes []*simnet.Node) {
			for _, n := range recvNodes {
				n := n
				high := true
				tb.Sim.Every(period, func() {
					high = !high
					cap := hiBps
					if !high {
						cap = loBps
					}
					n.SetDownlinkShaper(simnet.NewTokenBucket(cap, 24*1024))
				})
			}
		})
	return res
}

// runScaleStudy pushes sessions to 11 participants (the paper's §6
// question) and reports how QoE and the host's upload rate hold up.
func runScaleStudy(tb *Testbed, sc Scale, w io.Writer) {
	t := report.Table{
		Title:  "ext-scale: QoE and rates up to N=11 (HM feed, US)",
		Header: []string{"N"},
	}
	for _, k := range platform.Kinds {
		t.Header = append(t.Header, string(k)+"-SSIM", string(k)+"-up Mbps", string(k)+"-down Mbps")
	}
	qoeGrid(tb, []int{2, 6, 11},
		func(n int, k platform.Kind) string { return fmt.Sprintf("ext-scale/%s/%d", k, n) },
		func(stb *Testbed, n int, k platform.Kind) *QoEStudyResult {
			return RunQoEStudy(stb, k, geo.USEast, QoEReceiverRegions(geo.ZoneUS, n-1),
				media.HighMotion, sc, QoEOpts{})
		},
		func(n int, res []*QoEStudyResult) {
			row := []any{n}
			for _, r := range res {
				row = append(row, r.SSIM.Mean(), r.UpMbps.Mean(), r.DownMbps.Mean())
			}
			t.AddRow(row...)
		})
	t.Render(w)
}
