// Package geo models the geographic substrate of the testbed: the cloud
// regions used as vantage points (paper Table 3), the platform points of
// presence, and a distance-based round-trip-time model.
//
// The latency model is intentionally simple and physical: great-circle
// distance at two-thirds the speed of light (fiber), times a deterministic
// per-path routing-inflation factor, plus a small fixed per-path base for
// serialization and hop overheads. Trans-Atlantic paths come out at
// ~75 ms RTT and US coast-to-coast at ~60 ms, consistent with the public
// latency statistics the paper cites.
package geo

import (
	"fmt"
	"hash/fnv"
	"math"
	"time"
)

// Zone is a coarse geographic partition used to group vantage points.
type Zone string

const (
	ZoneUS Zone = "US"
	ZoneEU Zone = "EU"
)

// LatLon is a point on the globe in degrees.
type LatLon struct {
	Lat float64
	Lon float64
}

// Region is a named deployment location (cloud region, PoP, or site).
type Region struct {
	Name     string // short name used throughout results, e.g. "US-East"
	Location string // human-readable location, e.g. "Virginia"
	Zone     Zone
	Pos      LatLon
}

func (r Region) String() string { return r.Name }

// The vantage-point regions of paper Table 3, plus the residential site
// hosting the Android devices (east-coast US) and the platform PoP sites.
var (
	USCentral  = Region{"US-Central", "Iowa", ZoneUS, LatLon{41.60, -93.61}}
	USNCentral = Region{"US-NCentral", "Illinois", ZoneUS, LatLon{41.88, -87.63}}
	USSCentral = Region{"US-SCentral", "Texas", ZoneUS, LatLon{29.42, -98.49}}
	USEast     = Region{"US-East", "Virginia", ZoneUS, LatLon{39.04, -77.49}}
	USEast2    = Region{"US-East2", "Virginia", ZoneUS, LatLon{38.90, -77.20}}
	USWest     = Region{"US-West", "California", ZoneUS, LatLon{37.33, -121.89}}
	USWest2    = Region{"US-West2", "California", ZoneUS, LatLon{34.05, -118.24}}

	CH      = Region{"CH", "Switzerland", ZoneEU, LatLon{47.38, 8.54}}
	DE      = Region{"DE", "Denmark", ZoneEU, LatLon{55.68, 12.59}}
	IE      = Region{"IE", "Ireland", ZoneEU, LatLon{53.35, -6.26}}
	NL      = Region{"NL", "Netherlands", ZoneEU, LatLon{52.37, 4.90}}
	FR      = Region{"FR", "France", ZoneEU, LatLon{48.86, 2.35}}
	UKSouth = Region{"UK-South", "London, UK", ZoneEU, LatLon{51.51, -0.13}}
	UKWest  = Region{"UK-West", "Cardiff, UK", ZoneEU, LatLon{51.48, -3.18}}

	// Residential is the east-coast US residential network hosting the
	// two Android devices behind a 50 Mbps WiFi access link.
	Residential = Region{"Residential", "New Jersey", ZoneUS, LatLon{40.74, -74.17}}
)

// USRegions is the US vantage-point fleet of Table 3 in paper order.
// US-East and US-West each provision two VMs (counts handled by the fleet).
var USRegions = []Region{USCentral, USNCentral, USSCentral, USEast, USEast2, USWest, USWest2}

// EURegions is the Europe vantage-point fleet of Table 3 in paper order.
var EURegions = []Region{CH, DE, IE, NL, FR, UKSouth, UKWest}

// PoP sites for platform infrastructure models. These are not vantage
// points; they are where the simulated services terminate media.
var (
	PoPUSEast    = Region{"pop-us-east", "N. Virginia", ZoneUS, LatLon{38.95, -77.45}}
	PoPUSCentral = Region{"pop-us-central", "Iowa", ZoneUS, LatLon{41.26, -95.86}}
	PoPUSWest    = Region{"pop-us-west", "San Jose", ZoneUS, LatLon{37.35, -121.95}}
	PoPEUWest    = Region{"pop-eu-west", "Dublin", ZoneEU, LatLon{53.33, -6.25}}
	PoPEUCentral = Region{"pop-eu-central", "Frankfurt", ZoneEU, LatLon{50.11, 8.68}}
	PoPEUNorth   = Region{"pop-eu-north", "Amsterdam", ZoneEU, LatLon{52.31, 4.76}}
)

// Registry returns every region known to the package, keyed by name.
func Registry() map[string]Region {
	all := []Region{
		USCentral, USNCentral, USSCentral, USEast, USEast2, USWest, USWest2,
		CH, DE, IE, NL, FR, UKSouth, UKWest, Residential,
		PoPUSEast, PoPUSCentral, PoPUSWest, PoPEUWest, PoPEUCentral, PoPEUNorth,
	}
	m := make(map[string]Region, len(all))
	for _, r := range all {
		m[r.Name] = r
	}
	return m
}

// Lookup returns the region with the given name.
func Lookup(name string) (Region, error) {
	r, ok := Registry()[name]
	if !ok {
		return Region{}, fmt.Errorf("geo: unknown region %q", name)
	}
	return r, nil
}

// earthRadiusKm is the mean Earth radius.
const earthRadiusKm = 6371.0

// DistanceKm returns the great-circle distance between two points.
func DistanceKm(a, b LatLon) float64 {
	const degToRad = math.Pi / 180
	la1, lo1 := a.Lat*degToRad, a.Lon*degToRad
	la2, lo2 := b.Lat*degToRad, b.Lon*degToRad
	dla := la2 - la1
	dlo := lo2 - lo1
	h := math.Sin(dla/2)*math.Sin(dla/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dlo/2)*math.Sin(dlo/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// PathModel converts distance into latency. The zero value is unusable;
// use DefaultPathModel.
type PathModel struct {
	// FiberKmPerMs is the distance light covers per millisecond in fiber
	// (~200 km/ms at 2/3 c).
	FiberKmPerMs float64
	// InflationMin/Max bound the deterministic routing inflation factor
	// applied per path (real routes are never great circles).
	InflationMin, InflationMax float64
	// BaseOneWay is added per direction for serialization/processing.
	BaseOneWay time.Duration
}

// DefaultPathModel is calibrated so that trans-Atlantic RTTs land near
// 75 ms and US coast-to-coast RTTs near 60 ms.
var DefaultPathModel = PathModel{
	FiberKmPerMs: 200,
	InflationMin: 1.15,
	InflationMax: 1.45,
	BaseOneWay:   1500 * time.Microsecond,
}

// inflation returns the deterministic routing-inflation factor for the
// unordered pair (a, b). Hashing the pair keeps the factor stable across
// runs while varying it between paths.
func (m PathModel) inflation(a, b Region) float64 {
	lo, hi := a.Name, b.Name
	if lo > hi {
		lo, hi = hi, lo
	}
	h := fnv.New32a()
	h.Write([]byte(lo))
	h.Write([]byte{0})
	h.Write([]byte(hi))
	u := h.Sum32()
	frac := float64(u%1000) / 999.0
	return m.InflationMin + frac*(m.InflationMax-m.InflationMin)
}

// OneWay returns the one-way propagation delay between two regions.
func (m PathModel) OneWay(a, b Region) time.Duration {
	if a.Name == b.Name {
		// Intra-site: sub-millisecond datacenter latency.
		return 250 * time.Microsecond
	}
	km := DistanceKm(a.Pos, b.Pos)
	ms := km / m.FiberKmPerMs * m.inflation(a, b)
	return m.BaseOneWay + time.Duration(ms*float64(time.Millisecond))
}

// RTT returns the round-trip time between two regions.
func (m PathModel) RTT(a, b Region) time.Duration {
	return 2 * m.OneWay(a, b)
}

// Nearest returns the candidate region closest to from, by one-way delay.
// It panics if candidates is empty (a programming error in topology setup).
func (m PathModel) Nearest(from Region, candidates []Region) Region {
	if len(candidates) == 0 {
		panic("geo: Nearest with no candidates")
	}
	best := candidates[0]
	bestD := m.OneWay(from, best)
	for _, c := range candidates[1:] {
		if d := m.OneWay(from, c); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}
