package geo

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDistanceKnownPairs(t *testing.T) {
	// London <-> New York great-circle distance is ~5570 km.
	ny := LatLon{40.71, -74.01}
	ldn := LatLon{51.51, -0.13}
	d := DistanceKm(ny, ldn)
	if d < 5400 || d > 5750 {
		t.Errorf("NY-London distance = %.0f km, want ~5570", d)
	}
	// Identical points.
	if d := DistanceKm(ny, ny); d != 0 {
		t.Errorf("self distance = %v", d)
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := LatLon{math.Mod(lat1, 90), math.Mod(lon1, 180)}
		b := LatLon{math.Mod(lat2, 90), math.Mod(lon2, 180)}
		if math.IsNaN(a.Lat) || math.IsNaN(a.Lon) || math.IsNaN(b.Lat) || math.IsNaN(b.Lon) {
			return true
		}
		d1 := DistanceKm(a, b)
		d2 := DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-6 && d1 >= 0 && d1 <= 2*math.Pi*earthRadiusKm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRTTCalibration(t *testing.T) {
	m := DefaultPathModel
	// Trans-Atlantic: UK-South <-> pop-us-east should be ~65-90 ms RTT.
	rtt := m.RTT(UKSouth, PoPUSEast)
	if rtt < 60*time.Millisecond || rtt > 95*time.Millisecond {
		t.Errorf("trans-Atlantic RTT = %v, want ~75ms", rtt)
	}
	// US coast-to-coast: ~45-75 ms RTT.
	cc := m.RTT(USWest, PoPUSEast)
	if cc < 45*time.Millisecond || cc > 80*time.Millisecond {
		t.Errorf("coast-to-coast RTT = %v, want ~60ms", cc)
	}
	// Intra-Europe should be far smaller than trans-Atlantic.
	eu := m.RTT(UKSouth, PoPEUCentral)
	if eu >= cc {
		t.Errorf("intra-EU RTT %v not < coast-to-coast %v", eu, cc)
	}
	// Same-region is sub-millisecond.
	if same := m.RTT(USEast, USEast); same >= time.Millisecond {
		t.Errorf("same-region RTT = %v", same)
	}
}

func TestRTTSymmetricDeterministic(t *testing.T) {
	m := DefaultPathModel
	r1 := m.RTT(CH, PoPUSEast)
	r2 := m.RTT(PoPUSEast, CH)
	if r1 != r2 {
		t.Errorf("RTT not symmetric: %v vs %v", r1, r2)
	}
	if r1 != m.RTT(CH, PoPUSEast) {
		t.Error("RTT not deterministic")
	}
}

func TestInflationBounds(t *testing.T) {
	m := DefaultPathModel
	regions := append(append([]Region{}, USRegions...), EURegions...)
	for _, a := range regions {
		for _, b := range regions {
			if a.Name == b.Name {
				continue
			}
			f := m.inflation(a, b)
			if f < m.InflationMin || f > m.InflationMax {
				t.Fatalf("inflation(%s,%s) = %v out of [%v,%v]",
					a.Name, b.Name, f, m.InflationMin, m.InflationMax)
			}
		}
	}
}

func TestNearest(t *testing.T) {
	m := DefaultPathModel
	pops := []Region{PoPUSEast, PoPUSWest, PoPEUWest}
	if got := m.Nearest(USWest, pops); got.Name != PoPUSWest.Name {
		t.Errorf("Nearest(US-West) = %s", got.Name)
	}
	if got := m.Nearest(UKSouth, pops); got.Name != PoPEUWest.Name {
		t.Errorf("Nearest(UK-South) = %s", got.Name)
	}
	if got := m.Nearest(USEast, pops); got.Name != PoPUSEast.Name {
		t.Errorf("Nearest(US-East) = %s", got.Name)
	}
}

func TestNearestPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	DefaultPathModel.Nearest(USEast, nil)
}

func TestRegistryAndLookup(t *testing.T) {
	reg := Registry()
	if len(reg) < 20 {
		t.Errorf("registry has %d regions", len(reg))
	}
	r, err := Lookup("US-East")
	if err != nil || r.Location != "Virginia" {
		t.Errorf("Lookup(US-East) = %v, %v", r, err)
	}
	if _, err := Lookup("Atlantis"); err == nil {
		t.Error("Lookup of unknown region should fail")
	}
}

func TestFleetMatchesTable3(t *testing.T) {
	if len(USRegions) != 7 {
		t.Errorf("US fleet size = %d, want 7", len(USRegions))
	}
	if len(EURegions) != 7 {
		t.Errorf("EU fleet size = %d, want 7", len(EURegions))
	}
	for _, r := range USRegions {
		if r.Zone != ZoneUS {
			t.Errorf("%s zone = %s", r.Name, r.Zone)
		}
	}
	for _, r := range EURegions {
		if r.Zone != ZoneEU {
			t.Errorf("%s zone = %s", r.Name, r.Zone)
		}
	}
}

func TestZoneOrdering(t *testing.T) {
	// Lag-relevant sanity: US-West is farther from the US-East PoP than
	// US-Central is, and all EU regions are farther still.
	m := DefaultPathModel
	east := m.OneWay(USEast, PoPUSEast)
	central := m.OneWay(USCentral, PoPUSEast)
	west := m.OneWay(USWest, PoPUSEast)
	if !(east < central && central < west) {
		t.Errorf("delay ordering broken: east=%v central=%v west=%v", east, central, west)
	}
	for _, r := range EURegions {
		if d := m.OneWay(r, PoPUSEast); d <= west {
			t.Errorf("%s one-way %v not > US-West %v", r.Name, d, west)
		}
	}
}
