package diag

import (
	"strings"
	"testing"
	"time"
)

var epoch = time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC)

func TestRecorderAggregatesAndSorts(t *testing.T) {
	r := NewRecorder("fig13/zoom", epoch, time.Second)
	// Insert pipes and bins out of order; Finalize must sort both.
	r.PipeForwarded("b/up", epoch.Add(2500*time.Millisecond), 1200, 1228, 4096, 3*time.Millisecond)
	r.PipeForwarded("a/down", epoch.Add(100*time.Millisecond), 900, 928, 0, 0)
	r.PipeForwarded("b/up", epoch.Add(2600*time.Millisecond), 1200, 1228, 8192, 5*time.Millisecond)
	r.PipeDropped("b/up", epoch.Add(2700*time.Millisecond), 1228, CauseQueue)
	r.PipeDropped("a/down", epoch.Add(200*time.Millisecond), 928, CauseRandom)
	r.StepExecuted(epoch.Add(50*time.Millisecond), 7)
	r.StepExecuted(epoch.Add(60*time.Millisecond), 3)
	r.Event(epoch.Add(time.Second), KindRateTarget, "fig13/zoom-session-1", 1_000_000)

	d := r.Finalize()
	if d.Version != Version || d.Key != "fig13/zoom" || d.BinSec != 1 {
		t.Fatalf("header = %+v", d)
	}
	if d.DropsQueue != 1 || d.DropsRandom != 1 {
		t.Fatalf("drops = %d/%d, want 1/1", d.DropsQueue, d.DropsRandom)
	}
	if len(d.Pipes) != 2 || d.Pipes[0].Name != "a/down" || d.Pipes[1].Name != "b/up" {
		t.Fatalf("pipes = %+v, want sorted [a/down b/up]", d.Pipes)
	}
	up := d.Pipes[1]
	if len(up.Bins) != 1 || up.Bins[0].Bin != 2 {
		t.Fatalf("b/up bins = %+v, want one bin at index 2", up.Bins)
	}
	b := up.Bins[0]
	if b.Packets != 2 || b.Bytes != 2400 || b.DropsQueue != 1 || b.QueueMaxBytes != 8192 {
		t.Fatalf("b/up bin = %+v", b)
	}
	if b.DelayMsMean != 4 {
		t.Fatalf("DelayMsMean = %v, want 4 (mean of 3ms and 5ms)", b.DelayMsMean)
	}
	if len(d.Queue) != 1 || d.Queue[0].Steps != 2 || d.Queue[0].DepthMax != 7 {
		t.Fatalf("queue = %+v", d.Queue)
	}
	if len(d.Events) != 1 || d.Events[0].Kind != KindRateTarget || d.Events[0].AtSec != 1 {
		t.Fatalf("events = %+v", d.Events)
	}
}

func TestFinalizeIsNonDestructive(t *testing.T) {
	r := NewRecorder("k", epoch, time.Second)
	r.PipeForwarded("p/up", epoch, 100, 128, 0, 0)
	first := r.Finalize()
	r.PipeForwarded("p/up", epoch, 100, 128, 0, 0)
	second := r.Finalize()
	if first.Pipes[0].Bins[0].Packets != 1 {
		t.Fatalf("first snapshot mutated: %+v", first.Pipes[0].Bins[0])
	}
	if second.Pipes[0].Bins[0].Packets != 2 {
		t.Fatalf("second snapshot = %+v, want 2 packets", second.Pipes[0].Bins[0])
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := NewRecorder("cell", epoch, time.Second)
	r.PipeForwarded("n/down", epoch.Add(time.Second), 500, 528, 1024, time.Millisecond)
	r.Event(epoch.Add(2*time.Second), KindTraceStep, "dip500k", 500_000)
	d := r.Finalize()
	enc, err := Encode(d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(enc), "\n") {
		t.Fatal("Encode output missing trailing newline")
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	reenc, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(reenc) != string(enc) {
		t.Fatalf("round-trip not byte-identical:\n%s\nvs\n%s", enc, reenc)
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := map[string]string{
		"not json":         "{",
		"wrong version":    `{"version": 99, "key": "k", "bin_sec": 1, "drops_queue": 0, "drops_random": 0}`,
		"trailing data":    `{"version": 1, "key": "k", "bin_sec": 1, "drops_queue": 0, "drops_random": 0}{}`,
		"empty document":   "",
		"null document":    "null",
		"array not object": `[1, 2]`,
	}
	for name, in := range cases {
		if _, err := Decode([]byte(in)); err == nil {
			t.Errorf("%s: Decode(%q) succeeded, want error", name, in)
		}
	}
}

func TestNewRecorderRejectsBadBin(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRecorder with zero bin did not panic")
		}
	}()
	NewRecorder("k", epoch, 0)
}

func FuzzDiagDecode(f *testing.F) {
	r := NewRecorder("seed", epoch, time.Second)
	r.PipeForwarded("n/up", epoch, 100, 128, 512, time.Millisecond)
	r.PipeDropped("n/up", epoch.Add(time.Second), 128, CauseRandom)
	r.StepExecuted(epoch, 2)
	r.Event(epoch, KindFreeze, "client-1", 3)
	enc, err := Encode(r.Finalize())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	f.Add([]byte(`{"version": 1}`))
	f.Add([]byte(`{"version": 1, "pipes": [{"name": "x", "bins": null}]}`))
	f.Add([]byte("null"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(data)
		if err != nil {
			return
		}
		// Any accepted document must re-encode and re-decode cleanly.
		enc, err := Encode(d)
		if err != nil {
			t.Fatalf("Encode of accepted document failed: %v", err)
		}
		if _, err := Decode(enc); err != nil {
			t.Fatalf("re-Decode of Encode output failed: %v", err)
		}
	})
}
