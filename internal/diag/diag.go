// Package diag is the deterministic sim-time flight recorder: the
// in-simulation counterpart of internal/obs (which observes the host
// process in wall time). Producers — simnet pipes, the event queue,
// trace players, platform rate control, client media pipelines — emit
// observations against the *virtual* clock through zero-overhead-when-
// nil probe seams; the recorder aggregates them into per-cell
// time-binned series and discrete event logs, exported as a versioned
// JSON document per campaign cell.
//
// Determinism is the design constraint: a recorder is fed by exactly
// one simulated unit (one forked testbed, one goroutine), every
// timestamp is an offset from the unit's sim start, and Finalize sorts
// all map-collected state — so for a given (seed, unit key) the
// encoded document is byte-identical at any worker count, cache
// temperature, or fleet placement. The package is stdlib-only and
// imports nothing from the simulator: producer packages define their
// own probe types and internal/core adapts them, keeping the
// dependency arrows pointing at the simulation, never out of it.
package diag

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// Version numbers the CellDiag JSON schema. Decode rejects documents
// from a different schema so consumers never mis-read old artifacts.
const Version = 1

// Event kinds emitted by the instrumented stack. Producers outside
// this package use the same spellings; the recorder stores kinds
// verbatim, so new producers can add kinds without touching diag.
const (
	// KindRateTarget is a rate-ladder switch: the platform changed a
	// session's video bitrate target. Value is the new target in bits/s.
	KindRateTarget = "rate-target"
	// KindTraceStep is a trace-player step application: a scheduled
	// downlink reconfiguration fired. Value is the step's cap in bits/s
	// (0 = uncapped).
	KindTraceStep = "trace-step"
	// KindFECRecovery marks a receiver completing video frames despite
	// packet gaps observed since the last completion — the reassembler
	// recovered the frame from out-of-order arrivals. Value is the
	// number of frames completed by the triggering packet.
	KindFECRecovery = "fec-recovery"
	// KindFrameDrop marks a receiver's reassembler abandoning frames
	// whose packets never all arrived. Value is the frame count.
	KindFrameDrop = "frame-drop"
	// KindFreeze marks the start of a run of frozen display slots in a
	// scored recording. Value is the run length in slots.
	KindFreeze = "freeze"
)

// Cause classifies a pipe drop.
type Cause int

const (
	// CauseQueue is a tail drop: the access queue's byte bound was
	// exceeded.
	CauseQueue Cause = iota
	// CauseRandom is independent random loss (netem-style).
	CauseRandom
)

// CellDiag is one cell's flight-recorder document: totals, per-pipe
// time-binned series, event-queue depth bins, and the discrete event
// log, all in sim time relative to the cell's start.
//
//vcalint:ignore floatfmt BinSec is a finite constant bin width set by the recorder, never computed
type CellDiag struct {
	// Version is the schema version (see Version).
	Version int `json:"version"`
	// Key is the cell's canonical unit key ("" outside campaigns).
	Key string `json:"key"`
	// BinSec is the series bin width in seconds.
	BinSec float64 `json:"bin_sec"`
	// DropsQueue / DropsRandom total the pipe drops by cause across
	// every pipe of the cell.
	DropsQueue  int64 `json:"drops_queue"`
	DropsRandom int64 `json:"drops_random"`
	// Pipes holds one binned series per access-link direction that saw
	// traffic, sorted by pipe name.
	Pipes []PipeSeries `json:"pipes,omitempty"`
	// Queue bins the discrete-event queue's depth over sim time.
	Queue []QueueBin `json:"queue,omitempty"`
	// Events is the discrete event log in sim order.
	Events []Event `json:"events,omitempty"`
}

// PipeSeries is the binned series of one pipe (one direction of one
// node's access link, named "<node>/up" or "<node>/down").
type PipeSeries struct {
	Name string    `json:"name"`
	Bins []PipeBin `json:"bins"`
}

// PipeBin aggregates one pipe over one bin of sim time. Bins that saw
// no packets and no drops are omitted (series are sparse).
//
//vcalint:ignore floatfmt DelayMsMean averages finite sim durations over a positive count, 0 when no packet carried a delay
type PipeBin struct {
	// Bin is the bin index: the bin covers [Bin*BinSec, (Bin+1)*BinSec)
	// of sim time from the cell's start.
	Bin int `json:"bin"`
	// Packets / Bytes count forwarded packets and their L7 bytes.
	Packets int64 `json:"packets"`
	Bytes   int64 `json:"bytes"`
	// DropsQueue / DropsRandom count drops by cause.
	DropsQueue  int64 `json:"drops_queue,omitempty"`
	DropsRandom int64 `json:"drops_random,omitempty"`
	// QueueMaxBytes is the peak queue occupancy (wire bytes) observed
	// at enqueue time within the bin.
	QueueMaxBytes int `json:"queue_max_bytes"`
	// DelayMsMean is the mean queuing+serialization delay in ms of
	// packets forwarded in the bin (0 for unconstrained pipes).
	DelayMsMean float64 `json:"delay_ms_mean"`
}

// QueueBin aggregates the simulator's event queue over one bin: how
// many events executed and the peak pending-event depth.
type QueueBin struct {
	Bin      int   `json:"bin"`
	Steps    int64 `json:"steps"`
	DepthMax int   `json:"depth_max"`
}

// Event is one discrete occurrence in the cell's sim timeline.
//
//vcalint:ignore floatfmt AtSec is a finite sim-time offset and Value carries finite producer quantities (bitrates, counts)
type Event struct {
	// AtSec is the offset from the cell's sim start in seconds.
	AtSec float64 `json:"at_sec"`
	// Kind is one of the Kind* constants (or a producer-defined kind).
	Kind string `json:"kind"`
	// Subject names what the event happened to (a session, a trace, a
	// receiving client).
	Subject string `json:"subject,omitempty"`
	// Value is the kind-specific magnitude.
	Value float64 `json:"value,omitempty"`
}

// Recorder accumulates one cell's observations. It is deliberately not
// safe for concurrent use: one recorder belongs to one simulated unit,
// which runs on one goroutine — sharing a recorder across units would
// also break determinism, not just memory safety.
type Recorder struct {
	key   string
	start time.Time
	bin   time.Duration

	pipes  map[string]map[int]*pipeBinAgg
	queue  map[int]*QueueBin
	events []Event

	dropsQueue, dropsRandom int64
}

// pipeBinAgg is a PipeBin under construction plus the delay-mean state.
type pipeBinAgg struct {
	PipeBin
	delaySum time.Duration
	delayN   int64
}

// NewRecorder creates a recorder for one cell. start anchors every
// offset (pass the unit testbed's sim time at creation — its Epoch);
// bin is the series bin width.
func NewRecorder(key string, start time.Time, bin time.Duration) *Recorder {
	if bin <= 0 {
		panic("diag: NewRecorder with non-positive bin width")
	}
	return &Recorder{
		key:   key,
		start: start,
		bin:   bin,
		pipes: make(map[string]map[int]*pipeBinAgg),
		queue: make(map[int]*QueueBin),
	}
}

// Key returns the cell key the recorder was created with.
func (r *Recorder) Key() string { return r.key }

// binIndex maps a sim instant to its bin.
func (r *Recorder) binIndex(at time.Time) int {
	d := at.Sub(r.start)
	if d < 0 {
		return 0
	}
	return int(d / r.bin)
}

func (r *Recorder) pipeBin(name string, at time.Time) *pipeBinAgg {
	bins, ok := r.pipes[name]
	if !ok {
		bins = make(map[int]*pipeBinAgg)
		r.pipes[name] = bins
	}
	i := r.binIndex(at)
	b, ok := bins[i]
	if !ok {
		b = &pipeBinAgg{}
		b.Bin = i
		bins[i] = b
	}
	return b
}

// PipeForwarded records one packet forwarded through a pipe: its L7
// and wire sizes, the queue occupancy at enqueue (wire bytes, 0 on
// the unconstrained fast path) and the queuing+serialization delay.
func (r *Recorder) PipeForwarded(name string, at time.Time, l7, wire, queuedBytes int, wait time.Duration) {
	b := r.pipeBin(name, at)
	b.Packets++
	b.Bytes += int64(l7)
	if queuedBytes > b.QueueMaxBytes {
		b.QueueMaxBytes = queuedBytes
	}
	b.delaySum += wait
	b.delayN++
}

// PipeDropped records one packet dropped at a pipe.
func (r *Recorder) PipeDropped(name string, at time.Time, wire int, cause Cause) {
	b := r.pipeBin(name, at)
	if cause == CauseRandom {
		b.DropsRandom++
		r.dropsRandom++
	} else {
		b.DropsQueue++
		r.dropsQueue++
	}
}

// StepExecuted records one discrete-event step: the instant it ran and
// the number of events still pending after it was popped.
func (r *Recorder) StepExecuted(at time.Time, depth int) {
	i := r.binIndex(at)
	b, ok := r.queue[i]
	if !ok {
		b = &QueueBin{Bin: i}
		r.queue[i] = b
	}
	b.Steps++
	if depth > b.DepthMax {
		b.DepthMax = depth
	}
}

// Event appends one discrete event. Producers call this in sim order
// (the simulator is single-threaded per unit), so the log needs no
// sorting to be deterministic.
func (r *Recorder) Event(at time.Time, kind, subject string, value float64) {
	r.events = append(r.events, Event{
		AtSec:   at.Sub(r.start).Seconds(),
		Kind:    kind,
		Subject: subject,
		Value:   value,
	})
}

// Finalize snapshots the recorder into a CellDiag, sorting every
// map-collected aggregate (pipes by name, bins by index) so the result
// is independent of map iteration order. The recorder remains usable;
// calling Finalize again reflects any observations recorded since.
func (r *Recorder) Finalize() *CellDiag {
	d := &CellDiag{
		Version:     Version,
		Key:         r.key,
		BinSec:      r.bin.Seconds(),
		DropsQueue:  r.dropsQueue,
		DropsRandom: r.dropsRandom,
	}
	names := make([]string, 0, len(r.pipes))
	for name := range r.pipes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bins := r.pipes[name]
		ps := PipeSeries{Name: name, Bins: make([]PipeBin, 0, len(bins))}
		//vcalint:ignore maprange the bin slice is sorted by index immediately below, erasing iteration order
		for _, b := range bins {
			pb := b.PipeBin
			if b.delayN > 0 {
				pb.DelayMsMean = float64(b.delaySum.Nanoseconds()) / float64(b.delayN) / 1e6
			}
			ps.Bins = append(ps.Bins, pb)
		}
		sort.Slice(ps.Bins, func(i, j int) bool { return ps.Bins[i].Bin < ps.Bins[j].Bin })
		d.Pipes = append(d.Pipes, ps)
	}
	d.Queue = make([]QueueBin, 0, len(r.queue))
	//vcalint:ignore maprange the queue bins are sorted by index immediately below, erasing iteration order
	for _, b := range r.queue {
		d.Queue = append(d.Queue, *b)
	}
	sort.Slice(d.Queue, func(i, j int) bool { return d.Queue[i].Bin < d.Queue[j].Bin })
	if len(d.Queue) == 0 {
		d.Queue = nil
	}
	d.Events = append([]Event(nil), r.events...)
	return d
}

// Encode renders the document as indented JSON with a trailing
// newline — the versioned artifact format written by `vcabench
// -diag-out` and served by vcabenchd's /cells/{key}/diag. Encoding is
// deterministic: field order follows the struct, and every slice was
// sorted at Finalize.
func Encode(d *CellDiag) ([]byte, error) {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("diag: encode %q: %w", d.Key, err)
	}
	return append(b, '\n'), nil
}

// Decode parses an encoded document, rejecting unknown schema
// versions and trailing garbage. It never panics on malformed input
// (fuzzed in diag_test.go).
func Decode(data []byte) (*CellDiag, error) {
	var d CellDiag
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("diag: decode: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("diag: decode: trailing data after the document")
	}
	if d.Version != Version {
		return nil, fmt.Errorf("diag: unsupported document version %d (want %d)", d.Version, Version)
	}
	return &d, nil
}
