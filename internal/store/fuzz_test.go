package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzGetCorrupt writes arbitrary bytes where a cell file belongs and
// reads the key back: the store's corruption-is-a-miss contract says a
// torn, tampered or foreign file must surface as a miss (or, only for
// a byte-exact valid frame, the framed payload) — never a panic, and
// never someone else's payload.
func FuzzGetCorrupt(f *testing.F) {
	const key = "v2/seed42/tiny/fuzz/unit"
	valid := frame(key, []byte("payload-bytes"))
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-1]) // torn tail
	f.Add(valid[:len(magic)+3]) // torn header
	f.Add(append([]byte("junk"), valid...))
	f.Add(frame("some/other/key", []byte("foreign")))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, raw []byte) {
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		objPath := s.path(key)
		if err := os.MkdirAll(filepath.Dir(objPath), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(objPath, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		data, ok := s.Get(key)
		if !ok {
			// A miss must be accounted as a miss or a corrupt entry,
			// and a later Put must still repair the slot.
			st := s.Stats()
			if st.Misses+st.Corrupt != 1 {
				t.Fatalf("miss not counted: %+v", st)
			}
			if err := s.Put(key, []byte("fresh")); err != nil {
				t.Fatalf("Put over corrupt file: %v", err)
			}
			got, ok := s.Get(key)
			if !ok || string(got) != "fresh" {
				t.Fatalf("repair failed: %q, %v", got, ok)
			}
			return
		}
		// The only way fuzzed bytes may be served is as a byte-exact
		// valid frame for this key.
		payload, err := unframe(key, raw)
		if err != nil {
			t.Fatalf("Get served bytes from an unframeable file: %q", data)
		}
		if !bytes.Equal(data, payload) {
			t.Fatalf("Get served %q, frame holds %q", data, payload)
		}
	})
}
