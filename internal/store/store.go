// Package store is a content-addressed, on-disk result store for
// campaign-unit results. The campaign engine computes expensive,
// deterministic cells — each named by a canonical key that already
// encodes everything the result depends on (schema version, seed,
// scale, unit coordinates) — so a cell computed once can be served
// forever, to any process, from a shared directory.
//
// Layout: each entry lives at objects/<aa>/<rest-of-sha256(key)>,
// written atomically (temp file + rename) and framed with the full key
// plus a payload checksum. Reads tolerate corruption: a torn, tampered
// or foreign file is reported as a miss (and counted in Stats.Corrupt),
// never an error — the caller just recomputes and rewrites the cell.
// An in-memory LRU front, bounded in bytes, absorbs repeated reads of
// hot cells without touching the disk.
//
// A Store is safe for concurrent use by multiple goroutines, and the
// on-disk format is safe for concurrent writers across processes: two
// writers racing on one key atomically install equal bytes.
package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/vcabench/vcabench/internal/obs"
)

// DefaultLRUBytes bounds the in-memory front when Options.LRUBytes is
// unset: enough for tens of thousands of typical cells.
const DefaultLRUBytes = 64 << 20

// magic heads every cell file; the trailing version digit is the frame
// format's, independent of the payload schema version inside the key.
const magic = "vcacell1\n"

// Options tunes a Store.
type Options struct {
	// LRUBytes bounds the in-memory front in payload bytes; <= 0 means
	// DefaultLRUBytes. Entries larger than the bound bypass the front.
	LRUBytes int64

	// Telemetry, when set with a registry, exports the traffic counters
	// as vcabench_store_* series (snapshotted under the store's lock so
	// a scrape never tears them) and times Get/Put into read/write
	// latency histograms through the bundle's clock. At most one Store
	// may export into a given registry. Telemetry never changes store
	// behaviour.
	Telemetry *obs.Telemetry
}

// Stats counts store traffic since Open. Snapshot via Store.Stats.
type Stats struct {
	MemHits  uint64 // served from the LRU front
	DiskHits uint64 // served from disk
	Misses   uint64 // key not present anywhere
	Puts     uint64 // entries written
	Corrupt  uint64 // unreadable cell files, reported as misses
}

// Hits is the total over both tiers.
func (st Stats) Hits() uint64 { return st.MemHits + st.DiskHits }

// Store is an on-disk key→bytes store with an LRU memory front.
type Store struct {
	dir      string
	lruBytes int64

	// tel and the latency histograms are set once at OpenOptions and
	// read-only after; nil histograms mean unobserved Get/Put.
	tel      *obs.Telemetry
	readSec  *obs.Histogram
	writeSec *obs.Histogram

	mu       sync.Mutex
	lru      *list.List // *lruEntry, front = most recently used
	idx      map[string]*list.Element
	curBytes int64
	stats    Stats
}

type lruEntry struct {
	key  string
	data []byte
}

// Open creates (or reopens) a store rooted at dir with default options.
func Open(dir string) (*Store, error) { return OpenOptions(dir, Options{}) }

// OpenOptions is Open with explicit tuning.
func OpenOptions(dir string, o Options) (*Store, error) {
	if o.LRUBytes <= 0 {
		o.LRUBytes = DefaultLRUBytes
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o777); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		lruBytes: o.LRUBytes,
		lru:      list.New(),
		idx:      make(map[string]*list.Element),
	}
	if o.Telemetry != nil && o.Telemetry.Metrics != nil {
		s.tel = o.Telemetry
		s.readSec = o.Telemetry.Metrics.Histogram("vcabench_store_read_seconds",
			"Store Get latency (memory front and disk alike).", nil)
		s.writeSec = o.Telemetry.Metrics.Histogram("vcabench_store_write_seconds",
			"Store Put latency, including the atomic rename commit.", nil)
		o.Telemetry.Metrics.RegisterGroup(s.emitMetrics)
	}
	return s, nil
}

// emitMetrics exports the traffic counters on each scrape. One lock
// acquisition snapshots every series, so hits, misses, puts and the
// LRU fill are always mutually consistent on the wire.
func (s *Store) emitMetrics(g *obs.Group) {
	s.mu.Lock()
	st := s.stats
	cur := s.curBytes
	s.mu.Unlock()
	tier := func(v string) []obs.Label { return []obs.Label{{Name: "tier", Value: v}} }
	g.Emit("vcabench_store_hits_total", "Cell reads served, by tier.", obs.TypeCounter,
		obs.Sample{Labels: tier("mem"), Value: float64(st.MemHits)},
		obs.Sample{Labels: tier("disk"), Value: float64(st.DiskHits)})
	g.Emit("vcabench_store_misses_total", "Cell reads that found no entry.", obs.TypeCounter,
		obs.Sample{Value: float64(st.Misses)})
	g.Emit("vcabench_store_puts_total", "Cell entries written.", obs.TypeCounter,
		obs.Sample{Value: float64(st.Puts)})
	g.Emit("vcabench_store_corrupt_total", "Unreadable cell files, reported as misses.", obs.TypeCounter,
		obs.Sample{Value: float64(st.Corrupt)})
	g.Emit("vcabench_store_lru_bytes", "Payload bytes resident in the LRU front.", obs.TypeGauge,
		obs.Sample{Value: float64(cur)})
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// path maps a key to its object file: addressing by the key's SHA-256
// keeps arbitrary key strings (slashes, unicode) out of file names and
// spreads entries across 256 subdirectories.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	h := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, "objects", h[:2], h[2:])
}

// Get returns the payload stored under key. The returned slice is
// shared with the LRU front and must be treated as read-only.
func (s *Store) Get(key string) ([]byte, bool) {
	if s.readSec == nil {
		return s.get(key)
	}
	t0 := s.tel.Now()
	data, ok := s.get(key)
	s.readSec.Observe(float64(s.tel.Now()-t0) / 1e9)
	return data, ok
}

func (s *Store) get(key string) ([]byte, bool) {
	s.mu.Lock()
	if el, ok := s.idx[key]; ok {
		s.lru.MoveToFront(el)
		s.stats.MemHits++
		data := el.Value.(*lruEntry).data
		s.mu.Unlock()
		return data, true
	}
	s.mu.Unlock()

	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		s.count(func(st *Stats) { st.Misses++ })
		return nil, false
	}
	payload, err := unframe(key, raw)
	if err != nil {
		// Corruption-tolerant: a bad file is a miss; the caller will
		// recompute and Put a fresh copy over it.
		s.count(func(st *Stats) { st.Corrupt++ })
		return nil, false
	}
	s.mu.Lock()
	s.stats.DiskHits++
	s.admit(key, payload)
	s.mu.Unlock()
	return payload, true
}

// Put persists data under key, atomically replacing any prior entry.
func (s *Store) Put(key string, data []byte) error {
	if s.writeSec == nil {
		return s.put(key, data)
	}
	t0 := s.tel.Now()
	err := s.put(key, data)
	s.writeSec.Observe(float64(s.tel.Now()-t0) / 1e9)
	return err
}

func (s *Store) put(key string, data []byte) error {
	objPath := s.path(key)
	objDir := filepath.Dir(objPath)
	if err := os.MkdirAll(objDir, 0o777); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(objDir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// CreateTemp makes 0600 files and rename preserves that, which
	// would lock a daemon-populated cache away from other users of a
	// shared directory; open the entries up like ordinary files so the
	// documented cross-process sharing holds across uids (replacement
	// only needs directory permission — it goes through rename).
	werr := tmp.Chmod(0o644)
	if werr == nil {
		_, werr = tmp.Write(frame(key, data))
	}
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		// Rename is the commit point: readers only ever see a complete
		// frame or no file at all.
		werr = os.Rename(tmp.Name(), objPath)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", werr)
	}
	s.mu.Lock()
	s.stats.Puts++
	s.admit(key, data)
	s.mu.Unlock()
	return nil
}

func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// admit inserts (or refreshes) an LRU entry and evicts from the cold
// end until the front fits its byte bound. Caller holds s.mu.
func (s *Store) admit(key string, data []byte) {
	if int64(len(data)) > s.lruBytes {
		return
	}
	if el, ok := s.idx[key]; ok {
		ent := el.Value.(*lruEntry)
		s.curBytes += int64(len(data)) - int64(len(ent.data))
		ent.data = data
		s.lru.MoveToFront(el)
	} else {
		s.idx[key] = s.lru.PushFront(&lruEntry{key: key, data: data})
		s.curBytes += int64(len(data))
	}
	for s.curBytes > s.lruBytes {
		el := s.lru.Back()
		ent := el.Value.(*lruEntry)
		s.lru.Remove(el)
		delete(s.idx, ent.key)
		s.curBytes -= int64(len(ent.data))
	}
}

// frame wraps a payload for disk: magic, key, payload, then a SHA-256
// over key+payload so torn or bit-flipped files are detectable.
func frame(key string, payload []byte) []byte {
	buf := make([]byte, 0, len(magic)+16+len(key)+len(payload)+sha256.Size)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	sum := sha256.New()
	sum.Write([]byte(key))
	sum.Write(payload)
	return sum.Sum(buf)
}

// unframe validates a cell file read for key and returns its payload.
func unframe(key string, raw []byte) ([]byte, error) {
	if len(raw) < len(magic)+16+sha256.Size || string(raw[:len(magic)]) != magic {
		return nil, fmt.Errorf("store: bad cell header")
	}
	rest := raw[len(magic):]
	keyLen := binary.LittleEndian.Uint64(rest)
	rest = rest[8:]
	// Compare by subtraction: adding to a corrupt length field could
	// wrap past the bounds check and panic the slice below, violating
	// the corruption-is-a-miss contract.
	if keyLen > uint64(len(rest))-8-sha256.Size {
		return nil, fmt.Errorf("store: truncated cell")
	}
	if string(rest[:keyLen]) != key {
		// A SHA-256 prefix collision, or a file copied under the wrong
		// name: either way this is not our entry.
		return nil, fmt.Errorf("store: cell holds key %q, want %q", rest[:keyLen], key)
	}
	rest = rest[keyLen:]
	payLen := binary.LittleEndian.Uint64(rest)
	rest = rest[8:]
	if payLen != uint64(len(rest))-sha256.Size {
		return nil, fmt.Errorf("store: truncated cell payload")
	}
	payload := rest[:payLen]
	sum := sha256.New()
	sum.Write([]byte(key))
	sum.Write(payload)
	if string(sum.Sum(nil)) != string(rest[payLen:]) {
		return nil, fmt.Errorf("store: cell checksum mismatch")
	}
	return payload, nil
}
