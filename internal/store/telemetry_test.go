package store

import (
	"strings"
	"testing"
	"time"

	"github.com/vcabench/vcabench/internal/obs"
)

// A telemetry-armed store exports its counters consistently and times
// reads and writes through the injected clock.
func TestStoreMetrics(t *testing.T) {
	clk := &obs.ManualClock{}
	tel := &obs.Telemetry{Metrics: obs.NewRegistry(), Clock: clk}
	s, err := OpenOptions(t.TempDir(), Options{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get("absent"); ok {
		t.Fatal("phantom hit")
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); !ok { // LRU front
		t.Fatal("miss after put")
	}

	var b strings.Builder
	if err := tel.Metrics.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`vcabench_store_hits_total{tier="disk"} 0`,
		`vcabench_store_hits_total{tier="mem"} 1`,
		"vcabench_store_misses_total 1",
		"vcabench_store_puts_total 1",
		"vcabench_store_corrupt_total 0",
		"vcabench_store_lru_bytes 1",
		"vcabench_store_read_seconds_count 2",
		"vcabench_store_write_seconds_count 1",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	if probs := obs.LintText([]byte(text)); len(probs) != 0 {
		t.Errorf("lint problems: %v", probs)
	}
}

// Latencies come from the injected clock, not the wall clock: with a
// manual clock advanced around a Put, the histogram lands the
// observation in the matching bucket deterministically.
func TestStoreLatencyUsesInjectedClock(t *testing.T) {
	clk := &stepClock{step: int64(2 * time.Second)}
	tel := &obs.Telemetry{Metrics: obs.NewRegistry(), Clock: clk}
	s, err := OpenOptions(t.TempDir(), Options{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tel.Metrics.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	// One 2 s observation: the le="1" bucket stays empty, le="2.5" has it.
	for _, want := range []string{
		`vcabench_store_write_seconds_bucket{le="1"} 0`,
		`vcabench_store_write_seconds_bucket{le="2.5"} 1`,
		"vcabench_store_write_seconds_sum 2",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

// stepClock advances by a fixed stride per reading, so a start/end
// pair brackets exactly one stride.
type stepClock struct {
	now  int64
	step int64
}

func (c *stepClock) Now() int64 {
	v := c.now
	c.now += c.step
	return v
}

// An unobserved store (no telemetry) must not register anything.
func TestStoreWithoutTelemetry(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if s.readSec != nil || s.writeSec != nil || s.tel != nil {
		t.Fatal("bare store grew telemetry")
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); !ok {
		t.Fatal("miss")
	}
}
