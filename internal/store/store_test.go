package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("empty store returned a hit")
	}
	want := []byte("payload with\x00binary\xffbytes")
	if err := s.Put("k", want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k")
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, %v; want %q", got, ok, want)
	}
	st := s.Stats()
	if st.Misses != 1 || st.Puts != 1 || st.Hits() != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// A second Store over the same directory — a fresh process — must see
// entries written by the first, from disk.
func TestStoreCrossProcess(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put("cell/one", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := b.Get("cell/one")
	if !ok || string(got) != "alpha" {
		t.Fatalf("cross-process Get = %q, %v", got, ok)
	}
	if st := b.Stats(); st.DiskHits != 1 || st.MemHits != 0 {
		t.Errorf("expected one disk hit, got %+v", st)
	}
	// Second read comes from the LRU front.
	if _, ok := b.Get("cell/one"); !ok {
		t.Fatal("second Get missed")
	}
	if st := b.Stats(); st.MemHits != 1 {
		t.Errorf("expected one mem hit, got %+v", st)
	}
}

// Corrupt files — truncated, bit-flipped, or holding another key — are
// misses, not errors, and a Put repairs them.
func TestStoreCorruptionTolerated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("good bytes")); err != nil {
		t.Fatal(err)
	}
	path := s.path("k")

	corrupt := func(mutate func([]byte) []byte) {
		t.Helper()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, mutate(raw), 0o666); err != nil {
			t.Fatal(err)
		}
	}

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(raw []byte) []byte { return raw[:len(raw)/2] }},
		{"bit flip", func(raw []byte) []byte { raw[len(raw)-5] ^= 0x40; return raw }},
		{"empty", func(raw []byte) []byte { return nil }},
		{"foreign key", func(raw []byte) []byte { return frame("other", []byte("good bytes")) }},
		// Length fields crafted so naive addition wraps past the bounds
		// checks: must be a miss, not a slice panic.
		{"key length overflow", func(raw []byte) []byte {
			for i := 0; i < 8; i++ {
				raw[len(magic)+i] = 0xff
			}
			return raw
		}},
		{"payload length overflow", func(raw []byte) []byte {
			off := len(magic) + 8 + len("k")
			for i := 0; i < 8; i++ {
				raw[off+i] = 0xff
			}
			return raw
		}},
	}
	for _, c := range cases {
		// Fresh store per case: the LRU front would otherwise mask the file.
		s, err = Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		corrupt(c.mutate)
		if _, ok := s.Get("k"); ok {
			t.Errorf("%s: corrupt cell served as a hit", c.name)
		}
		if st := s.Stats(); st.Corrupt != 1 {
			t.Errorf("%s: corrupt count = %d, want 1", c.name, st.Corrupt)
		}
		if err := s.Put("k", []byte("good bytes")); err != nil {
			t.Fatalf("%s: repair Put: %v", c.name, err)
		}
		// Read through a fresh store so the repaired file (not the LRU) serves.
		s2, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := s2.Get("k"); !ok || string(got) != "good bytes" {
			t.Errorf("%s: repaired Get = %q, %v", c.name, got, ok)
		}
	}
}

// Leftover temp files from a crashed writer never shadow the entry.
func TestStorePutAtomic(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	objDir := filepath.Dir(s.path("k"))
	if err := os.WriteFile(filepath.Join(objDir, ".tmp-crashed"), []byte("garbage"), 0o666); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get("k"); !ok || string(got) != "v" {
		t.Errorf("Get = %q, %v despite stray temp file", got, ok)
	}
}

// The LRU front stays within its byte bound and evicts cold entries;
// evicted entries are still served from disk.
func TestStoreLRUEviction(t *testing.T) {
	s, err := OpenOptions(t.TempDir(), Options{LRUBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("x"), 30)
	for _, k := range []string{"a", "b", "c"} { // 90 bytes > 64: "a" evicts
		if err := s.Put(k, val); err != nil {
			t.Fatal(err)
		}
	}
	if s.curBytes > 64 {
		t.Errorf("LRU holds %d bytes, bound is 64", s.curBytes)
	}
	if _, ok := s.Get("a"); !ok {
		t.Fatal("evicted entry lost from disk")
	}
	if st := s.Stats(); st.DiskHits != 1 {
		t.Errorf("evicted entry should hit disk: %+v", st)
	}
	// An entry bigger than the whole front bypasses it but persists.
	big := bytes.Repeat([]byte("y"), 100)
	if err := s.Put("big", big); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("big"); !ok || !bytes.Equal(got, big) {
		t.Fatal("oversized entry not served from disk")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s, err := OpenOptions(t.TempDir(), Options{LRUBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			key := string(rune('a' + g%4))
			for i := 0; i < 50; i++ {
				if err := s.Put(key, []byte{byte(g)}); err != nil {
					done <- err
					return
				}
				s.Get(key)
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
