package lint

import (
	"go/ast"
	"go/types"
)

// WalltimeAnalyzer enforces the first determinism invariant: simulation
// code never reads the wall clock. Every instant in a deterministic
// package must come from the simulator (simnet.Sim's virtual clock) or
// arrive as data; a single time.Now() in a packet path makes results
// depend on host speed and destroys byte-identity across runs, worker
// counts and machines.
var WalltimeAnalyzer = &Analyzer{
	Name: "walltime",
	Doc: "forbid wall-clock reads (time.Now, time.Since, time.Until, time.After, " +
		"timers, tickers, sleeps) in deterministic packages; derive time from the simulator",
	Run: runWalltime,
}

// wallClockFuncs are the package time functions that observe or wait on
// the host clock. Pure constructors and conversions (time.Duration,
// time.Unix, time.Date, time.ParseDuration) are data, not clock reads,
// and stay legal.
var wallClockFuncs = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"After":     "waits on the wall clock",
	"AfterFunc": "schedules on the wall clock",
	"Tick":      "ticks on the wall clock",
	"NewTicker": "ticks on the wall clock",
	"NewTimer":  "schedules on the wall clock",
	"Sleep":     "blocks on the wall clock",
}

func runWalltime(pass *Pass) {
	if !pass.Deterministic {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			why, bad := wallClockFuncs[sel.Sel.Name]
			if !bad || !isPkg(pass, sel.X, "time") {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s %s; deterministic packages must take time from the simulator (sim.Now) or as data",
				sel.Sel.Name, why)
			return true
		})
	}
}

// isPkg reports whether expr is an identifier naming an import of the
// given package path.
func isPkg(pass *Pass, expr ast.Expr, path string) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == path
}
