package lint_test

import (
	"testing"

	"github.com/vcabench/vcabench/internal/lint"
	"github.com/vcabench/vcabench/internal/lint/linttest"
)

func TestStorekeyFlagsAdHocKeyConstruction(t *testing.T) {
	linttest.Run(t, lint.StorekeyAnalyzer, "testdata/storekey/adhoc",
		linttest.Opts{Path: "example.com/vca/internal/serve"})
}

// The canonical helpers in internal/core are the one sanctioned home of
// reserved fragments — and even there, only inside those functions.
func TestStorekeyAllowsCanonicalHelpers(t *testing.T) {
	linttest.Run(t, lint.StorekeyAnalyzer, "testdata/storekey/core",
		linttest.Opts{Path: "example.com/vca/internal/core"})
}
