package lint_test

import (
	"testing"

	"github.com/vcabench/vcabench/internal/lint"
	"github.com/vcabench/vcabench/internal/lint/linttest"
)

// The escape hatch is itself checked: unknown analyzer names, missing
// reasons and bare annotations are findings, whichever analyzer runs.
func TestIgnoreAnnotationsAreValidated(t *testing.T) {
	linttest.Run(t, lint.WalltimeAnalyzer, "testdata/ignore/bad",
		linttest.Opts{Path: "example.com/vca/cmd/tool"})
}

func TestDeterministicPath(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"github.com/vcabench/vcabench/internal/simnet", true},
		{"github.com/vcabench/vcabench/internal/core", true},
		{"github.com/vcabench/vcabench/internal/stats", true},
		{"github.com/vcabench/vcabench/internal/mobile", true},
		{"github.com/vcabench/vcabench/internal/realnet", false},
		{"github.com/vcabench/vcabench/internal/cluster", false},
		{"github.com/vcabench/vcabench/internal/serve", false},
		{"github.com/vcabench/vcabench/internal/capture", false},
		// The telemetry layer holds the real clock; everything else
		// reads time through an injected obs.Clock.
		{"github.com/vcabench/vcabench/internal/obs", false},
		{"github.com/vcabench/vcabench/cmd/vcabench", false},
		{"github.com/vcabench/vcabench/examples/cluster", false},
		{"github.com/vcabench/vcabench", false},
		// Suffix matching must not be fooled by lookalikes.
		{"github.com/vcabench/vcabench/internal/realnetx", true},
		{"github.com/other/minternal/core", false},
	}
	for _, c := range cases {
		if got := lint.DeterministicPath(c.path); got != c.want {
			t.Errorf("DeterministicPath(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
