package lint

import (
	"go/ast"
)

// parentMap records each node's immediate parent within one file —
// enough ancestry for analyzers to ask "what call am I an argument of"
// or "what function declares me" without re-walking the file.
type parentMap map[ast.Node]ast.Node

func buildParents(f *ast.File) parentMap {
	parents := parentMap{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// enclosingFunc returns the function declaration lexically containing n,
// or nil at file scope.
func (p parentMap) enclosingFunc(n ast.Node) *ast.FuncDecl {
	for cur := n; cur != nil; cur = p[cur] {
		if fd, ok := cur.(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}
