package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"strconv"
	"strings"
)

// FloatfmtAnalyzer enforces the float-rendering invariant behind the
// PR 2 ("NaN" leaking into tables) and PR 6 (shortest-float drift) bug
// classes, in two parts:
//
//  1. No %v (explicit or implicit) and no precision-free %g applied to
//     a float in a deterministic package. Shortest-representation
//     formatting renders the last ulp of a computation into output, so
//     any refactor that changes summation order changes bytes; and
//     every fmt verb happily prints "NaN". Floats must go through the
//     repo's helpers (report.Table/trimFloat, PlusMinus) or an explicit
//     fixed-precision verb (%.3g, %.2f, ...).
//
//  2. No json-tagged float64 (or float slice) struct field without a
//     NaN guard. encoding/json rejects NaN at marshal time, so one NaN
//     mean turns a finished campaign into an error. Absent signals must
//     be *float64 nil (rendered as omitted/null), as Metric.StdErr/CI95
//     are — or the type's construction must provably filter NaN, stated
//     with a struct-level //vcalint:ignore floatfmt <why finite>.
var FloatfmtAnalyzer = &Analyzer{
	Name: "floatfmt",
	Doc: "forbid %v/bare-%g formatting of floats and unguarded json-tagged float fields " +
		"in deterministic packages; NaN and last-ulp drift must not reach rendered output",
	Run: runFloatfmt,
}

// formattedFuncs maps fmt's formatted variants to their format-string
// argument index.
var formattedFuncs = map[string]int{
	"Printf": 0, "Sprintf": 0, "Errorf": 0,
	"Fprintf": 1, "Appendf": 1,
}

// implicitFuncs maps fmt's unformatted variants (implicit %v for every
// operand) to the index of their first operand.
var implicitFuncs = map[string]int{
	"Print": 0, "Println": 0, "Sprint": 0, "Sprintln": 0,
	"Fprint": 1, "Fprintln": 1, "Append": 1, "Appendln": 1,
}

func runFloatfmt(pass *Pass) {
	if !pass.Deterministic {
		return
	}
	for _, f := range pass.Files {
		checkFloatVerbs(pass, f)
		checkFloatFields(pass, f)
	}
}

func checkFloatVerbs(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isPkg(pass, sel.X, "fmt") {
			return true
		}
		if fi, ok := implicitFuncs[sel.Sel.Name]; ok {
			for _, arg := range call.Args[min(fi, len(call.Args)):] {
				if t := floatCarrier(pass.TypesInfo.TypeOf(arg)); t != "" {
					pass.Reportf(arg.Pos(),
						"fmt.%s formats a %s with implicit %%v (shortest representation, renders NaN); "+
							"use an explicit precision verb or the report helpers", sel.Sel.Name, t)
				}
			}
			return true
		}
		fi, ok := formattedFuncs[sel.Sel.Name]
		if !ok || fi >= len(call.Args) {
			return true
		}
		lit, ok := call.Args[fi].(*ast.BasicLit)
		if !ok {
			return true
		}
		format, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		args := call.Args[fi+1:]
		for _, v := range parseVerbs(format) {
			if v.argIndex >= len(args) {
				break
			}
			bad := v.char == 'v' || ((v.char == 'g' || v.char == 'G') && !v.hasPrec)
			if !bad {
				continue
			}
			if t := floatCarrier(pass.TypesInfo.TypeOf(args[v.argIndex])); t != "" {
				pass.Reportf(args[v.argIndex].Pos(),
					"%%%c formats a %s by shortest representation and renders NaN; "+
						"use an explicit precision verb (%%.3g, %%.2f) or the report helpers", v.char, t)
			}
		}
		return true
	})
}

// fmtVerb is one conversion parsed from a format string, with the index
// of the operand it consumes.
type fmtVerb struct {
	char     byte
	hasPrec  bool
	argIndex int
}

// parseVerbs scans a fmt format string, tracking operand consumption
// (including the extra operands of * width/precision). Explicit
// argument indexes (%[n]d) abort the scan — rare enough that those call
// sites fall back to manual review.
func parseVerbs(format string) []fmtVerb {
	var verbs []fmtVerb
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		hasPrec := false
		for i < len(format) {
			c := format[i]
			if c == '%' {
				break // literal %%
			}
			if c == '[' {
				return verbs // explicit argument index: give up
			}
			if c == '*' {
				arg++
				i++
				continue
			}
			if c == '.' {
				hasPrec = true
				i++
				continue
			}
			if strings.IndexByte("+-# 0123456789", c) >= 0 {
				i++
				continue
			}
			// The verb character.
			verbs = append(verbs, fmtVerb{char: c, hasPrec: hasPrec, argIndex: arg})
			arg++
			break
		}
	}
	return verbs
}

// floatCarrier names the float-valued shape of t ("float64", "[]float64",
// ...) or returns "" when t cannot carry a float through %v.
func floatCarrier(t types.Type) string {
	if t == nil {
		return ""
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Info()&types.IsFloat != 0 {
			return u.String()
		}
	case *types.Slice:
		if e := floatCarrier(u.Elem()); e != "" {
			return "[]" + e
		}
	case *types.Array:
		if e := floatCarrier(u.Elem()); e != "" {
			return "[...]" + e
		}
	}
	return ""
}

func checkFloatFields(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			if field.Tag == nil || len(field.Names) == 0 {
				continue
			}
			raw, err := strconv.Unquote(field.Tag.Value)
			if err != nil {
				continue
			}
			jsonTag, ok := reflect.StructTag(raw).Lookup("json")
			if !ok || jsonTag == "-" || strings.HasPrefix(jsonTag, "-,") {
				continue
			}
			t := pass.TypesInfo.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				// *float64 is the sanctioned guard: absent signals are
				// nil, never NaN.
				continue
			}
			carrier := floatCarrier(t)
			if carrier == "" {
				continue
			}
			for _, name := range field.Names {
				if !name.IsExported() {
					continue
				}
				pass.Reportf(name.Pos(),
					"json-tagged %s field %q marshals NaN as an error and finite values by shortest "+
						"representation; use *float64 with omitempty for absent signals, or justify "+
						"finiteness with //vcalint:ignore floatfmt on the struct", carrier, name.Name)
			}
		}
		return true
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
