package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// This file is vcalint's package loader. With no golang.org/x/tools in
// the module, there is no go/packages: package discovery goes through
// `go list -json` and type checking through the standard library's
// source importer, which type-checks every dependency (stdlib included)
// from source. That keeps the tool offline and dependency-free at the
// cost of a few seconds of whole-program checking — fine for CI.

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Error      *struct{ Err string }
}

// LoadPatterns resolves go-list patterns (./..., specific import paths)
// against the module rooted at or above dir, and returns each matched
// package parsed and type-checked, ready for Run. Test files are
// excluded by construction (GoFiles only): determinism invariants bind
// shipped code, while tests routinely build adversarial keys and fake
// clocks on purpose.
func LoadPatterns(dir string, patterns []string) ([]*Package, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	// The source importer resolves module imports through the go
	// command; cgo-tagged dependency files would defeat pure-source type
	// checking, so resolve the pure-Go build.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var out []*Package
	for _, lp := range pkgs {
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := newTypesInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", lp.ImportPath, err)
		}
		out = append(out, &Package{
			Fset:      fset,
			Files:     files,
			Pkg:       tpkg,
			TypesInfo: info,
			Path:      lp.ImportPath,
		})
	}
	return out, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-e", "-json=Dir,ImportPath,Name,GoFiles,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(stdout))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}
