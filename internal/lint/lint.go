// Package lint is vcalint's analyzer suite: repo-specific static checks
// that machine-enforce the determinism invariants every byte-identical
// guarantee in this codebase rests on (no wall clock in simulation
// paths, no global or clock-seeded RNGs, no map-iteration order in
// rendered output, no raw NaN or shortest-float formatting on the
// render path, no ad-hoc store-key construction).
//
// The suite is built directly on go/ast and go/types — a deliberately
// small reimplementation of the golang.org/x/tools/go/analysis shape
// (Analyzer, Pass, Reportf), because this module vendors no third-party
// dependencies. Analyzers therefore run through cmd/vcalint rather than
// `go vet -vettool`; the checking semantics are the same.
//
// # Package classes
//
// Most internal packages are *deterministic*: given a seed and inputs
// they must produce byte-identical results on every run, at any
// parallelism, on any machine. A short allowlist faces real networks or
// real hosts and legitimately reads wall clocks: internal/realnet,
// internal/cluster, internal/serve, internal/capture and internal/obs
// (the telemetry layer, where wall time is the subject matter and the
// real clock lives; deterministic packages read it only through an
// injected obs.Clock). Commands and
// examples are drivers, not simulation code. walltime, globalrand and
// floatfmt apply only to deterministic packages; maprange and storekey
// apply everywhere.
//
// # Escape hatch
//
// A finding that is wrong — or an invariant deliberately waived — is
// suppressed with a justified annotation:
//
//	//vcalint:ignore <analyzer> <reason>
//
// on the flagged line, the line above it, or in the doc comment of the
// enclosing declaration (which covers the whole declaration). The
// analyzer name must exist and the reason must be non-empty; a
// malformed or unknown-analyzer annotation is itself reported, so stale
// ignores cannot rot silently. Annotations are greppable by design.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named determinism check.
type Analyzer struct {
	// Name identifies the analyzer in findings and ignore annotations.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the package's import path; analyzers classify packages by
	// its suffix, so testdata packages can impersonate real ones.
	Path string
	// Deterministic marks packages under the byte-identical contract.
	Deterministic bool

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WalltimeAnalyzer,
		GlobalrandAnalyzer,
		MaprangeAnalyzer,
		FloatfmtAnalyzer,
		StorekeyAnalyzer,
	}
}

// byName resolves an analyzer name from the suite.
func byName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// allowlisted names the internal packages exempt from the
// deterministic-package analyzers: they face real networks or real
// machines, where wall clocks and arrival order are the subject matter,
// not a bug.
var allowlisted = []string{
	"internal/realnet",
	"internal/cluster",
	"internal/serve",
	"internal/capture",
	// obs is the telemetry layer: wall time is its subject matter (it
	// measures the host, not the simulation), and it is the single
	// place the real clock lives. Deterministic packages stay clean by
	// reading time only through an injected obs.Clock.
	"internal/obs",
}

// DeterministicPath reports whether the import path names a package
// under the byte-identical output contract: every internal package
// except the real-network allowlist. Commands, examples and the facade
// are drivers and stay outside the contract (maprange and storekey
// still cover them).
func DeterministicPath(path string) bool {
	i := strings.Index(path, "internal/")
	if i < 0 || (i > 0 && path[i-1] != '/') {
		return false
	}
	rest := path[i:]
	for _, a := range allowlisted {
		if rest == a || strings.HasPrefix(rest, a+"/") {
			return false
		}
	}
	return true
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Path      string
}

// Run applies every analyzer in the suite to pkg, validates ignore
// annotations, and returns the surviving findings sorted by position.
func Run(pkg *Package) []Diagnostic {
	return RunAnalyzers(pkg, Analyzers())
}

// RunAnalyzers applies the given analyzers to pkg. Ignore annotations
// are parsed once per package: findings covered by a matching justified
// annotation are dropped, and malformed annotations (unknown analyzer
// name, missing reason) are reported as findings of the pseudo-analyzer
// "ignore" regardless of which analyzers run.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:          pkg.Fset,
			Files:         pkg.Files,
			Pkg:           pkg.Pkg,
			TypesInfo:     pkg.TypesInfo,
			Path:          pkg.Path,
			Deterministic: DeterministicPath(pkg.Path),
			analyzer:      a,
			diags:         &diags,
		}
		a.Run(pass)
	}
	ig := collectIgnores(pkg)
	diags = append(filterIgnored(diags, ig), ig.malformed...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// ignorePrefix introduces an ignore annotation. The directive-style
// spelling (no space after //) matches Go toolchain directives.
const ignorePrefix = "//vcalint:ignore"

// ignoreSpan is one parsed annotation: the analyzer it silences and the
// file line range it covers.
type ignoreSpan struct {
	file     string
	analyzer string
	from, to int // inclusive line range
}

type ignoreSet struct {
	spans     []ignoreSpan
	malformed []Diagnostic
}

func (s *ignoreSet) covers(d Diagnostic) bool {
	for _, sp := range s.spans {
		if sp.file == d.Pos.Filename && sp.analyzer == d.Analyzer &&
			d.Pos.Line >= sp.from && d.Pos.Line <= sp.to {
			return true
		}
	}
	return false
}

func filterIgnored(diags []Diagnostic, ig *ignoreSet) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if !ig.covers(d) {
			out = append(out, d)
		}
	}
	return out
}

// collectIgnores parses every //vcalint:ignore comment in the package.
// A line comment covers its own line and the next line; an annotation
// inside the doc comment of a declaration covers the declaration's full
// span, so one struct-level annotation can justify every field of a
// guarded JSON document type.
func collectIgnores(pkg *Package) *ignoreSet {
	set := &ignoreSet{}
	for _, f := range pkg.Files {
		// Doc-comment coverage: map each commented declaration's span.
		declSpan := map[*ast.CommentGroup][2]int{}
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.GenDecl:
				doc = d.Doc
				for _, spec := range d.Specs {
					if ts, ok := spec.(*ast.TypeSpec); ok && ts.Doc != nil {
						declSpan[ts.Doc] = [2]int{
							pkg.Fset.Position(ts.Pos()).Line,
							pkg.Fset.Position(ts.End()).Line,
						}
					}
				}
			case *ast.FuncDecl:
				doc = d.Doc
			}
			if doc != nil {
				declSpan[doc] = [2]int{
					pkg.Fset.Position(decl.Pos()).Line,
					pkg.Fset.Position(decl.End()).Line,
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // some other directive, e.g. //vcalint:ignorefoo
				}
				name, reason := splitDirective(rest)
				if name == "" {
					set.malformed = append(set.malformed, Diagnostic{
						Pos: pos, Analyzer: "ignore",
						Message: "malformed //vcalint:ignore: want \"//vcalint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				if byName(name) == nil {
					set.malformed = append(set.malformed, Diagnostic{
						Pos: pos, Analyzer: "ignore",
						Message: fmt.Sprintf("//vcalint:ignore names unknown analyzer %q (have %s)", name, analyzerNames()),
					})
					continue
				}
				if reason == "" {
					set.malformed = append(set.malformed, Diagnostic{
						Pos: pos, Analyzer: "ignore",
						Message: fmt.Sprintf("//vcalint:ignore %s has no reason; justify the exemption", name),
					})
					continue
				}
				from, to := pos.Line, pos.Line+1
				if span, ok := declSpan[cg]; ok {
					from, to = span[0], span[1]
					// The annotation line itself stays covered even when
					// the doc comment sits above the declaration.
					if pos.Line < from {
						from = pos.Line
					}
				}
				set.spans = append(set.spans, ignoreSpan{
					file: pos.Filename, analyzer: name, from: from, to: to,
				})
			}
		}
	}
	return set
}

// splitDirective parses " <analyzer> <reason...>" after the prefix.
func splitDirective(rest string) (name, reason string) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", ""
	}
	return fields[0], strings.TrimSpace(strings.Join(fields[1:], " "))
}

func analyzerNames() string {
	names := make([]string, 0, len(Analyzers()))
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}
