package lint_test

import (
	"testing"

	"github.com/vcabench/vcabench/internal/lint"
	"github.com/vcabench/vcabench/internal/lint/linttest"
)

func TestGlobalrandFlagsDeterministicPackages(t *testing.T) {
	linttest.Run(t, lint.GlobalrandAnalyzer, "testdata/globalrand/det",
		linttest.Opts{Path: "example.com/vca/internal/codec"})
}

func TestGlobalrandAllowsRealNetworkPackages(t *testing.T) {
	linttest.Run(t, lint.GlobalrandAnalyzer, "testdata/globalrand/allowed",
		linttest.Opts{Path: "example.com/vca/internal/cluster"})
}
