package lint

import (
	"go/ast"
)

// GlobalrandAnalyzer enforces the RNG invariant: randomness in
// deterministic packages flows only through *rand.Rand values seeded
// from the key-derived fork chain (Testbed/Sim.Fork or an explicit seed
// parameter). The global math/rand stream is shared mutable state —
// its consumption order depends on goroutine scheduling, so any use
// breaks byte-identity at -parallel > 1 — and a source seeded from the
// clock is nondeterministic outright.
var GlobalrandAnalyzer = &Analyzer{
	Name: "globalrand",
	Doc: "forbid global math/rand functions and clock-seeded sources in deterministic " +
		"packages; thread a *rand.Rand seeded from the key-derived fork chain",
	Run: runGlobalrand,
}

// globalRandFuncs are the math/rand (and math/rand/v2) top-level
// functions that consume the shared global stream. rand.New and
// rand.NewSource are the sanctioned constructors and stay legal — the
// seed they receive is checked separately.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int32": true, "Int32N": true, "Int63": true, "Int63n": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint": true, "Uint32": true, "Uint32N": true, "Uint64": true,
	"Uint64N": true, "UintN": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

func runGlobalrand(pass *Pass) {
	if !pass.Deterministic {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !isPkg(pass, sel.X, "math/rand") && !isPkg(pass, sel.X, "math/rand/v2") {
				return true
			}
			name := sel.Sel.Name
			if globalRandFuncs[name] {
				pass.Reportf(sel.Pos(),
					"rand.%s draws from the global math/rand stream, whose order depends on "+
						"goroutine scheduling; thread a fork-seeded *rand.Rand instead", name)
				return true
			}
			if name == "NewSource" || name == "NewPCG" || name == "NewChaCha8" {
				if call := enclosingCall(f, sel); call != nil && clockSeeded(pass, call) {
					pass.Reportf(sel.Pos(),
						"rand.%s seeded from the wall clock; seeds must derive from the "+
							"key-derived fork chain", name)
				}
			}
			return true
		})
	}
}

// enclosingCall returns the CallExpr whose Fun is sel, if any.
func enclosingCall(f *ast.File, sel *ast.SelectorExpr) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(f, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && call.Fun == sel {
			found = call
			return false
		}
		return true
	})
	return found
}

// clockSeeded reports whether any argument of call reaches into package
// time — the rand.NewSource(time.Now().UnixNano()) idiom and friends.
func clockSeeded(pass *Pass, call *ast.CallExpr) bool {
	bad := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok && isPkg(pass, sel.X, "time") {
				bad = true
				return false
			}
			return true
		})
	}
	return bad
}
