package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// StorekeyAnalyzer enforces the key-grammar invariant: the strings that
// name persisted cells, replica units and rendered serve documents are
// a schema. Their reserved fragments — the "v<N>/<mode>/seed<S>/..."
// store-key prefix, the "/rep=K" replica segment, the "servecell/" and
// "servediag/" rendered-document namespaces — may be *built* only by
// the canonical helpers in internal/core (cellKey, replicaKey,
// ServeCellKey, ServeDiagKey). An ad-hoc
// fmt.Sprintf or string concatenation that spells one of these
// fragments elsewhere will drift from the schema on the next version
// bump and silently split or alias the warm cache.
//
// Reading keys is always legal: strings.LastIndex(key, "/rep=") parses,
// it does not build. Only literals used as operands of string
// concatenation or arguments to fmt formatting calls are flagged.
var StorekeyAnalyzer = &Analyzer{
	Name: "storekey",
	Doc:  "reserved store-key fragments may only be assembled by the canonical helpers in internal/core; ad-hoc Sprintf/concatenation drifts from the key schema",
	Run:  runStorekey,
}

// reservedKeyFragments are the substrings that mark a string literal as
// part of the persisted-key grammar.
var reservedKeyFragments = []string{
	"servecell/",
	"servediag/",
	"/rep=",
	"v%d/seed",    // pre-v4 store-key prefix (kept so old spellings stay flagged)
	"v%d/%s/seed", // v4+ store-key prefix with the bare/diag mode segment
}

// canonicalKeyHelpers are the internal/core functions allowed to
// assemble reserved fragments.
var canonicalKeyHelpers = map[string]bool{
	"cellKey":      true,
	"replicaKey":   true,
	"ServeCellKey": true,
	"ServeDiagKey": true,
}

func runStorekey(pass *Pass) {
	inCore := pass.Path == "internal/core" || strings.HasSuffix(pass.Path, "/internal/core")
	for _, f := range pass.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			val, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			frag := reservedFragment(val)
			if frag == "" {
				return true
			}
			if !buildsString(pass, parents, lit) {
				return true
			}
			if inCore {
				if fn := parents.enclosingFunc(lit); fn != nil && canonicalKeyHelpers[fn.Name.Name] {
					return true
				}
			}
			pass.Reportf(lit.Pos(),
				"key fragment %q assembled outside the canonical helpers "+
					"(core cellKey/replicaKey/ServeCellKey); ad-hoc keys drift from the "+
					"schema and break warm-cache byte-identity", frag)
			return true
		})
	}
}

func reservedFragment(s string) string {
	for _, frag := range reservedKeyFragments {
		if strings.Contains(s, frag) {
			return frag
		}
	}
	return ""
}

// buildsString reports whether lit participates in string construction:
// an operand of a + concatenation, or an argument of a fmt call. A
// literal passed to strings.HasPrefix, LastIndex, TrimPrefix and
// friends is parsing, not building, and stays legal.
func buildsString(pass *Pass, parents parentMap, lit *ast.BasicLit) bool {
	switch parent := parents[lit].(type) {
	case *ast.BinaryExpr:
		return parent.Op == token.ADD
	case *ast.CallExpr:
		if sel, ok := parent.Fun.(*ast.SelectorExpr); ok && isPkg(pass, sel.X, "fmt") {
			return true
		}
	}
	return false
}
