// Package allowed impersonates an allowlisted real-network package,
// where jittered retry backoff may draw from the global stream.
package allowed

import "math/rand"

// Jitter randomizes a retry delay; cluster scheduling is not under the
// byte-identical contract.
func Jitter(base float64) float64 {
	return base * (1 + rand.Float64()/10)
}
