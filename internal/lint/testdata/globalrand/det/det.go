// Package det exercises globalrand findings in a deterministic package.
package det

import (
	"math/rand"
	"time"
)

// Global draws from the shared stream.
func Global() int {
	return rand.Intn(10) // want `rand.Intn draws from the global math/rand stream`
}

// Shuffled mutates the shared stream too.
func Shuffled(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle draws from the global math/rand stream`
}

// ClockSeeded derives a seed from the wall clock.
func ClockSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand.NewSource seeded from the wall clock`
}

// Threaded is the sanctioned shape: the seed arrives from the
// key-derived fork chain.
func Threaded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Waived uses the global stream under a justified annotation.
func Waived() float64 {
	//vcalint:ignore globalrand testdata exercises the escape hatch
	return rand.Float64()
}
