// Package flagged exercises maprange findings: order-sensitive work in
// map-iteration order, next to the sanctioned shapes.
package flagged

import (
	"fmt"
	"sort"
	"strings"
)

// Emit renders cells in map order — the fig14 bug class.
func Emit(m map[string]int, b *strings.Builder) {
	for k, v := range m { // want `formats output via fmt.Fprintf`
		fmt.Fprintf(b, "%s=%d\n", k, v)
	}
}

// Build writes through a builder method in map order.
func Build(m map[string]bool, b *strings.Builder) {
	for k := range m { // want `writes output via WriteString`
		b.WriteString(k)
	}
}

// Collect appends in map order and never sorts.
func Collect(m map[string]int) []string {
	var keys []string
	for k := range m { // want `appends to "keys" with no following sort`
		keys = append(keys, k)
	}
	return keys
}

// Sorted is the sanctioned collect-then-sort idiom: same loop body,
// no finding.
func Sorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SortedVia also counts: the collected slice reaches a sort through
// sort.Slice's comparator form.
func SortedVia(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Count does commutative work only: never flagged.
func Count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
