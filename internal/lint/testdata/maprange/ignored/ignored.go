// Package ignored shows a justified waiver: fan-out whose order is
// genuinely outside any deterministic contract.
package ignored

import "fmt"

// Broadcast hands a value to every sink; delivery order is not part of
// the output contract.
func Broadcast(m map[string]int) {
	//vcalint:ignore maprange fan-out order is not part of the output contract
	for k, v := range m {
		fmt.Println(k, v)
	}
}
