// Package allowed impersonates an allowlisted real-network package:
// wall-clock reads are the subject matter there, not a bug.
package allowed

import "time"

// RTT measures a real round trip on the host clock.
func RTT(probe func()) time.Duration {
	start := time.Now()
	probe()
	return time.Since(start)
}
