// Package det exercises walltime findings in a deterministic package.
package det

import "time"

// Clock reads the host clock every way the analyzer forbids.
func Clock() time.Duration {
	start := time.Now()            // want `time.Now reads the wall clock`
	time.Sleep(time.Millisecond)   // want `time.Sleep blocks on the wall clock`
	<-time.After(time.Millisecond) // want `time.After waits on the wall clock`
	return time.Since(start)       // want `time.Since reads the wall clock`
}

// Durations shows that conversions and arithmetic stay legal: they are
// data, not clock reads.
func Durations() time.Duration {
	d, _ := time.ParseDuration("1s")
	return d + 2*time.Second
}

// Waived reads the clock under a justified annotation.
func Waived() time.Time {
	//vcalint:ignore walltime testdata exercises the escape hatch
	return time.Now()
}
