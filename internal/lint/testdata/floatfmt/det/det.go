// Package det exercises floatfmt findings in a deterministic package:
// shortest-representation verbs on floats and unguarded json-tagged
// float fields.
package det

import "fmt"

// Format exercises the verb checks.
func Format(x float64, xs []float64) string {
	s := fmt.Sprintf("%v", x)                 // want `%v formats a float64 by shortest representation`
	s += fmt.Sprintf("%g", x)                 // want `%g formats a float64 by shortest representation`
	s += fmt.Sprint(x)                        // want `fmt.Sprint formats a float64 with implicit %v`
	s += fmt.Sprintf("%v", xs)                // want `%v formats a \[\]float64 by shortest representation`
	s += fmt.Sprintf("%.3g and %08.2f", x, x) // explicit precision: legal
	s += fmt.Sprintf("%v %d", "label", 7)     // %v on non-floats: legal
	return s
}

// Doc is a JSON document with guarded and unguarded fields.
type Doc struct {
	Mean   float64  `json:"mean"` // want `json-tagged float64 field "Mean"`
	StdErr *float64 `json:"stderr,omitempty"`
	Label  string   `json:"label"`
	Skip   float64  `json:"-"`
}

// Guarded waives the field check for the whole struct with a stated
// finiteness argument.
//
//vcalint:ignore floatfmt every field is produced by a constructor that filters NaN
type Guarded struct {
	P50 float64 `json:"p50"`
	P99 float64 `json:"p99"`
}
