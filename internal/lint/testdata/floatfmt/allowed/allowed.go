// Package allowed impersonates driver code (a command), which sits
// outside the deterministic rendering contract.
package allowed

import "fmt"

// Log prints a float for a human; drivers may.
func Log(x float64) string {
	return fmt.Sprintf("%v", x)
}
