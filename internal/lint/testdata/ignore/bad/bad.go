// Package bad exercises the framework's validation of the escape hatch
// itself: unknown analyzer names and missing justifications are
// findings, so stale or typoed ignores cannot rot silently.
package bad

// Unknown names a nonexistent analyzer.
func Unknown() int {
	// want-next `unknown analyzer "spacetime"`
	//vcalint:ignore spacetime not a real analyzer
	return 1
}

// NoReason omits the justification.
func NoReason() int {
	// want-next `has no reason`
	//vcalint:ignore walltime
	return 2
}

// Bare has neither analyzer nor reason.
func Bare() int {
	// want-next `malformed //vcalint:ignore`
	//vcalint:ignore
	return 3
}
