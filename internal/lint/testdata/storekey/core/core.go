// Package core impersonates internal/core: the canonical key helpers
// may assemble reserved fragments, and nothing else may.
package core

import "fmt"

const schema = 3

// cellKey is the canonical store-key helper.
func cellKey(seed int64, unitKey string) string {
	return fmt.Sprintf("v%d/seed%d/%s", schema, seed, unitKey)
}

// replicaKey is the canonical replica-segment helper.
func replicaKey(cellKey string, k int) string {
	return fmt.Sprintf("%s/rep=%d", cellKey, k)
}

// ServeCellKey is the canonical rendered-document helper.
func ServeCellKey(scale string, seed int64, unitKey string) string {
	return fmt.Sprintf("servecell/v%d/%s/%d/%s", schema, scale, seed, unitKey)
}

// adHoc is not a canonical helper, even inside internal/core.
func adHoc(cell string) string {
	return cell + "/rep=" + "0" // want `key fragment "/rep=" assembled outside`
}
