// Package adhoc exercises storekey findings: reserved key fragments
// assembled outside the canonical internal/core helpers.
package adhoc

import (
	"fmt"
	"strings"
)

// Key spells the replica segment by hand.
func Key(cell string, k int) string {
	return fmt.Sprintf("%s/rep=%d", cell, k) // want `key fragment "/rep=" assembled outside`
}

// Rendered concatenates into the servecell namespace by hand.
func Rendered(scale string) string {
	return "servecell/" + scale // want `key fragment "servecell/" assembled outside`
}

// Parse only reads the grammar — always legal.
func Parse(key string) bool {
	return strings.Contains(key, "/rep=") && strings.HasPrefix(key, "servecell/")
}
