package lint_test

import (
	"testing"

	"github.com/vcabench/vcabench/internal/lint"
	"github.com/vcabench/vcabench/internal/lint/linttest"
)

func TestFloatfmtFlagsDeterministicPackages(t *testing.T) {
	linttest.Run(t, lint.FloatfmtAnalyzer, "testdata/floatfmt/det",
		linttest.Opts{Path: "example.com/vca/internal/report"})
}

func TestFloatfmtAllowsDriverPackages(t *testing.T) {
	linttest.Run(t, lint.FloatfmtAnalyzer, "testdata/floatfmt/allowed",
		linttest.Opts{Path: "example.com/vca/cmd/tool"})
}
