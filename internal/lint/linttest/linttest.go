// Package linttest is the analysistest-style harness for vcalint
// analyzers: it type-checks a testdata package, runs one analyzer (plus
// the framework's ignore-annotation validation), and compares the
// findings against `// want "regexp"` expectations written next to the
// code that should be flagged. Every diagnostic must be expected and
// every expectation must fire — extra or missing findings fail the
// test, in either direction.
package linttest

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/vcabench/vcabench/internal/lint"
)

// Opts adjusts how the testdata package is presented to the suite.
type Opts struct {
	// Path is the import path the package claims — the lever that makes
	// a testdata directory impersonate a deterministic package
	// (".../internal/simnet"), an allowlisted one (".../internal/realnet")
	// or internal/core itself. Defaults to "example.com/" + dir base.
	Path string
}

// Run type-checks the Go package in dir and asserts that analyzer's
// findings exactly match the // want expectations in its sources.
func Run(t *testing.T, analyzer *lint.Analyzer, dir string, opts Opts) {
	t.Helper()
	pkg, err := loadDir(dir, opts.Path)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags := lint.RunAnalyzers(pkg, []*lint.Analyzer{analyzer})
	wants, err := collectWants(pkg.Fset, pkg.Files)
	if err != nil {
		t.Fatalf("parsing // want comments in %s: %v", dir, err)
	}
	for _, d := range diags {
		if !wants.match(d) {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants.unmatched() {
		t.Errorf("expected finding did not fire: %s:%d: want %q", w.file, w.line, w.re.String())
	}
}

func loadDir(dir, path string) (*lint.Package, error) {
	if path == "" {
		path = "example.com/" + filepath.Base(dir)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &lint.Package{Fset: fset, Files: files, Pkg: tpkg, TypesInfo: info, Path: path}, nil
}

// want is one expectation: a regexp that must match a finding's message
// on a specific line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

type wantSet struct{ wants []*want }

func (s *wantSet) match(d lint.Diagnostic) bool {
	for _, w := range s.wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func (s *wantSet) unmatched() []*want {
	var out []*want
	for _, w := range s.wants {
		if !w.matched {
			out = append(out, w)
		}
	}
	return out
}

// collectWants parses `// want "re" "re" ...` comments. Each quoted
// string is one expected finding on the comment's line. The
// `// want-next` variant expects the finding on the following line —
// needed when the flagged construct is itself a comment (a malformed
// //vcalint:ignore), which cannot share its line with a want.
func collectWants(fset *token.FileSet, files []*ast.File) (*wantSet, error) {
	set := &wantSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				offset := 0
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					if rest, ok = strings.CutPrefix(c.Text, "// want-next "); !ok {
						continue
					}
					offset = 1
				}
				pos := fset.Position(c.Pos())
				for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: malformed want: %q", pos.Filename, pos.Line, c.Text)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
					}
					set.wants = append(set.wants, &want{file: pos.Filename, line: pos.Line + offset, re: re})
					rest = rest[len(q):]
				}
			}
		}
	}
	return set, nil
}
