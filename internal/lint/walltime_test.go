package lint_test

import (
	"testing"

	"github.com/vcabench/vcabench/internal/lint"
	"github.com/vcabench/vcabench/internal/lint/linttest"
)

func TestWalltimeFlagsDeterministicPackages(t *testing.T) {
	linttest.Run(t, lint.WalltimeAnalyzer, "testdata/walltime/det",
		linttest.Opts{Path: "example.com/vca/internal/simnet"})
}

func TestWalltimeAllowsRealNetworkPackages(t *testing.T) {
	linttest.Run(t, lint.WalltimeAnalyzer, "testdata/walltime/allowed",
		linttest.Opts{Path: "example.com/vca/internal/realnet"})
}
