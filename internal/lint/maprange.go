package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// MaprangeAnalyzer enforces the ordered-output invariant: Go map
// iteration order is deliberately randomized, so a `for range` over a
// map may not feed anything order-sensitive — appending to a slice,
// writing rendered output, or formatting strings — unless the collected
// values are sorted afterwards. This is the fig14 bug class (a paper
// table rendered in map order, byte-different on every run), caught
// once by review in PR 1 and machine-checked since.
//
// The analyzer applies everywhere, not just deterministic packages:
// rendered bytes escape through daemons and CLIs too. Loops whose
// bodies only do commutative work (counting, summing, set inserts,
// deletes) are never flagged, and an append-collect loop is legal when
// a sort call over the collected slice follows in the same function.
var MaprangeAnalyzer = &Analyzer{
	Name: "maprange",
	Doc: "forbid order-sensitive work (slice appends without a following sort, output " +
		"writes, string formatting) inside for-range over a map",
	Run: runMaprange,
}

func runMaprange(pass *Pass) {
	for _, f := range pass.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			appendTargets, sinks := scanRangeBody(pass, rng.Body)
			for _, s := range sinks {
				pass.Reportf(rng.Pos(),
					"map iteration order is nondeterministic, and this loop %s; iterate sorted keys instead",
					s)
			}
			for _, target := range appendTargets {
				if sortedAfter(pass, parents, rng, target) {
					continue
				}
				pass.Reportf(rng.Pos(),
					"map iteration order is nondeterministic, and this loop appends to %q with no "+
						"following sort; sort %q before it is used, or iterate sorted keys",
					target.Name(), target.Name())
			}
			return true
		})
	}
}

// scanRangeBody classifies the loop body's order-sensitive effects:
// identifiers collected via append (legal if sorted later) and
// immediate output/formatting sinks (never legal in map order).
func scanRangeBody(pass *Pass, body *ast.BlockStmt) (appendTargets []*types.Var, sinks []string) {
	seen := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "append" && isBuiltin(pass, fun) && len(call.Args) > 0 {
				if id, ok := call.Args[0].(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && !seen[v] {
						seen[v] = true
						appendTargets = append(appendTargets, v)
					}
					return true
				}
				sinks = append(sinks, "appends to a compound expression")
			}
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			switch {
			case isPkg(pass, fun.X, "fmt"):
				sinks = append(sinks, fmt.Sprintf("formats output via fmt.%s", name))
			case strings.HasPrefix(name, "Write"):
				sinks = append(sinks, fmt.Sprintf("writes output via %s", name))
			}
		}
		return true
	})
	return appendTargets, sinks
}

func isBuiltin(pass *Pass, id *ast.Ident) bool {
	_, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// sortedAfter reports whether, somewhere after the range loop in the
// same function, target is handed to a sort (package sort or slices, or
// any function whose name mentions sorting). That is the sanctioned
// collect-then-sort idiom:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)
func sortedAfter(pass *Pass, parents parentMap, rng *ast.RangeStmt, target *types.Var) bool {
	fn := parents.enclosingFunc(rng)
	if fn == nil || fn.Body == nil {
		return false
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			ok := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, isID := m.(*ast.Ident); isID && pass.TypesInfo.Uses[id] == target {
					ok = true
					return false
				}
				return true
			})
			if ok {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if isPkg(pass, fun.X, "sort") || isPkg(pass, fun.X, "slices") {
			return true
		}
		return strings.Contains(strings.ToLower(fun.Sel.Name), "sort")
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "sort")
	}
	return false
}
