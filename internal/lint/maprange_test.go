package lint_test

import (
	"testing"

	"github.com/vcabench/vcabench/internal/lint"
	"github.com/vcabench/vcabench/internal/lint/linttest"
)

// maprange applies to every package — rendered bytes escape through
// drivers and daemons too — so the positive case runs under a plain
// command-like path.
func TestMaprangeFlagsOrderSensitiveLoops(t *testing.T) {
	linttest.Run(t, lint.MaprangeAnalyzer, "testdata/maprange/flagged",
		linttest.Opts{Path: "example.com/vca/cmd/tool"})
}

func TestMaprangeHonorsJustifiedIgnores(t *testing.T) {
	linttest.Run(t, lint.MaprangeAnalyzer, "testdata/maprange/ignored",
		linttest.Opts{Path: "example.com/vca/internal/realnet"})
}
