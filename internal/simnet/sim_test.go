package simnet

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := NewSim(1)
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if s.Since() != 30*time.Millisecond {
		t.Errorf("clock = %v", s.Since())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := NewSim(1)
	var got []int
	at := s.Now().Add(time.Second)
	for i := 0; i < 10; i++ {
		i := i
		s.At(at, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of order: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	s := NewSim(1)
	fired := false
	e := s.After(time.Second, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestPastPanics(t *testing.T) {
	s := NewSim(1)
	s.After(time.Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("expected panic scheduling into the past")
		}
	}()
	s.At(Epoch, func() {})
}

func TestRunUntil(t *testing.T) {
	s := NewSim(1)
	count := 0
	s.Every(100*time.Millisecond, func() { count++ })
	s.RunUntil(Epoch.Add(time.Second))
	if count != 10 {
		t.Errorf("ticks = %d, want 10", count)
	}
	if s.Now() != Epoch.Add(time.Second) {
		t.Errorf("clock = %v", s.Now())
	}
	if s.Pending() == 0 {
		t.Error("recurring event should still be pending")
	}
}

func TestEveryCancel(t *testing.T) {
	s := NewSim(1)
	count := 0
	var ctl *Event
	ctl = s.Every(10*time.Millisecond, func() {
		count++
		if count == 5 {
			ctl.Cancel()
		}
	})
	s.RunFor(time.Second)
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
}

func TestEveryBadPeriodPanics(t *testing.T) {
	s := NewSim(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.Every(0, func() {})
}

func TestNegativeAfterClamped(t *testing.T) {
	s := NewSim(1)
	fired := false
	s.After(-time.Second, func() { fired = true })
	s.Run()
	if !fired {
		t.Error("negative After never fired")
	}
	if !s.Now().Equal(Epoch) {
		t.Errorf("clock moved to %v", s.Now())
	}
}

func TestForkDeterminism(t *testing.T) {
	a := NewSim(42).Fork("x")
	b := NewSim(42).Fork("x")
	c := NewSim(42).Fork("y")
	same, diff := true, false
	for i := 0; i < 32; i++ {
		va, vb, vc := a.Int63(), b.Int63(), c.Int63()
		if va != vb {
			same = false
		}
		if va != vc {
			diff = true
		}
	}
	if !same {
		t.Error("same-name forks disagree")
	}
	if !diff {
		t.Error("different-name forks identical")
	}
}

// Property: however events are scheduled, they execute in nondecreasing
// time order and the clock never goes backwards.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewSim(3)
		var times []time.Time
		for _, d := range delays {
			s.After(time.Duration(d)*time.Millisecond, func() {
				times = append(times, s.Now())
			})
		}
		s.Run()
		for i := 1; i < len(times); i++ {
			if times[i].Before(times[i-1]) {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStepsCount(t *testing.T) {
	s := NewSim(1)
	for i := 0; i < 5; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	s.Run()
	if s.Steps() != 5 {
		t.Errorf("Steps = %d", s.Steps())
	}
}
