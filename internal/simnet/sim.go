// Package simnet is a deterministic, discrete-event, packet-level network
// simulator. It provides the substrate the paper obtained from Azure: a set
// of geographically placed nodes with access links (bandwidth, queueing,
// loss, optional token-bucket traffic shaping, as with tc/ifb) joined by an
// over-provisioned core whose latency follows the geo.PathModel.
//
// Everything is driven by a virtual clock; runs are reproducible
// byte-for-byte for a given seed. All application-visible time stamps come
// from Sim.Now, which plays the role of the stratum-1-synchronized clocks
// that major clouds provide (paper §3.1): every node shares one perfectly
// synchronized clock, so sender/receiver packet-timestamp correlation is
// exact, as the paper's methodology assumes.
package simnet

import (
	"container/heap"
	"hash/fnv"
	"math/rand"
	"time"
)

// Epoch is the instant at which every simulation starts. The specific date
// matches the paper's measurement campaign (April 2021).
var Epoch = time.Date(2021, time.April, 1, 0, 0, 0, 0, time.UTC)

// Event is a scheduled callback. Cancel prevents a pending event from
// firing; cancelling an already-fired event is a no-op.
//
// Events handed out by At/After live in per-Sim append-only slabs: they
// are batch-allocated but never reused, so a stale handle can never
// observe (or cancel) an unrelated later event. Internal payload events
// (pcall) are recycled through a free-list instead — those are never
// exposed, so no stale handle to them can exist.
type Event struct {
	at  time.Time
	seq uint64
	fn  func()
	// Payload-call form: pcall(parg) with a package-level function and a
	// pointer argument, so internal per-packet scheduling costs no
	// closure allocation. Exactly one of fn/pcall is set.
	pcall     func(any)
	parg      any
	sim       *Sim
	cancelled bool
	recycle   bool // internal payload event: freed back to sim after firing
	index     int  // heap index, -1 when popped
}

// Cancel prevents the event from firing. Cancelling keeps the entry in
// the queue (it is discarded lazily when reached) but removes it from
// the live-event count immediately, so Pending and the step probe never
// overcount cancelled work.
func (e *Event) Cancel() {
	if e.cancelled {
		return
	}
	e.cancelled = true
	if e.index >= 0 && e.sim != nil {
		e.sim.live--
	}
}

// When returns the virtual time the event is scheduled for. For a ticker
// handle from Every this is the next scheduled tick; after the handle is
// cancelled (or, for one-shot events, after firing) it reports the last
// scheduled time.
func (e *Event) When() time.Time { return e.at }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// eventChunkSize is the slab granularity: one allocation serves this many
// scheduled events. Chunks are abandoned to the GC as their events die
// (events die roughly in time order, so chunks drain front to back).
const eventChunkSize = 256

// Sim is the discrete-event engine: a virtual clock plus an event queue.
type Sim struct {
	now    time.Time
	queue  eventQueue
	seq    uint64
	seed   int64
	rng    *rand.Rand
	nsteps uint64
	// live counts scheduled events that have neither fired nor been
	// cancelled — the queue depth the step probe and Pending report.
	// (queue.Len() would overcount: cancelled events are discarded
	// lazily when they reach the front.)
	live int
	// chunk is the current event slab (see eventChunkSize); free is the
	// free-list of recycled internal payload events.
	chunk []Event
	free  []*Event
	// stepProbe, when set, observes every executed event: the virtual
	// instant it ran at and the number of live events still pending after
	// it was popped. Nil (the default) costs one branch per step.
	stepProbe func(at time.Time, depth int)
}

// SetStepProbe installs (or removes, with nil) the event-queue observer
// — the flight-recorder seam. The probe fires in sim time, inside the
// deterministic event loop, so recording it cannot perturb the run.
func (s *Sim) SetStepProbe(p func(at time.Time, depth int)) { s.stepProbe = p }

// NewSim creates a simulator with its clock at Epoch. All randomness in
// the simulation derives from seed.
func NewSim(seed int64) *Sim {
	return &Sim{
		now:  Epoch,
		seed: seed,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Time { return s.now }

// Since returns the virtual time elapsed since Epoch.
func (s *Sim) Since() time.Duration { return s.now.Sub(Epoch) }

// RNG returns the root random source. Prefer Fork for independent streams.
func (s *Sim) RNG() *rand.Rand { return s.rng }

// Fork returns an independent deterministic random stream derived from the
// simulation seed and the given name. Two forks with different names are
// statistically independent; the same name always yields the same stream.
func (s *Sim) Fork(name string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	return rand.New(rand.NewSource(s.seed ^ int64(h.Sum64())))
}

// alloc returns a zeroed Event from the current slab chunk.
func (s *Sim) alloc() *Event {
	if len(s.chunk) == cap(s.chunk) {
		s.chunk = make([]Event, 0, eventChunkSize)
	}
	s.chunk = append(s.chunk, Event{sim: s})
	return &s.chunk[len(s.chunk)-1]
}

// schedule assigns the next sequence number and queues e at t. Scheduling
// in the past is a programming error and panics.
func (s *Sim) schedule(e *Event, t time.Time) {
	if t.Before(s.now) {
		panic("simnet: scheduling event in the past")
	}
	s.seq++
	e.at = t
	e.seq = s.seq
	heap.Push(&s.queue, e)
	s.live++
}

// At schedules fn at absolute virtual time t. Scheduling in the past is a
// programming error and panics.
func (s *Sim) At(t time.Time, fn func()) *Event {
	e := s.alloc()
	e.fn = fn
	s.schedule(e, t)
	return e
}

// AtCall schedules fn(arg) at absolute virtual time t. It is the
// zero-allocation scheduling form for per-packet work: with fn a
// package-level function and arg a pointer, neither the call nor the
// event costs a heap allocation (the event is recycled after firing).
// No handle is returned — AtCall work cannot be cancelled, which is
// exactly what makes recycling the event safe.
func (s *Sim) AtCall(t time.Time, fn func(any), arg any) {
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		e = s.alloc()
		e.recycle = true
	}
	e.pcall = fn
	e.parg = arg
	s.schedule(e, t)
}

// After schedules fn after virtual duration d (d < 0 is treated as 0).
func (s *Sim) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Every schedules fn every period, starting after the first period, until
// the returned Event is cancelled. fn observes the tick time via Now.
//
// The handle is the scheduled event itself, rescheduled by its own tick:
// When() reports the next pending tick, and Cancel removes the ticker
// from the live queue immediately (a cancelled ticker consumes no
// further steps).
func (s *Sim) Every(period time.Duration, fn func()) *Event {
	if period <= 0 {
		panic("simnet: Every with non-positive period")
	}
	// Long-lived and caller-held, so allocated alone rather than pinning
	// a slab chunk for the ticker's whole lifetime.
	ctl := &Event{sim: s, index: -1}
	ctl.fn = func() {
		fn()
		if !ctl.cancelled {
			s.schedule(ctl, s.now.Add(period))
		}
	}
	s.schedule(ctl, s.now.Add(period))
	return ctl
}

// Step executes the single earliest pending event. It reports whether an
// event was executed.
func (s *Sim) Step() bool {
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancelled {
			continue
		}
		s.now = e.at
		s.nsteps++
		s.live--
		if s.stepProbe != nil {
			s.stepProbe(e.at, s.live)
		}
		if e.pcall != nil {
			fn, arg := e.pcall, e.parg
			if e.recycle {
				// Release before the call: the event is off the queue, so
				// the call may immediately reuse it for its own scheduling.
				e.pcall, e.parg = nil, nil
				s.free = append(s.free, e)
			}
			fn(arg)
		} else {
			e.fn()
		}
		return true
	}
	return false
}

// Run drains the event queue completely.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events up to and including time t, then advances the
// clock to exactly t. Events scheduled after t remain pending.
func (s *Sim) RunUntil(t time.Time) {
	for s.queue.Len() > 0 {
		// Peek.
		next := s.queue[0]
		if next.cancelled {
			heap.Pop(&s.queue)
			continue
		}
		if next.at.After(t) {
			break
		}
		s.Step()
	}
	if s.now.Before(t) {
		s.now = t
	}
}

// RunFor executes events for virtual duration d from the current time.
func (s *Sim) RunFor(d time.Duration) { s.RunUntil(s.now.Add(d)) }

// Steps returns the number of events executed so far (for diagnostics and
// benchmarks).
func (s *Sim) Steps() uint64 { return s.nsteps }

// Pending returns the number of live events still queued. Cancelled
// events awaiting lazy discard are not counted.
func (s *Sim) Pending() int { return s.live }
