// Package simnet is a deterministic, discrete-event, packet-level network
// simulator. It provides the substrate the paper obtained from Azure: a set
// of geographically placed nodes with access links (bandwidth, queueing,
// loss, optional token-bucket traffic shaping, as with tc/ifb) joined by an
// over-provisioned core whose latency follows the geo.PathModel.
//
// Everything is driven by a virtual clock; runs are reproducible
// byte-for-byte for a given seed. All application-visible time stamps come
// from Sim.Now, which plays the role of the stratum-1-synchronized clocks
// that major clouds provide (paper §3.1): every node shares one perfectly
// synchronized clock, so sender/receiver packet-timestamp correlation is
// exact, as the paper's methodology assumes.
package simnet

import (
	"container/heap"
	"hash/fnv"
	"math/rand"
	"time"
)

// Epoch is the instant at which every simulation starts. The specific date
// matches the paper's measurement campaign (April 2021).
var Epoch = time.Date(2021, time.April, 1, 0, 0, 0, 0, time.UTC)

// Event is a scheduled callback. Cancel prevents a pending event from
// firing; cancelling an already-fired event is a no-op.
type Event struct {
	at        time.Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 when popped
}

// Cancel prevents the event from firing.
func (e *Event) Cancel() { e.cancelled = true }

// When returns the virtual time the event is scheduled for.
func (e *Event) When() time.Time { return e.at }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Sim is the discrete-event engine: a virtual clock plus an event queue.
type Sim struct {
	now    time.Time
	queue  eventQueue
	seq    uint64
	seed   int64
	rng    *rand.Rand
	nsteps uint64
	// stepProbe, when set, observes every executed event: the virtual
	// instant it ran at and the number of events still pending after it
	// was popped. Nil (the default) costs one branch per step.
	stepProbe func(at time.Time, depth int)
}

// SetStepProbe installs (or removes, with nil) the event-queue observer
// — the flight-recorder seam. The probe fires in sim time, inside the
// deterministic event loop, so recording it cannot perturb the run.
func (s *Sim) SetStepProbe(p func(at time.Time, depth int)) { s.stepProbe = p }

// NewSim creates a simulator with its clock at Epoch. All randomness in
// the simulation derives from seed.
func NewSim(seed int64) *Sim {
	return &Sim{
		now:  Epoch,
		seed: seed,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Time { return s.now }

// Since returns the virtual time elapsed since Epoch.
func (s *Sim) Since() time.Duration { return s.now.Sub(Epoch) }

// RNG returns the root random source. Prefer Fork for independent streams.
func (s *Sim) RNG() *rand.Rand { return s.rng }

// Fork returns an independent deterministic random stream derived from the
// simulation seed and the given name. Two forks with different names are
// statistically independent; the same name always yields the same stream.
func (s *Sim) Fork(name string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	return rand.New(rand.NewSource(s.seed ^ int64(h.Sum64())))
}

// At schedules fn at absolute virtual time t. Scheduling in the past is a
// programming error and panics.
func (s *Sim) At(t time.Time, fn func()) *Event {
	if t.Before(s.now) {
		panic("simnet: scheduling event in the past")
	}
	s.seq++
	e := &Event{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn after virtual duration d (d < 0 is treated as 0).
func (s *Sim) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Every schedules fn every period, starting after the first period, until
// the returned Event is cancelled. fn observes the tick time via Now.
func (s *Sim) Every(period time.Duration, fn func()) *Event {
	if period <= 0 {
		panic("simnet: Every with non-positive period")
	}
	// The controlling event handle; rescheduling preserves cancellation.
	ctl := &Event{}
	var tick func()
	tick = func() {
		if ctl.cancelled {
			return
		}
		fn()
		if !ctl.cancelled {
			s.After(period, tick)
		}
	}
	s.After(period, tick)
	return ctl
}

// Step executes the single earliest pending event. It reports whether an
// event was executed.
func (s *Sim) Step() bool {
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancelled {
			continue
		}
		s.now = e.at
		s.nsteps++
		if s.stepProbe != nil {
			s.stepProbe(e.at, s.queue.Len())
		}
		e.fn()
		return true
	}
	return false
}

// Run drains the event queue completely.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events up to and including time t, then advances the
// clock to exactly t. Events scheduled after t remain pending.
func (s *Sim) RunUntil(t time.Time) {
	for s.queue.Len() > 0 {
		// Peek.
		next := s.queue[0]
		if next.cancelled {
			heap.Pop(&s.queue)
			continue
		}
		if next.at.After(t) {
			break
		}
		s.Step()
	}
	if s.now.Before(t) {
		s.now = t
	}
}

// RunFor executes events for virtual duration d from the current time.
func (s *Sim) RunFor(d time.Duration) { s.RunUntil(s.now.Add(d)) }

// Steps returns the number of events executed so far (for diagnostics and
// benchmarks).
func (s *Sim) Steps() uint64 { return s.nsteps }

// Pending returns the number of events still queued (including cancelled
// events not yet discarded).
func (s *Sim) Pending() int { return s.queue.Len() }
