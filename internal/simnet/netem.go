package simnet

import (
	"fmt"
	"math"
	"math/bits"
	"strconv"
	"time"

	"github.com/vcabench/vcabench/internal/geo"
)

// Addr identifies a datagram endpoint: a node plus a port.
type Addr struct {
	Node string
	Port int
}

// String formats the address as "node:port". Built by concatenation, not
// fmt, because capture taps stringify addresses on the per-packet path.
func (a Addr) String() string { return a.Node + ":" + strconv.Itoa(a.Port) }

// Packet is a simulated UDP datagram. Size is the L7 payload length in
// bytes (the quantity the paper computes data rates from); the simulator
// adds WireOverhead per packet when modelling link occupancy. Payload
// carries an opaque application object (e.g. an RTP packet descriptor) —
// media content is represented by metadata, not by materialized bytes, so
// multi-minute sessions stay cheap to simulate.
type Packet struct {
	From    Addr
	To      Addr
	Size    int
	Payload any
	SentAt  time.Time
	// Hop bookkeeping (set by the simulator).
	ArrivedAt time.Time

	// Simulator-internal routing state. Keeping it on the packet lets
	// every hop be scheduled through package-level payload calls instead
	// of per-packet closures.
	src    *Node         // sender, for deferred SendAt
	dst    *Node         // resolved destination node
	pipe   *pipe         // pipe currently serializing the packet
	then   func(*Packet) // continuation after the current pipe stage
	pooled bool          // came from a Network free-list
}

// WireOverhead is the per-packet IPv4+UDP header cost used for link
// occupancy and shaping (20 + 8 bytes).
const WireOverhead = 28

// wireSize returns the bytes a packet occupies on the wire.
func (p *Packet) wireSize() int { return p.Size + WireOverhead }

// Handler consumes packets delivered to a bound port.
type Handler func(pkt *Packet)

// Direction tags tap callbacks.
type Direction int

const (
	DirOut Direction = iota // packet leaving the node (after app send)
	DirIn                   // packet delivered to the node
)

func (d Direction) String() string {
	if d == DirOut {
		return "out"
	}
	return "in"
}

// Tap observes packets at a node, like tcpdump on the VM.
type Tap func(dir Direction, pkt *Packet, at time.Time)

// NodeConfig configures a node's placement and access link.
type NodeConfig struct {
	Name   string
	Region geo.Region
	// Access-link bandwidth per direction in bits/s; 0 means unlimited
	// (the multi-Gbps cloud VM case).
	UplinkBps   int64
	DownlinkBps int64
	// QueueBytes bounds each direction's access queue (tail drop).
	// 0 selects DefaultQueueBytes.
	QueueBytes int
	// LossProb is an independent per-packet drop probability applied on
	// the downlink (residual random loss).
	LossProb float64
}

// DefaultQueueBytes is the access-queue depth when not configured
// (roughly 100 ms at 20 Mbps).
const DefaultQueueBytes = 256 * 1024

// PipeStats counts what happened at one access-link direction.
type PipeStats struct {
	Packets     int64
	Bytes       int64 // L7 bytes
	DropsQueue  int64
	DropsRandom int64
}

// DropCause classifies why a pipe discarded a packet.
type DropCause int

const (
	// DropQueue is a tail drop: the access queue's byte bound was full.
	DropQueue DropCause = iota
	// DropRandom is independent random loss (the netem loss discipline).
	DropRandom
)

// PipeProbe observes per-packet pipe decisions — the flight-recorder
// seam (see internal/diag). Every callback fires synchronously inside
// the deterministic event loop with sim-time instants, so an installed
// probe cannot perturb a run; a nil probe costs one branch per packet.
type PipeProbe interface {
	// PipeForwarded reports a packet accepted by the pipe: its L7 and
	// wire sizes, the queue occupancy in wire bytes after enqueue (0 on
	// the unconstrained fast path), and the queuing+serialization delay
	// until the queue releases it (0 when forwarded immediately).
	PipeForwarded(pipe string, at time.Time, l7, wire, queuedBytes int, wait time.Duration)
	// PipeDropped reports a packet the pipe discarded and why.
	PipeDropped(pipe string, at time.Time, wire int, cause DropCause)
}

// txTabSize bounds the per-pipe serialization table: every wire size a
// client can produce (MTU-fragmented RTP plus WireOverhead) is far below
// it, so the rate stage never divides on the hot path.
const txTabSize = 2048

// pipe is one direction of a node's access link: optional random loss,
// optional token-bucket shaper, FIFO with a byte-bounded queue, a
// serialization rate, and an optional fixed extra delay applied after
// the rate stage (netem-style delay).
type pipe struct {
	sim        *Sim
	net        *Network // for releasing pooled packets on drops; nil in unit tests
	name       string   // "<node>/up" or "<node>/down", for probes
	rateBps    int64
	queueLimit int
	shaper     *TokenBucket
	lossProb   float64
	extraDelay time.Duration
	rng        *randSource
	queuedB    int
	nextFree   time.Time
	txTab      []time.Duration // txTab[w] = txDuration(w, rateBps); nil when unconstrained
	stats      PipeStats
	probe      PipeProbe
}

// randSource is the minimal random interface pipes need (test seam).
type randSource struct {
	f64 func() float64
}

// tx returns the serialization time for a wire size, from the
// precomputed table when possible.
func (p *pipe) tx(wire int) time.Duration {
	if wire >= 0 && wire < len(p.txTab) {
		return p.txTab[wire]
	}
	return txDuration(wire, p.rateBps)
}

// release returns a pooled packet the pipe dropped.
func (p *pipe) release(pkt *Packet) {
	if p.net != nil {
		p.net.release(pkt)
	}
}

func (p *pipe) deliverAfter(pkt *Packet, then func(*Packet)) {
	now := p.sim.Now()
	wire := pkt.wireSize()
	if p.lossProb > 0 && p.rng.f64() < p.lossProb {
		p.stats.DropsRandom++
		if p.probe != nil {
			p.probe.PipeDropped(p.name, now, wire, DropRandom)
		}
		p.release(pkt)
		return
	}
	// Unconstrained pipe: forward immediately.
	if p.rateBps <= 0 && p.shaper == nil && p.extraDelay <= 0 {
		p.stats.Packets++
		p.stats.Bytes += int64(pkt.Size)
		if p.probe != nil {
			p.probe.PipeForwarded(p.name, now, pkt.Size, wire, 0, 0)
		}
		then(pkt)
		return
	}
	limit := p.queueLimit
	if limit <= 0 {
		limit = DefaultQueueBytes
	}
	if p.queuedB+wire > limit {
		p.stats.DropsQueue++
		if p.probe != nil {
			p.probe.PipeDropped(p.name, now, wire, DropQueue)
		}
		p.release(pkt)
		return
	}
	departAt := now
	if p.nextFree.After(departAt) {
		departAt = p.nextFree
	}
	if p.shaper != nil {
		departAt = p.shaper.Admit(departAt, wire)
	}
	if p.rateBps > 0 {
		departAt = departAt.Add(p.tx(wire))
	}
	// The delay stage holds the packet after the rate stage without
	// occupying the serializer or the queue: a constant delay shifts
	// deliveries, it must not reduce throughput — so queue bytes are
	// released when serialization ends, not when the held packet is
	// finally delivered. Lowering the delay mid-run can reorder
	// in-flight packets across the change, as real netem does.
	p.nextFree = departAt
	p.queuedB += wire
	p.stats.Packets++
	p.stats.Bytes += int64(pkt.Size)
	if p.probe != nil {
		p.probe.PipeForwarded(p.name, now, pkt.Size, wire, p.queuedB, departAt.Sub(now))
	}
	if extra := p.extraDelay; extra > 0 {
		p.sim.At(departAt, func() { p.queuedB -= wire })
		p.sim.At(departAt.Add(extra), func() { then(pkt) })
		return
	}
	pkt.pipe = p
	pkt.then = then
	p.sim.AtCall(departAt, pipeDequeue, pkt)
}

// pipeDequeue releases the packet's queue bytes at serialization end and
// runs its continuation — the payload-call form of the old per-packet
// closure.
func pipeDequeue(arg any) {
	pkt := arg.(*Packet)
	p := pkt.pipe
	pkt.pipe = nil
	p.queuedB -= pkt.wireSize()
	then := pkt.then
	pkt.then = nil
	then(pkt)
}

// txDuration returns the serialization time of nbytes at bps in exact
// integer nanoseconds, rounded up so a draining queue can never beat the
// configured rate. (The former float64 form rounded the intermediate and
// truncated toward zero, letting long queues drain marginally faster
// than rateBps.) The 128-bit intermediate guards nbytes*8e9 against
// overflow; unrepresentable results saturate at the maximum Duration.
func txDuration(nbytes int, bps int64) time.Duration {
	if nbytes <= 0 || bps <= 0 {
		return 0
	}
	hi, lo := bits.Mul64(uint64(nbytes), 8*uint64(time.Second))
	if hi >= uint64(bps) {
		return time.Duration(math.MaxInt64)
	}
	q, r := bits.Div64(hi, lo, uint64(bps))
	if r > 0 {
		q++
	}
	if q > uint64(math.MaxInt64) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(q)
}

// TokenBucket is a tc-tbf style policer: tokens (bytes) refill at Rate up
// to Burst; a packet departs as soon as the bucket holds its size.
type TokenBucket struct {
	RateBps int64
	Burst   int // bytes
	tokens  float64
	last    time.Time
	primed  bool
}

// NewTokenBucket creates a bucket that starts full.
func NewTokenBucket(rateBps int64, burst int) *TokenBucket {
	if burst <= 0 {
		burst = 16 * 1024
	}
	return &TokenBucket{RateBps: rateBps, Burst: burst}
}

// Admit returns the earliest time at or after now at which a packet of the
// given byte size may depart, and debits the bucket accordingly.
//
// The arithmetic is deliberately untouched by the serialization-table
// work: admission times depend on continuous bucket state, so there is
// nothing to precompute without changing the float rounding — and the
// byte-identity invariant pins the rounding.
func (tb *TokenBucket) Admit(now time.Time, bytes int) time.Time {
	if tb.RateBps <= 0 {
		return now
	}
	if !tb.primed {
		tb.tokens = float64(tb.Burst)
		tb.last = now
		tb.primed = true
	}
	// Refill.
	if now.After(tb.last) {
		tb.tokens += now.Sub(tb.last).Seconds() * float64(tb.RateBps) / 8
		if tb.tokens > float64(tb.Burst) {
			tb.tokens = float64(tb.Burst)
		}
		tb.last = now
	}
	need := float64(bytes)
	if tb.tokens >= need {
		tb.tokens -= need
		return now
	}
	// The deficit accrues from tb.last, not from now: after a deficit
	// admission tb.last sits in the future, and basing the wait on an
	// earlier now would move tb.last backwards and double-grant the
	// tokens of the overlap — admitted throughput could then exceed
	// rate + burst, and admission times could run backwards.
	base := now
	if tb.last.After(base) {
		base = tb.last
	}
	wait := (need - tb.tokens) / (float64(tb.RateBps) / 8)
	at := base.Add(time.Duration(wait * float64(time.Second)))
	tb.tokens = 0
	tb.last = at
	return at
}

// Node is a host attached to the network.
type Node struct {
	net      *Network
	cfg      NodeConfig
	up, down *pipe
	handlers map[int]Handler
	taps     []Tap
	sent     PipeStats // convenience aggregate (app-level)
	// Prebound pipe continuations, built once at AddNode so the
	// per-packet path never allocates a closure.
	upThen   func(*Packet) // after uplink: cross the core
	downThen func(*Packet) // after downlink: deliver to taps + handler
}

// Name returns the node's name.
func (n *Node) Name() string { return n.cfg.Name }

// Region returns the node's placement.
func (n *Node) Region() geo.Region { return n.cfg.Region }

// Bind registers a handler for a local port. Binding a bound port replaces
// the previous handler (sockets are owned by one client process at a time).
func (n *Node) Bind(port int, h Handler) { n.handlers[port] = h }

// Unbind removes the handler for port.
func (n *Node) Unbind(port int) { delete(n.handlers, port) }

// Tap adds a packet observer (tcpdump-style). Taps see outgoing packets at
// send time and incoming packets at delivery time.
func (n *Node) Tap(t Tap) { n.taps = append(n.taps, t) }

// SetDownlinkShaper installs (or removes, with nil) a token-bucket shaper
// on the node's ingress, mirroring the paper's tc/ifb setup for Fig 17/18.
func (n *Node) SetDownlinkShaper(tb *TokenBucket) { n.down.shaper = tb }

// SetUplinkShaper installs (or removes, with nil) an egress shaper.
func (n *Node) SetUplinkShaper(tb *TokenBucket) { n.up.shaper = tb }

// SetDownlinkLoss sets the node's ingress random-loss probability,
// mirroring a netem loss discipline on the last mile. It replaces any
// probability configured at AddNode time; 0 disables random loss.
func (n *Node) SetDownlinkLoss(p float64) { n.down.lossProb = p }

// SetDownlinkExtraDelay holds every downlink delivery for an extra
// fixed duration after the rate stage (netem-style delay); 0 disables.
func (n *Node) SetDownlinkExtraDelay(d time.Duration) { n.down.extraDelay = d }

// LinkState is one complete, atomically-applied downlink configuration
// — the reconfigurable subset of NodeConfig that trace-driven
// impairment schedules sweep over simulated time. Fields are absolute
// state, not deltas: applying a LinkState fully determines the
// downlink's shaping, loss and delay from that instant on.
type LinkState struct {
	// CapBps is a token-bucket shaping rate in bits/s; 0 removes the
	// shaper (unshaped). A fresh bucket is installed on every apply, so
	// reapplying the same rate restarts the burst allowance.
	CapBps int64
	// Burst is the bucket depth in bytes; <= 0 selects the
	// NewTokenBucket default.
	Burst int
	// LossProb is the independent per-packet drop probability.
	LossProb float64
	// ExtraDelay is a fixed per-packet delivery delay after the rate
	// stage.
	ExtraDelay time.Duration
}

// SetDownlinkState applies st to the node's ingress in one call — the
// reconfiguration primitive behind trace-driven impairment schedules
// (see internal/trace).
func (n *Node) SetDownlinkState(st LinkState) {
	if st.CapBps > 0 {
		n.down.shaper = NewTokenBucket(st.CapBps, st.Burst)
	} else {
		n.down.shaper = nil
	}
	n.down.lossProb = st.LossProb
	n.down.extraDelay = st.ExtraDelay
}

// DownlinkAt schedules SetDownlinkState(st) at absolute virtual time t
// — the scheduled-reconfiguration hook trace players drive. Cancel the
// returned event to drop a pending reconfiguration.
func (n *Node) DownlinkAt(t time.Time, st LinkState) *Event {
	return n.net.sim.At(t, func() { n.SetDownlinkState(st) })
}

// UplinkStats and DownlinkStats expose access-link counters.
func (n *Node) UplinkStats() PipeStats   { return n.up.stats }
func (n *Node) DownlinkStats() PipeStats { return n.down.stats }

// Send transmits a datagram from this node. The From address's node field
// is forced to this node; the port is the caller's source port.
func (n *Node) Send(pkt *Packet) error {
	pkt.From.Node = n.cfg.Name
	dst, ok := n.net.nodes[pkt.To.Node]
	if !ok {
		return fmt.Errorf("simnet: send to unknown node %q", pkt.To.Node)
	}
	pkt.dst = dst
	pkt.SentAt = n.net.sim.Now()
	for _, t := range n.taps {
		t(DirOut, pkt, pkt.SentAt)
	}
	n.up.deliverAfter(pkt, n.upThen)
	return nil
}

// SendAt schedules Send(pkt) at virtual time t, without allocating a
// closure or an event: the deferred-forward form platform relays use on
// their per-packet fan-out path. Undeliverable pooled packets are
// recycled.
func (n *Node) SendAt(t time.Time, pkt *Packet) {
	pkt.src = n
	n.net.sim.AtCall(t, sendDeferred, pkt)
}

// sendDeferred is the payload call behind SendAt.
func sendDeferred(arg any) {
	pkt := arg.(*Packet)
	src := pkt.src
	pkt.src = nil
	if src.Send(pkt) != nil {
		src.net.release(pkt)
	}
}

// Network couples a Sim with a set of nodes and a latency model.
type Network struct {
	sim       *Sim
	path      geo.PathModel
	jitterStd time.Duration
	distLoss  float64
	nodes     map[string]*Node
	lastArr   map[[2]string]time.Time
	jrng      *randSourceN
	lrng      *randSource
	distDrops int64
	pipeProbe PipeProbe
	// freePkts is the packet free-list behind NewPacket. Per-network —
	// and so per-testbed, per-goroutine — which keeps reuse deterministic
	// and race-free without locks (forked testbeds build their own
	// Network and never share one).
	freePkts []*Packet
}

type randSourceN struct {
	norm func() float64
}

// NetworkConfig tunes the core latency model.
type NetworkConfig struct {
	// Path converts geography into propagation delay. Zero value selects
	// geo.DefaultPathModel.
	Path geo.PathModel
	// JitterStd is the standard deviation of one-way core jitter
	// (half-normal, always >= 0). Zero selects 300µs.
	JitterStd time.Duration
	// DistLossPer100ms is the per-packet loss probability accrued per
	// 100 ms of one-way propagation: long-haul paths are not pristine,
	// and this is what makes a trans-Atlantic relay detour cost quality,
	// not just latency. Zero disables distance loss.
	DistLossPer100ms float64
}

// NewNetwork creates an empty network on sim.
func NewNetwork(sim *Sim, cfg NetworkConfig) *Network {
	if cfg.Path.FiberKmPerMs == 0 {
		cfg.Path = geo.DefaultPathModel
	}
	if cfg.JitterStd == 0 {
		cfg.JitterStd = 300 * time.Microsecond
	}
	jr := sim.Fork("simnet.core-jitter")
	lr := sim.Fork("simnet.dist-loss")
	return &Network{
		sim:       sim,
		path:      cfg.Path,
		jitterStd: cfg.JitterStd,
		distLoss:  cfg.DistLossPer100ms,
		nodes:     make(map[string]*Node),
		lastArr:   make(map[[2]string]time.Time),
		jrng:      &randSourceN{norm: jr.NormFloat64},
		lrng:      &randSource{f64: lr.Float64},
	}
}

// NewPacket returns a zeroed packet from the network's free-list. Pooled
// packets are recycled by the simulator once fully delivered (after the
// destination handler returns) or dropped, so senders must treat them as
// consumed by Send/SendAt, and handlers must not retain them past the
// delivery callback. Application code that keeps packet descriptors
// should allocate Packet literals instead — the simulator never recycles
// packets it did not pool.
func (n *Network) NewPacket() *Packet {
	if k := len(n.freePkts); k > 0 {
		p := n.freePkts[k-1]
		n.freePkts = n.freePkts[:k-1]
		p.pooled = true
		return p
	}
	return &Packet{pooled: true}
}

// release recycles a pooled packet; non-pooled packets pass through
// untouched. Clearing the struct drops payload references (GC) and the
// pooled flag, making a double release a no-op.
func (n *Network) release(p *Packet) {
	if p == nil || !p.pooled {
		return
	}
	*p = Packet{}
	n.freePkts = append(n.freePkts, p)
}

// DistanceDrops reports packets lost to distance-dependent path loss.
func (n *Network) DistanceDrops() int64 { return n.distDrops }

// SetPipeProbe installs (or removes, with nil) the per-packet observer
// on every access-link pipe — existing nodes and any added later. One
// probe covers the whole network; pipes identify themselves by name
// ("<node>/up", "<node>/down").
func (n *Network) SetPipeProbe(p PipeProbe) {
	n.pipeProbe = p
	for _, node := range n.nodes {
		node.up.probe = p
		node.down.probe = p
	}
}

// Sim returns the underlying simulator.
func (n *Network) Sim() *Sim { return n.sim }

// PathModel returns the latency model in use.
func (n *Network) PathModel() geo.PathModel { return n.path }

// AddNode creates and attaches a node. Adding a duplicate name is a
// programming error and panics.
func (n *Network) AddNode(cfg NodeConfig) *Node {
	if cfg.Name == "" {
		panic("simnet: node with empty name")
	}
	if _, dup := n.nodes[cfg.Name]; dup {
		panic("simnet: duplicate node " + cfg.Name)
	}
	lrng := n.sim.Fork("simnet.loss." + cfg.Name)
	node := &Node{
		net:      n,
		cfg:      cfg,
		handlers: make(map[int]Handler),
	}
	node.up = &pipe{
		sim: n.sim, net: n,
		name:    cfg.Name + "/up",
		rateBps: cfg.UplinkBps, queueLimit: cfg.QueueBytes,
		txTab: txTable(cfg.UplinkBps),
		rng:   &randSource{f64: lrng.Float64},
		probe: n.pipeProbe,
	}
	node.down = &pipe{
		sim: n.sim, net: n,
		name:    cfg.Name + "/down",
		rateBps: cfg.DownlinkBps, queueLimit: cfg.QueueBytes,
		txTab:    txTable(cfg.DownlinkBps),
		lossProb: cfg.LossProb,
		rng:      &randSource{f64: lrng.Float64},
		probe:    n.pipeProbe,
	}
	node.upThen = func(p *Packet) { n.propagate(node, p.dst, p) }
	node.downThen = func(p *Packet) {
		p.ArrivedAt = n.sim.Now()
		for _, t := range node.taps {
			t(DirIn, p, p.ArrivedAt)
		}
		if h, ok := node.handlers[p.To.Port]; ok {
			h(p)
		}
		n.release(p)
	}
	n.nodes[cfg.Name] = node
	return node
}

// txTable precomputes txDuration for every wire size below txTabSize;
// nil for unconstrained links.
func txTable(bps int64) []time.Duration {
	if bps <= 0 {
		return nil
	}
	tab := make([]time.Duration, txTabSize)
	for w := 1; w < txTabSize; w++ {
		tab[w] = txDuration(w, bps)
	}
	return tab
}

// Node returns a node by name, or nil.
func (n *Network) Node(name string) *Node { return n.nodes[name] }

// propagate carries a packet across the core from src to dst.
func (n *Network) propagate(src, dst *Node, pkt *Packet) {
	d := n.path.OneWay(src.cfg.Region, dst.cfg.Region)
	if n.distLoss > 0 {
		p := n.distLoss * float64(d) / float64(100*time.Millisecond)
		if n.lrng.f64() < p {
			n.distDrops++
			n.release(pkt)
			return
		}
	}
	if n.jitterStd > 0 {
		j := time.Duration(math.Abs(n.jrng.norm()) * float64(n.jitterStd))
		d += j
	}
	arr := n.sim.Now().Add(d)
	// Preserve FIFO ordering per (src,dst) node pair: jitter must not
	// reorder a flow (real reordering is rare and would only add noise).
	key := [2]string{src.cfg.Name, dst.cfg.Name}
	if last, ok := n.lastArr[key]; ok && !arr.After(last) {
		arr = last.Add(time.Nanosecond)
	}
	n.lastArr[key] = arr
	pkt.dst = dst
	n.sim.AtCall(arr, deliverDown, pkt)
}

// deliverDown hands an arriving packet to the destination's downlink
// pipe — the payload-call form of the old per-packet closure pair.
func deliverDown(arg any) {
	pkt := arg.(*Packet)
	dst := pkt.dst
	pkt.dst = nil
	dst.down.deliverAfter(pkt, dst.downThen)
}
