package simnet

import (
	"math/big"
	"testing"
	"testing/quick"
	"time"

	"github.com/vcabench/vcabench/internal/geo"
)

// --- live-event accounting (Pending / step-probe depth) ---

func TestPendingExcludesCancelled(t *testing.T) {
	s := NewSim(1)
	e1 := s.After(time.Second, func() {})
	s.After(2*time.Second, func() {})
	s.After(3*time.Second, func() {})
	if got := s.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3", got)
	}
	e1.Cancel()
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending after cancel = %d, want 2 (cancelled events must not count)", got)
	}
	e1.Cancel() // double cancel must not double-decrement
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending after double cancel = %d, want 2", got)
	}
	s.Run()
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d, want 0", got)
	}
}

func TestStepProbeReportsLiveDepth(t *testing.T) {
	s := NewSim(1)
	// Three live events plus one cancelled one scheduled between them:
	// the probe must see the live backlog only.
	var depths []int
	s.SetStepProbe(func(at time.Time, depth int) { depths = append(depths, depth) })
	s.After(time.Second, func() {})
	ec := s.After(2*time.Second, func() {})
	s.After(3*time.Second, func() {})
	s.After(4*time.Second, func() {})
	ec.Cancel()
	s.Run()
	want := []int{2, 1, 0}
	if len(depths) != len(want) {
		t.Fatalf("probe fired %d times (%v), want %d", len(depths), depths, len(want))
	}
	for i := range want {
		if depths[i] != want[i] {
			t.Fatalf("probe depths = %v, want %v", depths, want)
		}
	}
}

func TestCancelAfterFiringIsNoOp(t *testing.T) {
	s := NewSim(1)
	e := s.After(time.Second, func() {})
	s.After(2*time.Second, func() {})
	s.Run()
	e.Cancel() // already fired: must not corrupt the live count
	s.After(time.Second, func() {})
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1 (cancel of a fired event must be a no-op)", got)
	}
}

// --- Every handle contract ---

func TestEveryHandleTracksNextTick(t *testing.T) {
	s := NewSim(1)
	period := 250 * time.Millisecond
	var ticks int
	ev := s.Every(period, func() { ticks++ })
	if got, want := ev.When(), Epoch.Add(period); !got.Equal(want) {
		t.Fatalf("When() before first tick = %v, want %v", got, want)
	}
	s.RunFor(period) // fire the first tick
	if ticks != 1 {
		t.Fatalf("ticks = %d, want 1", ticks)
	}
	if got, want := ev.When(), Epoch.Add(2*period); !got.Equal(want) {
		t.Fatalf("When() after first tick = %v, want next tick %v", got, want)
	}
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending with one armed ticker = %d, want 1", got)
	}
}

func TestEveryCancelRemovesLiveTick(t *testing.T) {
	s := NewSim(1)
	ev := s.Every(time.Second, func() {})
	ev.Cancel()
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending after ticker cancel = %d, want 0", got)
	}
	before := s.Steps()
	s.RunFor(10 * time.Second)
	if got := s.Steps() - before; got != 0 {
		t.Fatalf("cancelled ticker consumed %d steps, want 0", got)
	}
}

func TestEveryCancelFromTick(t *testing.T) {
	s := NewSim(1)
	var ticks int
	var ev *Event
	ev = s.Every(time.Second, func() {
		ticks++
		if ticks == 3 {
			ev.Cancel()
		}
	})
	s.RunFor(time.Minute)
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3 (self-cancel must stop the ticker)", ticks)
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending after self-cancel = %d, want 0", got)
	}
}

// --- txDuration exactness ---

// TestTxDurationExactCeil cross-checks the 128-bit integer form against
// exact rational arithmetic: txDuration must be ceil(bytes*8e9/bps),
// never below the true serialization time (drains must not beat the
// configured rate) and never a full nanosecond above it.
func TestTxDurationExactCeil(t *testing.T) {
	f := func(nbytes uint16, bps uint32) bool {
		b, r := int(nbytes), int64(bps)
		if r == 0 {
			return txDuration(b, r) == 0
		}
		got := big.NewInt(int64(txDuration(b, r)))
		num := new(big.Int).Mul(big.NewInt(int64(b)*8), big.NewInt(int64(time.Second)))
		den := big.NewInt(r)
		want, rem := new(big.Int).QuoRem(num, den, new(big.Int))
		if rem.Sign() > 0 {
			want.Add(want, big.NewInt(1))
		}
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
}

func TestTxDurationOverflowSaturates(t *testing.T) {
	// 1 EiB at 1 bit/s does not fit a Duration: the guard must saturate,
	// not wrap negative.
	if d := txDuration(1<<60, 1); d != time.Duration(1<<63-1) {
		t.Fatalf("overflowing txDuration = %v, want saturation", d)
	}
	if d := txDuration(0, 1000); d != 0 {
		t.Fatalf("txDuration(0) = %v, want 0", d)
	}
}

// TestDrainNeverExceedsRate is the long-run satellite property: a
// back-to-back burst through a rate-limited pipe must serialize no
// faster than rateBps, at every prefix, for rates that do not divide an
// integer number of nanoseconds per bit (the case the old float64 form
// got wrong by truncation).
func TestDrainNeverExceedsRate(t *testing.T) {
	for _, bps := range []int64{777_777, 1_000_003, 123_457, 999_999_937} {
		s := NewSim(7)
		n := NewNetwork(s, NetworkConfig{JitterStd: time.Nanosecond})
		a := n.AddNode(NodeConfig{Name: "a", Region: geo.USEast, UplinkBps: bps, QueueBytes: 1 << 30})
		n.AddNode(NodeConfig{Name: "b", Region: geo.USEast2})
		var wireBits int64
		start := s.Now()
		probe := &departProbe{
			onForward: func(at time.Time, wire int, wait time.Duration) {
				wireBits += int64(wire) * 8
				depart := at.Add(wait)
				// bits served by `depart` must satisfy depart-start >= bits/bps,
				// i.e. bits*1e9 <= bps*(depart-start) — exact in integers.
				lhs := new(big.Int).Mul(big.NewInt(wireBits), big.NewInt(int64(time.Second)))
				rhs := new(big.Int).Mul(big.NewInt(bps), big.NewInt(int64(depart.Sub(start))))
				if lhs.Cmp(rhs) > 0 {
					t.Fatalf("bps=%d: %d bits served by +%v beats the configured rate", bps, wireBits, depart.Sub(start))
				}
			},
		}
		n.SetPipeProbe(probe)
		for i := 0; i < 400; i++ {
			a.Send(&Packet{To: Addr{Node: "b", Port: 5}, Size: 40 + (i*97)%1200})
		}
		s.Run()
	}
}

type departProbe struct {
	onForward func(at time.Time, wire int, wait time.Duration)
}

func (p *departProbe) PipeForwarded(pipe string, at time.Time, l7, wire, queuedBytes int, wait time.Duration) {
	if p.onForward != nil && pipe == "a/up" {
		p.onForward(at, wire, wait)
	}
}
func (p *departProbe) PipeDropped(pipe string, at time.Time, wire int, cause DropCause) {}

// --- allocation regression: the zero-allocation fast path ---

// TestUnconstrainedSendPathAllocFree pins the tentpole: once the event
// slab and packet pool are warm, sending a pooled packet across two
// unconstrained pipes and the core costs zero heap allocations.
func TestUnconstrainedSendPathAllocFree(t *testing.T) {
	s, n := newTestNet(3)
	a := n.AddNode(NodeConfig{Name: "a", Region: geo.USEast})
	b := n.AddNode(NodeConfig{Name: "b", Region: geo.USEast2})
	delivered := 0
	b.Bind(5, func(p *Packet) { delivered++ })
	send := func() {
		pkt := n.NewPacket()
		pkt.To = Addr{Node: "a", Port: 0}
		pkt.To.Node = "b"
		pkt.To.Port = 5
		pkt.Size = 1200
		if err := a.Send(pkt); err != nil {
			t.Fatal(err)
		}
		s.Run()
	}
	// Warm the slab chunk, the free lists and the lastArr map.
	for i := 0; i < 512; i++ {
		send()
	}
	avg := testing.AllocsPerRun(200, send)
	if avg > 0.05 {
		t.Errorf("unconstrained send path allocates %.2f objects/op, want 0", avg)
	}
	if delivered == 0 {
		t.Fatal("no packets delivered")
	}
}

// TestConstrainedSendPathAllocFree covers the rate-limited path: the
// dequeue event is a recycled payload event, so steady-state cost is
// zero allocations there too.
func TestConstrainedSendPathAllocFree(t *testing.T) {
	s, n := newTestNet(4)
	a := n.AddNode(NodeConfig{Name: "a", Region: geo.USEast, UplinkBps: 50_000_000})
	b := n.AddNode(NodeConfig{Name: "b", Region: geo.USEast2, DownlinkBps: 50_000_000})
	b.Bind(5, func(p *Packet) {})
	send := func() {
		pkt := n.NewPacket()
		pkt.To = Addr{Node: "b", Port: 5}
		pkt.Size = 1200
		if err := a.Send(pkt); err != nil {
			t.Fatal(err)
		}
		s.Run()
	}
	for i := 0; i < 512; i++ {
		send()
	}
	if avg := testing.AllocsPerRun(200, send); avg > 0.05 {
		t.Errorf("constrained send path allocates %.2f objects/op, want 0", avg)
	}
}

// TestPooledPacketRecycled proves the pool actually cycles: a packet
// released by delivery comes back from NewPacket zeroed.
func TestPooledPacketRecycled(t *testing.T) {
	s, n := newTestNet(5)
	a := n.AddNode(NodeConfig{Name: "a", Region: geo.USEast})
	b := n.AddNode(NodeConfig{Name: "b", Region: geo.USEast2})
	var seen *Packet
	b.Bind(5, func(p *Packet) { seen = p })
	first := n.NewPacket()
	first.To = Addr{Node: "b", Port: 5}
	first.Size = 100
	first.Payload = "payload"
	if err := a.Send(first); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if seen != first {
		t.Fatal("handler saw a different packet")
	}
	again := n.NewPacket()
	if again != first {
		t.Fatal("released packet was not recycled by NewPacket")
	}
	if again.Payload != nil || again.Size != 0 || again.To != (Addr{}) || !again.SentAt.IsZero() {
		t.Fatalf("recycled packet not zeroed: %+v", again)
	}
}

// TestLiteralPacketsNeverPooled: packets the application allocated
// itself must pass through delivery without entering the free-list.
func TestLiteralPacketsNeverPooled(t *testing.T) {
	s, n := newTestNet(6)
	a := n.AddNode(NodeConfig{Name: "a", Region: geo.USEast})
	b := n.AddNode(NodeConfig{Name: "b", Region: geo.USEast2})
	b.Bind(5, func(p *Packet) {})
	lit := &Packet{To: Addr{Node: "b", Port: 5}, Size: 100, Payload: "keep"}
	if err := a.Send(lit); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if lit.Payload != "keep" {
		t.Fatal("literal packet was cleared by the pool")
	}
	if got := n.NewPacket(); got == lit {
		t.Fatal("literal packet entered the free-list")
	}
}

// TestSendAtDefers checks the allocation-free deferred-send primitive.
func TestSendAtDefers(t *testing.T) {
	s, n := newTestNet(8)
	a := n.AddNode(NodeConfig{Name: "a", Region: geo.USEast})
	b := n.AddNode(NodeConfig{Name: "b", Region: geo.USEast2})
	var at time.Time
	b.Bind(5, func(p *Packet) { at = p.SentAt })
	pkt := n.NewPacket()
	pkt.To = Addr{Node: "b", Port: 5}
	pkt.Size = 10
	when := s.Now().Add(3 * time.Second)
	a.SendAt(when, pkt)
	s.Run()
	if !at.Equal(when) {
		t.Fatalf("deferred send fired at %v, want %v", at, when)
	}
	// Undeliverable deferred sends must recycle the pooled packet.
	bad := n.NewPacket()
	bad.To = Addr{Node: "nope", Port: 1}
	a.SendAt(s.Now(), bad)
	s.Run()
	if got := n.NewPacket(); got != bad {
		t.Fatal("undeliverable pooled packet was not recycled")
	}
}
