package simnet

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/vcabench/vcabench/internal/geo"
)

func newTestNet(seed int64) (*Sim, *Network) {
	s := NewSim(seed)
	n := NewNetwork(s, NetworkConfig{})
	return s, n
}

func TestBasicDelivery(t *testing.T) {
	s, n := newTestNet(1)
	a := n.AddNode(NodeConfig{Name: "a", Region: geo.USEast})
	b := n.AddNode(NodeConfig{Name: "b", Region: geo.USWest})
	var got *Packet
	b.Bind(9000, func(p *Packet) { got = p })
	if err := a.Send(&Packet{To: Addr{"b", 9000}, Size: 100}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if got.From.Node != "a" {
		t.Errorf("From = %v", got.From)
	}
	oneWay := got.ArrivedAt.Sub(got.SentAt)
	base := n.PathModel().OneWay(geo.USEast, geo.USWest)
	if oneWay < base || oneWay > base+5*time.Millisecond {
		t.Errorf("one-way = %v, model = %v", oneWay, base)
	}
}

func TestSendUnknownNode(t *testing.T) {
	_, n := newTestNet(1)
	a := n.AddNode(NodeConfig{Name: "a", Region: geo.USEast})
	if err := a.Send(&Packet{To: Addr{"ghost", 1}, Size: 10}); err == nil {
		t.Error("expected error")
	}
}

func TestUnboundPortDropped(t *testing.T) {
	s, n := newTestNet(1)
	a := n.AddNode(NodeConfig{Name: "a", Region: geo.USEast})
	b := n.AddNode(NodeConfig{Name: "b", Region: geo.USEast2})
	delivered := false
	b.Bind(1, func(p *Packet) { delivered = true })
	a.Send(&Packet{To: Addr{"b", 2}, Size: 10}) // port 2 unbound
	s.Run()
	if delivered {
		t.Error("handler on port 1 saw packet for port 2")
	}
	// Still counted by the downlink (it crossed the wire).
	if b.DownlinkStats().Packets != 1 {
		t.Errorf("downlink packets = %d", b.DownlinkStats().Packets)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	_, n := newTestNet(1)
	n.AddNode(NodeConfig{Name: "a", Region: geo.USEast})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	n.AddNode(NodeConfig{Name: "a", Region: geo.USWest})
}

func TestFlowFIFONoReordering(t *testing.T) {
	s, n := newTestNet(7)
	a := n.AddNode(NodeConfig{Name: "a", Region: geo.USEast})
	b := n.AddNode(NodeConfig{Name: "b", Region: geo.CH})
	var seqs []int
	b.Bind(5, func(p *Packet) { seqs = append(seqs, p.Payload.(int)) })
	for i := 0; i < 200; i++ {
		i := i
		s.After(time.Duration(i)*100*time.Microsecond, func() {
			a.Send(&Packet{To: Addr{"b", 5}, Size: 1200, Payload: i})
		})
	}
	s.Run()
	if len(seqs) != 200 {
		t.Fatalf("delivered %d/200", len(seqs))
	}
	for i, v := range seqs {
		if v != i {
			t.Fatalf("reordered at %d: %v", i, v)
		}
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// 10 packets of 1000B(+28) through a 1 Mbps uplink take ~82ms to
	// serialize; the last arrival must reflect that queueing.
	s, n := newTestNet(1)
	a := n.AddNode(NodeConfig{Name: "a", Region: geo.USEast, UplinkBps: 1_000_000})
	b := n.AddNode(NodeConfig{Name: "b", Region: geo.USEast2})
	var last time.Time
	count := 0
	b.Bind(5, func(p *Packet) { last = p.ArrivedAt; count++ })
	for i := 0; i < 10; i++ {
		a.Send(&Packet{To: Addr{"b", 5}, Size: 1000})
	}
	s.Run()
	if count != 10 {
		t.Fatalf("delivered %d/10", count)
	}
	serialize := time.Duration(10 * (1000 + WireOverhead) * 8 * 1000) // ns at 1Mbps: bits*1000ns
	elapsed := last.Sub(Epoch)
	if elapsed < serialize {
		t.Errorf("last arrival %v < serialization floor %v", elapsed, serialize)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	s, n := newTestNet(1)
	a := n.AddNode(NodeConfig{
		Name: "a", Region: geo.USEast,
		UplinkBps: 100_000, QueueBytes: 5000,
	})
	n.AddNode(NodeConfig{Name: "b", Region: geo.USEast2})
	for i := 0; i < 100; i++ {
		a.Send(&Packet{To: Addr{"b", 5}, Size: 1200})
	}
	s.Run()
	st := a.UplinkStats()
	if st.DropsQueue == 0 {
		t.Error("expected tail drops")
	}
	if st.Packets+st.DropsQueue != 100 {
		t.Errorf("conservation: %d sent + %d dropped != 100", st.Packets, st.DropsQueue)
	}
}

func TestRandomLoss(t *testing.T) {
	s, n := newTestNet(123)
	a := n.AddNode(NodeConfig{Name: "a", Region: geo.USEast})
	b := n.AddNode(NodeConfig{Name: "b", Region: geo.USEast2, LossProb: 0.3})
	got := 0
	b.Bind(5, func(p *Packet) { got++ })
	const sent = 2000
	for i := 0; i < sent; i++ {
		a.Send(&Packet{To: Addr{"b", 5}, Size: 100})
	}
	s.Run()
	frac := float64(got) / sent
	if frac < 0.64 || frac > 0.76 {
		t.Errorf("delivered fraction = %.3f, want ~0.70", frac)
	}
	if b.DownlinkStats().DropsRandom != int64(sent-got) {
		t.Errorf("loss accounting mismatch")
	}
}

// SetDownlinkLoss installs (and replaces) ingress loss after the node
// exists — the seam campaign netem conditions use.
func TestSetDownlinkLoss(t *testing.T) {
	s, n := newTestNet(124)
	a := n.AddNode(NodeConfig{Name: "a", Region: geo.USEast})
	b := n.AddNode(NodeConfig{Name: "b", Region: geo.USEast2})
	got := 0
	b.Bind(5, func(p *Packet) { got++ })
	b.SetDownlinkLoss(0.4)
	const sent = 2000
	for i := 0; i < sent; i++ {
		a.Send(&Packet{To: Addr{"b", 5}, Size: 100})
	}
	s.Run()
	frac := float64(got) / sent
	if frac < 0.54 || frac > 0.66 {
		t.Errorf("delivered fraction = %.3f, want ~0.60", frac)
	}
	if b.DownlinkStats().DropsRandom != int64(sent-got) {
		t.Error("loss accounting mismatch")
	}
	// Loss can be turned back off.
	b.SetDownlinkLoss(0)
	before := got
	for i := 0; i < 100; i++ {
		a.Send(&Packet{To: Addr{"b", 5}, Size: 100})
	}
	s.Run()
	if got-before != 100 {
		t.Errorf("delivered %d/100 after disabling loss", got-before)
	}
}

func TestTapSeesBothDirections(t *testing.T) {
	s, n := newTestNet(1)
	a := n.AddNode(NodeConfig{Name: "a", Region: geo.USEast})
	b := n.AddNode(NodeConfig{Name: "b", Region: geo.USEast2})
	b.Bind(5, func(p *Packet) {})
	var outs, ins int
	a.Tap(func(d Direction, p *Packet, at time.Time) {
		if d == DirOut {
			outs++
		} else {
			ins++
		}
	})
	var bIns int
	b.Tap(func(d Direction, p *Packet, at time.Time) {
		if d == DirIn {
			bIns++
		}
	})
	a.Send(&Packet{To: Addr{"b", 5}, Size: 64})
	s.Run()
	if outs != 1 || ins != 0 || bIns != 1 {
		t.Errorf("taps: a.out=%d a.in=%d b.in=%d", outs, ins, bIns)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []time.Duration {
		s, n := newTestNet(99)
		a := n.AddNode(NodeConfig{Name: "a", Region: geo.USEast})
		b := n.AddNode(NodeConfig{Name: "b", Region: geo.CH, DownlinkBps: 2_000_000})
		var lat []time.Duration
		b.Bind(5, func(p *Packet) { lat = append(lat, p.ArrivedAt.Sub(p.SentAt)) })
		s.Every(10*time.Millisecond, func() {
			a.Send(&Packet{To: Addr{"b", 5}, Size: 1100})
		})
		s.RunUntil(Epoch.Add(2 * time.Second))
		return lat
	}
	r1, r2 := run(), run()
	if len(r1) != len(r2) || len(r1) == 0 {
		t.Fatalf("lengths %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, r1[i], r2[i])
		}
	}
}

func TestShaperRateEnforced(t *testing.T) {
	// A 500 Kbps downlink shaper must cap long-run goodput near 500 Kbps
	// even when offered 2 Mbps.
	s, n := newTestNet(5)
	a := n.AddNode(NodeConfig{Name: "a", Region: geo.USEast})
	b := n.AddNode(NodeConfig{Name: "b", Region: geo.USEast2, QueueBytes: 64 * 1024})
	b.SetDownlinkShaper(NewTokenBucket(500_000, 10*1024))
	var bytes int64
	var lastArr time.Time
	b.Bind(5, func(p *Packet) { bytes += int64(p.Size); lastArr = p.ArrivedAt })
	// Offer 2 Mbps for 4 seconds: 1000B every 4ms.
	ev := s.Every(4*time.Millisecond, func() {
		a.Send(&Packet{To: Addr{"b", 5}, Size: 1000})
	})
	s.RunUntil(Epoch.Add(4 * time.Second))
	ev.Cancel()
	s.Run()
	dur := lastArr.Sub(Epoch).Seconds()
	rate := float64(bytes) * 8 / dur
	if rate > 560_000 {
		t.Errorf("shaped goodput = %.0f bps, want <= ~520k", rate)
	}
	if rate < 350_000 {
		t.Errorf("shaped goodput = %.0f bps suspiciously low", rate)
	}
	if b.DownlinkStats().DropsQueue == 0 {
		t.Error("expected queue drops at 4x overload")
	}
}

func TestTokenBucketBurst(t *testing.T) {
	tb := NewTokenBucket(1_000_000, 8000)
	now := Epoch
	// A full bucket passes 8000 bytes immediately.
	if at := tb.Admit(now, 8000); !at.Equal(now) {
		t.Errorf("burst not admitted immediately: %v", at.Sub(now))
	}
	// The next kilobyte must wait ~8ms at 1 Mbps.
	at := tb.Admit(now, 1000)
	want := now.Add(8 * time.Millisecond)
	if at.Before(want.Add(-time.Millisecond)) || at.After(want.Add(time.Millisecond)) {
		t.Errorf("post-burst admit at %v, want ~%v", at.Sub(now), want.Sub(now))
	}
}

func TestTokenBucketUnlimited(t *testing.T) {
	tb := NewTokenBucket(0, 0)
	if at := tb.Admit(Epoch, 1<<20); !at.Equal(Epoch) {
		t.Error("zero-rate bucket should be a no-op")
	}
}

// Property: token bucket departure times are nondecreasing and never in
// the past; long-run rate never exceeds configured rate by more than the
// burst allowance.
func TestTokenBucketProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		tb := NewTokenBucket(250_000, 4096)
		now := Epoch
		var total int
		var last time.Time = Epoch
		for _, raw := range sizes {
			size := int(raw)%1400 + 1
			at := tb.Admit(now, size)
			if at.Before(now) || at.Before(last) {
				return false
			}
			last = at
			now = at
			total += size
		}
		if len(sizes) == 0 {
			return true
		}
		elapsed := last.Sub(Epoch).Seconds()
		budget := 250_000.0/8*elapsed + 4096 + 1400
		return float64(total) <= budget+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property over arbitrary time-ordered arrival sequences — including
// arrivals that land while an earlier admission's departure is still
// pending, which the pipe never generates but the exported API allows:
// admission times are monotonic and never precede the arrival, and the
// bytes admitted by any departure time never exceed the configured
// rate times elapsed time plus one burst. (An earlier Admit based the
// deficit wait on the arrival instead of the refill clock, moving the
// clock backwards and double-granting the overlap.)
func TestTokenBucketAdmitProperty(t *testing.T) {
	const (
		rateBps = 500_000
		burst   = 8192
		maxPkt  = 2048
	)
	f := func(raw []uint32) bool {
		tb := NewTokenBucket(rateBps, burst)
		now := Epoch
		var start, last time.Time
		var admitted float64
		for _, r := range raw {
			size := int(r&0x7ff) + 1                             // 1..2048 bytes
			gap := time.Duration(r>>11&0x3ff) * time.Millisecond // 0..1023 ms between arrivals
			now = now.Add(gap)
			at := tb.Admit(now, size)
			if at.Before(now) {
				return false
			}
			if !last.IsZero() && at.Before(last) {
				return false // admission times ran backwards
			}
			last = at
			if start.IsZero() {
				start = now // bucket primes (full) at first admission
			}
			admitted += float64(size)
			budget := rateBps/8.0*at.Sub(start).Seconds() + burst + maxPkt
			if admitted > budget+1 {
				return false // throughput exceeded rate + one burst
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// SetDownlinkState swaps the whole downlink configuration atomically,
// and DownlinkAt applies one at a scheduled virtual time.
func TestDownlinkStateReconfig(t *testing.T) {
	s, n := newTestNet(5)
	a := n.AddNode(NodeConfig{Name: "a", Region: geo.USEast})
	b := n.AddNode(NodeConfig{Name: "b", Region: geo.USEast2, QueueBytes: 1 << 20})
	var arrivals []time.Time
	b.Bind(7, func(p *Packet) { arrivals = append(arrivals, s.Now()) })

	send := func(at time.Time) {
		s.At(at, func() { a.Send(&Packet{To: Addr{Node: "b", Port: 7}, Size: 1000}) })
	}
	// Phase 1 (unshaped), phase 2 (10 kbps cap, tiny burst: ~0.8 s per
	// packet), phase 3 (cap lifted, 200 ms extra delay).
	b.DownlinkAt(Epoch.Add(1*time.Second), LinkState{CapBps: 10_000, Burst: 512})
	b.DownlinkAt(Epoch.Add(3*time.Second), LinkState{ExtraDelay: 200 * time.Millisecond})
	send(Epoch.Add(100 * time.Millisecond))
	send(Epoch.Add(1100 * time.Millisecond))
	send(Epoch.Add(3100 * time.Millisecond))
	s.Run()

	if len(arrivals) != 3 {
		t.Fatalf("deliveries = %d, want 3", len(arrivals))
	}
	if d := arrivals[0].Sub(Epoch); d > 500*time.Millisecond {
		t.Errorf("unshaped packet took %v", d)
	}
	if d := arrivals[1].Sub(Epoch); d < 1500*time.Millisecond {
		t.Errorf("capped packet arrived too fast: %v", d)
	}
	if d := arrivals[2].Sub(Epoch); d < 3300*time.Millisecond || d > 3500*time.Millisecond {
		t.Errorf("delayed packet arrived at %v, want ~3.3s", d)
	}

	// The zero state restores a pristine downlink.
	b.SetDownlinkState(LinkState{})
	var clean []time.Time
	b.Bind(7, func(p *Packet) { clean = append(clean, s.Now()) })
	send(s.Now().Add(50 * time.Millisecond))
	s.Run()
	if len(clean) != 1 {
		t.Fatalf("post-reset deliveries = %d, want 1", len(clean))
	}
}

// A constant extra delay shifts deliveries; it must not eat queue
// budget and turn into tail drops on a capped link.
func TestExtraDelayDoesNotReduceThroughput(t *testing.T) {
	run := func(delay time.Duration) int {
		s, n := newTestNet(3)
		a := n.AddNode(NodeConfig{Name: "a", Region: geo.USEast})
		b := n.AddNode(NodeConfig{Name: "b", Region: geo.USEast2, QueueBytes: 32 * 1024})
		b.SetDownlinkState(LinkState{CapBps: 2_000_000, Burst: 8192, ExtraDelay: delay})
		delivered := 0
		b.Bind(5, func(p *Packet) { delivered++ })
		// Offer exactly the cap for 10 s: 1000B every 4 ms.
		for i := 0; i < 2500; i++ {
			at := Epoch.Add(time.Duration(i) * 4 * time.Millisecond)
			s.At(at, func() { a.Send(&Packet{To: Addr{"b", 5}, Size: 1000}) })
		}
		s.Run()
		return delivered
	}
	plain, delayed := run(0), run(300*time.Millisecond)
	if delayed < plain-plain/50 {
		t.Errorf("300ms constant delay cost throughput: %d vs %d delivered", delayed, plain)
	}
}

func TestPipeConservation(t *testing.T) {
	// Every offered packet is either delivered or counted as a drop.
	s, n := newTestNet(11)
	a := n.AddNode(NodeConfig{Name: "a", Region: geo.USEast, UplinkBps: 300_000, QueueBytes: 8 * 1024})
	b := n.AddNode(NodeConfig{Name: "b", Region: geo.USWest, DownlinkBps: 200_000, QueueBytes: 8 * 1024, LossProb: 0.05})
	delivered := 0
	b.Bind(5, func(p *Packet) { delivered++ })
	const offered = 500
	for i := 0; i < offered; i++ {
		i := i
		s.After(time.Duration(i)*2*time.Millisecond, func() {
			a.Send(&Packet{To: Addr{"b", 5}, Size: 900})
		})
	}
	s.Run()
	up, down := a.UplinkStats(), b.DownlinkStats()
	if up.Packets+up.DropsQueue != offered {
		t.Errorf("uplink conservation: %d+%d != %d", up.Packets, up.DropsQueue, offered)
	}
	if down.Packets+down.DropsQueue+down.DropsRandom != up.Packets {
		t.Errorf("downlink conservation: %d+%d+%d != %d",
			down.Packets, down.DropsQueue, down.DropsRandom, up.Packets)
	}
	if int64(delivered) != down.Packets {
		t.Errorf("delivered %d != downlink packets %d", delivered, down.Packets)
	}
}

func TestAddrString(t *testing.T) {
	if s := (Addr{"n", 8801}).String(); s != "n:8801" {
		t.Errorf("Addr.String = %q", s)
	}
	if DirOut.String() != "out" || DirIn.String() != "in" {
		t.Error("Direction.String broken")
	}
}
