package serve

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/vcabench/vcabench/internal/obs"
	"github.com/vcabench/vcabench/internal/store"
)

// scrape GETs /metrics and returns the exposition text.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	var b strings.Builder
	if _, err := io.Copy(&b, resp.Body); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// A telemetry-armed daemon serves one scrape endpoint covering serve,
// engine and store series together, and the readings agree with the
// work actually done.
func TestServeMetricsEndpoint(t *testing.T) {
	tel := obs.NewTelemetry()
	cs, err := store.OpenOptions(t.TempDir(), store.Options{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{Store: cs, Telemetry: tel})

	// Before any work: the catalog is pre-created at zero and lints.
	text := scrape(t, ts.URL)
	for _, want := range []string{
		"vcabench_serve_campaigns_total 0",
		"vcabench_serve_units_total 0",
		`vcabench_jobs{status="done"} 0`,
		"vcabench_units_inflight 0",
		`vcabench_units_total{tier="local"} 0`,
		"vcabench_store_misses_total 0",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	if probs := obs.LintText([]byte(text)); len(probs) != 0 {
		t.Errorf("lint problems before work: %v", probs)
	}

	// One campaign (1 cell at tiny scale) and one direct unit.
	st := submit(t, ts, `{"spec": `+testSpec+`}`)
	if fin := poll(t, ts, st.ID); fin.Status != "done" {
		t.Fatalf("terminal status = %+v", fin)
	}
	resp, err := http.Post(ts.URL+"/units", "application/json",
		strings.NewReader(`{"spec": `+testSpec+`, "key": "svc"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unit status = %d", resp.StatusCode)
	}

	text = scrape(t, ts.URL)
	for _, want := range []string{
		"vcabench_serve_campaigns_total 1",
		"vcabench_serve_units_total 1",
		`vcabench_jobs{status="done"} 1`,
		`vcabench_jobs{status="running"} 0`,
		"vcabench_units_inflight 0",
		// Campaign computed the cell locally; the unit request then hit
		// the shared store's memory front (unit requests consult the
		// store directly, outside the engine's tier accounting).
		`vcabench_units_total{tier="local"} 1`,
		`vcabench_store_hits_total{tier="mem"} 1`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	if probs := obs.LintText([]byte(text)); len(probs) != 0 {
		t.Errorf("lint problems after work: %v", probs)
	}
}

// Resubmitting a deduplicated spec must not double-count campaigns.
func TestServeMetricsDedupe(t *testing.T) {
	tel := obs.NewTelemetry()
	ts := newTestServer(t, Config{Telemetry: tel})
	a := submit(t, ts, `{"spec": `+testSpec+`}`)
	poll(t, ts, a.ID)
	b := submit(t, ts, `{"spec": `+testSpec+`}`)
	if a.ID != b.ID {
		t.Fatalf("dedupe broke: %s vs %s", a.ID, b.ID)
	}
	text := scrape(t, ts.URL)
	if !strings.Contains(text, "vcabench_serve_campaigns_total 1\n") {
		t.Errorf("resubmission double-counted:\n%s", text)
	}
}

// An unobserved server must not mount /metrics.
func TestServeWithoutTelemetry(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("bare server serves /metrics: %d", resp.StatusCode)
	}
}
