// Package serve is the campaign service behind cmd/vcabenchd: an HTTP
// daemon that accepts declarative campaign specs, executes them through
// the shared scheduler and (optionally) a persistent cell store, and
// serves typed JSON results. Many clients thereby share one warm cache:
// the measurement-platform shape of MacMillan et al. (2021) and Kumar
// et al. (2022), where overlapping grid queries hit a common corpus of
// expensive measurements.
//
// API:
//
//	POST /campaigns            {"spec": {...}, "scale": "quick", "seed": 42}
//	                           → 202 {"id": "...", "status": "queued", ...}
//	GET  /campaigns/{id}       → job status (queued|running|done|failed)
//	GET  /campaigns/{id}/result→ the CampaignResult JSON document,
//	                             byte-identical to `vcabench -campaign
//	                             spec.json -json -` at the same scale/seed
//	GET  /cells/{key}          → one completed cell by canonical unit key,
//	                             at the server's default scale and seed;
//	                             ?scale= and ?seed= select others. Within
//	                             one (scale, seed), campaigns sharing keys
//	                             (fig12/fig14) agree on cell contents.
//	                             Misses fall back to the persistent store,
//	                             so cells survive daemon restarts and job
//	                             eviction.
//	GET  /cells/{key}/diag     → the cell's sim-time flight-recorder
//	                             artifact (see internal/diag), when the
//	                             server runs with Config.Diagnostics;
//	                             byte-identical to what `vcabench
//	                             -diag-out` writes for the same cell.
//	POST /units                {"spec": {...}, "scale": "tiny", "seed": 42,
//	                            "key": "grid/zoom"} → the cell's canonical
//	                             gob encoding (application/octet-stream).
//	                             This is the worker half of distributed
//	                             execution: a cluster.Pool coordinator
//	                             shards a campaign's unit keys across a
//	                             fleet of these endpoints (see
//	                             internal/cluster), and the worker's
//	                             persistent store makes repeated cells
//	                             free.
//	GET  /healthz              → liveness plus store statistics
//
// Campaign IDs are content-derived — SHA-256 over (resolved spec, scale,
// seed) — so resubmitting a spec returns the existing job instead of
// recomputing, and identical specs race-merge onto one execution.
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/vcabench/vcabench/internal/core"
	"github.com/vcabench/vcabench/internal/diag"
	"github.com/vcabench/vcabench/internal/obs"
	"github.com/vcabench/vcabench/internal/report"
	"github.com/vcabench/vcabench/internal/store"
)

// Config tunes a Server.
type Config struct {
	// Seed is the default simulation seed for requests that omit one.
	Seed int64
	// Scale is the default experiment scale for requests that omit one.
	Scale core.Scale
	// Workers bounds each campaign's scheduler pool (0 = GOMAXPROCS).
	Workers int
	// MaxRuns bounds concurrently executing campaigns (0 = NumCPU,
	// min 1); queued jobs wait their turn.
	MaxRuns int
	// Store, when non-nil, is the persistent cell store shared by every
	// campaign this server executes (and any CLI pointed at the same
	// directory).
	Store core.CellStore
	// MaxJobs bounds retained finished jobs (0 = DefaultMaxJobs).
	// Beyond it the oldest finished job — result document and its
	// cells-index entries — is dropped; resubmitting its spec re-runs
	// it, served warm from the store. Queued and running jobs are
	// never evicted.
	MaxJobs int
	// Telemetry, when set with a registry, mounts GET /metrics on the
	// handler, exports job and unit counters, and attaches the bundle
	// to every job's testbed so engine series (units, in-flight, wall
	// time) report here too. At most one Server may export into a given
	// registry. Telemetry never changes results.
	Telemetry *obs.Telemetry
	// Diagnostics arms the sim-time flight recorder on every campaign
	// this server executes: each cell's CellDiag document becomes
	// servable at GET /cells/{key}/diag (and persists in Store under
	// the servediag/ namespace), and cell JSON gains drop-cause
	// fields. Diagnostics-armed cells cache separately from bare ones,
	// so flipping this flag never reads a cache warmed the other way.
	Diagnostics bool
}

// DefaultMaxJobs bounds retained finished jobs when Config.MaxJobs is
// unset. Results and cell indexes live in memory; without a bound,
// clients sweeping seeds or scales would grow the daemon without limit
// even though the persistent store already holds every cell on disk.
const DefaultMaxJobs = 256

// Server executes submitted campaigns and serves their results.
type Server struct {
	cfg Config
	sem chan struct{} // bounds concurrent campaign executions

	// tel and its counters are set once in New and read-only after;
	// nil means unobserved.
	tel        *obs.Telemetry
	mUnits     *obs.Counter
	mCampaigns *obs.Counter

	mu       sync.Mutex
	jobs     map[string]*job
	finished []string          // finished job ids, oldest first
	cells    map[string][]byte // scoped cell key → CellResult JSON
	cellRefs map[string]int    // retained jobs referencing each key
	diags    map[string][]byte // scoped cell key → CellDiag JSON artifact
}

// cellIndexKey scopes the /cells index: the same unit key holds
// different values at different scales or seeds, so the bare key would
// let one client's seed override silently shadow another's cells.
func cellIndexKey(scaleName string, seed int64, unitKey string) string {
	return fmt.Sprintf("%s/%d/%s", scaleName, seed, unitKey)
}

// job is one submitted campaign execution.
type job struct {
	id        string
	name      string
	scaleName string
	seed      int64
	spec      core.Campaign

	status   string // "queued" | "running" | "done" | "failed"
	errMsg   string
	result   []byte // WriteJSON bytes of the CampaignResult
	cells    int
	cellKeys []string      // keys this job contributed to the cells index
	done     chan struct{} // closed on done/failed
}

// New creates a Server. The zero Config is usable: seed 0, quick scale
// defaults applied by the daemon's flags normally override these.
func New(cfg Config) *Server {
	if cfg.Scale.Name == "" {
		cfg.Scale = core.QuickScale
	}
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = runtime.NumCPU()
		if cfg.MaxRuns < 1 {
			cfg.MaxRuns = 1
		}
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = DefaultMaxJobs
	}
	s := &Server{
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.MaxRuns),
		jobs:     make(map[string]*job),
		cells:    make(map[string][]byte),
		cellRefs: make(map[string]int),
		diags:    make(map[string][]byte),
	}
	if cfg.Telemetry != nil && cfg.Telemetry.Metrics != nil {
		s.tel = cfg.Telemetry
		reg := s.tel.Metrics
		s.mCampaigns = reg.Counter("vcabench_serve_campaigns_total",
			"Campaign jobs accepted (deduplicated resubmissions not counted).")
		s.mUnits = reg.Counter("vcabench_serve_units_total",
			"Units executed for distributed coordinators via POST /units.")
		// Pre-create the engine families so a scrape before the first
		// job already shows the full catalog.
		core.RegisterEngineMetrics(reg)
		reg.RegisterGroup(s.emitMetrics)
	}
	return s
}

// emitMetrics exports the job table on each scrape: one gauge per
// lifecycle state, counted under the server's own lock so the states
// always sum to the job total in a single view.
func (s *Server) emitMetrics(g *obs.Group) {
	var queued, running, done, failed float64
	s.mu.Lock()
	//vcalint:ignore maprange order-independent tally into fixed counters; nothing is emitted per entry
	for _, j := range s.jobs {
		switch j.status {
		case "queued":
			queued++
		case "running":
			running++
		case "done":
			done++
		case "failed":
			failed++
		}
	}
	s.mu.Unlock()
	status := func(v string) []obs.Label { return []obs.Label{{Name: "status", Value: v}} }
	g.Emit("vcabench_jobs", "Retained campaign jobs by lifecycle state.", obs.TypeGauge,
		obs.Sample{Labels: status("queued"), Value: queued},
		obs.Sample{Labels: status("running"), Value: running},
		obs.Sample{Labels: status("done"), Value: done},
		obs.Sample{Labels: status("failed"), Value: failed})
}

// Handler returns the server's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /campaigns/{id}/result", s.handleResult)
	mux.HandleFunc("GET /cells/{key...}", s.handleCell)
	mux.HandleFunc("POST /units", s.handleUnit)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	if s.tel != nil {
		mux.Handle("GET /metrics", obs.Handler(s.tel.Metrics))
	}
	return mux
}

// submitRequest is the POST /campaigns body. Spec is kept raw so the
// campaign parser's strict decoding (unknown fields, trailing data)
// applies to it verbatim.
type submitRequest struct {
	Spec  json.RawMessage `json:"spec"`
	Scale string          `json:"scale,omitempty"`
	Seed  *int64          `json:"seed,omitempty"`
}

// jobStatus is the wire form of a job.
type jobStatus struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	Scale  string `json:"scale"`
	Seed   int64  `json:"seed"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	// Cells is the number of result cells once the job is done.
	Cells int `json:"cells,omitempty"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	msg, _ := json.Marshal(fmt.Sprintf(format, args...))
	fmt.Fprintf(w, "{\"error\": %s}\n", msg)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	report.WriteJSON(w, v)
}

// resolveSubmission applies the daemon defaults to a request's raw
// spec, scale name and optional seed — shared by the campaign and unit
// endpoints so the two halves of the API cannot drift. Errors map to
// 400.
func (s *Server) resolveSubmission(rawSpec json.RawMessage, scaleName string, seed *int64) (core.Campaign, core.Scale, int64, error) {
	if len(rawSpec) == 0 {
		return core.Campaign{}, core.Scale{}, 0, fmt.Errorf("request needs a \"spec\" field holding a campaign")
	}
	spec, err := core.ParseCampaign(rawSpec)
	if err != nil {
		return core.Campaign{}, core.Scale{}, 0, err
	}
	sc := s.cfg.Scale
	if scaleName != "" {
		var ok bool
		if sc, ok = core.ScaleByName(scaleName); !ok {
			return core.Campaign{}, core.Scale{}, 0, fmt.Errorf("unknown scale %q (want tiny, quick or paper)", scaleName)
		}
	}
	sd := s.cfg.Seed
	if seed != nil {
		sd = *seed
	}
	return spec, sc, sd, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	spec, sc, seed, err := s.resolveSubmission(req.Spec, req.Scale, req.Seed)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	id := campaignID(spec, sc.Name, seed)
	s.mu.Lock()
	j, exists := s.jobs[id]
	if !exists {
		j = &job{
			id: id, name: spec.Name, scaleName: sc.Name, seed: seed,
			spec: spec, status: "queued", done: make(chan struct{}),
		}
		s.jobs[id] = j
		if s.mCampaigns != nil {
			s.mCampaigns.Inc()
		}
		go s.run(j, sc)
	}
	st := s.statusOf(j)
	s.mu.Unlock()
	code := http.StatusAccepted
	if exists {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// campaignID derives the content address of a submission. Campaign
// JSON marshalling is deterministic (fixed struct field order), so
// equal submissions collapse onto one job.
func campaignID(spec core.Campaign, scaleName string, seed int64) string {
	raw, err := json.Marshal(spec)
	if err != nil {
		// Campaign is a plain data struct; Marshal cannot fail on it.
		panic("serve: marshal campaign: " + err.Error())
	}
	sum := sha256.New()
	sum.Write(raw)
	fmt.Fprintf(sum, "|%s|%d", scaleName, seed)
	return hex.EncodeToString(sum.Sum(nil))[:16]
}

// run executes one job under the concurrency bound.
func (s *Server) run(j *job, sc core.Scale) {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	s.mu.Lock()
	j.status = "running"
	s.mu.Unlock()

	fail := func(msg string) {
		s.mu.Lock()
		j.status = "failed"
		j.errMsg = msg
		s.finish(j)
		s.mu.Unlock()
		close(j.done)
	}

	// The engine panics on internal invariant violations, and this
	// goroutine — unlike an http handler's — would otherwise take the
	// whole daemon (and every other client's jobs) down with it.
	defer func() {
		if r := recover(); r != nil {
			fail(fmt.Sprintf("panic: %v", r))
		}
	}()

	tb := core.NewTestbed(j.seed).SetParallelism(s.cfg.Workers)
	if s.cfg.Store != nil {
		tb.WithStore(s.cfg.Store)
	}
	if s.tel != nil {
		tb.WithTelemetry(s.tel)
	}
	if s.cfg.Diagnostics {
		tb.WithDiagnostics()
	}
	res, err := core.RunCampaign(tb, j.spec, sc)
	if err != nil {
		fail(err.Error())
		return
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf, res); err != nil {
		fail("encode result: " + err.Error())
		return
	}

	type cellDoc struct {
		unitKey string
		data    []byte
	}
	var docs []cellDoc
	for i := range res.Cells {
		c := &res.Cells[i]
		var cb bytes.Buffer
		if report.WriteJSON(&cb, c) == nil {
			docs = append(docs, cellDoc{unitKey: c.Key, data: cb.Bytes()})
		}
	}
	// Flight-recorder documents ride alongside the rendered cells:
	// same scoping, same eviction, served at GET /cells/{key}/diag.
	var diagDocs []cellDoc
	if s.cfg.Diagnostics {
		for _, d := range tb.DiagResults() {
			if data, err := diag.Encode(d); err == nil {
				diagDocs = append(diagDocs, cellDoc{unitKey: d.Key, data: data})
			}
		}
	}
	// Persist the rendered cells before the job turns "done": once a
	// poller sees the terminal status, every cell must be servable —
	// from memory while the job is retained, from the store after a
	// restart or eviction. Deterministic cells make the write
	// idempotent, so an already-present document (a warm rerun, or a
	// sibling campaign sharing the key) is left alone — the Get costs
	// a small read (absorbed by the store's LRU) but preserves the
	// invariant that warm reruns perform zero Puts; failed Puts only
	// narrow the fallback.
	if s.cfg.Store != nil {
		for _, d := range docs {
			key := core.ServeCellKey(j.scaleName, j.seed, d.unitKey)
			if _, ok := s.cfg.Store.Get(key); !ok {
				s.cfg.Store.Put(key, d.data)
			}
		}
		// Diag artifacts are as deterministic as the cells, so the same
		// Get-before-Put idempotence applies.
		for _, d := range diagDocs {
			key := core.ServeDiagKey(j.scaleName, j.seed, d.unitKey)
			if _, ok := s.cfg.Store.Get(key); !ok {
				s.cfg.Store.Put(key, d.data)
			}
		}
	}

	s.mu.Lock()
	j.status = "done"
	j.result = buf.Bytes()
	j.cells = len(res.Cells)
	for _, d := range docs {
		ck := cellIndexKey(j.scaleName, j.seed, d.unitKey)
		s.cells[ck] = d.data
		s.cellRefs[ck]++
		j.cellKeys = append(j.cellKeys, ck)
	}
	for _, d := range diagDocs {
		// Diag entries ride the same refcounted eviction as cells. They
		// need their own counts: a replicated campaign's diag documents
		// are keyed per replica ("<cellKey>/rep=K"), which never appears
		// in the cells index.
		ck := cellIndexKey(j.scaleName, j.seed, d.unitKey)
		s.diags[ck] = d.data
		s.cellRefs[ck]++
		j.cellKeys = append(j.cellKeys, ck)
	}
	s.finish(j)
	s.mu.Unlock()
	close(j.done)
}

// finish records a terminal job and evicts the oldest finished jobs
// beyond MaxJobs — result documents and cell-index entries are dropped
// (the persistent store still holds every computed cell, so a
// resubmission re-runs warm). Caller holds s.mu.
func (s *Server) finish(j *job) {
	s.finished = append(s.finished, j.id)
	for len(s.finished) > s.cfg.MaxJobs {
		old := s.jobs[s.finished[0]]
		s.finished = s.finished[1:]
		if old == nil {
			continue
		}
		for _, key := range old.cellKeys {
			if s.cellRefs[key]--; s.cellRefs[key] <= 0 {
				delete(s.cellRefs, key)
				delete(s.cells, key)
				delete(s.diags, key)
			}
		}
		delete(s.jobs, old.id)
	}
}

// statusOf snapshots a job; caller holds s.mu.
func (s *Server) statusOf(j *job) jobStatus {
	return jobStatus{
		ID: j.id, Name: j.name, Scale: j.scaleName, Seed: j.seed,
		Status: j.status, Error: j.errMsg, Cells: j.cells,
	}
}

func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	st := s.statusOf(j)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	status, errMsg, result := j.status, j.errMsg, j.result
	s.mu.Unlock()
	switch status {
	case "done":
		w.Header().Set("Content-Type", "application/json")
		w.Write(result)
	case "failed":
		httpError(w, http.StatusConflict, "campaign failed: %s", errMsg)
	default:
		httpError(w, http.StatusAccepted, "campaign is %s; poll GET /campaigns/%s", status, j.id)
	}
}

func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	// The {key...} wildcard swallows the whole remaining path, so the
	// /cells/{key}/diag route is dispatched here by suffix: a trailing
	// "/diag" selects the cell's flight-recorder artifact instead of
	// its result JSON.
	if base, ok := strings.CutSuffix(key, "/diag"); ok && base != "" {
		s.serveCellDiag(w, r, base)
		return
	}
	scaleName, seed, ok := s.cellScope(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	data, ok := s.cells[cellIndexKey(scaleName, seed, key)]
	s.mu.Unlock()
	if !ok && s.cfg.Store != nil {
		// The in-memory index only spans retained jobs; the store holds
		// every cell this daemon (or a predecessor sharing the cache
		// directory) ever finished.
		data, ok = s.cfg.Store.Get(core.ServeCellKey(scaleName, seed, key))
	}
	if !ok {
		httpError(w, http.StatusNotFound,
			"no completed cell %q at scale=%s seed=%d (cells appear once their campaign finishes; ?scale=/?seed= select non-default runs)",
			key, scaleName, seed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// cellScope resolves the (scale, seed) query parameters shared by the
// /cells result and diag lookups, writing the 400 itself on a bad seed.
func (s *Server) cellScope(w http.ResponseWriter, r *http.Request) (scaleName string, seed int64, ok bool) {
	scaleName = s.cfg.Scale.Name
	if q := r.URL.Query().Get("scale"); q != "" {
		scaleName = q
	}
	seed = s.cfg.Seed
	if q := r.URL.Query().Get("seed"); q != "" {
		v, err := strconv.ParseInt(q, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad seed %q", q)
			return "", 0, false
		}
		seed = v
	}
	return scaleName, seed, true
}

// serveCellDiag serves GET /cells/{key}/diag: the cell's flight-recorder
// artifact, exactly the bytes `vcabench -diag-out` writes for the same
// cell. Like result lookups, misses fall back to the persistent store's
// servediag/ namespace.
func (s *Server) serveCellDiag(w http.ResponseWriter, r *http.Request, key string) {
	scaleName, seed, ok := s.cellScope(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	data, ok := s.diags[cellIndexKey(scaleName, seed, key)]
	s.mu.Unlock()
	if !ok && s.cfg.Store != nil {
		data, ok = s.cfg.Store.Get(core.ServeDiagKey(scaleName, seed, key))
	}
	if !ok {
		httpError(w, http.StatusNotFound,
			"no diagnostics for cell %q at scale=%s seed=%d (the daemon must run with -diag, and the cell's campaign must have finished)",
			key, scaleName, seed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// unitRequest is the POST /units body: one campaign cell to execute on
// behalf of a distributed-campaign coordinator. Spec stays raw so the
// campaign parser's strict decoding applies verbatim.
type unitRequest struct {
	Spec  json.RawMessage `json:"spec"`
	Scale string          `json:"scale,omitempty"`
	Seed  *int64          `json:"seed,omitempty"`
	Key   string          `json:"key"`
	// Diag mirrors core.UnitRequest.Diag: arm the flight recorder for
	// this unit so the returned cell carries the same Diag document a
	// local diagnostics-armed run would compute.
	Diag bool `json:"diag,omitempty"`
}

// handleUnit runs one campaign cell through the engine and returns its
// canonical gob encoding. Unit executions share the campaign
// semaphore, so a fleet coordinator cannot oversubscribe a worker that
// is also serving whole campaigns; the per-request testbed shares the
// persistent store, so repeated cells (any coordinator, any campaign,
// this daemon's own jobs) cost one disk read.
func (s *Server) handleUnit(w http.ResponseWriter, r *http.Request) {
	var req unitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Key == "" {
		httpError(w, http.StatusBadRequest, "request needs a \"key\" field naming a cell")
		return
	}
	spec, sc, seed, err := s.resolveSubmission(req.Spec, req.Scale, req.Seed)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Respect the coordinator's patience: a pool whose request timeout
	// expires closes the connection and fails the unit over, so a
	// handler still queued on the semaphore (or about to compute) must
	// not burn a slot on a multi-minute cell nobody will read.
	select {
	case s.sem <- struct{}{}:
	case <-r.Context().Done():
		httpError(w, http.StatusServiceUnavailable, "client went away while queued")
		return
	}
	defer func() { <-s.sem }()
	if r.Context().Err() != nil {
		httpError(w, http.StatusServiceUnavailable, "client went away while queued")
		return
	}

	data, err := s.runUnit(spec, sc, seed, req.Key, req.Diag)
	if err != nil {
		code := http.StatusBadRequest
		if _, panicked := err.(unitPanicError); panicked {
			code = http.StatusInternalServerError
		}
		httpError(w, code, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

// unitPanicError marks engine panics, which map to 500 rather than the
// 400 a bad spec or unknown key earns.
type unitPanicError struct{ msg string }

func (e unitPanicError) Error() string { return e.msg }

// runUnit executes one cell on a fresh testbed, converting engine
// panics into errors so a pathological unit cannot take down the
// daemon (the coordinator computes such a unit locally instead).
func (s *Server) runUnit(spec core.Campaign, sc core.Scale, seed int64, key string, diagOn bool) (data []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = unitPanicError{msg: fmt.Sprintf("unit panicked: %v", r)}
		}
	}()
	tb := core.NewTestbed(seed)
	if s.cfg.Store != nil {
		tb.WithStore(s.cfg.Store)
	}
	if s.tel != nil {
		tb.WithTelemetry(s.tel)
	}
	if diagOn {
		// The coordinator is diagnostics-armed; matching its mode keys
		// this unit into the diag half of the store and attaches the
		// Diag document the returned encoding must carry.
		tb.WithDiagnostics()
	}
	data, err = core.RunCampaignUnit(tb, spec, sc, key)
	if err == nil && s.mUnits != nil {
		s.mUnits.Inc()
	}
	return data, err
}

// health is the GET /healthz document.
type health struct {
	Status string       `json:"status"`
	Jobs   int          `json:"jobs"`
	Store  *store.Stats `json:"store,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	h := health{Status: "ok", Jobs: n}
	if ss, ok := s.cfg.Store.(interface{ Stats() store.Stats }); ok {
		st := ss.Stats()
		h.Store = &st
	}
	writeJSON(w, http.StatusOK, h)
}

// Jobs returns the IDs of all submitted campaigns, for debugging and
// tests, sorted so identical job sets always list identically.
func (s *Server) Jobs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Wait blocks until the given job finishes (done or failed); it
// returns false for an unknown id. Used by tests and graceful paths.
func (s *Server) Wait(id string) bool {
	j, ok := s.lookup(id)
	if !ok {
		return false
	}
	<-j.done
	return true
}

// DrainJobs blocks until every submitted campaign has reached a
// terminal state — the shutdown path of cmd/vcabenchd: stop the
// listener first (no new submissions), then drain, so an operator's
// SIGTERM never kills a client's campaign mid-run. Unit executions
// (POST /units) drain with the HTTP server itself, since their
// responses are synchronous.
func (s *Server) DrainJobs() {
	s.mu.Lock()
	pending := make([]*job, 0, len(s.jobs))
	//vcalint:ignore maprange wait barrier; every job is awaited exactly once and nothing is emitted
	for _, j := range s.jobs {
		pending = append(pending, j)
	}
	s.mu.Unlock()
	for _, j := range pending {
		<-j.done
	}
}

// Describe summarizes the server configuration for startup logs.
func (s *Server) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scale=%s seed=%d workers=%d max-runs=%d",
		s.cfg.Scale.Name, s.cfg.Seed, s.cfg.Workers, cap(s.sem))
	if s.cfg.Diagnostics {
		b.WriteString(" diag=on")
	}
	if st, ok := s.cfg.Store.(*store.Store); ok {
		fmt.Fprintf(&b, " cache=%s", st.Dir())
	}
	return b.String()
}
