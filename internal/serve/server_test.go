package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/vcabench/vcabench/internal/core"
	"github.com/vcabench/vcabench/internal/report"
	"github.com/vcabench/vcabench/internal/store"
)

// testSpec is a one-cell campaign, cheap enough for HTTP tests.
const testSpec = `{"name": "svc", "platforms": ["zoom"]}`

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	if cfg.Scale.Name == "" {
		cfg.Scale = core.TinyScale
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// submit POSTs a spec and returns the decoded status.
func submit(t *testing.T, ts *httptest.Server, body string) jobStatus {
	t.Helper()
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// poll waits for the job to finish and returns its terminal status.
func poll(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st jobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Status == "done" || st.Status == "failed" {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("campaign did not finish in time")
	return jobStatus{}
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// The acceptance criterion: the daemon returns the same bytes for a
// spec as the direct CLI/library path at the same scale and seed.
func TestServeResultMatchesDirectPath(t *testing.T) {
	ts := newTestServer(t, Config{})
	st := submit(t, ts, `{"spec": `+testSpec+`}`)
	if st.Status == "failed" {
		t.Fatalf("submit failed: %s", st.Error)
	}
	if fin := poll(t, ts, st.ID); fin.Status != "done" || fin.Cells != 1 {
		t.Fatalf("terminal status = %+v", fin)
	}
	code, body := get(t, ts, "/campaigns/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result status = %d: %s", code, body)
	}

	spec, err := core.ParseCampaign([]byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunCampaign(core.NewTestbed(42), spec, core.TinyScale)
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := report.WriteJSON(&direct, res); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, direct.Bytes()) {
		t.Errorf("daemon result differs from direct path:\n--- daemon ---\n%s\n--- direct ---\n%s", body, direct.Bytes())
	}

	// Per-cell lookup serves the same cell the document holds.
	code, cell := get(t, ts, "/cells/svc")
	if code != http.StatusOK {
		t.Fatalf("cell status = %d: %s", code, cell)
	}
	var got core.CellResult
	if err := json.Unmarshal(cell, &got); err != nil {
		t.Fatal(err)
	}
	if got.Key != "svc" || got.Platform != "zoom" || got.PSNR == nil {
		t.Errorf("cell lookup = %+v", got)
	}
}

// Resubmitting a spec returns the existing job: same id, no recompute.
func TestServeDedupesIdenticalSpecs(t *testing.T) {
	ts := newTestServer(t, Config{})
	a := submit(t, ts, `{"spec": `+testSpec+`}`)
	poll(t, ts, a.ID)
	b := submit(t, ts, `{"spec": `+testSpec+`}`)
	if a.ID != b.ID {
		t.Errorf("identical specs got different ids: %s vs %s", a.ID, b.ID)
	}
	// Different seed or scale is a different job.
	c := submit(t, ts, `{"spec": `+testSpec+`, "seed": 7}`)
	if c.ID == a.ID {
		t.Error("different seed shares a job id")
	}
	// And its cells are indexed under that seed, not over the default
	// run's: the same unit key resolves per (scale, seed).
	if fin := poll(t, ts, c.ID); fin.Status != "done" {
		t.Fatalf("seed-7 job: %+v", fin)
	}
	_, def := get(t, ts, "/cells/svc")
	_, alt := get(t, ts, "/cells/svc?seed=7")
	if bytes.Equal(def, alt) {
		t.Error("seed-7 cell shadowed or shadowed by the default-seed cell")
	}
	if code, _ := get(t, ts, "/cells/svc?seed=bogus"); code != http.StatusBadRequest {
		t.Error("non-numeric seed accepted")
	}
}

// A shared store makes the second distinct-but-overlapping submission
// serve from cache.
func TestServeSharedStoreAcrossJobs(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{Store: st})
	a := submit(t, ts, `{"spec": `+testSpec+`}`)
	if fin := poll(t, ts, a.ID); fin.Status != "done" {
		t.Fatalf("first job: %+v", fin)
	}
	cold := st.Stats()
	if cold.Puts == 0 {
		t.Fatal("first job persisted nothing")
	}
	// Same spec, different seed → different job, same store; now rerun
	// the identical spec under a different scale label? No — rerun the
	// exact spec via a fresh server (a "restarted daemon") instead.
	ts2 := newTestServer(t, Config{Store: st})
	b := submit(t, ts2, `{"spec": `+testSpec+`}`)
	if fin := poll(t, ts2, b.ID); fin.Status != "done" {
		t.Fatalf("second job: %+v", fin)
	}
	warm := st.Stats()
	if warm.Puts != cold.Puts {
		t.Errorf("restarted daemon recomputed cells: %+v -> %+v", cold, warm)
	}
	if warm.Hits() == cold.Hits() {
		t.Error("restarted daemon never consulted the store")
	}
}

func TestServeValidation(t *testing.T) {
	ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{"empty body", ``},
		{"no spec", `{}`},
		{"invalid spec", `{"spec": {"name": ""}}`},
		{"unknown spec field", `{"spec": {"name": "x", "sizzes": [2]}}`},
		{"unknown request field", `{"spec": {"name": "x"}, "sale": "tiny"}`},
		{"bad scale", `{"spec": {"name": "x"}, "scale": "huge"}`},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", c.name, resp.StatusCode)
		}
	}

	if code, _ := get(t, ts, "/campaigns/nope"); code != http.StatusNotFound {
		t.Errorf("unknown campaign status = %d, want 404", code)
	}
	if code, _ := get(t, ts, "/campaigns/nope/result"); code != http.StatusNotFound {
		t.Errorf("unknown result status = %d, want 404", code)
	}
	if code, _ := get(t, ts, "/cells/never/ran"); code != http.StatusNotFound {
		t.Errorf("unknown cell status = %d, want 404", code)
	}
}

func TestServeHealthz(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{Store: st})
	code, body := get(t, ts, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	var h health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Store == nil {
		t.Errorf("healthz = %+v, want ok with store stats", h)
	}
}

// Bounded concurrency: MaxRuns=1 serializes executions but completes
// them all.
func TestServeBoundedConcurrency(t *testing.T) {
	ts := newTestServer(t, Config{MaxRuns: 1})
	var ids []string
	for i := 0; i < 3; i++ {
		st := submit(t, ts, fmt.Sprintf(`{"spec": %s, "seed": %d}`, testSpec, 100+i))
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if fin := poll(t, ts, id); fin.Status != "done" {
			t.Errorf("job %s: %+v", id, fin)
		}
	}
}

// Finished jobs beyond MaxJobs are evicted — result and cell index —
// while newer jobs keep serving; shared cell keys survive as long as a
// retained job references them.
func TestServeEvictsOldFinishedJobs(t *testing.T) {
	ts := newTestServer(t, Config{MaxJobs: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		st := submit(t, ts, fmt.Sprintf(`{"spec": %s, "seed": %d}`, testSpec, 200+i))
		if fin := poll(t, ts, st.ID); fin.Status != "done" {
			t.Fatalf("job %d: %+v", i, fin)
		}
		ids = append(ids, st.ID)
	}
	if code, _ := get(t, ts, "/campaigns/"+ids[0]); code != http.StatusNotFound {
		t.Errorf("oldest job should be evicted, got %d", code)
	}
	for _, id := range ids[1:] {
		if code, _ := get(t, ts, "/campaigns/"+id+"/result"); code != http.StatusOK {
			t.Errorf("retained job %s lost its result: %d", id, code)
		}
	}
	// Retained jobs' cells stay served (scoped by their seed); the
	// evicted job's cell is gone.
	if code, _ := get(t, ts, "/cells/svc?seed=201"); code != http.StatusOK {
		t.Errorf("retained job's cell not served: %d", code)
	}
	if code, _ := get(t, ts, "/cells/svc?seed=200"); code != http.StatusNotFound {
		t.Errorf("evicted job's cell still served: %d", code)
	}
	// Resubmitting the evicted spec is accepted as a fresh job.
	re := submit(t, ts, fmt.Sprintf(`{"spec": %s, "seed": 200}`, testSpec))
	if re.ID != ids[0] {
		t.Errorf("resubmission id = %s, want %s (content-derived)", re.ID, ids[0])
	}
	if fin := poll(t, ts, re.ID); fin.Status != "done" {
		t.Errorf("resubmitted job: %+v", fin)
	}
}
