package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/vcabench/vcabench/internal/core"
	"github.com/vcabench/vcabench/internal/report"
	"github.com/vcabench/vcabench/internal/store"
)

// testSpec is a one-cell campaign, cheap enough for HTTP tests.
const testSpec = `{"name": "svc", "platforms": ["zoom"]}`

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	if cfg.Scale.Name == "" {
		cfg.Scale = core.TinyScale
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// submit POSTs a spec and returns the decoded status.
func submit(t *testing.T, ts *httptest.Server, body string) jobStatus {
	t.Helper()
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// poll waits for the job to finish and returns its terminal status.
func poll(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st jobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Status == "done" || st.Status == "failed" {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("campaign did not finish in time")
	return jobStatus{}
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// The acceptance criterion: the daemon returns the same bytes for a
// spec as the direct CLI/library path at the same scale and seed.
func TestServeResultMatchesDirectPath(t *testing.T) {
	ts := newTestServer(t, Config{})
	st := submit(t, ts, `{"spec": `+testSpec+`}`)
	if st.Status == "failed" {
		t.Fatalf("submit failed: %s", st.Error)
	}
	if fin := poll(t, ts, st.ID); fin.Status != "done" || fin.Cells != 1 {
		t.Fatalf("terminal status = %+v", fin)
	}
	code, body := get(t, ts, "/campaigns/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result status = %d: %s", code, body)
	}

	spec, err := core.ParseCampaign([]byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunCampaign(core.NewTestbed(42), spec, core.TinyScale)
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := report.WriteJSON(&direct, res); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, direct.Bytes()) {
		t.Errorf("daemon result differs from direct path:\n--- daemon ---\n%s\n--- direct ---\n%s", body, direct.Bytes())
	}

	// Per-cell lookup serves the same cell the document holds.
	code, cell := get(t, ts, "/cells/svc")
	if code != http.StatusOK {
		t.Fatalf("cell status = %d: %s", code, cell)
	}
	var got core.CellResult
	if err := json.Unmarshal(cell, &got); err != nil {
		t.Fatal(err)
	}
	if got.Key != "svc" || got.Platform != "zoom" || got.PSNR == nil {
		t.Errorf("cell lookup = %+v", got)
	}
}

// Resubmitting a spec returns the existing job: same id, no recompute.
func TestServeDedupesIdenticalSpecs(t *testing.T) {
	ts := newTestServer(t, Config{})
	a := submit(t, ts, `{"spec": `+testSpec+`}`)
	poll(t, ts, a.ID)
	b := submit(t, ts, `{"spec": `+testSpec+`}`)
	if a.ID != b.ID {
		t.Errorf("identical specs got different ids: %s vs %s", a.ID, b.ID)
	}
	// Different seed or scale is a different job.
	c := submit(t, ts, `{"spec": `+testSpec+`, "seed": 7}`)
	if c.ID == a.ID {
		t.Error("different seed shares a job id")
	}
	// And its cells are indexed under that seed, not over the default
	// run's: the same unit key resolves per (scale, seed).
	if fin := poll(t, ts, c.ID); fin.Status != "done" {
		t.Fatalf("seed-7 job: %+v", fin)
	}
	_, def := get(t, ts, "/cells/svc")
	_, alt := get(t, ts, "/cells/svc?seed=7")
	if bytes.Equal(def, alt) {
		t.Error("seed-7 cell shadowed or shadowed by the default-seed cell")
	}
	if code, _ := get(t, ts, "/cells/svc?seed=bogus"); code != http.StatusBadRequest {
		t.Error("non-numeric seed accepted")
	}
}

// A shared store makes the second distinct-but-overlapping submission
// serve from cache.
func TestServeSharedStoreAcrossJobs(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{Store: st})
	a := submit(t, ts, `{"spec": `+testSpec+`}`)
	if fin := poll(t, ts, a.ID); fin.Status != "done" {
		t.Fatalf("first job: %+v", fin)
	}
	cold := st.Stats()
	if cold.Puts == 0 {
		t.Fatal("first job persisted nothing")
	}
	// Same spec, different seed → different job, same store; now rerun
	// the identical spec under a different scale label? No — rerun the
	// exact spec via a fresh server (a "restarted daemon") instead.
	ts2 := newTestServer(t, Config{Store: st})
	b := submit(t, ts2, `{"spec": `+testSpec+`}`)
	if fin := poll(t, ts2, b.ID); fin.Status != "done" {
		t.Fatalf("second job: %+v", fin)
	}
	warm := st.Stats()
	if warm.Puts != cold.Puts {
		t.Errorf("restarted daemon recomputed cells: %+v -> %+v", cold, warm)
	}
	if warm.Hits() == cold.Hits() {
		t.Error("restarted daemon never consulted the store")
	}
}

func TestServeValidation(t *testing.T) {
	ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{"empty body", ``},
		{"no spec", `{}`},
		{"invalid spec", `{"spec": {"name": ""}}`},
		{"unknown spec field", `{"spec": {"name": "x", "sizzes": [2]}}`},
		{"unknown request field", `{"spec": {"name": "x"}, "sale": "tiny"}`},
		{"bad scale", `{"spec": {"name": "x"}, "scale": "huge"}`},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", c.name, resp.StatusCode)
		}
	}

	if code, _ := get(t, ts, "/campaigns/nope"); code != http.StatusNotFound {
		t.Errorf("unknown campaign status = %d, want 404", code)
	}
	if code, _ := get(t, ts, "/campaigns/nope/result"); code != http.StatusNotFound {
		t.Errorf("unknown result status = %d, want 404", code)
	}
	if code, _ := get(t, ts, "/cells/never/ran"); code != http.StatusNotFound {
		t.Errorf("unknown cell status = %d, want 404", code)
	}
}

func TestServeHealthz(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{Store: st})
	code, body := get(t, ts, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	var h health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Store == nil {
		t.Errorf("healthz = %+v, want ok with store stats", h)
	}
}

// POST /units is the distributed-execution worker endpoint: it must
// return exactly the canonical cell encoding core produces for the
// same (spec, scale, seed, key).
func TestServeUnitEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	post := func(body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/units", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf.Bytes()
	}

	code, got := post(`{"spec": ` + testSpec + `, "scale": "tiny", "seed": 42, "key": "svc"}`)
	if code != http.StatusOK {
		t.Fatalf("unit status = %d: %s", code, got)
	}
	spec, err := core.ParseCampaign([]byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.RunCampaignUnit(core.NewTestbed(42), spec, core.TinyScale, "svc")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("unit endpoint bytes differ from core.RunCampaignUnit")
	}

	// Omitted scale and seed fall back to the server defaults (tiny/42
	// in this harness), so the bytes must match too.
	if _, def := post(`{"spec": ` + testSpec + `, "key": "svc"}`); !bytes.Equal(def, want) {
		t.Error("defaulted unit differs from explicit scale/seed")
	}

	for name, body := range map[string]string{
		"empty body":    ``,
		"no spec":       `{"key": "svc"}`,
		"no key":        `{"spec": ` + testSpec + `}`,
		"unknown key":   `{"spec": ` + testSpec + `, "key": "svc/nope"}`,
		"bad scale":     `{"spec": ` + testSpec + `, "key": "svc", "scale": "huge"}`,
		"invalid spec":  `{"spec": {"name": ""}, "key": "svc"}`,
		"unknown field": `{"spec": ` + testSpec + `, "key": "svc", "kee": 1}`,
	} {
		if code, body := post(body); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", name, code, body)
		}
	}
}

// Units share the worker's persistent store: a repeated unit costs a
// store read, not a recompute, and a cell computed by a daemon
// campaign is free for unit requests (and vice versa).
func TestServeUnitSharesStore(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{Store: st})
	body := `{"spec": ` + testSpec + `, "scale": "tiny", "seed": 42, "key": "svc"}`
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/units", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("unit %d: status %d", i, resp.StatusCode)
		}
	}
	s := st.Stats()
	if s.Puts != 1 {
		t.Errorf("two identical units persisted %d cells, want 1 (second served warm)", s.Puts)
	}
	if s.Hits() == 0 {
		t.Error("repeated unit never consulted the store")
	}
}

// Satellite: /cells falls back to the persistent store, so cells
// survive a daemon restart (fresh Server, same store directory).
func TestServeCellStoreFallbackAcrossRestart(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{Store: st})
	a := submit(t, ts, `{"spec": `+testSpec+`}`)
	if fin := poll(t, ts, a.ID); fin.Status != "done" {
		t.Fatalf("job: %+v", fin)
	}
	_, want := get(t, ts, "/cells/svc")

	// "Restart": a fresh daemon over the same store has no in-memory
	// index, but the cell must still be served — byte-identically.
	ts2 := newTestServer(t, Config{Store: st})
	code, got := get(t, ts2, "/cells/svc")
	if code != http.StatusOK {
		t.Fatalf("restarted daemon lost the cell: %d (%s)", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Error("store-fallback cell differs from the indexed one")
	}
	// Wrong seed still misses.
	if code, _ := get(t, ts2, "/cells/svc?seed=999"); code != http.StatusNotFound {
		t.Errorf("unknown seed served from fallback: %d", code)
	}
}

// Satellite: /cells survives MaxJobs eviction when a store is
// attached — the index entry is gone but the store still serves it.
func TestServeCellStoreFallbackAfterEviction(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{Store: st, MaxJobs: 1})
	for i := 0; i < 2; i++ {
		job := submit(t, ts, fmt.Sprintf(`{"spec": %s, "seed": %d}`, testSpec, 300+i))
		if fin := poll(t, ts, job.ID); fin.Status != "done" {
			t.Fatalf("job %d: %+v", i, fin)
		}
	}
	// Job seed=300 is evicted from memory; its cell comes off disk.
	if code, _ := get(t, ts, "/cells/svc?seed=300"); code != http.StatusOK {
		t.Errorf("evicted job's cell not served from the store: %d", code)
	}
}

// Satellite: finish() refcounting. Two jobs share a cell key (same
// spec modulo description — descriptions change the job id but not
// unit keys or cell bytes); evicting one must keep the shared cell
// served and must not leak refcount entries.
func TestServeFinishEvictionRefcounting(t *testing.T) {
	srv := New(Config{Scale: core.TinyScale, Seed: 42, MaxJobs: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	a := submit(t, ts, `{"spec": `+testSpec+`}`)
	b := submit(t, ts, `{"spec": {"name": "svc", "platforms": ["zoom"], "description": "twin"}}`)
	if a.ID == b.ID {
		t.Fatal("description should produce a distinct job id")
	}
	poll(t, ts, a.ID)
	poll(t, ts, b.ID)

	srv.mu.Lock()
	if got := srv.cellRefs[cellIndexKey("tiny", 42, "svc")]; got != 2 {
		t.Errorf("shared cell refcount = %d, want 2", got)
	}
	srv.mu.Unlock()

	// A third job (distinct seed) evicts job a; the shared cell must
	// survive with refcount 1.
	c := submit(t, ts, `{"spec": `+testSpec+`, "seed": 7}`)
	poll(t, ts, c.ID)
	if code, _ := get(t, ts, "/campaigns/"+a.ID); code != http.StatusNotFound {
		t.Fatalf("oldest job not evicted: %d", code)
	}
	if code, _ := get(t, ts, "/cells/svc"); code != http.StatusOK {
		t.Error("cell shared with a retained job was dropped on eviction")
	}
	srv.mu.Lock()
	if got := srv.cellRefs[cellIndexKey("tiny", 42, "svc")]; got != 1 {
		t.Errorf("refcount after evicting one sharer = %d, want 1", got)
	}
	srv.mu.Unlock()

	// Evict the remaining sharer too: the cell and its refcount entry
	// must both disappear — a leaked entry here grows forever in a
	// long-lived daemon.
	d := submit(t, ts, `{"spec": `+testSpec+`, "seed": 8}`)
	poll(t, ts, d.ID)
	if code, _ := get(t, ts, "/cells/svc"); code != http.StatusNotFound {
		t.Error("cell with no retaining jobs still served")
	}
	srv.mu.Lock()
	if n := len(srv.cellRefs); n != len(srv.cells) {
		t.Errorf("cellRefs has %d entries, cells has %d — refcount map leaking", n, len(srv.cells))
	}
	for ck, n := range srv.cellRefs {
		if n <= 0 {
			t.Errorf("leaked zero refcount for %q", ck)
		}
	}
	if _, ok := srv.cellRefs[cellIndexKey("tiny", 42, "svc")]; ok {
		t.Error("evicted cell's refcount entry leaked")
	}
	srv.mu.Unlock()
}

// DrainJobs returns only after every submitted campaign is terminal.
func TestServeDrainJobs(t *testing.T) {
	srv := New(Config{Scale: core.TinyScale, Seed: 42})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, submit(t, ts, fmt.Sprintf(`{"spec": %s, "seed": %d}`, testSpec, 400+i)).ID)
	}
	srv.DrainJobs()
	for _, id := range ids {
		srv.mu.Lock()
		status := srv.jobs[id].status
		srv.mu.Unlock()
		if status != "done" && status != "failed" {
			t.Errorf("job %s still %q after DrainJobs", id, status)
		}
	}
}

// Jobs must list the same job set identically on every call: the map
// backing it iterates in random order, so an unsorted listing leaks
// scheduler state into what debugging tools and tests observe
// (vcalint maprange regression).
func TestServeJobsListingDeterministic(t *testing.T) {
	srv := New(Config{Scale: core.TinyScale, Seed: 42})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	for i := 0; i < 5; i++ {
		submit(t, ts, fmt.Sprintf(`{"spec": %s, "seed": %d}`, testSpec, 500+i))
	}
	srv.DrainJobs()
	first, err := json.Marshal(srv.Jobs())
	if err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(srv.Jobs())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("Jobs() not stable across calls:\n%s\n%s", first, second)
	}
	ids := srv.Jobs()
	if len(ids) != 5 {
		t.Fatalf("Jobs() returned %d ids, want 5", len(ids))
	}
	if !sort.StringsAreSorted(ids) {
		t.Errorf("Jobs() not sorted: %q", ids)
	}
}

// Bounded concurrency: MaxRuns=1 serializes executions but completes
// them all.
func TestServeBoundedConcurrency(t *testing.T) {
	ts := newTestServer(t, Config{MaxRuns: 1})
	var ids []string
	for i := 0; i < 3; i++ {
		st := submit(t, ts, fmt.Sprintf(`{"spec": %s, "seed": %d}`, testSpec, 100+i))
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if fin := poll(t, ts, id); fin.Status != "done" {
			t.Errorf("job %s: %+v", id, fin)
		}
	}
}

// Finished jobs beyond MaxJobs are evicted — result and cell index —
// while newer jobs keep serving; shared cell keys survive as long as a
// retained job references them.
func TestServeEvictsOldFinishedJobs(t *testing.T) {
	ts := newTestServer(t, Config{MaxJobs: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		st := submit(t, ts, fmt.Sprintf(`{"spec": %s, "seed": %d}`, testSpec, 200+i))
		if fin := poll(t, ts, st.ID); fin.Status != "done" {
			t.Fatalf("job %d: %+v", i, fin)
		}
		ids = append(ids, st.ID)
	}
	if code, _ := get(t, ts, "/campaigns/"+ids[0]); code != http.StatusNotFound {
		t.Errorf("oldest job should be evicted, got %d", code)
	}
	for _, id := range ids[1:] {
		if code, _ := get(t, ts, "/campaigns/"+id+"/result"); code != http.StatusOK {
			t.Errorf("retained job %s lost its result: %d", id, code)
		}
	}
	// Retained jobs' cells stay served (scoped by their seed); the
	// evicted job's cell is gone.
	if code, _ := get(t, ts, "/cells/svc?seed=201"); code != http.StatusOK {
		t.Errorf("retained job's cell not served: %d", code)
	}
	if code, _ := get(t, ts, "/cells/svc?seed=200"); code != http.StatusNotFound {
		t.Errorf("evicted job's cell still served: %d", code)
	}
	// Resubmitting the evicted spec is accepted as a fresh job.
	re := submit(t, ts, fmt.Sprintf(`{"spec": %s, "seed": 200}`, testSpec))
	if re.ID != ids[0] {
		t.Errorf("resubmission id = %s, want %s (content-derived)", re.ID, ids[0])
	}
	if fin := poll(t, ts, re.ID); fin.Status != "done" {
		t.Errorf("resubmitted job: %+v", fin)
	}
}

// A replicated campaign submitted to the daemon: the result document
// matches the direct path (repeats header, replicas blocks, ±CI
// metrics), and per-cell lookups serve the aggregated cell under its
// bare cell key.
func TestServeReplicatedCampaign(t *testing.T) {
	const repSpec = `{"name": "srep", "platforms": ["zoom"], "repeats": 3}`
	ts := newTestServer(t, Config{})
	st := submit(t, ts, `{"spec": `+repSpec+`}`)
	if st.Status == "failed" {
		t.Fatalf("submit failed: %s", st.Error)
	}
	if fin := poll(t, ts, st.ID); fin.Status != "done" || fin.Cells != 1 {
		t.Fatalf("terminal status = %+v", fin)
	}
	code, body := get(t, ts, "/campaigns/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result status = %d: %s", code, body)
	}

	spec, err := core.ParseCampaign([]byte(repSpec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunCampaign(core.NewTestbed(42), spec, core.TinyScale)
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := report.WriteJSON(&direct, res); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, direct.Bytes()) {
		t.Errorf("daemon replicated result differs from direct path:\n--- daemon ---\n%s\n--- direct ---\n%s", body, direct.Bytes())
	}

	// The cell index serves the aggregated cell by its bare key.
	code, cell := get(t, ts, "/cells/srep")
	if code != http.StatusOK {
		t.Fatalf("cell status = %d: %s", code, cell)
	}
	var got core.CellResult
	if err := json.Unmarshal(cell, &got); err != nil {
		t.Fatal(err)
	}
	if got.Key != "srep" || len(got.Replicas) != 3 {
		t.Errorf("replicated cell lookup = %+v", got)
	}
	if got.PSNR == nil || got.PSNR.Reps != 3 || got.PSNR.CI95 == nil {
		t.Errorf("replicated cell metrics = %+v", got.PSNR)
	}
}
