// Package cluster turns a fleet of vcabenchd processes into one
// logical campaign scheduler. A Pool implements core.Dispatcher by
// sharding campaign unit keys across workers over the daemon's
// POST /units endpoint: each unit has a preferred worker derived from
// its key (so reruns hit the same worker's warm store), in-flight
// requests are bounded per worker, failures retry on the next worker
// with exponential backoff, and a worker that errors enters a cooldown
// during which it is skipped — it rejoins only after a successful
// /healthz probe.
//
// The merge back into a CampaignResult happens in core's scheduler
// seam (see internal/core/dispatch.go): the pool only moves the cell
// store's canonical gob encoding over the wire. Because every cell's
// seed derives from its unit key, placement cannot leak into results —
// the merged document is byte-identical to a single-machine run for
// any fleet size, worker mix or failure pattern, including total fleet
// loss (units the pool gives up on compute locally).
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"github.com/vcabench/vcabench/internal/core"
)

// Defaults for the zero Options.
const (
	DefaultInFlight = 4
	DefaultRetries  = 3
	DefaultBackoff  = 100 * time.Millisecond
	DefaultTimeout  = 5 * time.Minute
	DefaultCooldown = 5 * time.Second
)

// Options tunes a Pool. The zero value selects the defaults above.
type Options struct {
	// InFlight bounds concurrent unit requests per worker; excess
	// dispatches for a worker queue on its slots.
	InFlight int
	// Retries is how many additional attempts a failed unit gets on
	// other (or recovered) workers before the pool hands it back for
	// local execution. Zero selects DefaultRetries; negative disables
	// retries entirely (fail over to local after the first error).
	Retries int
	// Backoff is the delay before the first retry, doubling per
	// attempt.
	Backoff time.Duration
	// Timeout bounds one unit request end to end. Units run a full
	// QoE session, so this is minutes, not seconds.
	Timeout time.Duration
	// Cooldown is how long a failed worker is skipped before a
	// /healthz probe may readmit it.
	Cooldown time.Duration
	// Client overrides the HTTP client (tests); per-request timeouts
	// are applied via contexts either way.
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.InFlight <= 0 {
		o.InFlight = DefaultInFlight
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = DefaultRetries
	}
	if o.Backoff <= 0 {
		o.Backoff = DefaultBackoff
	}
	if o.Timeout <= 0 {
		o.Timeout = DefaultTimeout
	}
	if o.Cooldown <= 0 {
		o.Cooldown = DefaultCooldown
	}
	return o
}

// errWorkerDown marks a dispatch that bailed out of a slot queue
// because the worker was marked down while the unit waited; no request
// was sent, so the worker is not re-penalized.
var errWorkerDown = errors.New("worker down")

// Pool is a worker fleet acting as one core.Dispatcher. Safe for
// concurrent use; the scheduler dispatches every missing unit of a
// campaign at once.
type Pool struct {
	workers []*worker
	opt     Options
	client  *http.Client

	remote    atomic.Uint64 // units served by the fleet
	errored   atomic.Uint64 // failed unit attempts (retried or given up)
	fallbacks atomic.Uint64 // units handed back for local execution
}

// worker is one vcabenchd endpoint plus its health and traffic state.
type worker struct {
	url   string
	slots chan struct{} // bounds in-flight unit requests

	state atomic.Pointer[workerState]

	done atomic.Uint64
	errs atomic.Uint64
}

// workerState is the worker's health snapshot, swapped atomically.
type workerState struct {
	suspect   bool      // must pass a /healthz probe before reuse
	downUntil time.Time // skipped entirely until then
}

// New builds a Pool over vcabenchd base URLs ("http://host:8547").
func New(urls []string, opt Options) (*Pool, error) {
	if len(urls) == 0 {
		return nil, errors.New("cluster: a pool needs at least one worker URL")
	}
	p := &Pool{opt: opt.withDefaults()}
	p.client = p.opt.Client
	if p.client == nil {
		p.client = &http.Client{}
	}
	seen := make(map[string]bool, len(urls))
	for _, raw := range urls {
		u, err := url.Parse(raw)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("cluster: worker URL %q: want http(s)://host:port", raw)
		}
		base := strings.TrimRight(raw, "/")
		if seen[base] {
			return nil, fmt.Errorf("cluster: duplicate worker URL %q", base)
		}
		seen[base] = true
		w := &worker{url: base, slots: make(chan struct{}, p.opt.InFlight)}
		w.state.Store(&workerState{})
		p.workers = append(p.workers, w)
	}
	return p, nil
}

// Workers returns the configured worker base URLs in order.
func (p *Pool) Workers() []string {
	out := make([]string, len(p.workers))
	for i, w := range p.workers {
		out[i] = w.url
	}
	return out
}

// keyHash places a unit on its preferred worker. Placement is pure
// optimization (store affinity plus load spread): results never depend
// on it. FNV's low bits avalanche poorly — sibling campaign keys can
// all share a parity, starving half a fleet — so the sum is finalized
// murmur3-style before the "% len(workers)" fold.
func keyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// DispatchUnit implements core.Dispatcher: run one campaign cell on
// the fleet, trying the key's preferred worker first and failing over
// to the others with exponential backoff. An error means the caller
// should compute the unit locally.
func (p *Pool) DispatchUnit(req core.UnitRequest) ([]byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		p.fallbacks.Add(1)
		return nil, fmt.Errorf("cluster: encode unit request: %w", err)
	}
	start := int(keyHash(req.Key) % uint64(len(p.workers)))
	backoff := p.opt.Backoff
	var lastErr error
	for attempt := 0; attempt <= p.opt.Retries; attempt++ {
		w := p.pick(start + attempt)
		if w == nil {
			lastErr = fmt.Errorf("all %d workers down", len(p.workers))
			break
		}
		data, err := p.runUnit(w, body)
		if err == nil {
			w.done.Add(1)
			p.remote.Add(1)
			return data, nil
		}
		lastErr = err
		p.errored.Add(1)
		if errors.Is(err, errWorkerDown) {
			// Siblings already marked the worker down while this unit
			// sat in its slot queue; move on without re-penalizing it
			// or paying backoff — nothing was actually sent.
			continue
		}
		w.errs.Add(1)
		w.markDown(p.opt.Cooldown)
		if attempt < p.opt.Retries {
			time.Sleep(backoff)
			backoff *= 2
		}
	}
	p.fallbacks.Add(1)
	return nil, fmt.Errorf("cluster: unit %q: %w", req.Key, lastErr)
}

// pick scans the fleet from the given offset and returns the first
// worker available to take a unit, or nil when every worker is in
// cooldown or failed its readmission probe.
func (p *Pool) pick(from int) *worker {
	n := len(p.workers)
	for i := 0; i < n; i++ {
		w := p.workers[(from+i)%n]
		if p.available(w) {
			return w
		}
	}
	return nil
}

// runUnit posts one unit to one worker under its in-flight bound and
// returns the cell encoding.
func (p *Pool) runUnit(w *worker, body []byte) ([]byte, error) {
	w.slots <- struct{}{}
	defer func() { <-w.slots }()

	// The wait in the slot queue may have outlived the worker: a unit
	// that committed to this worker while it was healthy must fail
	// over immediately once siblings have marked it down, instead of
	// burning a full request timeout on a known-dead endpoint.
	if !p.available(w) {
		return nil, fmt.Errorf("%s: %w while queued", w.url, errWorkerDown)
	}

	ctx, cancel := context.WithTimeout(context.Background(), p.opt.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/units", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.url, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("%s: read cell: %w", w.url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", w.url, resp.Status, firstLine(data))
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("%s: empty cell response", w.url)
	}
	return data, nil
}

// firstLine keeps error bodies readable in logs.
func firstLine(data []byte) string {
	s := strings.TrimSpace(string(data))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}

// Stats counts pool traffic since New.
type Stats struct {
	// Remote is the number of units a worker served.
	Remote uint64
	// Errors is the number of failed unit attempts (each may have been
	// retried elsewhere).
	Errors uint64
	// Fallbacks is the number of units the pool gave up on; core
	// computed those locally.
	Fallbacks uint64
	// Workers breaks traffic down per worker, in configuration order.
	Workers []WorkerStats
}

// WorkerStats is one worker's share of the pool traffic.
type WorkerStats struct {
	URL  string
	Done uint64
	Errs uint64
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() Stats {
	st := Stats{
		Remote:    p.remote.Load(),
		Errors:    p.errored.Load(),
		Fallbacks: p.fallbacks.Load(),
	}
	for _, w := range p.workers {
		st.Workers = append(st.Workers, WorkerStats{URL: w.url, Done: w.done.Load(), Errs: w.errs.Load()})
	}
	return st
}
