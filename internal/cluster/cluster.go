// Package cluster turns a fleet of vcabenchd processes into one
// logical campaign scheduler. A Pool implements core.Dispatcher by
// sharding campaign unit keys across workers over the daemon's
// POST /units endpoint: each unit has a preferred worker derived from
// its key (so reruns hit the same worker's warm store), in-flight
// requests are bounded per worker, failures retry on the next worker
// with exponential backoff, and a worker that errors enters a cooldown
// during which it is skipped — it rejoins only after a successful
// /healthz probe.
//
// The merge back into a CampaignResult happens in core's scheduler
// seam (see internal/core/dispatch.go): the pool only moves the cell
// store's canonical gob encoding over the wire. Because every cell's
// seed derives from its unit key, placement cannot leak into results —
// the merged document is byte-identical to a single-machine run for
// any fleet size, worker mix or failure pattern, including total fleet
// loss (units the pool gives up on compute locally).
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/vcabench/vcabench/internal/core"
	"github.com/vcabench/vcabench/internal/obs"
)

// Defaults for the zero Options.
const (
	DefaultInFlight = 4
	DefaultRetries  = 3
	DefaultBackoff  = 100 * time.Millisecond
	DefaultTimeout  = 5 * time.Minute
	DefaultCooldown = 5 * time.Second
)

// Options tunes a Pool. The zero value selects the defaults above.
type Options struct {
	// InFlight bounds concurrent unit requests per worker; excess
	// dispatches for a worker queue on its slots.
	InFlight int
	// Retries is how many additional attempts a failed unit gets on
	// other (or recovered) workers before the pool hands it back for
	// local execution. Zero selects DefaultRetries; negative disables
	// retries entirely (fail over to local after the first error).
	Retries int
	// Backoff is the delay before the first retry, doubling per
	// attempt.
	Backoff time.Duration
	// Timeout bounds one unit request end to end. Units run a full
	// QoE session, so this is minutes, not seconds.
	Timeout time.Duration
	// Cooldown is how long a failed worker is skipped before a
	// /healthz probe may readmit it.
	Cooldown time.Duration
	// Client overrides the HTTP client (tests); per-request timeouts
	// are applied via contexts either way.
	Client *http.Client
	// Telemetry, when set with a registry, exports the pool counters as
	// vcabench_cluster_* series. At most one Pool may export into a
	// given registry. Telemetry never changes dispatch behaviour.
	Telemetry *obs.Telemetry
}

func (o Options) withDefaults() Options {
	if o.InFlight <= 0 {
		o.InFlight = DefaultInFlight
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = DefaultRetries
	}
	if o.Backoff <= 0 {
		o.Backoff = DefaultBackoff
	}
	if o.Timeout <= 0 {
		o.Timeout = DefaultTimeout
	}
	if o.Cooldown <= 0 {
		o.Cooldown = DefaultCooldown
	}
	return o
}

// errWorkerDown marks a dispatch that bailed out of a slot queue
// because the worker was marked down while the unit waited; no request
// was sent, so the worker is not re-penalized.
var errWorkerDown = errors.New("worker down")

// Pool is a worker fleet acting as one core.Dispatcher. Safe for
// concurrent use; the scheduler dispatches every missing unit of a
// campaign at once.
type Pool struct {
	workers []*worker
	opt     Options
	client  *http.Client

	// All traffic counters — pool-wide and per-worker — live behind
	// one mutex rather than scattered atomics, so a Stats snapshot or
	// a /metrics scrape reads them at a single instant: a unit counted
	// in a worker's done can never be missing from the pool's remote
	// in the same view.
	statsMu sync.Mutex
	stats   poolCounters
}

// poolCounters is the mutable half of Stats; workers is indexed like
// Pool.workers.
type poolCounters struct {
	remote    uint64 // units served by the fleet
	errored   uint64 // failed unit attempts (retried or given up)
	fallbacks uint64 // units handed back for local execution
	retries   uint64 // extra attempts after a first failure
	workers   []workerCounters
}

// workerCounters is one worker's share of the pool traffic.
type workerCounters struct {
	done      uint64
	errs      uint64
	cooldowns uint64 // times the worker entered a failure cooldown
}

// count mutates the counters under the stats lock.
func (p *Pool) count(f func(*poolCounters)) {
	p.statsMu.Lock()
	f(&p.stats)
	p.statsMu.Unlock()
}

// worker is one vcabenchd endpoint plus its health state. Traffic
// counters live in Pool.stats (indexed by idx) so they snapshot
// consistently.
type worker struct {
	idx   int
	url   string
	slots chan struct{} // bounds in-flight unit requests

	state atomic.Pointer[workerState]
}

// workerState is the worker's health snapshot, swapped atomically.
type workerState struct {
	suspect   bool      // must pass a /healthz probe before reuse
	downUntil time.Time // skipped entirely until then
}

// New builds a Pool over vcabenchd base URLs ("http://host:8547").
func New(urls []string, opt Options) (*Pool, error) {
	if len(urls) == 0 {
		return nil, errors.New("cluster: a pool needs at least one worker URL")
	}
	p := &Pool{opt: opt.withDefaults()}
	p.client = p.opt.Client
	if p.client == nil {
		p.client = &http.Client{}
	}
	seen := make(map[string]bool, len(urls))
	for _, raw := range urls {
		u, err := url.Parse(raw)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("cluster: worker URL %q: want http(s)://host:port", raw)
		}
		base := strings.TrimRight(raw, "/")
		if seen[base] {
			return nil, fmt.Errorf("cluster: duplicate worker URL %q", base)
		}
		seen[base] = true
		w := &worker{idx: len(p.workers), url: base, slots: make(chan struct{}, p.opt.InFlight)}
		w.state.Store(&workerState{})
		p.workers = append(p.workers, w)
	}
	p.stats.workers = make([]workerCounters, len(p.workers))
	if t := p.opt.Telemetry; t != nil && t.Metrics != nil {
		t.Metrics.RegisterGroup(p.emitMetrics)
	}
	return p, nil
}

// emitMetrics exports the pool counters on each scrape. The whole
// fleet's view comes from one lock acquisition — per-worker dispatch
// counts always sum to the pool totals on the wire.
func (p *Pool) emitMetrics(g *obs.Group) {
	p.statsMu.Lock()
	st := p.stats
	st.workers = append([]workerCounters(nil), p.stats.workers...)
	p.statsMu.Unlock()

	result := func(v string) []obs.Label { return []obs.Label{{Name: "result", Value: v}} }
	g.Emit("vcabench_cluster_units_total", "Unit dispatch outcomes across the fleet.", obs.TypeCounter,
		obs.Sample{Labels: result("remote"), Value: float64(st.remote)},
		obs.Sample{Labels: result("error"), Value: float64(st.errored)},
		obs.Sample{Labels: result("fallback"), Value: float64(st.fallbacks)})
	g.Emit("vcabench_cluster_retries_total", "Extra dispatch attempts after a first failure.", obs.TypeCounter,
		obs.Sample{Value: float64(st.retries)})

	units := make([]obs.Sample, 0, 2*len(p.workers))
	cooldowns := make([]obs.Sample, 0, len(p.workers))
	inflight := make([]obs.Sample, 0, len(p.workers))
	for i, w := range p.workers {
		wl := func(res string) []obs.Label {
			l := []obs.Label{{Name: "worker", Value: w.url}}
			if res != "" {
				l = append(l, obs.Label{Name: "result", Value: res})
			}
			return l
		}
		units = append(units,
			obs.Sample{Labels: wl("done"), Value: float64(st.workers[i].done)},
			obs.Sample{Labels: wl("err"), Value: float64(st.workers[i].errs)})
		cooldowns = append(cooldowns, obs.Sample{Labels: wl(""), Value: float64(st.workers[i].cooldowns)})
		inflight = append(inflight, obs.Sample{Labels: wl(""), Value: float64(len(w.slots))})
	}
	g.Emit("vcabench_cluster_worker_units_total", "Unit requests per worker, by outcome.", obs.TypeCounter, units...)
	g.Emit("vcabench_cluster_worker_cooldowns_total", "Times a worker entered a failure cooldown.", obs.TypeCounter, cooldowns...)
	g.Emit("vcabench_cluster_worker_inflight", "Unit requests currently held by each worker's slots.", obs.TypeGauge, inflight...)
}

// Workers returns the configured worker base URLs in order.
func (p *Pool) Workers() []string {
	out := make([]string, len(p.workers))
	for i, w := range p.workers {
		out[i] = w.url
	}
	return out
}

// keyHash places a unit on its preferred worker. Placement is pure
// optimization (store affinity plus load spread): results never depend
// on it. FNV's low bits avalanche poorly — sibling campaign keys can
// all share a parity, starving half a fleet — so the sum is finalized
// murmur3-style before the "% len(workers)" fold.
func keyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// DispatchUnit implements core.Dispatcher: run one campaign cell on
// the fleet, trying the key's preferred worker first and failing over
// to the others with exponential backoff. An error means the caller
// should compute the unit locally.
func (p *Pool) DispatchUnit(req core.UnitRequest) ([]byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		p.count(func(c *poolCounters) { c.fallbacks++ })
		return nil, fmt.Errorf("cluster: encode unit request: %w", err)
	}
	start := int(keyHash(req.Key) % uint64(len(p.workers)))
	backoff := p.opt.Backoff
	var lastErr error
	for attempt := 0; attempt <= p.opt.Retries; attempt++ {
		if attempt > 0 {
			p.count(func(c *poolCounters) { c.retries++ })
		}
		w := p.pick(start + attempt)
		if w == nil {
			lastErr = fmt.Errorf("all %d workers down", len(p.workers))
			break
		}
		data, err := p.runUnit(w, body)
		if err == nil {
			p.count(func(c *poolCounters) {
				c.remote++
				c.workers[w.idx].done++
			})
			return data, nil
		}
		lastErr = err
		if errors.Is(err, errWorkerDown) {
			// Siblings already marked the worker down while this unit
			// sat in its slot queue; move on without re-penalizing it
			// or paying backoff — nothing was actually sent.
			p.count(func(c *poolCounters) { c.errored++ })
			continue
		}
		p.count(func(c *poolCounters) {
			c.errored++
			c.workers[w.idx].errs++
			c.workers[w.idx].cooldowns++
		})
		w.markDown(p.opt.Cooldown)
		if attempt < p.opt.Retries {
			time.Sleep(backoff)
			backoff *= 2
		}
	}
	p.count(func(c *poolCounters) { c.fallbacks++ })
	return nil, fmt.Errorf("cluster: unit %q: %w", req.Key, lastErr)
}

// pick scans the fleet from the given offset and returns the first
// worker available to take a unit, or nil when every worker is in
// cooldown or failed its readmission probe.
func (p *Pool) pick(from int) *worker {
	n := len(p.workers)
	for i := 0; i < n; i++ {
		w := p.workers[(from+i)%n]
		if p.available(w) {
			return w
		}
	}
	return nil
}

// runUnit posts one unit to one worker under its in-flight bound and
// returns the cell encoding.
func (p *Pool) runUnit(w *worker, body []byte) ([]byte, error) {
	w.slots <- struct{}{}
	defer func() { <-w.slots }()

	// The wait in the slot queue may have outlived the worker: a unit
	// that committed to this worker while it was healthy must fail
	// over immediately once siblings have marked it down, instead of
	// burning a full request timeout on a known-dead endpoint.
	if !p.available(w) {
		return nil, fmt.Errorf("%s: %w while queued", w.url, errWorkerDown)
	}

	ctx, cancel := context.WithTimeout(context.Background(), p.opt.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/units", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.url, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("%s: read cell: %w", w.url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", w.url, resp.Status, firstLine(data))
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("%s: empty cell response", w.url)
	}
	return data, nil
}

// firstLine keeps error bodies readable in logs.
func firstLine(data []byte) string {
	s := strings.TrimSpace(string(data))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}

// Stats counts pool traffic since New.
type Stats struct {
	// Remote is the number of units a worker served.
	Remote uint64
	// Errors is the number of failed unit attempts (each may have been
	// retried elsewhere).
	Errors uint64
	// Fallbacks is the number of units the pool gave up on; core
	// computed those locally.
	Fallbacks uint64
	// Retries is the number of extra attempts made after a first
	// failure (every retry is also counted in Errors if it fails).
	Retries uint64
	// Workers breaks traffic down per worker, in configuration order.
	Workers []WorkerStats
}

// WorkerStats is one worker's share of the pool traffic.
type WorkerStats struct {
	URL       string
	Done      uint64
	Errs      uint64
	Cooldowns uint64
}

// Stats snapshots the pool counters at a single instant — taken under
// one lock, so per-worker counts always sum to the pool totals.
func (p *Pool) Stats() Stats {
	p.statsMu.Lock()
	defer p.statsMu.Unlock()
	st := Stats{
		Remote:    p.stats.remote,
		Errors:    p.stats.errored,
		Fallbacks: p.stats.fallbacks,
		Retries:   p.stats.retries,
	}
	for i, w := range p.workers {
		c := p.stats.workers[i]
		st.Workers = append(st.Workers, WorkerStats{URL: w.url, Done: c.done, Errs: c.errs, Cooldowns: c.cooldowns})
	}
	return st
}
