package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/vcabench/vcabench/internal/core"
	"github.com/vcabench/vcabench/internal/obs"
)

// unitEcho is a minimal /units worker that returns a fixed payload,
// cheap enough to hammer in the race test.
func unitEcho(t *testing.T, fail func() bool) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprint(w, "{}")
			return
		}
		if fail != nil && fail() {
			http.Error(w, "induced failure", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("cellbytes"))
	}))
	t.Cleanup(ts.Close)
	return ts
}

// A telemetry-armed pool exports fleet counters whose per-worker
// breakdown sums to the pool totals in every scrape.
func TestPoolMetrics(t *testing.T) {
	w1, w2 := unitEcho(t, nil), unitEcho(t, nil)
	tel := obs.NewTelemetry()
	opt := testOptions()
	opt.Telemetry = tel
	p, err := New([]string{w1.URL, w2.URL}, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := p.DispatchUnit(core.UnitRequest{Key: "k" + strconv.Itoa(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	if err := tel.Metrics.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`vcabench_cluster_units_total{result="remote"} 10`,
		`vcabench_cluster_units_total{result="error"} 0`,
		`vcabench_cluster_units_total{result="fallback"} 0`,
		"vcabench_cluster_retries_total 0",
		`vcabench_cluster_worker_cooldowns_total{worker="` + w1.URL + `"} 0`,
		`vcabench_cluster_worker_inflight{worker="` + w1.URL + `"} 0`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	if probs := obs.LintText([]byte(text)); len(probs) != 0 {
		t.Errorf("lint problems: %v", probs)
	}
	var done float64
	for _, url := range []string{w1.URL, w2.URL} {
		line := `vcabench_cluster_worker_units_total{worker="` + url + `",result="done"} `
		// Label order within a series follows emission order (worker,
		// result); find the series and read its value.
		i := strings.Index(text, line)
		if i < 0 {
			t.Fatalf("missing per-worker done series for %s in:\n%s", url, text)
		}
		rest := text[i+len(line):]
		v, err := strconv.ParseFloat(rest[:strings.IndexByte(rest, '\n')], 64)
		if err != nil {
			t.Fatal(err)
		}
		done += v
	}
	if done != 10 {
		t.Errorf("per-worker done sums to %g, want 10", done)
	}
}

// Failed attempts show up in errors, retries and cooldowns, and Stats
// agrees with the scrape.
func TestPoolMetricsFailures(t *testing.T) {
	w1 := unitEcho(t, func() bool { return true })
	tel := obs.NewTelemetry()
	opt := testOptions()
	opt.Telemetry = tel
	opt.Retries = 2
	opt.Cooldown = time.Nanosecond // readmit instantly: every retry re-attempts
	p, err := New([]string{w1.URL}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.DispatchUnit(core.UnitRequest{Key: "k"}); err == nil {
		t.Fatal("want dispatch failure")
	}
	st := p.Stats()
	if st.Fallbacks != 1 || st.Errors == 0 || st.Retries == 0 {
		t.Errorf("stats = %+v, want 1 fallback with errors and retries", st)
	}
	if st.Workers[0].Cooldowns == 0 {
		t.Errorf("worker never entered cooldown: %+v", st.Workers[0])
	}
	var b strings.Builder
	if err := tel.Metrics.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, `vcabench_cluster_units_total{result="fallback"} 1`+"\n") {
		t.Errorf("fallback not exported:\n%s", text)
	}
	if !strings.Contains(text, fmt.Sprintf("vcabench_cluster_retries_total %d\n", st.Retries)) {
		t.Errorf("retries_total disagrees with Stats (%d):\n%s", st.Retries, text)
	}
}

// The torn-view regression test: hammer dispatch from many goroutines
// while scraping and snapshotting concurrently. Under -race this
// catches unsynchronized counter access; the invariant checks catch
// views where per-worker counts drifted from pool totals.
func TestPoolStatsNoTornViews(t *testing.T) {
	w1, w2 := unitEcho(t, nil), unitEcho(t, nil)
	tel := obs.NewTelemetry()
	opt := testOptions()
	opt.Telemetry = tel
	p, err := New([]string{w1.URL, w2.URL}, opt)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p.DispatchUnit(core.UnitRequest{Key: fmt.Sprintf("k%d-%d", g, i)})
			}
		}(g)
	}
	var scrapes sync.WaitGroup
	for s := 0; s < 4; s++ {
		scrapes.Add(1)
		go func() {
			defer scrapes.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := p.Stats()
				var done, errs uint64
				for _, w := range st.Workers {
					done += w.Done
					errs += w.Errs
				}
				// The single-lock snapshot invariant: per-worker sums
				// can never exceed the pool totals in the same view.
				if done > st.Remote || errs > st.Errors {
					t.Errorf("torn stats view: workers done=%d errs=%d vs pool remote=%d errors=%d",
						done, errs, st.Remote, st.Errors)
					return
				}
				var b strings.Builder
				if err := tel.Metrics.WriteText(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrapes.Wait()
	st := p.Stats()
	if st.Remote != 400 {
		t.Errorf("remote = %d, want 400", st.Remote)
	}
	var done uint64
	for _, w := range st.Workers {
		done += w.Done
	}
	if done != st.Remote {
		t.Errorf("final per-worker done %d != remote %d", done, st.Remote)
	}
}
