package cluster

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/vcabench/vcabench/internal/core"
	"github.com/vcabench/vcabench/internal/report"
	"github.com/vcabench/vcabench/internal/serve"
	"github.com/vcabench/vcabench/internal/store"
)

// testGrid is a six-cell campaign, small enough to fan across loopback
// workers quickly but wide enough that sharding actually splits it.
var testGrid = core.Campaign{
	Name:      "dist",
	Platforms: []string{"zoom", "webex", "meet"},
	Sizes:     []int{2, 3},
}

// testOptions keeps retries fast on loopback.
func testOptions() Options {
	return Options{Backoff: time.Millisecond, Cooldown: time.Minute}
}

// newWorker spins an in-process vcabenchd (optionally sharing a store).
func newWorker(t *testing.T, cs core.CellStore) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(serve.New(serve.Config{Store: cs}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// localJSON renders the campaign single-process — the reference bytes
// every distributed variant must reproduce exactly.
func localJSON(t *testing.T, seed int64) []byte {
	t.Helper()
	res, err := core.RunCampaign(core.NewTestbed(seed), testGrid, core.TinyScale)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func distributedJSON(t *testing.T, seed int64, p *Pool) []byte {
	t.Helper()
	tb := core.NewTestbed(seed).WithDispatcher(p)
	res, err := core.RunCampaign(tb, testGrid, core.TinyScale)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The acceptance criterion: a campaign sharded across two workers
// merges to the bytes of a single-machine run, with every cell served
// remotely when the fleet is healthy.
func TestDistributedByteIdentical(t *testing.T) {
	w1, w2 := newWorker(t, nil), newWorker(t, nil)
	p, err := New([]string{w1.URL, w2.URL}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := distributedJSON(t, 42, p), localJSON(t, 42); !bytes.Equal(got, want) {
		t.Errorf("distributed result differs from local run:\n--- distributed ---\n%s\n--- local ---\n%s", got, want)
	}
	st := p.Stats()
	if st.Remote != 6 || st.Fallbacks != 0 {
		t.Errorf("fleet stats = %+v, want all 6 cells remote", st)
	}
	var perWorker uint64
	for _, w := range st.Workers {
		perWorker += w.Done
	}
	if perWorker != st.Remote {
		t.Errorf("per-worker done %d does not add up to %d remote units", perWorker, st.Remote)
	}
}

// A worker that dies mid-campaign: its units fail over to the healthy
// worker (or locally) and the merged bytes never change.
func TestDistributedFailoverMidCampaign(t *testing.T) {
	healthy := newWorker(t, nil)

	// The flaky worker serves one unit, then 500s forever — a crash
	// that strikes after the campaign has already started. Two of the
	// grid's keys prefer this worker, so at least one unit hits the
	// crash and must fail over.
	var served atomic.Int64
	inner := serve.New(serve.Config{}).Handler()
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/units") && served.Add(1) > 1 {
			http.Error(w, "worker crashed", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)

	p, err := New([]string{flaky.URL, healthy.URL}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := distributedJSON(t, 7, p), localJSON(t, 7); !bytes.Equal(got, want) {
		t.Errorf("failover changed the merged result:\n--- distributed ---\n%s\n--- local ---\n%s", got, want)
	}
	st := p.Stats()
	if st.Remote+st.Fallbacks != 6 {
		t.Errorf("stats = %+v: %d remote + %d fallbacks should cover 6 cells", st, st.Remote, st.Fallbacks)
	}
	if st.Errors == 0 {
		t.Error("the crashed worker never surfaced an error; failover path untested")
	}
}

// A fully dead fleet degrades to plain local execution, byte-identical.
func TestDistributedAllWorkersDead(t *testing.T) {
	dead1, dead2 := httptest.NewServer(http.NotFoundHandler()), httptest.NewServer(http.NotFoundHandler())
	dead1.Close()
	dead2.Close()
	p, err := New([]string{dead1.URL, dead2.URL}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := distributedJSON(t, 9, p), localJSON(t, 9); !bytes.Equal(got, want) {
		t.Errorf("dead fleet changed the merged result:\n--- distributed ---\n%s\n--- local ---\n%s", got, want)
	}
	if st := p.Stats(); st.Remote != 0 || st.Fallbacks != 6 {
		t.Errorf("stats = %+v, want 0 remote and 6 local fallbacks", st)
	}
}

// The per-worker in-flight bound holds even when the whole campaign is
// dispatched at once.
func TestDistributedInFlightBound(t *testing.T) {
	var cur, max atomic.Int64
	inner := serve.New(serve.Config{MaxRuns: 16}).Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/units") {
			n := cur.Add(1)
			for {
				m := max.Load()
				if n <= m || max.CompareAndSwap(m, n) {
					break
				}
			}
			defer cur.Add(-1)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	opt := testOptions()
	opt.InFlight = 2
	p, err := New([]string{ts.URL}, opt)
	if err != nil {
		t.Fatal(err)
	}
	distributedJSON(t, 11, p)
	if got := max.Load(); got > 2 {
		t.Errorf("observed %d concurrent unit requests, want <= 2", got)
	}
	if st := p.Stats(); st.Remote != 6 {
		t.Errorf("stats = %+v, want 6 remote", st)
	}
}

// Workers sharing one persistent store serve repeated campaigns from
// cache: the second distributed run recomputes nothing anywhere.
func TestDistributedSharedStore(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w1, w2 := newWorker(t, st), newWorker(t, st)
	p, err := New([]string{w1.URL, w2.URL}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	first := distributedJSON(t, 42, p)
	cold := st.Stats()
	if cold.Puts == 0 {
		t.Fatal("workers persisted nothing")
	}
	again := distributedJSON(t, 42, p)
	if !bytes.Equal(first, again) {
		t.Error("warm distributed rerun changed bytes")
	}
	if warm := st.Stats(); warm.Puts != cold.Puts {
		t.Errorf("warm rerun recomputed cells: %+v -> %+v", cold, warm)
	}
}

// Healthy reports only the reachable share of the fleet.
func TestHealthy(t *testing.T) {
	up := newWorker(t, nil)
	down := httptest.NewServer(http.NotFoundHandler())
	down.Close()
	p, err := New([]string{up.URL, down.URL}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	h := p.Healthy()
	if len(h) != 1 || h[0] != up.URL {
		t.Errorf("Healthy() = %v, want [%s]", h, up.URL)
	}
}

// A worker in cooldown is skipped; after the cooldown it must pass a
// probe before taking units again.
func TestCooldownAndReadmission(t *testing.T) {
	ts := newWorker(t, nil)
	opt := testOptions()
	opt.Cooldown = time.Hour
	p, err := New([]string{ts.URL}, opt)
	if err != nil {
		t.Fatal(err)
	}
	w := p.workers[0]
	w.markDown(opt.Cooldown)
	if p.available(w) {
		t.Error("worker available during cooldown")
	}
	// Cooldown elapsed, daemon healthy: one probe readmits it.
	w.markDown(-time.Second)
	if !p.available(w) {
		t.Error("healthy worker not readmitted after cooldown")
	}
	if st := w.state.Load(); st.suspect {
		t.Error("readmitted worker still marked suspect")
	}
	// Cooldown elapsed but daemon gone: the probe fails and restarts
	// the cooldown.
	ts.Close()
	w.markDown(-time.Second)
	if p.available(w) {
		t.Error("unreachable worker readmitted")
	}
	if st := w.state.Load(); !time.Now().Before(st.downUntil) {
		t.Error("failed probe did not restart the cooldown")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("empty fleet accepted")
	}
	for _, bad := range []string{"", "not a url", "ftp://x", "http://"} {
		if _, err := New([]string{bad}, Options{}); err == nil {
			t.Errorf("worker URL %q accepted", bad)
		}
	}
	if _, err := New([]string{"http://a:1", "http://a:1/"}, Options{}); err == nil {
		t.Error("duplicate worker URL accepted")
	}
}

// A replicated campaign fans its "rep=K" units across the fleet like
// any other unit: two workers serve all replicas and the merged,
// aggregated result is byte-identical to a single-machine run.
func TestDistributedReplicatedCampaign(t *testing.T) {
	repGrid := core.Campaign{
		Name:      "dist-rep",
		Platforms: []string{"zoom", "meet"},
		Repeats:   3,
	}
	render := func(p *Pool) []byte {
		tb := core.NewTestbed(42)
		if p != nil {
			tb.WithDispatcher(p)
		}
		res, err := core.RunCampaign(tb, repGrid, core.TinyScale)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := report.WriteJSON(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	local := render(nil)
	w1, w2 := newWorker(t, nil), newWorker(t, nil)
	p, err := New([]string{w1.URL, w2.URL}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	dist := render(p)
	if !bytes.Equal(local, dist) {
		t.Errorf("distributed replicated result differs from local run:\n--- distributed ---\n%s\n--- local ---\n%s", dist, local)
	}
	st := p.Stats()
	if st.Remote != 6 || st.Fallbacks != 0 {
		t.Errorf("fleet stats = %+v, want all 6 replica units remote", st)
	}
	// Key-affine sharding must actually split one cell's replicas when
	// their keys prefer different workers — assert the weaker, stable
	// property that both workers served something.
	for _, w := range st.Workers {
		if w.Done == 0 {
			t.Errorf("worker %s served nothing: %+v", w.URL, st.Workers)
		}
	}
	if !bytes.Contains(dist, []byte(`"replicas"`)) {
		t.Error("distributed result lost its replicas block")
	}
}
