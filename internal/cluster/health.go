package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// This file is the pool's health machinery. A worker that fails a unit
// is marked down for a cooldown; once the cooldown passes it stays
// suspect — skipped for units — until a GET /healthz probe succeeds.
// Probes are cheap (the daemon answers from memory), so a flapping
// worker costs the pool one probe per cooldown, not one lost unit.

// probeTimeout bounds a /healthz round trip; a worker that cannot
// answer a liveness check this fast should not be trusted with a
// multi-minute unit.
const probeTimeout = 2 * time.Second

// markDown records a failure: skip the worker for the cooldown and
// require a successful probe before readmission.
func (w *worker) markDown(cooldown time.Duration) {
	w.state.Store(&workerState{suspect: true, downUntil: time.Now().Add(cooldown)})
}

// available reports whether the worker may take a unit now, probing
// its /healthz first when it is coming back from a failure cooldown.
func (p *Pool) available(w *worker) bool {
	st := w.state.Load()
	if !st.suspect {
		return true
	}
	if time.Now().Before(st.downUntil) {
		return false
	}
	if err := p.probe(w); err != nil {
		w.markDown(p.opt.Cooldown)
		return false
	}
	// Readmit via CAS: a concurrent markDown (a unit failing while the
	// probe was in flight) must win, or a flapping worker would have
	// its fresh cooldown erased and keep soaking up dispatches.
	return w.state.CompareAndSwap(st, &workerState{})
}

// probe checks one worker's /healthz.
func (p *Pool) probe(w *worker) error {
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: %s", resp.Status)
	}
	return nil
}

// Healthy probes every worker concurrently and returns the base URLs
// that answered /healthz, in configuration order. Callers use it for
// startup diagnostics; the dispatch path keeps its own per-worker
// health state and never requires the whole fleet to be up.
func (p *Pool) Healthy() []string {
	ok := make([]bool, len(p.workers))
	var wg sync.WaitGroup
	for i, w := range p.workers {
		i, w := i, w
		wg.Add(1)
		go func() {
			defer wg.Done()
			ok[i] = p.probe(w) == nil
		}()
	}
	wg.Wait()
	var out []string
	for i, w := range p.workers {
		if ok[i] {
			out = append(out, w.url)
		}
	}
	return out
}
