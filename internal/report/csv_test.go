package report

import (
	"errors"
	"strings"
	"testing"
)

func TestParseCSVSeries(t *testing.T) {
	in := `label,value
us-west,10.5
us-east,3

us-west,11.0
garbage line without comma
trailing,junk,value,notanumber
us-east,4.25
with,comma,7
`
	series, err := ParseCSVSeries(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Series{
		{Label: "us-west", Values: []float64{10.5, 11.0}},
		{Label: "us-east", Values: []float64{3, 4.25}},
		{Label: "with,comma", Values: []float64{7}}, // split at the LAST comma
	}
	if len(series) != len(want) {
		t.Fatalf("got %d series (%+v), want %d", len(series), series, len(want))
	}
	for i, w := range want {
		got := series[i]
		if got.Label != w.Label {
			t.Errorf("series %d label = %q, want %q (first-seen order)", i, got.Label, w.Label)
		}
		if len(got.Values) != len(w.Values) {
			t.Errorf("series %q values = %v, want %v", w.Label, got.Values, w.Values)
			continue
		}
		for j := range w.Values {
			if got.Values[j] != w.Values[j] {
				t.Errorf("series %q value %d = %v, want %v", w.Label, j, got.Values[j], w.Values[j])
			}
		}
	}
}

// A pure header (or empty) input yields no series — the caller decides
// whether that is an error.
func TestParseCSVSeriesEmpty(t *testing.T) {
	for _, in := range []string{"", "label,value\n", "no commas here\n\n"} {
		series, err := ParseCSVSeries(strings.NewReader(in))
		if err != nil {
			t.Fatal(err)
		}
		if len(series) != 0 {
			t.Errorf("ParseCSVSeries(%q) = %+v, want none", in, series)
		}
	}
}

// Values with surrounding whitespace parse; the label is trimmed too.
func TestParseCSVSeriesWhitespace(t *testing.T) {
	series, err := ParseCSVSeries(strings.NewReader("  spaced label ,  42.5  \n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || series[0].Label != "spaced label" || series[0].Values[0] != 42.5 {
		t.Errorf("got %+v", series)
	}
}

type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, errors.New("boom") }

func TestParseCSVSeriesReadError(t *testing.T) {
	if _, err := ParseCSVSeries(failingReader{}); err == nil {
		t.Error("read failure not surfaced")
	}
}
