package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/vcabench/vcabench/internal/diag"
)

// This file renders flight-recorder documents (internal/diag) as text:
// the vcaplot -diag mode. Everything here is presentation — the
// document is already final — so rendering order follows the sorted
// order Finalize establishes and the output is deterministic for a
// given artifact.

const diagBarWidth = 40 // columns of a full-scale bar

// RenderDiag writes a human-readable view of one cell's diagnostics
// artifact: the drop summary, an event-queue depth timeline, per-pipe
// throughput and drop timelines, per-sender rate-target ladders and
// the discrete event log.
func RenderDiag(w io.Writer, d *diag.CellDiag) {
	fmt.Fprintf(w, "## diagnostics %s (schema v%d, bin %ss)\n", d.Key, d.Version, trimFloat(d.BinSec))
	fmt.Fprintf(w, "drops: %d queue, %d random\n", d.DropsQueue, d.DropsRandom)
	last := lastBin(d)

	if len(d.Queue) > 0 {
		fmt.Fprintf(w, "\nevent-queue depth (max per bin)\n")
		vals := make([]float64, last+1)
		for _, q := range d.Queue {
			if q.Bin >= 0 && q.Bin <= last {
				vals[q.Bin] = float64(q.DepthMax)
			}
		}
		renderBins(w, vals, d.BinSec)
	}

	for _, p := range d.Pipes {
		fmt.Fprintf(w, "\npipe %s throughput (bytes per bin)\n", p.Name)
		vals := make([]float64, last+1)
		var dropsQ, dropsR []float64
		for _, b := range p.Bins {
			if b.Bin < 0 || b.Bin > last {
				continue
			}
			vals[b.Bin] = float64(b.Bytes)
			if b.DropsQueue > 0 || b.DropsRandom > 0 {
				if dropsQ == nil {
					dropsQ = make([]float64, last+1)
					dropsR = make([]float64, last+1)
				}
				dropsQ[b.Bin] = float64(b.DropsQueue)
				dropsR[b.Bin] = float64(b.DropsRandom)
			}
		}
		renderBins(w, vals, d.BinSec)
		if dropsQ != nil {
			fmt.Fprintf(w, "pipe %s drops (per bin: queue/random)\n", p.Name)
			for bin := range dropsQ {
				if dropsQ[bin] == 0 && dropsR[bin] == 0 {
					continue
				}
				fmt.Fprintf(w, "%7s |%-*s| %s/%s\n", binLabel(bin, d.BinSec), diagBarWidth,
					strings.Repeat("#", scaleBar(dropsQ[bin]+dropsR[bin], maxOf(sum2(dropsQ, dropsR)))),
					trimFloat(dropsQ[bin]), trimFloat(dropsR[bin]))
			}
		}
	}

	renderRateLadders(w, d, last)

	if len(d.Events) > 0 {
		fmt.Fprintf(w, "\nevents\n")
		for _, e := range d.Events {
			line := fmt.Sprintf("t=%.3fs %s", e.AtSec, e.Kind)
			if e.Subject != "" {
				line += " " + e.Subject
			}
			if e.Value != 0 {
				line += " " + trimFloat(e.Value)
			}
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
}

// renderRateLadders charts each rate-target subject's ladder as a
// step series sampled at bin boundaries: the value in force at the
// start of each bin (the most recent switch at or before it).
func renderRateLadders(w io.Writer, d *diag.CellDiag, last int) {
	bySubject := make(map[string][]diag.Event)
	for _, e := range d.Events {
		if e.Kind == diag.KindRateTarget {
			bySubject[e.Subject] = append(bySubject[e.Subject], e)
		}
	}
	if len(bySubject) == 0 {
		return
	}
	subjects := make([]string, 0, len(bySubject))
	//vcalint:ignore maprange the subject list is sorted immediately below, erasing iteration order
	for s := range bySubject {
		subjects = append(subjects, s)
	}
	sort.Strings(subjects)
	for _, s := range subjects {
		evs := bySubject[s] // already in sim-time order
		fmt.Fprintf(w, "\nrate target %s (bps at each bin start)\n", s)
		vals := make([]float64, last+1)
		for bin := 0; bin <= last; bin++ {
			t := float64(bin) * d.BinSec
			for _, e := range evs {
				if e.AtSec <= t {
					vals[bin] = e.Value
				}
			}
		}
		renderBins(w, vals, d.BinSec)
	}
}

// renderBins draws one bar row per bin, scaled to the series maximum.
func renderBins(w io.Writer, vals []float64, binSec float64) {
	max := maxOf(vals)
	for bin, v := range vals {
		fmt.Fprintf(w, "%7s |%-*s| %s\n", binLabel(bin, binSec), diagBarWidth,
			strings.Repeat("#", scaleBar(v, max)), trimFloat(v))
	}
}

// binLabel names a bin row by its start time, e.g. "2s".
func binLabel(bin int, binSec float64) string {
	return trimFloat(float64(bin)*binSec) + "s"
}

func scaleBar(v, max float64) int {
	if max <= 0 || v <= 0 {
		return 0
	}
	n := int(v / max * diagBarWidth)
	if n > diagBarWidth {
		n = diagBarWidth
	}
	return n
}

func maxOf(vals []float64) float64 {
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	return max
}

func sum2(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// lastBin finds the largest bin index the document touches across its
// queue series, pipe series and event log, so every timeline renders
// on the same axis.
func lastBin(d *diag.CellDiag) int {
	last := 0
	for _, q := range d.Queue {
		if q.Bin > last {
			last = q.Bin
		}
	}
	for _, p := range d.Pipes {
		for _, b := range p.Bins {
			if b.Bin > last {
				last = b.Bin
			}
		}
	}
	if d.BinSec > 0 {
		for _, e := range d.Events {
			if bin := int(e.AtSec / d.BinSec); bin > last {
				last = bin
			}
		}
	}
	return last
}
