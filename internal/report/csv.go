package report

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// Series is one labeled sample set parsed from CSV, in input order.
type Series struct {
	Label  string
	Values []float64
}

// ParseCSVSeries reads "label,value" lines — the cmd/vcaplot input
// format — into labeled series:
//
//   - the split is at the LAST comma, so labels may contain commas;
//   - blank lines, lines without a comma, and lines whose value column
//     is not numeric (a header, junk) are skipped;
//   - all samples sharing a label form one series, and series keep the
//     order in which their label first appeared.
//
// An input with no parseable samples returns an empty slice and no
// error; only a read failure from r is an error.
func ParseCSVSeries(r io.Reader) ([]Series, error) {
	var (
		out   []Series
		index = map[string]int{}
	)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		i := strings.LastIndex(line, ",")
		if i < 0 {
			continue
		}
		label := strings.TrimSpace(line[:i])
		v, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64)
		if err != nil {
			continue // header or junk
		}
		si, ok := index[label]
		if !ok {
			si = len(out)
			index[label] = si
			out = append(out, Series{Label: label})
		}
		out[si].Values = append(out[si].Values, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
