// Package report renders experiment results as aligned text tables,
// ASCII CDF plots and CSV — the harness's counterpart to the paper's
// gnuplot figures.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
	"unicode/utf8"

	"github.com/vcabench/vcabench/internal/stats"
)

// Table is a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row of cells (stringified with %v).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	// An absent signal (empty stats.Sample) surfaces as NaN; render it
	// as the same placeholder tables use for missing cells rather than
	// leaking "NaN" into output.
	if math.IsNaN(v) {
		return "-"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	if math.Abs(v) >= 100 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.3g", v)
}

// PlusMinus formats a replicated measurement as "mean ±ci" using the
// same float trimming as table cells. A NaN mean (absent signal) renders
// as the bare "-" placeholder; a NaN ci (undefined spread, e.g. a single
// replica) renders as "mean ±-" so the reader still sees the point
// estimate while the error term follows the NaN contract.
func PlusMinus(mean, ci float64) string {
	if math.IsNaN(mean) {
		return "-"
	}
	return trimFloat(mean) + " ±" + trimFloat(ci)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "## %s\n", t.Title)
	}
	all := make([][]string, 0, len(t.Rows)+1)
	if len(t.Header) > 0 {
		all = append(all, t.Header)
	}
	all = append(all, t.Rows...)
	widths := make([]int, 0)
	for _, row := range all {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if n := utf8.RuneCountInString(c); n > widths[i] {
				widths[i] = n
			}
		}
	}
	line := func(row []string) {
		parts := make([]string, len(row))
		for i, c := range row {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	if len(t.Header) > 0 {
		line(t.Header)
		sep := make([]string, len(t.Header))
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		line(sep)
	}
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(row []string) {
		parts := make([]string, len(row))
		for i, c := range row {
			parts[i] = esc(c)
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
}

// pad right-pads s to w columns. Width is counted in runes, not bytes,
// so multibyte cells (the "±" of replicated metrics) align with their
// ASCII neighbors.
func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

// CDFPlot renders one or more labelled CDF curves as ASCII art, with x
// expressed in the given unit label.
type CDFPlot struct {
	Title  string
	XLabel string
	Width  int // plot columns (default 64)
	Height int // plot rows (default 16)
	curves []cdfCurve
}

type cdfCurve struct {
	label string
	cdf   *stats.CDF
}

// Add appends a labelled curve built from raw samples.
func (p *CDFPlot) Add(label string, xs []float64) {
	p.curves = append(p.curves, cdfCurve{label: label, cdf: stats.NewCDF(xs)})
}

// Render draws all curves on a shared x-axis.
func (p *CDFPlot) Render(w io.Writer) {
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	if p.Title != "" {
		fmt.Fprintf(w, "## %s\n", p.Title)
	}
	if len(p.curves) == 0 {
		fmt.Fprintln(w, "(no data)")
		return
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range p.curves {
		if c.cdf.Len() == 0 {
			continue
		}
		if v := c.cdf.Inverse(0); v < lo {
			lo = v
		}
		if v := c.cdf.Inverse(1); v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		fmt.Fprintln(w, "(no data)")
		return
	}
	if hi <= lo {
		hi = lo + 1
	}
	marks := "ox+*#@%&"
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for ci, c := range p.curves {
		mark := marks[ci%len(marks)]
		for col := 0; col < width; col++ {
			x := lo + (hi-lo)*float64(col)/float64(width-1)
			pv := c.cdf.At(x)
			row := int(math.Round((1 - pv) * float64(height-1)))
			if row >= 0 && row < height {
				grid[row][col] = mark
			}
		}
	}
	for i, row := range grid {
		p100 := 1 - float64(i)/float64(height-1)
		fmt.Fprintf(w, "%5.2f |%s|\n", p100, string(row))
	}
	fmt.Fprintf(w, "      %s\n", strings.Repeat("-", width+2))
	fmt.Fprintf(w, "      %-*s%*s (%s)\n", width/2+1, trimFloat(lo), width/2+1, trimFloat(hi), p.XLabel)
	for ci, c := range p.curves {
		med := math.NaN()
		if c.cdf.Len() > 0 {
			med = c.cdf.Inverse(0.5)
		}
		fmt.Fprintf(w, "      %c %s (n=%d, median %s)\n", marks[ci%len(marks)], c.label, c.cdf.Len(), trimFloat(med))
	}
}

// String renders the plot to a string.
func (p *CDFPlot) String() string {
	var b strings.Builder
	p.Render(&b)
	return b.String()
}
