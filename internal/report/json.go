package report

import (
	"encoding/json"
	"io"
)

// WriteJSON renders any result value as indented JSON followed by a
// newline — the machine-readable counterpart to the text renderers.
// Encoding is deterministic for a given value (struct field order, no
// map iteration at the top level of our result types), which is what
// lets campaign runs assert byte-identical output across worker
// counts. Values must be NaN-free: absent signals are represented as
// nil/omitted fields, never NaN (encoding/json rejects NaN).
func WriteJSON(w io.Writer, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// tableJSON is the serialized form of a Table.
type tableJSON struct {
	Title  string     `json:"title,omitempty"`
	Header []string   `json:"header,omitempty"`
	Rows   [][]string `json:"rows"`
}

// JSON writes the table as a JSON object with title, header and rows —
// cells stay the strings the text renderer would print.
func (t *Table) JSON(w io.Writer) error {
	rows := t.Rows
	if rows == nil {
		rows = [][]string{}
	}
	return WriteJSON(w, tableJSON{Title: t.Title, Header: t.Header, Rows: rows})
}
