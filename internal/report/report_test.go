package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := Table{
		Title:  "demo",
		Header: []string{"name", "value"},
	}
	tb.AddRow("alpha", 1.0)
	tb.AddRow("beta", 12.3456)
	tb.AddRow("gamma", 123.456)
	out := tb.String()
	if !strings.Contains(out, "## demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "12.3") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + separator + 3 rows.
	if len(lines) != 6 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// Columns aligned: every data line has the value column at the same
	// offset as the header's.
	hdr := lines[1]
	col := strings.Index(hdr, "value")
	if col <= 0 {
		t.Fatalf("header layout: %q", hdr)
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Header: []string{"a", "b"}}
	tb.AddRow("x,y", `say "hi"`)
	var sb strings.Builder
	tb.CSV(&sb)
	out := sb.String()
	if !strings.Contains(out, `"x,y"`) {
		t.Errorf("comma not quoted: %s", out)
	}
	if !strings.Contains(out, `"say ""hi"""`) {
		t.Errorf("quote not escaped: %s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("header missing: %s", out)
	}
}

func TestCDFPlotRender(t *testing.T) {
	p := CDFPlot{Title: "lags", XLabel: "ms", Width: 40, Height: 8}
	var xs, ys []float64
	for i := 0; i < 100; i++ {
		xs = append(xs, float64(i))
		ys = append(ys, float64(i)*2)
	}
	p.Add("near", xs)
	p.Add("far", ys)
	out := p.String()
	if !strings.Contains(out, "## lags") || !strings.Contains(out, "(ms)") {
		t.Errorf("plot chrome missing:\n%s", out)
	}
	if !strings.Contains(out, "o near") || !strings.Contains(out, "x far") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "median") {
		t.Error("median missing from legend")
	}
	// The 1.00 row and the lowest row both exist.
	if !strings.Contains(out, " 1.00 |") || !strings.Contains(out, " 0.00 |") {
		t.Errorf("probability axis wrong:\n%s", out)
	}
}

func TestCDFPlotEmpty(t *testing.T) {
	p := CDFPlot{Title: "empty"}
	if !strings.Contains(p.String(), "(no data)") {
		t.Error("empty plot should say so")
	}
	p2 := CDFPlot{}
	p2.Add("nothing", nil)
	if !strings.Contains(p2.String(), "(no data)") {
		t.Error("all-empty curves should say no data")
	}
}

func TestCDFPlotDegenerate(t *testing.T) {
	p := CDFPlot{Width: 20, Height: 5}
	p.Add("const", []float64{5, 5, 5, 5})
	out := p.String()
	if out == "" || !strings.Contains(out, "const") {
		t.Errorf("degenerate curve render:\n%s", out)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		3.14159: "3.14",
		123.456: "123.5",
		1000:    "1000",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestTableNoHeader(t *testing.T) {
	tb := Table{}
	tb.AddRow("just", "cells")
	out := tb.String()
	if strings.Contains(out, "--") {
		t.Errorf("separator without header:\n%s", out)
	}
}
