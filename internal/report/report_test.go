package report

import (
	"encoding/json"
	"io"
	"math"
	"strings"
	"testing"
	"unicode/utf8"

	"github.com/vcabench/vcabench/internal/stats"
)

func TestTableRender(t *testing.T) {
	tb := Table{
		Title:  "demo",
		Header: []string{"name", "value"},
	}
	tb.AddRow("alpha", 1.0)
	tb.AddRow("beta", 12.3456)
	tb.AddRow("gamma", 123.456)
	out := tb.String()
	if !strings.Contains(out, "## demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "12.3") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + separator + 3 rows.
	if len(lines) != 6 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// Columns aligned: every data line has the value column at the same
	// offset as the header's.
	hdr := lines[1]
	col := strings.Index(hdr, "value")
	if col <= 0 {
		t.Fatalf("header layout: %q", hdr)
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Header: []string{"a", "b"}}
	tb.AddRow("x,y", `say "hi"`)
	var sb strings.Builder
	tb.CSV(&sb)
	out := sb.String()
	if !strings.Contains(out, `"x,y"`) {
		t.Errorf("comma not quoted: %s", out)
	}
	if !strings.Contains(out, `"say ""hi"""`) {
		t.Errorf("quote not escaped: %s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("header missing: %s", out)
	}
}

func TestCDFPlotRender(t *testing.T) {
	p := CDFPlot{Title: "lags", XLabel: "ms", Width: 40, Height: 8}
	var xs, ys []float64
	for i := 0; i < 100; i++ {
		xs = append(xs, float64(i))
		ys = append(ys, float64(i)*2)
	}
	p.Add("near", xs)
	p.Add("far", ys)
	out := p.String()
	if !strings.Contains(out, "## lags") || !strings.Contains(out, "(ms)") {
		t.Errorf("plot chrome missing:\n%s", out)
	}
	if !strings.Contains(out, "o near") || !strings.Contains(out, "x far") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "median") {
		t.Error("median missing from legend")
	}
	// The 1.00 row and the lowest row both exist.
	if !strings.Contains(out, " 1.00 |") || !strings.Contains(out, " 0.00 |") {
		t.Errorf("probability axis wrong:\n%s", out)
	}
}

func TestCDFPlotEmpty(t *testing.T) {
	p := CDFPlot{Title: "empty"}
	if !strings.Contains(p.String(), "(no data)") {
		t.Error("empty plot should say so")
	}
	p2 := CDFPlot{}
	p2.Add("nothing", nil)
	if !strings.Contains(p2.String(), "(no data)") {
		t.Error("all-empty curves should say no data")
	}
}

func TestCDFPlotDegenerate(t *testing.T) {
	p := CDFPlot{Width: 20, Height: 5}
	p.Add("const", []float64{5, 5, 5, 5})
	out := p.String()
	if out == "" || !strings.Contains(out, "const") {
		t.Errorf("degenerate curve render:\n%s", out)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		3:          "3",
		3.14159:    "3.14",
		123.456:    "123.5",
		1000:       "1000",
		math.NaN(): "-", // absent signal, not the string "NaN"
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

// An empty sample's statistics (NaN) must never leak into a rendered
// table — the audit behind the stats empty-sample guard.
func TestTableNaNCells(t *testing.T) {
	var empty stats.Sample
	tb := Table{Header: []string{"name", "mos"}}
	tb.AddRow("no-audio", empty.Mean())
	out := tb.String()
	if strings.Contains(out, "NaN") {
		t.Errorf("NaN leaked:\n%s", out)
	}
	if !strings.Contains(out, "no-audio  -") {
		t.Errorf("empty metric should render '-':\n%s", out)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf strings.Builder
	err := WriteJSON(&buf, struct {
		A int     `json:"a"`
		B string  `json:"b"`
		C *int    `json:"c,omitempty"`
		D float64 `json:"d"`
	}{A: 1, B: "x", D: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Error("missing trailing newline")
	}
	if !strings.Contains(out, `"a": 1`) || !strings.Contains(out, `"d": 2.5`) {
		t.Errorf("fields missing:\n%s", out)
	}
	if strings.Contains(out, `"c"`) {
		t.Errorf("omitempty field serialized:\n%s", out)
	}
	// NaN is a caller bug and must surface as an error, not output.
	if err := WriteJSON(io.Discard, math.NaN()); err == nil {
		t.Error("NaN should fail to encode")
	}
}

func TestTableJSON(t *testing.T) {
	tb := Table{Title: "demo", Header: []string{"a", "b"}}
	tb.AddRow("x", 1.5)
	var buf strings.Builder
	if err := tb.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dec struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &dec); err != nil {
		t.Fatal(err)
	}
	if dec.Title != "demo" || len(dec.Header) != 2 || len(dec.Rows) != 1 || dec.Rows[0][1] != "1.5" {
		t.Errorf("round trip: %+v", dec)
	}
	// An empty table still emits a rows array, not null.
	var empty Table
	buf.Reset()
	if err := empty.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"rows": []`) {
		t.Errorf("empty rows should be [], got:\n%s", buf.String())
	}
}

func TestTableNoHeader(t *testing.T) {
	tb := Table{}
	tb.AddRow("just", "cells")
	out := tb.String()
	if strings.Contains(out, "--") {
		t.Errorf("separator without header:\n%s", out)
	}
}

func TestPlusMinus(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		mean, ci float64
		want     string
	}{
		{25.81, 1.13, "25.8 ±1.13"},
		{1, 0, "1 ±0"},
		{0.473, 0.0383, "0.473 ±0.0383"},
		{nan, 1, "-"},          // absent signal: bare placeholder
		{nan, nan, "-"},        // absent signal trumps absent spread
		{3.25, nan, "3.25 ±-"}, // defined mean, undefined spread (n=1)
	}
	for _, c := range cases {
		if got := PlusMinus(c.mean, c.ci); got != c.want {
			t.Errorf("PlusMinus(%v, %v) = %q, want %q", c.mean, c.ci, got, c.want)
		}
	}
}

// Multibyte cells (the ± of replicated metrics) must align by display
// width, not byte length.
func TestTableRuneAlignment(t *testing.T) {
	tbl := &Table{Header: []string{"a", "b"}}
	tbl.AddRow("1 ±2", "x")
	tbl.AddRow("12345", "y")
	out := tbl.String()
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if got, want := utf8.RuneCountInString(line), utf8.RuneCountInString("12345  y"); got != want {
			t.Errorf("line %q is %d runes, want %d", line, got, want)
		}
	}
}
