package report

import (
	"strings"
	"testing"

	"github.com/vcabench/vcabench/internal/diag"
)

func sampleDiag() *diag.CellDiag {
	return &diag.CellDiag{
		Version:     diag.Version,
		Key:         "fig13/zoom",
		BinSec:      1,
		DropsQueue:  3,
		DropsRandom: 1,
		Pipes: []diag.PipeSeries{{
			Name: "us-east/down",
			Bins: []diag.PipeBin{
				{Bin: 0, Packets: 10, Bytes: 12000, QueueMaxBytes: 900, DelayMsMean: 2.5},
				{Bin: 2, Packets: 4, Bytes: 4800, DropsQueue: 3, DropsRandom: 1, QueueMaxBytes: 2400, DelayMsMean: 9},
			},
		}},
		Queue: []diag.QueueBin{{Bin: 0, Steps: 40, DepthMax: 7}, {Bin: 2, Steps: 21, DepthMax: 12}},
		Events: []diag.Event{
			{AtSec: 0, Kind: diag.KindRateTarget, Subject: "zoom-session-0", Value: 1_500_000},
			{AtSec: 1.25, Kind: diag.KindTraceStep, Subject: "dip500k", Value: 500_000},
			{AtSec: 1.5, Kind: diag.KindRateTarget, Subject: "zoom-session-0", Value: 750_000},
			{AtSec: 2.2, Kind: diag.KindFreeze, Subject: "us-west", Value: 4},
		},
	}
}

func TestRenderDiagSections(t *testing.T) {
	var b strings.Builder
	RenderDiag(&b, sampleDiag())
	out := b.String()
	for _, want := range []string{
		"## diagnostics fig13/zoom (schema v1, bin 1s)",
		"drops: 3 queue, 1 random",
		"event-queue depth (max per bin)",
		"pipe us-east/down throughput (bytes per bin)",
		"pipe us-east/down drops (per bin: queue/random)",
		"rate target zoom-session-0 (bps at each bin start)",
		"events",
		"t=1.250s trace-step dip500k",
		"t=2.200s freeze us-west 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderDiag output missing %q:\n%s", want, out)
		}
	}
	// Every timeline shares the axis established by the last bin (2),
	// so each chart renders bins 0, 1 and 2 even where 1 is empty.
	if strings.Count(out, "     1s |") < 3 {
		t.Errorf("expected bin 1 rows in all three charts:\n%s", out)
	}
}

func TestRenderDiagIsDeterministic(t *testing.T) {
	var a, b strings.Builder
	RenderDiag(&a, sampleDiag())
	RenderDiag(&b, sampleDiag())
	if a.String() != b.String() {
		t.Fatal("RenderDiag output differs across identical documents")
	}
}

// TestRenderDiagRoundTrip feeds RenderDiag exactly what vcaplot -diag
// sees: a document that went through the Encode/Decode artifact codec.
func TestRenderDiagRoundTrip(t *testing.T) {
	data, err := diag.Encode(sampleDiag())
	if err != nil {
		t.Fatal(err)
	}
	d, err := diag.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	var direct, decoded strings.Builder
	RenderDiag(&direct, sampleDiag())
	RenderDiag(&decoded, d)
	if direct.String() != decoded.String() {
		t.Error("rendering differs after an Encode/Decode round trip")
	}
}
