package media

import (
	"math"
	"math/rand"
)

// AudioClip is mono PCM in [-1, 1].
type AudioClip struct {
	Rate    int // samples per second
	Samples []float64
}

// Duration returns the clip length in seconds.
func (c *AudioClip) Duration() float64 {
	if c.Rate == 0 {
		return 0
	}
	return float64(len(c.Samples)) / float64(c.Rate)
}

// Clone returns a deep copy.
func (c *AudioClip) Clone() *AudioClip {
	s := make([]float64, len(c.Samples))
	copy(s, c.Samples)
	return &AudioClip{Rate: c.Rate, Samples: s}
}

// Slice returns the sub-clip [from, to) in samples (view, shared storage).
func (c *AudioClip) Slice(from, to int) *AudioClip {
	if from < 0 {
		from = 0
	}
	if to > len(c.Samples) {
		to = len(c.Samples)
	}
	if from > to {
		from = to
	}
	return &AudioClip{Rate: c.Rate, Samples: c.Samples[from:to]}
}

// RMS returns the root-mean-square level of the clip.
func (c *AudioClip) RMS() float64 {
	if len(c.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range c.Samples {
		sum += s * s
	}
	return math.Sqrt(sum / float64(len(c.Samples)))
}

// Normalize scales the clip to the target RMS level in place (EBU-R128
// style loudness normalization stands behind the paper's audio pipeline;
// a plain RMS normalization is its moral equivalent for synthetic speech).
func (c *AudioClip) Normalize(targetRMS float64) {
	r := c.RMS()
	if r == 0 {
		return
	}
	g := targetRMS / r
	for i := range c.Samples {
		v := c.Samples[i] * g
		if v > 1 {
			v = 1
		}
		if v < -1 {
			v = -1
		}
		c.Samples[i] = v
	}
}

// DefaultAudioRate is the synthesis sample rate (wideband speech).
const DefaultAudioRate = 16000

// NewSpeech synthesizes seconds of speech-like audio: a fundamental with
// harmonics whose pitch and amplitude are modulated at syllabic rates,
// with inter-word pauses. Deterministic for a given seed.
func NewSpeech(seconds float64, seed int64) *AudioClip {
	rng := rand.New(rand.NewSource(seed))
	n := int(seconds * DefaultAudioRate)
	c := &AudioClip{Rate: DefaultAudioRate, Samples: make([]float64, n)}
	f0 := 110 + rng.Float64()*60 // speaker fundamental
	phase := [4]float64{}
	for i := 0; i < n; i++ {
		t := float64(i) / DefaultAudioRate
		// Syllable envelope at ~4 Hz; word pauses at ~0.8 Hz.
		syll := 0.5 + 0.5*math.Sin(2*math.Pi*4*t+1.3)
		word := math.Sin(2*math.Pi*0.8*t + 0.4)
		env := syll
		if word < -0.55 {
			env = 0 // pause between words
		}
		// Slow pitch wobble.
		pitch := f0 * (1 + 0.05*math.Sin(2*math.Pi*0.6*t))
		var s float64
		amps := [4]float64{1.0, 0.6, 0.35, 0.2}
		for h := 0; h < 4; h++ {
			phase[h] += 2 * math.Pi * pitch * float64(h+1) / DefaultAudioRate
			s += amps[h] * math.Sin(phase[h])
		}
		// Aspiration noise.
		s += rng.NormFloat64() * 0.02
		c.Samples[i] = s * env * 0.3
	}
	return c
}

// NewTone synthesizes a pure sine (calibration/test signal).
func NewTone(seconds, freq float64, rate int) *AudioClip {
	if rate <= 0 {
		rate = DefaultAudioRate
	}
	n := int(seconds * float64(rate))
	c := &AudioClip{Rate: rate, Samples: make([]float64, n)}
	for i := 0; i < n; i++ {
		c.Samples[i] = 0.5 * math.Sin(2*math.Pi*freq*float64(i)/float64(rate))
	}
	return c
}

// NewSilence synthesizes a silent clip.
func NewSilence(seconds float64, rate int) *AudioClip {
	if rate <= 0 {
		rate = DefaultAudioRate
	}
	return &AudioClip{Rate: rate, Samples: make([]float64, int(seconds*float64(rate)))}
}
