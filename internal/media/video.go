package media

import (
	"math"
	"math/rand"
)

// Source produces a deterministic stream of frames at a fixed rate.
type Source interface {
	// Next returns the next frame. The returned frame is owned by the
	// caller (sources never reuse the buffer).
	Next() *Frame
	// Dims returns the frame geometry.
	Dims() (w, h int)
	// FPS returns the nominal frame rate.
	FPS() int
}

// Profile selects the content geometry/rate. The paper used 640x480@30;
// the quick profile keeps experiment suites fast while preserving every
// relative result (metrics are resolution-normalized).
type Profile struct {
	W, H int
	FPS  int
}

var (
	// PaperProfile is the 640x480 30 fps feed of §4.3.
	PaperProfile = Profile{W: 640, H: 480, FPS: 30}
	// QuickProfile is the reduced-cost default for tests and quick runs.
	QuickProfile = Profile{W: 160, H: 120, FPS: 10}
)

// MotionClass labels the two content classes of §4.3.
type MotionClass int

const (
	LowMotion  MotionClass = iota // single person, stationary background
	HighMotion                    // tour-guide feed: pans and scene cuts
)

func (m MotionClass) String() string {
	if m == LowMotion {
		return "low-motion"
	}
	return "high-motion"
}

// lowMotionSource renders a stationary "room" with a gently bobbing
// head-and-shoulders blob and occasional hand gestures: mostly static
// background, small localized motion — highly compressible.
type lowMotionSource struct {
	p   Profile
	t   int
	rng *rand.Rand
	bg  *Frame
}

// NewLowMotion creates the talking-head feed.
func NewLowMotion(p Profile, seed int64) Source {
	s := &lowMotionSource{p: p, rng: rand.New(rand.NewSource(seed))}
	s.bg = textured(p.W, p.H, 96, 40, s.rng) // mid-gray room with texture
	return s
}

func (s *lowMotionSource) Dims() (int, int) { return s.p.W, s.p.H }
func (s *lowMotionSource) FPS() int         { return s.p.FPS }

func (s *lowMotionSource) Next() *Frame {
	f := s.bg.Clone()
	w, h := s.p.W, s.p.H
	tSec := float64(s.t) / float64(s.p.FPS)
	// Head: ellipse around center, bobbing a little (~1% of height).
	cx := float64(w) / 2
	cy := float64(h)*0.45 + math.Sin(tSec*2*math.Pi*0.5)*float64(h)*0.01
	rx, ry := float64(w)*0.12, float64(h)*0.2
	drawEllipse(f, cx, cy, rx, ry, 190)
	// Shoulders.
	drawEllipse(f, cx, float64(h)*0.95, float64(w)*0.3, float64(h)*0.25, 150)
	// Mouth region flickers while "talking" (tiny area).
	mouth := uint8(120 + 60*math.Sin(tSec*2*math.Pi*3))
	drawEllipse(f, cx, cy+ry*0.45, rx*0.3, ry*0.1, mouth)
	// Occasional hand gesture: a bright blob sweeping for ~1s every ~7s.
	phase := math.Mod(tSec, 7)
	if phase < 1 {
		gx := cx + (phase-0.5)*float64(w)*0.3
		drawEllipse(f, gx, float64(h)*0.8, float64(w)*0.05, float64(h)*0.06, 210)
	}
	// Sensor noise.
	addNoise(f, s.rng, 1.2)
	s.t++
	return f
}

// highMotionSource renders an outdoor pan: a textured world scrolling at
// a brisk rate, with a hard scene cut every few seconds — poorly
// compressible, large frame-to-frame differences.
type highMotionSource struct {
	p        Profile
	t        int
	rng      *rand.Rand
	world    *Frame // wide panorama we pan across
	scene    int
	cutEvery int // frames between scene cuts
}

// NewHighMotion creates the tour-guide feed.
func NewHighMotion(p Profile, seed int64) Source {
	s := &highMotionSource{
		p:        p,
		rng:      rand.New(rand.NewSource(seed)),
		cutEvery: p.FPS * 4,
	}
	s.newScene()
	return s
}

func (s *highMotionSource) Dims() (int, int) { return s.p.W, s.p.H }
func (s *highMotionSource) FPS() int         { return s.p.FPS }

func (s *highMotionSource) newScene() {
	base := uint8(60 + s.rng.Intn(120))
	s.world = textured(s.p.W*3, s.p.H, base, 70, s.rng)
	s.scene++
}

func (s *highMotionSource) Next() *Frame {
	if s.t > 0 && s.t%s.cutEvery == 0 {
		s.newScene()
	}
	w, h := s.p.W, s.p.H
	// Pan speed: cross the extra world width over one scene.
	span := s.world.W - w
	within := s.t % s.cutEvery
	off := within * span / s.cutEvery
	f := s.world.Crop(off, 0, w, h)
	// A foreground "guide" walking: high-contrast blob moving against pan.
	tSec := float64(s.t) / float64(s.p.FPS)
	gx := float64(w) * (0.2 + 0.6*math.Abs(math.Sin(tSec*0.7)))
	drawEllipse(f, gx, float64(h)*0.7, float64(w)*0.06, float64(h)*0.18, 230)
	addNoise(f, s.rng, 2.0)
	s.t++
	return f
}

// FlashFrames is the number of consecutive bright frames each flash
// burst carries. It is the single source of truth shared by the feed
// (flashSource) and the oracle (IsFlashFrame), so the two cannot drift.
const FlashFrames = 2

// flashSource is the lag-probe feed: blank frames with a bright image for
// FlashFrames frames once per period (paper: two-second periodicity).
type flashSource struct {
	p        Profile
	t        int
	periodFr int
}

// NewFlash creates the Fig-2 feed. period is in seconds of content time.
func NewFlash(p Profile, periodSec float64) Source {
	return &flashSource{p: p, periodFr: flashPeriodFrames(p, periodSec)}
}

// flashPeriodFrames converts a flash period to frames, clamped so a
// period never underruns the flash burst itself.
func flashPeriodFrames(p Profile, periodSec float64) int {
	pf := int(periodSec * float64(p.FPS))
	if pf < FlashFrames {
		pf = FlashFrames
	}
	return pf
}

func (s *flashSource) Dims() (int, int) { return s.p.W, s.p.H }
func (s *flashSource) FPS() int         { return s.p.FPS }

func (s *flashSource) Next() *Frame {
	f := NewFrame(s.p.W, s.p.H)
	if s.t%s.periodFr < FlashFrames {
		// A high-detail flash image: checkerboard (incompressible burst).
		for y := 0; y < s.p.H; y++ {
			for x := 0; x < s.p.W; x++ {
				if (x/4+y/4)%2 == 0 {
					f.Set(x, y, 235)
				}
			}
		}
	}
	s.t++
	return f
}

// IsFlashFrame reports whether the i-th frame of a NewFlash feed with the
// given parameters carries the flash image.
func IsFlashFrame(p Profile, periodSec float64, i int) bool {
	return i%flashPeriodFrames(p, periodSec) < FlashFrames
}

// padded wraps a source, adding the Fig-13 border.
type padded struct {
	src    Source
	border int
	fill   uint8
}

// NewPadded wraps src with a border of the given width.
func NewPadded(src Source, border int, fill uint8) Source {
	return &padded{src: src, border: border, fill: fill}
}

func (s *padded) Dims() (int, int) {
	w, h := s.src.Dims()
	return w + 2*s.border, h + 2*s.border
}
func (s *padded) FPS() int     { return s.src.FPS() }
func (s *padded) Next() *Frame { return s.src.Next().Pad(s.border, s.fill) }

// NewSource builds a source for a motion class.
func NewSource(class MotionClass, p Profile, seed int64) Source {
	if class == LowMotion {
		return NewLowMotion(p, seed)
	}
	return NewHighMotion(p, seed)
}

// Record captures n frames from a source into a slice (test/QoE helper).
func Record(src Source, n int) []*Frame {
	out := make([]*Frame, n)
	for i := range out {
		out[i] = src.Next()
	}
	return out
}

// textured builds a frame of smooth low-frequency texture: base luma with
// sinusoidal variation plus seeded speckle, clamped to [0,255].
func textured(w, h int, base uint8, amp float64, rng *rand.Rand) *Frame {
	f := NewFrame(w, h)
	phix := rng.Float64() * 2 * math.Pi
	phiy := rng.Float64() * 2 * math.Pi
	fx := 2 + rng.Float64()*4
	fy := 2 + rng.Float64()*4
	for y := 0; y < h; y++ {
		sy := math.Sin(float64(y)/float64(h)*fy*2*math.Pi + phiy)
		for x := 0; x < w; x++ {
			sx := math.Sin(float64(x)/float64(w)*fx*2*math.Pi + phix)
			v := float64(base) + amp*0.5*(sx+sy)
			f.Set(x, y, clamp8(v))
		}
	}
	return f
}

func drawEllipse(f *Frame, cx, cy, rx, ry float64, v uint8) {
	x0 := int(math.Max(0, cx-rx))
	x1 := int(math.Min(float64(f.W-1), cx+rx))
	y0 := int(math.Max(0, cy-ry))
	y1 := int(math.Min(float64(f.H-1), cy+ry))
	for y := y0; y <= y1; y++ {
		dy := (float64(y) - cy) / ry
		for x := x0; x <= x1; x++ {
			dx := (float64(x) - cx) / rx
			if dx*dx+dy*dy <= 1 {
				f.Set(x, y, v)
			}
		}
	}
}

func addNoise(f *Frame, rng *rand.Rand, std float64) {
	for i := range f.Pix {
		v := float64(f.Pix[i]) + rng.NormFloat64()*std
		f.Pix[i] = clamp8(v)
	}
}

func clamp8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}
