// Package media generates the deterministic audiovisual content the paper
// injected through loopback devices: a low-motion "talking head" feed, a
// high-motion "tour guide" feed, the periodic-flash feed used for lag
// measurement (Fig 2), padded variants that keep client UI widgets out of
// the scored viewport (Fig 13), and speech-like PCM audio.
//
// Frames are single-plane 8-bit luma images: every QoE metric the paper
// uses (PSNR, SSIM, VIFp) is computed on luma, so carrying chroma would
// only add cost without changing any result.
package media

import (
	"fmt"
	"math"
)

// Frame is an 8-bit luma image.
type Frame struct {
	W, H int
	Pix  []uint8 // row-major, len == W*H
}

// NewFrame allocates a zeroed (black) frame.
func NewFrame(w, h int) *Frame {
	if w <= 0 || h <= 0 {
		panic("media: non-positive frame dimensions")
	}
	return &Frame{W: w, H: h, Pix: make([]uint8, w*h)}
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	g := NewFrame(f.W, f.H)
	copy(g.Pix, f.Pix)
	return g
}

// FramePool recycles frame buffers by exact pixel count, for transient
// frames whose lifetime the caller fully controls (codec resize-ladder
// intermediates, for example). It is deliberately not a sync.Pool: a
// FramePool belongs to one owner on one goroutine, so reuse order is
// deterministic and never crosses forked testbeds. Buffers come back
// dirty — Get's caller must overwrite every pixel before reading any.
//
// Frames that escape into long-lived structures (encoder reconstructions,
// recordings, anything a QoE scorer may see) must NOT come from a pool:
// downstream caches key on frame identity, which reuse would corrupt.
type FramePool struct {
	free map[int][]*Frame
}

// NewFramePool returns an empty pool.
func NewFramePool() *FramePool { return &FramePool{free: make(map[int][]*Frame)} }

// Get returns a w×h frame with undefined pixel contents.
func (p *FramePool) Get(w, h int) *Frame {
	n := w * h
	if bucket := p.free[n]; len(bucket) > 0 {
		f := bucket[len(bucket)-1]
		p.free[n] = bucket[:len(bucket)-1]
		f.W, f.H = w, h
		return f
	}
	if w <= 0 || h <= 0 {
		panic("media: non-positive frame dimensions")
	}
	return &Frame{W: w, H: h, Pix: make([]uint8, n)}
}

// Put returns a frame to the pool. The caller must not touch it again.
func (p *FramePool) Put(f *Frame) {
	if f == nil || len(f.Pix) == 0 {
		return
	}
	p.free[len(f.Pix)] = append(p.free[len(f.Pix)], f)
}

// At returns the pixel at (x, y).
func (f *Frame) At(x, y int) uint8 { return f.Pix[y*f.W+x] }

// Set writes the pixel at (x, y).
func (f *Frame) Set(x, y int, v uint8) { f.Pix[y*f.W+x] = v }

// Fill sets every pixel to v.
func (f *Frame) Fill(v uint8) {
	for i := range f.Pix {
		f.Pix[i] = v
	}
}

// MeanAbsDiff returns the mean absolute pixel difference between two
// frames of identical geometry — the simulator's motion/complexity
// measure. It panics on geometry mismatch.
func MeanAbsDiff(a, b *Frame) float64 {
	if a.W != b.W || a.H != b.H {
		panic(fmt.Sprintf("media: frame geometry mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H))
	}
	var sum int64
	for i := range a.Pix {
		d := int64(a.Pix[i]) - int64(b.Pix[i])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return float64(sum) / float64(len(a.Pix))
}

// SpatialDetail returns the mean absolute horizontal+vertical gradient —
// a cheap proxy for intra-frame coding complexity.
func (f *Frame) SpatialDetail() float64 {
	var sum int64
	var n int64
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			v := int64(f.At(x, y))
			if x+1 < f.W {
				d := v - int64(f.At(x+1, y))
				if d < 0 {
					d = -d
				}
				sum += d
				n++
			}
			if y+1 < f.H {
				d := v - int64(f.At(x, y+1))
				if d < 0 {
					d = -d
				}
				sum += d
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Crop returns a copy of the rectangle [x0,x0+w) x [y0,y0+h).
func (f *Frame) Crop(x0, y0, w, h int) *Frame {
	if x0 < 0 || y0 < 0 || x0+w > f.W || y0+h > f.H {
		panic("media: crop out of bounds")
	}
	g := NewFrame(w, h)
	for y := 0; y < h; y++ {
		copy(g.Pix[y*w:(y+1)*w], f.Pix[(y0+y)*f.W+x0:(y0+y)*f.W+x0+w])
	}
	return g
}

// Pad returns a new frame with a uniform border of the given width and
// luma value around the content (the Fig-13 trick that keeps client UI
// widgets out of the scored area).
func (f *Frame) Pad(border int, v uint8) *Frame {
	g := NewFrame(f.W+2*border, f.H+2*border)
	g.Fill(v)
	for y := 0; y < f.H; y++ {
		copy(g.Pix[(y+border)*g.W+border:(y+border)*g.W+border+f.W], f.Pix[y*f.W:(y+1)*f.W])
	}
	return g
}

// Resize scales the frame to w×h with bilinear interpolation (the
// recording post-processing step that maps the captured viewport back to
// the injected resolution).
func (f *Frame) Resize(w, h int) *Frame {
	if w == f.W && h == f.H {
		return f.Clone()
	}
	return f.resizeTo(NewFrame(w, h))
}

// ResizePooled is Resize into a buffer from p; the result must go back
// via p.Put once consumed. The interpolation is identical to Resize.
func (f *Frame) ResizePooled(p *FramePool, w, h int) *Frame {
	if w == f.W && h == f.H {
		g := p.Get(w, h)
		copy(g.Pix, f.Pix)
		return g
	}
	return f.resizeTo(p.Get(w, h))
}

// resizeTo writes the bilinear rescale of f into g (every pixel).
func (f *Frame) resizeTo(g *Frame) *Frame {
	w, h := g.W, g.H
	xr := float64(f.W-1) / float64(maxInt(w-1, 1))
	yr := float64(f.H-1) / float64(maxInt(h-1, 1))
	for y := 0; y < h; y++ {
		sy := float64(y) * yr
		y0 := int(sy)
		fy := sy - float64(y0)
		y1 := y0 + 1
		if y1 >= f.H {
			y1 = f.H - 1
		}
		for x := 0; x < w; x++ {
			sx := float64(x) * xr
			x0 := int(sx)
			fx := sx - float64(x0)
			x1 := x0 + 1
			if x1 >= f.W {
				x1 = f.W - 1
			}
			v := (1-fx)*(1-fy)*float64(f.At(x0, y0)) +
				fx*(1-fy)*float64(f.At(x1, y0)) +
				(1-fx)*fy*float64(f.At(x0, y1)) +
				fx*fy*float64(f.At(x1, y1))
			g.Set(x, y, uint8(math.Round(v)))
		}
	}
	return g
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
