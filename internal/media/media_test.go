package media

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFrameBasics(t *testing.T) {
	f := NewFrame(4, 3)
	if len(f.Pix) != 12 {
		t.Fatalf("pix len = %d", len(f.Pix))
	}
	f.Set(2, 1, 200)
	if f.At(2, 1) != 200 {
		t.Error("Set/At broken")
	}
	g := f.Clone()
	g.Set(2, 1, 0)
	if f.At(2, 1) != 200 {
		t.Error("Clone shares storage")
	}
	f.Fill(7)
	for _, p := range f.Pix {
		if p != 7 {
			t.Fatal("Fill incomplete")
		}
	}
}

func TestNewFramePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewFrame(0, 5)
}

func TestMeanAbsDiff(t *testing.T) {
	a, b := NewFrame(2, 2), NewFrame(2, 2)
	b.Fill(10)
	if d := MeanAbsDiff(a, b); d != 10 {
		t.Errorf("MAD = %v, want 10", d)
	}
	if d := MeanAbsDiff(a, a); d != 0 {
		t.Errorf("self MAD = %v", d)
	}
}

func TestMeanAbsDiffGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MeanAbsDiff(NewFrame(2, 2), NewFrame(3, 2))
}

func TestCropPadRoundTrip(t *testing.T) {
	f := NewFrame(8, 6)
	for i := range f.Pix {
		f.Pix[i] = uint8(i * 3)
	}
	p := f.Pad(4, 16)
	if p.W != 16 || p.H != 14 {
		t.Fatalf("padded dims %dx%d", p.W, p.H)
	}
	if p.At(0, 0) != 16 {
		t.Error("border not filled")
	}
	back := p.Crop(4, 4, 8, 6)
	if MeanAbsDiff(f, back) != 0 {
		t.Error("crop(pad(f)) != f")
	}
}

func TestCropOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewFrame(4, 4).Crop(2, 2, 4, 4)
}

func TestResizeIdentityAndScale(t *testing.T) {
	f := NewFrame(10, 10)
	for i := range f.Pix {
		f.Pix[i] = uint8(i)
	}
	same := f.Resize(10, 10)
	if MeanAbsDiff(f, same) != 0 {
		t.Error("identity resize changed pixels")
	}
	up := f.Resize(20, 20)
	down := up.Resize(10, 10)
	if MeanAbsDiff(f, down) > 3 {
		t.Errorf("up/down resize error = %v", MeanAbsDiff(f, down))
	}
}

func TestLowMotionIsLow(t *testing.T) {
	p := QuickProfile
	lm := NewLowMotion(p, 1)
	hm := NewHighMotion(p, 1)
	lmMAD, hmMAD := avgMotion(lm, 30), avgMotion(hm, 30)
	if lmMAD >= hmMAD {
		t.Errorf("low-motion MAD %v >= high-motion MAD %v", lmMAD, hmMAD)
	}
	if hmMAD < 5 {
		t.Errorf("high-motion MAD %v suspiciously small", hmMAD)
	}
	if lmMAD > hmMAD/2 {
		t.Errorf("classes not well separated: %v vs %v", lmMAD, hmMAD)
	}
}

func avgMotion(s Source, n int) float64 {
	prev := s.Next()
	var sum float64
	for i := 0; i < n; i++ {
		f := s.Next()
		sum += MeanAbsDiff(prev, f)
		prev = f
	}
	return sum / float64(n)
}

func TestSourceDeterminism(t *testing.T) {
	for _, class := range []MotionClass{LowMotion, HighMotion} {
		a := NewSource(class, QuickProfile, 42)
		b := NewSource(class, QuickProfile, 42)
		for i := 0; i < 10; i++ {
			if MeanAbsDiff(a.Next(), b.Next()) != 0 {
				t.Errorf("%v source not deterministic at frame %d", class, i)
			}
		}
	}
}

func TestFlashSource(t *testing.T) {
	p := QuickProfile // 10 fps
	s := NewFlash(p, 2.0)
	frames := Record(s, 45)
	for i, f := range frames {
		bright := f.SpatialDetail() > 10
		if IsFlashFrame(p, 2.0, i) != bright {
			t.Errorf("frame %d: flash=%v bright=%v", i, IsFlashFrame(p, 2.0, i), bright)
		}
	}
	// Exactly 2 flash frames per 20-frame period at 10fps.
	flashes := 0
	for i := 0; i < 40; i++ {
		if IsFlashFrame(p, 2.0, i) {
			flashes++
		}
	}
	if flashes != 4 {
		t.Errorf("flash frames in 2 periods = %d, want 4", flashes)
	}
}

func TestPaddedSource(t *testing.T) {
	base := NewLowMotion(QuickProfile, 3)
	p := NewPadded(base, 8, 0)
	w, h := p.Dims()
	if w != QuickProfile.W+16 || h != QuickProfile.H+16 {
		t.Errorf("padded dims %dx%d", w, h)
	}
	f := p.Next()
	if f.At(0, 0) != 0 {
		t.Error("border not black")
	}
	if p.FPS() != QuickProfile.FPS {
		t.Error("FPS not forwarded")
	}
}

func TestSceneCutsProduceSpikes(t *testing.T) {
	p := QuickProfile
	s := NewHighMotion(p, 9)
	prev := s.Next()
	cuts := 0
	var base float64
	var mads []float64
	for i := 1; i < p.FPS*13; i++ {
		f := s.Next()
		mads = append(mads, MeanAbsDiff(prev, f))
		prev = f
	}
	for _, m := range mads {
		base += m
	}
	base /= float64(len(mads))
	for _, m := range mads {
		if m > base*2.0 {
			cuts++
		}
	}
	if cuts < 2 {
		t.Errorf("expected >=2 scene-cut spikes in 13s, got %d", cuts)
	}
}

func TestSpeechProperties(t *testing.T) {
	c := NewSpeech(2.0, 5)
	if c.Rate != DefaultAudioRate {
		t.Errorf("rate = %d", c.Rate)
	}
	if math.Abs(c.Duration()-2.0) > 0.01 {
		t.Errorf("duration = %v", c.Duration())
	}
	r := c.RMS()
	if r < 0.02 || r > 0.5 {
		t.Errorf("speech RMS = %v out of plausible range", r)
	}
	// Determinism.
	d := NewSpeech(2.0, 5)
	for i := range c.Samples {
		if c.Samples[i] != d.Samples[i] {
			t.Fatal("speech not deterministic")
		}
	}
	// Contains pauses: some 50ms window with tiny energy.
	win := c.Rate / 20
	minRMS := math.Inf(1)
	for i := 0; i+win < len(c.Samples); i += win {
		w := c.Slice(i, i+win)
		if v := w.RMS(); v < minRMS {
			minRMS = v
		}
	}
	if minRMS > r/3 {
		t.Errorf("no pauses found: min window RMS %v vs overall %v", minRMS, r)
	}
}

func TestNormalize(t *testing.T) {
	c := NewTone(1, 440, 16000)
	c.Normalize(0.1)
	if math.Abs(c.RMS()-0.1) > 0.01 {
		t.Errorf("normalized RMS = %v", c.RMS())
	}
	s := NewSilence(1, 16000)
	s.Normalize(0.5) // must not divide by zero
	if s.RMS() != 0 {
		t.Error("silence changed")
	}
}

func TestToneAndSliceClone(t *testing.T) {
	c := NewTone(1, 1000, 8000)
	if len(c.Samples) != 8000 {
		t.Errorf("len = %d", len(c.Samples))
	}
	s := c.Slice(-5, 4000)
	if len(s.Samples) != 4000 {
		t.Errorf("slice len = %d", len(s.Samples))
	}
	cl := c.Clone()
	cl.Samples[0] = 9
	if c.Samples[0] == 9 {
		t.Error("Clone shares storage")
	}
	if e := c.Slice(5000, 100); len(e.Samples) != 0 {
		t.Error("inverted slice should be empty")
	}
}

// Property: clamp and pad/crop invariants hold for arbitrary geometry.
func TestPadCropProperty(t *testing.T) {
	f := func(w8, h8, b8 uint8) bool {
		w := int(w8%32) + 1
		h := int(h8%32) + 1
		b := int(b8 % 16)
		fr := NewFrame(w, h)
		for i := range fr.Pix {
			fr.Pix[i] = uint8(i)
		}
		p := fr.Pad(b, 99)
		back := p.Crop(b, b, w, h)
		return MeanAbsDiff(fr, back) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMotionClassString(t *testing.T) {
	if LowMotion.String() != "low-motion" || HighMotion.String() != "high-motion" {
		t.Error("MotionClass.String broken")
	}
}

// TestIsFlashFrameMatchesEmission pins the IsFlashFrame oracle against
// frames a NewFlash feed actually emits: a frame is "flash" iff its mean
// luma is bright, and the oracle must agree frame by frame — including
// at the short-period clamp, where the period floors at FlashFrames.
func TestIsFlashFrameMatchesEmission(t *testing.T) {
	cases := []struct {
		p         Profile
		periodSec float64
	}{
		{Profile{W: 32, H: 24, FPS: 10}, 2.0},
		{Profile{W: 32, H: 24, FPS: 30}, 2.0},
		{Profile{W: 16, H: 16, FPS: 10}, 0.7},
		{Profile{W: 16, H: 16, FPS: 10}, 0.01}, // clamps to FlashFrames
	}
	for _, c := range cases {
		src := NewFlash(c.p, c.periodSec)
		frames := Record(src, 4*c.p.FPS)
		for i, f := range frames {
			var sum int
			for _, v := range f.Pix {
				sum += int(v)
			}
			bright := sum > len(f.Pix)*50
			if got := IsFlashFrame(c.p, c.periodSec, i); got != bright {
				t.Fatalf("fps=%d period=%g frame %d: IsFlashFrame=%v but emitted brightness says %v",
					c.p.FPS, c.periodSec, i, got, bright)
			}
		}
	}
}

// TestFramePoolCycleAllocFree pins the pooled-frame satellite: once the
// pool holds buffers of the working sizes, a resize-ladder style cycle
// (pooled downscale, pooled scratch, both returned) costs zero heap
// allocations per iteration.
func TestFramePoolCycleAllocFree(t *testing.T) {
	p := NewFramePool()
	src := NewFrame(64, 48)
	for i := range src.Pix {
		src.Pix[i] = uint8(i * 31)
	}
	cycle := func() {
		small := src.ResizePooled(p, 32, 24)
		scratch := p.Get(32, 24)
		copy(scratch.Pix, small.Pix)
		p.Put(small)
		p.Put(scratch)
	}
	cycle() // warm: seed the 32x24 bucket
	if avg := testing.AllocsPerRun(200, cycle); avg > 0.05 {
		t.Errorf("pooled frame cycle allocates %.2f objects/op, want 0", avg)
	}
}

// TestFramePoolRecyclesByPixelCount pins the bucket contract: a frame
// returned to the pool comes back from the next Get with the same pixel
// count — including across geometries, which Get retags.
func TestFramePoolRecyclesByPixelCount(t *testing.T) {
	p := NewFramePool()
	f := p.Get(16, 12)
	p.Put(f)
	g := p.Get(16, 12)
	if g != f {
		t.Fatal("same-size Get did not recycle the returned frame")
	}
	p.Put(g)
	h := p.Get(12, 16) // 192 pixels too: same bucket, new geometry
	if h != f {
		t.Fatal("equal-pixel-count Get did not recycle the returned frame")
	}
	if h.W != 12 || h.H != 16 {
		t.Fatalf("recycled frame not retagged: %dx%d, want 12x16", h.W, h.H)
	}
}
