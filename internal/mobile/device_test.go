package mobile

import (
	"math/rand"
	"testing"

	"github.com/vcabench/vcabench/internal/client"
	"github.com/vcabench/vcabench/internal/platform"
)

func TestTable2Specs(t *testing.T) {
	if GalaxyJ3.Cores != 4 || GalaxyJ3.MemoryGB != 2 || GalaxyJ3.ScreenW != 720 {
		t.Errorf("J3 specs: %+v", GalaxyJ3)
	}
	if GalaxyS10.Cores != 8 || GalaxyS10.MemoryGB != 8 || GalaxyS10.ScreenH != 3040 {
		t.Errorf("S10 specs: %+v", GalaxyS10)
	}
	if GalaxyJ3.Class != LowEnd || GalaxyS10.Class != HighEnd {
		t.Error("device classes")
	}
}

// Finding-5 and Fig 19a: 2-3 full cores for LM/HM on both devices.
func TestCPUNeedsTwoToThreeCores(t *testing.T) {
	for _, k := range platform.Kinds {
		for _, d := range Devices {
			for _, sc := range []Scenario{ScenarioLM, ScenarioHM} {
				cpu := CPUPercent(k, d, sc)
				if cpu < 120 || cpu > 320 {
					t.Errorf("%s/%s/%s CPU = %.0f%%, want 120-320", k, d.Name, sc, cpu)
				}
			}
		}
	}
}

// Fig 19a: Meet adds ~50% extra CPU on the high-end device, but usage is
// comparable (~200%) across clients on the low-end device.
func TestMeetOpportunisticOnS10(t *testing.T) {
	zoom := CPUPercent(platform.Zoom, GalaxyS10, ScenarioLM)
	meet := CPUPercent(platform.Meet, GalaxyS10, ScenarioLM)
	if meet < zoom+35 {
		t.Errorf("Meet S10 CPU %.0f not clearly above Zoom %.0f", meet, zoom)
	}
	var lo, hi float64 = 1e9, 0
	for _, k := range platform.Kinds {
		c := CPUPercent(k, GalaxyJ3, ScenarioLM)
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if hi-lo > 45 {
		t.Errorf("J3 clients should be comparable: spread %.0f (%v..%v)", hi-lo, lo, hi)
	}
}

// Fig 19a: only Zoom benefits from gallery view (-50%); Webex slightly
// increases; Meet unchanged.
func TestGalleryViewEffects(t *testing.T) {
	zFull := CPUPercent(platform.Zoom, GalaxyS10, ScenarioLM)
	zGal := CPUPercent(platform.Zoom, GalaxyS10, ScenarioLMView)
	if zGal > zFull*0.75 {
		t.Errorf("Zoom gallery CPU %.0f vs full %.0f: want big reduction", zGal, zFull)
	}
	wFull := CPUPercent(platform.Webex, GalaxyS10, ScenarioLM)
	wGal := CPUPercent(platform.Webex, GalaxyS10, ScenarioLMView)
	if wGal < wFull*0.95 {
		t.Errorf("Webex gallery CPU %.0f should not drop below full %.0f", wGal, wFull)
	}
	mFull := CPUPercent(platform.Meet, GalaxyS10, ScenarioLM)
	mGal := CPUPercent(platform.Meet, GalaxyS10, ScenarioLMView)
	if mGal < mFull*0.85 || mGal > mFull*1.15 {
		t.Errorf("Meet gallery CPU %.0f should match full %.0f", mGal, mFull)
	}
}

// Fig 19a: screen-off minimizes CPU for Zoom/Meet (25-60%) but Webex
// still burns ~125%.
func TestScreenOffCPU(t *testing.T) {
	for _, k := range []platform.Kind{platform.Zoom, platform.Meet} {
		cpu := CPUPercent(k, GalaxyS10, ScenarioLMOff)
		if cpu > 60 {
			t.Errorf("%s screen-off CPU = %.0f, want <= 60", k, cpu)
		}
	}
	w := CPUPercent(platform.Webex, GalaxyS10, ScenarioLMOff)
	if w < 100 {
		t.Errorf("Webex screen-off CPU = %.0f, want >= 100 (client inefficiency)", w)
	}
}

// Camera activation adds ~100% on S10 and ~50% on J3 (any client).
func TestCameraCost(t *testing.T) {
	for _, k := range platform.Kinds {
		s10 := CPUPercent(k, GalaxyS10, ScenarioLMVidView) - CPUPercent(k, GalaxyS10, ScenarioLMView)
		if s10 < 60 {
			t.Errorf("%s S10 camera cost = %.0f, want ~100 (soft cap may shrink it)", k, s10)
		}
		j3 := CPUPercent(k, GalaxyJ3, ScenarioLMVidView) - CPUPercent(k, GalaxyJ3, ScenarioLMView)
		if j3 <= 0 {
			t.Errorf("%s J3 camera cost = %.0f, want > 0", k, j3)
		}
		if j3 >= s10 {
			t.Errorf("%s camera cost J3 %.0f >= S10 %.0f (S10 has the better camera)", k, j3, s10)
		}
	}
}

// Finding-5: Meet is the most bandwidth-hungry (up to ~1 GB/h ≈ 2.2 Mbps);
// Zoom gallery needs only ~175 MB/h (~0.39 Mbps).
func TestDataRateBounds(t *testing.T) {
	meet := DataRateMbps(platform.Meet, GalaxyS10, ScenarioHM)
	if meet < 1.9 || meet > 2.5 {
		t.Errorf("Meet HM rate = %.2f Mbps, want ~2.1 (1 GB/h)", meet)
	}
	zg := DataRateMbps(platform.Zoom, GalaxyS10, ScenarioLMView)
	gbPerHour := zg * 3600 / 8 / 1000
	if gbPerHour < 0.10 || gbPerHour > 0.25 {
		t.Errorf("Zoom gallery = %.2f GB/h, want ~0.175", gbPerHour)
	}
}

// Fig 19b: only Webex adapts to the device class in full screen.
func TestWebexDeviceAdaptive(t *testing.T) {
	wS10 := DataRateMbps(platform.Webex, GalaxyS10, ScenarioHM)
	wJ3 := DataRateMbps(platform.Webex, GalaxyJ3, ScenarioHM)
	if wS10 < wJ3*1.5 {
		t.Errorf("Webex not device-adaptive: S10 %.2f vs J3 %.2f", wS10, wJ3)
	}
	mS10 := DataRateMbps(platform.Meet, GalaxyS10, ScenarioHM)
	mJ3 := DataRateMbps(platform.Meet, GalaxyJ3, ScenarioHM)
	if mS10 < mJ3*0.9 || mS10 > mJ3*1.1 {
		t.Errorf("Meet should ignore device class: %.2f vs %.2f", mS10, mJ3)
	}
}

// Screen-off scenarios carry only audio: 100-200 kbps.
func TestScreenOffRate(t *testing.T) {
	for _, k := range platform.Kinds {
		r := DataRateMbps(k, GalaxyJ3, ScenarioLMOff)
		if r < 0.08 || r > 0.22 {
			t.Errorf("%s screen-off rate = %.2f Mbps", k, r)
		}
	}
}

// Table 4: resource usage plateaus beyond the 4-tile UI limit.
func TestConferenceSizePlateau(t *testing.T) {
	for _, k := range platform.Kinds {
		for _, view := range []client.View{client.ViewFullScreen, client.ViewGallery} {
			sc6 := Scenario{Label: "N6", Feed: ScenarioHM.Feed, View: view, N: 6}
			sc11 := Scenario{Label: "N11", Feed: ScenarioHM.Feed, View: view, N: 11}
			r6 := DataRateMbps(k, GalaxyS10, sc6)
			r11 := DataRateMbps(k, GalaxyS10, sc11)
			if rel := (r11 - r6) / r6; rel > 0.10 || rel < -0.10 {
				t.Errorf("%s/%v rate N=6 %.2f vs N=11 %.2f: want plateau", k, view, r6, r11)
			}
			c6 := CPUPercent(k, GalaxyS10, sc6)
			c11 := CPUPercent(k, GalaxyS10, sc11)
			if rel := (c11 - c6) / c6; rel > 0.10 || rel < -0.10 {
				t.Errorf("%s/%v CPU N=6 %.0f vs N=11 %.0f: want plateau", k, view, c6, c11)
			}
		}
	}
}

// Table 4: gallery with extra participants doubles Zoom's rate vs N=3
// gallery; Webex's gallery rate *drops* with more participants.
func TestTable4GalleryShapes(t *testing.T) {
	z3 := DataRateMbps(platform.Zoom, GalaxyS10, ScenarioLMView)
	z6 := DataRateMbps(platform.Zoom, GalaxyS10, Scenario{Feed: ScenarioLMView.Feed, View: client.ViewGallery, N: 6})
	if z6 < z3*1.7 {
		t.Errorf("Zoom gallery rate should ~double with more tiles: %.2f -> %.2f", z3, z6)
	}
	w3 := DataRateMbps(platform.Webex, GalaxyS10, Scenario{Feed: ScenarioHM.Feed, View: client.ViewGallery, N: 3})
	w6 := DataRateMbps(platform.Webex, GalaxyS10, Scenario{Feed: ScenarioHM.Feed, View: client.ViewGallery, N: 6})
	if w6 >= w3 {
		t.Errorf("Webex gallery rate should drop with more tiles: %.2f -> %.2f", w3, w6)
	}
}

// Finding-5: one hour drains up to ~40% of the J3 battery with camera
// on, reduced to roughly half with screen off.
func TestBatteryFinding5(t *testing.T) {
	worst := 0.0
	for _, k := range platform.Kinds {
		if p := DischargePercent(k, GalaxyJ3, ScenarioLMVidView, 60); p > worst {
			worst = p
		}
	}
	if worst < 28 || worst > 48 {
		t.Errorf("worst-case 1h drain = %.0f%%, want ~40%%", worst)
	}
	for _, k := range platform.Kinds {
		on := DischargePercent(k, GalaxyJ3, ScenarioLM, 60)
		off := DischargePercent(k, GalaxyJ3, ScenarioLMOff, 60)
		if off > on*0.75 {
			t.Errorf("%s screen-off drain %.0f%% vs on %.0f%%: want big saving", k, off, on)
		}
	}
}

// Fig 19c: clients within ~10 percentage points of each other; Zoom
// gallery saves ~20% vs LM.
func TestBatteryClientSpread(t *testing.T) {
	var drains []float64
	for _, k := range platform.Kinds {
		drains = append(drains, DischargemAh(k, GalaxyJ3, ScenarioLM, 60))
	}
	lo, hi := drains[0], drains[0]
	for _, d := range drains {
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if (hi-lo)/lo > 0.35 {
		t.Errorf("battery spread across clients too wide: %v", drains)
	}
	zLM := DischargemAh(platform.Zoom, GalaxyJ3, ScenarioLM, 60)
	zGal := DischargemAh(platform.Zoom, GalaxyJ3, ScenarioLMView, 60)
	if zGal > zLM*0.92 {
		t.Errorf("Zoom gallery should save battery: %.0f vs %.0f", zGal, zLM)
	}
}

func TestCPUSamplesDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := CPUSamples(platform.Zoom, GalaxyJ3, ScenarioLM, 100, rng)
	if s.Len() != 100 {
		t.Fatal("sample count")
	}
	med := CPUPercent(platform.Zoom, GalaxyJ3, ScenarioLM)
	if got := s.Median(); got < med*0.9 || got > med*1.1 {
		t.Errorf("sample median %.0f vs model %.0f", got, med)
	}
	if s.Max() > float64(GalaxyJ3.Cores*100) {
		t.Error("sample exceeds hard core cap")
	}
}

func TestUnknownPlatformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	CPUPercent(platform.Kind("skype"), GalaxyS10, ScenarioLM)
}

func TestStrings(t *testing.T) {
	if HighEnd.String() == LowEnd.String() {
		t.Error("class strings")
	}
	if ScenarioLM.String() != "LM" {
		t.Error("scenario label")
	}
}
