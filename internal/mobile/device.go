// Package mobile models the Android measurement rig of paper §5: the two
// Samsung devices of Table 2, their CPU usage, download data rate and
// battery discharge across videoconferencing scenarios (Fig 19, Table 4).
//
// What the paper measured on hardware is replaced here by a component
// model: client CPU decomposes into a UI/compositing base, a rate-driven
// decode cost, camera-capture and audio-pipeline costs, with per-device
// efficiency and saturation; battery power decomposes into SoC, screen,
// camera and radio components integrated by a Monsoon-style meter. Data
// rates are the platforms' mobile delivery policies (per device, view and
// participant count), which the paper observed from pcap traces; they are
// encoded as policy tables because they are *inputs* to the resource
// model, not outputs of it.
package mobile

import (
	"fmt"
	"math/rand"

	"github.com/vcabench/vcabench/internal/client"
	"github.com/vcabench/vcabench/internal/media"
	"github.com/vcabench/vcabench/internal/platform"
	"github.com/vcabench/vcabench/internal/stats"
)

// DeviceClass partitions devices as the paper does.
type DeviceClass int

const (
	HighEnd DeviceClass = iota
	LowEnd
)

func (c DeviceClass) String() string {
	if c == HighEnd {
		return "high-end"
	}
	return "low-end"
}

// Device is an Android measurement target (paper Table 2).
type Device struct {
	Name           string
	Class          DeviceClass
	AndroidVersion int
	Cores          int
	MemoryGB       int
	ScreenW        int
	ScreenH        int
	BatterymAh     float64
	NominalVolts   float64
	CameraMP       float64
	// Efficiency scales CPU cost relative to the S10's cores (bigger =
	// slower cores burn more utilization for the same work).
	Efficiency float64
	// SoftCapCPU is where the device's scheduler/thermal envelope starts
	// flattening utilization growth.
	SoftCapCPU float64
}

// The two devices of Table 2.
var (
	GalaxyS10 = Device{
		Name: "Galaxy S10", Class: HighEnd, AndroidVersion: 11,
		Cores: 8, MemoryGB: 8, ScreenW: 1440, ScreenH: 3040,
		BatterymAh: 3400, NominalVolts: 3.85, CameraMP: 10,
		Efficiency: 1.0, SoftCapCPU: 600,
	}
	GalaxyJ3 = Device{
		Name: "Galaxy J3", Class: LowEnd, AndroidVersion: 8,
		Cores: 4, MemoryGB: 2, ScreenW: 720, ScreenH: 1280,
		BatterymAh: 2600, NominalVolts: 3.85, CameraMP: 5,
		Efficiency: 1.25, SoftCapCPU: 210,
	}
)

// Devices lists the rig in paper order.
var Devices = []Device{GalaxyS10, GalaxyJ3}

// Scenario is one mobile experiment condition (Fig 19 labels).
type Scenario struct {
	Label    string
	Feed     media.MotionClass
	View     client.View
	CameraOn bool
	// N is the conference size including the streaming cloud VMs
	// (Fig 19 uses N=3: one host VM plus the two devices).
	N int
}

// The five Fig-19 scenarios.
var (
	ScenarioLM        = Scenario{Label: "LM", Feed: media.LowMotion, View: client.ViewFullScreen, N: 3}
	ScenarioHM        = Scenario{Label: "HM", Feed: media.HighMotion, View: client.ViewFullScreen, N: 3}
	ScenarioLMView    = Scenario{Label: "LM-View", Feed: media.LowMotion, View: client.ViewGallery, N: 3}
	ScenarioLMVidView = Scenario{Label: "LM-Video-View", Feed: media.LowMotion, View: client.ViewGallery, CameraOn: true, N: 3}
	ScenarioLMOff     = Scenario{Label: "LM-Off", Feed: media.LowMotion, View: client.ViewScreenOff, N: 3}
)

// StandardScenarios is the Fig-19 scenario set in presentation order.
var StandardScenarios = []Scenario{ScenarioLM, ScenarioHM, ScenarioLMView, ScenarioLMVidView, ScenarioLMOff}

func (s Scenario) String() string { return s.Label }

// clientModel captures per-platform client behavior on Android.
type clientModel struct {
	// uiBase is compositing/UI CPU with the screen on.
	uiBase float64
	// decodePerMbps converts incoming video rate into decode CPU.
	decodePerMbps float64
	// audioCPU is the pipeline cost with the screen off.
	audioCPU float64
	// galleryExtra is added in gallery view (Webex's inefficiency).
	galleryExtra float64
	// opportunistic is extra CPU grabbed when the device has headroom
	// (Meet on the S10).
	opportunistic float64
	// backgroundBufferCPU is spent pre-buffering hidden streams for
	// fast view switching (Zoom, §5 Table 4 discussion), per extra
	// participant beyond 3, in full-screen mode.
	backgroundBufferCPU float64
}

func modelFor(k platform.Kind) clientModel {
	switch k {
	case platform.Zoom:
		return clientModel{uiBase: 80, decodePerMbps: 90, audioCPU: 38, backgroundBufferCPU: 4}
	case platform.Webex:
		// Webex's cost sits in the client pipeline itself (the paper
		// notes its failure to scale down with device settings), not in
		// rate-proportional decode.
		return clientModel{uiBase: 120, decodePerMbps: 32, audioCPU: 125, galleryExtra: 60}
	case platform.Meet:
		return clientModel{uiBase: 90, decodePerMbps: 55, audioCPU: 42, opportunistic: 22}
	}
	panic(fmt.Sprintf("mobile: unknown platform %q", k))
}

// DataRateMbps returns the client's average download data rate for a
// scenario — the platform's mobile delivery policy (Fig 19b, Table 4).
func DataRateMbps(k platform.Kind, d Device, sc Scenario) float64 {
	if sc.View == client.ViewScreenOff {
		// Audio only (plus control): 100-200 kbps depending on codec.
		switch k {
		case platform.Zoom:
			return 0.11
		case platform.Webex:
			return 0.10
		default:
			return 0.16
		}
	}
	n := sc.N
	if n < 3 {
		n = 3
	}
	gallery := sc.View == client.ViewGallery
	low := d.Class == LowEnd
	var rate float64
	switch k {
	case platform.Zoom:
		// Sticks near its default rate; gallery halves it at small N but
		// extra tiles push it back up (more streams to fetch).
		switch {
		case !gallery && n <= 3:
			rate = pick(low, 0.90, 0.85)
		case !gallery:
			rate = pick(low, 0.95, 0.92)
		case n <= 3:
			rate = pick(low, 0.37, 0.33)
		default:
			rate = pick(low, 0.74, 0.72)
		}
	case platform.Webex:
		// Truly device-adaptive full-screen rate; gallery is lower and
		// degrades further with more participants.
		switch {
		case !gallery:
			rate = pick(low, 0.90, 1.76)
		case n <= 3:
			rate = pick(low, 0.59, 0.57)
		default:
			rate = pick(low, 0.45, 0.46)
		}
	case platform.Meet:
		// Ignores both device class and view; grows slightly with N
		// (thumbnail previews stay visible even in full screen).
		switch {
		case n <= 3:
			rate = pick(low, 2.13, 2.08)
		default:
			rate = pick(low, 2.30, 2.20)
		}
	default:
		panic(fmt.Sprintf("mobile: unknown platform %q", k))
	}
	// Motion: low motion is more compressible for every client, least
	// so for Zoom (Fig 19b).
	if sc.Feed == media.LowMotion && sc.View == client.ViewFullScreen {
		switch k {
		case platform.Zoom:
			rate *= 0.95
		case platform.Webex:
			rate *= 0.96
		case platform.Meet:
			rate *= 0.92
		}
	}
	// A device camera adds the peer device's upload to this client's
	// download in gallery (it renders the peer's tile).
	if sc.CameraOn && gallery && low {
		rate += 0.70 // the S10's higher-quality camera stream
	} else if sc.CameraOn && gallery {
		rate += 0.45 // the J3's dimmer, lower-quality stream
	}
	return rate
}

func pick(cond bool, a, b float64) float64 {
	if cond {
		return a
	}
	return b
}

// CPUPercent returns the median CPU utilization (100% = one core) for a
// scenario.
func CPUPercent(k platform.Kind, d Device, sc Scenario) float64 {
	m := modelFor(k)
	var cpu float64
	if sc.View == client.ViewScreenOff {
		cpu = m.audioCPU
	} else {
		rate := DataRateMbps(k, d, sc)
		decode := rate * m.decodePerMbps
		if sc.View == client.ViewGallery && k == platform.Zoom {
			// Zoom's gallery decodes four small tiles, cheaper per bit.
			decode *= 0.9
		}
		cpu = m.uiBase + decode
		if sc.View == client.ViewGallery {
			cpu += m.galleryExtra
		}
		if k == platform.Meet && d.Class == HighEnd {
			cpu += m.opportunistic
		}
		if sc.View == client.ViewFullScreen && sc.N > 3 && m.backgroundBufferCPU > 0 {
			cpu += m.backgroundBufferCPU * float64(min(sc.N, 3+client.MaxVisibleTiles)-3)
		}
	}
	if sc.CameraOn {
		if d.Class == HighEnd {
			cpu += 100 // 10 MP HDR pipeline
		} else {
			cpu += 50
		}
	}
	cpu *= d.Efficiency
	// Soft saturation at the device's envelope.
	if cpu > d.SoftCapCPU {
		cpu = d.SoftCapCPU + (cpu-d.SoftCapCPU)*0.1
	}
	hardCap := float64(d.Cores * 100)
	if cpu > hardCap {
		cpu = hardCap
	}
	return cpu
}

// CPUSamples produces n utilization samples (the paper samples every 3 s)
// around the scenario's median, with measurement noise.
func CPUSamples(k platform.Kind, d Device, sc Scenario, n int, rng *rand.Rand) *stats.Sample {
	med := CPUPercent(k, d, sc)
	s := stats.NewSample(n)
	for i := 0; i < n; i++ {
		v := med + rng.NormFloat64()*med*0.06
		if v < 5 {
			v = 5
		}
		if hc := float64(d.Cores * 100); v > hc {
			v = hc
		}
		s.Add(v)
	}
	return s
}

// Power-model constants (watts).
const (
	pIdle      = 0.55 // baseline platform power in a call
	pCallPath  = 0.50 // mic/speaker/DSP audio path
	pPerCore   = 0.70 // per 100% CPU
	pScreen    = 0.72 // screen on (J3-sized panel)
	pCamera    = 0.80 // camera capture pipeline
	pRadioBase = 0.25 // WiFi active
	pPerMbps   = 0.11 // marginal radio cost
)

// PowerWatts estimates average device power draw in a scenario.
func PowerWatts(k platform.Kind, d Device, sc Scenario) float64 {
	cpu := CPUPercent(k, d, sc) / 100
	rate := DataRateMbps(k, d, sc)
	p := pIdle + pCallPath + pPerCore*cpu + pRadioBase + pPerMbps*rate
	if sc.View != client.ViewScreenOff {
		p += pScreen
	}
	if sc.CameraOn {
		p += pCamera
	}
	return p
}

// DischargemAh integrates power over a call of the given minutes into
// battery charge consumed (what the Monsoon meter reports).
func DischargemAh(k platform.Kind, d Device, sc Scenario, minutes float64) float64 {
	w := PowerWatts(k, d, sc)
	amps := w / d.NominalVolts
	return amps * minutes / 60 * 1000
}

// DischargePercent converts a call's discharge into battery percentage.
func DischargePercent(k platform.Kind, d Device, sc Scenario, minutes float64) float64 {
	return DischargemAh(k, d, sc, minutes) / d.BatterymAh * 100
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
