package stats

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= eps
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Len() != 0 {
		t.Fatalf("Len of empty = %d", s.Len())
	}
	for name, v := range map[string]float64{
		"mean": s.Mean(), "sd": s.StdDev(), "min": s.Min(), "max": s.Max(),
		"q": s.Quantile(0.5),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s of empty sample = %v, want NaN", name, v)
		}
	}
}

func TestSampleBasics(t *testing.T) {
	s := NewSample(5)
	s.AddAll([]float64{4, 1, 3, 2, 5})
	if got := s.Mean(); !almost(got, 3, 1e-12) {
		t.Errorf("Mean = %v, want 3", got)
	}
	if got := s.Median(); !almost(got, 3, 1e-12) {
		t.Errorf("Median = %v, want 3", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := s.Max(); got != 5 {
		t.Errorf("Max = %v, want 5", got)
	}
	// Population stddev of 1..5 = sqrt(2).
	if got := s.StdDev(); !almost(got, math.Sqrt2, 1e-12) {
		t.Errorf("StdDev = %v, want sqrt(2)", got)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := NewSample(4)
	s.AddAll([]float64{10, 20, 30, 40})
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {0.25, 17.5}, {0.75, 32.5},
		{-1, 10}, {2, 40},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); !almost(got, c.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestSummary(t *testing.T) {
	s := NewSample(0)
	s.AddAll([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}) // 100 is an outlier
	sum := s.Summarize()
	if sum.N != 10 {
		t.Fatalf("N = %d", sum.N)
	}
	if sum.Max != 100 || sum.Min != 1 {
		t.Errorf("min/max = %v/%v", sum.Min, sum.Max)
	}
	if sum.WhiskHi >= 100 {
		t.Errorf("whisker includes outlier: %v", sum.WhiskHi)
	}
	if sum.WhiskLo != 1 {
		t.Errorf("WhiskLo = %v, want 1", sum.WhiskLo)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Sample
	sum := s.Summarize()
	if sum.N != 0 || !math.IsNaN(sum.Mean) {
		t.Errorf("empty summary = %+v", sum)
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almost(got, tc.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFInverse(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	cases := []struct{ p, want float64 }{
		{0, 10}, {0.25, 10}, {0.26, 20}, {0.5, 20}, {0.75, 30}, {1, 40},
	}
	for _, tc := range cases {
		if got := c.Inverse(tc.p); got != tc.want {
			t.Errorf("Inverse(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestCDFPoints(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	c := NewCDF(xs)
	px, pp := c.Points(10)
	if len(px) != 10 || len(pp) != 10 {
		t.Fatalf("Points lengths %d/%d", len(px), len(pp))
	}
	if px[0] != 0 || px[9] != 99 {
		t.Errorf("endpoints %v..%v", px[0], px[9])
	}
	if !sort.Float64sAreSorted(px) || !sort.Float64sAreSorted(pp) {
		t.Errorf("points not monotone")
	}
	if pp[9] != 1 {
		t.Errorf("final p = %v, want 1", pp[9])
	}
}

func TestCDFPointsSmall(t *testing.T) {
	c := NewCDF([]float64{5})
	px, pp := c.Points(10)
	if len(px) != 1 || px[0] != 5 || pp[0] != 1 {
		t.Errorf("single-point CDF: %v %v", px, pp)
	}
	var empty CDF
	if xs, ps := empty.Points(4); xs != nil || ps != nil {
		t.Errorf("empty CDF points = %v %v", xs, ps)
	}
}

// Property: CDF is monotone nondecreasing and bounded by [0, 1].
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, probes []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		sort.Float64s(probes)
		prev := 0.0
		for _, p := range probes {
			if math.IsNaN(p) {
				continue
			}
			v := c.At(p)
			if v < 0 || v > 1 || v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Quantile is monotone in q and within [min, max].
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		s := NewSample(len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s.Add(v)
			}
		}
		if s.Len() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := s.Quantile(q)
			if v < prev || v < s.Min() || v > s.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for i := 0; i < 10; i++ {
		h.Add(float64(i))
	}
	h.Add(-1)
	h.Add(11)
	if h.Total() != 12 {
		t.Errorf("Total = %d, want 12", h.Total())
	}
	for i, c := range h.Counts {
		if c != 2 {
			t.Errorf("bin %d count = %d, want 2", i, c)
		}
	}
	if got := h.BinCenter(0); !almost(got, 1, 1e-12) {
		t.Errorf("BinCenter(0) = %v", got)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram(5, 5, 0) // invalid args are repaired
	h.Add(5)
	if h.Total() != 1 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestMomentsMatchesSample(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var m Moments
	s := NewSample(1000)
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 42
		m.Add(x)
		s.Add(x)
	}
	if !almost(m.Mean(), s.Mean(), 1e-9) {
		t.Errorf("mean %v vs %v", m.Mean(), s.Mean())
	}
	if !almost(m.StdDev(), s.StdDev(), 1e-9) {
		t.Errorf("sd %v vs %v", m.StdDev(), s.StdDev())
	}
	if m.Min() != s.Min() || m.Max() != s.Max() {
		t.Errorf("min/max mismatch")
	}
	if m.N() != 1000 {
		t.Errorf("N = %d", m.N())
	}
}

func TestMomentsEmpty(t *testing.T) {
	var m Moments
	if !math.IsNaN(m.Mean()) || !math.IsNaN(m.Var()) || !math.IsNaN(m.Min()) || !math.IsNaN(m.Max()) {
		t.Error("empty moments should be NaN")
	}
}

func TestSummaryString(t *testing.T) {
	s := NewSample(3)
	s.AddAll([]float64{1, 2, 3})
	if str := s.Summarize().String(); str == "" {
		t.Error("empty String()")
	}
}

// Gob round-trips must preserve insertion order and exact bit patterns:
// Mean sums in slice order, so a reordered decode could change summary
// statistics in the last ulp and break byte-identical warm reruns.
func TestSampleGobRoundTrip(t *testing.T) {
	s := NewSample(0)
	for _, x := range []float64{3.5, -0.1, math.Inf(1), 1e-300, math.NaN(), 0.3, -0.0} {
		s.Add(x)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatal(err)
	}
	var back Sample
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != s.Len() {
		t.Fatalf("len = %d, want %d", back.Len(), s.Len())
	}
	for i := range s.xs {
		if math.Float64bits(back.xs[i]) != math.Float64bits(s.xs[i]) {
			t.Errorf("x[%d] = %x, want %x", i, math.Float64bits(back.xs[i]), math.Float64bits(s.xs[i]))
		}
	}
	if back.sorted {
		t.Error("decoded sample claims to be sorted")
	}

	var empty Sample
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(&empty); err != nil {
		t.Fatal(err)
	}
	var emptyBack Sample
	if err := gob.NewDecoder(&buf).Decode(&emptyBack); err != nil {
		t.Fatal(err)
	}
	if emptyBack.Len() != 0 {
		t.Errorf("empty round-trip has %d observations", emptyBack.Len())
	}
}

func TestSampleGobDecodeRejectsGarbage(t *testing.T) {
	var s Sample
	if err := s.GobDecode([]byte{1, 2, 3}); err == nil {
		t.Error("truncated header accepted")
	}
	// Claims 4 observations but carries none.
	bad := make([]byte, 8)
	bad[0] = 4
	if err := s.GobDecode(bad); err == nil {
		t.Error("length mismatch accepted")
	}
	// A crafted count where 8*n wraps to a small value must error, not
	// panic in make (the persisted-store path feeds untrusted bytes
	// here and treats errors as cache misses).
	overflow := make([]byte, 16)
	binary.LittleEndian.PutUint64(overflow, 0x2000000000000001)
	if err := s.GobDecode(overflow); err == nil {
		t.Error("overflowing observation count accepted")
	}
	// Trailing partial observation.
	if err := s.GobDecode(make([]byte, 13)); err == nil {
		t.Error("non-multiple-of-8 payload accepted")
	}
}

func TestReplicationStatsSmall(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.SampleStdDev()) || !math.IsNaN(s.StdErr()) || !math.IsNaN(s.CI95()) {
		t.Error("empty sample must have NaN replication stats")
	}
	s.Add(3.5)
	if !math.IsNaN(s.SampleStdDev()) || !math.IsNaN(s.StdErr()) || !math.IsNaN(s.CI95()) {
		t.Error("n=1 spread is undefined and must be NaN, not zero")
	}
	s.Add(3.5)
	if got := s.SampleStdDev(); got != 0 {
		t.Errorf("two equal observations: stddev = %v, want 0", got)
	}
	if got := s.CI95(); got != 0 {
		t.Errorf("two equal observations: ci95 = %v, want 0", got)
	}
}

func TestReplicationStatsKnownValues(t *testing.T) {
	var s Sample
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	// Population stddev of this classic set is exactly 2; the sample
	// (n-1) version is sqrt(32/7).
	if got := s.StdDev(); got != 2 {
		t.Errorf("population stddev = %v, want 2", got)
	}
	want := math.Sqrt(32.0 / 7.0)
	if got := s.SampleStdDev(); math.Abs(got-want) > 1e-15 {
		t.Errorf("sample stddev = %v, want %v", got, want)
	}
	if got, want := s.StdErr(), want/math.Sqrt(8); math.Abs(got-want) > 1e-15 {
		t.Errorf("stderr = %v, want %v", got, want)
	}
	if got, want := s.CI95(), 1.96*s.StdErr(); got != want {
		t.Errorf("ci95 = %v, want %v", got, want)
	}
}

// Property checks across deterministic pseudo-random samples: the
// Bessel correction keeps SampleStdDev >= StdDev, stderr shrinks as
// 1/sqrt(n), and shifting a sample leaves its spread alone.
func TestReplicationStatsProperties(t *testing.T) {
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() float64 {
		// xorshift64*, deterministic across runs.
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		return float64(rng%10_000) / 100.0
	}
	for n := 2; n <= 64; n *= 2 {
		var s, shifted Sample
		for i := 0; i < n; i++ {
			x := next()
			s.Add(x)
			shifted.Add(x + 1e6)
		}
		pop, samp := s.StdDev(), s.SampleStdDev()
		if samp < pop {
			t.Errorf("n=%d: sample stddev %v < population %v", n, samp, pop)
		}
		if want := pop * math.Sqrt(float64(n)/float64(n-1)); math.Abs(samp-want) > 1e-9*want {
			t.Errorf("n=%d: Bessel relation broken: %v vs %v", n, samp, want)
		}
		if got, want := s.StdErr(), samp/math.Sqrt(float64(n)); got != want {
			t.Errorf("n=%d: stderr = %v, want %v", n, got, want)
		}
		if s.CI95() < s.StdErr() {
			t.Errorf("n=%d: ci95 narrower than one stderr", n)
		}
		// Spread is translation-invariant (up to float cancellation at
		// a 1e6 offset).
		if d := math.Abs(shifted.SampleStdDev() - samp); d > 1e-6 {
			t.Errorf("n=%d: shift changed stddev by %v", n, d)
		}
	}
}

// The replication statistics must not disturb the encode order the
// byte-identity contract rests on: computing them sorts at most the
// value slice, and a gob round trip still reproduces insertion order.
func TestReplicationStatsPreserveGob(t *testing.T) {
	var s Sample
	s.AddAll([]float64{5, 1, 3})
	before, err := s.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	_ = s.SampleStdDev()
	_ = s.StdErr()
	_ = s.CI95()
	after, err := s.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("replication statistics disturbed the gob encoding")
	}
}
