// Package stats provides the small statistical toolkit used throughout the
// benchmark harness: empirical CDFs, quantiles, boxplot summaries,
// histograms and streaming moment accumulators.
//
// All functions are deterministic and allocation-conscious; the hot paths
// (Sample.Add, Moments.Add) do not allocate.
package stats

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Sample accumulates float64 observations for offline summary statistics.
// The zero value is ready to use. Every summary statistic (Mean, StdDev,
// Min, Max, Quantile, Median, Summarize) returns NaN — never panics,
// never a fabricated zero — when the sample is empty, so callers that
// may render absent signals (e.g. MOS with audio disabled) must either
// check Len or route values through a NaN-aware renderer.
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample returns a Sample pre-sized for n observations.
func NewSample(n int) *Sample { return &Sample{xs: make([]float64, 0, n)} }

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddAll records every observation in xs.
func (s *Sample) AddAll(xs []float64) {
	s.xs = append(s.xs, xs...)
	s.sorted = false
}

// Len reports the number of observations recorded.
func (s *Sample) Len() int { return len(s.xs) }

// Values returns the observations in sorted order. The returned slice is
// owned by the Sample and must not be modified.
func (s *Sample) Values() []float64 {
	s.sort()
	return s.xs
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Mean returns the arithmetic mean, or NaN for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// StdDev returns the population standard deviation, or NaN for an empty
// sample.
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n == 0 {
		return math.NaN()
	}
	m := s.Mean()
	ss := 0.0
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Min returns the smallest observation, or NaN for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.xs[0]
}

// Max returns the largest observation, or NaN for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.xs[len(s.xs)-1]
}

// Quantile returns the q-th quantile (0 <= q <= 1) using linear
// interpolation between order statistics (type-7 estimator, the default of
// R and NumPy). It returns NaN for an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	n := len(s.xs)
	if n == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	s.sort()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := lo + 1
	frac := pos - float64(lo)
	if hi >= n {
		return s.xs[n-1]
	}
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// SampleStdDev returns the sample (Bessel-corrected, n-1) standard
// deviation. Unlike StdDev it estimates the spread of the population the
// observations were drawn from, which is what replication error bars
// need. It returns NaN when fewer than two observations are recorded:
// with n=1 the spread is undefined, and NaN flows through the harness's
// existing absent-signal contract (rendered "-", omitted from JSON).
func (s *Sample) SampleStdDev() float64 {
	n := len(s.xs)
	if n < 2 {
		return math.NaN()
	}
	m := s.Mean()
	ss := 0.0
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// StdErr returns the standard error of the mean, SampleStdDev()/sqrt(n).
// NaN when fewer than two observations are recorded.
func (s *Sample) StdErr() float64 {
	n := len(s.xs)
	if n < 2 {
		return math.NaN()
	}
	return s.SampleStdDev() / math.Sqrt(float64(n))
}

// CI95 returns the half-width of a 95% confidence interval for the mean:
// 1.96 * StdErr(), the normal (z) approximation. For the small replica
// counts typical of a campaign (n in the single digits) this understates
// the interval a Student-t critical value would give — the harness trades
// that bias for a constant that is deterministic and dependency-free.
// NaN when fewer than two observations are recorded.
func (s *Sample) CI95() float64 {
	return 1.96 * s.StdErr()
}

// GobEncode implements gob.GobEncoder. Observations are encoded as raw
// IEEE-754 bit patterns in their insertion order: Mean sums in slice
// order, so preserving both is what lets a decoded Sample reproduce
// every summary statistic bit-for-bit (NaN and ±Inf included), which
// the persistent result store's byte-identical warm reruns rely on.
func (s *Sample) GobEncode() ([]byte, error) {
	buf := make([]byte, 8*(len(s.xs)+1))
	binary.LittleEndian.PutUint64(buf, uint64(len(s.xs)))
	for i, x := range s.xs {
		binary.LittleEndian.PutUint64(buf[8*(i+1):], math.Float64bits(x))
	}
	return buf, nil
}

// GobDecode implements gob.GobDecoder.
func (s *Sample) GobDecode(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("stats: sample encoding truncated (%d bytes)", len(data))
	}
	n := binary.LittleEndian.Uint64(data)
	// Divide rather than multiply: 8*n can wrap for a crafted count,
	// sneaking past the check and panicking in make below.
	if n != uint64(len(data)-8)/8 || (len(data)-8)%8 != 0 {
		return fmt.Errorf("stats: sample encoding claims %d observations in %d bytes", n, len(data))
	}
	s.xs = make([]float64, n)
	for i := range s.xs {
		s.xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*(i+1):]))
	}
	s.sorted = false
	return nil
}

// Summary is a boxplot-style five-number summary plus mean and stddev.
type Summary struct {
	N                int
	Min, Max         float64
	P25, P50, P75    float64
	Mean, StdDev     float64
	WhiskLo, WhiskHi float64 // Tukey whiskers: farthest points within 1.5*IQR
}

// Summarize computes the Summary of the sample.
func (s *Sample) Summarize() Summary {
	sum := Summary{N: s.Len()}
	if sum.N == 0 {
		nan := math.NaN()
		sum.Min, sum.Max, sum.P25, sum.P50, sum.P75 = nan, nan, nan, nan, nan
		sum.Mean, sum.StdDev, sum.WhiskLo, sum.WhiskHi = nan, nan, nan, nan
		return sum
	}
	sum.Min = s.Min()
	sum.Max = s.Max()
	sum.P25 = s.Quantile(0.25)
	sum.P50 = s.Quantile(0.50)
	sum.P75 = s.Quantile(0.75)
	sum.Mean = s.Mean()
	sum.StdDev = s.StdDev()
	iqr := sum.P75 - sum.P25
	loFence := sum.P25 - 1.5*iqr
	hiFence := sum.P75 + 1.5*iqr
	sum.WhiskLo, sum.WhiskHi = sum.Max, sum.Min
	for _, x := range s.Values() {
		if x >= loFence && x < sum.WhiskLo {
			sum.WhiskLo = x
		}
		if x <= hiFence && x > sum.WhiskHi {
			sum.WhiskHi = x
		}
	}
	return sum
}

func (m Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3g p25=%.3g med=%.3g p75=%.3g max=%.3g mean=%.3g sd=%.3g",
		m.N, m.Min, m.P25, m.P50, m.P75, m.Max, m.Mean, m.StdDev)
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	xs []float64 // sorted observations
}

// NewCDF builds an empirical CDF from xs (a copy is taken).
func NewCDF(xs []float64) *CDF {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	return &CDF{xs: cp}
}

// CDF returns the sample's empirical CDF (shares storage with the Sample).
func (s *Sample) CDF() *CDF {
	s.sort()
	return &CDF{xs: s.xs}
}

// Len reports the number of underlying observations.
func (c *CDF) Len() int { return len(c.xs) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.xs) == 0 {
		return math.NaN()
	}
	// Count of observations <= x.
	i := sort.Search(len(c.xs), func(i int) bool { return c.xs[i] > x })
	return float64(i) / float64(len(c.xs))
}

// Inverse returns the smallest x with P(X <= x) >= p.
func (c *CDF) Inverse(p float64) float64 {
	if len(c.xs) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return c.xs[0]
	}
	if p >= 1 {
		return c.xs[len(c.xs)-1]
	}
	idx := int(math.Ceil(p*float64(len(c.xs)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.xs) {
		idx = len(c.xs) - 1
	}
	return c.xs[idx]
}

// Points returns up to n (x, P(X<=x)) pairs suitable for plotting the CDF
// as a step curve. If the sample has fewer than n points, every
// observation is emitted.
func (c *CDF) Points(n int) (xs, ps []float64) {
	m := len(c.xs)
	if m == 0 {
		return nil, nil
	}
	if n <= 0 || n > m {
		n = m
	}
	xs = make([]float64, 0, n)
	ps = make([]float64, 0, n)
	for i := 0; i < n; i++ {
		// Evenly spaced order statistics, always including the last.
		idx := m - 1
		if n > 1 {
			idx = i * (m - 1) / (n - 1)
		}
		xs = append(xs, c.xs[idx])
		ps = append(ps, float64(idx+1)/float64(m))
	}
	return xs, ps
}

// Histogram counts observations into uniform-width bins across [lo, hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	under  int
	over   int
}

// NewHistogram creates a histogram with nbins uniform bins on [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 {
		nbins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
}

// Add records x, counting out-of-range values in underflow/overflow.
func (h *Histogram) Add(x float64) {
	if x < h.Lo {
		h.under++
		return
	}
	if x >= h.Hi {
		h.over++
		return
	}
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// Total returns the count of all recorded values including out-of-range.
func (h *Histogram) Total() int {
	t := h.under + h.over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the center x of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Moments is a streaming accumulator for count, mean and variance using
// Welford's algorithm. The zero value is ready to use.
type Moments struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (m *Moments) Add(x float64) {
	if m.n == 0 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of observations.
func (m *Moments) N() int { return m.n }

// Mean returns the running mean (NaN when empty).
func (m *Moments) Mean() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.mean
}

// Var returns the running population variance (NaN when empty).
func (m *Moments) Var() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.m2 / float64(m.n)
}

// StdDev returns the running population standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Var()) }

// Min returns the smallest observation (NaN when empty).
func (m *Moments) Min() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.min
}

// Max returns the largest observation (NaN when empty).
func (m *Moments) Max() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.max
}
