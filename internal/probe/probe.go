// Package probe implements the paper's active-probing pipeline: tcpping
// against discovered service endpoints. ICMP is blocked by every platform
// under test (as the paper found), so RTTs are measured with a
// SYN/SYN-ACK-style two-packet exchange against the media port.
package probe

import (
	"time"

	"github.com/vcabench/vcabench/internal/simnet"
)

// Ping is the probe request payload (the simulated SYN).
type Ping struct{ ID uint64 }

// Pong is the probe reply payload (the simulated SYN-ACK).
type Pong struct{ ID uint64 }

// ProbeSize is the L7 size of each probe packet (TCP-header-sized).
const ProbeSize = 40

// ProbePort is the local port probers bind.
const ProbePort = 40001

// Timeout is how long a probe waits for its reply.
const Timeout = 2 * time.Second

// Prober measures RTTs from a node to remote endpoints. It operates
// entirely in virtual time; results are delivered via the Run callback.
type Prober struct {
	sim      *simnet.Sim
	node     *simnet.Node
	nextID   uint64
	inflight map[uint64]*inflightProbe
	results  []time.Duration
	lost     int
}

type inflightProbe struct {
	sentAt time.Time
	timer  *simnet.Event
	finish func()
}

// NewProber binds a prober to a node.
func NewProber(sim *simnet.Sim, node *simnet.Node) *Prober {
	p := &Prober{
		sim:      sim,
		node:     node,
		inflight: make(map[uint64]*inflightProbe),
	}
	node.Bind(ProbePort, p.onPacket)
	return p
}

func (p *Prober) onPacket(pkt *simnet.Packet) {
	pong, ok := pkt.Payload.(Pong)
	if !ok {
		return
	}
	fl, ok := p.inflight[pong.ID]
	if !ok {
		return // late reply after timeout
	}
	delete(p.inflight, pong.ID)
	fl.timer.Cancel()
	p.results = append(p.results, p.sim.Now().Sub(fl.sentAt))
	fl.finish()
}

// Run sends count probes to target spaced by interval and invokes done
// with all collected RTTs once every probe has resolved (reply or
// timeout).
func (p *Prober) Run(target simnet.Addr, count int, interval time.Duration, done func([]time.Duration)) {
	if count <= 0 {
		done(nil)
		return
	}
	remaining := count
	finish := func() {
		remaining--
		if remaining == 0 {
			done(p.results)
		}
	}
	for i := 0; i < count; i++ {
		p.sim.After(time.Duration(i)*interval, func() {
			id := p.nextID
			p.nextID++
			fl := &inflightProbe{sentAt: p.sim.Now(), finish: finish}
			fl.timer = p.sim.After(Timeout, func() {
				if _, ok := p.inflight[id]; ok {
					delete(p.inflight, id)
					p.lost++
					finish()
				}
			})
			p.inflight[id] = fl
			p.node.Send(&simnet.Packet{
				From:    simnet.Addr{Port: ProbePort},
				To:      target,
				Size:    ProbeSize,
				Payload: Ping{ID: id},
			})
		})
	}
}

// Results returns RTTs measured so far.
func (p *Prober) Results() []time.Duration { return p.results }

// Lost returns the number of probes that timed out.
func (p *Prober) Lost() int { return p.lost }

// Close unbinds the prober's port.
func (p *Prober) Close() { p.node.Unbind(ProbePort) }

// Respond wires a minimal probe responder onto a node's port: any Ping
// arriving there is answered with a Pong from the same port. Platform
// endpoints install this on their media port.
func Respond(node *simnet.Node, port int, next simnet.Handler) {
	node.Bind(port, func(pkt *simnet.Packet) {
		if ping, ok := pkt.Payload.(Ping); ok {
			node.Send(&simnet.Packet{
				From:    simnet.Addr{Port: port},
				To:      pkt.From,
				Size:    ProbeSize,
				Payload: Pong{ID: ping.ID},
			})
			return
		}
		if next != nil {
			next(pkt)
		}
	})
}
