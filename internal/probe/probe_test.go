package probe

import (
	"testing"
	"time"

	"github.com/vcabench/vcabench/internal/geo"
	"github.com/vcabench/vcabench/internal/simnet"
)

func testNet(seed int64) (*simnet.Sim, *simnet.Network) {
	s := simnet.NewSim(seed)
	return s, simnet.NewNetwork(s, simnet.NetworkConfig{})
}

func TestProbeMeasuresRTT(t *testing.T) {
	sim, net := testNet(1)
	a := net.AddNode(simnet.NodeConfig{Name: "client", Region: geo.USWest})
	b := net.AddNode(simnet.NodeConfig{Name: "server", Region: geo.USEast})
	Respond(b, 8801, nil)
	pr := NewProber(sim, a)
	var got []time.Duration
	pr.Run(simnet.Addr{Node: "server", Port: 8801}, 10, 100*time.Millisecond, func(r []time.Duration) { got = r })
	sim.Run()
	if len(got) != 10 {
		t.Fatalf("got %d RTTs", len(got))
	}
	model := net.PathModel().RTT(geo.USWest, geo.USEast)
	for _, r := range got {
		if r < model || r > model+10*time.Millisecond {
			t.Errorf("RTT %v vs model %v", r, model)
		}
	}
	if pr.Lost() != 0 {
		t.Errorf("lost = %d", pr.Lost())
	}
}

func TestProbeTimeoutOnSilentTarget(t *testing.T) {
	sim, net := testNet(2)
	a := net.AddNode(simnet.NodeConfig{Name: "client", Region: geo.USWest})
	// Target exists but nothing listens on the port (ICMP-blocked style).
	net.AddNode(simnet.NodeConfig{Name: "server", Region: geo.USEast})
	pr := NewProber(sim, a)
	done := false
	pr.Run(simnet.Addr{Node: "server", Port: 8801}, 3, 10*time.Millisecond, func(r []time.Duration) {
		done = true
		if len(r) != 0 {
			t.Errorf("expected no RTTs, got %d", len(r))
		}
	})
	sim.Run()
	if !done {
		t.Fatal("done callback never fired")
	}
	if pr.Lost() != 3 {
		t.Errorf("lost = %d, want 3", pr.Lost())
	}
}

func TestProbeUnderLoss(t *testing.T) {
	sim, net := testNet(3)
	a := net.AddNode(simnet.NodeConfig{Name: "client", Region: geo.USWest, LossProb: 0.4})
	b := net.AddNode(simnet.NodeConfig{Name: "server", Region: geo.USEast})
	Respond(b, 9000, nil)
	pr := NewProber(sim, a)
	var got []time.Duration
	pr.Run(simnet.Addr{Node: "server", Port: 9000}, 50, 50*time.Millisecond, func(r []time.Duration) { got = r })
	sim.Run()
	if len(got)+pr.Lost() != 50 {
		t.Errorf("conservation: %d replies + %d lost != 50", len(got), pr.Lost())
	}
	if pr.Lost() == 0 {
		t.Error("expected some losses at 40% reply loss")
	}
}

func TestProbeZeroCount(t *testing.T) {
	sim, net := testNet(4)
	a := net.AddNode(simnet.NodeConfig{Name: "client", Region: geo.USWest})
	pr := NewProber(sim, a)
	called := false
	pr.Run(simnet.Addr{Node: "client", Port: 1}, 0, time.Second, func(r []time.Duration) {
		called = true
		if r != nil {
			t.Errorf("non-nil results: %v", r)
		}
	})
	sim.Run()
	if !called {
		t.Error("done not called for zero probes")
	}
}

func TestRespondPassesNonPings(t *testing.T) {
	sim, net := testNet(5)
	a := net.AddNode(simnet.NodeConfig{Name: "a", Region: geo.USEast})
	b := net.AddNode(simnet.NodeConfig{Name: "b", Region: geo.USEast2})
	got := 0
	Respond(b, 8801, func(pkt *simnet.Packet) { got++ })
	a.Send(&simnet.Packet{To: simnet.Addr{Node: "b", Port: 8801}, Size: 100, Payload: "media"})
	a.Send(&simnet.Packet{From: simnet.Addr{Port: ProbePort}, To: simnet.Addr{Node: "b", Port: 8801}, Size: ProbeSize, Payload: Ping{ID: 1}})
	sim.Run()
	if got != 1 {
		t.Errorf("next handler saw %d packets, want 1 (media only)", got)
	}
}

func TestCloseUnbinds(t *testing.T) {
	sim, net := testNet(6)
	a := net.AddNode(simnet.NodeConfig{Name: "a", Region: geo.USEast})
	b := net.AddNode(simnet.NodeConfig{Name: "b", Region: geo.USEast2})
	Respond(b, 8801, nil)
	pr := NewProber(sim, a)
	pr.Close()
	// A reply to a closed prober is silently dropped (no handler).
	a.Send(&simnet.Packet{From: simnet.Addr{Port: ProbePort}, To: simnet.Addr{Node: "b", Port: 8801}, Size: ProbeSize, Payload: Ping{ID: 9}})
	sim.Run()
	if len(pr.Results()) != 0 {
		t.Error("closed prober collected results")
	}
}
