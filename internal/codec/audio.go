package codec

import (
	"math"
	"math/rand"

	"github.com/vcabench/vcabench/internal/media"
)

// AudioFrameDur is the codec frame duration in seconds (Opus-style 20 ms).
const AudioFrameDur = 0.020

// AudioFrame is one coded audio frame.
type AudioFrame struct {
	Seq  int
	Bits int
	PCM  *media.AudioClip // the frame's samples (metadata for the payload)
}

// AudioEncoder is a constant-bitrate speech encoder model.
type AudioEncoder struct {
	Bitrate float64 // bits per second (paper: Zoom 90k, Webex 45k, Meet 40k)
	rate    int
	seq     int
}

// NewAudioEncoder creates an encoder at the given wire bitrate.
func NewAudioEncoder(bitrate float64) *AudioEncoder {
	if bitrate <= 0 {
		bitrate = 48000
	}
	return &AudioEncoder{Bitrate: bitrate}
}

// Encode splits the clip into 20 ms frames. A trailing partial frame is
// padded conceptually (its PCM is simply shorter).
func (e *AudioEncoder) Encode(clip *media.AudioClip) []AudioFrame {
	e.rate = clip.Rate
	frameSamples := int(AudioFrameDur * float64(clip.Rate))
	if frameSamples <= 0 {
		return nil
	}
	bits := int(e.Bitrate * AudioFrameDur)
	var out []AudioFrame
	for off := 0; off < len(clip.Samples); off += frameSamples {
		end := off + frameSamples
		if end > len(clip.Samples) {
			end = len(clip.Samples)
		}
		out = append(out, AudioFrame{
			Seq:  e.seq,
			Bits: bits,
			PCM:  clip.Slice(off, end),
		})
		e.seq++
	}
	return out
}

// AudioDecoder reconstructs PCM from a frame stream with loss
// concealment: a lost frame is replaced by the previous frame's samples
// attenuated progressively (Opus-like PLC), decaying to silence under
// sustained loss. Coding noise is added inversely with bitrate so very
// low rates measurably hurt the MOS estimator.
type AudioDecoder struct {
	rng *rand.Rand
}

// NewAudioDecoder creates a decoder; seed drives the coding-noise model.
func NewAudioDecoder(seed int64) *AudioDecoder {
	return &AudioDecoder{rng: rand.New(rand.NewSource(seed))}
}

// Decode rebuilds the clip. frames[i] == nil marks a lost frame. rate is
// the PCM sample rate; bitrate the codec's wire rate.
func (d *AudioDecoder) Decode(frames []*AudioFrame, rate int, bitrate float64) *media.AudioClip {
	frameSamples := int(AudioFrameDur * float64(rate))
	out := &media.AudioClip{Rate: rate}
	var prev []float64
	lossRun := 0
	// Coding noise: inaudible at >=40 kbps, noticeable below ~16 kbps.
	noiseStd := 0.0
	if bitrate > 0 {
		noiseStd = 0.002 * math.Sqrt(16000/math.Max(bitrate, 1000))
	}
	for _, f := range frames {
		if f != nil {
			lossRun = 0
			seg := make([]float64, len(f.PCM.Samples))
			copy(seg, f.PCM.Samples)
			for i := range seg {
				seg[i] += d.rng.NormFloat64() * noiseStd
			}
			out.Samples = append(out.Samples, seg...)
			prev = seg
			continue
		}
		// Concealment.
		lossRun++
		atten := math.Pow(0.5, float64(lossRun))
		n := frameSamples
		if len(prev) > 0 && len(prev) < n {
			n = len(prev)
		}
		seg := make([]float64, n)
		for i := range seg {
			v := 0.0
			if len(prev) > 0 {
				v = prev[i%len(prev)] * atten
			}
			seg[i] = v
		}
		out.Samples = append(out.Samples, seg...)
	}
	return out
}
