// Package codec models the video and audio codecs inside a
// videoconferencing client. The model is rate-distortion based rather than
// a bit-exact H.264/Opus implementation: what the paper measures is how
// *quality responds to content motion, target bitrate and loss*, and those
// responses are produced here from first principles:
//
//   - per-frame coding cost follows R = C·Npix·log2(1 + m/Δ), where m is
//     the frame's motion/detail complexity and Δ the quantizer step;
//   - reconstruction error is quantization noise with variance Δ²/12, so
//     PSNR/SSIM/VIFp of decoded frames emerge from the simulation instead
//     of being asserted;
//   - a leaky-bucket rate controller tracks the platform's target bitrate
//     and skips frames when the bit debt grows too large (stalls);
//   - the decoder freezes on loss until the next keyframe, as real
//     decoders effectively do for the viewer.
//
// Because experiments may run at a reduced resolution/frame rate profile,
// the encoder carries a BitScale factor that maps "wire" bits (what the
// network sees, calibrated to the paper's 640x480@30 feeds) to "effective"
// bits (what quality is computed from), keeping both the traffic rates and
// the quality figures on the paper's scales at any profile.
package codec

import (
	"math"
	"math/rand"

	"github.com/vcabench/vcabench/internal/media"
)

// EncodedFrame is the unit handed to the packetizer.
type EncodedFrame struct {
	Seq      int  // encoder frame index
	Keyframe bool // intra frame
	Skipped  bool // rate controller dropped this frame (stall)
	Bits     int  // wire bits (what the network carries)
	QStep    float64
	// Source is the frame given to the encoder; Recon is what a decoder
	// reconstructs. Both are retained as metadata in place of actual
	// compressed bytes.
	Source *media.Frame
	Recon  *media.Frame
}

// VideoEncoderConfig tunes the encoder model.
type VideoEncoderConfig struct {
	// FPS of the input feed.
	FPS int
	// TargetBps is the initial wire bitrate target.
	TargetBps float64
	// GOP is the keyframe interval in frames (default 2 s worth).
	GOP int
	// BitScale maps effective (quality) bits to wire bits; use
	// BitScaleFor to derive it from the active profile. 0 means 1.
	BitScale float64
	// Seed drives the quantization noise.
	Seed int64
	// SceneCutMAD forces a keyframe above this inter-frame complexity
	// (default 25).
	SceneCutMAD float64
	// DebtLimitSec is how many seconds of target bits the controller may
	// owe before skipping frames (default 0.35 s).
	DebtLimitSec float64
}

// BitScaleFor returns the BitScale that keeps wire bitrates on the
// paper's 640x480@30 scale when encoding at profile p.
func BitScaleFor(p media.Profile) float64 {
	ref := float64(media.PaperProfile.W*media.PaperProfile.H) * float64(media.PaperProfile.FPS)
	got := float64(p.W*p.H) * float64(p.FPS)
	return ref / got
}

// Rate-distortion model constants.
const (
	rdBitsPerPixel = 0.55 // C in R = C·Npix·log2(1+m/Δ)
	// minQStep is the quality ceiling: encoders stop spending bits once
	// content is transparent at this quantizer, which is what makes
	// low-motion streams *cheaper* than their CBR target (Webex's rate
	// nearly halves on LM, paper §4.3.1).
	minQStep = 10
	maxQStep = 200
	// Floor on per-frame complexity: even a static scene costs something.
	minComplexity = 0.6
	// Keyframes code the full picture; inter frames code residuals.
	keyframeCostFactor = 1.0
)

// VideoEncoder encodes a frame stream under a dynamic bitrate target.
type VideoEncoder struct {
	cfg        VideoEncoderConfig
	rng        *rand.Rand
	prevSource *media.Frame // complexity reference (noise-free)
	seq        int
	sinceKey   int
	debtBits   float64
	targetBps  float64
	// pool recycles the resize ladder's transient frames (the
	// down-scaled source and its quantized form). Reconstructions are
	// never pooled: they outlive the encoder call and downstream QoE
	// caches key on their identity.
	pool *media.FramePool
}

// NewVideoEncoder creates an encoder. Config zero-values are defaulted.
func NewVideoEncoder(cfg VideoEncoderConfig) *VideoEncoder {
	if cfg.FPS <= 0 {
		cfg.FPS = media.PaperProfile.FPS
	}
	if cfg.GOP <= 0 {
		cfg.GOP = cfg.FPS * 2
	}
	if cfg.BitScale <= 0 {
		cfg.BitScale = 1
	}
	if cfg.SceneCutMAD <= 0 {
		cfg.SceneCutMAD = 45
	}
	if cfg.DebtLimitSec <= 0 {
		cfg.DebtLimitSec = 0.35
	}
	if cfg.TargetBps <= 0 {
		cfg.TargetBps = 1e6
	}
	return &VideoEncoder{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		targetBps: cfg.TargetBps,
		pool:      media.NewFramePool(),
	}
}

// SetTargetBps changes the wire bitrate target (platform adaptation).
func (e *VideoEncoder) SetTargetBps(bps float64) {
	if bps > 0 {
		e.targetBps = bps
	}
}

// TargetBps returns the current wire bitrate target.
func (e *VideoEncoder) TargetBps() float64 { return e.targetBps }

// Encode consumes the next source frame and returns its encoded form.
// A Skipped frame carries no bits and no reconstruction: the rate
// controller is stalling the stream.
func (e *VideoEncoder) Encode(f *media.Frame) EncodedFrame {
	seq := e.seq
	e.seq++
	budget := e.targetBps / float64(e.cfg.FPS)
	debtLimit := e.targetBps * e.cfg.DebtLimitSec

	// Complexity is measured against the previous *source* frame: it
	// reflects content motion, independent of how noisy the last
	// reconstruction happened to be.
	key := e.prevSource == nil || e.sinceKey+1 >= e.cfg.GOP
	var m float64
	if e.prevSource != nil {
		m = media.MeanAbsDiff(f, e.prevSource)
		if m > e.cfg.SceneCutMAD {
			key = true
		}
	}
	if key {
		m = f.SpatialDetail() * keyframeCostFactor
	}
	if m < minComplexity {
		m = minComplexity
	}
	e.prevSource = f

	if e.debtBits > debtLimit {
		// Stall: skip the frame, recover budget.
		e.sinceKey++
		e.debtBits -= budget
		if e.debtBits < 0 {
			e.debtBits = 0
		}
		return EncodedFrame{Seq: seq, Skipped: true, Source: f}
	}

	// Choose the quantizer to hit the per-frame budget (minus debt
	// correction), then derive actual bits from the clamped quantizer.
	want := budget - e.debtBits*0.25
	if key {
		// Keyframes get extra headroom; the controller amortizes it.
		want *= 2.5
	}
	npix := float64(f.W * f.H)
	effWant := want / e.cfg.BitScale

	// Resolution ladder: below a bits-per-pixel threshold real encoders
	// trade resolution for quantization fidelity (the 360p/180p tiles
	// low-rate sessions actually carry). Reconstruction then shows blur
	// rather than catastrophic quantization noise.
	scale := 1
	switch bpp := effWant / npix; {
	case bpp < 0.015:
		scale = 4
	case bpp < 0.06:
		scale = 2
	}
	encW, encH := f.W/scale, f.H/scale
	if encW < 8 || encH < 8 {
		scale = 1
		encW, encH = f.W, f.H
	}
	encPix := float64(encW * encH)

	qstep := solveQStep(m, effWant, encPix)
	effBits := rdBitsPerPixel * encPix * math.Log2(1+m/qstep)
	bits := effBits * e.cfg.BitScale

	var recon *media.Frame
	if scale == 1 {
		recon = e.quantize(f, qstep)
	} else {
		small := f.ResizePooled(e.pool, encW, encH)
		qsmall := e.pool.Get(encW, encH)
		e.quantizeTo(qsmall, small, qstep)
		recon = qsmall.Resize(f.W, f.H)
		e.pool.Put(small)
		e.pool.Put(qsmall)
	}
	if key {
		e.sinceKey = 0
	} else {
		e.sinceKey++
	}
	e.debtBits += bits - budget
	if e.debtBits < 0 {
		e.debtBits = 0
	}
	return EncodedFrame{
		Seq: seq, Keyframe: key, Bits: int(bits), QStep: qstep,
		Source: f, Recon: recon,
	}
}

// solveQStep inverts the rate model for a bit budget, clamped to the
// codec's quantizer range.
func solveQStep(m, bits, npix float64) float64 {
	if bits <= 0 {
		return maxQStep
	}
	den := math.Exp2(bits/(rdBitsPerPixel*npix)) - 1
	if den <= 0 {
		return maxQStep
	}
	q := m / den
	if q < minQStep {
		q = minQStep
	}
	if q > maxQStep {
		q = maxQStep
	}
	return q
}

// quantize produces the reconstructed frame: source plus uniform
// quantization noise in ±Δ/2.
func (e *VideoEncoder) quantize(f *media.Frame, qstep float64) *media.Frame {
	r := media.NewFrame(f.W, f.H)
	e.quantizeTo(r, f, qstep)
	return r
}

// quantizeTo writes the quantized form of f into r (same geometry,
// every pixel), drawing one noise sample per pixel in row-major order —
// the exact draw sequence of the historical clone-then-mutate form.
func (e *VideoEncoder) quantizeTo(r, f *media.Frame, qstep float64) {
	half := qstep / 2
	for i := range r.Pix {
		n := (e.rng.Float64()*2 - 1) * half
		v := float64(f.Pix[i]) + n
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		r.Pix[i] = uint8(v)
	}
}

// VideoDecoder reconstructs the viewer-visible frame sequence, freezing
// on loss until the next keyframe arrives.
type VideoDecoder struct {
	last       *media.Frame
	needKey    bool
	frozen     int // consecutive frozen outputs
	totalOut   int
	totalFroze int
}

// NewVideoDecoder returns a decoder with no reference frame.
func NewVideoDecoder() *VideoDecoder { return &VideoDecoder{needKey: true} }

// Decode consumes the next frame slot. ef == nil means the frame never
// arrived (lost or still missing at playout deadline); a Skipped frame
// means the encoder stalled. The return is what the viewer sees for this
// slot: possibly a repeat of the last good frame, or nil if nothing has
// ever been decodable.
func (d *VideoDecoder) Decode(ef *EncodedFrame) *media.Frame {
	d.totalOut++
	switch {
	case ef == nil, ef != nil && ef.Skipped:
		// Freeze.
		if ef == nil {
			d.needKey = true // reference chain broken
		}
	case ef.Keyframe:
		d.needKey = false
		d.last = ef.Recon
	case !d.needKey:
		d.last = ef.Recon
	default:
		// Inter frame without a valid reference: keep freezing.
	}
	if d.last == nil {
		d.totalFroze++
		return nil
	}
	if ef == nil || ef.Skipped || (d.needKey && !safeKey(ef)) {
		d.frozen++
		d.totalFroze++
	} else {
		d.frozen = 0
	}
	return d.last
}

func safeKey(ef *EncodedFrame) bool { return ef != nil && ef.Keyframe }

// FreezeRatio returns the fraction of output slots that repeated a stale
// frame — the paper's "video frequently stalls" observable.
func (d *VideoDecoder) FreezeRatio() float64 {
	if d.totalOut == 0 {
		return 0
	}
	return float64(d.totalFroze) / float64(d.totalOut)
}
