package codec

import (
	"math"
	"testing"

	"github.com/vcabench/vcabench/internal/media"
)

func encodeSeconds(t *testing.T, class media.MotionClass, bps float64, secs int) (frames []EncodedFrame, enc *VideoEncoder) {
	t.Helper()
	p := media.QuickProfile
	src := media.NewSource(class, p, 7)
	enc = NewVideoEncoder(VideoEncoderConfig{
		FPS: p.FPS, TargetBps: bps, BitScale: BitScaleFor(p), Seed: 1,
	})
	n := secs * p.FPS
	for i := 0; i < n; i++ {
		frames = append(frames, enc.Encode(src.Next()))
	}
	return frames, enc
}

func avgRate(frames []EncodedFrame, fps int) float64 {
	var bits int
	for _, f := range frames {
		bits += f.Bits
	}
	return float64(bits) * float64(fps) / float64(len(frames))
}

func TestRateControlHitsTarget(t *testing.T) {
	for _, target := range []float64{500_000, 1_000_000, 2_000_000} {
		frames, _ := encodeSeconds(t, media.HighMotion, target, 8)
		rate := avgRate(frames, media.QuickProfile.FPS)
		if rate < target*0.6 || rate > target*1.3 {
			t.Errorf("target %.0f: achieved %.0f", target, rate)
		}
	}
}

func TestLowMotionCheaperThanHighMotion(t *testing.T) {
	// At the same quantizer quality level, LM costs less. Compare achieved
	// quality at the same rate instead: LM should reconstruct better.
	lm, _ := encodeSeconds(t, media.LowMotion, 800_000, 6)
	hm, _ := encodeSeconds(t, media.HighMotion, 800_000, 6)
	q := func(frames []EncodedFrame) float64 {
		var s float64
		var n int
		for _, f := range frames {
			if f.Skipped || f.Recon == nil {
				continue
			}
			s += f.QStep
			n++
		}
		return s / float64(n)
	}
	if q(lm) >= q(hm) {
		t.Errorf("LM qstep %v >= HM qstep %v at equal rate", q(lm), q(hm))
	}
}

func TestQualityImprovesWithRate(t *testing.T) {
	mad := func(frames []EncodedFrame) float64 {
		var s float64
		var n int
		for _, f := range frames {
			if f.Skipped || f.Recon == nil {
				continue
			}
			s += media.MeanAbsDiff(f.Source, f.Recon)
			n++
		}
		return s / float64(n)
	}
	lo, _ := encodeSeconds(t, media.HighMotion, 300_000, 6)
	hi, _ := encodeSeconds(t, media.HighMotion, 2_500_000, 6)
	if mad(hi) >= mad(lo) {
		t.Errorf("distortion at 2.5Mbps (%v) >= at 300kbps (%v)", mad(hi), mad(lo))
	}
}

func TestKeyframeCadence(t *testing.T) {
	frames, _ := encodeSeconds(t, media.LowMotion, 1_000_000, 6)
	keys := 0
	for _, f := range frames {
		if f.Keyframe {
			keys++
		}
	}
	// GOP defaults to 2s => 3 keyframes in 6s (plus possible scene cuts,
	// but LM has none).
	if keys != 3 {
		t.Errorf("keyframes = %d, want 3", keys)
	}
	if !frames[0].Keyframe {
		t.Error("first frame must be a keyframe")
	}
}

func TestSceneCutForcesKeyframe(t *testing.T) {
	frames, _ := encodeSeconds(t, media.HighMotion, 1_500_000, 13)
	// Scene cuts every 4s should add keyframes beyond the 2s GOP grid...
	// GOP grid at 2s already covers 4s boundaries, so instead check that
	// keyframes are at least as frequent as the GOP schedule.
	keys := 0
	for _, f := range frames {
		if f.Keyframe {
			keys++
		}
	}
	gop := media.QuickProfile.FPS * 2
	if keys < len(frames)/gop {
		t.Errorf("keys = %d < GOP schedule %d", keys, len(frames)/gop)
	}
}

func TestStallsUnderStarvation(t *testing.T) {
	// 20 kbps for high motion is hopeless even at quarter resolution:
	// the controller must skip frames.
	frames, _ := encodeSeconds(t, media.HighMotion, 20_000, 6)
	skips := 0
	for _, f := range frames {
		if f.Skipped {
			skips++
		}
	}
	if skips == 0 {
		t.Error("expected skipped frames at starvation rate")
	}
	// And the achieved rate must stay near target despite the pressure.
	rate := avgRate(frames, media.QuickProfile.FPS)
	if rate > 20_000*3 {
		t.Errorf("rate %.0f blew through starvation target", rate)
	}
}

func TestResolutionLadderEngages(t *testing.T) {
	// At 60 kbps the encoder should downscale rather than stall, trading
	// blur for stalls (what real clients' 180p tiles do).
	frames, _ := encodeSeconds(t, media.HighMotion, 60_000, 6)
	skips := 0
	for _, f := range frames {
		if f.Skipped {
			skips++
		}
	}
	if skips > len(frames)/10 {
		t.Errorf("%d/%d skips at 60k: ladder should absorb most pressure", skips, len(frames))
	}
	// Reconstruction still arrives at full geometry (the ladder encodes
	// small and upscales), visibly degraded but not black.
	var ef *EncodedFrame
	for i := range frames {
		if !frames[i].Skipped && !frames[i].Keyframe {
			ef = &frames[i]
			break
		}
	}
	if ef == nil {
		t.Fatal("no coded inter frame")
	}
	if ef.Recon.W != ef.Source.W || ef.Recon.H != ef.Source.H {
		t.Errorf("recon geometry %dx%d != source", ef.Recon.W, ef.Recon.H)
	}
	if d := media.MeanAbsDiff(ef.Source, ef.Recon); d < 2 {
		t.Errorf("distortion %.2f suspiciously low at 60kbps", d)
	}
}

func TestNoStallsAtComfortableRate(t *testing.T) {
	frames, _ := encodeSeconds(t, media.LowMotion, 1_000_000, 6)
	for i, f := range frames {
		if f.Skipped {
			t.Errorf("frame %d skipped at comfortable rate", i)
		}
	}
}

func TestSetTargetAdapts(t *testing.T) {
	p := media.QuickProfile
	src := media.NewSource(media.HighMotion, p, 3)
	enc := NewVideoEncoder(VideoEncoderConfig{FPS: p.FPS, TargetBps: 2_000_000, BitScale: BitScaleFor(p), Seed: 2})
	var hi, lo float64
	for i := 0; i < p.FPS*4; i++ {
		hi += float64(enc.Encode(src.Next()).Bits)
	}
	enc.SetTargetBps(400_000)
	if enc.TargetBps() != 400_000 {
		t.Fatal("SetTargetBps ignored")
	}
	for i := 0; i < p.FPS*4; i++ {
		lo += float64(enc.Encode(src.Next()).Bits)
	}
	if lo >= hi*0.6 {
		t.Errorf("bits did not drop after target cut: %v -> %v", hi, lo)
	}
	enc.SetTargetBps(-1) // ignored
	if enc.TargetBps() != 400_000 {
		t.Error("negative target accepted")
	}
}

func TestBitScaleFor(t *testing.T) {
	if s := BitScaleFor(media.PaperProfile); s != 1 {
		t.Errorf("paper profile scale = %v", s)
	}
	s := BitScaleFor(media.QuickProfile)
	want := float64(640*480*30) / float64(160*120*10)
	if math.Abs(s-want) > 1e-9 {
		t.Errorf("quick profile scale = %v, want %v", s, want)
	}
}

func TestSolveQStepClamps(t *testing.T) {
	if q := solveQStep(10, 0, 1000); q != maxQStep {
		t.Errorf("zero budget qstep = %v", q)
	}
	if q := solveQStep(10, 1e12, 1000); q != minQStep {
		t.Errorf("infinite budget qstep = %v", q)
	}
}

func TestDecoderFreezeOnLoss(t *testing.T) {
	p := media.QuickProfile
	src := media.NewSource(media.LowMotion, p, 5)
	enc := NewVideoEncoder(VideoEncoderConfig{FPS: p.FPS, TargetBps: 1_000_000, BitScale: BitScaleFor(p), Seed: 4})
	dec := NewVideoDecoder()
	var frames []EncodedFrame
	for i := 0; i < p.FPS*4; i++ {
		frames = append(frames, enc.Encode(src.Next()))
	}
	// Deliver: frames 0..9 fine, 10..19 lost, rest delivered.
	var lastBefore *media.Frame
	for i := range frames {
		var out *media.Frame
		if i >= 10 && i < 20 {
			out = dec.Decode(nil)
		} else {
			out = dec.Decode(&frames[i])
		}
		switch {
		case i == 9:
			lastBefore = out
		case i >= 10 && i < 20:
			if out != lastBefore {
				t.Fatalf("frame %d: not frozen on last good frame", i)
			}
		case i >= 20 && i < 2*p.FPS:
			// Reference broken; must stay frozen until next keyframe
			// (GOP=2s => keyframe at frame 2*FPS).
			if out != lastBefore {
				t.Fatalf("frame %d: unfroze before keyframe", i)
			}
		case i == 2*p.FPS:
			if out == lastBefore {
				t.Fatalf("frame %d: keyframe did not refresh", i)
			}
		}
	}
	if dec.FreezeRatio() == 0 {
		t.Error("freeze ratio should be > 0")
	}
}

func TestDecoderNothingYet(t *testing.T) {
	dec := NewVideoDecoder()
	if out := dec.Decode(nil); out != nil {
		t.Error("decoder produced a frame before any input")
	}
	if dec.FreezeRatio() != 1 {
		t.Errorf("freeze ratio = %v", dec.FreezeRatio())
	}
}

func TestAudioRoundTripClean(t *testing.T) {
	clip := media.NewSpeech(2.0, 1)
	enc := NewAudioEncoder(90_000)
	frames := enc.Encode(clip)
	wantFrames := int(2.0 / AudioFrameDur)
	if len(frames) != wantFrames {
		t.Fatalf("frames = %d, want %d", len(frames), wantFrames)
	}
	ptrs := make([]*AudioFrame, len(frames))
	for i := range frames {
		ptrs[i] = &frames[i]
	}
	dec := NewAudioDecoder(1)
	out := dec.Decode(ptrs, clip.Rate, 90_000)
	if len(out.Samples) != len(clip.Samples) {
		t.Fatalf("decoded %d samples, want %d", len(out.Samples), len(clip.Samples))
	}
	// Error energy must be tiny relative to the signal at 90 kbps.
	var errE, sigE float64
	for i := range out.Samples {
		d := out.Samples[i] - clip.Samples[i]
		errE += d * d
		sigE += clip.Samples[i] * clip.Samples[i]
	}
	if errE > sigE*0.01 {
		t.Errorf("clean decode error energy %.4g vs signal %.4g", errE, sigE)
	}
}

func TestAudioPLCAttenuates(t *testing.T) {
	clip := media.NewTone(1.0, 400, media.DefaultAudioRate)
	enc := NewAudioEncoder(45_000)
	frames := enc.Encode(clip)
	ptrs := make([]*AudioFrame, len(frames))
	for i := range frames {
		ptrs[i] = &frames[i]
	}
	// Lose frames 10..19 (200 ms).
	for i := 10; i < 20 && i < len(ptrs); i++ {
		ptrs[i] = nil
	}
	dec := NewAudioDecoder(2)
	out := dec.Decode(ptrs, clip.Rate, 45_000)
	if len(out.Samples) != len(clip.Samples) {
		t.Fatalf("length mismatch: %d vs %d", len(out.Samples), len(clip.Samples))
	}
	fs := int(AudioFrameDur * float64(clip.Rate))
	firstLost := out.Slice(10*fs, 11*fs)
	lastLost := out.Slice(19*fs, 20*fs)
	if lastLost.RMS() >= firstLost.RMS() {
		t.Errorf("PLC not decaying: %.4g -> %.4g", firstLost.RMS(), lastLost.RMS())
	}
	if lastLost.RMS() > clip.RMS()*0.05 {
		t.Errorf("long-run concealment too loud: %v", lastLost.RMS())
	}
}

func TestAudioEncoderDefaults(t *testing.T) {
	e := NewAudioEncoder(0)
	if e.Bitrate != 48000 {
		t.Errorf("default bitrate = %v", e.Bitrate)
	}
	if out := e.Encode(&media.AudioClip{Rate: 0, Samples: nil}); out != nil {
		t.Errorf("encoding empty clip = %v", out)
	}
}

func TestFreezeRatioBounds(t *testing.T) {
	d := NewVideoDecoder()
	if d.FreezeRatio() != 0 {
		t.Error("freeze ratio of idle decoder")
	}
}
