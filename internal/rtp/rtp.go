// Package rtp packetizes encoded media into RTP-framed datagrams and
// reassembles them at the receiver. Packet payloads carry references to
// the encoded-frame metadata (the simulator's stand-in for encrypted media
// bytes); headers carry real RTP semantics — SSRC, per-packet sequence
// numbers, per-frame timestamps, and a marker bit on the last fragment of
// each frame — which is exactly the metadata the paper's traffic analysis
// can see from the outside.
package rtp

import (
	"github.com/vcabench/vcabench/internal/capture"
	"github.com/vcabench/vcabench/internal/codec"
)

// Payload types used by the simulated clients.
const (
	PTVideo = 96
	PTAudio = 111
)

// VideoClockHz is the RTP clock for video (RFC 3551 convention).
const VideoClockHz = 90000

// DefaultMTU is the maximum L7 datagram size (RTP header + media).
const DefaultMTU = 1200

// HeaderLen is the fixed RTP header length.
const HeaderLen = 12

// Payload is the application object carried by a simulated packet.
type Payload struct {
	Video     *codec.EncodedFrame
	Audio     *codec.AudioFrame
	FragIndex int
	FragCount int
}

// Packet is one RTP datagram: header metadata plus wire size.
type Packet struct {
	Info  capture.RTPInfo
	Bytes int // L7 length: HeaderLen + media fragment bytes
	Data  *Payload
}

// Packetizer fragments encoded frames into RTP packets.
type Packetizer struct {
	ssrc uint32
	mtu  int
	fps  int
	seq  uint16
	ts   uint32
}

// NewPacketizer creates a packetizer for one media stream. fps is the
// video frame cadence driving the RTP timestamp advance.
func NewPacketizer(ssrc uint32, mtu, fps int) *Packetizer {
	if mtu <= HeaderLen {
		mtu = DefaultMTU
	}
	if fps <= 0 {
		fps = 30
	}
	return &Packetizer{ssrc: ssrc, mtu: mtu, fps: fps}
}

// Video fragments an encoded video frame. Skipped frames produce no
// packets (the sender has nothing to send) but still advance the RTP
// timestamp, as a real encoder's clock does.
func (p *Packetizer) Video(ef *codec.EncodedFrame) []*Packet {
	ts := p.ts
	p.ts += uint32(VideoClockHz / p.fps)
	if ef == nil || ef.Skipped || ef.Bits <= 0 {
		return nil
	}
	mediaBytes := (ef.Bits + 7) / 8
	maxFrag := p.mtu - HeaderLen
	count := (mediaBytes + maxFrag - 1) / maxFrag
	if count == 0 {
		count = 1
	}
	// One frame's fragments are allocated as three slabs (pointer slice,
	// packets, payloads) instead of 1+2*count individual objects; the
	// fragments live and die together, so batching costs no retention.
	pkts := make([]*Packet, count)
	backing := make([]Packet, count)
	payloads := make([]Payload, count)
	remaining := mediaBytes
	for i := 0; i < count; i++ {
		frag := maxFrag
		if remaining < frag {
			frag = remaining
		}
		remaining -= frag
		payloads[i] = Payload{Video: ef, FragIndex: i, FragCount: count}
		backing[i] = Packet{
			Info: capture.RTPInfo{
				SSRC:    p.ssrc,
				Seq:     p.seq,
				TS:      ts,
				Marker:  i == count-1,
				PT:      PTVideo,
				KeyUnit: ef.Keyframe,
			},
			Bytes: HeaderLen + frag,
			Data:  &payloads[i],
		}
		pkts[i] = &backing[i]
		p.seq++
	}
	return pkts
}

// Audio wraps one coded audio frame (always a single packet).
func (p *Packetizer) Audio(af *codec.AudioFrame) *Packet {
	pkt := &Packet{
		Info: capture.RTPInfo{
			SSRC:   p.ssrc,
			Seq:    p.seq,
			TS:     p.ts,
			Marker: true,
			PT:     PTAudio,
		},
		Bytes: HeaderLen + (af.Bits+7)/8,
		Data:  &Payload{Audio: af, FragIndex: 0, FragCount: 1},
	}
	p.seq++
	p.ts += uint32(float64(VideoClockHz) * codec.AudioFrameDur)
	return pkt
}

// Stats counts reassembly outcomes.
type Stats struct {
	Packets        int
	FramesComplete int
	FramesDropped  int // abandoned incomplete frames
	PacketGaps     int // sequence discontinuities observed
}

// Reassembler rebuilds complete frames from fragments. Frames complete
// out of order within a small window; frames still incomplete when the
// window moves past them are abandoned (counted as dropped).
type Reassembler struct {
	depth   int // how many newer frames may complete before giving up
	pend    map[int]*assembly
	doneSeq map[int]bool
	maxSeen int
	stats   Stats
	lastPkt uint16
	havePkt bool
	freeAsm []*assembly // recycled assemblies (finished or abandoned)
}

type assembly struct {
	frame *codec.EncodedFrame
	got   uint64       // fragment-arrival bitmask when count <= 64
	big   map[int]bool // fallback for frames wider than the bitmask
	ngot  int          // distinct fragments seen
	count int
}

// add records fragment i's arrival, ignoring duplicates.
func (a *assembly) add(i int) {
	if a.big != nil {
		if !a.big[i] {
			a.big[i] = true
			a.ngot++
		}
		return
	}
	if bit := uint64(1) << uint(i); a.got&bit == 0 {
		a.got |= bit
		a.ngot++
	}
}

// newAssembly takes an assembly from the free-list (or the heap).
func (r *Reassembler) newAssembly(ef *codec.EncodedFrame, count int) *assembly {
	var a *assembly
	if k := len(r.freeAsm); k > 0 {
		a = r.freeAsm[k-1]
		r.freeAsm = r.freeAsm[:k-1]
		*a = assembly{}
	} else {
		a = &assembly{}
	}
	a.frame = ef
	a.count = count
	if count > 64 {
		a.big = make(map[int]bool, count)
	}
	return a
}

// release recycles an assembly whose frame seq has been closed.
func (r *Reassembler) release(a *assembly) {
	a.frame = nil
	a.big = nil
	r.freeAsm = append(r.freeAsm, a)
}

// NewReassembler creates a reassembler. depth is the completion window in
// frames (default 5).
func NewReassembler(depth int) *Reassembler {
	if depth <= 0 {
		depth = 5
	}
	return &Reassembler{
		depth:   depth,
		pend:    make(map[int]*assembly),
		doneSeq: make(map[int]bool),
		maxSeen: -1,
	}
}

// Push consumes one arriving packet and returns any video frames that
// completed as a result (in frame order). Audio packets complete
// immediately and are returned via the second result.
func (r *Reassembler) Push(pkt *Packet) (videos []*codec.EncodedFrame, audio *codec.AudioFrame) {
	r.stats.Packets++
	if r.havePkt && pkt.Info.Seq != r.lastPkt+1 {
		r.stats.PacketGaps++
	}
	r.lastPkt = pkt.Info.Seq
	r.havePkt = true

	if pkt.Data == nil {
		return nil, nil
	}
	if pkt.Data.Audio != nil {
		return nil, pkt.Data.Audio
	}
	ef := pkt.Data.Video
	if ef == nil {
		return nil, nil
	}
	fseq := ef.Seq
	if r.doneSeq[fseq] {
		return nil, nil // fragment of a finished or abandoned frame
	}
	a := r.pend[fseq]
	if a == nil {
		a = r.newAssembly(ef, pkt.Data.FragCount)
		r.pend[fseq] = a
	}
	a.add(pkt.Data.FragIndex)
	if fseq > r.maxSeen {
		r.maxSeen = fseq
	}
	if a.ngot == a.count {
		delete(r.pend, fseq)
		r.release(a)
		r.doneSeq[fseq] = true
		r.stats.FramesComplete++
		videos = append(videos, ef)
	}
	// Abandon frames the window has moved past; close them so late
	// fragments cannot re-open (and re-count) them.
	for s, old := range r.pend {
		if s < r.maxSeen-r.depth {
			delete(r.pend, s)
			r.release(old)
			r.doneSeq[s] = true
			r.stats.FramesDropped++
		}
	}
	return videos, nil
}

// Flush abandons all pending frames (end of session) and returns stats.
func (r *Reassembler) Flush() Stats {
	r.stats.FramesDropped += len(r.pend)
	for _, a := range r.pend {
		r.release(a)
	}
	r.pend = make(map[int]*assembly)
	return r.stats
}

// StatsSnapshot returns the current counters without flushing.
func (r *Reassembler) StatsSnapshot() Stats { return r.stats }
