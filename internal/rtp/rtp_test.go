package rtp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/vcabench/vcabench/internal/codec"
	"github.com/vcabench/vcabench/internal/media"
)

func frameOfBits(seq, bits int, key bool) *codec.EncodedFrame {
	return &codec.EncodedFrame{Seq: seq, Bits: bits, Keyframe: key}
}

func TestVideoFragmentation(t *testing.T) {
	p := NewPacketizer(7, 1200, 30)
	ef := frameOfBits(0, 8*3000, true) // 3000 bytes => 3 fragments of <=1188
	pkts := p.Video(ef)
	if len(pkts) != 3 {
		t.Fatalf("fragments = %d, want 3", len(pkts))
	}
	total := 0
	for i, pk := range pkts {
		if pk.Info.SSRC != 7 || pk.Info.PT != PTVideo {
			t.Errorf("pkt %d header %+v", i, pk.Info)
		}
		if pk.Info.Seq != uint16(i) {
			t.Errorf("pkt %d seq = %d", i, pk.Info.Seq)
		}
		if (pk.Info.Marker) != (i == 2) {
			t.Errorf("pkt %d marker = %v", i, pk.Info.Marker)
		}
		if !pk.Info.KeyUnit {
			t.Errorf("pkt %d KeyUnit unset", i)
		}
		if pk.Bytes > 1200 {
			t.Errorf("pkt %d oversize %d", i, pk.Bytes)
		}
		total += pk.Bytes - HeaderLen
	}
	if total != 3000 {
		t.Errorf("media bytes = %d, want 3000", total)
	}
}

func TestTimestampAdvance(t *testing.T) {
	p := NewPacketizer(1, 1200, 30)
	a := p.Video(frameOfBits(0, 800, false))
	// A skipped frame advances the clock without emitting packets.
	if got := p.Video(&codec.EncodedFrame{Seq: 1, Skipped: true}); got != nil {
		t.Errorf("skipped frame produced %d packets", len(got))
	}
	b := p.Video(frameOfBits(2, 800, false))
	step := uint32(VideoClockHz / 30)
	if a[0].Info.TS != 0 || b[0].Info.TS != 2*step {
		t.Errorf("TS: %d then %d, want 0 then %d", a[0].Info.TS, b[0].Info.TS, 2*step)
	}
}

func TestAudioPacket(t *testing.T) {
	p := NewPacketizer(3, 1200, 30)
	clip := media.NewTone(0.02, 440, media.DefaultAudioRate)
	af := &codec.AudioFrame{Seq: 0, Bits: 1800, PCM: clip}
	pkt := p.Audio(af)
	if pkt.Info.PT != PTAudio || !pkt.Info.Marker {
		t.Errorf("audio header %+v", pkt.Info)
	}
	if pkt.Bytes != HeaderLen+225 {
		t.Errorf("audio bytes = %d", pkt.Bytes)
	}
}

func TestReassemblyInOrder(t *testing.T) {
	p := NewPacketizer(1, 1200, 30)
	r := NewReassembler(5)
	var done []*codec.EncodedFrame
	for i := 0; i < 10; i++ {
		for _, pk := range p.Video(frameOfBits(i, 8*2500, i == 0)) {
			vs, _ := r.Push(pk)
			done = append(done, vs...)
		}
	}
	if len(done) != 10 {
		t.Fatalf("completed %d/10 frames", len(done))
	}
	for i, ef := range done {
		if ef.Seq != i {
			t.Errorf("frame %d out of order: seq %d", i, ef.Seq)
		}
	}
	st := r.Flush()
	if st.FramesComplete != 10 || st.FramesDropped != 0 || st.PacketGaps != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReassemblyLostFragment(t *testing.T) {
	p := NewPacketizer(1, 1200, 30)
	r := NewReassembler(3)
	completed := 0
	for i := 0; i < 10; i++ {
		pkts := p.Video(frameOfBits(i, 8*3000, false))
		for j, pk := range pkts {
			if i == 4 && j == 1 {
				continue // drop middle fragment of frame 4
			}
			vs, _ := r.Push(pk)
			completed += len(vs)
		}
	}
	st := r.Flush()
	if completed != 9 {
		t.Errorf("completed = %d, want 9", completed)
	}
	if st.FramesDropped != 1 {
		t.Errorf("dropped = %d, want 1", st.FramesDropped)
	}
	if st.PacketGaps == 0 {
		t.Error("expected a sequence gap")
	}
}

func TestReassemblyReorderWithinWindow(t *testing.T) {
	p := NewPacketizer(1, 1200, 30)
	r := NewReassembler(5)
	f0 := p.Video(frameOfBits(0, 8*2000, true))
	f1 := p.Video(frameOfBits(1, 8*2000, false))
	var got []*codec.EncodedFrame
	push := func(pk *Packet) {
		vs, _ := r.Push(pk)
		got = append(got, vs...)
	}
	// Deliver frame 1 fully, then frame 0.
	for _, pk := range f1 {
		push(pk)
	}
	for _, pk := range f0 {
		push(pk)
	}
	if len(got) != 2 {
		t.Fatalf("completed %d frames", len(got))
	}
	// Completion order is arrival order (1 then 0); the client's slot
	// loop reorders by Seq.
	if got[0].Seq != 1 || got[1].Seq != 0 {
		t.Errorf("completion seqs = %d,%d", got[0].Seq, got[1].Seq)
	}
}

func TestAudioThroughReassembler(t *testing.T) {
	p := NewPacketizer(1, 1200, 30)
	r := NewReassembler(5)
	clip := media.NewTone(0.02, 440, media.DefaultAudioRate)
	pkt := p.Audio(&codec.AudioFrame{Seq: 0, Bits: 900, PCM: clip})
	vs, af := r.Push(pkt)
	if vs != nil || af == nil {
		t.Errorf("audio push: video=%v audio=%v", vs, af)
	}
}

func TestDuplicateFragmentIgnored(t *testing.T) {
	p := NewPacketizer(1, 1200, 30)
	r := NewReassembler(5)
	pkts := p.Video(frameOfBits(0, 8*2000, false))
	total := 0
	for _, pk := range pkts {
		vs, _ := r.Push(pk)
		total += len(vs)
	}
	vs, _ := r.Push(pkts[0]) // duplicate after completion
	total += len(vs)
	if total != 1 {
		t.Errorf("frame completed %d times", total)
	}
}

// Property: after Flush, every frame the reassembler ever saw a fragment
// of is either complete or dropped, exactly once. Frames whose fragments
// were all lost are invisible to a receiver and excluded.
func TestReassemblyConservationProperty(t *testing.T) {
	f := func(sizes []uint16, seed int64) bool {
		pz := NewPacketizer(9, 1200, 30)
		r := NewReassembler(4)
		rng := rand.New(rand.NewSource(seed))
		seen := make(map[int]bool)
		completed := 0
		for i, s := range sizes {
			bits := (int(s)%40000 + 100) * 8
			pkts := pz.Video(frameOfBits(i, bits, false))
			for _, pk := range pkts {
				if rng.Float64() < 0.1 {
					continue // lost
				}
				seen[i] = true
				vs, _ := r.Push(pk)
				completed += len(vs)
			}
		}
		st := r.Flush()
		return st.FramesComplete == completed &&
			completed+st.FramesDropped == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPacketizerDefaults(t *testing.T) {
	p := NewPacketizer(1, 0, 0)
	pkts := p.Video(frameOfBits(0, 8*100, false))
	if len(pkts) != 1 {
		t.Fatalf("packets = %d", len(pkts))
	}
	if pkts[0].Bytes != HeaderLen+100 {
		t.Errorf("bytes = %d", pkts[0].Bytes)
	}
}
