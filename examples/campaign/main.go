// Example campaign runs a declarative grid the paper never measured —
// a US-East host feeding mixed-continent receivers, swept over
// downlink caps, audio on/off and a lossy last mile — through the
// campaign-matrix engine, then prints both the per-cell table and the
// machine-readable JSON. The same spec ships as spec.json for the CLI:
//
//	go run ./cmd/vcabench -campaign examples/campaign/spec.json -scale tiny -json -
package main

import (
	"fmt"
	"os"

	"github.com/vcabench/vcabench"
)

func main() {
	spec := vcabench.Campaign{
		Name:        "transatlantic-lastmile",
		Description: "mixed-continent receivers × caps × audio × loss",
		Geometries: []vcabench.Geometry{{
			Name:      "us-eu-mix",
			Host:      "US-East",
			Receivers: []string{"US-West", "FR", "UK-South", "DE"},
		}},
		Motions: []string{"high-motion"},
		Sizes:   []int{3, 5},
		CapsBps: []int64{0, 1_000_000},
		Audio:   []bool{true, false},
		Netem: []vcabench.Netem{
			{Name: "clean"},
			{Name: "lossy-10pct", LossPct: 10},
		},
	}

	tb := vcabench.NewTestbed(7)
	res, err := vcabench.RunCampaign(tb, spec, vcabench.TinyScale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	res.RenderTable().Render(os.Stdout)
	fmt.Println()

	// Pick one question out of the grid: how much does a lossy last
	// mile cost each platform's SSIM in a 5-party mixed-continent call?
	fmt.Println("SSIM cost of 10% last-mile loss (N=5, uncapped, no audio):")
	for _, kind := range vcabench.Kinds {
		clean := res.Cell(fmt.Sprintf("transatlantic-lastmile/%s/5/0/noaudio/clean", kind))
		lossy := res.Cell(fmt.Sprintf("transatlantic-lastmile/%s/5/0/noaudio/lossy-10pct", kind))
		fmt.Printf("  %-6s %.3f -> %.3f\n", kind, clean.SSIM.Mean, lossy.SSIM.Mean)
	}
	fmt.Println()

	if err := vcabench.WriteJSON(os.Stdout, res); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
