// Example cluster shards one campaign grid across a two-worker
// vcabenchd fleet and proves the core invariant of distributed
// execution: the merged result is byte-identical to a single-process
// run, because every cell's seed derives from its unit key — placement
// cannot leak into results. The two workers are real HTTP daemons
// (loopback listeners running the same serve stack as cmd/vcabenchd)
// sharing one persistent store, so rerunning the example recomputes
// nothing.
//
// The same topology over real machines:
//
//	hostA$ vcabenchd -cache /var/cache/vcabench
//	hostB$ vcabenchd -cache /var/cache/vcabench
//	 you$ vcabench -campaign spec.json -scale tiny \
//	          -workers http://hostA:8547,http://hostB:8547 -json -
package main

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"

	"github.com/vcabench/vcabench"
	"github.com/vcabench/vcabench/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		os.Exit(1)
	}
}

func run() error {
	// One store shared by the whole fleet, like a mounted cache volume.
	dir, err := os.MkdirTemp("", "vcacluster")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := vcabench.OpenStore(dir)
	if err != nil {
		return err
	}

	// Two loopback "machines".
	workerA := httptest.NewServer(serve.New(serve.Config{Store: st}).Handler())
	defer workerA.Close()
	workerB := httptest.NewServer(serve.New(serve.Config{Store: st}).Handler())
	defer workerB.Close()

	pool, err := vcabench.NewPool([]string{workerA.URL, workerB.URL})
	if err != nil {
		return err
	}
	fmt.Printf("fleet: %d workers, %d healthy\n", len(pool.Workers()), len(pool.Healthy()))

	spec := vcabench.Campaign{
		Name:        "fleet-grid",
		Description: "three platforms × two sizes × clean/lossy last mile",
		Sizes:       []int{2, 4},
		Netem: []vcabench.Netem{
			{Name: "clean"},
			{Name: "lossy-5pct", LossPct: 5},
		},
	}

	distributed, err := vcabench.RunDistributed(vcabench.NewTestbed(7), spec, vcabench.TinyScale, pool)
	if err != nil {
		return err
	}
	distributed.RenderTable().Render(os.Stdout)
	fmt.Println()

	stats := pool.Stats()
	fmt.Printf("placement: %d cells remote, %d local fallbacks\n", stats.Remote, stats.Fallbacks)
	for _, w := range stats.Workers {
		fmt.Printf("  %-24s %d cells\n", w.URL, w.Done)
	}

	// The proof: a plain single-process run of the same spec renders
	// the same bytes.
	local, err := vcabench.RunCampaign(vcabench.NewTestbed(7), spec, vcabench.TinyScale)
	if err != nil {
		return err
	}
	var distJSON, localJSON bytes.Buffer
	if err := vcabench.WriteJSON(&distJSON, distributed); err != nil {
		return err
	}
	if err := vcabench.WriteJSON(&localJSON, local); err != nil {
		return err
	}
	if !bytes.Equal(distJSON.Bytes(), localJSON.Bytes()) {
		return fmt.Errorf("distributed result diverged from the local run")
	}
	fmt.Println("distributed JSON is byte-identical to the single-process run")
	return nil
}
