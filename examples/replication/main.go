// Example replication runs the same platform × cap grid the paper
// sweeps in Fig 12, but replicated: every cell executes five times on
// independent key-derived seeds ("…/rep=K" units), and each metric
// reports the pooled mean with a 95% confidence interval over replica
// means — the error bars the paper's single-run tables never
// published. Replicas are ordinary schedulable units, so the run
// parallelizes, caches and distributes exactly like any campaign. The
// same grid ships as spec.json for the CLI:
//
//	go run ./cmd/vcabench -campaign examples/replication/spec.json -scale tiny -json -
package main

import (
	"fmt"
	"os"

	"github.com/vcabench/vcabench"
)

func main() {
	spec := vcabench.Campaign{
		Name:        "replication",
		Description: "zoom/webex/meet under a 1 Mbps downlink cap, 5 replicas per cell — error bars the paper never published",
		Platforms:   []string{"zoom", "webex", "meet"},
		Geometries: []vcabench.Geometry{{
			Host:      "US-East",
			Receivers: []string{"US-East2"},
		}},
		Motions: []string{"high-motion"},
		CapsBps: []int64{0, 1_000_000},
		Repeats: 5,
	}

	tb := vcabench.NewTestbed(7)
	res, err := vcabench.RunCampaign(tb, spec, vcabench.TinyScale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	res.RenderTable().Render(os.Stdout)
	fmt.Println()

	// Pull one question out of the grid: how stable is each platform's
	// capped download rate across replicas? The per-replica means behind
	// each ±CI live in the cell's Replicas block.
	fmt.Println("capped (1 Mbps) download rate per replica (mean Mbps):")
	for _, kind := range vcabench.Kinds {
		c := res.Cell(fmt.Sprintf("replication/%s/1000000", kind))
		fmt.Printf("  %-6s", kind)
		for _, rep := range c.Replicas {
			fmt.Printf(" %5.3f", rep.DownMbps.Mean)
		}
		fmt.Printf("   → %.3f ±%.3f\n", c.DownMbps.Mean, ci(c.DownMbps))
	}
}

// ci unwraps a metric's 95% confidence half-width (0 when undefined,
// which cannot happen here: every cell has 5 replicas with data).
func ci(m *vcabench.Metric) float64 {
	if m == nil || m.CI95 == nil {
		return 0
	}
	return *m.CI95
}
