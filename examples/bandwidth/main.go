// Bandwidth reproduces the Fig 17/18 sweep: video QoE and audio MOS as
// the receiver's downlink is capped with a token-bucket shaper, showing
// Zoom's cliff, Meet's graceful degradation and Webex's collapse.
package main

import (
	"fmt"

	"github.com/vcabench/vcabench"
	"github.com/vcabench/vcabench/internal/core"
	"github.com/vcabench/vcabench/internal/geo"
	"github.com/vcabench/vcabench/internal/media"
)

func main() {
	tb := vcabench.NewTestbed(9)
	sc := vcabench.QuickScale
	fmt.Printf("high-motion feed, one receiver, downlink caps (scale=%s)\n\n", sc.Name)
	fmt.Printf("%-9s", "cap")
	for _, k := range vcabench.Kinds {
		fmt.Printf("  %6s %6s %6s", k, "freeze", "MOS")
	}
	fmt.Println()
	for _, cap := range core.BandwidthCaps {
		fmt.Printf("%-9s", core.CapLabel(cap))
		for _, k := range vcabench.Kinds {
			video := vcabench.RunQoEStudy(tb, k, geo.USEast, []vcabench.Region{geo.USEast2},
				media.HighMotion, sc, vcabench.QoEOpts{DownlinkCapBps: cap})
			audio := vcabench.RunQoEStudy(tb, k, geo.USEast, []vcabench.Region{geo.USEast2},
				media.LowMotion, sc, vcabench.QoEOpts{DownlinkCapBps: cap, WithAudio: true})
			fmt.Printf("  %6.1f %5.0f%% %6.2f", video.PSNR.Mean(), video.Freeze.Mean()*100, audio.MOS.Mean())
		}
		fmt.Println()
	}
}
