// Mobilestudy reproduces Fig 19: CPU, data rate and battery for the
// Galaxy S10 and J3 across the five device/UI scenarios.
package main

import (
	"fmt"
	"math/rand"

	"github.com/vcabench/vcabench"
	"github.com/vcabench/vcabench/internal/mobile"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	fmt.Println("Fig 19: mobile resource consumption (5-minute calls)")
	for _, scn := range mobile.StandardScenarios {
		fmt.Printf("\n%s:\n", scn.Label)
		for _, k := range vcabench.Kinds {
			for _, d := range mobile.Devices {
				cpu := mobile.CPUSamples(k, d, scn, 100, rng).Summarize()
				rate := mobile.DataRateMbps(k, d, scn)
				fmt.Printf("  %-6s %-10s  CPU %3.0f%% [%3.0f-%3.0f]  %5.2f Mbps",
					k, d.Name, cpu.P50, cpu.P25, cpu.P75, rate)
				if d.Name == mobile.GalaxyJ3.Name {
					fmt.Printf("  battery %4.1f mAh/5min (%4.1f%%/h)",
						mobile.DischargemAh(k, d, scn, 5),
						mobile.DischargePercent(k, d, scn, 60))
				}
				fmt.Println()
			}
		}
	}
}
