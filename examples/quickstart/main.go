// Quickstart: create a testbed, run one small lag study per platform,
// and print where each platform relays a US-East-hosted meeting and what
// lag the participants experience.
package main

import (
	"fmt"

	"github.com/vcabench/vcabench"
)

func main() {
	tb := vcabench.NewTestbed(1)
	fleet := vcabench.USLagFleet(vcabench.USEast)

	fmt.Println("US-East-hosted sessions, six participants, quick scale")
	for _, kind := range vcabench.Kinds {
		res := vcabench.RunLagStudy(tb, kind, vcabench.USEast, fleet, vcabench.QuickScale)
		fmt.Printf("\n%s:\n", kind)
		fmt.Printf("  endpoints over %d sessions: %d (%.1f per session)\n",
			res.Endpoints.Sessions, res.Endpoints.Total, res.Endpoints.PerSession)
		for _, region := range fleet {
			lag := res.Lags[region.Name]
			rtt := res.RTTs[region.Name]
			fmt.Printf("  %-12s median lag %6.1f ms   median RTT to endpoint %6.1f ms\n",
				region.Name, lag.Median(), rtt.Median())
		}
	}
}
