// Qoestudy reproduces a slice of Fig 12/15: video QoE and data rates for
// low- vs high-motion feeds as the session grows, on one platform.
package main

import (
	"flag"
	"fmt"

	"github.com/vcabench/vcabench"
	"github.com/vcabench/vcabench/internal/core"
	"github.com/vcabench/vcabench/internal/geo"
	"github.com/vcabench/vcabench/internal/media"
	"github.com/vcabench/vcabench/internal/platform"
)

func main() {
	kindFlag := flag.String("platform", "meet", "zoom, webex or meet")
	flag.Parse()
	kind := platform.Kind(*kindFlag)

	tb := vcabench.NewTestbed(3)
	fmt.Printf("%s, host US-East, quick scale\n\n", kind)
	fmt.Printf("%3s  %-11s  %6s  %6s  %6s  %8s  %8s\n",
		"N", "motion", "PSNR", "SSIM", "VIFp", "up Mbps", "down Mbps")
	for n := 2; n <= 5; n++ {
		for _, motion := range []media.MotionClass{media.LowMotion, media.HighMotion} {
			res := vcabench.RunQoEStudy(tb, kind, geo.USEast,
				core.QoEReceiverRegions(geo.ZoneUS, n-1), motion,
				vcabench.QuickScale, vcabench.QoEOpts{})
			fmt.Printf("%3d  %-11s  %6.2f  %6.4f  %6.4f  %8.2f  %8.2f\n",
				n, motion, res.PSNR.Mean(), res.SSIM.Mean(), res.VIFP.Mean(),
				res.UpMbps.Mean(), res.DownMbps.Mean())
		}
	}
}
