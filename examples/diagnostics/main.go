// Example diagnostics walks the sim-time flight recorder end to end:
// run a small disturbance campaign with RunCampaign on a
// diagnostics-armed testbed, pull each cell's CellDiag document, and
// read the story the simulation recorded about itself — where packets
// queued, when the rate controller moved, which drop caused which
// freeze.
//
// Unlike the walltime telemetry of the Observability example (metrics
// and spans about how a run was *produced*), every timestamp here is
// simulation time: the documents are byte-identical at any worker
// count, cache temperature or fleet topology. The same artifacts come
// out of the CLI and daemon:
//
//	go run ./cmd/vcabench -campaign examples/traces/spec.json -scale tiny -diag-out DIR
//	vcabenchd -diag ...; curl host:8547/cells/<key>/diag
//	vcaplot -diag DIR/<cell>.json
package main

import (
	"fmt"
	"os"

	"github.com/vcabench/vcabench"
)

func main() {
	// A Fig 13-shaped scenario: mid-call, the receiver's downlink drops
	// to 500 Kbps for four seconds, then recovers.
	spec := vcabench.Campaign{
		Name:        "diag-demo",
		Description: "one downlink dip, fully flight-recorded",
		Geometries: []vcabench.Geometry{{
			Host:      "US-East",
			Receivers: []string{"US-East2"},
		}},
		Motions: []string{"high-motion"},
		Traces: []vcabench.TraceSpec{{
			Name: "dip500k",
			Square: &vcabench.SquareTrace{
				HighBps: 0, LowBps: 500_000,
				HighSec: 2, LowSec: 4,
				Once: true,
			},
		}},
	}

	// WithDiagnostics arms the probe seams; each campaign unit then
	// records on its own fork, so the documents are independent of
	// scheduling. (The library route shown here; RunOpts.Diagnostics
	// does the same for Run-by-ID experiments.)
	tb := vcabench.NewTestbed(7).WithDiagnostics()
	res, err := vcabench.RunCampaign(tb, spec, vcabench.TinyScale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Armed cells surface drop causes right in the campaign result.
	for i := range res.Cells {
		c := &res.Cells[i]
		fmt.Printf("%-18s drops: %d queue, %d random\n", c.Key, c.DropsQueue, c.DropsRandom)
	}

	// DiagResults returns one document per cell, sorted by key.
	for _, d := range tb.DiagResults() {
		fmt.Printf("\n=== %s ===\n", d.Key)

		// The event log is the discrete story: rate-ladder switches,
		// trace-step applications, FEC recoveries, freezes — all on the
		// sim clock.
		for _, e := range d.Events {
			fmt.Printf("  t=%6.3fs %-13s %-22s %v\n", e.AtSec, e.Kind, e.Subject, e.Value)
		}

		// The pipe series are the continuous story: per-second bins of
		// throughput, queuing and drops for every simulated link.
		for _, p := range d.Pipes {
			var bytes, drops int64
			for _, b := range p.Bins {
				bytes += b.Bytes
				drops += b.DropsQueue + b.DropsRandom
			}
			fmt.Printf("  pipe %-24s %7d bytes, %d drops\n", p.Name, bytes, drops)
		}

		// EncodeDiag yields the versioned JSON artifact — the exact
		// bytes `vcabench -diag-out` writes and vcabenchd serves at
		// GET /cells/{key}/diag.
		data, err := vcabench.EncodeDiag(d)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  artifact: %d bytes of versioned JSON\n", len(data))
	}
}
