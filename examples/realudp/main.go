// Realudp demonstrates that the measurement pipeline is transport-
// agnostic: it runs the Fig-2 flash pattern over *real* UDP sockets on
// the loopback interface (a relay with artificial forwarding delay
// standing in for a service endpoint), captures both sides into the same
// trace format the simulator uses, and extracts streaming lag with the
// identical burst-matching analysis.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/vcabench/vcabench/internal/capture"
	"github.com/vcabench/vcabench/internal/realnet"
)

const (
	relayDelay = 40 * time.Millisecond // one-way "propagation"
	flashEvery = 1 * time.Second
	flashPkts  = 5
	flashSize  = 900
	runFor     = 8 * time.Second
)

func main() {
	relay, err := realnet.ListenRelay("127.0.0.1:0", relayDelay)
	if err != nil {
		log.Fatal(err)
	}
	defer relay.Close()

	sender, err := realnet.Dial(relay.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer sender.Close()
	receiver, err := realnet.Dial(relay.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer receiver.Close()
	if err := sender.Join(); err != nil {
		log.Fatal(err)
	}
	if err := receiver.Join(); err != nil {
		log.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)

	sentTrace := capture.NewTrace("sender")
	recvTrace := capture.NewTrace("receiver")
	senderEP := capture.Endpoint{IP: capture.IPv4{127, 0, 0, 1}, Port: uint16(sender.LocalAddr().Port)}
	recvEP := capture.Endpoint{IP: capture.IPv4{127, 0, 0, 1}, Port: uint16(receiver.LocalAddr().Port)}
	relayEP := capture.Endpoint{IP: capture.IPv4{127, 0, 0, 1}, Port: uint16(relay.Addr().Port)}

	// Receiver loop: capture arrivals.
	done := make(chan struct{})
	go func() {
		defer close(done)
		deadline := time.Now().Add(runFor + time.Second)
		for time.Now().Before(deadline) {
			payload, _, err := receiver.Recv(500 * time.Millisecond)
			if err != nil {
				continue
			}
			recvTrace.Add(capture.Record{
				Time: time.Now(), Dir: capture.In,
				Src: relayEP, Dst: recvEP, Len: len(payload),
			})
		}
	}()

	// Sender loop: keepalives plus periodic flash bursts.
	start := time.Now()
	payload := make([]byte, flashSize)
	keepalive := make([]byte, 50)
	for time.Since(start) < runFor {
		// Flash burst.
		for i := 0; i < flashPkts; i++ {
			if err := sender.Send(payload); err != nil {
				log.Fatal(err)
			}
			sentTrace.Add(capture.Record{
				Time: time.Now(), Dir: capture.Out,
				Src: senderEP, Dst: relayEP, Len: flashSize,
			})
		}
		// Quiet period with keepalives.
		quiet := time.Now().Add(flashEvery)
		for time.Now().Before(quiet) {
			sender.Send(keepalive)
			sentTrace.Add(capture.Record{
				Time: time.Now(), Dir: capture.Out,
				Src: senderEP, Dst: relayEP, Len: len(keepalive),
			})
			time.Sleep(100 * time.Millisecond)
		}
	}
	<-done

	cfg := capture.BurstConfig{BigBytes: 200, MinQuiet: 500 * time.Millisecond}
	lags := capture.Lags(sentTrace, recvTrace, cfg, time.Second)
	fmt.Printf("relay forwarded %d datagrams with %v artificial delay\n", relay.Forwarded(), relayDelay)
	fmt.Printf("flash bursts matched: %d\n", len(lags))
	if len(lags) == 0 {
		log.Fatal("no lag samples — loopback too slow?")
	}
	var sum time.Duration
	for _, l := range lags {
		sum += l
	}
	mean := sum / time.Duration(len(lags))
	fmt.Printf("measured streaming lag: mean %v (expected >= %v)\n",
		mean.Round(100*time.Microsecond), relayDelay)
}
