// Lagstudy reproduces the shape of Figs 6/10: European meetings pay a
// trans-Atlantic penalty on Zoom and Webex but not on Meet, and Zoom's
// regional load balancing spreads RTTs into distinct bands.
package main

import (
	"fmt"
	"os"

	"github.com/vcabench/vcabench"
	"github.com/vcabench/vcabench/internal/report"
)

func main() {
	tb := vcabench.NewTestbed(7)
	host := vcabench.UKWest
	fleet := vcabench.EULagFleet(host)

	for _, kind := range vcabench.Kinds {
		res := vcabench.RunLagStudy(tb, kind, host, fleet, vcabench.QuickScale)
		plot := report.CDFPlot{
			Title:  fmt.Sprintf("streaming lag, host UK-West, %s", kind),
			XLabel: "video lag (ms)",
			Width:  60, Height: 12,
		}
		for _, r := range fleet {
			plot.Add(r.Name, res.Lags[r.Name].Values())
		}
		plot.Render(os.Stdout)
		fmt.Println()

		// RTT bands: the min..max spread per client reveals regional LB.
		fmt.Printf("RTT spread per client (%s):\n", kind)
		for _, r := range fleet {
			s := res.RTTs[r.Name]
			if s.Len() == 0 {
				continue
			}
			fmt.Printf("  %-10s %5.0f .. %5.0f ms over %d sessions\n",
				r.Name, s.Min(), s.Max(), s.Len())
		}
		fmt.Println()
	}
}
