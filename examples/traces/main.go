// Example traces sweeps a grid the paper never ran: drop-depth ×
// drop-duration × platform. Every cell replays a single drop/recover
// pulse (à la Fig 13) on the receiver's downlink — the downlink starts
// uncapped, drops to the cell's depth for the cell's duration, then
// recovers — and records a rate-over-time series showing how fast each
// platform climbs back. The same grid ships as spec.json for the CLI:
//
//	go run ./cmd/vcabench -campaign examples/traces/spec.json -scale tiny -json -
package main

import (
	"fmt"
	"os"

	"github.com/vcabench/vcabench"
)

func main() {
	var traces []vcabench.TraceSpec
	for _, depth := range []int64{1_000_000, 500_000, 250_000} {
		for _, durSec := range []float64{2, 4} {
			traces = append(traces, vcabench.TraceSpec{
				Name: fmt.Sprintf("d%dk-%.0fs", depth/1000, durSec),
				Square: &vcabench.SquareTrace{
					HighBps: 0, LowBps: depth,
					HighSec: 2, LowSec: durSec,
					Once: true,
				},
			})
		}
	}
	spec := vcabench.Campaign{
		Name:        "drop-grid",
		Description: "drop-depth × drop-duration × platform recovery sweep",
		Geometries: []vcabench.Geometry{{
			Host:      "US-East",
			Receivers: []string{"US-East2"},
		}},
		Motions: []string{"high-motion"},
		Traces:  traces,
	}

	tb := vcabench.NewTestbed(7)
	res, err := vcabench.RunCampaign(tb, spec, vcabench.TinyScale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	res.RenderTable().Render(os.Stdout)
	fmt.Println()

	// Pull one question out of the grid: how does each platform's
	// download rate move through the deepest, longest drop?
	fmt.Println("recovery from the 250Kbps × 4s drop (mean receiver Mbps per second):")
	for _, kind := range vcabench.Kinds {
		c := res.Cell(fmt.Sprintf("drop-grid/%s/d250k-4s", kind))
		fmt.Printf("  %-6s", kind)
		for _, pt := range c.RateOverTime {
			fmt.Printf(" %5.2f", pt.DownMbps)
		}
		fmt.Println()
	}
}
