// Benchmarks: one per paper table and figure (plus ablations). Each
// bench runs its experiment end to end at a reduced scale and reports
// the headline metric(s) the paper's artifact shows, so `go test
// -bench=. -benchmem` regenerates every result series.
package vcabench_test

import (
	"io"
	"net/http/httptest"
	"testing"

	"github.com/vcabench/vcabench"
	"github.com/vcabench/vcabench/internal/core"
	"github.com/vcabench/vcabench/internal/geo"
	"github.com/vcabench/vcabench/internal/media"
	"github.com/vcabench/vcabench/internal/mobile"
	"github.com/vcabench/vcabench/internal/platform"
	"github.com/vcabench/vcabench/internal/serve"
)

// benchScale keeps the full suite affordable; pass -benchtime=1x to run
// each artifact exactly once.
var benchScale = vcabench.TinyScale

// runExperiment is the generic artifact bench: execute and discard the
// rendered output, timing the full pipeline (campaign units run on the
// default worker pool, one per CPU).
func runExperiment(b *testing.B, id string) {
	b.Helper()
	runExperimentParallel(b, id, 0)
}

// runExperimentParallel pins the campaign worker count; serial (1) vs
// parallel (4) pairs below make the scheduler's speedup a tracked
// metric. Output bytes are identical at any worker count.
func runExperimentParallel(b *testing.B, id string, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := vcabench.RunParallel(id, 42, benchScale, workers, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Cold-vs-warm store pairs over the 30-cell US sweep: Cold pays full
// compute plus persistence into a fresh store; Warm serves every cell
// from a pre-populated store. The gap is the cache win the persistent
// result store buys every rerun, CI job and daemon query.
func BenchmarkFig12SweepCold(b *testing.B) {
	b.ReportAllocs() // allocs/op is a gated number: see BENCH_10.json
	for i := 0; i < b.N; i++ {
		st, err := vcabench.OpenStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		if err := vcabench.RunWithOpts("fig12", 42, benchScale, vcabench.RunOpts{Store: st}, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Instrumented twin of BenchmarkFig12SweepCold: the identical cold
// sweep with the full telemetry stack armed — engine metrics, span
// tracing, store latency histograms. The gap between the pair is the
// observability overhead, which must stay in the noise (the telemetry
// budget is < 2%): counters are atomics, spans append under one mutex,
// and nothing is exported during the run.
func BenchmarkFig12SweepColdObserved(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tel := vcabench.NewTelemetry()
		tel.Tracer = vcabench.NewTracer()
		st, err := vcabench.OpenStoreOptions(b.TempDir(), vcabench.StoreOptions{Telemetry: tel})
		if err != nil {
			b.Fatal(err)
		}
		opts := vcabench.RunOpts{Store: st, Telemetry: tel}
		if err := vcabench.RunWithOpts("fig12", 42, benchScale, opts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Diagnostics twin of BenchmarkFig12SweepCold: the identical cold
// sweep with the sim-time flight recorder armed, every cell's CellDiag
// document aggregated and encoded. Against the bare Cold number this
// tracks what -diag-out costs when ON; the budget for the OFF case is
// < 2% (nil probe checks on the packet and step paths), which the
// bare Cold trajectory itself guards.
func BenchmarkFig12SweepColdDiag(b *testing.B) {
	var docs int
	for i := 0; i < b.N; i++ {
		st, err := vcabench.OpenStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		docs = 0
		opts := vcabench.RunOpts{Store: st, Diagnostics: func(d *vcabench.CellDiag) {
			if _, err := vcabench.EncodeDiag(d); err != nil {
				b.Fatal(err)
			}
			docs++
		}}
		if err := vcabench.RunWithOpts("fig12", 42, benchScale, opts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(docs), "diag-docs")
}

func BenchmarkFig12SweepWarm(b *testing.B) {
	st, err := vcabench.OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	// Populate once; every timed iteration then recomputes zero cells.
	if err := vcabench.RunWithOpts("fig12", 42, benchScale, vcabench.RunOpts{Store: st}, io.Discard); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := vcabench.RunWithOpts("fig12", 42, benchScale, vcabench.RunOpts{Store: st}, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Distributed counterpart to the Fig 12 sweep pairs above: the same
// 30 cells sharded across two loopback vcabenchd workers through the
// cluster pool. On one machine this mostly measures the dispatch
// overhead (HTTP + gob round trips) against BenchmarkFig12SweepSerial
// and Parallel4; across real machines the fleet adds their cores.
// Bytes are identical in every variant.
func BenchmarkFig12SweepDistributed(b *testing.B) {
	w1 := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer w1.Close()
	w2 := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer w2.Close()
	pool, err := vcabench.NewPool([]string{w1.URL, w2.URL})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		err := vcabench.RunWithOpts("fig12", 42, benchScale,
			vcabench.RunOpts{Dispatcher: pool}, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Replicated campaign: two cells × five replicas through the full
// aggregation pipeline. Against BenchmarkFig12SweepSerial-style
// single-run numbers this tracks what the ×N replication axis costs;
// the reported metric is the mean PSNR CI half-width, the statistical
// payoff the extra compute buys.
func BenchmarkReplicatedCampaign(b *testing.B) {
	spec := vcabench.Campaign{
		Name:      "bench-rep",
		Platforms: []string{"zoom", "meet"},
		Geometries: []vcabench.Geometry{
			{Host: "US-East", Receivers: []string{"US-East2"}},
		},
		Motions: []string{"high-motion"},
		Repeats: 5,
	}
	var ci float64
	for i := 0; i < b.N; i++ {
		res, err := vcabench.RunCampaign(vcabench.NewTestbed(42), spec, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		ci = 0
		for j := range res.Cells {
			ci += *res.Cells[j].PSNR.CI95
		}
		ci /= float64(len(res.Cells))
	}
	b.ReportMetric(ci, "psnr-ci95-halfwidth")
}

// Serial-vs-parallel pairs over the two heaviest campaign shapes: a
// (platform, scenario) lag figure and the 30-cell §4.3.1 US QoE sweep.
func BenchmarkFig4CampaignSerial(b *testing.B)     { runExperimentParallel(b, "fig4", 1) }
func BenchmarkFig4CampaignParallel4(b *testing.B)  { runExperimentParallel(b, "fig4", 4) }
func BenchmarkFig12SweepSerial(b *testing.B)       { runExperimentParallel(b, "fig12", 1) }
func BenchmarkFig12SweepParallel4(b *testing.B)    { runExperimentParallel(b, "fig12", 4) }
func BenchmarkAblateP2PSerial(b *testing.B)        { runExperimentParallel(b, "ablate-p2p", 1) }
func BenchmarkAblateP2PParallel4(b *testing.B)     { runExperimentParallel(b, "ablate-p2p", 4) }
func BenchmarkFig17CapSweepSerial(b *testing.B)    { runExperimentParallel(b, "fig17", 1) }
func BenchmarkFig17CapSweepParallel4(b *testing.B) { runExperimentParallel(b, "fig17", 4) }

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }
func BenchmarkFig2(b *testing.B)   { runExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { runExperiment(b, "fig3") }

// The four lag figures report the median lag of the farthest client, the
// paper's headline number for each scenario.
func benchLagFigure(b *testing.B, kind platform.Kind, host geo.Region, fleet []geo.Region, far string) {
	b.Helper()
	var med float64
	for i := 0; i < b.N; i++ {
		tb := vcabench.NewTestbed(42)
		res := vcabench.RunLagStudy(tb, kind, host, fleet, benchScale)
		med = res.Lags[far].Median()
	}
	b.ReportMetric(med, "ms-median-lag")
}

func BenchmarkFig4(b *testing.B) {
	benchLagFigure(b, platform.Zoom, geo.USEast, core.USLagFleet(geo.USEast), "US-West")
}
func BenchmarkFig5(b *testing.B) {
	benchLagFigure(b, platform.Webex, geo.USWest, core.USLagFleet(geo.USWest), "US-West2")
}
func BenchmarkFig6(b *testing.B) {
	benchLagFigure(b, platform.Zoom, geo.UKWest, core.EULagFleet(geo.UKWest), "CH")
}
func BenchmarkFig7(b *testing.B) {
	benchLagFigure(b, platform.Meet, geo.CH, core.EULagFleet(geo.CH), "IE")
}

// The four proximity figures report the median RTT from a probe client.
func benchRTTFigure(b *testing.B, kind platform.Kind, host geo.Region, fleet []geo.Region, probe string) {
	b.Helper()
	var med float64
	for i := 0; i < b.N; i++ {
		tb := vcabench.NewTestbed(42)
		res := vcabench.RunLagStudy(tb, kind, host, fleet, benchScale)
		med = res.RTTs[probe].Median()
	}
	b.ReportMetric(med, "ms-median-rtt")
}

func BenchmarkFig8(b *testing.B) {
	benchRTTFigure(b, platform.Zoom, geo.USEast, core.USLagFleet(geo.USEast), "US-West")
}
func BenchmarkFig9(b *testing.B) {
	benchRTTFigure(b, platform.Webex, geo.USWest, core.USLagFleet(geo.USWest), "US-West")
}
func BenchmarkFig10(b *testing.B) {
	benchRTTFigure(b, platform.Zoom, geo.UKWest, core.EULagFleet(geo.UKWest), "CH")
}
func BenchmarkFig11(b *testing.B) {
	benchRTTFigure(b, platform.Webex, geo.CH, core.EULagFleet(geo.CH), "CH")
}

// Fig 12: QoE vs N. Reports the LM-vs-HM SSIM gap on Zoom at N=3.
func BenchmarkFig12(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		tb := vcabench.NewTestbed(42)
		lm := vcabench.RunQoEStudy(tb, platform.Zoom, geo.USEast,
			core.QoEReceiverRegions(geo.ZoneUS, 2), media.LowMotion, benchScale, vcabench.QoEOpts{})
		hm := vcabench.RunQoEStudy(tb, platform.Zoom, geo.USEast,
			core.QoEReceiverRegions(geo.ZoneUS, 2), media.HighMotion, benchScale, vcabench.QoEOpts{})
		gap = lm.SSIM.Mean() - hm.SSIM.Mean()
	}
	b.ReportMetric(gap, "ssim-lm-hm-gap")
}

// Fig 14 is the degradation view of the same sweep.
func BenchmarkFig14(b *testing.B) {
	var drop float64
	for i := 0; i < b.N; i++ {
		tb := vcabench.NewTestbed(43)
		lm := vcabench.RunQoEStudy(tb, platform.Webex, geo.USEast,
			core.QoEReceiverRegions(geo.ZoneUS, 3), media.LowMotion, benchScale, vcabench.QoEOpts{})
		hm := vcabench.RunQoEStudy(tb, platform.Webex, geo.USEast,
			core.QoEReceiverRegions(geo.ZoneUS, 3), media.HighMotion, benchScale, vcabench.QoEOpts{})
		drop = lm.PSNR.Mean() - hm.PSNR.Mean()
	}
	b.ReportMetric(drop, "psnr-db-drop")
}

// Fig 15: data rates. Reports Meet's 2-party vs multi-party rate ratio.
func BenchmarkFig15(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		tb := vcabench.NewTestbed(44)
		two := vcabench.RunQoEStudy(tb, platform.Meet, geo.USEast,
			core.QoEReceiverRegions(geo.ZoneUS, 1), media.LowMotion, benchScale, vcabench.QoEOpts{})
		four := vcabench.RunQoEStudy(tb, platform.Meet, geo.USEast,
			core.QoEReceiverRegions(geo.ZoneUS, 3), media.LowMotion, benchScale, vcabench.QoEOpts{})
		ratio = two.DownMbps.Mean() / four.DownMbps.Mean()
	}
	b.ReportMetric(ratio, "meet-n2-over-n4-rate")
}

// Fig 16: EU QoE. Reports Meet's PSNR edge over Webex at N=4, host CH.
func BenchmarkFig16(b *testing.B) {
	var edge float64
	for i := 0; i < b.N; i++ {
		tb := vcabench.NewTestbed(45)
		meet := vcabench.RunQoEStudy(tb, platform.Meet, geo.CH,
			core.QoEReceiverRegions(geo.ZoneEU, 3), media.HighMotion, benchScale, vcabench.QoEOpts{})
		webex := vcabench.RunQoEStudy(tb, platform.Webex, geo.CH,
			core.QoEReceiverRegions(geo.ZoneEU, 3), media.HighMotion, benchScale, vcabench.QoEOpts{})
		edge = meet.SSIM.Mean() - webex.SSIM.Mean()
	}
	b.ReportMetric(edge, "meet-ssim-edge")
}

// Fig 17: bandwidth caps. Reports Webex's freeze ratio at a 500k cap.
func BenchmarkFig17(b *testing.B) {
	var freeze float64
	for i := 0; i < b.N; i++ {
		tb := vcabench.NewTestbed(46)
		res := vcabench.RunQoEStudy(tb, platform.Webex, geo.USEast,
			[]geo.Region{geo.USEast2}, media.HighMotion, benchScale,
			vcabench.QoEOpts{DownlinkCapBps: 500_000})
		freeze = res.Freeze.Mean()
	}
	b.ReportMetric(freeze, "webex-freeze-at-500k")
}

// Fig 18: audio under caps. Reports Zoom's MOS at a 250k cap.
func BenchmarkFig18(b *testing.B) {
	var mos float64
	for i := 0; i < b.N; i++ {
		tb := vcabench.NewTestbed(47)
		sc := benchScale
		sc.QoEDur = 20_000_000_000 // 20s: amortize rate-control convergence
		res := vcabench.RunQoEStudy(tb, platform.Zoom, geo.USEast,
			[]geo.Region{geo.USEast2}, media.LowMotion, sc,
			vcabench.QoEOpts{DownlinkCapBps: 250_000, WithAudio: true})
		mos = res.MOS.Mean()
	}
	b.ReportMetric(mos, "zoom-mos-at-250k")
}

// Fig 19: mobile resources. Reports Meet's worst-case data rate (GB/h)
// and Zoom's screen-off battery saving.
func BenchmarkFig19(b *testing.B) {
	var gbph, saving float64
	for i := 0; i < b.N; i++ {
		gbph = mobile.DataRateMbps(platform.Meet, mobile.GalaxyS10, mobile.ScenarioHM) * 3600 / 8 / 1000
		on := mobile.DischargemAh(platform.Zoom, mobile.GalaxyJ3, mobile.ScenarioLM, 60)
		off := mobile.DischargemAh(platform.Zoom, mobile.GalaxyJ3, mobile.ScenarioLMOff, 60)
		saving = 1 - off/on
	}
	b.ReportMetric(gbph, "meet-GB-per-hour")
	b.ReportMetric(saving, "zoom-screenoff-saving")
}

// Ablations.
func BenchmarkAblateWebexGeo(b *testing.B)   { runExperiment(b, "ablate-webex-geo") }
func BenchmarkAblateMeetSingle(b *testing.B) { runExperiment(b, "ablate-meet-single") }
func BenchmarkAblateZoomNoLB(b *testing.B)   { runExperiment(b, "ablate-zoom-nolb") }
func BenchmarkAblateP2P(b *testing.B)        { runExperiment(b, "ablate-p2p") }

// Micro-benchmarks of the hot substrate paths.
func BenchmarkSimnetPacketDelivery(b *testing.B) {
	tb := vcabench.NewTestbed(1)
	_ = tb
	b.ReportAllocs()
	// Covered in detail by the engine benches below; this measures the
	// end-to-end experiment cost per simulated session second instead.
	for i := 0; i < b.N; i++ {
		t2 := vcabench.NewTestbed(int64(i))
		vcabench.RunQoEStudy(t2, platform.Zoom, geo.USEast, []geo.Region{geo.USEast2},
			media.LowMotion, vcabench.TinyScale, vcabench.QoEOpts{})
	}
}
