// Command vcabenchd serves campaign grids over HTTP: clients POST
// declarative campaign specs, the daemon executes them through the
// shared scheduler with bounded concurrency, and results are served as
// typed JSON — byte-identical to what `vcabench -campaign spec.json
// -json -` prints for the same spec, scale and seed. With -cache, every
// campaign shares one persistent cell store (also shareable with the
// CLI), so overlapping grids from many clients recompute nothing.
//
// Usage:
//
//	vcabenchd [-addr :8547] [-scale quick] [-seed 42]
//	          [-parallel N] [-runs M] [-cache DIR]
//
// Endpoints (see internal/serve for the full contract):
//
//	POST /campaigns             submit {"spec": {...}, "scale": "...", "seed": N}
//	GET  /campaigns/{id}        poll job status
//	GET  /campaigns/{id}/result fetch the result document
//	GET  /cells/{key}           fetch one cell by canonical unit key
//	GET  /healthz               liveness + store statistics
//
// Example session:
//
//	vcabenchd -scale tiny -cache /var/cache/vcabench &
//	curl -s -X POST localhost:8547/campaigns \
//	    -d "{\"spec\": $(cat spec.json)}" | jq -r .id
//	curl -s localhost:8547/campaigns/<id>          # until "status": "done"
//	curl -s localhost:8547/campaigns/<id>/result
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"github.com/vcabench/vcabench/internal/core"
	"github.com/vcabench/vcabench/internal/serve"
	"github.com/vcabench/vcabench/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8547", "listen address")
		scale    = flag.String("scale", "quick", "default experiment scale: tiny, quick or paper")
		seed     = flag.Int64("seed", 42, "default simulation seed")
		parallel = flag.Int("parallel", 0, "worker pool per campaign (0 = GOMAXPROCS, 1 = serial)")
		runs     = flag.Int("runs", 0, "concurrently executing campaigns (0 = NumCPU)")
		cacheDir = flag.String("cache", "", "persist campaign-unit results in this directory")
	)
	flag.Parse()

	if *parallel < 0 || *runs < 0 {
		fmt.Fprintln(os.Stderr, "vcabenchd: -parallel and -runs must be >= 0")
		flag.Usage()
		os.Exit(2)
	}
	sc, ok := core.ScaleByName(*scale)
	if !ok {
		fmt.Fprintf(os.Stderr, "vcabenchd: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	cfg := serve.Config{Seed: *seed, Scale: sc, Workers: *parallel, MaxRuns: *runs}
	if *cacheDir != "" {
		st, err := store.Open(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vcabenchd:", err)
			os.Exit(1)
		}
		cfg.Store = st
	}
	srv := serve.New(cfg)
	log.Printf("vcabenchd: listening on %s (%s)", *addr, srv.Describe())
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal("vcabenchd: ", err)
	}
}
