// Command vcabenchd serves campaign grids over HTTP: clients POST
// declarative campaign specs, the daemon executes them through the
// shared scheduler with bounded concurrency, and results are served as
// typed JSON — byte-identical to what `vcabench -campaign spec.json
// -json -` prints for the same spec, scale and seed. With -cache, every
// campaign shares one persistent cell store (also shareable with the
// CLI), so overlapping grids from many clients recompute nothing.
//
// The daemon doubles as a distributed-execution worker: POST /units
// runs a single campaign cell, which is how a `vcabench -workers ...`
// coordinator (or any cluster.Pool) shards a campaign across a fleet
// of vcabenchd processes. SIGINT/SIGTERM shut down gracefully: the
// listener closes, in-flight requests and running campaigns drain
// (bounded by -grace), then the process exits 0. A second signal kills
// immediately.
//
// Usage:
//
//	vcabenchd [-addr :8547] [-scale quick] [-seed 42]
//	          [-parallel N] [-runs M] [-cache DIR] [-grace 60s] [-diag]
//
// Endpoints (see internal/serve for the full contract):
//
//	POST /campaigns             submit {"spec": {...}, "scale": "...", "seed": N}
//	GET  /campaigns/{id}        poll job status
//	GET  /campaigns/{id}/result fetch the result document
//	GET  /cells/{key}           fetch one cell by canonical unit key
//	GET  /cells/{key}/diag      fetch the cell's sim-time diagnostics
//	                            artifact (needs -diag; byte-identical to
//	                            `vcabench -diag-out` for the same cell)
//	POST /units                 run one campaign cell (worker endpoint)
//	GET  /healthz               liveness + store statistics
//	GET  /metrics               Prometheus text exposition (always on)
//
// With -pprof the net/http/pprof handlers are additionally mounted
// under /debug/pprof/ for CPU, heap, goroutine and mutex profiling of
// a live daemon (`go tool pprof http://host:8547/debug/pprof/profile`).
// Profiling is off by default: the endpoint serves raw memory contents
// and belongs behind the same trust boundary as the daemon itself.
//
// Example session:
//
//	vcabenchd -scale tiny -cache /var/cache/vcabench &
//	curl -s -X POST localhost:8547/campaigns \
//	    -d "{\"spec\": $(cat spec.json)}" | jq -r .id
//	curl -s localhost:8547/campaigns/<id>          # until "status": "done"
//	curl -s localhost:8547/campaigns/<id>/result
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/vcabench/vcabench/internal/core"
	"github.com/vcabench/vcabench/internal/obs"
	"github.com/vcabench/vcabench/internal/serve"
	"github.com/vcabench/vcabench/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8547", "listen address")
		scale    = flag.String("scale", "quick", "default experiment scale: tiny, quick or paper")
		seed     = flag.Int64("seed", 42, "default simulation seed")
		parallel = flag.Int("parallel", 0, "worker pool per campaign (0 = GOMAXPROCS, 1 = serial)")
		runs     = flag.Int("runs", 0, "concurrently executing campaigns (0 = NumCPU)")
		cacheDir = flag.String("cache", "", "persist campaign-unit results in this directory")
		grace    = flag.Duration("grace", time.Minute, "on SIGINT/SIGTERM, wait this long for in-flight work to drain")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
		diagOn   = flag.Bool("diag", false, "arm the sim-time flight recorder; cell diagnostics served at GET /cells/{key}/diag")
	)
	flag.Parse()

	if *parallel < 0 || *runs < 0 {
		fmt.Fprintln(os.Stderr, "vcabenchd: -parallel and -runs must be >= 0")
		flag.Usage()
		os.Exit(2)
	}
	sc, ok := core.ScaleByName(*scale)
	if !ok {
		fmt.Fprintf(os.Stderr, "vcabenchd: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	// The daemon is always observed: one registry carries serve, engine
	// and store series, scraped at GET /metrics.
	tel := obs.NewTelemetry()
	cfg := serve.Config{Seed: *seed, Scale: sc, Workers: *parallel, MaxRuns: *runs, Telemetry: tel, Diagnostics: *diagOn}
	if *cacheDir != "" {
		st, err := store.OpenOptions(*cacheDir, store.Options{Telemetry: tel})
		if err != nil {
			fmt.Fprintln(os.Stderr, "vcabenchd:", err)
			os.Exit(1)
		}
		cfg.Store = st
	}
	srv := serve.New(cfg)
	handler := srv.Handler()
	if *pprofOn {
		outer := http.NewServeMux()
		outer.Handle("/", handler)
		// pprof.Index dispatches /debug/pprof/<name> to every named
		// profile (heap, goroutine, mutex, ...) itself.
		outer.HandleFunc("GET /debug/pprof/", pprof.Index)
		outer.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		handler = outer
	}
	hs := &http.Server{Addr: *addr, Handler: handler}

	// First SIGINT/SIGTERM starts a graceful shutdown; stop() then
	// restores default signal handling, so a second signal kills the
	// process even if draining hangs. One grace budget, started at the
	// signal, covers both in-flight HTTP requests and running jobs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	deadlineCh := make(chan time.Time, 1)
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		stop()
		log.Printf("vcabenchd: signal received, draining (up to %s; signal again to kill)", *grace)
		deadlineCh <- time.Now().Add(*grace)
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		shutdownErr <- hs.Shutdown(sctx)
	}()

	if *pprofOn {
		log.Printf("vcabenchd: pprof handlers mounted at /debug/pprof/")
	}
	log.Printf("vcabenchd: listening on %s (%s)", *addr, srv.Describe())
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal("vcabenchd: ", err)
	}
	deadline := <-deadlineCh
	// Wait for Shutdown itself before draining jobs: only then has
	// every in-flight handler returned, so every accepted submission
	// has registered the job DrainJobs must wait on.
	if err := <-shutdownErr; err != nil {
		log.Printf("vcabenchd: shutdown: %v", err)
	}
	drained := make(chan struct{})
	go func() { srv.DrainJobs(); close(drained) }()
	select {
	case <-drained:
		log.Printf("vcabenchd: drained, exiting")
	case <-time.After(time.Until(deadline)):
		log.Printf("vcabenchd: grace period expired with campaigns still running, exiting")
	}
}
