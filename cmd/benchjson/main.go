// Command benchjson converts `go test -bench` output on stdin into the
// JSON benchmark record committed as BENCH_<n>.json and uploaded by CI:
//
//	go test -bench 'Fig12Sweep(Cold|Warm|Distributed)$|ReplicatedCampaign$' \
//	    -benchtime=1x -run '^$' . | go run ./cmd/benchjson > BENCH_6.json
//
// Every "Benchmark..." result line becomes one entry carrying the
// iteration count, ns/op and any custom metrics the benchmark reported
// (b.ReportMetric pairs). Environment lines (goos/goarch/pkg/cpu) are
// captured once at the top level. Entries keep input order, so the
// document is deterministic for a given bench run.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchmark struct {
	Name    string             `json:"name"`
	N       int64              `json:"n"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type record struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	rec := record{Benchmarks: []benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rec.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rec.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rec.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBench(line)
			if !ok {
				fmt.Fprintf(os.Stderr, "benchjson: skipping unparseable line: %s\n", line)
				continue
			}
			rec.Benchmarks = append(rec.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rec.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench decodes one result line:
//
//	BenchmarkName-8   3   123456 ns/op   0.42 some-metric   2 B/op
//
// The trailing "-8" GOMAXPROCS suffix is stripped from the name; the
// value/unit pairs after the iteration count land in ns/op or Metrics.
func parseBench(line string) (benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{Name: name, N: n}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[unit] = v
	}
	return b, true
}
