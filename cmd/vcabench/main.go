// Command vcabench runs the paper's experiments by ID.
//
// Usage:
//
//	vcabench -list
//	vcabench -run fig4 [-scale quick|paper|tiny] [-seed 42] [-parallel N]
//	vcabench -run all
//
// -parallel bounds the campaign worker pool (0 = one worker per CPU,
// 1 = serial). Output is byte-identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/vcabench/vcabench"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		run      = flag.String("run", "", "comma-separated experiment IDs, or \"all\"")
		scale    = flag.String("scale", "quick", "experiment scale: tiny, quick or paper")
		seed     = flag.Int64("seed", 42, "simulation seed")
		parallel = flag.Int("parallel", 0, "campaign worker count (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()

	if *list {
		for _, e := range vcabench.List() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}
	if *run == "" {
		flag.Usage()
		os.Exit(2)
	}

	var sc vcabench.Scale
	switch *scale {
	case "tiny":
		sc = vcabench.TinyScale
	case "quick":
		sc = vcabench.QuickScale
	case "paper":
		sc = vcabench.PaperScale
	default:
		fmt.Fprintf(os.Stderr, "vcabench: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	ids := strings.Split(*run, ",")
	if *run == "all" {
		ids = ids[:0]
		for _, e := range vcabench.List() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		fmt.Printf("=== %s (scale=%s, seed=%d) ===\n", id, sc.Name, *seed)
		if err := vcabench.RunParallel(id, *seed, sc, *parallel, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
