// Command vcabench runs the paper's experiments by ID, or a
// declarative campaign grid from a JSON spec.
//
// Usage:
//
//	vcabench -list
//	vcabench -run fig4 [-scale quick|paper|tiny] [-seed 42] [-parallel N] [-cache DIR]
//	vcabench -run all
//	vcabench -campaign spec.json [-json results.json] [-cache DIR]
//	vcabench -campaign spec.json -workers http://a:8547,http://b:8547
//
// -parallel bounds the campaign worker pool (0 = one worker per CPU,
// 1 = serial; negative counts are rejected). Output is byte-identical
// at any worker count.
//
// -workers shards campaign cells across a fleet of vcabenchd daemons
// (comma-separated base URLs): each cell's preferred worker derives
// from its unit key, failures retry on other workers with backoff, and
// cells the fleet cannot serve compute locally — so the output
// (including -json) is byte-identical to a single-process run for any
// fleet size or failure pattern. A summary line ("vcabench: cluster:
// ...") goes to stderr. Works with -run and -campaign; lag figures
// have no campaign cells and always run locally.
//
// -campaign runs the grid declared in the given JSON spec (see the
// README for the format — including the time-varying "traces" axis,
// whose cells carry a rate-over-time series in the JSON results) and
// renders a per-cell table; -json
// additionally writes the structured results to a file. With
// "-json -" stdout carries only the JSON document (no table), so it
// pipes cleanly into jq and friends. -json without -campaign is a
// usage error.
//
// -repeats N overrides the spec's "repeats" axis: every cell runs N
// times with independent key-derived seeds and the table/JSON report
// aggregated statistics (mean ±95% CI per metric, plus a per-replica
// "replicas" block in the JSON). -repeats 0 (the default) keeps the
// spec's own value; -repeats requires -campaign.
//
// -cache persists campaign-unit results in the given directory: a
// rerun of the same experiment or spec (same seed and scale, any
// -parallel value, any process) serves every cell from the store and
// produces byte-identical output. The cache directory is shared safely
// between concurrent runs and with the vcabenchd daemon; a summary
// line ("vcabench: cache: N hits, M misses, K cells stored") goes to
// stderr after each cached run.
//
// Observability (none of it changes rendered output, only records how
// it was produced — see the README's Observability section):
//
//	-trace-out spans.jsonl   write execution spans (campaign → cell →
//	                         replica → unit → memo/store/dispatch/
//	                         local-run) as JSON Lines, one span per
//	                         line, plus a per-tier summary on stderr
//	-metrics-out FILE        write the final metrics registry in
//	                         Prometheus text format ("-" = stderr)
//	-cpuprofile FILE         write a pprof CPU profile of the run
//	-memprofile FILE         write a pprof heap profile at exit
//
// Simulation diagnostics (sim-time, unlike the walltime observability
// above — see the README's Simulation diagnostics section):
//
//	-diag-out DIR            arm the flight recorder and write one
//	                         versioned JSON diagnostics artifact per
//	                         campaign cell into DIR (the cell key with
//	                         "/" replaced by "__", plus ".json"). The
//	                         artifacts are byte-identical at any
//	                         -parallel value, cache temperature or
//	                         -workers fleet. Diagnostics-armed runs
//	                         cache separately from bare runs under the
//	                         same -cache directory.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"github.com/vcabench/vcabench"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		run      = flag.String("run", "", "comma-separated experiment IDs, or \"all\"")
		campaign = flag.String("campaign", "", "path to a JSON campaign spec to run instead of -run")
		jsonOut  = flag.String("json", "", "with -campaign: write JSON results to this file (\"-\" = stdout)")
		scale    = flag.String("scale", "quick", "experiment scale: tiny, quick or paper")
		seed     = flag.Int64("seed", 42, "simulation seed")
		parallel = flag.Int("parallel", 0, "campaign worker count (0 = GOMAXPROCS, 1 = serial)")
		cacheDir = flag.String("cache", "", "persist campaign-unit results in this directory")
		workers  = flag.String("workers", "", "comma-separated vcabenchd base URLs to shard campaign cells across")
		repeats  = flag.Int("repeats", 0, "with -campaign: run every cell this many times and aggregate (0 = spec's value)")
		traceOut = flag.String("trace-out", "", "write execution spans as JSON Lines to this file, summary to stderr")
		metrics  = flag.String("metrics-out", "", "write final metrics in Prometheus text format to this file (\"-\" = stderr)")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		diagOut  = flag.String("diag-out", "", "write one sim-time diagnostics JSON artifact per campaign cell into this directory")
	)
	flag.Parse()

	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "vcabench: -parallel %d: worker count must be >= 1 (or 0 for the default)\n", *parallel)
		flag.Usage()
		os.Exit(2)
	}
	if *repeats < 0 {
		fmt.Fprintf(os.Stderr, "vcabench: -repeats %d: replication factor must be >= 1 (or 0 for the spec's value)\n", *repeats)
		flag.Usage()
		os.Exit(2)
	}
	// Flag-consistency errors beat silent ignoring, so they are checked
	// before -list short-circuits.
	if *jsonOut != "" && *campaign == "" {
		fmt.Fprintln(os.Stderr, "vcabench: -json requires -campaign")
		flag.Usage()
		os.Exit(2)
	}
	if *repeats != 0 && *campaign == "" {
		fmt.Fprintln(os.Stderr, "vcabench: -repeats requires -campaign")
		flag.Usage()
		os.Exit(2)
	}
	if *cacheDir != "" && *run == "" && *campaign == "" {
		fmt.Fprintln(os.Stderr, "vcabench: -cache requires -run or -campaign")
		flag.Usage()
		os.Exit(2)
	}
	if *workers != "" && *run == "" && *campaign == "" {
		fmt.Fprintln(os.Stderr, "vcabench: -workers requires -run or -campaign")
		flag.Usage()
		os.Exit(2)
	}
	for _, f := range []struct{ name, val string }{
		{"-trace-out", *traceOut}, {"-metrics-out", *metrics},
		{"-cpuprofile", *cpuProf}, {"-memprofile", *memProf},
		{"-diag-out", *diagOut},
	} {
		if f.val != "" && *run == "" && *campaign == "" {
			fmt.Fprintf(os.Stderr, "vcabench: %s requires -run or -campaign\n", f.name)
			flag.Usage()
			os.Exit(2)
		}
	}

	if *list {
		for _, e := range vcabench.List() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}
	if (*run == "") == (*campaign == "") {
		fmt.Fprintln(os.Stderr, "vcabench: exactly one of -run or -campaign is required")
		flag.Usage()
		os.Exit(2)
	}

	sc, ok := vcabench.ScaleByName(*scale)
	if !ok {
		fmt.Fprintf(os.Stderr, "vcabench: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	o := startObs(*traceOut, *metrics, *cpuProf, *memProf)
	defer o.finish()

	var st *vcabench.Store
	if *cacheDir != "" {
		var err error
		// With telemetry on, the store reports into the same registry
		// the engine does, so one -metrics-out file carries both.
		if o.tel != nil {
			st, err = vcabench.OpenStoreOptions(*cacheDir, vcabench.StoreOptions{Telemetry: o.tel})
		} else {
			st, err = vcabench.OpenStore(*cacheDir)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "vcabench:", err)
			o.finish()
			os.Exit(1)
		}
		defer reportCache(st)
	}

	pool := openPool(*workers, o.tel)
	if pool != nil {
		defer reportCluster(pool)
	}

	if *diagOut != "" {
		// Creating the directory up front makes an empty dir (rather
		// than nothing at all) the signal for "run produced no cells".
		if err := os.MkdirAll(*diagOut, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "vcabench: -diag-out:", err)
			o.finish()
			os.Exit(1)
		}
	}

	if *campaign != "" {
		if err := runCampaign(*campaign, *jsonOut, *seed, sc, *parallel, *repeats, *diagOut, st, pool, o.tel); err != nil {
			fmt.Fprintln(os.Stderr, err)
			reportCache(st)
			reportCluster(pool)
			o.finish()
			os.Exit(1)
		}
		return
	}

	ids := strings.Split(*run, ",")
	if *run == "all" {
		ids = ids[:0]
		for _, e := range vcabench.List() {
			ids = append(ids, e.ID)
		}
	}
	opts := vcabench.RunOpts{Workers: *parallel, Telemetry: o.tel}
	if st != nil {
		// A typed-nil *Store must not become a non-nil CellStore.
		opts.Store = st
	}
	if pool != nil {
		opts.Dispatcher = pool
	}
	var diagErr error
	if *diagOut != "" {
		dir := *diagOut
		opts.Diagnostics = func(d *vcabench.CellDiag) {
			if err := writeDiag(dir, d); err != nil && diagErr == nil {
				diagErr = err
			}
		}
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		fmt.Printf("=== %s (scale=%s, seed=%d) ===\n", id, sc.Name, *seed)
		err := vcabench.RunWithOpts(id, *seed, sc, opts, os.Stdout)
		if errors.Is(err, vcabench.ErrStore) {
			// The artifact rendered fully; only caching failed.
			fmt.Fprintln(os.Stderr, "vcabench: warning:", err)
			err = nil
		}
		if err == nil && diagErr != nil {
			// A requested diagnostics artifact that failed to land on
			// disk must not exit 0.
			err = fmt.Errorf("vcabench: -diag-out: %w", diagErr)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			reportCache(st)
			reportCluster(pool)
			o.finish()
			os.Exit(1)
		}
		fmt.Println()
	}
}

// obsSession owns the run's observability outputs. finish flushes them
// exactly once; every exit path — normal return or os.Exit, which
// bypasses defers — calls it explicitly.
type obsSession struct {
	tel      *vcabench.Telemetry // nil unless -trace-out or -metrics-out
	traceOut string
	metrics  string
	cpuFile  *os.File
	memProf  string
	done     bool
}

// startObs arms the requested observability outputs. Telemetry and
// profiling failures are fatal up front: asking for a trace and
// silently losing it is worse than not starting.
func startObs(traceOut, metrics, cpuProf, memProf string) *obsSession {
	o := &obsSession{traceOut: traceOut, metrics: metrics, memProf: memProf}
	if traceOut != "" || metrics != "" {
		o.tel = vcabench.NewTelemetry()
		if traceOut != "" {
			o.tel.Tracer = vcabench.NewTracer()
		}
	}
	if cpuProf != "" {
		f, err := os.Create(cpuProf)
		if err == nil {
			err = pprof.StartCPUProfile(f)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "vcabench: -cpuprofile:", err)
			os.Exit(1)
		}
		o.cpuFile = f
	}
	return o
}

// finish writes the trace, metrics and profile outputs. Output errors
// warn rather than fail: the run's results are already on stdout.
func (o *obsSession) finish() {
	if o == nil || o.done {
		return
	}
	o.done = true
	warn := func(what string, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "vcabench: warning: %s: %v\n", what, err)
		}
	}
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err == nil {
			err = o.tel.Tracer.WriteJSONL(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		warn("-trace-out", err)
		o.tel.Tracer.Summary(os.Stderr)
	}
	if o.metrics != "" {
		if o.metrics == "-" {
			warn("-metrics-out", o.tel.Metrics.WriteText(os.Stderr))
		} else {
			f, err := os.Create(o.metrics)
			if err == nil {
				err = o.tel.Metrics.WriteText(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			warn("-metrics-out", err)
		}
	}
	if o.cpuFile != nil {
		pprof.StopCPUProfile()
		warn("-cpuprofile", o.cpuFile.Close())
	}
	if o.memProf != "" {
		f, err := os.Create(o.memProf)
		if err == nil {
			// An up-to-date heap picture needs a collection first.
			runtime.GC()
			err = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		warn("-memprofile", err)
	}
}

// openPool builds the worker fleet named by -workers, reporting
// unreachable workers up front (they may still rejoin mid-campaign;
// cells nobody serves run locally).
func openPool(spec string, tel *vcabench.Telemetry) *vcabench.Pool {
	if spec == "" {
		return nil
	}
	var urls []string
	for _, u := range strings.Split(spec, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	pool, err := vcabench.NewPoolOptions(urls, vcabench.PoolOptions{Telemetry: tel})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcabench:", err)
		os.Exit(2)
	}
	if healthy := pool.Healthy(); len(healthy) < len(urls) {
		fmt.Fprintf(os.Stderr, "vcabench: warning: %d of %d workers reachable; unserved cells run locally\n",
			len(healthy), len(urls))
	}
	return pool
}

// reportCluster prints where campaign cells actually ran; the CI smoke
// test parses this line, so keep its shape stable.
func reportCluster(pool *vcabench.Pool) {
	if pool == nil {
		return
	}
	s := pool.Stats()
	fmt.Fprintf(os.Stderr, "vcabench: cluster: %d cells remote, %d failed attempts, %d local fallbacks\n",
		s.Remote, s.Errors, s.Fallbacks)
	for _, w := range s.Workers {
		fmt.Fprintf(os.Stderr, "vcabench: cluster: %s: %d done, %d errors\n", w.URL, w.Done, w.Errs)
	}
}

// reportCache prints the store traffic summary; the CI smoke test
// parses this line, so keep its shape stable.
func reportCache(st *vcabench.Store) {
	if st == nil {
		return
	}
	s := st.Stats()
	fmt.Fprintf(os.Stderr, "vcabench: cache: %d hits, %d misses, %d cells stored\n",
		s.Hits(), s.Misses, s.Puts)
}

// writeDiag lands one flight-recorder document in dir, named after its
// cell key with path separators flattened so every key maps to exactly
// one file directly under dir.
func writeDiag(dir string, d *vcabench.CellDiag) error {
	data, err := vcabench.EncodeDiag(d)
	if err != nil {
		return err
	}
	name := strings.ReplaceAll(d.Key, "/", "__") + ".json"
	return os.WriteFile(filepath.Join(dir, name), data, 0o644)
}

// runCampaign loads a spec file, runs the grid and writes the text
// table to stdout plus, optionally, JSON results to jsonPath and
// per-cell diagnostics artifacts to diagDir.
func runCampaign(specPath, jsonPath string, seed int64, sc vcabench.Scale, workers, repeats int, diagDir string, st *vcabench.Store, pool *vcabench.Pool, tel *vcabench.Telemetry) error {
	data, err := os.ReadFile(specPath)
	if err != nil {
		return fmt.Errorf("vcabench: %w", err)
	}
	spec, err := vcabench.ParseCampaign(data)
	if err != nil {
		return fmt.Errorf("vcabench: %s: %w", specPath, err)
	}
	if repeats != 0 {
		spec.Repeats = repeats
		// The override must obey the same bounds a spec-file value would.
		if err := spec.Validate(); err != nil {
			return fmt.Errorf("vcabench: -repeats %d: %w", repeats, err)
		}
	}
	tb := vcabench.NewTestbedParallel(seed, workers)
	if st != nil {
		tb.WithStore(st)
	}
	if pool != nil {
		tb.WithDispatcher(pool)
	}
	if tel != nil {
		tb.WithTelemetry(tel)
	}
	if diagDir != "" {
		tb.WithDiagnostics()
	}
	res, err := vcabench.RunCampaign(tb, spec, sc)
	if err != nil {
		return fmt.Errorf("vcabench: %w", err)
	}
	if diagDir != "" {
		for _, d := range tb.DiagResults() {
			if err := writeDiag(diagDir, d); err != nil {
				return fmt.Errorf("vcabench: -diag-out: %w", err)
			}
		}
	}
	if serr := tb.StoreErr(); serr != nil {
		fmt.Fprintln(os.Stderr, "vcabench: warning: persisting results failed:", serr)
	}
	// With -json -, stdout is the machine-readable document; keep it
	// parseable by skipping the human table.
	if jsonPath == "-" {
		return vcabench.WriteJSON(os.Stdout, res)
	}
	res.RenderTable().Render(os.Stdout)
	if jsonPath == "" {
		return nil
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		return fmt.Errorf("vcabench: %w", err)
	}
	werr := vcabench.WriteJSON(f, res)
	// Close errors are flush errors: a truncated results file must not
	// exit 0.
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
