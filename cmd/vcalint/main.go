// Command vcalint runs the vcabench determinism analyzers over Go
// packages in this repository.
//
// Usage:
//
//	go run ./cmd/vcalint ./...
//	go run ./cmd/vcalint -list
//	go run ./cmd/vcalint -only walltime,storekey ./internal/...
//
// vcalint type-checks packages with the stdlib source importer, which
// resolves module-internal imports through the go command; run it from
// inside the repository. Exit status is 1 when any diagnostic is
// reported, 2 on a loading or usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/vcabench/vcabench/internal/lint"
)

func main() {
	listFlag := flag.Bool("list", false, "list the registered analyzers and exit")
	onlyFlag := flag.String("only", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vcalint [-list] [-only a,b] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	if *onlyFlag != "" {
		byName := make(map[string]*lint.Analyzer, len(analyzers))
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var picked []*lint.Analyzer
		for _, name := range strings.Split(*onlyFlag, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "vcalint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			picked = append(picked, a)
		}
		if len(picked) == 0 {
			fmt.Fprintf(os.Stderr, "vcalint: -only selected no analyzers\n")
			os.Exit(2)
		}
		analyzers = picked
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "vcalint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.LoadPatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vcalint: %v\n", err)
		os.Exit(2)
	}

	found := 0
	for _, pkg := range pkgs {
		for _, d := range lint.RunAnalyzers(pkg, analyzers) {
			fmt.Println(d.String())
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "vcalint: %d finding(s)\n", found)
		os.Exit(1)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
