// Command vcatrace inspects pcap captures produced by the harness (or by
// real tcpdump, for UDP media traffic): per-direction rates, discovered
// remote endpoints, and Fig-2 style lag extraction between a sender and a
// receiver capture.
//
// Usage:
//
//	vcatrace -pcap session.pcap -ip 10.1.2.3
//	vcatrace -sender host.pcap -senderip 10.1.1.1 -pcap recv.pcap -ip 10.2.2.2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/vcabench/vcabench/internal/capture"
)

func load(path, ipStr string) (*capture.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Strict parsing: Sscanf would accept "1.2.3.4.5" and "999.0.0.1",
	// silently classifying every packet's direction against a bogus
	// address.
	ip, err := capture.ParseIPv4(ipStr)
	if err != nil {
		return nil, fmt.Errorf("bad -ip: %w", err)
	}
	tr, skipped, err := capture.ReadPcap(f, path, ip)
	if err != nil {
		return nil, err
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "vcatrace: skipped %d non-UDP packets in %s\n", skipped, path)
	}
	return tr, nil
}

func main() {
	var (
		pcapPath = flag.String("pcap", "", "capture to analyze (receiver side when -sender is given)")
		ipStr    = flag.String("ip", "", "the capturing host's IPv4 (classifies direction)")
		sender   = flag.String("sender", "", "optional sender-side capture for lag extraction")
		senderIP = flag.String("senderip", "", "sender host's IPv4")
	)
	flag.Parse()
	if *pcapPath == "" || *ipStr == "" {
		flag.Usage()
		os.Exit(2)
	}
	tr, err := load(*pcapPath, *ipStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcatrace:", err)
		os.Exit(1)
	}
	from, to := tr.Span()
	fmt.Printf("%s: %d packets over %v\n", *pcapPath, tr.Len(), to.Sub(from).Round(time.Millisecond))
	fmt.Printf("  download: %8.0f bps (%d pkts, %d bytes)\n", tr.Rate(capture.In), tr.Packets(capture.In), tr.Bytes(capture.In))
	fmt.Printf("  upload:   %8.0f bps (%d pkts, %d bytes)\n", tr.Rate(capture.Out), tr.Packets(capture.Out), tr.Bytes(capture.Out))
	fmt.Println("  remote endpoints (inbound):")
	for _, ep := range tr.RemoteEndpoints(capture.In) {
		fmt.Printf("    %s\n", ep)
	}
	bursts := capture.Bursts(tr, capture.In, capture.DefaultBurstConfig)
	fmt.Printf("  inbound bursts (>%dB after >%v quiet): %d\n",
		capture.DefaultBurstConfig.BigBytes, capture.DefaultBurstConfig.MinQuiet, len(bursts))

	if *sender != "" {
		if *senderIP == "" {
			fmt.Fprintln(os.Stderr, "vcatrace: -sender requires -senderip")
			os.Exit(2)
		}
		str, err := load(*sender, *senderIP)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vcatrace:", err)
			os.Exit(1)
		}
		lags := capture.Lags(str, tr, capture.DefaultBurstConfig, time.Second)
		if len(lags) == 0 {
			fmt.Println("  no matching bursts between sender and receiver")
			return
		}
		var sum time.Duration
		for _, l := range lags {
			sum += l
		}
		fmt.Printf("  streaming lag: %d samples, mean %v\n", len(lags), (sum / time.Duration(len(lags))).Round(100*time.Microsecond))
	}
}
