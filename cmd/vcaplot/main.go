// Command vcaplot renders ASCII CDF plots from CSV sample data.
//
// Input format: one "label,value" pair per line (a header line is
// skipped if its value column is not numeric). All samples sharing a
// label become one curve. Parsing lives in internal/report
// (ParseCSVSeries), where it is unit-tested.
//
// Usage:
//
//	vcaplot -in lags.csv -x "video lag (ms)" -title "fig4 zoom"
//	vcabench -run fig4 ... | your-extraction | vcaplot -in -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/vcabench/vcabench/internal/report"
)

func main() {
	var (
		in     = flag.String("in", "-", "input CSV (label,value), or - for stdin")
		xlabel = flag.String("x", "value", "x-axis label")
		title  = flag.String("title", "", "plot title")
		width  = flag.Int("w", 64, "plot width")
		height = flag.Int("h", 16, "plot height")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vcaplot:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}

	series, err := report.ParseCSVSeries(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcaplot:", err)
		os.Exit(1)
	}
	if len(series) == 0 {
		fmt.Fprintln(os.Stderr, "vcaplot: no samples found")
		os.Exit(1)
	}
	p := report.CDFPlot{Title: *title, XLabel: *xlabel, Width: *width, Height: *height}
	for _, s := range series {
		p.Add(s.Label, s.Values)
	}
	p.Render(os.Stdout)
}
