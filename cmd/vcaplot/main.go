// Command vcaplot renders ASCII CDF plots from CSV sample data, and
// sim-time diagnostics timelines from flight-recorder artifacts.
//
// CSV input format: one "label,value" pair per line (a header line is
// skipped if its value column is not numeric). All samples sharing a
// label become one curve. Parsing lives in internal/report
// (ParseCSVSeries), where it is unit-tested.
//
// With -diag, the input is instead one cell's diagnostics JSON (as
// written by `vcabench -diag-out` or served by vcabenchd at
// GET /cells/{key}/diag) and vcaplot renders its event-queue depth,
// per-pipe throughput and drop timelines, rate-target ladders and
// event log as text charts (internal/report.RenderDiag).
//
// Usage:
//
//	vcaplot -in lags.csv -x "video lag (ms)" -title "fig4 zoom"
//	vcabench -run fig4 ... | your-extraction | vcaplot -in -
//	vcaplot -diag diagdir/fig13__zoom.json
//	curl -s host:8547/cells/fig13/zoom/diag | vcaplot -diag -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/vcabench/vcabench/internal/diag"
	"github.com/vcabench/vcabench/internal/report"
)

func main() {
	var (
		in     = flag.String("in", "-", "input CSV (label,value), or - for stdin")
		diagIn = flag.String("diag", "", "render a diagnostics JSON artifact instead of CSV (\"-\" = stdin)")
		xlabel = flag.String("x", "value", "x-axis label")
		title  = flag.String("title", "", "plot title")
		width  = flag.Int("w", 64, "plot width")
		height = flag.Int("h", 16, "plot height")
	)
	flag.Parse()

	if *diagIn != "" {
		renderDiag(*diagIn)
		return
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vcaplot:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}

	series, err := report.ParseCSVSeries(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcaplot:", err)
		os.Exit(1)
	}
	if len(series) == 0 {
		fmt.Fprintln(os.Stderr, "vcaplot: no samples found")
		os.Exit(1)
	}
	p := report.CDFPlot{Title: *title, XLabel: *xlabel, Width: *width, Height: *height}
	for _, s := range series {
		p.Add(s.Label, s.Values)
	}
	p.Render(os.Stdout)
}

// renderDiag loads one diagnostics artifact (a file, or stdin for "-")
// and renders its timelines.
func renderDiag(path string) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcaplot:", err)
		os.Exit(1)
	}
	d, err := diag.Decode(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcaplot: -diag:", err)
		os.Exit(1)
	}
	report.RenderDiag(os.Stdout, d)
}
